#!/usr/bin/env python3
"""Sequence-emulation workload characterization (the §6.3 workflow).

Runs the Lorenz and mini-Enzo workloads under full acceleration with
trace statistics enabled, then reports what the paper's Figures 7-10
report: the hottest traces (with their terminators), the rank
popularity and length distributions, and the trace-cache sizing math.

Run:  python examples/trace_profiling.py
"""

from repro.core.vm import FPVMConfig
from repro.harness.runner import run_fpvm


def characterize(workload: str) -> None:
    result = run_fpvm(workload, FPVMConfig.seq_short(), "SEQ_SHORT")
    stats = result.trace_stats
    print("=" * 72)
    print(f"{workload}: {result.traps} traps, "
          f"{result.emulated_instructions} emulated instructions, "
          f"avg sequence length {result.avg_sequence_length:.1f}")
    print()

    ranked = stats.by_popularity()
    print(f"distinct traces: {len(ranked)}")
    print()
    print("top 3 traces by emulated-instruction contribution:")
    for rank, rec in enumerate(ranked[:3], start=1):
        share = 100.0 * rec.emulated_instructions / stats.total_emulated()
        print(f"\n-- rank {rank}: length {rec.length}, {rec.count} hits, "
              f"{share:.1f}% of emulated instructions, "
              f"terminator {rec.terminator} ({rec.reason})")
        text = stats.format_trace(rec, result.program)
        lines = text.splitlines()
        if len(lines) > 8:
            lines = lines[:6] + [f"  ... {len(lines) - 7} more ..."] + lines[-1:]
        print("\n".join(lines))

    # Figure 10 arithmetic: how big a trace cache does this need?
    weighted = stats.weighted_length_by_rank()
    avg = stats.average_sequence_length()
    conv = next(
        (i + 1 for i, v in enumerate(weighted) if avg and abs(v - avg) / avg < 0.05),
        len(weighted),
    )
    entries = int(conv * max(avg, 1))
    print()
    print(f"cache sizing: converges by rank {conv}; "
          f"~{entries} entries (~{entries}KB at <=1KB/entry)")
    print()


def main() -> None:
    for workload in ("lorenz", "enzo"):
        characterize(workload)
    print("Lorenz concentrates its action in a few long traces; mini-Enzo")
    print("spreads it across many short ones — which is why Enzo benefits")
    print("less from sequence emulation and more from trap short-circuiting.")


if __name__ == "__main__":
    main()
