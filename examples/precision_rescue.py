#!/usr/bin/env python3
"""Precision rescue: Muller's recurrence, saved without a recompile.

Muller's recurrence

    x[n+1] = 108 - (815 - 1500 / x[n-1]) / x[n],   x0 = 4, x1 = 4.25

converges to 5 in exact arithmetic, but every fixed-precision binary
floating point evaluation is violently unstable and converges to 100
instead.  The binary here is *compiled once*; FPVM then runs it under
progressively stronger arithmetic systems — exactly the paper's
pitch: assess alternative arithmetic on a blessed binary, in situ.

Run:  python examples/precision_rescue.py
"""

from repro.compiler import Bin, For, INum, Let, Module, Num, Print, Var
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library

ITERATIONS = 25


def build_binary():
    m = Module()
    main = m.function("main")
    main.emit(Let("prev", Num(4.0)))
    main.emit(Let("cur", Num(4.25)))
    main.emit(For("n", INum(0), INum(ITERATIONS), [
        Let("nxt", Bin("-", Num(108.0),
                       Bin("/",
                           Bin("-", Num(815.0), Bin("/", Num(1500.0), Var("prev"))),
                           Var("cur")))),
        Let("prev", Var("cur")),
        Let("cur", Var("nxt")),
    ]))
    main.emit(Print(Var("cur")))
    program = m.compile()
    install_host_library(program)
    return program


def run(config: FPVMConfig | None):
    cpu = CPU(build_binary())
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = None
    if config is not None:
        vm = FPVM(config).attach(cpu, kernel)
    cpu.run()
    return cpu, vm


def main() -> None:
    print(f"Muller's recurrence, {ITERATIONS} iterations "
          "(true limit: 5.0; the binary64 impostor: 100.0)\n")

    cpu, _ = run(None)
    print(f"  native binary64:        x = {cpu.output[0]}")

    for name, label in [
        ("boxed_ieee", "FPVM + Boxed IEEE     "),
        ("mpfr", "FPVM + MPFR (200 bit) "),
        ("rational", "FPVM + exact rational "),
    ]:
        cpu, vm = run(FPVMConfig.seq_short(altmath=name))
        print(f"  {label}  x = {cpu.output[0]}"
              f"   ({vm.telemetry.traps} traps)")

    print()
    print("Boxed IEEE reproduces the binary64 collapse bit-for-bit (it IS")
    print("binary64); 200-bit MPFR holds the true trajectory through all")
    print(f"{ITERATIONS} iterations; rational arithmetic is exact forever.")


if __name__ == "__main__":
    main()
