#!/usr/bin/env python3
"""Virtualizing a multi-threaded process (§2.1).

FPVM intercepts thread startup (pthread/clone in the real system) so
every thread gets its own execution context — its own unmasked MXCSR
and its own short-circuit registration — while sharing the NaN-box
heap, whose GC must treat *every* thread's registers as roots.

The program below spawns a worker thread; both threads integrate the
same ODE into separate slots, and main joins before printing.

Run:  python examples/multithreaded.py
"""

from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library
from repro.machine.process import Process

SOURCE = """
.data
h: .double 0.01
out: .double 0.0, 0.0
n: .quad 120
.text
; integrate dx/dt = -x from x=1 for n steps; rdi = output slot
worker:
  mov rcx, [rip + n]
  mov rbx, out
  movsd xmm0, [rip + h]
  xorpd xmm1, xmm1
  cvtsi2sd xmm1, rcx
  movsd xmm2, [rip + h]      ; x starts at... build 1.0 as n*h*0 + 1: keep simple
  mov rax, 1
  cvtsi2sd xmm2, rax         ; x = 1.0
loop:
  movsd xmm3, xmm2
  mulsd xmm3, [rip + h]      ; x*h
  subsd xmm2, xmm3           ; x -= x*h
  dec rcx
  jne loop
  movsd [rbx + rdi*8], xmm2
  ret

main:
  mov rdi, worker
  mov rsi, 1
  call thread_create
  mov r12, rax
  mov rdi, 0
  call worker
  mov rdi, r12
  call thread_join
  movsd xmm0, [rip + out]
  call print_f64
  movsd xmm0, [rip + out + 8]
  call print_f64
  hlt
"""


def build_process() -> Process:
    program = assemble(SOURCE)
    install_host_library(program)
    process = Process(program)
    process.kernel = LinuxKernel()
    return process


def main() -> None:
    native = build_process()
    native.run()
    print(f"native:       {native.main.output}")

    process = build_process()
    kernel = LinuxKernel()
    vm = FPVM(FPVMConfig.seq_short()).attach_process(process, kernel)
    process.run(quantum=16)  # interleave the threads aggressively
    print(f"virtualized:  {process.main.output}  "
          f"(bit-for-bit: {process.main.output == native.main.output})")
    print()
    for thread in process.threads:
        print(f"  thread {thread.tid}: {thread.fp_trap_count} FP traps, "
              f"{thread.cycles:,} cycles")
    print(f"  GC runs: {vm.telemetry.gc_runs} "
          f"(roots include every thread's registers)")
    print(f"  both threads registered with /dev/fpvm_dev: "
          f"{all(kernel.fpvm_module.is_registered(t) for t in process.threads)}")


if __name__ == "__main__":
    main()
