#!/usr/bin/env python3
"""Correctness instrumentation, demonstrated end to end (§2.6, §5).

x64 floating point is not fully virtualizable: FP values flow into
integer contexts through memory, and shared-library functions
reinterpret FP bits.  This example shows

1. the failure: with instrumentation disabled, printf-style output
   prints "nan" and a sign-bit extraction reads the NaN box's sign;
2. the fix: profiling-discovered patch sites + magic traps + magic
   wraps restore exact behaviour;
3. the cost: int3-based correctness traps vs magic traps;
4. the precision: static-analysis sites vs profiler sites.

Run:  python examples/correctness_instrumentation.py
"""

from repro.core.analysis import find_memory_escapes
from repro.core.profiler import profile_patch_sites
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library

# A program whose FP result escapes into the integer world twice: once
# through printf ("foreign function correctness") and once through a
# store-then-integer-load sign test ("memory escape correctness").
SOURCE = """
.data
a: .double 0.1
b: .double 0.2
one: .double 1.0
slot: .space 8
.text
main:
  movsd xmm0, [rip + a]
  mulsd xmm0, [rip + b]     ; inexact: traps, result NaN-boxed
  subsd xmm0, [rip + one]   ; now a *negative* boxed value
  call print_f64            ; foreign function sees raw bits
  movsd [rip + slot], xmm0  ; box escapes to memory
  mov rax, [rip + slot]     ; integer load of the escaped double
  shr rax, 63               ; "is it negative?" via the sign bit
  mov rdi, rax
  call print_i64
  hlt
"""


def build():
    program = assemble(SOURCE)
    install_host_library(program)
    return program


def run(config: FPVMConfig | None):
    program = build()
    cpu = CPU(program)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = None
    if config is not None:
        vm = FPVM(config).attach(cpu, kernel)
    cpu.run()
    return cpu, vm


def main() -> None:
    native, _ = run(None)
    print(f"native output:                {native.output}   <- ground truth")

    broken, _ = run(FPVMConfig.seq_short(wrap_foreign=False,
                                         patch_site_source="none"))
    print(f"FPVM, instrumentation OFF:    {broken.output}   <- printf sees the box;"
          " sign bit wrong")

    fixed, vm = run(FPVMConfig.seq_short())
    print(f"FPVM, instrumentation ON:     {fixed.output}   <- demoted just in time")
    assert fixed.output == native.output
    print()

    # --- cost: int3 vs magic traps -------------------------------------
    _, vm_int3 = run(FPVMConfig.seq_short(magic_traps=False))
    _, vm_magic = run(FPVMConfig.seq_short(magic_traps=True))
    int3_cost = (vm_int3.ledger.by_category["corr"]
                 + vm_int3.ledger.by_category["hw"]
                 + vm_int3.ledger.by_category["kernel"]
                 + vm_int3.ledger.by_category["ret"]
                 - vm_magic.ledger.by_category["hw"]
                 - vm_magic.ledger.by_category["kernel"]
                 - vm_magic.ledger.by_category["ret"])
    magic_cost = vm_magic.ledger.by_category["corr"]
    print(f"int3 correctness trap cost:   ~{int3_cost} cycles")
    print(f"magic trap cost:              ~{magic_cost} cycles "
          f"({int3_cost / max(magic_cost, 1):.0f}x cheaper; paper: 14-120x)")
    print()

    # --- precision: profiler vs static analysis ------------------------
    program = build()
    static = find_memory_escapes(program).patch_sites
    dynamic = profile_patch_sites(program)
    print(f"static analysis patch sites:  {len(static)} "
          f"({', '.join(hex(a) for a in sorted(static))})")
    print(f"profiler patch sites:         {len(dynamic)} "
          f"({', '.join(hex(a) for a in sorted(dynamic))})")
    print(f"profiler subset of static:    {dynamic <= static}")


if __name__ == "__main__":
    main()
