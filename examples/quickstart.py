#!/usr/bin/env python3
"""Quickstart: virtualize an unmodified binary's floating point.

Builds a tiny program for the simulated x64 machine, runs it natively,
then runs the *same binary* under FPVM with all three accelerations
(trap short-circuiting, sequence emulation, kernel-bypass correctness
instrumentation).  With the Boxed IEEE arithmetic system the output is
bit-for-bit identical; switching to 200-bit MPFR is a one-line
configuration change.

Run:  python examples/quickstart.py
"""

from repro.compiler import Bin, For, INum, IVar, Let, Module, Num, Print, Var
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library


def build_binary():
    """A compiled 'application': sum 0.1 a thousand times."""
    m = Module()
    main = m.function("main")
    main.emit(Let("acc", Num(0.0)))
    main.emit(For("i", INum(0), INum(1000), [
        Let("acc", Bin("+", Var("acc"), Num(0.1))),
    ]))
    main.emit(Print(Var("acc")))
    program = m.compile()
    install_host_library(program)  # link the simulated libc/libm
    return program


def run_native():
    cpu = CPU(build_binary())
    cpu.kernel = LinuxKernel()
    cpu.run()
    return cpu


def run_virtualized(config: FPVMConfig):
    cpu = CPU(build_binary())
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(config).attach(cpu, kernel)  # the LD_PRELOAD moment
    cpu.run()
    return cpu, vm


def main() -> None:
    native = run_native()
    print(f"native binary64 result:   {native.output[0]}")
    print(f"native cycles:            {native.cycles:,}")
    print()

    # --- Boxed IEEE: the worst case for virtualization overhead -------
    cpu, vm = run_virtualized(FPVMConfig.seq_short())
    print("FPVM + Boxed IEEE (SEQ + SHORT + magic traps/wraps):")
    print(f"  result:                 {cpu.output[0]}  "
          f"(bit-for-bit: {cpu.output == native.output})")
    print(f"  slowdown:               {cpu.cycles / native.cycles:.1f}x")
    print(f"  traps taken:            {vm.telemetry.traps}")
    print(f"  instructions/trap:      {vm.telemetry.avg_sequence_length:.1f}")
    print()

    # --- MPFR: "reconfigured in seconds" (§6.4) ------------------------
    cpu, vm = run_virtualized(FPVMConfig.seq_short(altmath="mpfr"))
    print("FPVM + MPFR (200 bits) — same binary, one config change:")
    print(f"  result:                 {cpu.output[0]}")
    print(f"  binary64 error:         {abs(float(native.output[0]) - 100.0):.3e}")
    print(f"  virtualized error:      {abs(float(cpu.output[0]) - 100.0):.3e}")
    print(f"  slowdown:               {cpu.cycles / native.cycles:.1f}x")


if __name__ == "__main__":
    main()
