#!/usr/bin/env python3
"""A tour of alternative arithmetic systems on one unmodified binary.

The same three-body simulation binary runs under every arithmetic
system the introduction motivates: Boxed IEEE (hardware doubles in
boxes), MPFR-class high precision, posits, interval arithmetic, and
exact rationals — with per-system overhead and the final state's
divergence from the binary64 trajectory.

Run:  python examples/arithmetic_tour.py
"""

from repro.core.vm import FPVMConfig
from repro.harness.runner import run_fpvm, run_native

SYSTEMS = [
    ("boxed_ieee", {}, "Boxed IEEE (worst case for FPVM)"),
    ("mpfr", {"precision": 200}, "MPFR-class BigFloat, 200 bits"),
    ("mpfr", {"precision": 80}, "MPFR-class BigFloat, 80 bits"),
    ("posit", {"nbits": 64}, "posit<64,2>"),
    ("interval", {}, "interval arithmetic (midpoint shown)"),
    ("rational", {"max_denominator": 10**40}, "slash rational (bounded denominator)"),
]


def final_position(output: list[str]) -> tuple[float, float]:
    """Last logged body-0 position pair."""
    pairs = [l for l in output if " " in l]
    x, y = pairs[-3].split()
    return float(x), float(y)


def main() -> None:
    native = run_native("three_body", scale=16)
    nx, ny = final_position(native.output)
    print("three-body simulation, chaotic regime")
    print(f"  native binary64 final position of body 0: ({nx:+.12f}, {ny:+.12f})")
    print()
    header = f"{'system':<38}{'slowdown':>10}{'traps':>8}{'drift from binary64':>22}"
    print(header)
    print("-" * len(header))
    for name, kwargs, label in SYSTEMS:
        cfg = FPVMConfig.seq_short(altmath=name, altmath_kwargs=kwargs)
        result = run_fpvm("three_body", cfg, scale=16)
        x, y = final_position(result.output)
        drift = ((x - nx) ** 2 + (y - ny) ** 2) ** 0.5
        slow = result.cycles / native.cycles
        shown = f"{drift:.3e}" if drift == drift else "widths blew up (*)"
        print(f"{label:<38}{slow:>9.1f}x{result.traps:>8}{shown:>22}")
    print()
    print("Boxed IEEE drifts by exactly zero (it computes binary64);")
    print("higher precision shifts the chaotic trajectory (a feature:")
    print("the drift estimates the binary64 rounding error's effect);")
    print("posits trade dynamic-range tails for near-1 accuracy.")
    print("(*) naive interval arithmetic on a chaotic orbit: the bounds")
    print("grow without limit until a divisor interval straddles zero --")
    print("itself a useful diagnostic the virtualization surfaced for free.")


if __name__ == "__main__":
    main()
