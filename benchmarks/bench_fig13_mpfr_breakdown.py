"""Figure 13: amortized per-instruction cost breakdown under MPFR.

Paper shape: altmath (MPFR itself) dominates every bar, and MPFR shows
slightly higher gc than Boxed IEEE (it allocates more temporaries)."""

from conftest import publish
from repro.harness import figures, report
from repro.machine.costs import LEDGER_CATEGORIES


def test_figure13(benchmark, mpfr_suite, results_dir):
    data = benchmark.pedantic(figures.figure6, args=(mpfr_suite,), rounds=1, iterations=1)
    publish(results_dir, "fig13",
            report.render_breakdown_by_config(
                data, "Figure 13: cost breakdown with accelerations (MPFR)"))
    for w, rows in data.items():
        by = {r.config: r for r in rows}
        opt = by["SEQ_SHORT"].amortized
        assert opt["altmath"] == max(opt[c] for c in LEDGER_CATEGORIES), w
        # altmath is a much bigger share than under Boxed IEEE.
        assert opt["altmath"] > 0.35 * sum(opt.values()), w
