"""Figure 12: MPFR slowdown vs the MPFR lower bound.

Paper: as the intrinsic altmath cost grows, FPVM approaches its lower
bound — best case 1.35x (vs 1.65x for Boxed IEEE)."""

from conftest import publish
from repro.harness import figures, report


def test_figure12(benchmark, mpfr_suite, boxed_suite, results_dir):
    data = benchmark.pedantic(figures.figure5, args=(mpfr_suite,), rounds=1, iterations=1)
    publish(results_dir, "fig12",
            report.render_slowdown(data, "Figure 12: slowdown from lower bound (MPFR)",
                                   "vs native+altmath"))
    boxed = figures.figure5(boxed_suite)
    for w, cfgs in data.items():
        assert cfgs["SEQ_SHORT"] < 3, w
        # Closer to the bound than the Boxed IEEE worst case (§6.4).
        assert cfgs["SEQ_SHORT"] < boxed[w]["SEQ_SHORT"], w
