"""§2.3 / §3 trap-machinery constants, measured from single-trap runs.

Paper values (Dell R6515, EPYC 7443P, Linux 5.15): hw ~380 cycles,
SIGFPE delivery ~3800, sigreturn ~1800, short-circuit delivery ~350
with an iretq-style return; hw+kern+ret drops 5980 -> ~760 (~8x).
"""

from conftest import publish
from repro.harness import figures, report


def test_trap_costs(benchmark, results_dir):
    table = benchmark.pedantic(figures.trap_microbenchmark, rounds=1, iterations=1)
    publish(results_dir, "trap_microbench",
            report.render_trap_costs(table, "Trap delegation microbenchmark (§2.3/§3)"))
    assert abs(table.hw_trap - 380) < 25
    assert 6 < table.delegation_reduction < 20
