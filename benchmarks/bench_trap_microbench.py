"""§2.3 / §3 trap-machinery constants, measured from single-trap runs.

Paper values (Dell R6515, EPYC 7443P, Linux 5.15): hw ~380 cycles,
SIGFPE delivery ~3800, sigreturn ~1800, short-circuit delivery ~350
with an iretq-style return; hw+kern+ret drops 5980 -> ~760 (~8x).

The per-class table breaks the hardware dispatch column out by #XF
trap class on class-pure constant-operand kernels: denormal and
underflow dispatch carries the Wittmann et al. microcode-assist
surcharge the invalid/inexact-dominated §6 workloads never pay.
"""

from conftest import publish
from repro.harness import figures, report
from repro.observability import TRAP_CLASSES


def test_trap_costs(benchmark, results_dir):
    table = benchmark.pedantic(figures.trap_microbenchmark, rounds=1, iterations=1)
    rows = figures.trap_class_microbenchmark()
    publish(results_dir, "trap_microbench",
            report.render_trap_microbench(table, rows))
    assert abs(table.hw_trap - 380) < 25
    assert 6 < table.delegation_reduction < 20
    by_class = {r.trap_class: r for r in rows}
    assert set(by_class) == set(TRAP_CLASSES)
    for r in rows:
        assert r.traps > 0
        assert 2 < r.reduction < 20
    # the microcode-assist surcharge ordering (Wittmann et al. note):
    base = by_class["invalid"].hw_per_trap
    assert by_class["inexact"].hw_per_trap == base
    assert (by_class["denormal"].hw_per_trap
            > by_class["underflow"].hw_per_trap
            > by_class["overflow"].hw_per_trap
            > by_class["divzero"].hw_per_trap
            > base)
