"""Figure 4: end-to-end application slowdown (Boxed IEEE) for
NONE / SEQ / SHORT / SEQ_SHORT.

Paper shape: NONE in the hundreds-to-thousands; each technique cuts
it; combining both gives an average ~7.2x reduction (best ~11.5x,
Lorenz)."""

from conftest import publish
from repro.harness import charts, figures, report


def test_figure4(benchmark, boxed_suite, results_dir):
    data = benchmark.pedantic(figures.figure4, args=(boxed_suite,), rounds=1, iterations=1)
    publish(results_dir, "fig04",
            report.render_slowdown(data, "Figure 4: application slowdown (Boxed IEEE)"))
    publish(results_dir, "fig04_chart",
            charts.slowdown_chart(data, "Figure 4 (bars, log scale)"))
    reductions = []
    for w, cfgs in data.items():
        assert cfgs["NONE"] > 100, w
        assert cfgs["SEQ"] < cfgs["NONE"]
        assert cfgs["SHORT"] < cfgs["NONE"]
        reductions.append(cfgs["NONE"] / cfgs["SEQ_SHORT"])
    assert sum(reductions) / len(reductions) > 5  # paper: avg 7.2x
    assert max(reductions) > 9                    # paper: best 11.5x (Lorenz)
