"""Fleet-serving throughput benchmark.

Runs a homogeneous lorenz batch cold + serial first (the oracle), then
through the multiprocess fleet at 1, 2 and 4 workers, asserting every
configuration's per-guest ledgers are **bit-identical** to the oracle
(output, simulated cycles, instruction counts, trap counts) before any
throughput number is reported.  Reports guests/sec and p50/p99 guest
latency per worker count and writes ``BENCH_fleet.json``.

Two vacuity guards keep the benchmark honest:

- every warm guest must report ``cow_faults > 0`` — a batch with zero
  COW faults means the guests silently stopped sharing the template
  image and the benchmark is measuring private-copy execution;
- the warm tiers must report trace code-cache reuse, or the
  shared-cache machinery is silently off.

Scaling gates are **core-aware**: the ≥1.6x (2 workers) and ≥2.5x
(4 workers) guests/sec floors vs 1 worker are enforced only when the
host exposes enough cores to make them physically possible (CI's
ubuntu runners do; a 1-core sandbox cannot parallelize anything and is
gated on correctness + vacuity only).

Usage:
    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

from repro.fleet import FleetScheduler, make_batch, run_guest

WORKLOAD = "lorenz"
#: (guests, per-guest scale) — full sizes the per-guest work so that
#: fork + dispatch overhead is well amortized.
FULL = (32, 600)
QUICK = (12, 200)
WORKER_COUNTS = (1, 2, 4)

#: acceptance floors (guests/sec vs the 1-worker pool), enforced only
#: when the host has at least this many cores.
SCALING_FLOORS = {2: 1.6, 4: 2.5}


def host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def run_batch(jobs, workers: int, reps: int) -> dict:
    """Best-of-``reps`` fleet runs at a fixed worker count."""
    best = None
    for _ in range(reps):
        report = FleetScheduler(workers=workers).run(jobs)
        if report.failed or report.rejected:
            raise AssertionError(
                f"fleet run (workers={workers}) dropped jobs: "
                f"failed={report.failed} rejected={report.rejected}")
        if best is None or report.wall_seconds < best.wall_seconds:
            best = report
    return best


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="reduced batch (CI perf-smoke)")
    ap.add_argument("--out", type=pathlib.Path,
                    default=pathlib.Path(__file__).parent / "results" / "BENCH_fleet.json")
    ap.add_argument("--reps", type=int, default=2)
    args = ap.parse_args(argv)

    guests, scale = QUICK if args.quick else FULL
    cores = host_cores()
    jobs = make_batch(WORKLOAD, guests, scale=scale)

    # the oracle: every guest cold (fresh build + load, no sharing),
    # strictly serial — exactly what run_native would do per guest.
    t0 = time.perf_counter()
    oracle = {j.job_id: run_guest(j, None) for j in jobs}
    serial_seconds = time.perf_counter() - t0
    oracle_fp = {jid: r.fingerprint() for jid, r in oracle.items()}
    serial_cycles = sum(r.cycles for r in oracle.values())
    print(f"serial oracle: {guests} x {WORKLOAD}@{scale} in "
          f"{serial_seconds:.3f}s ({guests / serial_seconds:.1f} guests/sec)")

    rows = []
    gps = {}
    for workers in WORKER_COUNTS:
        report = run_batch(jobs, workers, args.reps)
        fleet = report.fleet
        if report.fingerprints() != oracle_fp:
            bad = [jid for jid, fp in report.fingerprints().items()
                   if oracle_fp.get(jid) != fp]
            raise AssertionError(
                f"fleet (workers={workers}) diverged from the serial "
                f"oracle on jobs {bad}")
        if fleet["cycles"] != serial_cycles:
            raise AssertionError(
                f"fleet (workers={workers}) cycle total {fleet['cycles']} "
                f"!= serial {serial_cycles}")
        if fleet["cow_faults"] == 0:
            raise AssertionError(
                f"fleet (workers={workers}) reported zero COW faults — "
                "guests are not sharing the template image")
        code_hits = sum(w["trace_code_hits"]
                        for w in fleet["per_worker"].values())
        if code_hits == 0:
            raise AssertionError(
                f"fleet (workers={workers}) reported zero trace "
                "code-cache hits — warm-cache sharing is silently off")
        gps[workers] = fleet["guests_per_sec"]
        rows.append({
            "workers": workers,
            "guests": fleet["guests"],
            "wall_seconds": fleet["wall_seconds"],
            "guests_per_sec": fleet["guests_per_sec"],
            "p50_latency": fleet["p50_latency"],
            "p99_latency": fleet["p99_latency"],
            "cow_faults": fleet["cow_faults"],
            "identical_results": True,
            "per_worker": fleet["per_worker"],
        })
        print(f"workers={workers}: {fleet['guests_per_sec']:>8.1f} guests/sec | "
              f"p50 {fleet['p50_latency'] * 1e3:6.2f} ms | "
              f"p99 {fleet['p99_latency'] * 1e3:6.2f} ms | "
              f"cow faults {fleet['cow_faults']} | identical=True")

    scaling = {w: gps[w] / gps[1] for w in WORKER_COUNTS if w != 1}
    enforced = {}
    for w, floor in SCALING_FLOORS.items():
        if cores >= w:
            enforced[w] = floor
            if scaling[w] < floor:
                raise AssertionError(
                    f"{w}-worker scaling {scaling[w]:.2f}x is below the "
                    f"{floor}x floor (host has {cores} cores)")
        else:
            print(f"note: {w}-worker {floor}x floor not enforced "
                  f"(host has only {cores} core(s))")

    doc = {
        "benchmark": "fleet",
        "quick": args.quick,
        "reps": args.reps,
        "workload": WORKLOAD,
        "guests": guests,
        "scale": scale,
        "python": platform.python_version(),
        "cores": cores,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "serial_seconds": serial_seconds,
        "serial_guests_per_sec": guests / serial_seconds,
        "serial_cycles": serial_cycles,
        "results": rows,
        "scaling_vs_1_worker": {str(w): s for w, s in scaling.items()},
        "floors_enforced": {str(w): f for w, f in enforced.items()},
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out} (2w scaling {scaling[2]:.2f}x, "
          f"4w scaling {scaling[4]:.2f}x, cores={cores})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
