"""Figure 5: slowdown relative to the altmath lower bound (Boxed IEEE).

1.0x means zero virtualization overhead on top of the alternative
arithmetic itself.  Paper: NONE sits ~10-25x above the bound;
SEQ_SHORT approaches it (Lorenz: 1.65x)."""

from conftest import publish
from repro.harness import figures, report


def test_figure5(benchmark, boxed_suite, results_dir):
    data = benchmark.pedantic(figures.figure5, args=(boxed_suite,), rounds=1, iterations=1)
    publish(results_dir, "fig05",
            report.render_slowdown(data, "Figure 5: slowdown from lower bound (Boxed IEEE)",
                                   "vs native+altmath"))
    for w, cfgs in data.items():
        assert cfgs["NONE"] > 10, w
        assert cfgs["SEQ_SHORT"] < 4.5, (w, cfgs["SEQ_SHORT"])
    assert min(c["SEQ_SHORT"] for c in data.values()) < 3  # best case near bound
