"""Shared fixtures for the benchmark harness.

Each ``bench_figNN`` module regenerates one of the paper's figures:
the timed body produces the figure's data, and the rendered
paper-style table is written to ``results/figNN.txt`` (and echoed to
stdout when running with ``-s``).

Full-size suites are session-scoped so the 6-workload x 4-config run
matrix is executed once per arithmetic system per session.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness import figures

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: MPFR runs the same workloads at reduced scale: BigFloat arithmetic
#: is orders of magnitude slower to *simulate* (not just to model).
MPFR_SCALES = {
    "lorenz": 150,
    "three_body": 16,
    "double_pendulum": 24,
    "fbench": 6,
    "ffbench": 16,
    "enzo": 16,
}


@pytest.fixture(scope="session")
def boxed_suite() -> figures.Suite:
    return figures.Suite("boxed_ieee")


@pytest.fixture(scope="session")
def mpfr_suite() -> figures.Suite:
    return figures.Suite("mpfr", scale_overrides=MPFR_SCALES)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Write a rendered figure and echo it."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
