"""Ablation: emulator move-opcode support breadth (§4.2's "40
supported, 123 ignored" engineering tradeoff).

Removing integer-move support (mov/lea/push/pop) or the movsd family
shortens sequences and raises trap counts — quantifying what each
slice of the supported set buys."""

from conftest import publish
from repro.core.emulator import DEFAULT_SUPPORTED
from repro.core.vm import FPVMConfig
from repro.harness.runner import run_fpvm

VARIANTS = {
    "full (default)": DEFAULT_SUPPORTED,
    "no int moves": DEFAULT_SUPPORTED - {"mov", "lea", "push", "pop"},
    "no fp moves": DEFAULT_SUPPORTED - {"movsd", "movapd", "movupd", "movq"},
    "arith only": frozenset(
        m for m in DEFAULT_SUPPORTED
        if m not in {"mov", "lea", "push", "pop",
                     "movsd", "movapd", "movupd", "movq", "xorpd"}
    ),
    "plus movhpd/movlpd": DEFAULT_SUPPORTED | {"movhpd", "movlpd"},
}


def test_move_support_sweep(benchmark, results_dir):
    def sweep():
        rows = []
        for label, supported in VARIANTS.items():
            r = run_fpvm("lorenz",
                         FPVMConfig.seq_short(supported_instructions=supported))
            rows.append((label, r.avg_sequence_length, r.traps, r.cycles))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: emulator instruction support breadth (lorenz, SEQ_SHORT)",
             "", f"{'variant':<20} {'avg seq':>8} {'traps':>7} {'cycles':>10}"]
    for label, seq, traps, cycles in rows:
        lines.append(f"{label:<20} {seq:>8.1f} {traps:>7} {cycles:>10}")
    publish(results_dir, "ablation_move_support", "\n".join(lines))
    by = dict((r[0], r) for r in rows)
    assert by["no int moves"][1] < by["full (default)"][1]
    assert by["arith only"][2] > by["full (default)"][2]  # more traps
