"""Figure 1: baseline per-instruction cost breakdown (Boxed IEEE, no
acceleration).  Paper shape: hw+kernel+ret dominate every bar at
~6000+ cycles/instruction; altmath is a small slice."""

from conftest import publish
from repro.harness import charts, figures, report


def test_figure1(benchmark, boxed_suite, results_dir):
    data = benchmark.pedantic(figures.figure1, args=(boxed_suite,), rounds=1, iterations=1)
    publish(results_dir, "fig01",
            report.render_breakdown(data, "Figure 1: baseline cost breakdown (Boxed IEEE, NONE)"))
    publish(results_dir, "fig01_chart",
            charts.breakdown_chart(data, "Figure 1 (stacked bars)"))
    for w, am in data.items():
        total = sum(am.values())
        assert total > 4000, (w, total)  # thousands of cycles/instr
        assert am["kernel"] > am["altmath"], w  # signal delivery dominates
