"""Ablation: compiler loop unrolling vs sequence length (§6.3:
"loop unrolling and software pipelining optimizations will naturally
lead to longer sequences")."""

from conftest import publish
from repro.core.vm import FPVMConfig
from repro.harness.runner import run_fpvm, run_native


def test_unroll_sweep(benchmark, results_dir):
    def sweep():
        rows = []
        for unroll in (1, 2, 4, 8):
            r = run_fpvm("lorenz", FPVMConfig.seq_short(), scale=240, unroll=unroll)
            am = r.amortized()
            trap_amortized = am["hw"] + am["kernel"] + am["ret"]
            rows.append((unroll, r.avg_sequence_length, r.traps, trap_amortized))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: loop unrolling vs sequence length (lorenz, SEQ_SHORT)",
             "", f"{'unroll':>7} {'avg seq len':>12} {'traps':>7} {'hw+kern+ret/instr':>19}"]
    for u, seq, traps, amort in rows:
        lines.append(f"{u:>7} {seq:>12.1f} {traps:>7} {amort:>19.1f}")
    publish(results_dir, "ablation_unroll", "\n".join(lines))
    seqs = [r[1] for r in rows]
    assert seqs == sorted(seqs)  # monotone in unroll factor
    # Longer sequences amortize trap delegation further (Q3, §6.3).
    amorts = [r[3] for r in rows]
    assert amorts == sorted(amorts, reverse=True)
