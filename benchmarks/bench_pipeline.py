"""Host-throughput benchmark for the micro-op pipeline.

Runs each workload four times — micro-op pipeline OFF (the seed
single-step interpreter), ON with cross-quantum chaining disabled, ON
with chaining but the trace JIT off, and ON with the fused trace JIT —
asserts the simulated results are bit-identical across all tiers
(cycles, instruction count, stdout), and reports host wall-clock
guest-instructions/sec for each, writing ``BENCH_pipeline.json``.
Multi-threaded workloads (``lorenz_mt``) run under the Process
scheduler, comparing batched superblock quanta against the seed
step-wise scheduler with per-thread cycle/trap parity checks.  Chained
rows on the lorenz workloads must report a non-zero link count, and
traced rows a non-zero compile count, so a silently disabled tier
fails loudly instead of benchmarking the tier below it twice.

Usage:
    PYTHONPATH=src python benchmarks/bench_pipeline.py [--quick] [--out PATH]

``--quick`` runs reduced scales (the perf-smoke CI job); the default
scales match the ISSUE acceptance run.  The committed baseline lives at
``benchmarks/baselines/BENCH_pipeline.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.harness.runner import run_native, run_native_process
from repro.workloads import get_workload

#: (workload, full_scale, quick_scale)
WORKLOADS = [
    ("fbench", None, 6),    # None = the registry's default scale
    ("lorenz", None, 150),
    ("lorenz_mt", 2000, 300),
    ("mixed_mt", 2000, 300),
]
REPS = 3


def _thread_fingerprint(result) -> list | None:
    """Per-thread (cycles, instructions, traps) — the batched-vs-stepwise
    ledger parity check for Process runs."""
    if result.host.threads is None:
        return None
    return [
        (t["tid"], t["cycles"], t["instructions"], t["fp_traps"], t["bp_traps"])
        for t in result.host.threads
    ]


#: tier label -> (uops, chain, trace) runner flags.
TIERS = {
    "interp": (False, False, False),
    "uops": (True, False, False),
    "chained": (True, True, False),
    "traced": (True, True, True),
}

#: workloads whose hot loop fuses into a trace (in-run superblock
#: cycles).  The others break "unchainable" each lap (an output syscall
#: in the outer loop), so the trace recorder never sees a cycle — the
#: traced row must still be bit-identical, but compiles may be zero.
TRACE_WORKLOADS = ("lorenz",)


def bench_one(workload: str, scale: int | None, reps: int = REPS) -> dict:
    """Best-of-``reps`` for each tier, with result-equality checks."""
    runner = (run_native_process if get_workload(workload).requires_process
              else run_native)
    runs = {}
    for label, (uops, chain, trace) in TIERS.items():
        best = None
        for _ in range(reps):
            result = runner(workload, scale, uops=uops, chain=chain,
                            trace=trace)
            if best is None or result.host.seconds < best.host.seconds:
                best = result
        runs[label] = best

    interp = runs["interp"]
    for label in ("uops", "chained", "traced"):
        other = runs[label]
        identical = (
            interp.cycles == other.cycles
            and interp.instructions == other.instructions
            and interp.output == other.output
            and _thread_fingerprint(interp) == _thread_fingerprint(other)
        )
        if not identical:
            raise AssertionError(
                f"{workload}: {label} tier diverged from the interpreter "
                f"(cycles {interp.cycles} vs {other.cycles}, "
                f"instructions {interp.instructions} vs {other.instructions})"
            )

    uops, chained, traced = runs["uops"], runs["chained"], runs["traced"]
    chain_stats = chained.host.chain or {}
    if workload.startswith("lorenz") and not chain_stats.get("links_followed"):
        raise AssertionError(
            f"{workload}: chained tier followed zero links "
            f"(chain telemetry: {chain_stats}) — chaining is silently off"
        )
    trace_stats = traced.host.trace or {}
    if workload in TRACE_WORKLOADS and not trace_stats.get("trace_compiles"):
        raise AssertionError(
            f"{workload}: traced tier compiled zero traces "
            f"(trace telemetry: {trace_stats}) — the trace JIT is silently off"
        )
    row = {
        "workload": workload,
        "scale": scale,
        "instructions": uops.instructions,
        "simulated_cycles": uops.cycles,
        "identical_results": True,
        "interp_seconds": interp.host.seconds,
        "interp_ips": interp.host.ips,
        "uops_seconds": uops.host.seconds,
        "uops_ips": uops.host.ips,
        "speedup": interp.host.seconds / uops.host.seconds,
        "chained_seconds": chained.host.seconds,
        "chained_ips": chained.host.ips,
        "chain_speedup": interp.host.seconds / chained.host.seconds,
        "traced_seconds": traced.host.seconds,
        "traced_ips": traced.host.ips,
        "trace_speedup": interp.host.seconds / traced.host.seconds,
        "uop_stats": uops.host.uop_stats,
        "chain_stats": chain_stats,
        "trace_stats": trace_stats,
    }
    if uops.host.sched is not None:
        row["sched"] = uops.host.sched
        row["threads"] = len(uops.host.threads)
    return row


#: patch-churn row: scheduler quantum, and K — re-patch every K quanta.
CHURN_QUANTUM = 64
CHURN_QUANTA = 25
#: (full_scale, quick_scale) for the churn row's lorenz guest.  The
#: quick scale must be long enough to amortize trace compilation, or
#: the traced-under-churn speedup floor measures warmup instead.
CHURN_SCALES = (2000, 600)


def _churn_tramp(cpu, rip):
    """Inert pre-hook: the churn is about patch *events*, not hook work."""


def churn_one(scale: int, reps: int = REPS, quantum: int = CHURN_QUANTUM,
              every: int = CHURN_QUANTA) -> dict:
    """The ``patch_churn`` row: lorenz with a patch re-applied at a
    startup-only site every ``every`` scheduler quanta.

    Quantum boundaries land at identical retirement counts in every
    tier, so all four tiers see the same patch-event schedule and must
    stay bit-identical.  The site executes only once (before the first
    churn), so the events are pure invalidation traffic: under per-site
    invalidation the hot loop's superblocks, chains, and fused traces
    survive every event (``survived_blocks``), keeping the traced tier
    fast under churn — the wholesale-flush scheme would recompile the
    world every ``every`` quanta instead.
    """
    from repro.harness.runner import _cpu_chain_summary, _cpu_trace_summary
    from repro.kernel.kernel import LinuxKernel
    from repro.machine.cpu import CPU
    from repro.workloads import build_program

    runs = {}
    for label, (uops, chain, trace) in TIERS.items():
        best = None
        for _ in range(reps):
            program = build_program("lorenz", scale)
            cpu = CPU(program, uops=uops, chain=chain, trace=trace)
            cpu.kernel = LinuxKernel()
            site = program.entry
            churns = 0
            quanta = 0
            t0 = time.perf_counter()
            while not cpu.halted:
                cpu.run_quantum(quantum)
                quanta += 1
                if quanta % every == 0 and not cpu.halted:
                    if churns:
                        program.unpatch(site)
                    program.patch_call(site, _churn_tramp)
                    churns += 1
            seconds = time.perf_counter() - t0
            if best is None or seconds < best[0]:
                best = (seconds, cpu, churns)
        runs[label] = best

    interp_secs, interp_cpu, churns = runs["interp"]
    if not churns:
        raise AssertionError(
            f"patch_churn: zero churn events at scale {scale} — the run "
            f"is too short for quantum {quantum} x {every}")
    for label in ("uops", "chained", "traced"):
        _, other, other_churns = runs[label]
        identical = (
            interp_cpu.cycles == other.cycles
            and interp_cpu.instruction_count == other.instruction_count
            and interp_cpu.output == other.output
            and churns == other_churns
        )
        if not identical:
            raise AssertionError(
                f"patch_churn: {label} tier diverged from the interpreter "
                f"under churn (cycles {interp_cpu.cycles} vs {other.cycles})"
            )

    traced_cpu = runs["traced"][1]
    stats = traced_cpu.uop_stats.as_dict()
    if not stats.get("survived_blocks"):
        raise AssertionError(
            "patch_churn: zero superblocks survived a sync — per-site "
            "invalidation is silently degraded to a wholesale flush")
    if not stats.get("trace_compiles"):
        raise AssertionError(
            "patch_churn: traced tier compiled zero traces under churn")
    uops_secs, uops_cpu, _ = runs["uops"]
    chained_secs, chained_cpu, _ = runs["chained"]
    traced_secs = runs["traced"][0]
    n = interp_cpu.instruction_count
    return {
        "workload": "patch_churn",
        "scale": scale,
        "instructions": n,
        "simulated_cycles": uops_cpu.cycles,
        "churn_events": churns,
        "identical_results": True,
        "interp_seconds": interp_secs,
        "interp_ips": n / interp_secs,
        "uops_seconds": uops_secs,
        "uops_ips": n / uops_secs,
        "speedup": interp_secs / uops_secs,
        "chained_seconds": chained_secs,
        "chained_ips": n / chained_secs,
        "chain_speedup": interp_secs / chained_secs,
        "traced_seconds": traced_secs,
        "traced_ips": n / traced_secs,
        "trace_speedup": interp_secs / traced_secs,
        "uop_stats": stats,
        "chain_stats": _cpu_chain_summary(chained_cpu),
        "trace_stats": _cpu_trace_summary(traced_cpu),
    }


#: lazy-FP ablation rows: (workload, full_scale, quick_scale).  Run at
#: a small quantum so scheduler dispatches — where the eager full-bank
#: spill/reload lives — are frequent relative to guest work; that is
#: the regime the §3.1 lazy discipline targets.
ABLATION_WORKLOADS = [
    ("lorenz_mt", 2000, 300),
    ("mixed_mt", 2000, 300),
]
ABLATION_QUANTUM = 16


def ablation_one(workload: str, scale: int | None, reps: int = REPS) -> dict:
    """One ``FPVM_LAZY_FP`` on/off pair: same workload, same quantum,
    best-of-``reps`` host seconds each way, with guest-result equality
    and switch-machinery vacuity checks."""
    runs = {}
    for label, lazy in (("lazy", True), ("eager", False)):
        best = None
        for _ in range(reps):
            result = run_native_process(workload, scale, chain=True,
                                        quantum=ABLATION_QUANTUM,
                                        lazy_fp=lazy)
            if best is None or result.host.seconds < best.host.seconds:
                best = result
        runs[label] = best

    lazy_r, eager_r = runs["lazy"], runs["eager"]
    if (lazy_r.output != eager_r.output
            or lazy_r.instructions != eager_r.instructions):
        raise AssertionError(
            f"{workload}: lazy and eager FP switching disagree on guest "
            f"results — the discipline leaked into guest state")
    sched = lazy_r.host.sched
    if not sched["fp_switches"] or not sched["fp_saves_elided"]:
        raise AssertionError(
            f"{workload}: lazy run never exercised the switch machinery "
            f"(sched: {sched}) — the ablation row is vacuous")
    if not eager_r.host.sched["fp_eager_switches"]:
        raise AssertionError(
            f"{workload}: eager run performed zero full-bank switches — "
            f"FPVM_LAZY_FP=0 is silently ignored")
    return {
        "workload": workload,
        "scale": scale,
        "quantum": ABLATION_QUANTUM,
        "lazy_seconds": lazy_r.host.seconds,
        "eager_seconds": eager_r.host.seconds,
        #: host wall-clock win from eliding the per-dispatch spill.
        "lazy_host_speedup": eager_r.host.seconds / lazy_r.host.seconds,
        "lazy_cycles": lazy_r.cycles,
        "eager_cycles": eager_r.cycles,
        #: simulated-cycle win — deterministic, machine-independent.
        "lazy_cycle_speedup": eager_r.cycles / lazy_r.cycles,
        "fp_switches": sched["fp_switches"],
        "fp_saves_elided": sched["fp_saves_elided"],
        "fp_eager_switches": eager_r.host.sched["fp_eager_switches"],
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="reduced scales (CI perf-smoke)")
    ap.add_argument("--out", type=pathlib.Path,
                    default=pathlib.Path(__file__).parent / "results" / "BENCH_pipeline.json")
    ap.add_argument("--reps", type=int, default=REPS)
    args = ap.parse_args(argv)

    results = []
    for workload, full, quick in WORKLOADS:
        scale = quick if args.quick else full
        row = bench_one(workload, scale, args.reps)
        results.append(row)
        print(f"{workload:>10}: interp {row['interp_ips']:>10,.0f} i/s | "
              f"uops {row['uops_ips']:>10,.0f} i/s ({row['speedup']:.2f}x) | "
              f"chained {row['chained_ips']:>10,.0f} i/s "
              f"({row['chain_speedup']:.2f}x) | "
              f"traced {row['traced_ips']:>10,.0f} i/s "
              f"({row['trace_speedup']:.2f}x) | "
              f"identical={row['identical_results']}")

    churn_scale = CHURN_SCALES[1] if args.quick else CHURN_SCALES[0]
    row = churn_one(churn_scale, args.reps)
    results.append(row)
    print(f"{'patch_churn':>10}: interp {row['interp_ips']:>10,.0f} i/s | "
          f"traced {row['traced_ips']:>10,.0f} i/s "
          f"({row['trace_speedup']:.2f}x under {row['churn_events']} "
          f"churn events, "
          f"{row['uop_stats']['survived_blocks']} blocks survived)")

    ablation = []
    for workload, full, quick in ABLATION_WORKLOADS:
        scale = quick if args.quick else full
        row = ablation_one(workload, scale, args.reps)
        ablation.append(row)
        print(f"{workload:>10}: lazy FP {row['lazy_seconds']:.3f}s vs eager "
              f"{row['eager_seconds']:.3f}s "
              f"({row['lazy_host_speedup']:.2f}x host, "
              f"{row['lazy_cycle_speedup']:.2f}x simulated cycles; "
              f"{row['fp_switches']} switches, "
              f"{row['fp_saves_elided']} saves elided)")

    doc = {
        "benchmark": "uop_pipeline",
        "quick": args.quick,
        "reps": args.reps,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": results,
        "min_speedup": min(r["speedup"] for r in results),
        "min_chain_speedup": min(r["chain_speedup"] for r in results),
        "min_trace_speedup": min(r["trace_speedup"] for r in results),
        #: the ISSUE acceptance metric: trace-JIT speedup on the fusing
        #: (lorenz-class) workloads, where the ≥15x target applies.
        "lorenz_trace_speedup": max(
            r["trace_speedup"] for r in results
            if r["workload"] in TRACE_WORKLOADS
        ),
        #: FPVM_LAZY_FP on/off pairs (separate from ``results`` so the
        #: tier-ratio minima above stay defined over 4-tier rows only).
        "lazy_ablation": ablation,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out} (min speedup {doc['min_speedup']:.2f}x, "
          f"min chain speedup {doc['min_chain_speedup']:.2f}x, "
          f"lorenz trace speedup {doc['lorenz_trace_speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
