"""Host-throughput benchmark for the micro-op pipeline.

Runs each workload four times — micro-op pipeline OFF (the seed
single-step interpreter), ON with cross-quantum chaining disabled, ON
with chaining but the trace JIT off, and ON with the fused trace JIT —
asserts the simulated results are bit-identical across all tiers
(cycles, instruction count, stdout), and reports host wall-clock
guest-instructions/sec for each, writing ``BENCH_pipeline.json``.
Multi-threaded workloads (``lorenz_mt``) run under the Process
scheduler, comparing batched superblock quanta against the seed
step-wise scheduler with per-thread cycle/trap parity checks.  Chained
rows on the lorenz workloads must report a non-zero link count, and
traced rows a non-zero compile count, so a silently disabled tier
fails loudly instead of benchmarking the tier below it twice.

Usage:
    PYTHONPATH=src python benchmarks/bench_pipeline.py [--quick] [--out PATH]

``--quick`` runs reduced scales (the perf-smoke CI job); the default
scales match the ISSUE acceptance run.  The committed baseline lives at
``benchmarks/baselines/BENCH_pipeline.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.harness.runner import run_native, run_native_process
from repro.workloads import get_workload

#: (workload, full_scale, quick_scale)
WORKLOADS = [
    ("fbench", None, 6),    # None = the registry's default scale
    ("lorenz", None, 150),
    ("lorenz_mt", 2000, 300),
]
REPS = 3


def _thread_fingerprint(result) -> list | None:
    """Per-thread (cycles, instructions, traps) — the batched-vs-stepwise
    ledger parity check for Process runs."""
    if result.host.threads is None:
        return None
    return [
        (t["tid"], t["cycles"], t["instructions"], t["fp_traps"], t["bp_traps"])
        for t in result.host.threads
    ]


#: tier label -> (uops, chain, trace) runner flags.
TIERS = {
    "interp": (False, False, False),
    "uops": (True, False, False),
    "chained": (True, True, False),
    "traced": (True, True, True),
}

#: workloads whose hot loop fuses into a trace (in-run superblock
#: cycles).  The others break "unchainable" each lap (an output syscall
#: in the outer loop), so the trace recorder never sees a cycle — the
#: traced row must still be bit-identical, but compiles may be zero.
TRACE_WORKLOADS = ("lorenz",)


def bench_one(workload: str, scale: int | None, reps: int = REPS) -> dict:
    """Best-of-``reps`` for each tier, with result-equality checks."""
    runner = (run_native_process if get_workload(workload).requires_process
              else run_native)
    runs = {}
    for label, (uops, chain, trace) in TIERS.items():
        best = None
        for _ in range(reps):
            result = runner(workload, scale, uops=uops, chain=chain,
                            trace=trace)
            if best is None or result.host.seconds < best.host.seconds:
                best = result
        runs[label] = best

    interp = runs["interp"]
    for label in ("uops", "chained", "traced"):
        other = runs[label]
        identical = (
            interp.cycles == other.cycles
            and interp.instructions == other.instructions
            and interp.output == other.output
            and _thread_fingerprint(interp) == _thread_fingerprint(other)
        )
        if not identical:
            raise AssertionError(
                f"{workload}: {label} tier diverged from the interpreter "
                f"(cycles {interp.cycles} vs {other.cycles}, "
                f"instructions {interp.instructions} vs {other.instructions})"
            )

    uops, chained, traced = runs["uops"], runs["chained"], runs["traced"]
    chain_stats = chained.host.chain or {}
    if workload.startswith("lorenz") and not chain_stats.get("links_followed"):
        raise AssertionError(
            f"{workload}: chained tier followed zero links "
            f"(chain telemetry: {chain_stats}) — chaining is silently off"
        )
    trace_stats = traced.host.trace or {}
    if workload in TRACE_WORKLOADS and not trace_stats.get("trace_compiles"):
        raise AssertionError(
            f"{workload}: traced tier compiled zero traces "
            f"(trace telemetry: {trace_stats}) — the trace JIT is silently off"
        )
    row = {
        "workload": workload,
        "scale": scale,
        "instructions": uops.instructions,
        "simulated_cycles": uops.cycles,
        "identical_results": True,
        "interp_seconds": interp.host.seconds,
        "interp_ips": interp.host.ips,
        "uops_seconds": uops.host.seconds,
        "uops_ips": uops.host.ips,
        "speedup": interp.host.seconds / uops.host.seconds,
        "chained_seconds": chained.host.seconds,
        "chained_ips": chained.host.ips,
        "chain_speedup": interp.host.seconds / chained.host.seconds,
        "traced_seconds": traced.host.seconds,
        "traced_ips": traced.host.ips,
        "trace_speedup": interp.host.seconds / traced.host.seconds,
        "uop_stats": uops.host.uop_stats,
        "chain_stats": chain_stats,
        "trace_stats": trace_stats,
    }
    if uops.host.sched is not None:
        row["sched"] = uops.host.sched
        row["threads"] = len(uops.host.threads)
    return row


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="reduced scales (CI perf-smoke)")
    ap.add_argument("--out", type=pathlib.Path,
                    default=pathlib.Path(__file__).parent / "results" / "BENCH_pipeline.json")
    ap.add_argument("--reps", type=int, default=REPS)
    args = ap.parse_args(argv)

    results = []
    for workload, full, quick in WORKLOADS:
        scale = quick if args.quick else full
        row = bench_one(workload, scale, args.reps)
        results.append(row)
        print(f"{workload:>10}: interp {row['interp_ips']:>10,.0f} i/s | "
              f"uops {row['uops_ips']:>10,.0f} i/s ({row['speedup']:.2f}x) | "
              f"chained {row['chained_ips']:>10,.0f} i/s "
              f"({row['chain_speedup']:.2f}x) | "
              f"traced {row['traced_ips']:>10,.0f} i/s "
              f"({row['trace_speedup']:.2f}x) | "
              f"identical={row['identical_results']}")

    doc = {
        "benchmark": "uop_pipeline",
        "quick": args.quick,
        "reps": args.reps,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": results,
        "min_speedup": min(r["speedup"] for r in results),
        "min_chain_speedup": min(r["chain_speedup"] for r in results),
        "min_trace_speedup": min(r["trace_speedup"] for r in results),
        #: the ISSUE acceptance metric: trace-JIT speedup on the fusing
        #: (lorenz-class) workloads, where the ≥15x target applies.
        "lorenz_trace_speedup": max(
            r["trace_speedup"] for r in results
            if r["workload"] in TRACE_WORKLOADS
        ),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out} (min speedup {doc['min_speedup']:.2f}x, "
          f"min chain speedup {doc['min_chain_speedup']:.2f}x, "
          f"lorenz trace speedup {doc['lorenz_trace_speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
