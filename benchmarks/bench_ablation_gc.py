"""Ablation: GC trigger threshold (§2.5).

Frequent collection wastes cycles scanning pages; infrequent
collection grows the live heap (and per-sweep cost).  The default
(4096 allocations) sits on the flat part of the curve."""

from conftest import publish
from repro.core.vm import FPVMConfig
from repro.harness.runner import run_fpvm


def test_gc_threshold_sweep(benchmark, results_dir):
    def sweep():
        rows = []
        for threshold in (128, 512, 2048, 4096, 16384):
            r = run_fpvm("enzo", FPVMConfig.seq_short(gc_threshold=threshold))
            rows.append((threshold, r.gc_runs, r.ledger["gc"],
                         r.telemetry.gc_objects_collected))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: GC threshold (enzo, SEQ_SHORT)", "",
             f"{'threshold':>10} {'gc runs':>8} {'gc cycles':>10} {'collected':>10}"]
    for t, runs, cyc, col in rows:
        lines.append(f"{t:>10} {runs:>8} {cyc:>10} {col:>10}")
    publish(results_dir, "ablation_gc", "\n".join(lines))
    assert rows[0][1] > rows[-1][1]  # lower threshold => more GC runs
