#!/usr/bin/env python3
"""Regenerate every paper figure without pytest.

Usage:  python benchmarks/run_all_figures.py [--skip-mpfr]

Writes the paper-style tables to benchmarks/results/ and prints them.
(The pytest benchmarks in this directory do the same with assertions
and timing; this script is the quick human-facing path.)
"""

from __future__ import annotations

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from conftest import MPFR_SCALES, RESULTS_DIR, publish  # noqa: E402
from repro.harness import figures, report  # noqa: E402


def main() -> None:
    skip_mpfr = "--skip-mpfr" in sys.argv
    RESULTS_DIR.mkdir(exist_ok=True)
    t0 = time.time()

    publish(RESULTS_DIR, "trap_microbench",
            report.render_trap_microbench(figures.trap_microbenchmark(),
                                          figures.trap_class_microbenchmark()))
    publish(RESULTS_DIR, "trap_heatmap",
            report.render_trap_flow(figures.trap_heatmap()))
    publish(RESULTS_DIR, "fig03",
            report.render_magic_costs(figures.figure3(),
                                      "Figure 3: magic traps vs int3 correctness traps"))

    boxed = figures.Suite("boxed_ieee")
    publish(RESULTS_DIR, "fig01",
            report.render_breakdown(figures.figure1(boxed),
                                    "Figure 1: baseline cost breakdown (Boxed IEEE, NONE)"))
    publish(RESULTS_DIR, "fig04",
            report.render_slowdown(figures.figure4(boxed),
                                   "Figure 4: application slowdown (Boxed IEEE)"))
    publish(RESULTS_DIR, "fig05",
            report.render_slowdown(figures.figure5(boxed),
                                   "Figure 5: slowdown from lower bound (Boxed IEEE)",
                                   "vs native+altmath"))
    publish(RESULTS_DIR, "fig06",
            report.render_breakdown_by_config(
                figures.figure6(boxed),
                "Figure 6: cost breakdown with accelerations (Boxed IEEE)"))
    publish(RESULTS_DIR, "fig07",
            "Figure 7: example instruction trace\n\n" + figures.figure7(boxed))
    publish(RESULTS_DIR, "fig08",
            report.render_cdf(figures.figure8(boxed),
                              "Figure 8: sequence rank popularity CDF", "rank"))
    publish(RESULTS_DIR, "fig09",
            report.render_length_cdf(figures.figure9(boxed),
                                     "Figure 9: sequence length CDF"))
    publish(RESULTS_DIR, "fig10",
            report.render_cache_sizing(
                figures.figure10(boxed),
                "Figure 10: weighted rank popularity / trace cache sizing"))
    publish(RESULTS_DIR, "profiler_vs_static",
            report.render_patch_sites(figures.profiler_vs_static(),
                                      "Patch sites: static analysis vs profiler (§5.1)"))

    if not skip_mpfr:
        mpfr = figures.Suite("mpfr", scale_overrides=MPFR_SCALES)
        publish(RESULTS_DIR, "fig11",
                report.render_slowdown(figures.figure4(mpfr),
                                       "Figure 11: application slowdown (MPFR, 200 bits)"))
        publish(RESULTS_DIR, "fig12",
                report.render_slowdown(figures.figure5(mpfr),
                                       "Figure 12: slowdown from lower bound (MPFR)",
                                       "vs native+altmath"))
        publish(RESULTS_DIR, "fig13",
                report.render_breakdown_by_config(
                    figures.figure6(mpfr),
                    "Figure 13: cost breakdown with accelerations (MPFR)"))

    print(f"\nall figures regenerated in {time.time() - t0:.0f}s -> {RESULTS_DIR}/")


if __name__ == "__main__":
    main()
