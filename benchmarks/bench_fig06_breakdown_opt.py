"""Figure 6: per-instruction cost breakdown under each acceleration
(Boxed IEEE), with the per-bar speedup factors.

Paper shape: SHORT collapses kernel+ret; SEQ amortizes hw+kernel+ret
by the average sequence length; combined, altmath becomes the largest
component (the Amdahl limit)."""

from conftest import publish
from repro.harness import charts, figures, report
from repro.machine.costs import LEDGER_CATEGORIES


def test_figure6(benchmark, boxed_suite, results_dir):
    data = benchmark.pedantic(figures.figure6, args=(boxed_suite,), rounds=1, iterations=1)
    publish(results_dir, "fig06",
            report.render_breakdown_by_config(
                data, "Figure 6: cost breakdown with accelerations (Boxed IEEE)"))
    publish(results_dir, "fig06_chart",
            charts.breakdown_by_config_chart(data, "Figure 6 (stacked bars)"))
    for w, rows in data.items():
        by = {r.config: r for r in rows}
        # SHORT cuts the kernel category by ~an order of magnitude.
        assert by["SHORT"].amortized["kernel"] < by["NONE"].amortized["kernel"] / 8
        # SEQ amortizes hw.
        assert by["SEQ"].amortized["hw"] < by["NONE"].amortized["hw"] / 1.5
        # Combined: altmath is the largest category (Amdahl limit).
        opt = by["SEQ_SHORT"].amortized
        assert opt["altmath"] == max(opt[c] for c in LEDGER_CATEGORIES), w
        assert by["SEQ_SHORT"].speedup_vs_none > 4
