"""Wall-clock microbenchmarks of the simulator's hot primitives.

These are the only benchmarks here that measure *host* time (the
figure benches measure simulated cycles): they track the throughput of
the substrate so regressions in the reproduction itself are visible.
"""

from repro.altmath.posit import fraction_to_posit, posit_to_fraction, Posit
from repro.core.alloc import BoxAllocator
from repro.core import nanbox
from repro.fpu import bits as B
from repro.fpu.ieee import ieee_add, ieee_mul
from repro.fpu.softfloat import BigFloat, BigFloatContext
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.decoder import decode_instruction

from fractions import Fraction


def test_decoder_throughput(benchmark):
    prog = assemble("main:\n  movsd xmm0, [rax + rcx*8 + 32]\n  hlt\n")
    raw = prog.instructions[0].raw
    instr = benchmark(decode_instruction, raw, 0x400000)
    assert instr.mnemonic == "movsd"


def test_ieee_add_oracle(benchmark):
    a, b = B.float_to_bits(0.1), B.float_to_bits(0.2)
    r = benchmark(ieee_add, a, b)
    assert r.flags.inexact


def test_ieee_mul_oracle(benchmark):
    a, b = B.float_to_bits(0.1), B.float_to_bits(0.3)
    r = benchmark(ieee_mul, a, b)
    assert r.flags.inexact


def test_bigfloat_mul_200bit(benchmark):
    ctx = BigFloatContext(200)
    x = BigFloat.from_float(0.1, ctx)
    y = BigFloat.from_float(0.3, ctx)
    r = benchmark(x.mul, y, ctx)
    assert not r.is_nan()


def test_bigfloat_sqrt_200bit(benchmark):
    ctx = BigFloatContext(200)
    x = BigFloat.from_float(2.0, ctx)
    r = benchmark(x.sqrt, ctx)
    assert not r.is_nan()


def test_posit64_round_trip(benchmark):
    def round_trip():
        p = fraction_to_posit(Fraction(355, 113), 64)
        return posit_to_fraction(p)

    v = benchmark(round_trip)
    assert abs(v - Fraction(355, 113)) < Fraction(1, 10**12)


def test_gc_collect_throughput(benchmark):
    prog = assemble("main:\n  hlt\n")
    cpu = CPU(prog)
    alloc = BoxAllocator()
    ptrs = [alloc.alloc(float(i)) for i in range(512)]
    # Half the boxes live in memory, half are garbage.
    for i, ptr in enumerate(ptrs[::2]):
        cpu.mem.write_u64(0x600000 + 8 * i, nanbox.box_bits(ptr))

    def collect():
        # Re-add the garbage each round so there is work to do.
        for i in range(256):
            alloc.alloc(float(i))
        return alloc.collect(cpu)

    collected, pages = benchmark(collect)
    assert collected >= 256


def test_cpu_interpreter_throughput(benchmark):
    src = (
        "main:\n  mov rcx, 200\n  mov rax, 0\n"
        "top:\n  add rax, rcx\n  dec rcx\n  jne top\n  hlt\n"
    )

    def run():
        cpu = CPU(assemble(src))
        cpu.kernel = LinuxKernel()
        cpu.run()
        return cpu

    cpu = benchmark(run)
    assert cpu.regs.gpr[0] == sum(range(1, 201))
