"""Figure 7: an example instruction trace (the paper prints the 3rd
most popular Lorenz trace, 15 instructions, terminated by an
unsupported movhpd partial-vector move)."""

from conftest import publish
from repro.harness import figures


def test_figure7(benchmark, boxed_suite, results_dir):
    text = benchmark.pedantic(
        figures.figure7, args=(boxed_suite, "lorenz", 2), rounds=1, iterations=1
    )
    publish(results_dir, "fig07", "Figure 7: example instruction trace\n\n" + text)
    assert "addsd" in text or "mulsd" in text or "subsd" in text
    assert "terminator" in text
