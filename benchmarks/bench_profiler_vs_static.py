"""§5.1: the profiling-based patch-site finder vs the conservative
static analysis.  The profiler must find a subset of the static sites
(it observes one concrete run), and correctness overhead with the
profiler is near-eliminated in the breakdowns."""

from conftest import publish
from repro.harness import figures, report


def test_profiler_vs_static(benchmark, results_dir):
    rows = benchmark.pedantic(figures.profiler_vs_static, rounds=1, iterations=1)
    publish(results_dir, "profiler_vs_static",
            report.render_patch_sites(rows, "Patch sites: static analysis vs profiler (§5.1)"))
    for r in rows:
        assert r.profiler_subset, r.workload
        assert r.profiler_sites <= r.static_sites


def test_correctness_overhead_eliminated(benchmark, boxed_suite, results_dir):
    data = benchmark.pedantic(figures.figure6, args=(boxed_suite,), rounds=1, iterations=1)
    lines = ["Correctness overhead share with profiler + magic traps (§5)", ""]
    for w, rows in data.items():
        opt = {r.config: r for r in rows}["SEQ_SHORT"].amortized
        share = opt["corr"] / max(sum(opt.values()), 1e-9)
        lines.append(f"  {w:<16} corr = {opt['corr']:6.1f} cyc/instr ({100*share:.2f}%)")
        assert share < 0.05, w  # "practically eliminates the overhead"
    publish(results_dir, "corr_share", "\n".join(lines))
