"""Figure 9: instruction sequence length distribution.

Paper shape: distributions vary widely; Lorenz has an extremely long
tail; most workloads are dominated by short sequences."""

from conftest import publish
from repro.harness import figures, report


def test_figure9(benchmark, boxed_suite, results_dir):
    data = benchmark.pedantic(figures.figure9, args=(boxed_suite,), rounds=1, iterations=1)
    publish(results_dir, "fig09",
            report.render_length_cdf(data, "Figure 9: sequence length CDF"))
    max_len = {w: max(l for l, _ in series) for w, series in data.items()}
    # Distributions vary widely across workloads (the paper's point),
    # and Lorenz has a long tail.
    assert max(max_len.values()) > 2 * min(max_len.values())
    assert max_len["lorenz"] > 30
