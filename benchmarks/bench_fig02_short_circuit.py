"""Figure 2: trap short-circuiting reduces delivery ~8x.

The figure is a mechanism diagram; its quantitative content is the
delivery-path comparison: regular signal delivery + sigreturn
(~5600 cycles) vs custom delivery + iretq (~350+100 cycles)."""

from conftest import publish
from repro.harness import figures, report


def test_figure2_short_circuit_reduction(benchmark, results_dir):
    table = benchmark.pedantic(figures.figure2, rounds=1, iterations=1)
    lines = [
        "Figure 2: trap delivery path comparison",
        "",
        f"  regular signal delivery + return: {table.signal_delivery + table.sigreturn:7.0f} cycles",
        f"  short-circuit delivery + return:  {table.short_delivery + table.short_return:7.0f} cycles",
        f"  reduction: {table.delegation_reduction:.1f}x (paper: ~8x)",
    ]
    publish(results_dir, "fig02", "\n".join(lines))
    assert table.delegation_reduction > 6
