"""Sensitivity: how do the techniques' benefits depend on the kernel's
signal-delivery cost?

The paper's motivation is that POSIX delivery costs ~3800 cycles.  This
sweep re-prices delivery and locates the crossover: with cheap enough
signals, trap short-circuiting stops mattering while sequence emulation
keeps paying (it also amortizes hw and FPVM software costs)."""

import dataclasses

from conftest import publish
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.costs import DEFAULT_COSTS
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library
from repro.workloads import build_program


def run_with_costs(costs, config) -> int:
    program = build_program("lorenz", scale=120)
    cpu = CPU(program, costs=costs)
    kernel = LinuxKernel(costs=costs)
    cpu.kernel = kernel
    FPVM(config).attach(cpu, kernel)
    cpu.run()
    return cpu.cycles


def test_signal_cost_sweep(benchmark, results_dir):
    def sweep():
        rows = []
        for deliver in (400, 1000, 2000, 3800, 8000):
            costs = dataclasses.replace(
                DEFAULT_COSTS, signal_deliver=deliver,
                sigreturn=max(deliver // 2, 150),
            )
            none = run_with_costs(costs, FPVMConfig.none())
            seq = run_with_costs(costs, FPVMConfig.seq())
            short = run_with_costs(costs, FPVMConfig.short())
            rows.append((deliver, none / short, none / seq))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Sensitivity: signal delivery cost vs technique benefit (lorenz)",
             "", f"{'deliver cyc':>12} {'SHORT gain':>11} {'SEQ gain':>10}"]
    for deliver, short_gain, seq_gain in rows:
        lines.append(f"{deliver:>12} {short_gain:>10.2f}x {seq_gain:>9.2f}x")
    publish(results_dir, "sensitivity_signal_cost", "\n".join(lines))
    # SHORT's benefit grows with delivery cost; SEQ's also grows but
    # keeps a floor (it amortizes hw + software costs too).
    short_gains = [r[1] for r in rows]
    assert short_gains == sorted(short_gains)
    assert rows[0][2] > 1.5  # SEQ still wins when signals are cheap
    # Crossover: with cheap signals SEQ beats SHORT; with the paper's
    # costs SHORT overtakes it on this short-sequence-free workload? No:
    # lorenz is long-sequence, so SEQ wins everywhere — assert that too.
    assert all(seq >= short * 0.8 for _, short, seq in rows)
