"""Ablation: compiling with FMA fusion (-mfma analog).

Fusion shrinks the FP instruction count (one trap-capable instruction
where two stood) and single-rounds a*b+c — changing both the trap
profile and (slightly) the numerics; results remain bit-for-bit equal
between native and virtualized runs of the *same* binary."""

from conftest import publish
from repro.core.vm import FPVMConfig
from repro.harness.runner import run_fpvm, run_native
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library
from repro.workloads import get_workload


def _run(fuse: bool):
    module = get_workload("lorenz").build_module(scale=300)
    module.fuse_fma = fuse
    program = module.compile()
    install_host_library(program)
    native = CPU(program)
    native.kernel = LinuxKernel()
    native.run()

    program2 = get_workload("lorenz").build_module(scale=300)
    program2.fuse_fma = fuse
    prog2 = program2.compile()
    install_host_library(prog2)
    from repro.core.vm import FPVM

    cpu = CPU(prog2)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(FPVMConfig.seq_short()).attach(cpu, kernel)
    cpu.run()
    assert cpu.output == native.output  # bit-for-bit, fused or not
    fma_count = sum(1 for i in prog2.instructions if i.mnemonic == "vfmadd213sd")
    return native, cpu, vm, fma_count


def test_fma_fusion(benchmark, results_dir):
    def measure():
        return _run(False), _run(True)

    (n0, c0, v0, f0), (n1, c1, v1, f1) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    lines = [
        "Ablation: FMA fusion (lorenz, SEQ_SHORT)", "",
        f"{'':<12}{'fma instrs':>11}{'native cyc':>12}{'fpvm cyc':>12}{'emulated':>10}",
        f"{'scalar':<12}{f0:>11}{n0.cycles:>12}{c0.cycles:>12}{v0.telemetry.emulated_instructions:>10}",
        f"{'fused':<12}{f1:>11}{n1.cycles:>12}{c1.cycles:>12}{v1.telemetry.emulated_instructions:>10}",
    ]
    publish(results_dir, "ablation_fma", "\n".join(lines))
    assert f0 == 0 and f1 > 0
    # Fusion removes instructions from the emulated stream.
    assert v1.telemetry.emulated_instructions < v0.telemetry.emulated_instructions
