"""Ablation: sequence termination rule (2) (§4.1's tradeoff).

Rule (2) stops emulation at FP instructions with no NaN-boxed source
(they might run natively for free).  We cannot disable the rule without
breaking the cost argument, but we can quantify its effect by counting
the re-faults it causes: sequences ending in no_boxed_source whose
terminator immediately traps again."""

from conftest import publish
from repro.core.vm import FPVMConfig
from repro.harness.runner import run_fpvm


def test_rule2_refault_rate(benchmark, results_dir):
    def measure():
        out = {}
        for w in ("lorenz", "enzo", "fbench"):
            r = run_fpvm(w, FPVMConfig.seq_short(), scale=None)
            stats = r.trace_stats
            total = stats.total_sequences()
            rule2 = sum(rec.count for rec in stats.traces.values()
                        if rec.reason == "no_boxed_source")
            out[w] = (rule2, total)
        return out

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Ablation: termination rule (2) incidence", ""]
    for w, (rule2, total) in data.items():
        pct = 100.0 * rule2 / max(total, 1)
        lines.append(f"  {w:<12} {rule2:6d}/{total:<6d} sequences end on rule (2) ({pct:.1f}%)")
    publish(results_dir, "ablation_seq_rules", "\n".join(lines))
    # The rule must fire somewhere (it is load-bearing) but not dominate.
    assert any(r for r, _ in data.values())
