"""Ablation: decode/trace cache capacity sweep (§6.3's sizing question).

Paper: the default 64K-entry cache is never stressed (<2000 live
entries); shrinking it below the working set converts decache hits
into expensive Capstone decodes."""

from conftest import publish
from repro.core.vm import FPVMConfig
from repro.harness.runner import run_fpvm


def test_cache_capacity_sweep(benchmark, results_dir):
    def sweep():
        rows = []
        for cap in (2, 8, 32, 128, 1024, 65536):
            r = run_fpvm("enzo", FPVMConfig.seq_short(decode_cache_capacity=cap))
            rows.append((cap, r.telemetry.decode_misses, r.ledger["decode"], r.cycles))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: decode cache capacity (enzo, SEQ_SHORT)", "",
             f"{'capacity':>9} {'misses':>8} {'decode cyc':>11} {'total cyc':>11}"]
    for cap, misses, decode, cycles in rows:
        lines.append(f"{cap:>9} {misses:>8} {decode:>11} {cycles:>11}")
    publish(results_dir, "ablation_cache_size", "\n".join(lines))
    # Tiny cache thrashes; big caches converge (64K == 1K here).
    assert rows[0][1] > 10 * rows[-1][1]
    assert rows[-2][3] == rows[-1][3]
