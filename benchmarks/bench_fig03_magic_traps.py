"""Figure 3: magic traps vs int3 traps for memory-escape correctness.

Paper: the int3 path costs a hardware trap + SIGTRAP delivery +
sigreturn (~5980 cycles); the magic path is a double-indirect call
(~100 cycles incl. the trampoline's register save): 14-120x cheaper."""

from conftest import publish
from repro.harness import figures, report


def test_figure3(benchmark, results_dir):
    costs = benchmark.pedantic(figures.figure3, rounds=1, iterations=1)
    publish(results_dir, "fig03",
            report.render_magic_costs(costs, "Figure 3: magic traps vs int3 correctness traps"))
    assert costs.reduction > 10
