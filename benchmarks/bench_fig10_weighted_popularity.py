"""Figure 10: sequence-length-weighted rank popularity — "if we cached
only the top-k sequences, what average sequence length would we get?"
— plus the §6.3 trace-cache sizing arithmetic.

Paper: Lorenz converges by rank ~18 to avg ~32 (=> ~576 entries);
Enzo needs ~600 ranks at avg ~3 (~1800 entries, ~1.8MB); every run
fits comfortably in the 64K-entry decode cache."""

from conftest import publish
from repro.harness import figures, report


def test_figure10(benchmark, boxed_suite, results_dir):
    data = benchmark.pedantic(figures.figure10, args=(boxed_suite,), rounds=1, iterations=1)
    text = report.render_cache_sizing(
        data, "Figure 10: weighted rank popularity / trace cache sizing")
    publish(results_dir, "fig10", text)
    for w, sizing in data.items():
        assert sizing.cache_entries < 65536, w  # fits the default cache
        assert sizing.weighted_by_rank[-1] > 0
    assert data["lorenz"].average_length == max(s.average_length for s in data.values())
