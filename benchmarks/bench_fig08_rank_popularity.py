"""Figure 8: instruction sequence rank popularity (CDF of emulated
instructions covered by the top-k traces).

Paper shape: the benchmarks' CDFs are far left (fewer than 100
sequences cover them); Enzo needs ~350 ranks for 90%."""

from conftest import publish
from repro.harness import figures, report


def test_figure8(benchmark, boxed_suite, results_dir):
    data = benchmark.pedantic(figures.figure8, args=(boxed_suite,), rounds=1, iterations=1)
    publish(results_dir, "fig08",
            report.render_cdf(data, "Figure 8: sequence rank popularity CDF", "rank"))
    for w, series in data.items():
        # A handful of traces covers most of the action...
        k = min(len(series), 100)
        assert series[k - 1] > 80, w
    # ...and Enzo needs the most ranks of anyone (paper's right-curve).
    ranks_to_90 = {
        w: next(i + 1 for i, v in enumerate(series) if v >= 90)
        for w, series in data.items()
    }
    assert ranks_to_90["enzo"] == max(ranks_to_90.values())
