"""Ablation: lazy vs eager state save in the trap entry stubs.

§3.1: "FPVM eagerly saves and restores the entire GPR and FPR state
... a possible future optimization might be lazy save/restore of this
state ... this might lead to even lower overhead."  Quantified here as
the per-trap handler-entry cost difference."""

from conftest import publish
from repro.core.vm import FPVMConfig
from repro.harness.runner import run_fpvm


def test_lazy_state_save(benchmark, results_dir):
    def measure():
        eager = run_fpvm("enzo", FPVMConfig.seq_short())
        lazy = run_fpvm("enzo", FPVMConfig.seq_short(lazy_state_save=True))
        return eager, lazy

    eager, lazy = benchmark.pedantic(measure, rounds=1, iterations=1)
    saved = eager.cycles - lazy.cycles
    per_trap = saved / max(lazy.traps, 1)
    lines = [
        "Ablation: lazy vs eager entry-stub state save (enzo, SEQ_SHORT)", "",
        f"  eager cycles: {eager.cycles:>12,}",
        f"  lazy cycles:  {lazy.cycles:>12,}",
        f"  saved/trap:   {per_trap:>12.0f} cycles",
    ]
    publish(results_dir, "ablation_lazy_save", "\n".join(lines))
    assert lazy.cycles < eager.cycles
    assert lazy.output == eager.output
