"""Figure 11: application slowdown under MPFR (200-bit BigFloat).

Paper shape: absolute slowdowns comparable to or above Boxed IEEE
(MPFR itself is expensive), and all four configurations still order
NONE > SEQ/SHORT > SEQ_SHORT."""

from conftest import publish
from repro.harness import figures, report


def test_figure11(benchmark, mpfr_suite, results_dir):
    data = benchmark.pedantic(figures.figure4, args=(mpfr_suite,), rounds=1, iterations=1)
    publish(results_dir, "fig11",
            report.render_slowdown(data, "Figure 11: application slowdown (MPFR, 200 bits)"))
    for w, cfgs in data.items():
        assert cfgs["SEQ_SHORT"] < cfgs["NONE"], w
