"""Exception-flow observability: the NaN-provenance lifecycle.

Three contracts under test:

1. **Lifecycle** — boxes are born at the right (rip, class) sites,
   propagate along edges, and die for the right reasons (consumed,
   clamped, demoted, collected) on the trap-diverse storm workloads.
2. **Tier independence** — the interpreter, uop, chained, and traced
   tiers produce the *same* flow graph for the same guest, because the
   recorder sits behind the one trap/emulate seam they all share.
3. **Purity** — recording provenance never alters architectural state:
   with flow on vs off, stdout, the demoted memory digest, simulated
   cycles, and instruction counts are bit-identical (hypothesis-fuzzed
   over generated programs), and flow is off by default.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import oracle
from repro.conformance.generators import fuzz_program
from repro.core.vm import FPVMConfig
from repro.fpu.ieee import FPFlags
from repro.harness.runner import run_fpvm
from repro.observability import (
    KILL_REASONS,
    TRAP_CLASSES,
    FlowRecorder,
    classify_flags,
    flow_enabled_default,
)

pytestmark = pytest.mark.flow

#: the four host execution tiers the flow seam must be independent of.
TIERS = {
    "interp": dict(uops=False, chain=False, trace=False),
    "uops": dict(uops=True, chain=False, trace=False),
    "chained": dict(uops=True, chain=True, trace=False),
    "traced": dict(uops=True, chain=True, trace=True),
}


def run_tier(workload: str, tier: str, scale: int, **config_kwargs):
    t = TIERS[tier]
    cfg = FPVMConfig.seq_short(flow=True, uops=t["uops"], **config_kwargs)
    return run_fpvm(workload, cfg, scale=scale,
                    chain=t["chain"], trace=t["trace"])


# ------------------------------------------------------------ classify
class TestClassify:
    def test_disabled(self):
        assert classify_flags(None) == "disabled"
        assert classify_flags(FPFlags()) == "disabled"

    def test_priority_matches_cost_model(self):
        # invalid > divzero > denormal > overflow > underflow > inexact
        assert classify_flags(FPFlags(invalid=True, inexact=True)) == "invalid"
        assert classify_flags(FPFlags(zero_divide=True, inexact=True)) == "divzero"
        assert classify_flags(FPFlags(denormal=True, underflow=True)) == "denormal"
        assert classify_flags(FPFlags(overflow=True, inexact=True)) == "overflow"
        assert classify_flags(FPFlags(underflow=True, inexact=True)) == "underflow"
        assert classify_flags(FPFlags(inexact=True)) == "inexact"


# ------------------------------------------------------ recorder units
class TestRecorder:
    def test_birth_edge_kill(self):
        r = FlowRecorder()
        r.begin_trap(0x10, "denormal")
        r.begin_op(0x10)
        r.note_birth(ptr=100)
        r.end_op()
        r.end_trap()

        r.begin_trap(0x20, "invalid")
        r.begin_op(0x20)
        r.note_source(100)
        r.note_birth(ptr=104)
        r.end_op()
        r.end_trap()

        assert r.births == {(0x10, "denormal"): 1, (0x20, "invalid"): 1}
        assert r.edges == {((0x10, "denormal"), (0x20, "invalid")): 1}
        assert not r.kills

    def test_consumed_and_clamped(self):
        r = FlowRecorder()
        r.begin_trap(0x10, "overflow")
        r.begin_op(0x10)
        r.note_birth(ptr=100)
        r.end_op()
        r.end_trap()
        # a compare consumes the box: no produce drains the source.
        r.begin_trap(0x20, "invalid")
        r.begin_op(0x20)
        r.note_source(100)
        r.end_op()
        r.end_trap()
        # inf - inf produces a real NaN: clamp kills the sources.
        r.begin_trap(0x30, "invalid")
        r.begin_op(0x30)
        r.note_source(100)
        r.note_clamp()
        r.end_op()
        r.end_trap()
        assert r.kills_by_reason() == {"consumed": 1, "clamped": 1}

    def test_ptr_reuse_gets_new_generation(self):
        r = FlowRecorder()
        r.begin_op(0x10)
        r.note_birth(ptr=100)
        gen1 = r.live[100][0]
        r.on_free([100])
        r.begin_op(0x20)
        r.note_birth(ptr=100)  # free-list reuse of the same slot
        gen2, site = r.live[100]
        assert gen2 > gen1
        assert site == (0x20, "fcall")
        assert r.kills_by_reason() == {"collected": 1}

    def test_unowned_sources_ignored(self):
        r = FlowRecorder()
        r.begin_op(0x10)
        r.note_source(999)  # never born: foreign/stale pointer
        r.note_birth(ptr=100)
        assert not r.edges


# ------------------------------------------------- lifecycle on storms
class TestStormLifecycle:
    def test_denorm_storm_birth_classes(self):
        result = run_tier("denorm_storm", "traced", scale=30)
        classes = result.flow.birth_classes()
        # under SEQ_SHORT the boxed-accumulator adds are emulated inside
        # the preceding trap's sequence window, so the rare classes show;
        # the adds' own invalid births need trap-per-op (NONE, below).
        for cls in ("denormal", "underflow", "inexact"):
            assert classes.get(cls, 0) >= 30, (cls, classes)
        none = run_fpvm("denorm_storm", FPVMConfig.none(flow=True), scale=30)
        assert none.flow.birth_classes().get("invalid", 0) >= 30

    def test_range_storm_covers_remaining_classes_and_kills(self):
        result = run_tier("range_storm", "traced", scale=30)
        traps = result.flow.traps_by_class
        for cls in ("overflow", "divzero", "invalid", "inexact"):
            assert traps.get(cls, 0) >= 30, (cls, dict(traps))
        kills = result.flow.kills_by_reason()
        assert kills.get("consumed", 0) >= 30
        assert kills.get("clamped", 0) >= 30

    def test_storms_cover_every_trap_class(self):
        seen = set()
        for w in ("denorm_storm", "range_storm"):
            seen |= set(run_tier(w, "traced", scale=20).flow.traps_by_class)
        assert seen >= set(TRAP_CLASSES)

    def test_gc_sweep_records_collected_kills(self):
        result = run_tier("denorm_storm", "traced", scale=40, gc_threshold=64)
        kills = result.flow.kills_by_reason()
        assert result.gc_runs > 0
        assert kills.get("collected", 0) > 0
        assert set(kills) <= set(KILL_REASONS)

    def test_host_perf_carries_flow_summary(self):
        result = run_tier("range_storm", "uops", scale=10)
        flow = result.host.flow
        assert flow is not None
        assert flow["births"] > 0
        assert flow["birth_sites"] > 0
        assert set(flow["kills_by_reason"]) <= set(KILL_REASONS)


# ------------------------------------------------- tier independence
@pytest.mark.parametrize("workload,scale", [
    ("denorm_storm", 25), ("range_storm", 20), ("lorenz", 15),
])
def test_all_tiers_produce_identical_flow_graphs(workload, scale):
    runs = {t: run_tier(workload, t, scale) for t in TIERS}
    ref = runs["interp"]
    ref_fp = ref.flow.fingerprint()
    for tier, result in runs.items():
        assert result.output == ref.output, tier
        assert result.cycles == ref.cycles, tier
        assert result.flow.fingerprint() == ref_fp, (
            f"{tier} tier flow graph diverges from the interpreter")


# ----------------------------------------------------------- purity
def test_flow_disabled_by_default(monkeypatch):
    monkeypatch.delenv("FPVM_FLOW", raising=False)
    assert flow_enabled_default() is False
    result = run_fpvm("denorm_storm", FPVMConfig.seq_short(), scale=5)
    assert result.flow is None
    assert result.host.flow is None


def test_env_knob_enables_flow(monkeypatch):
    monkeypatch.setenv("FPVM_FLOW", "1")
    assert flow_enabled_default() is True
    result = run_fpvm("denorm_storm", FPVMConfig.seq_short(), scale=5)
    assert result.flow is not None
    # the explicit config field wins over the environment.
    off = run_fpvm("denorm_storm", FPVMConfig.seq_short(flow=False), scale=5)
    assert off.flow is None


@given(seed=st.integers(min_value=0, max_value=63))
@settings(max_examples=10, deadline=None)
def test_provenance_never_alters_architectural_state(seed):
    """Flow on vs off: bit-identical guest observables on fuzzed
    programs (a fresh image per run — attach mutates the image)."""
    off = oracle.run_cell(fuzz_program(seed), FPVMConfig.seq_short(), "flow_off")
    on = oracle.run_cell(fuzz_program(seed),
                         FPVMConfig.seq_short(flow=True), "flow_on")
    assert on.output == off.output
    assert on.memory_digest == off.memory_digest
    assert on.cycles == off.cycles
    assert on.instructions == off.instructions
    assert not on.invariant_failures


@pytest.mark.parametrize("workload,scale", [
    ("denorm_storm", 30), ("lorenz", 20),
])
def test_provenance_pure_on_workloads(workload, scale):
    off = run_fpvm(workload, FPVMConfig.seq_short(), scale=scale)
    on = run_fpvm(workload, FPVMConfig.seq_short(flow=True), scale=scale)
    assert on.output == off.output
    assert on.cycles == off.cycles
    assert on.traps == off.traps
