"""Host-throughput regression gate (``pytest -m perf_smoke``).

Runs the pipeline benchmark at quick scales and compares each
workload's *speedup ratios* (uops, chained, and traced vs. the
interpreter) against the committed baseline.  The ratios are
machine-independent — all tiers slow down together on a loaded or
slower host — so the gate stays meaningful in CI, unlike absolute
instructions/sec.  Two vacuity guards ride along: the chained tier
must actually chain (zero links followed on a lorenz workload fails)
and the traced tier must actually fuse (zero trace compiles on a
trace workload fails) — a silently disabled tier would otherwise sail
through the ratio gate at chained-tier speed."""

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
BASELINE = REPO / "benchmarks" / "baselines" / "BENCH_pipeline.json"

#: A run below ``baseline_speedup * (1 - TOLERANCE)`` fails the gate.
TOLERANCE = 0.30


def _load_bench_module():
    path = REPO / "benchmarks" / "bench_pipeline.py"
    spec = importlib.util.spec_from_file_location("bench_pipeline", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.perf_smoke
def test_pipeline_speedup_no_regression(tmp_path):
    bench = _load_bench_module()
    out = tmp_path / "BENCH_pipeline.json"
    assert bench.main(["--quick", "--out", str(out)]) == 0

    current_doc = json.loads(out.read_text())
    baseline_doc = json.loads(BASELINE.read_text())
    current = {r["workload"]: r for r in current_doc["results"]}
    baseline = {r["workload"]: r for r in baseline_doc["results"]}
    assert set(current) == set(baseline)

    failures = []
    for workload, base in baseline.items():
        row = current[workload]
        assert row["identical_results"], f"{workload}: simulated results diverged"
        for ratio in ("speedup", "chain_speedup", "trace_speedup"):
            floor = base[ratio] * (1 - TOLERANCE)
            if row[ratio] < floor:
                failures.append(
                    f"{workload}: {ratio} {row[ratio]:.2f}x < floor "
                    f"{floor:.2f}x (baseline {base[ratio]:.2f}x)"
                )
        if workload.startswith("lorenz"):
            links = (row.get("chain_stats") or {}).get("links_followed", 0)
            if not links:
                failures.append(f"{workload}: chained tier followed zero links")
        if workload in bench.TRACE_WORKLOADS:
            compiles = (row.get("trace_stats") or {}).get("trace_compiles", 0)
            if not compiles:
                failures.append(f"{workload}: traced tier compiled zero traces")
        if workload == "patch_churn":
            # the per-site invalidation gate: the traced tier must stay
            # >= 3x the interpreter *under churn*, with warm blocks
            # demonstrably surviving each patch event (a wholesale
            # flush would zero survived_blocks and sink the ratio).
            if row["trace_speedup"] < 3.0:
                failures.append(
                    f"patch_churn: traced speedup {row['trace_speedup']:.2f}x "
                    f"under churn < 3.0x floor")
            if not row["uop_stats"].get("survived_blocks"):
                failures.append(
                    "patch_churn: zero superblocks survived a churn sync")
            if not row.get("churn_events"):
                failures.append("patch_churn: zero churn events (vacuous row)")

    # ------------------------------------------------ lazy-FP ablation
    # The §3.1 gate: lazy-on must beat lazy-off on the mostly-integer
    # ensemble and must never regress lorenz_mt.  The host-seconds
    # ratio gets the usual tolerance; the simulated-cycle ratio is
    # deterministic, so it gets a hard floor instead.
    cur_abl = {r["workload"]: r for r in current_doc.get("lazy_ablation", [])}
    base_abl = {r["workload"]: r for r in baseline_doc.get("lazy_ablation", [])}
    assert set(cur_abl) == set(base_abl), "lazy ablation rows changed"
    for workload, base in base_abl.items():
        row = cur_abl[workload]
        floor = base["lazy_host_speedup"] * (1 - TOLERANCE)
        if row["lazy_host_speedup"] < floor:
            failures.append(
                f"{workload}: lazy host speedup {row['lazy_host_speedup']:.2f}x "
                f"< floor {floor:.2f}x (baseline {base['lazy_host_speedup']:.2f}x)")
        if row["lazy_cycle_speedup"] < base["lazy_cycle_speedup"] * 0.95:
            failures.append(
                f"{workload}: lazy cycle speedup {row['lazy_cycle_speedup']:.2f}x "
                f"< {base['lazy_cycle_speedup'] * 0.95:.2f}x — switch charges "
                f"drifted (deterministic metric)")
        if not row["fp_switches"] or not row["fp_saves_elided"]:
            failures.append(f"{workload}: lazy ablation row is vacuous")
    if "mixed_mt" in cur_abl and cur_abl["mixed_mt"]["lazy_host_speedup"] < 1.0:
        failures.append(
            "mixed_mt: lazy-on is slower than eager on the host — "
            "the elision machinery costs more than it saves")
    assert not failures, "; ".join(failures)


# ---------------------------------------------------------- flow gate
@pytest.mark.perf_smoke
def test_flow_disabled_is_free():
    """The FPVM_FLOW=0 contract: provenance recording off (the
    default) must cost nothing on the virtualized hot path.  The
    disabled run can never be slower than the enabled one beyond host
    noise (the enabled path does strictly more work), the simulated
    observables are bit-identical either way, and a vacuity guard
    proves the enabled path actually records — a silently-None
    recorder would make the perf half of this gate meaningless."""
    from repro.core.vm import FPVMConfig
    from repro.harness.runner import run_fpvm
    from repro.observability import flow_enabled_default

    assert not flow_enabled_default(), "FPVM_FLOW leaked into the gate env"

    def best_of(flow: bool, reps: int = 3):
        best = None
        for _ in range(reps):
            r = run_fpvm("lorenz", FPVMConfig.seq_short(flow=flow, uops=True),
                         scale=150, chain=True, trace=True)
            if best is None or r.host.seconds < best.host.seconds:
                best = r
        return best

    off = best_of(flow=False)
    on = best_of(flow=True)
    assert off.flow is None and on.flow is not None
    # bit-identity: recording is observation, never behavior.
    assert off.output == on.output
    assert off.cycles == on.cycles
    assert off.traps == on.traps
    # perf: disabled-path guards must stay within noise of free.
    assert off.host.seconds <= on.host.seconds * (1 + TOLERANCE), (
        f"flow-off {off.host.seconds:.3f}s slower than flow-on "
        f"{on.host.seconds:.3f}s beyond {TOLERANCE:.0%} noise")

    # vacuity: the enabled path records real provenance on the storm.
    storm = run_fpvm("denorm_storm", FPVMConfig.seq_short(flow=True, uops=True),
                     scale=40, chain=True, trace=True)
    flow = storm.flow.as_dict()
    assert flow["births"] > 0, "flow enabled but zero births recorded"
    assert storm.flow.traps_by_class.get("denormal", 0) > 0, (
        "denorm_storm raised no denormal traps — the storm is vacuous")
