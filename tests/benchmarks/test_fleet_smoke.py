"""Fleet-serving throughput gate (``pytest -m perf_smoke``).

Runs the fleet benchmark at quick scale and gates on:

- **bit-identity**: every worker count's per-guest ledgers match the
  cold serial oracle (the benchmark itself asserts this; the gate
  re-checks the recorded flag);
- **COW vacuity**: zero COW faults means guests stopped sharing the
  template image — the benchmark would be measuring private-copy
  execution and its numbers would be meaningless;
- **scaling floors**: guests/sec at 2 workers must be >= 1.6x the
  1-worker pool (and 4 workers >= 2.5x) — enforced only when the host
  exposes enough cores (CI's runners do; a 1-core sandbox physically
  cannot scale and is gated on correctness + vacuity only).

The floors are ratios of same-host runs, so the gate is
machine-independent like the pipeline speedup gate next door.
"""

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
BASELINE = REPO / "benchmarks" / "baselines" / "BENCH_fleet.json"


def _load_bench_module():
    path = REPO / "benchmarks" / "bench_fleet.py"
    spec = importlib.util.spec_from_file_location("bench_fleet", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.perf_smoke
def test_fleet_scaling_gate(tmp_path):
    bench = _load_bench_module()
    out = tmp_path / "BENCH_fleet.json"
    # bench.main raises AssertionError itself on divergence, zero COW
    # faults, zero warm-cache hits, or a missed (enforceable) floor.
    assert bench.main(["--quick", "--out", str(out)]) == 0

    doc = json.loads(out.read_text())
    for row in doc["results"]:
        assert row["identical_results"], (
            f"workers={row['workers']}: ledgers diverged from serial")
        assert row["cow_faults"] > 0, (
            f"workers={row['workers']}: zero COW faults — image sharing "
            "is silently off (vacuous benchmark)")

    floors = dict(bench.SCALING_FLOORS)
    cores = doc["cores"]
    scaling = {int(w): s for w, s in doc["scaling_vs_1_worker"].items()}
    for w, floor in floors.items():
        if cores < w:
            continue  # physically impossible on this host
        assert scaling[w] >= floor, (
            f"{w}-worker scaling {scaling[w]:.2f}x below the {floor}x "
            f"floor on a {cores}-core host")


@pytest.mark.perf_smoke
def test_fleet_baseline_shape():
    """The committed baseline must exist and carry the fields the gate
    reads, so a refactor can't silently orphan it."""
    doc = json.loads(BASELINE.read_text())
    assert doc["benchmark"] == "fleet"
    assert {r["workers"] for r in doc["results"]} == {1, 2, 4}
    assert all(r["identical_results"] for r in doc["results"])
    assert all(r["cow_faults"] > 0 for r in doc["results"])
    assert set(doc["scaling_vs_1_worker"]) == {"2", "4"}
