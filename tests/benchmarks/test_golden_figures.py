"""Golden-file tests for the figure pipeline.

Each test regenerates a figure exactly the way ``python -m repro
figures`` / the bench suite does and diffs it against the committed
text under ``benchmarks/results/``.  The diff is tolerance-aware:
numbers may drift within a small relative tolerance (cost-model
tweaks legitimately move cycle counts a little), but the surrounding
prose, table structure, and row order must match exactly — so a
formatting regression or a renamed workload fails loudly while a
0.1% cycle wiggle does not.

The microbenchmark-backed figures are fast and run in tier-1; the
full-suite figures (a 6-workload × 4-config matrix each) are marked
``slow``.
"""

import math
import pathlib
import re

import pytest

from repro.harness import figures, report

RESULTS = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"

_NUMBER = re.compile(r"-?\d+(?:\.\d+)?")


def tolerant_diff(golden: str, fresh: str, rtol: float = 0.05) -> list[str]:
    """Differences between two rendered figures, ignoring numeric drift
    within ``rtol``.  Returns human-readable complaints (empty = match).
    """
    problems = []
    g_lines = golden.strip().splitlines()
    f_lines = fresh.strip().splitlines()
    if len(g_lines) != len(f_lines):
        problems.append(f"line count {len(f_lines)} != golden {len(g_lines)}")
    for lineno, (g, f) in enumerate(zip(g_lines, f_lines), start=1):
        if _NUMBER.sub("#", g) != _NUMBER.sub("#", f):
            problems.append(f"line {lineno} text differs:\n  golden: {g}\n  fresh:  {f}")
            continue
        g_nums = [float(m) for m in _NUMBER.findall(g)]
        f_nums = [float(m) for m in _NUMBER.findall(f)]
        for gv, fv in zip(g_nums, f_nums):
            if not math.isclose(gv, fv, rel_tol=rtol, abs_tol=0.5):
                problems.append(
                    f"line {lineno}: {fv} vs golden {gv} (>{rtol:.0%} drift)\n"
                    f"  golden: {g}"
                )
    return problems


def assert_matches_golden(name: str, fresh: str, rtol: float = 0.05) -> None:
    golden = (RESULTS / f"{name}.txt").read_text()
    problems = tolerant_diff(golden, fresh, rtol)
    assert not problems, f"{name}.txt: " + "\n".join(problems)


# ----------------------------------------------- fast (microbench-backed)
def test_trap_microbench_matches_golden():
    fresh = report.render_trap_microbench(
        figures.trap_microbenchmark(), figures.trap_class_microbenchmark())
    assert_matches_golden("trap_microbench", fresh)


@pytest.mark.flow
def test_trap_heatmap_matches_golden():
    """The heatmap figure is count-exact (RIPs and trap tallies are
    deterministic), so any drift means the flow seam moved."""
    fresh = report.render_trap_flow(figures.trap_heatmap())
    assert_matches_golden("trap_heatmap", fresh, rtol=0.0)


def test_fig02_matches_golden():
    table = figures.figure2()
    fresh = "\n".join([
        "Figure 2: trap delivery path comparison",
        "",
        f"  regular signal delivery + return: {table.signal_delivery + table.sigreturn:7.0f} cycles",
        f"  short-circuit delivery + return:  {table.short_delivery + table.short_return:7.0f} cycles",
        f"  reduction: {table.delegation_reduction:.1f}x (paper: ~8x)",
    ])
    assert_matches_golden("fig02", fresh)


def test_fig03_matches_golden():
    fresh = report.render_magic_costs(
        figures.figure3(), "Figure 3: magic traps vs int3 correctness traps")
    assert_matches_golden("fig03", fresh)


# -------------------------------------------------- slow (full suites)
@pytest.fixture(scope="module")
def boxed_suite():
    return figures.Suite("boxed_ieee")


@pytest.mark.slow
def test_fig01_matches_golden(boxed_suite):
    fresh = report.render_breakdown(
        figures.figure1(boxed_suite),
        "Figure 1: baseline cost breakdown (Boxed IEEE, NONE)")
    assert_matches_golden("fig01", fresh)


@pytest.mark.slow
def test_fig04_matches_golden(boxed_suite):
    fresh = report.render_slowdown(
        figures.figure4(boxed_suite),
        "Figure 4: application slowdown (Boxed IEEE)")
    assert_matches_golden("fig04", fresh)


@pytest.mark.slow
def test_fig05_matches_golden(boxed_suite):
    fresh = report.render_slowdown(
        figures.figure5(boxed_suite),
        "Figure 5: slowdown from lower bound (Boxed IEEE)",
        "vs native+altmath")
    assert_matches_golden("fig05", fresh)


@pytest.mark.slow
def test_fig06_matches_golden(boxed_suite):
    fresh = report.render_breakdown_by_config(
        figures.figure6(boxed_suite),
        "Figure 6: cost breakdown with accelerations (Boxed IEEE)")
    assert_matches_golden("fig06", fresh)
