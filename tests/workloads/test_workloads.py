"""Workload validity tests: physics sanity natively, bit-for-bit under
FPVM, and the per-workload characters the paper's evaluation relies on."""

import math

import pytest

from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.machine.process import Process
from repro.workloads import WORKLOAD_NAMES, build_program, get_workload


class _ProcessShim:
    """Expose a finished Process run through the CPU-result surface the
    assertions below use (output / halted / instruction_count)."""

    def __init__(self, proc: Process):
        self.output = proc.main.output
        self.halted = all(t.halted for t in proc.threads)
        self.instruction_count = sum(t.instruction_count for t in proc.threads)


def run_native(name: str, scale: int | None = None, **kw):
    prog = build_program(name, scale, **kw)
    if get_workload(name).requires_process:
        proc = Process(prog)
        proc.kernel = LinuxKernel()
        proc.run()
        return _ProcessShim(proc)
    cpu = CPU(prog)
    cpu.kernel = LinuxKernel()
    cpu.run()
    return cpu


def run_virtualized(name: str, config: FPVMConfig, scale: int | None = None, **kw):
    prog = build_program(name, scale, **kw)
    kernel = LinuxKernel()
    if get_workload(name).requires_process:
        proc = Process(prog)
        vm = FPVM(config).attach_process(proc, kernel)
        proc.run()
        return _ProcessShim(proc), vm
    cpu = CPU(prog)
    cpu.kernel = kernel
    vm = FPVM(config).attach(cpu, kernel)
    cpu.run()
    return cpu, vm


class TestRegistry:
    def test_registered_workloads(self):
        assert set(WORKLOAD_NAMES) == {
            "lorenz", "three_body", "double_pendulum", "fbench", "ffbench", "enzo",
            "denorm_storm", "range_storm", "lorenz_mt", "mixed_mt",
        }

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("spec2017")

    def test_descriptions_present(self):
        for name in WORKLOAD_NAMES:
            assert get_workload(name).description


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestEveryWorkload:
    def test_runs_natively(self, name):
        cpu = run_native(name)
        assert cpu.halted
        assert cpu.output
        for line in cpu.output:
            assert "nan" not in line.lower()

    def test_bit_for_bit_under_fpvm(self, name):
        native = run_native(name)
        virt, vm = run_virtualized(name, FPVMConfig.seq_short())
        assert virt.output == native.output
        assert vm.telemetry.traps > 0

    def test_deterministic(self, name):
        assert run_native(name).output == run_native(name).output


class TestPhysics:
    def test_lorenz_stays_on_attractor(self):
        out = [float(x) for x in run_native("lorenz").output]
        x, y, z = out
        assert all(abs(v) < 60 for v in (x, y, z))
        assert z > 0  # Lorenz z never goes negative on the attractor

    def test_lorenz_matches_reference_integration(self):
        x, y, z = 1.0, 1.0, 1.0
        h, sigma, rho, beta = 0.005, 10.0, 28.0, 8.0 / 3.0
        for _ in range(400):
            dx = sigma * (y - x)
            dy = x * (rho - z) - y
            dz = x * y - beta * z
            x, y, z = x + h * dx, y + h * dy, z + h * dz
        out = [float(v) for v in run_native("lorenz").output]
        assert out == [x, y, z]

    def test_three_body_momentum_meaningful(self):
        cpu = run_native("three_body")
        pair_lines = [l for l in cpu.output if " " in l]
        assert len(pair_lines) >= 3  # periodic logging happened
        # hash line is an integer in [0, 3*logs]
        assert cpu.output[-1].isdigit()

    def test_double_pendulum_angles_finite(self):
        out = [float(x) for x in run_native("double_pendulum").output]
        assert all(math.isfinite(v) for v in out)

    def test_ffbench_round_trip_error_tiny(self):
        out = run_native("ffbench")
        err = float(out.output[0])
        assert err < 1e-12

    def test_enzo_conserves_mass(self):
        out = [float(x) for x in run_native("enzo").output]
        mass = out[0]
        # Sod tube initial mass: (1.0 + 0.125) / 2 (transmissive
        # boundaries leak only at the untouched edges for few steps).
        assert mass == pytest.approx(0.5625, abs=1e-9)

    def test_enzo_density_between_states(self):
        out = [float(x) for x in run_native("enzo").output]
        mid_rho = out[2]
        assert 0.125 <= mid_rho <= 1.0

    def test_fbench_focal_distance_plausible(self):
        out = [float(x) for x in run_native("fbench").output]
        assert all(math.isfinite(v) for v in out)


class TestWorkloadCharacters:
    """The per-workload traits §2.7 and §6.3 rely on."""

    def test_lorenz_has_longest_sequences(self):
        lengths = {}
        for name in WORKLOAD_NAMES:
            _, vm = run_virtualized(name, FPVMConfig.seq_short())
            lengths[name] = vm.telemetry.avg_sequence_length
        assert lengths["lorenz"] == max(lengths.values())
        assert lengths["lorenz"] > 20  # paper: ~32

    def test_fbench_has_short_sequences(self):
        _, vm = run_virtualized("fbench", FPVMConfig.seq_short())
        assert vm.telemetry.avg_sequence_length < 10  # paper: ~4

    def test_enzo_has_most_distinct_traces(self):
        traces = {}
        for name in WORKLOAD_NAMES:
            _, vm = run_virtualized(name, FPVMConfig.seq_short())
            traces[name] = len(vm.trace_stats.traces)
        assert traces["enzo"] == max(traces.values())

    def test_three_body_logs_more_fcalls(self):
        _, vm_3b = run_virtualized("three_body", FPVMConfig.seq_short())
        _, vm_lz = run_virtualized("lorenz", FPVMConfig.seq_short())
        assert vm_3b.telemetry.fcall_events > vm_lz.telemetry.fcall_events

    def test_three_body_has_corr_events(self):
        _, vm = run_virtualized("three_body", FPVMConfig.seq_short())
        assert vm.telemetry.corr_events > 0

    def test_double_pendulum_libm_heavy(self):
        _, vm = run_virtualized("double_pendulum", FPVMConfig.seq_short())
        assert vm.ledger.counters["libm_calls"] > 100

    def test_lorenz_generates_less_garbage_than_enzo(self):
        """§2.7: 'Lorenz generates less garbage than Enzo as its
        internal state is much smaller'."""
        _, vm_lz = run_virtualized("lorenz", FPVMConfig.seq_short(gc_threshold=256))
        _, vm_ez = run_virtualized("enzo", FPVMConfig.seq_short(gc_threshold=256))
        lz = vm_lz.telemetry.gc_objects_collected / max(vm_lz.telemetry.gc_runs, 1)
        ez = vm_ez.telemetry.gc_objects_collected / max(vm_ez.telemetry.gc_runs, 1)
        # Enzo holds far more live boxes (arrays) at collection time.
        assert vm_ez.allocator.live_count > vm_lz.allocator.live_count


class TestScaling:
    def test_lorenz_scale_parameter(self):
        small = run_native("lorenz", scale=50)
        big = run_native("lorenz", scale=200)
        assert big.instruction_count > 2 * small.instruction_count

    def test_lorenz_unroll_lengthens_sequences(self):
        """§6.3: 'loop unrolling ... will naturally lead to longer
        sequences'."""
        _, vm1 = run_virtualized("lorenz", FPVMConfig.seq_short(), scale=120, unroll=1)
        _, vm4 = run_virtualized("lorenz", FPVMConfig.seq_short(), scale=120, unroll=4)
        assert (
            vm4.telemetry.avg_sequence_length > vm1.telemetry.avg_sequence_length
        )

    def test_ffbench_requires_power_of_two(self):
        with pytest.raises(ValueError):
            build_program("ffbench", scale=12)
