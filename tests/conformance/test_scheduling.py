"""The scheduling conformance axis: batched superblock quanta vs the
seed step-wise scheduler must be bit-identical at every quantum and
every engine tier (batched, chained, traced), and the guest-visible
result must be quantum-independent."""

import pytest

from repro.conformance import scheduling
from repro.kernel.kernel import LinuxKernel
from repro.machine.process import Process


@pytest.fixture(scope="module")
def checks():
    return scheduling.sweep()


def test_axis_is_bit_identical(checks):
    bad = [str(c) for c in checks if not c.ok]
    assert not bad, "\n".join(bad)


def test_axis_covers_every_cell(checks):
    cells = {(c.program, c.mode, c.tier, c.quantum) for c in checks}
    expected = {
        (program, mode, tier, quantum)
        for program in scheduling.PROGRAMS
        for mode in scheduling.ATTACH_MODES
        for tier in scheduling.TIERS
        for quantum in (*scheduling.QUANTA, 0)  # 0 = cross-quantum check
    }
    assert cells == expected
    assert len(checks) == len(expected) == scheduling.cell_count()


def test_staggered_joins_actually_park():
    """Guard against the axis silently testing nothing: the staggered
    program must park at least one join (main blocks on a worker that
    is still running) and print one value per shard."""
    fp = scheduling.run_schedule(
        scheduling.PROGRAMS["staggered"], quantum=7, uops=True)
    assert fp["join_log"]
    assert len(fp["output"]) == 3


def test_traced_cells_actually_fuse():
    """Guard: the ``traced`` tier must compile at least one fused trace
    under the axis workloads at the default scheduler quantum — else
    its cells silently collapse into re-testing plain chaining."""
    proc = Process(scheduling.PROGRAMS["staggered"](),
                   uops=True, chain=True, trace=True)
    proc.kernel = LinuxKernel()
    proc.run(quantum=64)
    compiles = sum(t.uop_stats.trace_compiles for t in proc.threads
                   if t.uop_stats is not None)
    assert compiles > 0, "traced tier never fused a chain cycle"
    assert proc.sb_cache.cached_traces > 0


def test_attached_mode_actually_traps():
    """Guard: the seq_short cells must virtualize the workers — every
    thread, not just main, takes FP traps."""
    fp = scheduling.run_schedule(
        scheduling.PROGRAMS["staggered"], quantum=7, uops=True,
        mode="seq_short")
    fp_traps = {tid: fp_count for tid, _, _, _, fp_count, _ in fp["threads"]}
    assert all(fp_traps[tid] > 0 for tid in (1, 2, 3))
