"""Shadow-code-view conformance gates: the self-checksumming guest is
bit-identical across patch configurations, a guest reading its own
bytes mid-run never observes instrumentation while traces stay live,
the FPVM_SHADOW_VIEW=0 escape hatch is demonstrably load-bearing, and
the per-site invalidation tier replays bit-identically against the
seed journal with live patches."""

import pytest

from repro.conformance import replay
from repro.conformance.codeviews import (
    build_checksum_program,
    self_checksum_report,
    self_reading_report,
    shadow_view_negative_report,
)
from repro.conformance.faults import run_scenario
from repro.core.vm import FPVMConfig


@pytest.fixture(scope="module")
def checksum_report():
    return self_checksum_report()


def test_checksum_bit_identical_across_patch_configs(checksum_report):
    """NONE / SEQ / SEQ_SHORT all print the same checksum as a bare
    unpatched run, and the guest-visible text digest equals the
    pristine image in every config."""
    assert checksum_report["bit_identical"], checksum_report


def test_checksum_scenario_is_not_vacuous(checksum_report):
    """Guard: every config must carry a real profiler-planted patch
    inside the checksum loop, and the SEQ tiers must have compiled
    traces — otherwise the identity above checks nothing."""
    for name, cfg in checksum_report["configs"].items():
        assert cfg["patches"] >= 1, name
        assert cfg["patched_sites"], name
    assert checksum_report["configs"]["seq"]["compiled_traces"] > 0
    assert checksum_report["configs"]["seq_short"]["compiled_traces"] > 0


def test_shadow_view_off_is_observable():
    """With FPVM_SHADOW_VIEW=0 the same guest must *see* the patch
    markers (checksum and digest diverge) — proof the DATA-view backing
    is load-bearing, not vacuously equal."""
    report = shadow_view_negative_report()
    assert report["patches"] >= 1
    assert report["guest_observed_markers"], report


def test_self_reading_guest_identical_across_tiers():
    report = self_reading_report()
    assert report["bit_identical"], report
    assert report["traces_live"], report


def test_stale_trace_never_executes_through_patch():
    outcome = run_scenario("stale_trace_patch")
    assert outcome.detected and outcome.recovered, str(outcome)


@pytest.mark.parametrize("chain", [True, False])
def test_per_site_tier_replays_with_live_patches(chain):
    """The replay oracle: record the checksum guest (live profiler
    patch firing every lap) under the seed interpreter, replay the
    per-site engine tiers against the journal — zero divergence."""
    report = replay.differential_replay(
        lambda: build_checksum_program()[0],
        config=FPVMConfig.seq_short(uops=True),
        trace=True,
        trace_threshold=2,
        chain=chain,
    )
    assert report.ok, report.describe()
