"""Four-tier differential fuzz: random loop programs executed by the
seed interpreter, the uop pipeline, the chained dispatcher, and the
fused trace JIT must be indistinguishable in every architectural
observable — registers, memory digests, and the cycle ledger.

The hypothesis sweep carries the ``slow`` marker; a deterministic
smoke pair stays in tier-1 so the property is exercised on every run
and guarded against vacuity (the traced tier must actually fuse)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import oracle
from repro.conformance.generators import fuzz_program
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU

#: (label, uops, chain, trace) — the four execution tiers.
TIERS = [
    ("interp", False, False, False),
    ("uops", True, False, False),
    ("chained", True, True, False),
    ("traced", True, True, True),
]

#: threshold 1: the small fuzz loops (2-6 iterations) must fuse, or the
#: traced tier would silently degrade to plain chaining.
TRACE_THRESHOLD = 1


def _run_tier(seed: int, uops: bool, chain: bool, trace: bool):
    cpu = CPU(fuzz_program(seed), uops=uops, chain=chain, trace=trace)
    cpu.kernel = LinuxKernel()
    if trace:
        cpu.trace_stabilize_threshold = TRACE_THRESHOLD
    cpu.run(max_steps=oracle.DEFAULT_MAX_STEPS)
    regs = cpu.regs
    fingerprint = {
        "rip": regs.rip,
        "gpr": tuple(regs.gpr),
        "xmm": tuple(tuple(lanes) for lanes in regs.xmm),
        "flags": regs.flags.pack(),
        "mxcsr": regs.mxcsr,
        "output": tuple(cpu.output),
        "digest": oracle.memory_digest(cpu),
        "cycles": cpu.cycles,
        "work_cycles": cpu.work_cycles,
        "instructions": cpu.instruction_count,
        "fp_traps": cpu.fp_trap_count,
        "bp_traps": cpu.bp_trap_count,
        "retired": dict(cpu.retired_by_class),
        "halted": cpu.halted,
    }
    return fingerprint, cpu.uop_stats


def _assert_tiers_identical(seed: int) -> int:
    """Run all four tiers on one seed; returns the traced tier's fused
    step count (for the vacuity guard)."""
    base, _ = _run_tier(seed, *TIERS[0][1:])
    trace_steps = 0
    for label, uops, chain, trace in TIERS[1:]:
        fp, stats = _run_tier(seed, uops, chain, trace)
        assert fp == base, f"seed {seed}: tier {label} diverged"
        if trace:
            trace_steps = stats.trace_steps
    return trace_steps


@pytest.mark.parametrize("seed", [0, 6, 27])
def test_four_tier_smoke(seed):
    """Deterministic tier-1 slice of the property, vacuity-guarded:
    these seeds are known to fuse traces at threshold 1."""
    assert _assert_tiers_identical(seed) > 0


@pytest.mark.slow
class TestTraceTierFuzz:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_programs_identical_across_all_tiers(self, seed):
        _assert_tiers_identical(seed)

    def test_fuzz_population_exercises_traces(self):
        """The sweep must not pass by never compiling a trace."""
        fused = sum(_assert_tiers_identical(seed) for seed in range(10))
        assert fused > 0
