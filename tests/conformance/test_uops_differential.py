"""Differential conformance: the fuzz grammar executed with the uop
pipeline forced ON vs. forced OFF must be indistinguishable in every
observable — stdout, memory digests, cycle/instruction counts, trap
counts, and the attached-mode accounting invariants."""

import pytest

from repro.conformance import oracle
from repro.conformance.generators import fuzz_program
from repro.core.vm import FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU

SEEDS = [0, 1, 3, 5, 9, 11, 17, 23, 31, 47]


def _native_fingerprint(seed: int, uops: bool):
    cpu = CPU(fuzz_program(seed), uops=uops)
    cpu.kernel = LinuxKernel()
    cpu.run(max_steps=oracle.DEFAULT_MAX_STEPS)
    return {
        "output": tuple(cpu.output),
        "digest": oracle.memory_digest(cpu),
        "cycles": cpu.cycles,
        "work_cycles": cpu.work_cycles,
        "instructions": cpu.instruction_count,
        "fp_traps": cpu.fp_trap_count,
        "bp_traps": cpu.bp_trap_count,
        "retired": dict(cpu.retired_by_class),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_native_differential(seed):
    """Raw machine, no FPVM: superblocks vs. single-step."""
    assert _native_fingerprint(seed, uops=False) == _native_fingerprint(seed, uops=True)


def _cell_fingerprint(run: oracle.CellRun):
    t = run.telemetry
    return {
        "output": run.output,
        "digest": run.memory_digest,
        "cycles": run.cycles,
        "instructions": run.instructions,
        "ledger": run.ledger,
        "traps": t.traps,
        "sequences": t.sequences,
        "emulated": t.emulated_instructions,
        "decode_hits": t.decode_hits,
        "decode_misses": t.decode_misses,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_attached_differential(seed):
    """Full FPVM attach: the uop pipeline *and* the compiled-trace tier
    (forced hot with a low threshold) against the seed interpreter."""
    base = oracle.run_cell(
        fuzz_program(seed),
        FPVMConfig.seq_short(uops=False),
        "interp",
    )
    fast = oracle.run_cell(
        fuzz_program(seed),
        FPVMConfig.seq_short(uops=True, trace_compile_threshold=2),
        "uops",
    )
    assert base.invariant_failures == []
    assert fast.invariant_failures == []
    assert _cell_fingerprint(base) == _cell_fingerprint(fast)


def test_compiled_tier_exercised_somewhere():
    """Guard against the attached differential silently testing nothing:
    at least one fuzz seed must actually promote and replay a trace."""
    total_hits = 0
    for seed in SEEDS:
        run = oracle.run_cell(
            fuzz_program(seed),
            FPVMConfig.seq_short(uops=True, trace_compile_threshold=2),
            "uops",
        )
        total_hits += run.telemetry.compiled_trace_hits
    assert total_hits > 0
