"""Trap-class differential conformance: the rare #XF classes
(Denormal, Overflow, Underflow, DivByZero) must ride the same pure
delivery machinery as the Invalid/Inexact traffic the §6 workloads
generate.  Fast storm rows run in tier-1; the full trap-class plan
runs under the ``conformance`` marker (``pytest -m conformance``),
same as ``python -m repro conformance --trap-classes`` in CI."""

import pytest

from repro.conformance import matrix
from repro.harness.configs import CONFIG_ORDER
from repro.observability import TRAP_CLASSES


# ------------------------------------------------------- fast (tier-1)
@pytest.mark.parametrize("group", [
    matrix.Group("denorm_storm", scale=30),
    matrix.Group("range_storm", scale=25),
], ids=lambda g: g.label)
def test_storm_group_is_conformant(group):
    """Bit-identity across NONE/SEQ/SHORT/SEQ_SHORT *and* native for
    the trap-diverse workloads: delivery of the rare classes is pure."""
    result = matrix.run_group(group)
    assert result.ok, result.mismatches + result.invariant_failures
    assert set(result.runs) == set(CONFIG_ORDER)


def test_every_trap_class_is_covered():
    """The coverage gate the CLI enforces: the union of the storm
    workloads' measured trap classes is all six #XF classes, each with
    a meaningful count."""
    coverage = matrix.trap_class_coverage()
    union = {}
    for counts in coverage.values():
        for cls, n in counts.items():
            union[cls] = union.get(cls, 0) + n
    for cls in TRAP_CLASSES:
        assert union.get(cls, 0) >= 40, (cls, coverage)


def test_trap_class_plan_spans_the_axes():
    plan = matrix.trap_class_plan()
    assert {g.program for g in plan} == {"denorm_storm", "range_storm"}
    assert {g.patch_source for g in plan} >= {"profiler", "static"}
    assert {g.magic for g in plan} == {True, False}
    assert {g.altmath for g in plan} >= {"boxed_ieee", "mpfr"}


# --------------------------------------------------- full (conformance)
@pytest.mark.conformance
@pytest.mark.parametrize("group", matrix.trap_class_plan(),
                         ids=lambda g: g.label)
def test_trap_class_plan_row(group):
    result = matrix.run_group(group)
    assert result.ok, result.mismatches + result.invariant_failures
