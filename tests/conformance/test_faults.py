"""Every fault-injection scenario has a pinned expected behaviour:
either the VM recovers bit-identically or it raises the matching typed
FPVMFaultError — never a silent wrong answer."""

import pytest

from repro.conformance import faults
from repro.errors import (
    BoxHeapExhaustedError,
    DeadlockError,
    DecodeCacheCorruptionError,
    DeviceProtocolError,
    FPVMFaultError,
    MagicPageCorruptionError,
    StepLimitError,
    TrapStormError,
)
from repro.kernel.fpvm_dev import FPVMDeviceError

#: scenario -> (recovers bit-identically, raised error class or None).
EXPECTED = {
    "dropped_delivery_persistent": (False, TrapStormError),
    "dropped_delivery_transient": (True, None),
    "duplicated_delivery": (True, None),
    "magic_page_corruption": (False, MagicPageCorruptionError),
    "decode_cache_poison": (False, DecodeCacheCorruptionError),
    "decode_cache_thrash": (True, None),
    "box_heap_pressure": (True, None),
    "box_heap_exhaustion": (False, BoxHeapExhaustedError),
    "device_registration_revoked": (True, None),
    "device_entry_clobbered": (False, FPVMDeviceError),
    "scheduler_deadlock": (False, DeadlockError),
    "scheduler_step_limit": (False, StepLimitError),
    "stale_trace_patch": (True, None),
    "lazy_fp_leak": (True, None),
}


def test_every_scenario_has_an_expectation():
    assert set(EXPECTED) == set(faults.SCENARIOS)


@pytest.mark.parametrize("name", sorted(faults.SCENARIOS))
def test_scenario(name):
    recovers, error = EXPECTED[name]
    outcome = faults.run_scenario(name)
    assert outcome.detected, f"{name} went undetected: {outcome.detail}"
    assert outcome.recovered == recovers, outcome.detail
    if error is None:
        assert outcome.error is None
    else:
        assert outcome.error == error.__name__
        assert issubclass(error, FPVMFaultError)


def test_trap_storm_is_not_triggered_by_honest_loops():
    """A hot FP loop traps at the same address millions of times; the
    storm detector must never fire on it (it keys on *zero retired
    instructions* between same-address traps)."""
    outcome = faults.run_scenario("decode_cache_thrash")
    assert outcome.recovered  # ran a full trap-heavy workload cleanly


def test_fault_error_hierarchy():
    for cls in (TrapStormError, MagicPageCorruptionError,
                DecodeCacheCorruptionError, BoxHeapExhaustedError,
                DeviceProtocolError, DeadlockError, StepLimitError):
        assert issubclass(cls, FPVMFaultError)
        assert issubclass(cls, RuntimeError)
        assert cls.fault != FPVMFaultError.fault
