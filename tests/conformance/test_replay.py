"""The differential trace-replay harness: clean runs are bit-identical
to the seed journal, and an injected micro-op corruption is localized
to the exact step that retired it.

The heavyweight sweeps carry the ``replay`` marker (CI runs them with
``pytest -m replay``); the smoke checks here stay in tier-1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import replay
from repro.conformance.generators import fuzz_program
from repro.core.vm import FPVMConfig
from repro.machine import tracejit, uops
from repro.machine.assembler import assemble
from repro.machine.hostlib import install_host_library

LOOP_SRC = """
.data
k: .double 1.0001
n: .quad 60
.text
main:
  mov rcx, [rip + n]
  movsd xmm0, [rip + k]
  movsd xmm1, [rip + k]
top:
  mulsd xmm0, xmm1
  addsd xmm0, xmm1
  dec rcx
  jne top
  call print_f64
  hlt
"""

#: first superblock is exactly one ``mulsd`` plus a ``jmp`` tail: a
#: corrupted mul micro-op is architecturally visible at step 1, with no
#: later wash-out — the replayer must pin it exactly.
FIRST_STEP_SRC = """
.text
main:
  mulsd xmm0, xmm1
  jmp fin
fin:
  hlt
"""

#: three int moves ahead of the mul in the same block: the corruption
#: retires at step 4, and a budget-3 probe (which can only retire the
#: clean 3-uop prefix) must come back clean.
FOURTH_STEP_SRC = """
.text
main:
  mov rax, 3
  mov rbx, 5
  mov rdx, 7
  mulsd xmm0, xmm1
  jmp fin
fin:
  hlt
"""


def _factory(src):
    def build():
        program = assemble(src)
        install_host_library(program)
        return program
    return build


class TestCleanReplay:
    def test_loop_program_identical(self):
        report = replay.differential_replay(_factory(LOOP_SRC))
        assert report.ok, report.describe()
        assert report.steps > 200
        assert report.probes == 1            # no divergence: one full probe
        assert "bit-identical" in report.describe()

    def test_loop_program_identical_under_vm(self):
        report = replay.differential_replay(
            _factory(LOOP_SRC), config=FPVMConfig.seq_short(uops=True))
        assert report.ok, report.describe()

    def test_unchained_engine_also_replays(self):
        report = replay.differential_replay(_factory(LOOP_SRC), chain=False)
        assert report.ok, report.describe()

    def test_traced_tier_also_replays(self):
        """Probes with the fused trace JIT pinned on must stay
        bit-identical to the seed journal — and the big probes must
        actually compile a trace, or this checks nothing."""
        compiled = []
        def spy(entry, source, ns):
            compiled.append(entry)
            return None
        tracejit.CODEGEN_HOOK = spy
        try:
            report = replay.differential_replay(
                _factory(LOOP_SRC), trace=True)
        finally:
            tracejit.CODEGEN_HOOK = None
        assert report.ok, report.describe()
        assert compiled, "no trace compiled: the traced tier never ran"

    def test_recorder_rejects_uops_cpu(self):
        from repro.machine.cpu import CPU
        with pytest.raises(ValueError):
            replay.TraceRecorder(CPU(_factory(LOOP_SRC)(), uops=True))


def _corrupt_mul(monkeypatch):
    """Bit-flip the fast scalar multiply — the kind of silent micro-op
    bug the replay harness exists to localize.  Probe CPUs bind their
    block closures lazily, so every probe picks up the corruption."""
    orig = uops.FAST_SCALAR["mul"]

    def bad_mul(a, b):
        r = orig(a, b)
        return r if r is None else r ^ 1
    monkeypatch.setitem(uops.FAST_SCALAR, "mul", bad_mul)


class TestInjectedDivergence:
    def test_localized_to_first_step(self, monkeypatch):
        journal_report = replay.differential_replay(_factory(FIRST_STEP_SRC))
        assert journal_report.ok                 # sanity: clean before

        _corrupt_mul(monkeypatch)
        report = replay.differential_replay(_factory(FIRST_STEP_SRC))
        assert not report.ok
        div = report.divergence
        assert div.step == 1
        assert any(name.startswith("xmm0") for name, _, _ in div.diffs), (
            div.describe())
        assert "first divergent step: 1" in div.describe()

    def test_localized_to_exact_mid_block_step(self, monkeypatch):
        _corrupt_mul(monkeypatch)
        report = replay.differential_replay(_factory(FOURTH_STEP_SRC))
        assert not report.ok
        div = report.divergence
        assert div.step == 4, div.describe()
        # full context travels with the verdict: the seed-side record of
        # the divergent step and the actual-vs-expected register diff.
        assert div.record is not None and div.record.index == 3
        assert any(name.startswith("xmm0") for name, _, _ in div.diffs)
        assert report.probes > 1                 # binary search ran

    def test_trace_closure_corruption_localized_to_exact_step(self,
                                                              monkeypatch):
        """The ISSUE's end-to-end check: flip one bit of a constant
        inside a *generated trace closure* (through the codegen seam)
        and require the oracle to pin the divergence to the exact step
        the corrupted trace first retires.

        The corruption lives only in the fused closure — the chained
        dispatcher, the bound block closures, and ``FAST_SCALAR`` are
        all pristine — so any divergence the replayer finds is
        attributable to the trace tier alone."""
        compiled = []

        def flip_mul_lsb(entry, source, ns):
            compiled.append(entry)
            bad = source.replace(
                "x0f = x0f * x1f",
                "x0f = ud(pq(uq(pd(x0f * x1f))[0] ^ 1))[0]", 1)
            assert bad != source, f"inline mul not found in:\n{source}"
            return bad

        monkeypatch.setattr(tracejit, "CODEGEN_HOOK", flip_mul_lsb)

        # the same corruption hook with traces off is invisible: the
        # hook never fires and the run is clean.
        report_off = replay.differential_replay(_factory(LOOP_SRC),
                                                trace=False)
        assert report_off.ok and not compiled

        report = replay.differential_replay(_factory(LOOP_SRC), trace=True)
        assert compiled, "no trace compiled: corruption never installed"
        assert not report.ok, "corrupted trace closure went undetected"
        div = report.divergence
        # the trace only exists after the chain stabilizes, so the
        # first corrupt mul retires strictly after the first laps; the
        # boundary pair (step-1 clean, step divergent) is exact and the
        # seed record of that step wrote the corrupted register.
        assert 4 <= div.step <= report.steps, div.describe()
        assert div.record is not None and div.record.index == div.step - 1
        assert any(name.startswith("xmm0") for name, _, _ in div.diffs), (
            div.describe())
        assert report.probes > 1                 # binary search ran

    def test_divergence_in_chained_loop_is_localized(self, monkeypatch):
        """An LSB flip can wash out under later rounding (x and x^1 may
        round to the same sum), so divergence in the loop is not
        monotone and the first *visible* divergence need not be the
        first corrupted mul.  The replayer must still pin an adjacent
        clean/divergent step pair, on a step whose seed record wrote
        the corrupted register."""
        _corrupt_mul(monkeypatch)
        report = replay.differential_replay(_factory(LOOP_SRC))
        assert not report.ok
        div = report.divergence
        assert 4 <= div.step <= report.steps
        assert div.record is not None and div.record.index == div.step - 1
        assert any(name.startswith("xmm0") for name, _, _ in div.diffs)
        assert "seed wrote xmm0" in div.describe()
        assert report.probes > 1


@pytest.mark.replay
class TestReplaySweeps:
    """The oracle at scale: random guest programs, chained engine vs
    seed journal.  ``fuzz_program`` emits straight-line FP arithmetic,
    direct jumps/branches (``If``/``For``), and host print calls."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_programs_chained_bit_identical(self, seed):
        report = replay.differential_replay(lambda: fuzz_program(seed))
        assert report.ok, report.describe()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_programs_traced_bit_identical(self, seed):
        """The same sweep with the fused trace JIT pinned on at
        threshold 1, so the short fuzz loops compile traces and every
        probe replays through generated closures."""
        report = replay.differential_replay(
            lambda: fuzz_program(seed), trace=True, trace_threshold=1)
        assert report.ok, report.describe()

    @pytest.mark.parametrize("quantum", [1, 7, 64])
    def test_quantum_driven_chained_run_matches_journal(self, quantum):
        """Drive the chained engine in fixed quanta to halt; the state
        after every quantum boundary must match the journal."""
        from repro.conformance.replay import TraceRecorder, _make_cpu

        recorder = TraceRecorder(
            _make_cpu(_factory(LOOP_SRC)(), None, uops=False, chain=False))
        journal = recorder.record()

        cpu = _make_cpu(_factory(LOOP_SRC)(), None, uops=True, chain=True)
        replayer = replay.Replayer(journal, lambda: None)  # diff use only
        done = 0
        while not cpu.halted:
            done += cpu.run_quantum(quantum)
            diffs = replayer._diff(cpu, journal.state_at(done))
            assert not diffs, (done, diffs)
        assert done == journal.total
