"""Conformance matrix: oracle mechanics fast, the full grid under the
``conformance`` marker (``pytest -m conformance``)."""

import pytest

from repro.conformance import matrix, oracle
from repro.conformance.generators import fuzz_program
from repro.core.vm import FPVMConfig
from repro.harness.configs import CONFIG_ORDER


# ------------------------------------------------------------- oracle
def test_native_and_boxed_cell_agree():
    native = oracle.run_native(fuzz_program(5))
    cell = oracle.run_cell(fuzz_program(5), FPVMConfig.seq_short(), "SEQ_SHORT")
    assert cell.output == native.output
    assert cell.memory_digest == native.memory_digest
    assert cell.invariant_failures == []


def test_memory_digest_demotes_boxed_words():
    """Two runs of the same program must digest equal even though their
    box pointers (raw memory bits) differ with allocation history."""
    a = oracle.run_cell(fuzz_program(9), FPVMConfig.seq_short(), "a")
    # different allocation history: aggressive GC churns the free list.
    b = oracle.run_cell(fuzz_program(9), FPVMConfig.seq_short(gc_threshold=32), "b")
    assert a.memory_digest == b.memory_digest


def test_invariant_checker_detects_cooked_books():
    from repro.core.vm import FPVM
    from repro.kernel.kernel import LinuxKernel
    from repro.machine.cpu import CPU

    cpu = CPU(fuzz_program(5))
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(FPVMConfig.seq_short()).attach(cpu, kernel)
    cpu.run(max_steps=2_000_000)
    assert oracle.check_invariants(cpu, vm) == []
    vm.ledger.by_category["gc"] += 1  # cook the books by one cycle
    failures = oracle.check_invariants(cpu, vm)
    assert any("cycle closure" in f for f in failures)


# -------------------------------------------------------------- groups
@pytest.mark.parametrize("group", [
    matrix.Group("lorenz", scale=60),
    matrix.Group("fuzz:11", patch_source="static", magic=False),
])
def test_group_is_conformant(group):
    result = matrix.run_group(group)
    assert result.ok, result.mismatches + result.invariant_failures
    assert set(result.runs) == set(CONFIG_ORDER)


def test_none_patch_source_skips_programs_with_sites():
    """'none' on a program with real patch sites is unsound — the sweep
    must refuse the group, not compare divergent runs."""
    result = matrix.run_group(matrix.Group("three_body", scale=8,
                                           patch_source="none"))
    assert result.skipped is not None
    assert result.cells == 0


def test_smoke_plan_is_at_least_24_cells():
    assert 4 * len(matrix.smoke_plan()) >= 24


# ------------------------------------------------------------ full grid
@pytest.mark.conformance
def test_smoke_grid_conformant():
    report = matrix.sweep(matrix.smoke_plan())
    assert report.cells >= 24
    assert report.ok, matrix.render_report(report)


@pytest.mark.conformance
def test_full_grid_conformant():
    report = matrix.sweep(matrix.full_plan())
    assert report.cells >= 96
    assert report.skipped == []
    assert report.ok, matrix.render_report(report)


# ---------------------------------------------------------------- CLI
def test_cli_single_scenario():
    from repro.__main__ import main

    assert main(["conformance", "--scenario", "box_heap_exhaustion"]) == 0


@pytest.mark.conformance
def test_cli_smoke(capsys):
    from repro.__main__ import main

    assert main(["conformance", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "0 mismatches" in out
    assert "all checks passed" in out
