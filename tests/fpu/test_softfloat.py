"""Tests for the arbitrary-precision BigFloat (MPFR stand-in).

The decisive property: at precision 53, BigFloat's round-to-nearest-even
arithmetic must agree bit-for-bit with binary64 for all operations on
normal-range operands (binary64 differs only in exponent range).
"""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpu import bits as B
from repro.fpu.softfloat import BigFloat, BigFloatContext

CTX53 = BigFloatContext(53)
CTX200 = BigFloatContext(200)

f2b = B.float_to_bits

normal_doubles = st.floats(
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
    min_value=-1e120,
    max_value=1e120,
    width=64,
).filter(lambda x: x == 0.0 or abs(x) > 1e-120)


def bf(x: float) -> BigFloat:
    return BigFloat.from_float(x, CTX53)


class TestConstruction:
    def test_from_int(self):
        assert BigFloat.from_int(42, CTX53).to_float() == 42.0

    def test_from_int_zero(self):
        z = BigFloat.from_int(0, CTX53)
        assert z.is_zero() and not z.is_negative()

    def test_from_negative_int(self):
        assert BigFloat.from_int(-7, CTX53).to_float() == -7.0

    def test_from_fraction_exact(self):
        x = BigFloat.from_fraction(Fraction(3, 4), CTX53)
        assert x.to_fraction() == Fraction(3, 4)

    def test_from_fraction_rounds(self):
        x = BigFloat.from_fraction(Fraction(1, 3), CTX53)
        assert x.to_float() == 1.0 / 3.0

    def test_precision_preserved_in_value(self):
        # 1/3 at 200 bits is closer to 1/3 than 1/3 at 53 bits.
        lo = BigFloat.from_fraction(Fraction(1, 3), CTX53).to_fraction()
        hi = BigFloat.from_fraction(Fraction(1, 3), CTX200).to_fraction()
        third = Fraction(1, 3)
        assert abs(hi - third) < abs(lo - third)

    def test_specials_round_trip_bits(self):
        for pattern in [B.POS_INF_BITS, B.NEG_INF_BITS, B.POS_ZERO_BITS, B.NEG_ZERO_BITS]:
            assert BigFloat.from_float64_bits(pattern, CTX53).to_float64_bits() == pattern

    def test_nan_round_trip(self):
        x = BigFloat.from_float64_bits(B.make_qnan(99), CTX53)
        assert x.is_nan()
        assert x.to_float64_bits() == B.CANONICAL_QNAN

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            BigFloatContext(1)


class TestArithmeticMatchesBinary64:
    @given(normal_doubles, normal_doubles)
    @settings(max_examples=300, deadline=None)
    def test_add(self, a, b):
        r = bf(a).add(bf(b), CTX53)
        assert r.to_float64_bits() == f2b(a + b)

    @given(normal_doubles, normal_doubles)
    @settings(max_examples=300, deadline=None)
    def test_sub(self, a, b):
        r = bf(a).sub(bf(b), CTX53)
        assert r.to_float64_bits() == f2b(a - b)

    @given(normal_doubles, normal_doubles)
    @settings(max_examples=300, deadline=None)
    def test_mul(self, a, b):
        r = bf(a).mul(bf(b), CTX53)
        assert r.to_float64_bits() == f2b(a * b)

    @given(normal_doubles, normal_doubles.filter(lambda x: x != 0.0))
    @settings(max_examples=300, deadline=None)
    def test_div(self, a, b):
        r = bf(a).div(bf(b), CTX53)
        assert r.to_float64_bits() == f2b(a / b)

    @given(normal_doubles.filter(lambda x: x >= 0.0))
    @settings(max_examples=300, deadline=None)
    def test_sqrt(self, a):
        r = bf(a).sqrt(CTX53)
        assert r.to_float64_bits() == f2b(math.sqrt(a))

    def test_div_ties(self):
        # Exercise a quotient landing exactly on a rounding boundary.
        a = BigFloat.from_int((1 << 53) + 2, CTX53)  # even mantissa
        b = BigFloat.from_int(2, CTX53)
        assert a.div(b, CTX53).to_fraction() == Fraction((1 << 52) + 1)


class TestSpecialValueArithmetic:
    def test_inf_plus_one(self):
        r = BigFloat.inf(0, CTX53).add(bf(1.0))
        assert r.is_inf() and not r.is_negative()

    def test_inf_minus_inf_nan(self):
        assert BigFloat.inf(0, CTX53).add(BigFloat.inf(1, CTX53)).is_nan()

    def test_zero_times_inf_nan(self):
        assert BigFloat.zero(0, CTX53).mul(BigFloat.inf(0, CTX53)).is_nan()

    def test_div_by_zero_inf(self):
        r = bf(1.0).div(BigFloat.zero(0, CTX53))
        assert r.is_inf()

    def test_zero_div_zero_nan(self):
        assert BigFloat.zero(0, CTX53).div(BigFloat.zero(0, CTX53)).is_nan()

    def test_neg_zero_sum(self):
        r = BigFloat.zero(1, CTX53).add(BigFloat.zero(1, CTX53))
        assert r.is_zero() and r.is_negative()

    def test_mixed_zero_sum_positive(self):
        r = BigFloat.zero(1, CTX53).add(BigFloat.zero(0, CTX53))
        assert r.is_zero() and not r.is_negative()

    def test_sqrt_negative_nan(self):
        assert bf(-4.0).sqrt().is_nan()

    def test_sqrt_neg_zero(self):
        r = BigFloat.zero(1, CTX53).sqrt()
        assert r.is_zero() and r.is_negative()

    def test_nan_propagates(self):
        assert BigFloat.nan(CTX53).add(bf(1.0)).is_nan()
        assert bf(1.0).mul(BigFloat.nan(CTX53)).is_nan()


class TestComparison:
    def test_cmp_basic(self):
        assert bf(1.0).cmp(bf(2.0)) == -1
        assert bf(2.0).cmp(bf(1.0)) == 1
        assert bf(1.5).cmp(bf(1.5)) == 0

    def test_cmp_nan_unordered(self):
        assert BigFloat.nan(CTX53).cmp(bf(1.0)) is None

    def test_cmp_inf(self):
        assert BigFloat.inf(0, CTX53).cmp(bf(1e300)) == 1
        assert BigFloat.inf(1, CTX53).cmp(bf(-1e300)) == -1

    def test_zero_signs_compare_equal(self):
        assert BigFloat.zero(0, CTX53).cmp(BigFloat.zero(1, CTX53)) == 0

    def test_eq_and_hash(self):
        a = bf(2.5)
        b = BigFloat.from_fraction(Fraction(5, 2), CTX200)
        assert a == b
        assert hash(a) == hash(b)


class TestHigherPrecisionActuallyHelps:
    def test_sum_of_tenths(self):
        """0.1 summed 10x: binary64 misses 1.0; 200-bit BigFloat from the
        *same* binary64 inputs gets the binary64-representable answer when
        demoted (the classic FPVM win)."""
        tenth64 = 0.1
        acc64 = 0.0
        acc200 = BigFloat.zero(0, CTX200)
        t200 = BigFloat.from_float(tenth64, CTX200)
        for _ in range(10):
            acc64 += tenth64
            acc200 = acc200.add(t200, CTX200)
        assert acc64 != 1.0
        # The high-precision sum is exactly 10 * (binary64 0.1).
        assert acc200.to_fraction() == 10 * Fraction(0.1)

    def test_catastrophic_cancellation(self):
        # (1 + 1e-17) - 1 in binary64 is 0; at 200 bits it survives.
        one = BigFloat.from_int(1, CTX200)
        eps = BigFloat.from_fraction(Fraction(1, 10**17), CTX200)
        r = one.add(eps, CTX200).sub(one, CTX200)
        assert not r.is_zero()
        assert (1.0 + 1e-17) - 1.0 == 0.0


class TestTranscendentals:
    @pytest.mark.parametrize(
        "name,host",
        [
            ("sin", math.sin),
            ("cos", math.cos),
            ("atan", math.atan),
            ("exp", math.exp),
        ],
    )
    def test_close_to_host(self, name, host):
        for x in [-2.5, -1.0, -0.1, 0.0, 0.3, 1.0, 2.0, 3.1]:
            got = getattr(BigFloat.from_float(x, CTX200), name)(CTX200).to_float()
            assert got == pytest.approx(host(x), rel=1e-14, abs=1e-300)

    def test_log(self):
        for x in [0.5, 1.0, 2.0, 10.0, 1e10]:
            got = BigFloat.from_float(x, CTX200).log(CTX200).to_float()
            assert got == pytest.approx(math.log(x), rel=1e-14, abs=1e-300)

    def test_asin_acos(self):
        for x in [-0.9, -0.5, 0.0, 0.5, 0.9]:
            assert BigFloat.from_float(x, CTX200).asin(CTX200).to_float() == pytest.approx(
                math.asin(x), rel=1e-13, abs=1e-300
            )
            assert BigFloat.from_float(x, CTX200).acos(CTX200).to_float() == pytest.approx(
                math.acos(x), rel=1e-13
            )

    def test_tan(self):
        for x in [-1.0, 0.3, 1.2]:
            assert BigFloat.from_float(x, CTX200).tan(CTX200).to_float() == pytest.approx(
                math.tan(x), rel=1e-13, abs=1e-300
            )

    def test_sin_large_argument_reduction(self):
        x = 1000.0
        got = BigFloat.from_float(x, CTX200).sin(CTX200).to_float()
        assert got == pytest.approx(math.sin(x), rel=1e-12)

    def test_log_of_zero_is_neg_inf(self):
        r = BigFloat.zero(0, CTX200).log(CTX200)
        assert r.is_inf() and r.is_negative()

    def test_log_negative_nan(self):
        assert BigFloat.from_float(-1.0, CTX200).log(CTX200).is_nan()

    def test_exp_of_neg_inf_zero(self):
        assert BigFloat.inf(1, CTX200).exp(CTX200).is_zero()

    def test_asin_out_of_domain(self):
        assert BigFloat.from_float(2.0, CTX200).asin(CTX200).is_nan()


class TestFMA:
    @given(normal_doubles, normal_doubles, normal_doubles)
    @settings(max_examples=100, deadline=None)
    def test_single_rounding(self, a, b, c):
        r = bf(a).fma(bf(b), bf(c), CTX53)
        exact = Fraction(a) * Fraction(b) + Fraction(c)
        expected, *_ = B.fraction_to_bits_rne(exact)
        if B.is_finite(expected):
            assert r.to_float64_bits() == expected

    def test_fma_beats_two_step(self):
        # Choose operands where a*b rounds away information that the
        # addend cancels: fma must keep it.
        a = bf(1.0 + 2.0**-52)
        r = a.fma(a, bf(-1.0), CTX53)
        exact = Fraction(1.0 + 2.0**-52) ** 2 - 1
        expected, *_ = B.fraction_to_bits_rne(exact)
        assert r.to_float64_bits() == expected


class TestNegAbs:
    def test_neg(self):
        assert bf(3.0).neg().to_float() == -3.0
        assert bf(-3.0).neg().to_float() == 3.0

    def test_neg_zero(self):
        assert BigFloat.zero(0, CTX53).neg().is_negative()

    def test_abs(self):
        assert bf(-3.0).abs().to_float() == 3.0
        assert not BigFloat.inf(1, CTX53).abs().is_negative()

    def test_neg_nan_stays_nan(self):
        assert BigFloat.nan(CTX53).neg().is_nan()
