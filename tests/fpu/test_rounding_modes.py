"""Directed rounding (MXCSR.RC) tests: the four x64 rounding modes in
the oracle, and end-to-end through the CPU."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpu import bits as B
from repro.fpu.ieee import ieee_op
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.registers import (
    MXCSR_DEFAULT,
    RC_DOWN,
    RC_NEAREST,
    RC_UP,
    RC_ZERO,
    rounding_mode,
    with_rounding,
)

f2b = B.float_to_bits
b2f = B.bits_to_float

finite = st.floats(allow_nan=False, allow_infinity=False, allow_subnormal=False,
                   min_value=-1e100, max_value=1e100, width=64)


class TestDirectedRoundingProperties:
    @given(finite, finite, st.sampled_from(["add", "sub", "mul"]))
    @settings(max_examples=200, deadline=None)
    def test_bracketing(self, a, b, op):
        """RD result <= exact <= RU result, and RN is one of the two."""
        dn = ieee_op(op, f2b(a), f2b(b), mode="dn")
        up = ieee_op(op, f2b(a), f2b(b), mode="up")
        ne = ieee_op(op, f2b(a), f2b(b), mode="ne")
        exact = {"add": Fraction(a) + Fraction(b),
                 "sub": Fraction(a) - Fraction(b),
                 "mul": Fraction(a) * Fraction(b)}[op]
        if B.is_finite(dn.bits) and B.is_finite(up.bits):
            assert Fraction(b2f(dn.bits)) <= exact <= Fraction(b2f(up.bits))
            assert ne.bits in (dn.bits, up.bits)

    @given(finite, finite.filter(lambda x: x != 0))
    @settings(max_examples=150, deadline=None)
    def test_rz_truncates_magnitude(self, a, b):
        zr = ieee_op("div", f2b(a), f2b(b), mode="zr")
        ne = ieee_op("div", f2b(a), f2b(b), mode="ne")
        if B.is_finite(zr.bits):
            assert abs(b2f(zr.bits)) <= abs(b2f(ne.bits))

    @given(finite, finite)
    @settings(max_examples=100, deadline=None)
    def test_exact_results_mode_independent(self, a, b):
        results = {m: ieee_op("add", f2b(a), f2b(b), mode=m)
                   for m in ("ne", "dn", "up", "zr")}
        if not results["ne"].flags.inexact and B.is_finite(results["ne"].bits) \
                and not B.is_zero(results["ne"].bits):
            bits = {r.bits for r in results.values()}
            assert len(bits) == 1

    def test_known_third(self):
        third_up = b2f(ieee_op("div", f2b(1.0), f2b(3.0), mode="up").bits)
        third_dn = b2f(ieee_op("div", f2b(1.0), f2b(3.0), mode="dn").bits)
        assert Fraction(third_dn) < Fraction(1, 3) < Fraction(third_up)
        assert third_up == math.nextafter(third_dn, 1.0)

    def test_sqrt_directed(self):
        up = b2f(ieee_op("sqrt", f2b(2.0), mode="up").bits)
        dn = b2f(ieee_op("sqrt", f2b(2.0), mode="dn").bits)
        assert Fraction(dn) ** 2 < 2 < Fraction(up) ** 2
        assert up == math.nextafter(dn, 2.0)

    def test_overflow_behaviour(self):
        huge = f2b(1.7e308)
        assert ieee_op("add", huge, huge, mode="ne").bits == B.POS_INF_BITS
        assert ieee_op("add", huge, huge, mode="up").bits == B.POS_INF_BITS
        # RZ/RD clamp positive overflow to the largest finite value.
        assert ieee_op("add", huge, huge, mode="zr").bits == f2b(1.7976931348623157e308)
        assert ieee_op("add", huge, huge, mode="dn").bits == f2b(1.7976931348623157e308)

    def test_exact_cancellation_sign_by_mode(self):
        # x - x: +0 under RN/RZ/RU, -0 under RD (IEEE 6.3).
        assert ieee_op("sub", f2b(1.5), f2b(1.5), mode="ne").bits == B.POS_ZERO_BITS
        assert ieee_op("sub", f2b(1.5), f2b(1.5), mode="dn").bits == B.NEG_ZERO_BITS


class TestMXCSRField:
    def test_default_is_nearest(self):
        assert rounding_mode(MXCSR_DEFAULT) == "ne"

    @pytest.mark.parametrize("rc,name", [
        (RC_NEAREST, "ne"), (RC_DOWN, "dn"), (RC_UP, "up"), (RC_ZERO, "zr"),
    ])
    def test_encode_decode(self, rc, name):
        assert rounding_mode(with_rounding(MXCSR_DEFAULT, rc)) == name

    def test_with_rounding_preserves_masks(self):
        m = with_rounding(MXCSR_DEFAULT, RC_UP)
        assert m & 0x1F80 == MXCSR_DEFAULT & 0x1F80  # mask bits intact


class TestCPUHonoursRC:
    SRC = (
        ".data\none: .double 1.0\nthree: .double 3.0\n.text\nmain:\n"
        "  movsd xmm0, [rip + one]\n  divsd xmm0, [rip + three]\n  hlt\n"
    )

    def _run(self, rc) -> float:
        cpu = CPU(assemble(self.SRC))
        cpu.regs.mxcsr = with_rounding(MXCSR_DEFAULT, rc)
        cpu.run()
        return b2f(cpu.regs.xmm[0][0])

    def test_round_up_vs_down(self):
        up = self._run(RC_UP)
        dn = self._run(RC_DOWN)
        ne = self._run(RC_NEAREST)
        assert Fraction(dn) < Fraction(1, 3) < Fraction(up)
        assert ne in (dn, up)

    def test_round_zero_truncates(self):
        assert self._run(RC_ZERO) == self._run(RC_DOWN)  # positive value
