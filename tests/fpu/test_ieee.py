"""Unit + property tests for the exact IEEE-754 operation oracle.

The oracle's *values* must agree bit-for-bit with host binary64
arithmetic (Python floats are IEEE binary64 on every supported
platform), and its *flags* must agree with exact rational reasoning.
"""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpu import bits as B
from repro.fpu.ieee import (
    UCOMI_EQUAL,
    UCOMI_GREATER,
    UCOMI_LESS,
    UCOMI_UNORDERED,
    ieee_add,
    ieee_cmp,
    ieee_cvtsd2si,
    ieee_cvtsi2sd,
    ieee_cvttsd2si,
    ieee_div,
    ieee_max,
    ieee_min,
    ieee_mul,
    ieee_op,
    ieee_sqrt,
    ieee_sub,
    ieee_ucomi,
)

f2b = B.float_to_bits
b2f = B.bits_to_float

# Strategy: well-behaved finite doubles (normal range) plus interesting
# specials mixed in by dedicated tests.
finite_doubles = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=False, width=64
)


class TestAddValues:
    @given(finite_doubles, finite_doubles)
    @settings(max_examples=300, deadline=None)
    def test_matches_host(self, a, b):
        r = ieee_add(f2b(a), f2b(b))
        host = a + b
        assert r.bits == f2b(host)

    @given(finite_doubles, finite_doubles)
    @settings(max_examples=300, deadline=None)
    def test_inexact_flag_exact_rational(self, a, b):
        r = ieee_add(f2b(a), f2b(b))
        if B.is_finite(r.bits):
            exact = Fraction(a) + Fraction(b)
            got = B.bits_to_fraction(r.bits)
            assert r.flags.inexact == (exact != got)

    def test_exact_add(self):
        r = ieee_add(f2b(1.0), f2b(2.0))
        assert r.bits == f2b(3.0)
        assert not r.flags.any()

    def test_inexact_add(self):
        r = ieee_add(f2b(0.1), f2b(0.2))
        assert r.bits == f2b(0.1 + 0.2)
        assert r.flags.inexact

    def test_overflow(self):
        big = f2b(1.7e308)
        r = ieee_add(big, big)
        assert r.bits == B.POS_INF_BITS
        assert r.flags.overflow and r.flags.inexact

    def test_negative_overflow(self):
        big = f2b(-1.7e308)
        r = ieee_add(big, big)
        assert r.bits == B.NEG_INF_BITS
        assert r.flags.overflow

    def test_exact_cancellation_gives_pos_zero(self):
        r = ieee_add(f2b(1.5), f2b(-1.5))
        assert r.bits == B.POS_ZERO_BITS
        assert not r.flags.any()

    def test_neg_zero_plus_neg_zero(self):
        r = ieee_add(B.NEG_ZERO_BITS, B.NEG_ZERO_BITS)
        assert r.bits == B.NEG_ZERO_BITS

    def test_inf_plus_finite(self):
        r = ieee_add(B.POS_INF_BITS, f2b(1.0))
        assert r.bits == B.POS_INF_BITS
        assert not r.flags.invalid

    def test_inf_minus_inf_invalid(self):
        r = ieee_add(B.POS_INF_BITS, B.NEG_INF_BITS)
        assert r.flags.invalid
        assert B.is_qnan(r.bits)

    def test_snan_operand_raises_invalid_and_quiets(self):
        snan = B.make_snan(0x42)
        r = ieee_add(snan, f2b(1.0))
        assert r.flags.invalid
        assert B.is_qnan(r.bits)
        # x64 propagates the first NaN source, quieted, payload intact.
        assert r.bits == B.quiet(snan)

    def test_qnan_operand_no_invalid(self):
        qnan = B.make_qnan(0x42)
        r = ieee_add(f2b(1.0), qnan)
        assert not r.flags.invalid
        assert r.bits == qnan

    def test_denormal_operand_flag(self):
        sub = f2b(5e-324)
        r = ieee_add(sub, f2b(1.0))
        assert r.flags.denormal

    def test_underflow_tiny_sum(self):
        a = f2b(5e-324)
        b = f2b(-1e-310)
        r = ieee_add(b, a)
        host = -1e-310 + 5e-324
        assert r.bits == f2b(host)

    def test_tiny_inexact_result_flags_underflow(self):
        # min_subnormal/2 computed as subnormal + (-subnormal/...) paths
        # through the slow rational path and must flag underflow.
        a = f2b(5e-324)
        r = ieee_op("div", a, f2b(2.0))
        assert r.flags.underflow and r.flags.inexact


class TestSubValues:
    @given(finite_doubles, finite_doubles)
    @settings(max_examples=200, deadline=None)
    def test_matches_host(self, a, b):
        r = ieee_sub(f2b(a), f2b(b))
        assert r.bits == f2b(a - b)

    def test_simple(self):
        assert ieee_sub(f2b(5.0), f2b(3.0)).bits == f2b(2.0)


class TestMulValues:
    @given(finite_doubles, finite_doubles)
    @settings(max_examples=300, deadline=None)
    def test_matches_host(self, a, b):
        r = ieee_mul(f2b(a), f2b(b))
        assert r.bits == f2b(a * b)

    @given(finite_doubles, finite_doubles)
    @settings(max_examples=200, deadline=None)
    def test_inexact_flag(self, a, b):
        r = ieee_mul(f2b(a), f2b(b))
        if B.is_finite(r.bits) and not B.is_nan(r.bits):
            exact = Fraction(a) * Fraction(b)
            assert r.flags.inexact == (B.bits_to_fraction(r.bits) != exact)

    def test_exact_power_of_two(self):
        r = ieee_mul(f2b(1.5), f2b(2.0))
        assert r.bits == f2b(3.0)
        assert not r.flags.inexact

    def test_zero_times_inf_invalid(self):
        r = ieee_mul(B.POS_ZERO_BITS, B.POS_INF_BITS)
        assert r.flags.invalid
        assert B.is_qnan(r.bits)

    def test_signed_zero_result(self):
        r = ieee_mul(f2b(-1.0), B.POS_ZERO_BITS)
        assert r.bits == B.NEG_ZERO_BITS

    def test_overflow(self):
        r = ieee_mul(f2b(1e200), f2b(1e200))
        assert r.bits == B.POS_INF_BITS
        assert r.flags.overflow

    def test_underflow(self):
        r = ieee_mul(f2b(1e-200), f2b(1e-200))
        assert r.bits == f2b(1e-200 * 1e-200)
        assert r.flags.underflow


class TestDivValues:
    @given(finite_doubles, finite_doubles)
    @settings(max_examples=300, deadline=None)
    def test_matches_host(self, a, b):
        r = ieee_div(f2b(a), f2b(b))
        if b == 0.0:
            return  # covered by dedicated tests
        assert r.bits == f2b(a / b)

    def test_div_by_zero(self):
        r = ieee_div(f2b(1.0), B.POS_ZERO_BITS)
        assert r.bits == B.POS_INF_BITS
        assert r.flags.zero_divide and not r.flags.invalid

    def test_div_by_neg_zero(self):
        r = ieee_div(f2b(1.0), B.NEG_ZERO_BITS)
        assert r.bits == B.NEG_INF_BITS

    def test_zero_over_zero_invalid(self):
        r = ieee_div(B.POS_ZERO_BITS, B.POS_ZERO_BITS)
        assert r.flags.invalid
        assert B.is_qnan(r.bits)

    def test_inf_over_inf_invalid(self):
        r = ieee_div(B.POS_INF_BITS, B.NEG_INF_BITS)
        assert r.flags.invalid

    def test_finite_over_inf_is_zero(self):
        r = ieee_div(f2b(-3.0), B.POS_INF_BITS)
        assert r.bits == B.NEG_ZERO_BITS

    def test_exact_division(self):
        r = ieee_div(f2b(3.0), f2b(2.0))
        assert r.bits == f2b(1.5)
        assert not r.flags.inexact

    def test_inexact_division(self):
        r = ieee_div(f2b(1.0), f2b(3.0))
        assert r.bits == f2b(1.0 / 3.0)
        assert r.flags.inexact


class TestSqrt:
    @given(st.floats(min_value=0.0, allow_nan=False, allow_infinity=False, width=64))
    @settings(max_examples=300, deadline=None)
    def test_matches_host(self, a):
        r = ieee_sqrt(f2b(a))
        assert r.bits == f2b(math.sqrt(a))

    def test_exact_square(self):
        r = ieee_sqrt(f2b(4.0))
        assert r.bits == f2b(2.0)
        assert not r.flags.inexact

    def test_inexact(self):
        r = ieee_sqrt(f2b(2.0))
        assert r.bits == f2b(math.sqrt(2.0))
        assert r.flags.inexact

    def test_negative_invalid(self):
        r = ieee_sqrt(f2b(-1.0))
        assert r.flags.invalid
        assert B.is_qnan(r.bits)

    def test_neg_zero_ok(self):
        r = ieee_sqrt(B.NEG_ZERO_BITS)
        assert r.bits == B.NEG_ZERO_BITS
        assert not r.flags.any()

    def test_inf(self):
        assert ieee_sqrt(B.POS_INF_BITS).bits == B.POS_INF_BITS


class TestMinMax:
    def test_min_basic(self):
        assert ieee_min(f2b(1.0), f2b(2.0)).bits == f2b(1.0)
        assert ieee_min(f2b(2.0), f2b(1.0)).bits == f2b(1.0)

    def test_max_basic(self):
        assert ieee_max(f2b(1.0), f2b(2.0)).bits == f2b(2.0)

    def test_min_returns_src2_on_nan(self):
        # SSE minsd: any NaN => src2 returned verbatim.
        qnan = B.make_qnan(7)
        assert ieee_min(qnan, f2b(3.0)).bits == f2b(3.0)
        assert ieee_min(f2b(3.0), qnan).bits == qnan

    def test_min_equal_returns_src2(self):
        # Distinguishable via signed zeros: minsd(+0, -0) = -0 (src2).
        assert ieee_min(B.POS_ZERO_BITS, B.NEG_ZERO_BITS).bits == B.NEG_ZERO_BITS

    def test_snan_invalid(self):
        assert ieee_min(B.make_snan(1), f2b(0.0)).flags.invalid


class TestCompares:
    def test_ucomi_less(self):
        assert ieee_ucomi(f2b(1.0), f2b(2.0)).bits == UCOMI_LESS

    def test_ucomi_greater(self):
        assert ieee_ucomi(f2b(3.0), f2b(2.0)).bits == UCOMI_GREATER

    def test_ucomi_equal(self):
        assert ieee_ucomi(f2b(2.0), f2b(2.0)).bits == UCOMI_EQUAL

    def test_ucomi_zero_signs_equal(self):
        assert ieee_ucomi(B.POS_ZERO_BITS, B.NEG_ZERO_BITS).bits == UCOMI_EQUAL

    def test_ucomi_unordered(self):
        r = ieee_ucomi(B.make_qnan(1), f2b(2.0))
        assert r.bits == UCOMI_UNORDERED
        assert not r.flags.invalid  # qNaN does not signal for ucomisd

    def test_ucomi_snan_invalid(self):
        assert ieee_ucomi(B.make_snan(1), f2b(2.0)).flags.invalid

    def test_comi_qnan_invalid(self):
        assert ieee_op("comi", B.make_qnan(1), f2b(2.0)).flags.invalid

    def test_cmp_lt_mask(self):
        assert ieee_cmp("lt", f2b(1.0), f2b(2.0)).bits == 0xFFFFFFFFFFFFFFFF
        assert ieee_cmp("lt", f2b(2.0), f2b(1.0)).bits == 0

    def test_cmp_eq(self):
        assert ieee_cmp("eq", f2b(2.0), f2b(2.0)).bits == 0xFFFFFFFFFFFFFFFF

    def test_cmp_unord(self):
        assert ieee_cmp("unord", B.make_qnan(1), f2b(1.0)).bits == 0xFFFFFFFFFFFFFFFF
        assert ieee_cmp("unord", f2b(1.0), f2b(1.0)).bits == 0

    def test_cmp_neq_nan_true(self):
        assert ieee_cmp("neq", B.make_qnan(1), f2b(1.0)).bits == 0xFFFFFFFFFFFFFFFF

    def test_cmp_lt_signals_on_qnan(self):
        assert ieee_cmp("lt", B.make_qnan(1), f2b(1.0)).flags.invalid

    def test_cmp_eq_quiet_on_qnan(self):
        assert not ieee_cmp("eq", B.make_qnan(1), f2b(1.0)).flags.invalid


class TestConverts:
    @given(st.integers(min_value=-(2**62), max_value=2**62))
    @settings(max_examples=200, deadline=None)
    def test_cvtsi2sd_matches_host(self, n):
        r = ieee_cvtsi2sd(n & 0xFFFFFFFFFFFFFFFF)
        assert r.bits == f2b(float(n))

    def test_cvtsi2sd_inexact_for_large(self):
        n = (1 << 60) + 1
        r = ieee_cvtsi2sd(n)
        assert r.flags.inexact

    def test_cvttsd2si_truncates(self):
        assert ieee_cvttsd2si(f2b(2.9)).bits == 2
        assert ieee_cvttsd2si(f2b(-2.9)).bits == (-2) & 0xFFFFFFFFFFFFFFFF

    def test_cvttsd2si_exact_integer_no_inexact(self):
        r = ieee_cvttsd2si(f2b(5.0))
        assert r.bits == 5
        assert not r.flags.inexact

    def test_cvttsd2si_nan_indefinite(self):
        r = ieee_cvttsd2si(B.make_qnan(1))
        assert r.bits == 0x8000000000000000
        assert r.flags.invalid

    def test_cvttsd2si_overflow_indefinite(self):
        r = ieee_cvttsd2si(f2b(1e30))
        assert r.bits == 0x8000000000000000
        assert r.flags.invalid

    def test_cvtsd2si_rounds_nearest_even(self):
        assert ieee_cvtsd2si(f2b(2.5)).bits == 2
        assert ieee_cvtsd2si(f2b(3.5)).bits == 4
        assert ieee_cvtsd2si(f2b(-2.5)).bits == (-2) & 0xFFFFFFFFFFFFFFFF


class TestDispatch:
    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            ieee_op("frobnicate", 0)

    def test_cmp_dispatch(self):
        assert ieee_op("cmp_le", f2b(1.0), f2b(1.0)).bits == 0xFFFFFFFFFFFFFFFF

    def test_flags_mxcsr_encoding(self):
        r = ieee_div(f2b(1.0), B.POS_ZERO_BITS)
        assert r.flags.as_mxcsr_status() & 0x4  # ZE


@given(finite_doubles, finite_doubles)
@settings(max_examples=200, deadline=None)
def test_nan_never_escapes_unquieted(a, b):
    """Arithmetic results are never signaling NaNs."""
    for op in ("add", "sub", "mul", "div"):
        r = ieee_op(op, f2b(a), f2b(b))
        assert not B.is_snan(r.bits)
