"""Unit tests for binary64 bit manipulation."""

import math
from fractions import Fraction

import pytest

from repro.fpu import bits as B


class TestRoundTrip:
    def test_float_to_bits_one(self):
        assert B.float_to_bits(1.0) == 0x3FF0000000000000

    def test_float_to_bits_two(self):
        assert B.float_to_bits(2.0) == 0x4000000000000000

    def test_float_to_bits_neg_zero(self):
        assert B.float_to_bits(-0.0) == B.NEG_ZERO_BITS

    def test_bits_to_float_round_trip(self):
        for x in [0.0, 1.5, -3.25, 1e300, -1e-300, 5e-324, math.pi]:
            assert B.bits_to_float(B.float_to_bits(x)) == x

    def test_inf_patterns(self):
        assert B.float_to_bits(math.inf) == B.POS_INF_BITS
        assert B.float_to_bits(-math.inf) == B.NEG_INF_BITS


class TestClassify:
    def test_canonical_qnan_is_qnan(self):
        assert B.is_nan(B.CANONICAL_QNAN)
        assert B.is_qnan(B.CANONICAL_QNAN)
        assert not B.is_snan(B.CANONICAL_QNAN)

    def test_snan_detection(self):
        snan = B.make_snan(0x1234)
        assert B.is_nan(snan)
        assert B.is_snan(snan)
        assert not B.is_qnan(snan)

    def test_quiet_converts_snan(self):
        snan = B.make_snan(1)
        assert B.is_qnan(B.quiet(snan))

    def test_inf_is_not_nan(self):
        assert not B.is_nan(B.POS_INF_BITS)
        assert B.is_inf(B.POS_INF_BITS)
        assert B.is_inf(B.NEG_INF_BITS)

    def test_zero_detection(self):
        assert B.is_zero(B.POS_ZERO_BITS)
        assert B.is_zero(B.NEG_ZERO_BITS)
        assert not B.is_zero(B.float_to_bits(5e-324))

    def test_subnormal_detection(self):
        assert B.is_subnormal(B.float_to_bits(5e-324))
        assert B.is_subnormal(B.float_to_bits(-1e-310))
        assert not B.is_subnormal(B.float_to_bits(1e-300))
        assert not B.is_subnormal(B.POS_ZERO_BITS)

    def test_finite(self):
        assert B.is_finite(B.float_to_bits(1.0))
        assert not B.is_finite(B.POS_INF_BITS)
        assert not B.is_finite(B.CANONICAL_QNAN)

    def test_negative(self):
        assert B.is_negative(B.float_to_bits(-1.0))
        assert B.is_negative(B.NEG_ZERO_BITS)
        assert not B.is_negative(B.float_to_bits(1.0))

    def test_make_snan_rejects_zero_payload(self):
        with pytest.raises(ValueError):
            B.make_snan(0)

    def test_make_nan_rejects_oversized_payload(self):
        with pytest.raises(ValueError):
            B.make_qnan(1 << 51)
        with pytest.raises(ValueError):
            B.make_snan(1 << 51)


class TestFractionConversion:
    def test_one(self):
        assert B.bits_to_fraction(B.float_to_bits(1.0)) == 1

    def test_half(self):
        assert B.bits_to_fraction(B.float_to_bits(0.5)) == Fraction(1, 2)

    def test_tenth_is_not_exact_tenth(self):
        f = B.bits_to_fraction(B.float_to_bits(0.1))
        assert f != Fraction(1, 10)
        assert abs(f - Fraction(1, 10)) < Fraction(1, 10**17)

    def test_negative(self):
        assert B.bits_to_fraction(B.float_to_bits(-2.5)) == Fraction(-5, 2)

    def test_smallest_subnormal(self):
        assert B.bits_to_fraction(1) == Fraction(1, 2**1074)

    def test_zero_both_signs(self):
        assert B.bits_to_fraction(B.POS_ZERO_BITS) == 0
        assert B.bits_to_fraction(B.NEG_ZERO_BITS) == 0

    def test_nonfinite_raises(self):
        with pytest.raises(ValueError):
            B.bits_to_fraction(B.POS_INF_BITS)
        with pytest.raises(ValueError):
            B.bits_to_fraction(B.CANONICAL_QNAN)


class TestRNERounding:
    def test_exact_value(self):
        bits, inexact, overflow, underflow = B.fraction_to_bits_rne(Fraction(3, 2))
        assert bits == B.float_to_bits(1.5)
        assert not inexact and not overflow and not underflow

    def test_inexact_tenth(self):
        bits, inexact, _, _ = B.fraction_to_bits_rne(Fraction(1, 10))
        assert bits == B.float_to_bits(0.1)
        assert inexact

    def test_overflow(self):
        bits, inexact, overflow, _ = B.fraction_to_bits_rne(Fraction(2) ** 1025)
        assert bits == B.POS_INF_BITS
        assert overflow and inexact

    def test_negative_overflow(self):
        bits, _, overflow, _ = B.fraction_to_bits_rne(-(Fraction(2) ** 1025))
        assert bits == B.NEG_INF_BITS
        assert overflow

    def test_underflow_subnormal(self):
        # A value inside the subnormal range that needs rounding.
        v = Fraction(1, 2**1074) / 3
        bits, inexact, _, underflow = B.fraction_to_bits_rne(v)
        assert inexact and underflow
        assert bits == 0  # rounds to +0

    def test_exact_subnormal_no_underflow_flag(self):
        v = Fraction(1, 2**1074)
        bits, inexact, _, underflow = B.fraction_to_bits_rne(v)
        assert bits == 1
        assert not inexact and not underflow

    def test_round_half_to_even(self):
        # 1 + 2^-53 is exactly halfway between 1.0 and nextafter(1.0):
        # must round to the even mantissa, i.e. 1.0.
        v = 1 + Fraction(1, 2**53)
        bits, inexact, _, _ = B.fraction_to_bits_rne(v)
        assert bits == B.float_to_bits(1.0)
        assert inexact

    def test_round_half_up_when_odd(self):
        # (1 + 2^-52) + 2^-53 is halfway; lower neighbour is odd => up.
        v = 1 + Fraction(1, 2**52) + Fraction(1, 2**53)
        bits, inexact, _, _ = B.fraction_to_bits_rne(v)
        assert bits == B.float_to_bits(1.0) + 2
        assert inexact

    def test_sign_hint_zero(self):
        bits, *_ = B.fraction_to_bits_rne(Fraction(0), sign_hint=1)
        assert bits == B.NEG_ZERO_BITS

    def test_matches_host_for_many_rationals(self):
        for num in range(1, 40):
            for den in range(1, 40):
                v = Fraction(num, den)
                bits, inexact, _, _ = B.fraction_to_bits_rne(v)
                assert bits == B.float_to_bits(num / den), (num, den)
                assert inexact == (Fraction(B.bits_to_float(bits)) != v)


class TestIlog2:
    def test_powers_of_two(self):
        for e in range(-60, 60):
            x = Fraction(2) ** e
            assert B._ilog2(x) == e

    def test_between_powers(self):
        assert B._ilog2(Fraction(3)) == 1
        assert B._ilog2(Fraction(3, 4)) == -1
        assert B._ilog2(Fraction(1, 3)) == -2
        assert B._ilog2(Fraction(7, 2)) == 1

    def test_large_and_tiny(self):
        assert B._ilog2(Fraction(2**1000 + 1)) == 1000
        assert B._ilog2(Fraction(1, 2**1000)) == -1000


class TestUlp:
    def test_ulp_of_one(self):
        assert B.ulp_bits(B.float_to_bits(1.0)) == Fraction(1, 2**52)

    def test_ulp_of_subnormal(self):
        assert B.ulp_bits(1) == Fraction(1, 2**1074)

    def test_ulp_of_large(self):
        assert B.ulp_bits(B.float_to_bits(2.0**60)) == Fraction(2**8)

    def test_ulp_nonfinite_raises(self):
        with pytest.raises(ValueError):
            B.ulp_bits(B.POS_INF_BITS)
