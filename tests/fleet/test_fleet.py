"""Fleet determinism, crash-retry, and quota tests (tier-1, fast).

The contract under test: a guest's ledger — stdout, simulated cycles,
instruction count, trap counts, per-thread breakdown — is a function of
the job alone.  Serial cold execution, the in-process warm path
(``workers=0``), and any multiprocess pool must all produce
bit-identical fingerprints, crashes and retries included, and fleet
totals must reconcile against serial execution to the cycle.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import FleetQuotaError, FleetWorkerError
from repro.fleet import (
    FleetScheduler,
    GuestJob,
    TenantQuota,
    make_batch,
    run_guest,
)

pytestmark = pytest.mark.fleet

GUESTS = 8
SCALE = 60  # small lorenz: ~1ms/guest warm, big enough to trace


@pytest.fixture(scope="module")
def batch():
    return make_batch("lorenz", GUESTS, scale=SCALE)


@pytest.fixture(scope="module")
def serial_oracle(batch):
    """Every guest cold (fresh build + load, no sharing), serially."""
    return {j.job_id: run_guest(j, None) for j in batch}


def test_inline_matches_serial(batch, serial_oracle):
    """workers=0: warm templates + COW images, still bit-identical."""
    report = FleetScheduler(workers=0).run(batch)
    assert report.fingerprints() == {
        jid: r.fingerprint() for jid, r in serial_oracle.items()}
    # the warm path must actually share: every guest COW-faults at
    # least once (its first write to the shared image).
    assert all(r.cow_faults > 0 for r in report.results)
    assert report.fleet["cycles"] == sum(
        r.cycles for r in serial_oracle.values())


def test_two_workers_match_serial(batch, serial_oracle):
    """The ISSUE determinism gate: 8 guests, 2 workers, bit-identical
    per-guest ledgers vs serial execution."""
    report = FleetScheduler(workers=2).run(batch)
    assert not report.failed and not report.rejected
    assert report.fingerprints() == {
        jid: r.fingerprint() for jid, r in serial_oracle.items()}
    assert report.fleet["guests"] == GUESTS
    assert report.fleet["cow_faults"] > 0
    # exact ledger reconciliation, not sampled
    assert report.fleet["cycles"] == sum(
        r.cycles for r in serial_oracle.values())
    assert report.fleet["instructions"] == sum(
        r.instructions for r in serial_oracle.values())


def test_crash_injection_retries_exactly_once(batch, serial_oracle):
    """A worker killed mid-batch: the held job is retried exactly once
    on a fresh worker, every ledger stays bit-identical, and no cycle
    is double-counted."""
    jobs = list(batch)
    jobs[2] = dataclasses.replace(jobs[2], fault="crash_once")
    report = FleetScheduler(workers=2).run(jobs)
    assert not report.failed and not report.rejected
    assert report.crashes == 1
    assert report.retries == 1
    by_id = {r.job_id: r for r in report.results}
    assert by_id[jobs[2].job_id].attempts == 2
    assert all(by_id[j.job_id].attempts == 1
               for j in jobs if j.job_id != jobs[2].job_id)
    # crash + retry must not perturb results or double-count cycles
    assert report.fingerprints() == {
        jid: r.fingerprint() for jid, r in serial_oracle.items()}
    assert report.fleet["cycles"] == sum(
        r.cycles for r in serial_oracle.values())


def test_crash_beyond_retry_budget_is_typed(batch):
    """retries=0: the crashing job fails with FleetWorkerError carrying
    its job id; the rest of the batch still completes."""
    jobs = list(batch[:4])
    jobs[0] = dataclasses.replace(jobs[0], fault="crash_once")
    report = FleetScheduler(workers=2, retries=0).run(jobs)
    assert len(report.failed) == 1
    err = report.failed[0]
    assert isinstance(err, FleetWorkerError)
    assert err.fault == "fleet_worker"
    assert err.job_ids == (jobs[0].job_id,)
    assert sorted(r.job_id for r in report.results) == [
        j.job_id for j in jobs[1:]]


def test_max_guests_quota_rejects_typed(batch):
    quotas = {"default": TenantQuota(max_guests=3)}
    report = FleetScheduler(workers=0, quotas=quotas).run(batch)
    assert len(report.results) == 3
    assert len(report.rejected) == GUESTS - 3
    for job, err in report.rejected:
        assert isinstance(err, FleetQuotaError)
        assert err.fault == "fleet_quota"
        assert err.job_id == job.job_id
        assert err.tenant == "default"
    # first-come-first-admitted: the lowest job_ids survive
    assert [r.job_id for r in report.results] == [0, 1, 2]


@pytest.mark.parametrize("workers", [0, 2])
def test_max_cycles_quota_is_deterministic(batch, serial_oracle, workers):
    """A cycle budget admits the same prefix whether the batch runs
    inline or across a pool: budgeted tenants are dispatched serially
    so the rejection set never depends on worker timing."""
    per_guest = serial_oracle[0].cycles
    # budget for exactly three guests
    quotas = {"default": TenantQuota(max_cycles=3 * per_guest)}
    report = FleetScheduler(workers=workers, quotas=quotas).run(batch)
    assert [r.job_id for r in report.results] == [0, 1, 2]
    assert sorted(j.job_id for j, _ in report.rejected) == list(
        range(3, GUESTS))
    assert all(isinstance(err, FleetQuotaError)
               for _, err in report.rejected)


def test_guest_error_is_result_not_retry():
    """A deterministic guest failure travels back as an error result
    (never a crash/retry): here an instruction-budget exhaustion."""
    job = GuestJob(job_id=0, workload="lorenz", scale=SCALE,
                   max_instructions=10)
    result = run_guest(job, None)
    assert result.error is not None
    report = FleetScheduler(workers=0).run([job])
    assert report.results[0].error == result.error
    assert report.results[0].fingerprint() == result.fingerprint()


def test_multithreaded_guests_in_fleet():
    """Process-based guests (lorenz_mt) ride the fleet too, with
    per-thread ledgers preserved bit-for-bit."""
    jobs = make_batch("lorenz_mt", 3, scale=80)
    cold = {j.job_id: run_guest(j, None) for j in jobs}
    assert all(r.threads is not None and len(r.threads) > 1
               for r in cold.values())
    report = FleetScheduler(workers=0).run(jobs)
    assert report.fingerprints() == {
        jid: r.fingerprint() for jid, r in cold.items()}


def test_lazy_fp_counters_reconcile_across_fleet():
    """Per-guest lazy-FP scheduler counters (ownership switches, elided
    saves) must travel through the fleet unchanged and reconcile exactly:
    serial == inline scheduler, per-worker sums == fleet totals."""
    from repro.harness.report import render_fleet

    jobs = make_batch("mixed_mt", 3, scale=30)
    cold = {j.job_id: run_guest(j, None) for j in jobs}
    assert all(r.fp_switches > 0 for r in cold.values())
    assert all(r.fp_saves_elided > 0 for r in cold.values())

    report = FleetScheduler(workers=0).run(jobs)
    by_id = {r.job_id: r for r in report.results}
    for jid, r in cold.items():
        assert by_id[jid].fp_switches == r.fp_switches
        assert by_id[jid].fp_saves_elided == r.fp_saves_elided

    fleet = report.fleet
    assert fleet["fp_switches"] == sum(r.fp_switches for r in report.results)
    assert fleet["fp_saves_elided"] == sum(
        r.fp_saves_elided for r in report.results)
    per_worker = fleet["per_worker"]
    assert sum(w["fp_switches"] for w in per_worker.values()) == (
        fleet["fp_switches"])
    assert sum(w["fp_saves_elided"] for w in per_worker.values()) == (
        fleet["fp_saves_elided"])

    text = render_fleet(fleet, "fleet")
    assert "FP switches/elided" in text
    assert f"{fleet['fp_switches']:>10} / {fleet['fp_saves_elided']}" in text


def test_warm_template_reuses_caches(batch):
    """Within one scheduler process the second guest of a template must
    reuse the first guest's compiled trace code (the warm-start the
    fleet exists for)."""
    report = FleetScheduler(workers=0).run(batch)
    later = [r for r in report.results[1:]]
    assert any(r.uop.get("trace_code_hits", 0) > 0 for r in later)


def test_template_patch_mid_batch_spares_other_guests():
    """Satellite: patching one workload template mid-batch must only
    invalidate the covering artifacts — resident guests' unrelated warm
    blocks survive (new per-site counters) and later guests of the same
    template keep their warm trace-code hit rate."""
    from repro.fleet.worker import WorkloadTemplate
    from repro.kernel.kernel import LinuxKernel
    from repro.machine.cpu import CPU

    jobs = make_batch("lorenz", 4, scale=SCALE)
    template = WorkloadTemplate(jobs[0])
    run_guest(jobs[0], template)                 # compiles the trace code
    warm = run_guest(jobs[1], template)
    assert warm.error is None
    assert warm.uop["trace_code_hits"] > 0       # warm path established

    # A resident guest holding live views in the shared cache (as a
    # concurrently-running guest of the same template would).
    resident = CPU.from_image(template.program, template.image,
                              uops=True, chain=True, trace=True)
    resident._sb_cache = template.sb_cache
    resident.kernel = LinuxKernel()
    resident.run()
    cache = template.sb_cache
    view = cache.views[resident._sb_view_key]
    live_blocks = len(view)
    assert live_blocks > 1

    # Patch a site covered by a live block but outside every compiled
    # trace, so only that block (not the hot traced loop) is stale.
    trace_ranges = [r for tv in cache.trace_views.values()
                    for t in tv.values() for r in t.ranges]
    site = next(b.entry for b in view.values()
                if b.end > b.entry
                and not any(lo <= b.entry < hi for lo, hi in trace_ranges))
    fired = []
    inv0, surv0 = cache.invalidated_blocks, cache.survived_blocks
    template.program.patch_call(site, lambda cpu, rip: fired.append(rip))

    post = run_guest(jobs[2], template)
    assert post.error is None
    assert fired                                   # the pre-hook is live
    # per-site: the covering block died, the rest of the resident
    # guest's warm state survived the patch.
    assert cache.invalidated_blocks > inv0
    assert cache.survived_blocks > surv0
    assert len(view) >= live_blocks - (cache.invalidated_blocks - inv0)
    assert len(view) > live_blocks // 2
    # the post-patch guest's warm hit rate is unaffected.
    assert post.output == warm.output
    assert post.uop["trace_code_hits"] == warm.uop["trace_code_hits"]
