"""Cross-system contract tests for the alternative arithmetic interface
plus system-specific behaviours."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.altmath import (
    BoxedIEEE,
    IntervalSystem,
    MPFRSystem,
    PositSystem,
    RationalSystem,
    get_altmath,
)
from repro.fpu import bits as B

f2b = B.float_to_bits
b2f = B.bits_to_float

ALL_SYSTEMS = [
    BoxedIEEE(),
    MPFRSystem(200),
    PositSystem(64),
    IntervalSystem(),
    RationalSystem(),
]

normal = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=False,
    min_value=-1e100, max_value=1e100, width=64,
).filter(lambda x: x == 0.0 or abs(x) > 1e-100)


@pytest.mark.parametrize("system", ALL_SYSTEMS, ids=lambda s: s.name)
class TestInterfaceContract:
    def test_registry_round_trip(self, system):
        assert get_altmath(system.name).name == system.name

    def test_promote_demote_identity_on_simple(self, system):
        for x in [0.0, 1.0, -2.5, 3.0, 1024.0, -0.125]:
            v = system.promote(f2b(x))
            assert b2f(system.demote(v)) == x

    def test_add(self, system):
        a = system.promote(f2b(1.5))
        b = system.promote(f2b(2.25))
        assert b2f(system.demote(system.binary("add", a, b))) == 3.75

    def test_sub_mul_div(self, system):
        a = system.promote(f2b(7.0))
        b = system.promote(f2b(2.0))
        assert b2f(system.demote(system.binary("sub", a, b))) == 5.0
        assert b2f(system.demote(system.binary("mul", a, b))) == 14.0
        assert b2f(system.demote(system.binary("div", a, b))) == 3.5

    def test_sqrt(self, system):
        v = system.promote(f2b(9.0))
        assert b2f(system.demote(system.unary("sqrt", v))) == 3.0

    def test_sqrt_negative_is_alt_nan(self, system):
        v = system.promote(f2b(-4.0))
        r = system.unary("sqrt", v)
        assert system.is_nan_value(r)
        assert B.is_nan(system.demote(r))

    def test_neg_abs(self, system):
        v = system.promote(f2b(-3.0))
        assert b2f(system.demote(system.unary("neg", v))) == 3.0
        assert b2f(system.demote(system.unary("abs", v))) == 3.0

    def test_compare(self, system):
        a = system.promote(f2b(1.0))
        b = system.promote(f2b(2.0))
        assert system.compare(a, b) == -1
        assert system.compare(b, a) == 1
        assert system.compare(a, a) == 0

    def test_compare_nan_unordered(self, system):
        nan = system.promote(B.CANONICAL_QNAN)
        one = system.promote(f2b(1.0))
        assert system.compare(nan, one) is None

    def test_nan_promotes_to_alt_nan(self, system):
        v = system.promote(B.CANONICAL_QNAN)
        assert system.is_nan_value(v)

    def test_zero_div_zero_nan(self, system):
        z = system.promote(f2b(0.0))
        assert system.is_nan_value(system.binary("div", z, z))

    def test_from_to_i64(self, system):
        v = system.from_i64((-42) & 0xFFFFFFFFFFFFFFFF)
        assert b2f(system.demote(v)) == -42.0
        assert system.to_i64(v) == (-42) & 0xFFFFFFFFFFFFFFFF

    def test_to_i64_truncates(self, system):
        v = system.promote(f2b(2.75))
        assert system.to_i64(v, truncate=True) == 2

    def test_to_i64_nan_indefinite(self, system):
        v = system.promote(B.CANONICAL_QNAN)
        assert system.to_i64(v) == 0x8000000000000000

    def test_min_max(self, system):
        a = system.promote(f2b(1.0))
        b = system.promote(f2b(2.0))
        assert b2f(system.demote(system.binary("min", a, b))) == 1.0
        assert b2f(system.demote(system.binary("max", a, b))) == 2.0

    def test_libm_sin(self, system):
        v = system.promote(f2b(0.5))
        r = system.libm("sin", v)
        assert b2f(system.demote(r)) == pytest.approx(math.sin(0.5), rel=1e-9)

    def test_costs_defined_for_core_ops(self, system):
        for op in ("add", "sub", "mul", "div", "sqrt"):
            assert system.costs.op(op) > 0
        assert system.costs.promote > 0
        assert system.costs.demote > 0


class TestBoxedIEEEBitExactness:
    @given(normal, normal)
    @settings(max_examples=200, deadline=None)
    def test_matches_hardware_bits(self, a, b):
        sys_ = BoxedIEEE()
        for op in ("add", "sub", "mul", "div"):
            if op == "div" and b == 0.0:
                continue
            va, vb = sys_.promote(f2b(a)), sys_.promote(f2b(b))
            got = sys_.demote(sys_.binary(op, va, vb))
            host = {"add": a + b, "sub": a - b, "mul": a * b,
                    "div": a / b if b else 0.0}[op]
            assert got == f2b(host)

    def test_signed_zero_preserved(self, ):
        sys_ = BoxedIEEE()
        v = sys_.promote(B.NEG_ZERO_BITS)
        assert sys_.demote(v) == B.NEG_ZERO_BITS


class TestMPFRPrecision:
    def test_sum_beats_double(self):
        sys_ = MPFRSystem(200)
        tenth = sys_.promote(f2b(0.1))
        acc = sys_.promote(f2b(0.0))
        for _ in range(10):
            acc = sys_.binary("add", acc, tenth)
        # Exactly 10 * double(0.1), which demotes to 1.0000000000000002
        # territory -- crucially NOT the drifted double loop result.
        double_acc = 0.0
        for _ in range(10):
            double_acc += 0.1
        exact = 10 * Fraction(0.1)
        expected, *_ = B.fraction_to_bits_rne(exact)
        assert sys_.demote(acc) == expected
        assert f2b(double_acc) != expected

    def test_precision_parameter(self):
        lo = MPFRSystem(53)
        hi = MPFRSystem(500)
        third_lo = lo.binary("div", lo.from_i64(1), lo.from_i64(3))
        third_hi = hi.binary("div", hi.from_i64(1), hi.from_i64(3))
        err_lo = abs(third_lo.to_fraction() - Fraction(1, 3))
        err_hi = abs(third_hi.to_fraction() - Fraction(1, 3))
        assert err_hi < err_lo

    def test_costs_scale_with_precision(self):
        assert MPFRSystem(500).costs.op("mul") > MPFRSystem(100).costs.op("mul")


class TestPosit:
    def test_round_trip_simple_values(self):
        sys_ = PositSystem(64)
        for x in [1.0, -1.0, 0.5, 2.0, 100.0, -0.001, 12345.678]:
            v = sys_.promote(f2b(x))
            assert b2f(sys_.demote(v)) == pytest.approx(x, rel=1e-12)

    def test_nar_round_trip(self):
        sys_ = PositSystem(32)
        v = sys_.promote(B.CANONICAL_QNAN)
        assert v.nar
        assert B.is_nan(sys_.demote(v))

    def test_no_underflow_to_zero(self):
        sys_ = PositSystem(16)
        v = sys_.promote(f2b(1e-300))
        assert not v.is_zero  # saturates at minpos instead

    def test_saturation_at_maxpos(self):
        sys_ = PositSystem(16)
        big = sys_.promote(f2b(1e300))
        bigger = sys_.binary("mul", big, big)
        assert sys_.compare(bigger, big) >= 0
        assert not bigger.nar

    def test_encoding_monotonic(self):
        from repro.altmath.posit import posit_to_fraction, Posit

        nbits = 8
        values = []
        for body in range(1, 1 << (nbits - 1)):
            values.append(posit_to_fraction(Posit(body, nbits)))
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                     allow_infinity=False).filter(lambda x: x == 0 or abs(x) > 1e-6))
    @settings(max_examples=60, deadline=None)
    def test_posit32_roundtrip_close(self, x):
        sys_ = PositSystem(32)
        v = sys_.promote(f2b(x))
        got = b2f(sys_.demote(v))
        if x == 0:
            assert got == 0
        else:
            assert got == pytest.approx(x, rel=1e-6)

    def test_two_complement_negation(self):
        sys_ = PositSystem(32)
        v = sys_.promote(f2b(3.5))
        n = sys_.unary("neg", v)
        assert b2f(sys_.demote(n)) == pytest.approx(-3.5, rel=1e-6)
        assert sys_.compare(n, v) == -1


class TestInterval:
    def test_promote_is_degenerate(self):
        sys_ = IntervalSystem()
        v = sys_.promote(f2b(2.0))
        assert v.lo == v.hi == 2.0

    def test_enclosure_property(self):
        sys_ = IntervalSystem()
        a = sys_.promote(f2b(0.1))
        b = sys_.promote(f2b(0.2))
        r = sys_.binary("add", a, b)
        exact = Fraction(0.1) + Fraction(0.2)
        assert Fraction(r.lo) <= exact <= Fraction(r.hi)
        assert r.lo < r.hi  # genuinely widened

    @given(normal, normal)
    @settings(max_examples=100, deadline=None)
    def test_mul_enclosure(self, a, b):
        sys_ = IntervalSystem()
        r = sys_.binary("mul", sys_.promote(f2b(a)), sys_.promote(f2b(b)))
        exact = Fraction(a) * Fraction(b)
        if math.isfinite(r.lo) and math.isfinite(r.hi):
            assert Fraction(r.lo) <= exact <= Fraction(r.hi)

    def test_division_by_zero_containing_interval(self):
        sys_ = IntervalSystem()
        a = sys_.promote(f2b(1.0))
        z = sys_.binary("sub", sys_.promote(f2b(0.1)), sys_.promote(f2b(0.1)))
        r = sys_.binary("div", a, z)
        assert r.undefined or (r.lo == -math.inf and r.hi == math.inf)

    def test_width_tracks_error(self):
        sys_ = IntervalSystem()
        acc = sys_.promote(f2b(0.0))
        tenth = sys_.promote(f2b(0.1))
        for _ in range(100):
            acc = sys_.binary("add", acc, tenth)
        assert acc.hi > acc.lo
        assert 100 * 0.1 in acc or (acc.lo <= 10.000000000000002 <= acc.hi)


class TestRational:
    def test_exact_field_ops(self):
        sys_ = RationalSystem()
        third = sys_.binary("div", sys_.from_i64(1), sys_.from_i64(3))
        total = sys_.promote(f2b(0.0))
        for _ in range(3):
            total = sys_.binary("add", total, third)
        assert total.numeric() == 1

    def test_neg_zero_semantics(self):
        sys_ = RationalSystem()
        v = sys_.promote(B.NEG_ZERO_BITS)
        assert sys_.demote(v) == B.NEG_ZERO_BITS
        n = sys_.unary("neg", sys_.promote(f2b(0.0)))
        assert sys_.demote(n) == B.NEG_ZERO_BITS

    def test_div_by_zero_inf(self):
        sys_ = RationalSystem()
        r = sys_.binary("div", sys_.from_i64(1), sys_.promote(f2b(0.0)))
        assert r.special == "+inf"
        assert sys_.demote(r) == B.POS_INF_BITS

    def test_sqrt_exact_when_perfect_square(self):
        sys_ = RationalSystem()
        v = sys_.promote(f2b(2.25))
        r = sys_.unary("sqrt", v)
        assert r.numeric() == Fraction(3, 2)

    def test_sqrt_inexact_high_precision(self):
        sys_ = RationalSystem()
        r = sys_.unary("sqrt", sys_.from_i64(2))
        err = abs(r.numeric() ** 2 - 2)
        assert err < Fraction(1, 2**100)
