"""Logarithmic number system tests (related work [3])."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.altmath import get_altmath
from repro.altmath.lns import LNSSystem, LNSValue
from repro.fpu import bits as B

f2b = B.float_to_bits
b2f = B.bits_to_float

positive = st.floats(min_value=1e-30, max_value=1e30, allow_nan=False,
                     allow_infinity=False)


@pytest.fixture
def lns() -> LNSSystem:
    return LNSSystem(frac_bits=52)


class TestRepresentation:
    def test_registry(self):
        assert get_altmath("lns").name == "lns"

    def test_round_trip_powers_of_two(self, lns):
        for x in [1.0, 2.0, 0.5, 1024.0, 2.0**-30, -8.0]:
            assert b2f(lns.demote(lns.promote(f2b(x)))) == x

    @given(positive)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_close(self, x):
        lns = LNSSystem(frac_bits=52)
        got = b2f(lns.demote(lns.promote(f2b(x))))
        assert got == pytest.approx(x, rel=1e-12)

    def test_specials(self, lns):
        assert lns.promote(B.CANONICAL_QNAN).is_nan()
        assert lns.demote(lns.promote(B.POS_INF_BITS)) == B.POS_INF_BITS
        assert lns.demote(lns.promote(B.NEG_ZERO_BITS)) == B.NEG_ZERO_BITS

    def test_frac_bits_validation(self):
        with pytest.raises(ValueError):
            LNSSystem(frac_bits=2)


class TestMultiplicativeExactness:
    """LNS's defining property: mul/div/sqrt are exact log-adds."""

    @given(positive, positive)
    @settings(max_examples=100, deadline=None)
    def test_mul_is_log_add(self, x, y):
        lns = LNSSystem(frac_bits=52)
        a, b = lns.promote(f2b(x)), lns.promote(f2b(y))
        r = lns.binary("mul", a, b)
        assert r.log2 == pytest.approx(float(a.log2 + b.log2), abs=1e-15)

    def test_mul_of_powers_of_two_exact(self, lns):
        a = lns.promote(f2b(2.0**10))
        b = lns.promote(f2b(2.0**-3))
        assert b2f(lns.demote(lns.binary("mul", a, b))) == 2.0**7

    def test_long_product_chain_no_drift(self, lns):
        # 2^0.5 multiplied 100 times == 2^50 exactly in LNS.
        v = lns.unary("sqrt", lns.promote(f2b(2.0)))
        acc = lns.promote(f2b(1.0))
        for _ in range(100):
            acc = lns.binary("mul", acc, v)
        assert b2f(lns.demote(acc)) == 2.0**50

    def test_sqrt_exact(self, lns):
        v = lns.promote(f2b(16.0))
        assert b2f(lns.demote(lns.unary("sqrt", v))) == 4.0

    def test_div_inverse_of_mul(self, lns):
        a = lns.promote(f2b(3.7))
        b = lns.promote(f2b(11.3))
        r = lns.binary("div", lns.binary("mul", a, b), b)
        assert r.log2 == a.log2  # exactly


class TestAdditive:
    @given(positive, positive)
    @settings(max_examples=80, deadline=None)
    def test_add_close_to_float(self, x, y):
        lns = LNSSystem(frac_bits=52)
        r = lns.binary("add", lns.promote(f2b(x)), lns.promote(f2b(y)))
        assert b2f(lns.demote(r)) == pytest.approx(x + y, rel=1e-9)

    def test_sub_cancellation_to_zero(self, lns):
        a = lns.promote(f2b(5.5))
        r = lns.binary("sub", a, a)
        assert r.kind == "zero"

    def test_sub_signs(self, lns):
        r = lns.binary("sub", lns.promote(f2b(2.0)), lns.promote(f2b(5.0)))
        assert b2f(lns.demote(r)) == pytest.approx(-3.0, rel=1e-9)

    def test_add_opposite_signs(self, lns):
        r = lns.binary("add", lns.promote(f2b(-2.0)), lns.promote(f2b(5.0)))
        assert b2f(lns.demote(r)) == pytest.approx(3.0, rel=1e-9)


class TestSpecialAlgebra:
    def test_zero_times_inf(self, lns):
        z = lns.promote(f2b(0.0))
        i = lns.promote(B.POS_INF_BITS)
        assert lns.binary("mul", z, i).is_nan()

    def test_div_by_zero(self, lns):
        r = lns.binary("div", lns.promote(f2b(1.0)), lns.promote(f2b(0.0)))
        assert r.kind == "inf"

    def test_zero_div_zero(self, lns):
        z = lns.promote(f2b(0.0))
        assert lns.binary("div", z, z).is_nan()

    def test_sqrt_negative(self, lns):
        assert lns.unary("sqrt", lns.promote(f2b(-4.0))).is_nan()

    def test_compare(self, lns):
        a = lns.promote(f2b(-3.0))
        b = lns.promote(f2b(2.0))
        assert lns.compare(a, b) == -1
        assert lns.compare(b, a) == 1
        assert lns.compare(b, b) == 0

    def test_compare_negatives_by_magnitude(self, lns):
        a = lns.promote(f2b(-10.0))
        b = lns.promote(f2b(-2.0))
        assert lns.compare(a, b) == -1


class TestEndToEnd:
    def test_virtualized_run(self):
        from repro.core.vm import FPVMConfig
        from repro.harness.runner import run_fpvm, run_native

        native = run_native("lorenz", scale=40)
        result = run_fpvm("lorenz", FPVMConfig.seq_short(altmath="lns"), scale=40)
        assert result.traps > 0
        # LNS is approximate on adds: close but not bit-for-bit.
        for got, want in zip(result.output, native.output):
            assert float(got) == pytest.approx(float(want), rel=1e-6)

    def test_mul_cheaper_than_add_in_cost_model(self):
        lns = LNSSystem()
        assert lns.costs.op("mul") < lns.costs.op("add") / 4
