"""Kernel simulator tests: signal delivery, sigreturn semantics, and
trap short-circuiting."""

import pytest

from repro.fpu import bits as B
from repro.kernel.fpvm_dev import (
    FPVM_IOCTL_REGISTER_ENTRY,
    FPVMDevice,
    FPVMDeviceError,
    FPVMDeviceHandle,
)
from repro.kernel.kernel import LinuxKernel
from repro.kernel.signals import SIGFPE, SIGTRAP, SignalContext
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU, MachineError, TrapKind
from repro.machine.registers import MXCSR_FPVM

f2b = B.float_to_bits

TRAPPY = (
    ".data\na: .double 0.1\nb: .double 0.2\n.text\nmain:\n"
    "  movsd xmm0, [rip + a]\n  addsd xmm0, [rip + b]\n  hlt\n"
)


def make_cpu(source=TRAPPY, unmask=True):
    prog = assemble(source)
    cpu = CPU(prog)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    if unmask:
        cpu.regs.mxcsr = MXCSR_FPVM
    return cpu, kernel


def skip_handler(signum, context, trap):
    """A handler that 'emulates' by writing a result and skipping."""
    context.write_xmm(0, f2b(99.0))
    context.rip = trap.addr + trap.instruction.size


class TestSignalPath:
    def test_sigfpe_delivered_to_handler(self):
        cpu, kernel = make_cpu()
        seen = []

        def handler(signum, context, trap):
            seen.append((signum, trap.kind, trap.addr))
            context.rip = trap.addr + trap.instruction.size

        kernel.sigaction(SIGFPE, handler)
        cpu.run()
        assert len(seen) == 1
        assert seen[0][0] == SIGFPE
        assert seen[0][1] is TrapKind.XF

    def test_handler_mutations_applied_at_sigreturn(self):
        cpu, kernel = make_cpu()
        kernel.sigaction(SIGFPE, skip_handler)
        cpu.run()
        assert cpu.regs.xmm[0][0] == f2b(99.0)

    def test_no_handler_kills_process(self):
        cpu, kernel = make_cpu()
        with pytest.raises(MachineError, match="SIGFPE"):
            cpu.run()

    def test_signal_costs_charged(self):
        cpu, kernel = make_cpu()
        kernel.sigaction(SIGFPE, skip_handler)
        before = cpu.cycles
        cpu.run()
        costs = kernel.costs
        overhead = costs.hw_trap + costs.kernel_internal + costs.signal_deliver + costs.sigreturn
        assert cpu.cycles - before >= overhead

    def test_sigtrap_for_breakpoints(self):
        prog = assemble("main:\n  mov rax, 1\n  mov rbx, 2\n  hlt\n")
        target = prog.instructions[1].addr
        prog.patch_int3(target)
        cpu = CPU(prog)
        kernel = LinuxKernel()
        cpu.kernel = kernel
        seen = []

        def handler(signum, context, trap):
            seen.append(signum)
            context.suppress_patch_at = trap.addr

        kernel.sigaction(SIGTRAP, handler)
        cpu.run()
        assert seen == [SIGTRAP]
        assert cpu.regs.gpr[1] == 2  # single-stepped after handler

    def test_frame_mode_isolates_handler_from_live_regs(self):
        cpu, kernel = make_cpu()

        def handler(signum, context, trap):
            # Mutate the frame: live registers unchanged until sigreturn.
            context.write_gpr(0, 1234)
            assert cpu.regs.gpr[0] != 1234
            context.rip = trap.addr + trap.instruction.size

        kernel.sigaction(SIGFPE, handler)
        cpu.run()
        assert cpu.regs.gpr[0] == 1234

    def test_trap_counts(self):
        cpu, kernel = make_cpu()
        kernel.sigaction(SIGFPE, skip_handler)
        cpu.run()
        assert kernel.trap_counts[TrapKind.XF] == 1
        assert kernel.signal_counts[SIGFPE] == 1


class TestShortCircuit:
    def test_registered_process_bypasses_signals(self):
        cpu, kernel = make_cpu()
        device = FPVMDevice(kernel)
        handle = device.open(cpu)
        seen = []

        def entry(context, trap):
            seen.append(trap.addr)
            context.write_xmm(0, f2b(42.0))
            context.rip = trap.addr + trap.instruction.size

        handle.ioctl(FPVM_IOCTL_REGISTER_ENTRY, entry)
        # No SIGFPE handler installed: would die on the signal path.
        cpu.run()
        assert len(seen) == 1
        assert cpu.regs.xmm[0][0] == f2b(42.0)
        assert device.delivery_count == 1

    def test_short_circuit_is_8x_cheaper(self):
        def run_with(short: bool) -> int:
            cpu, kernel = make_cpu()
            if short:
                device = FPVMDevice(kernel)
                handle = device.open(cpu)

                def entry(context, trap):
                    context.write_xmm(0, f2b(1.0))
                    context.rip = trap.addr + trap.instruction.size

                handle.ioctl(FPVM_IOCTL_REGISTER_ENTRY, entry)
            else:
                kernel.sigaction(SIGFPE, skip_handler)
            base = 3  # three instructions' native cost, roughly
            cpu.run()
            return cpu.cycles - base

        slow = run_with(False)
        fast = run_with(True)
        # Paper: kern+ret drops 5600 -> ~380; total trap cost ~8x lower.
        assert slow / fast > 6

    def test_unregistered_process_falls_back_to_signals(self):
        cpu, kernel = make_cpu()
        FPVMDevice(kernel)  # module loaded, but process never registered
        kernel.sigaction(SIGFPE, skip_handler)
        cpu.run()
        assert cpu.regs.xmm[0][0] == f2b(99.0)

    def test_close_revokes_registration(self):
        cpu, kernel = make_cpu()
        device = FPVMDevice(kernel)
        handle = device.open(cpu)
        handle.ioctl(FPVM_IOCTL_REGISTER_ENTRY, lambda c, t: None)
        assert device.is_registered(cpu)
        handle.close()
        assert not device.is_registered(cpu)

    def test_ioctl_after_close_rejected(self):
        cpu, kernel = make_cpu()
        device = FPVMDevice(kernel)
        handle = device.open(cpu)
        handle.close()
        with pytest.raises(FPVMDeviceError):
            handle.ioctl(FPVM_IOCTL_REGISTER_ENTRY, lambda c, t: None)

    def test_bad_ioctl_rejected(self):
        cpu, kernel = make_cpu()
        device = FPVMDevice(kernel)
        handle = device.open(cpu)
        with pytest.raises(FPVMDeviceError, match="unknown ioctl"):
            handle.ioctl(0xBEEF)

    def test_register_requires_entry(self):
        cpu, kernel = make_cpu()
        device = FPVMDevice(kernel)
        handle = device.open(cpu)
        with pytest.raises(FPVMDeviceError, match="entry point"):
            handle.ioctl(FPVM_IOCTL_REGISTER_ENTRY)

    def test_live_context_mutations_immediate(self):
        cpu, kernel = make_cpu()
        device = FPVMDevice(kernel)
        handle = device.open(cpu)

        def entry(context, trap):
            context.write_gpr(0, 777)
            assert cpu.regs.gpr[0] == 777  # live, not a frame
            context.rip = trap.addr + trap.instruction.size

        handle.ioctl(FPVM_IOCTL_REGISTER_ENTRY, entry)
        cpu.run()
        assert cpu.regs.gpr[0] == 777


class TestLedgerRouting:
    def test_categories_charged(self):
        class Ledger:
            def __init__(self):
                self.by_cat = {}

            def charge(self, cat, cycles, **kwargs):
                self.by_cat[cat] = self.by_cat.get(cat, 0) + cycles

            def count(self, name, n=1):
                pass

        cpu, kernel = make_cpu()
        ledger = Ledger()
        kernel.ledger = ledger
        kernel.sigaction(SIGFPE, skip_handler)
        cpu.run()
        assert ledger.by_cat["hw"] == kernel.costs.hw_trap
        assert ledger.by_cat["kernel"] >= kernel.costs.signal_deliver
        assert ledger.by_cat["ret"] == kernel.costs.sigreturn
