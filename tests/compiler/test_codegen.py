"""Mini-C compiler tests: semantics of generated code, native and
under FPVM."""

import math

import pytest

from repro.compiler import (
    Bin, Call, Cast, CompileError, FCmp, For, ICmp, IBin, ILet, INum,
    ITrunc, IVar, If, Let, Load, Max, Min, Module, Neg, Num, Print,
    PrintI, PrintPair, Return, Sqrt, Store, Var, While,
)
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library


def run_module(module: Module, fpvm: FPVMConfig | None = None):
    prog = module.compile()
    install_host_library(prog)
    cpu = CPU(prog)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = None
    if fpvm is not None:
        vm = FPVM(fpvm).attach(cpu, kernel)
    cpu.run()
    return cpu, vm


def simple_main(*stmts) -> Module:
    m = Module()
    main = m.function("main")
    for s in stmts:
        main.emit(s)
    return m


class TestExpressions:
    def test_arithmetic(self):
        cpu, _ = run_module(simple_main(
            Print(Bin("/", Bin("-", Bin("*", Num(3.0), Num(4.0)), Num(2.0)), Num(5.0)))
        ))
        assert cpu.output == ["2.0"]

    def test_nested_depth(self):
        # ((((1+2)+3)+4)+5) and right-nested variant
        e = Num(1.0)
        for v in (2.0, 3.0, 4.0, 5.0):
            e = Bin("+", e, Num(v))
        r = Num(5.0)
        for v in (4.0, 3.0, 2.0, 1.0):
            r = Bin("+", Num(v), r)
        cpu, _ = run_module(simple_main(Print(e), Print(r)))
        assert cpu.output == ["15.0", "15.0"]

    def test_neg(self):
        cpu, _ = run_module(simple_main(Print(Neg(Num(2.5)))))
        assert cpu.output == ["-2.5"]

    def test_sqrt_inline(self):
        cpu, _ = run_module(simple_main(Print(Sqrt(Num(16.0)))))
        assert cpu.output == ["4.0"]

    def test_min_max(self):
        cpu, _ = run_module(simple_main(
            Print(Min(Num(2.0), Num(3.0))), Print(Max(Num(2.0), Num(3.0)))
        ))
        assert cpu.output == ["2.0", "3.0"]

    def test_cast_and_trunc(self):
        cpu, _ = run_module(simple_main(
            Print(Cast(INum(7))),
            PrintI(ITrunc(Num(3.9))),
            PrintI(ITrunc(Num(-3.9))),
        ))
        assert cpu.output == ["7.0", "3", "-3"]

    def test_libm_call(self):
        cpu, _ = run_module(simple_main(Print(Call("cos", [Num(0.0)]))))
        assert cpu.output == ["1.0"]

    def test_call_with_live_temporaries(self):
        # 10.0 + sin(0.5)*2.0 : sin is called while 10.0 is live in xmm0.
        cpu, _ = run_module(simple_main(
            Print(Bin("+", Num(10.0), Bin("*", Call("sin", [Num(0.5)]), Num(2.0))))
        ))
        assert float(cpu.output[0]) == pytest.approx(10.0 + math.sin(0.5) * 2.0)

    def test_two_arg_call(self):
        cpu, _ = run_module(simple_main(Print(Call("atan2", [Num(1.0), Num(1.0)]))))
        assert float(cpu.output[0]) == pytest.approx(math.pi / 4)

    def test_too_deep_expression_rejected(self):
        e = Num(1.0)
        for _ in range(14):
            e = Bin("+", Num(1.0), e)
        with pytest.raises(CompileError, match="deep"):
            simple_main(Print(e)).compile()

    def test_unknown_function_rejected(self):
        with pytest.raises(CompileError, match="unknown function"):
            simple_main(Print(Call("nosuch", [Num(1.0)]))).compile()

    def test_undefined_variable_rejected(self):
        with pytest.raises(CompileError, match="undefined variable"):
            simple_main(Print(Var("ghost"))).compile()


class TestStatements:
    def test_variables(self):
        cpu, _ = run_module(simple_main(
            Let("x", Num(2.0)),
            Let("y", Bin("*", Var("x"), Num(3.0))),
            Let("x", Bin("+", Var("x"), Var("y"))),
            Print(Var("x")),
        ))
        assert cpu.output == ["8.0"]

    def test_int_variables(self):
        cpu, _ = run_module(simple_main(
            ILet("i", INum(5)),
            ILet("j", IBin("*", IVar("i"), INum(3))),
            PrintI(IBin("-", IVar("j"), INum(1))),
        ))
        assert cpu.output == ["14"]

    def test_for_loop_sum(self):
        cpu, _ = run_module(simple_main(
            Let("s", Num(0.0)),
            For("i", INum(0), INum(100), [
                Let("s", Bin("+", Var("s"), Cast(IVar("i")))),
            ]),
            Print(Var("s")),
        ))
        assert cpu.output == ["4950.0"]

    def test_for_empty_range(self):
        cpu, _ = run_module(simple_main(
            Let("s", Num(1.0)),
            For("i", INum(5), INum(5), [Let("s", Num(99.0))]),
            Print(Var("s")),
        ))
        assert cpu.output == ["1.0"]

    def test_nested_loops(self):
        cpu, _ = run_module(simple_main(
            ILet("n", INum(0)),
            For("i", INum(0), INum(4), [
                For("j", INum(0), INum(3), [
                    ILet("n", IBin("+", IVar("n"), INum(1))),
                ]),
            ]),
            PrintI(IVar("n")),
        ))
        assert cpu.output == ["12"]

    def test_while(self):
        cpu, _ = run_module(simple_main(
            Let("x", Num(1.0)),
            While(FCmp("<", Var("x"), Num(100.0)), [
                Let("x", Bin("*", Var("x"), Num(2.0))),
            ]),
            Print(Var("x")),
        ))
        assert cpu.output == ["128.0"]

    def test_if_else(self):
        cpu, _ = run_module(simple_main(
            Let("x", Num(-3.0)),
            If(FCmp("<", Var("x"), Num(0.0)),
               [Print(Neg(Var("x")))],
               [Print(Var("x"))]),
        ))
        assert cpu.output == ["3.0"]

    def test_if_without_else(self):
        cpu, _ = run_module(simple_main(
            Let("x", Num(1.0)),
            If(FCmp(">", Var("x"), Num(0.0)), [Let("x", Num(2.0))]),
            Print(Var("x")),
        ))
        assert cpu.output == ["2.0"]

    def test_int_conditions(self):
        cpu, _ = run_module(simple_main(
            ILet("i", INum(-5)),
            If(ICmp("<", IVar("i"), INum(0)), [PrintI(INum(1))], [PrintI(INum(0))]),
        ))
        assert cpu.output == ["1"]

    def test_print_pair(self):
        cpu, _ = run_module(simple_main(PrintPair(Num(1.5), Num(2.5))))
        assert cpu.output == ["1.5 2.5"]


class TestArrays:
    def test_store_load(self):
        m = Module()
        m.data_array("a", 8)
        main = m.function("main")
        main.emit(For("i", INum(0), INum(8), [
            Store("a", IVar("i"), Bin("*", Cast(IVar("i")), Cast(IVar("i")))),
        ]))
        main.emit(Print(Load("a", INum(5))))
        cpu, _ = run_module(m)
        assert cpu.output == ["25.0"]

    def test_initialized_data(self):
        m = Module()
        m.data_double("coeffs", [1.5, 2.5, 3.5])
        main = m.function("main")
        main.emit(Print(Load("coeffs", INum(1))))
        cpu, _ = run_module(m)
        assert cpu.output == ["2.5"]

    def test_computed_index(self):
        m = Module()
        m.data_double("v", [0.0, 10.0, 20.0, 30.0])
        main = m.function("main")
        main.emit(ILet("i", INum(1)))
        main.emit(Print(Load("v", IBin("+", IBin("<<", IVar("i"), INum(1)), INum(1)))))
        cpu, _ = run_module(m)
        assert cpu.output == ["30.0"]


class TestFunctions:
    def test_user_function(self):
        m = Module()
        f = m.function("hyp", params=("a", "b"))
        f.emit(Return(Sqrt(Bin("+", Bin("*", Var("a"), Var("a")),
                                Bin("*", Var("b"), Var("b"))))))
        main = m.function("main")
        main.emit(Print(Call("hyp", [Num(3.0), Num(4.0)])))
        cpu, _ = run_module(m)
        assert cpu.output == ["5.0"]

    def test_recursive_style_chain(self):
        m = Module()
        inc = m.function("inc", params=("x",))
        inc.emit(Return(Bin("+", Var("x"), Num(1.0))))
        main = m.function("main")
        main.emit(Print(Call("inc", [Call("inc", [Call("inc", [Num(0.0)])])])))
        cpu, _ = run_module(m)
        assert cpu.output == ["3.0"]

    def test_duplicate_function_rejected(self):
        m = Module()
        m.function("f")
        with pytest.raises(CompileError, match="duplicate"):
            m.function("f")

    def test_missing_main_rejected(self):
        m = Module()
        m.function("helper")
        with pytest.raises(CompileError, match="main"):
            m.compile()


class TestUnderFPVM:
    def test_compiled_code_bit_for_bit(self):
        m = Module()
        m.data_array("buf", 16)
        main = m.function("main")
        main.emit(Let("acc", Num(0.0)))
        main.emit(For("i", INum(0), INum(16), [
            Store("buf", IVar("i"),
                  Bin("/", Cast(IBin("+", IVar("i"), INum(1))), Num(7.0))),
            Let("acc", Bin("+", Var("acc"), Load("buf", IVar("i")))),
        ]))
        main.emit(Print(Var("acc")))
        native, _ = run_module(m)
        virt, vm = run_module(m, FPVMConfig.seq_short())
        assert native.output == virt.output
        assert vm.telemetry.traps > 0

    def test_sequences_longer_with_bigger_expressions(self):
        def module(depth: int) -> Module:
            m = Module()
            main = m.function("main")
            main.emit(Let("x", Num(0.1)))
            e = Var("x")
            for _ in range(depth):
                e = Bin("*", Bin("+", e, Num(0.2)), Num(0.3))
            main.emit(For("i", INum(0), INum(20), [Let("x", e)]))
            main.emit(Print(Var("x")))
            return m

        _, vm_small = run_module(module(1), FPVMConfig.seq_short())
        _, vm_big = run_module(module(5), FPVMConfig.seq_short())
        assert (
            vm_big.telemetry.avg_sequence_length
            > vm_small.telemetry.avg_sequence_length
        )
