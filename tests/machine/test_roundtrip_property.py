"""Property-based round-trip and differential tests for the machine
substrate: random instructions survive encode->decode, and the integer
ALU agrees with a big-integer reference model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.assembler import assemble
from repro.machine.cpu import CPU, s64
from repro.machine.decoder import decode_instruction
from repro.machine.encoding import encode_instruction
from repro.machine.isa import (
    GPR_NAMES,
    OPCODES,
    XMM_NAMES,
    Imm,
    Instruction,
    Label,
    Mem,
    OpClass,
    Reg,
    Xmm,
)

U64 = 0xFFFF_FFFF_FFFF_FFFF

# ---------------------------------------------------------------- operands
gprs = st.sampled_from(GPR_NAMES).map(Reg)
xmms = st.sampled_from(XMM_NAMES).map(Xmm)
imms = st.integers(min_value=-(2**63), max_value=2**63 - 1).map(Imm)
mems = st.builds(
    Mem,
    base=st.one_of(st.none(), st.sampled_from(GPR_NAMES)),
    index=st.one_of(st.none(), st.sampled_from(GPR_NAMES)),
    scale=st.sampled_from([1, 2, 4, 8]),
    disp=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    size=st.sampled_from([1, 2, 4, 8]),
)
labels = st.integers(min_value=0, max_value=2**40).map(
    lambda a: Label(f"loc_{a:x}", addr=a)
)

_KIND_STRATEGY = {"reg": gprs, "xmm": xmms, "imm": imms, "mem": mems, "label": labels}

#: plausible operand-kind signatures per opcode class (the decoder does
#: not validate semantics, only structure, so any kinds round-trip).
any_operand = st.one_of(gprs, xmms, imms, mems, labels)


@st.composite
def instructions(draw):
    mnemonic = draw(st.sampled_from(sorted(OPCODES)))
    arity = OPCODES[mnemonic].arity
    ops = tuple(draw(any_operand) for _ in range(arity))
    return Instruction(mnemonic, ops)


class TestEncodeDecodeProperty:
    @given(instructions())
    @settings(max_examples=300, deadline=None)
    def test_round_trip_structure(self, instr):
        raw = encode_instruction(instr)
        decoded = decode_instruction(raw, addr=0x400000)
        assert decoded.mnemonic == instr.mnemonic
        assert len(decoded.operands) == len(instr.operands)
        for dec, orig in zip(decoded.operands, instr.operands):
            assert type(dec) is type(orig)
            if isinstance(orig, (Reg, Xmm)):
                assert dec.name == orig.name
            elif isinstance(orig, Imm):
                assert dec.value == orig.value
            elif isinstance(orig, Mem):
                assert (dec.base, dec.index, dec.scale, dec.disp, dec.size) == (
                    orig.base, orig.index, orig.scale, orig.disp, orig.size
                )
            elif isinstance(orig, Label):
                assert dec.addr == orig.addr

    @given(instructions())
    @settings(max_examples=150, deadline=None)
    def test_size_matches_bytes(self, instr):
        raw = encode_instruction(instr)
        decoded = decode_instruction(raw)
        assert decoded.size == len(raw)


# --------------------------------------------------------- ALU differential
_ALU_REFERENCE = {
    "add": lambda a, b: (a + b) & U64,
    "sub": lambda a, b: (a - b) & U64,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "imul": lambda a, b: (s64(a) * s64(b)) & U64,
}

u64s = st.integers(min_value=0, max_value=U64)


class TestALUDifferential:
    @given(st.sampled_from(sorted(_ALU_REFERENCE)), u64s, u64s)
    @settings(max_examples=300, deadline=None)
    def test_binary_alu_matches_reference(self, op, a, b):
        prog = assemble(f"main:\n  {op} rax, rbx\n  hlt\n")
        cpu = CPU(prog)
        cpu.regs.write_gpr(0, a)
        cpu.regs.write_gpr(1, b)
        cpu.run()
        assert cpu.regs.gpr[0] == _ALU_REFERENCE[op](a, b)

    @given(u64s, st.integers(min_value=0, max_value=63))
    @settings(max_examples=200, deadline=None)
    def test_shifts_match_reference(self, a, count):
        prog = assemble(
            f"main:\n  shl rax, {count}\n  shr rbx, {count}\n  sar rcx, {count}\n  hlt\n"
        )
        cpu = CPU(prog)
        for rid in (0, 1, 2):
            cpu.regs.write_gpr(rid, a)
        cpu.run()
        assert cpu.regs.gpr[0] == (a << count) & U64
        assert cpu.regs.gpr[1] == a >> count
        assert cpu.regs.gpr[2] == (s64(a) >> count) & U64

    @given(u64s, u64s)
    @settings(max_examples=200, deadline=None)
    def test_cmp_flags_drive_all_branches_consistently(self, a, b):
        """Signed and unsigned branch outcomes must agree with Python's
        view of the comparison."""
        prog = assemble(
            "main:\n  cmp rax, rbx\n"
            "  jl is_lt\n  mov rcx, 0\n  jmp next\nis_lt:\n  mov rcx, 1\nnext:\n"
            "  cmp rax, rbx\n"
            "  jb is_b\n  mov rdx, 0\n  jmp done\nis_b:\n  mov rdx, 1\ndone:\n  hlt\n"
        )
        cpu = CPU(prog)
        cpu.regs.write_gpr(0, a)
        cpu.regs.write_gpr(1, b)
        cpu.run()
        assert cpu.regs.gpr[2] == (1 if s64(a) < s64(b) else 0)   # jl: signed
        assert cpu.regs.gpr[3] == (1 if a < b else 0)             # jb: unsigned

    @given(u64s)
    @settings(max_examples=100, deadline=None)
    def test_neg_not_involution(self, a):
        prog = assemble("main:\n  neg rax\n  neg rax\n  not rbx\n  not rbx\n  hlt\n")
        cpu = CPU(prog)
        cpu.regs.write_gpr(0, a)
        cpu.regs.write_gpr(1, a)
        cpu.run()
        assert cpu.regs.gpr[0] == a
        assert cpu.regs.gpr[1] == a


# ------------------------------------------------ register file snapshots
lane_masks = st.integers(min_value=0, max_value=(1 << 32) - 1)
xmm_banks = st.lists(
    st.lists(u64s, min_size=2, max_size=2), min_size=16, max_size=16
)


@st.composite
def register_files(draw):
    from repro.machine.registers import Flags, RegisterFile

    regs = RegisterFile()
    regs.gpr = draw(st.lists(u64s, min_size=len(regs.gpr),
                             max_size=len(regs.gpr)))
    regs.xmm = draw(xmm_banks)
    regs.rip = draw(st.integers(min_value=0, max_value=2**40))
    regs.flags = Flags(*(draw(st.booleans()) for _ in range(5)))
    regs.mxcsr = draw(st.integers(min_value=0, max_value=(1 << 16) - 1))
    regs.fp_dirty = draw(lane_masks)
    regs.fp_live = draw(lane_masks)
    return regs


class TestRegisterSnapshotProperty:
    @given(register_files())
    @settings(max_examples=100, deadline=None)
    def test_snapshot_restore_round_trip(self, regs):
        """Every architectural field — including the lazy-FP dirty and
        live lane masks — survives snapshot() -> restore() intact."""
        from repro.machine.registers import RegisterFile

        snap = regs.snapshot()
        other = RegisterFile()
        other.restore(snap)
        assert other.gpr == regs.gpr
        assert other.xmm == regs.xmm
        assert other.rip == regs.rip
        assert other.flags == regs.flags
        assert other.mxcsr == regs.mxcsr
        assert other.fp_dirty == regs.fp_dirty
        assert other.fp_live == regs.fp_live

    @given(register_files())
    @settings(max_examples=50, deadline=None)
    def test_snapshot_is_isolated(self, regs):
        """Mutating the restored file must not write through into the
        snapshot (the frame-mode handler contract)."""
        snap = regs.snapshot()
        regs.write_gpr(0, (regs.gpr[0] + 1) & U64)
        regs.write_xmm_lane(5, 1, regs.xmm[5][1] ^ U64)
        regs.flags.zf = not regs.flags.zf
        regs.fp_dirty ^= 0b1
        assert snap["gpr"][0] == (regs.gpr[0] - 1) & U64
        assert snap["xmm"][5][1] == regs.xmm[5][1] ^ U64
        assert snap["flags"].zf != regs.flags.zf
        assert snap["fp_dirty"] == regs.fp_dirty ^ 0b1

    @given(register_files(), st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_fork_preserves_fp_metadata(self, regs, owned):
        """fork_process clones the caller's registers through
        snapshot()/restore(), so the lazy-FP dirty/live masks and the
        FP-unit ownership must come across bit-for-bit."""
        from repro.machine.process import Process, fork_process

        parent = Process(assemble("main:\n  hlt\n"))
        parent.main.regs.restore(regs.snapshot())
        if owned:
            parent.fp_owner = parent.main
        child = fork_process(parent)
        assert child.main.regs.fp_dirty == regs.fp_dirty
        assert child.main.regs.fp_live == regs.fp_live
        assert child.main.regs.xmm == regs.xmm
        assert (child.fp_owner is child.main) == owned


class TestMemoryProperty:
    @given(st.integers(min_value=0x600000, max_value=0x60FF00),
           st.binary(min_size=1, max_size=64))
    @settings(max_examples=150, deadline=None)
    def test_write_read_round_trip(self, addr, data):
        from repro.machine.memory import Memory

        mem = Memory()
        mem.write_bytes(addr, data)
        assert mem.read_bytes(addr, len(data)) == data

    @given(st.integers(min_value=0, max_value=U64))
    @settings(max_examples=150, deadline=None)
    def test_u64_round_trip_cross_page(self, value):
        from repro.machine.memory import Memory, PAGE_SIZE

        mem = Memory()
        addr = 0x600000 + PAGE_SIZE - 3  # straddles a page boundary
        mem.write_u64(addr, value)
        assert mem.read_u64(addr) == value
