"""Lazy FP state management across quanta (§3.1): ownership tracking,
dirty-summary elision, tier parity, the FPVM_LAZY_FP knob, and the
skip-switch leak seam."""

import pytest

from repro.conformance.scheduling import process_fingerprint
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.process import (
    Process,
    fork_process,
    lazy_fp_enabled_default,
)
from repro.workloads import build_program

DEADBEEF = 0xDEAD_BEEF_DEAD_BEEF


def _mixed_proc(lazy, *, uops=True, chain=None, trace=None, scale=40):
    proc = Process(build_program("mixed_mt", scale, threads=4, fp_threads=2),
                   uops=uops, chain=chain, trace=trace, lazy_fp=lazy)
    from repro.kernel.kernel import LinuxKernel

    proc.kernel = LinuxKernel()
    return proc


# ------------------------------------------------------------- the knob
def test_knob_defaults_on(monkeypatch):
    monkeypatch.delenv("FPVM_LAZY_FP", raising=False)
    assert lazy_fp_enabled_default() is True
    assert Process(assemble("main:\n  hlt\n")).lazy_fp is True


@pytest.mark.parametrize("value,expected", [
    ("0", False), ("false", False), ("off", False), ("no", False),
    ("1", True), ("on", True),
])
def test_knob_env_values(monkeypatch, value, expected):
    monkeypatch.setenv("FPVM_LAZY_FP", value)
    assert lazy_fp_enabled_default() is expected
    # an explicit constructor argument always wins over the environment
    assert Process(assemble("main:\n  hlt\n"), lazy_fp=True).lazy_fp is True


# ------------------------------------------- ownership, elision, masks
def test_integer_quanta_elide_saves():
    proc = _mixed_proc(lazy=True)
    proc.run()
    sched = proc.sched
    assert sched.fp_switches > 0, "FP workers never triggered a #NM switch"
    assert sched.fp_saves_elided > 0, "integer quanta should elide saves"
    assert sched.fp_eager_switches == 0
    assert proc.fp_owner in proc.threads


def test_eager_mode_spills_every_switch():
    proc = _mixed_proc(lazy=False)
    proc.run()
    sched = proc.sched
    assert sched.fp_eager_switches > 0
    assert sched.fp_switches == 0
    assert sched.fp_saves_elided == 0
    # eager pays a spill on (at least) every dispatch that changed
    # threads; with 5 runnable threads that dwarfs the lazy switch count
    lazy = _mixed_proc(lazy=True)
    lazy.run()
    assert sched.fp_eager_switches > lazy.sched.fp_switches


def test_lazy_and_eager_agree_on_guest_results():
    lazy, eager = _mixed_proc(lazy=True), _mixed_proc(lazy=False)
    lazy.run()
    eager.run()
    assert lazy.main.output == eager.main.output
    assert (sum(t.instruction_count for t in lazy.threads)
            == sum(t.instruction_count for t in eager.threads))


def test_switch_charges_stay_inside_work_cycles():
    """The #NM switch charges both ``cycles`` and ``work_cycles`` so the
    per-thread invariant ``cycles == work_cycles + ledger`` holds (bare
    process: ledger is empty, so the two counters must stay equal)."""
    proc = _mixed_proc(lazy=True)
    proc.run()
    assert proc.sched.fp_switches > 0
    for t in proc.threads:
        assert t.cycles == t.work_cycles


def test_interpreter_marks_exact_dirty_lanes():
    src = (
        ".data\n"
        "a: .double 1.5\n"
        "b: .double 2.25\n"
        ".text\n"
        "main:\n"
        "  movsd xmm3, [rip + a]\n"
        "  movsd xmm7, [rip + b]\n"
        "  addsd xmm3, xmm7\n"
        "  mov rax, 1\n"
        "  hlt\n"
    )
    cpu = CPU(assemble(src), uops=False)
    from repro.kernel.kernel import LinuxKernel

    cpu.kernel = LinuxKernel()
    assert cpu.regs.fp_dirty == 0 and cpu.fp_quantum_touched is False
    cpu.run()
    # movsd reg, [mem] zeroes the high lane too -> both lanes dirty.
    want = (0b11 << (2 * 3)) | (0b11 << (2 * 7))
    assert cpu.regs.fp_dirty == want
    assert cpu.fp_quantum_touched is True


def test_integer_only_code_never_touches():
    cpu = CPU(assemble("main:\n  mov rax, 5\n  add rax, rax\n  hlt\n"),
              uops=False)
    from repro.kernel.kernel import LinuxKernel

    cpu.kernel = LinuxKernel()
    cpu.run()
    assert cpu.regs.fp_dirty == 0
    assert cpu.fp_quantum_touched is False


@pytest.mark.parametrize("chain,trace", [(False, False), (True, False),
                                         (True, True)])
def test_batched_dirty_masks_match_stepwise(chain, trace):
    """The lowering-time per-superblock summaries must mark exactly the
    lanes the interpreter marks per instruction — per thread, at every
    quantum size."""
    for quantum in (1, 7, 64):
        ref = _mixed_proc(lazy=True, uops=False)
        got = _mixed_proc(lazy=True, uops=True, chain=chain, trace=trace)
        ref.run(quantum=quantum)
        got.run(quantum=quantum)
        assert ([(t.regs.fp_dirty, t.regs.fp_live) for t in ref.threads]
                == [(t.regs.fp_dirty, t.regs.fp_live) for t in got.threads])
        assert process_fingerprint(ref) == process_fingerprint(got)


@pytest.mark.parametrize("lazy", [True, False])
def test_batched_stepwise_parity_both_disciplines(lazy):
    ref = _mixed_proc(lazy=lazy, uops=False)
    got = _mixed_proc(lazy=lazy, uops=True, chain=True)
    ref.run(quantum=7)
    got.run(quantum=7)
    assert process_fingerprint(ref) == process_fingerprint(got)


# ------------------------------------------------------------- the seam
def test_skip_switch_seam_leaks_owner_bank():
    clean = _mixed_proc(lazy=True)
    clean.run()
    armed = _mixed_proc(lazy=True)
    armed.fp_skip_switch = True
    armed.run()
    # the seam must not change scheduling, so instruction counts agree;
    # whether output leaks depends on the program reading before writing
    assert (sum(t.instruction_count for t in armed.threads)
            == sum(t.instruction_count for t in clean.threads))
    assert armed.sched.fp_switches == 0, "armed seam still performed switches"


def test_leak_oracle_scenario_detects_the_seam():
    from repro.conformance.faults import run_scenario

    outcome = run_scenario("lazy_fp_leak")
    assert outcome.detected, outcome.detail
    assert outcome.recovered, outcome.detail


# ---------------------------------------------------------------- fork
def test_fork_propagates_fp_ownership_and_masks():
    parent = Process(assemble("main:\n  hlt\n"))
    parent.main.regs.fp_dirty = 0b1010
    parent.main.regs.fp_live = 0b0110
    parent.fp_owner = parent.main
    child = fork_process(parent)
    assert child.fp_owner is child.main
    assert child.main.regs.fp_dirty == 0b1010
    assert child.main.regs.fp_live == 0b0110
    assert child.lazy_fp == parent.lazy_fp


def test_fork_without_ownership_stays_unowned():
    parent = Process(assemble("main:\n  hlt\n"))
    assert parent.fp_owner is None
    child = fork_process(parent)
    assert child.fp_owner is None
