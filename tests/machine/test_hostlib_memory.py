"""Host library (simulated libc/libm) and memory-substrate tests."""

import math

import pytest

from repro.fpu import bits as B
from repro.kernel.kernel import LinuxKernel
from repro.kernel.signals import SignalContext
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import LIBM_FUNCTIONS, install_host_library, library_names
from repro.machine.memory import Memory, MemoryFault, PAGE_SIZE, PROT_READ, PROT_WRITE

f2b = B.float_to_bits


def run(src: str) -> CPU:
    prog = assemble(src)
    install_host_library(prog)
    cpu = CPU(prog)
    cpu.kernel = LinuxKernel()
    cpu.run()
    return cpu


class TestHostLibrary:
    def test_every_libm_function_registered(self):
        assert LIBM_FUNCTIONS <= library_names()

    def test_install_idempotent_symbols(self):
        prog = assemble("main:\n  hlt\n")
        added = install_host_library(prog)
        assert added["sin"] == prog.symbols["sin"]
        assert prog.is_host_addr(added["print_f64"])

    @pytest.mark.parametrize("fn,x", [
        ("sin", 0.7), ("cos", 0.7), ("tan", 0.4), ("atan", 2.0),
        ("asin", 0.5), ("acos", 0.5), ("exp", 1.3), ("log", 5.0),
        ("fabs", -2.5),
    ])
    def test_libm_matches_host_math(self, fn, x):
        cpu = run(
            f".data\nx: .double {x!r}\n.text\nmain:\n"
            f"  movsd xmm0, [rip + x]\n  call {fn}\n  hlt\n"
        )
        want = abs(x) if fn == "fabs" else getattr(math, fn)(x)
        assert B.bits_to_float(cpu.regs.xmm[0][0]) == want

    def test_atan2_and_pow_two_args(self):
        cpu = run(
            ".data\ny: .double 3.0\nx: .double 4.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + y]\n  movsd xmm1, [rip + x]\n"
            "  call atan2\n  hlt\n"
        )
        assert B.bits_to_float(cpu.regs.xmm[0][0]) == math.atan2(3.0, 4.0)

    def test_fmod_by_zero_nan(self):
        cpu = run(
            ".data\na: .double 5.0\nz: .double 0.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + a]\n  movsd xmm1, [rip + z]\n"
            "  call fmod\n  hlt\n"
        )
        assert B.is_nan(cpu.regs.xmm[0][0])

    def test_log_of_zero(self):
        cpu = run(
            ".data\nz: .double 0.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + z]\n  call log\n  hlt\n"
        )
        assert cpu.regs.xmm[0][0] == B.NEG_INF_BITS

    def test_sqrt_domain_error_nan(self):
        cpu = run(
            ".data\nx: .double -1.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + x]\n  call asin\n  hlt\n"
        )
        # asin(-1) is fine; use 2.0 for the domain error
        cpu = run(
            ".data\nx: .double 2.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + x]\n  call asin\n  hlt\n"
        )
        assert B.is_nan(cpu.regs.xmm[0][0])

    def test_sign_f64_bit_inspection(self):
        cpu = run(
            ".data\nx: .double -0.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + x]\n  call sign_f64\n  hlt\n"
        )
        assert cpu.regs.gpr[0] == 1  # rax: even -0.0 has the sign bit

    def test_print_inf(self):
        cpu = run(
            ".data\none: .double 1.0\nz: .double 0.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + one]\n  divsd xmm0, [rip + z]\n"
            "  call print_f64\n  hlt\n"
        )
        assert cpu.output == ["inf"]

    def test_print_pair_format(self):
        cpu = run(
            ".data\na: .double 1.25\nb: .double -2.5\n.text\nmain:\n"
            "  movsd xmm0, [rip + a]\n  movsd xmm1, [rip + b]\n"
            "  call print_f64_pair\n  hlt\n"
        )
        assert cpu.output == ["1.25 -2.5"]


class TestMemorySubstrate:
    def test_protection_enforced(self):
        mem = Memory()
        mem.map_page(0x5000, PROT_READ)
        with pytest.raises(MemoryFault, match="read-only"):
            mem.write_u64(0x5000, 1)

    def test_unreadable_page(self):
        mem = Memory()
        mem.map_page(0x5000, PROT_WRITE)
        with pytest.raises(MemoryFault, match="unreadable"):
            mem.read_u64(0x5000)

    def test_strict_mode_faults_on_unmapped(self):
        mem = Memory(auto_map=False)
        with pytest.raises(MemoryFault, match="unmapped"):
            mem.read_u64(0x9000)

    def test_writable_pages_excludes_readonly(self):
        mem = Memory()
        mem.map_page(0x1000, PROT_READ)
        mem.map_page(0x2000, PROT_READ | PROT_WRITE)
        assert 0x2000 in mem.writable_pages()
        assert 0x1000 not in mem.writable_pages()

    def test_protect_unmapped_fails(self):
        mem = Memory()
        with pytest.raises(MemoryFault, match="mprotect"):
            mem.protect(0x7000, PROT_READ)

    def test_cstring(self):
        mem = Memory()
        mem.write_bytes(0x3000, b"hello\x00junk")
        assert mem.read_cstring(0x3000) == "hello"

    def test_sized_uint_round_trip(self):
        mem = Memory()
        for size in (1, 2, 4, 8):
            value = (1 << (8 * size)) - 3
            mem.write_uint(0x4000, value, size)
            assert mem.read_uint(0x4000, size) == value & ((1 << (8 * size)) - 1)

    def test_page_count(self):
        mem = Memory()
        mem.write_u64(0x1000, 1)
        mem.write_u64(0x1000 + PAGE_SIZE, 1)
        assert mem.mapped_page_count() == 2


class TestSignalContextModes:
    def _cpu(self):
        return CPU(assemble("main:\n  hlt\n"))

    def test_frame_mode_defers(self):
        cpu = self._cpu()
        ctx = SignalContext(cpu, live=False)
        ctx.write_gpr(3, 99)
        ctx.write_xmm(2, f2b(1.5))
        ctx.rip = 0x1234
        assert cpu.regs.gpr[3] != 99
        ctx.apply()
        assert cpu.regs.gpr[3] == 99
        assert cpu.regs.xmm[2][0] == f2b(1.5)
        assert cpu.regs.rip == 0x1234

    def test_live_mode_immediate(self):
        cpu = self._cpu()
        ctx = SignalContext(cpu, live=True)
        ctx.write_gpr(3, 42)
        assert cpu.regs.gpr[3] == 42

    def test_mxcsr_round_trip(self):
        cpu = self._cpu()
        ctx = SignalContext(cpu, live=False)
        ctx.mxcsr = 0x1234
        assert cpu.regs.mxcsr != 0x1234
        ctx.apply()
        assert cpu.regs.mxcsr == 0x1234

    def test_flags_object_shared_in_frame(self):
        cpu = self._cpu()
        ctx = SignalContext(cpu, live=False)
        ctx.flags.zf = True
        assert not cpu.regs.flags.zf
        ctx.apply()
        assert cpu.regs.flags.zf
