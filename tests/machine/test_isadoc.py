"""ISA reference generator tests."""

from repro.core.emulator import DEFAULT_SUPPORTED
from repro.machine.isa import OPCODES
from repro.machine.isadoc import render_isa_reference, write_isa_reference


class TestISADoc:
    def test_every_mnemonic_documented(self):
        text = render_isa_reference()
        for mnemonic in OPCODES:
            assert f"`{mnemonic}`" in text, mnemonic

    def test_support_split_reported(self):
        text = render_isa_reference()
        assert "| `movhpd` | 2 | 1 | 1 | no |" in text
        assert "| `movsd` | 2 | 1 | 1 | yes |" in text

    def test_totals_line(self):
        text = render_isa_reference()
        supported = sum(1 for m in OPCODES if m in DEFAULT_SUPPORTED)
        assert f"{supported} emulator-supported" in text

    def test_write(self, tmp_path):
        path = write_isa_reference(str(tmp_path / "ISA.md"))
        assert (tmp_path / "ISA.md").read_text().startswith("# ISA reference")
