"""Batched superblock scheduling: `CPU.run_quantum` budget semantics,
the scheduler's quantum telemetry, and batched-vs-stepwise parity for
multi-threaded processes — bare and FPVM-attached."""

import pytest

from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library
from repro.machine.process import Process
from repro.workloads import build_program

QUANTA = (1, 7, 64)

#: three workers with staggered FP loop lengths: they halt in different
#: scheduler rounds, and main's reverse-order joins park and resume at
#: different times.
_MT_SRC = """
.data
counts: .quad 30, 60, 90
vals: .double 1.0, 1.5, 2.0
k: .double 0.125

.text
worker:
  mov rbx, counts
  mov rcx, [rbx + rdi*8]
  mov rbx, vals
  movsd xmm0, [rbx + rdi*8]
  movsd xmm1, [rip + k]
wloop:
  mulsd xmm0, xmm1
  addsd xmm0, xmm1
  dec rcx
  jne wloop
  mov rbx, vals
  movsd [rbx + rdi*8], xmm0
  ret

main:
  mov rdi, worker
  mov rsi, 0
  call thread_create
  mov rdi, worker
  mov rsi, 1
  call thread_create
  mov rdi, worker
  mov rsi, 2
  call thread_create
  mov rdi, 3
  call thread_join
  mov rdi, 2
  call thread_join
  mov rdi, 1
  call thread_join
  movsd xmm0, [rip + vals]
  call print_f64
  movsd xmm0, [rip + vals + 8]
  call print_f64
  movsd xmm0, [rip + vals + 16]
  call print_f64
  hlt
"""

#: a single-threaded FP loop for run_quantum unit tests.
_LOOP_SRC = """
.data
x: .double 1.0
k: .double 1.0009765625

.text
main:
  mov rcx, 50
  movsd xmm0, [rip + x]
  movsd xmm1, [rip + k]
lp:
  mulsd xmm0, xmm1
  dec rcx
  jne lp
  movsd [rip + x], xmm0
  hlt
"""


def _loop_cpu(uops: bool, chain: bool = False, trace: bool = False) -> CPU:
    cpu = CPU(assemble(_LOOP_SRC), uops=uops, chain=chain, trace=trace)
    cpu.kernel = LinuxKernel()
    if trace:
        # stabilize immediately so even small budgets exercise the
        # fused-trace budget accounting, not just plain chaining.
        cpu.trace_stabilize_threshold = 1
    return cpu


def _mt_process(uops: bool, config: FPVMConfig | None = None):
    program = assemble(_MT_SRC)
    install_host_library(program)
    proc = Process(program, uops=uops)
    kernel = LinuxKernel()
    vm = None
    if config is None:
        proc.kernel = kernel
    else:
        vm = FPVM(config).attach_process(proc, kernel)
    return proc, vm


def _fingerprint(proc: Process) -> dict:
    return {
        "output": tuple(proc.main.output),
        "threads": tuple(
            (t.tid, t.cycles, t.work_cycles, t.instruction_count,
             t.fp_trap_count, t.bp_trap_count)
            for t in proc.threads
        ),
        "join_log": tuple(proc.join_log),
    }


# ------------------------------------------------------- run_quantum
class TestRunQuantum:
    @pytest.mark.parametrize("uops", [False, True])
    def test_zero_budget_is_a_noop(self, uops):
        cpu = _loop_cpu(uops)
        assert cpu.run_quantum(0) == 0
        assert cpu.instruction_count == 0

    @pytest.mark.parametrize("uops", [False, True])
    def test_budget_exhaustion_stops_midway(self, uops):
        cpu = _loop_cpu(uops)
        assert cpu.run_quantum(5) == 5
        assert not cpu.halted
        assert cpu.instruction_count == 5

    @pytest.mark.parametrize("uops", [False, True])
    def test_runs_to_halt_within_budget(self, uops):
        cpu = _loop_cpu(uops)
        taken = cpu.run_quantum(10_000)
        assert cpu.halted
        assert taken < 10_000
        reference = _loop_cpu(False)
        reference.run()
        assert taken == reference.instruction_count

    @pytest.mark.parametrize("budget", [1, 2, 3, 7, 64])
    @pytest.mark.parametrize("chain,trace",
                             [(False, False), (True, False), (True, True)],
                             ids=["uops", "chained", "traced"])
    def test_budget_never_exceeded(self, budget, chain, trace):
        """Superblock bodies — and fused trace closures — must not run
        past the budget edge: the engine falls back to single-stepping
        (or side-exits the trace) instead.  The whole ledger must also
        match the stepwise seed: exact budget accounting is worthless
        if the batched run books different cycles or traps."""
        cpu = _loop_cpu(True, chain=chain, trace=trace)
        total = 0
        while not cpu.halted:
            taken = cpu.run_quantum(budget)
            assert 0 < taken <= budget
            total += taken
        reference = _loop_cpu(False)
        reference.run()
        assert total == reference.instruction_count
        # trap/cycle ledger parity with the stepwise seed.
        assert cpu.instruction_count == reference.instruction_count
        assert cpu.cycles == reference.cycles
        assert cpu.work_cycles == reference.work_cycles
        assert cpu.fp_trap_count == reference.fp_trap_count
        assert cpu.bp_trap_count == reference.bp_trap_count

    def test_halted_cpu_returns_zero(self):
        cpu = _loop_cpu(True)
        cpu.run_quantum(10_000)
        assert cpu.halted
        assert cpu.run_quantum(64) == 0

    def test_blocked_cpu_returns_zero(self):
        cpu = _loop_cpu(True)
        cpu.blocked = True
        assert cpu.run_quantum(64) == 0
        assert cpu.instruction_count == 0

    def test_quantum_exit_reasons_recorded(self):
        cpu = _loop_cpu(True)
        cpu.run_quantum(7)
        cpu.run_quantum(10_000)
        stats = cpu.uop_stats
        assert stats.quantum_dispatches == 2
        assert stats.quantum_exits["budget"] == 1
        assert stats.quantum_exits["halted"] == 1


# -------------------------------------------------- scheduler telemetry
class TestSchedulerStats:
    def test_quanta_recorded_per_thread(self):
        proc, _ = _mt_process(uops=True)
        proc.run(quantum=7)
        sched = proc.sched
        assert sched.quantum == 7
        assert sched.dispatches > 0
        assert sched.steps == sum(s for _, s in sched.per_thread.values())
        assert set(sched.per_thread) == {0, 1, 2, 3}
        assert 0 < sched.quantum_efficiency <= 7
        doc = sched.as_dict()
        assert doc["dispatches"] == sched.dispatches
        assert set(doc["per_thread"]) == {0, 1, 2, 3}

    def test_efficiency_grows_with_quantum(self):
        """Larger quanta amortize more work per dispatch — the whole
        point of batched superblock scheduling."""
        effs = {}
        for quantum in (1, 64):
            proc, _ = _mt_process(uops=True)
            proc.run(quantum=quantum)
            effs[quantum] = proc.sched.quantum_efficiency
        assert effs[1] <= 1.0
        assert effs[64] > 2 * effs[1]


# ------------------------------------------------------ batched parity
class TestBatchedParity:
    @pytest.mark.parametrize("quantum", QUANTA)
    def test_native_parity(self, quantum):
        runs = {}
        for uops in (False, True):
            proc, _ = _mt_process(uops=uops)
            proc.run(quantum=quantum)
            runs[uops] = _fingerprint(proc)
        assert runs[False] == runs[True]

    @pytest.mark.parametrize("quantum", QUANTA)
    @pytest.mark.parametrize("factory", [FPVMConfig.seq, FPVMConfig.short,
                                         FPVMConfig.seq_short],
                             ids=["seq", "short", "seq_short"])
    def test_attached_parity(self, quantum, factory):
        """FPVM-attached MT runs: every acceleration mode, batched vs
        stepwise, per-thread ledgers and join order bit-identical."""
        runs = {}
        for uops in (False, True):
            proc, vm = _mt_process(uops=uops, config=factory(uops=uops))
            proc.run(quantum=quantum)
            runs[uops] = _fingerprint(proc)
            assert vm.telemetry.traps > 0
        assert runs[False] == runs[True]

    def test_lorenz_mt_parity(self):
        runs = {}
        for uops in (False, True):
            proc = Process(build_program("lorenz_mt", scale=30, threads=4),
                           uops=uops)
            proc.kernel = LinuxKernel()
            proc.run()
            runs[uops] = _fingerprint(proc)
        assert runs[False] == runs[True]
        assert len(runs[True]["output"]) == 12  # x, y, z per shard


# --------------------------------------------------- FPVM MT semantics
class TestAttachedThreads:
    def test_on_thread_spawn_propagates_uops(self):
        for uops in (False, True):
            proc, _ = _mt_process(uops=uops,
                                  config=FPVMConfig.seq_short(uops=uops))
            proc.run(quantum=7)
            assert all(t.uops_enabled == uops for t in proc.threads)

    def test_spawned_threads_run_superblocks(self):
        proc, _ = _mt_process(uops=True, config=FPVMConfig.seq_short(uops=True))
        proc.run(quantum=64)
        worker_stats = [t.uop_stats for t in proc.threads[1:]]
        assert all(s is not None for s in worker_stats)
        assert any(s.block_runs > 0 for s in worker_stats)

    def test_join_while_trapping(self):
        """Main parks in thread_join while the awaited worker is still
        mid-trap-storm; the batched scheduler must keep delivering the
        worker's traps and wake main with bit-identical state."""
        proc, vm = _mt_process(uops=True, config=FPVMConfig.seq(uops=True))
        proc.run(quantum=7)
        assert proc.join_log  # at least one join actually parked
        assert vm.telemetry.traps > 0
        assert all(t.fp_trap_count > 0 for t in proc.threads[1:])
        native, _ = _mt_process(uops=False)
        native.run(quantum=7)
        assert tuple(proc.main.output) == tuple(native.main.output)
