"""The fused trace-JIT tier: stabilization mechanics, side-exit
correctness (budget edge, MXCSR guard, SLOW mid-trace), patch
invalidation — including cross-thread — and the demotion /
re-stabilization cycle.

Every behavioural test carries a bit-exact parity check against the
seed single-step interpreter driven through the *same* schedule of
quanta and external mutations, so the trace tier is never allowed to
buy speed with semantics."""

import pytest

from repro.kernel.kernel import LinuxKernel
from repro.machine import tracejit
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library
from repro.machine.process import Process

#: 5 steps per lap (4 body uops + jne tail); every FP op is inlineable,
#: so the generated trace carries the MXCSR entry guard.
LOOP_SRC = """
.data
k: .double 1.0001
n: .quad {n}
.text
main:
  mov rcx, [rip + n]
  movsd xmm0, [rip + k]
  movsd xmm1, [rip + k]
top:
  mulsd xmm0, xmm1
  addsd xmm0, xmm1
  subsd xmm0, xmm1
  dec rcx
  jne top
  call print_f64
  hlt
"""

#: ``cvtsi2sd`` has no generated twin: it rides in the trace as its
#: bound block closure with the SLOW check — the mid-trace slow-exit
#: path.  (No inline FP op, so the trace has no MXCSR entry guard.)
CVT_SRC = """
.data
n: .quad {n}
.text
main:
  mov rcx, [rip + n]
top:
  dec rcx
  cvtsi2sd xmm1, rcx
  jne top
  hlt
"""

#: two-thread worker loop over disjoint slots of a shared array — the
#: cross-thread invalidation stage (4 steps per lap).
THREADED_SRC = """
.data
k: .double 1.125
vals: .double 1.0, 2.0
n: .quad 60
.text
worker:
  mov rcx, [rip + n]
  mov rbx, vals
  movsd xmm0, [rbx + rdi*8]
  movsd xmm1, [rip + k]
wtop:
  mulsd xmm0, xmm1
  subsd xmm0, xmm1
  dec rcx
  jne wtop
  movsd [rbx + rdi*8], xmm0
  ret

main:
  hlt
"""

#: clears one exception-mask bit: the FP fast-path check fails, but no
#: actual FP exception fires for these operand values, so the seed
#: retires every op without trapping.
UNMASK_BIT = 0x80


def _program(src: str, n: int = 150):
    program = assemble(src.format(n=n))
    install_host_library(program)
    return program


def _cpu(program, uops_on=True, chain=True, trace=True, threshold=None):
    cpu = CPU(program, uops=uops_on, chain=chain, trace=trace)
    cpu.kernel = LinuxKernel()
    if threshold is not None:
        cpu.trace_stabilize_threshold = threshold
    return cpu


def _fingerprint(cpu):
    regs = cpu.regs
    return {
        "rip": regs.rip,
        "gpr": tuple(regs.gpr),
        "xmm": tuple(tuple(lanes) for lanes in regs.xmm),
        "flags": regs.flags.pack(),
        "mxcsr": regs.mxcsr,
        "cycles": cpu.cycles,
        "instructions": cpu.instruction_count,
        "fp_traps": cpu.fp_trap_count,
        "output": tuple(cpu.output),
        "halted": cpu.halted,
    }


def _drive(cpu, schedule, quantum=64):
    """Run ``cpu`` through ``schedule`` — a list of ``(steps, mutate)``
    phases: retire exactly ``steps``, then apply ``mutate(cpu)`` (or
    nothing) — and then run to halt.  Identical schedules on a traced
    and a seed CPU must produce identical fingerprints."""
    for steps, mutate in schedule:
        left = steps
        while left and not cpu.halted:
            left -= cpu.run_quantum(min(quantum, left))
        if mutate is not None:
            mutate(cpu)
    while not cpu.halted:
        cpu.run_quantum(quantum)


def _unmask(cpu):
    cpu.regs.mxcsr &= ~UNMASK_BIT


def _remask(cpu):
    cpu.regs.mxcsr |= UNMASK_BIT


class TestStabilization:
    def test_hot_loop_fuses_into_one_trace(self):
        cpu = _cpu(_program(LOOP_SRC))
        cpu.run()
        st = cpu.uop_stats.as_dict()
        assert st["trace_compiles"] == 1
        assert st["trace_recompiles"] == 0
        assert st["trace_runs"] >= 1
        # nearly every lap of the 150-iteration loop retires fused.
        assert st["trace_steps"] > 500
        assert st["trace_lengths"] == {1: 1}      # a one-block cycle
        assert st["trace_exits"].get("exit", 0) >= 1
        engine = cpu._uop_engine
        assert engine.cache.cached_traces == 1
        tr = next(iter(engine._traces.values()))
        assert tr.n_steps == 5 and tr.iter_instrs == 5

    def test_threshold_attribute_gates_compilation(self):
        # a threshold beyond the loop's lap count never stabilizes...
        cold = _cpu(_program(LOOP_SRC), threshold=10_000)
        cold.run()
        assert cold.uop_stats.trace_compiles == 0
        # ...while threshold 1 fuses on the first observed cycle.
        hot = _cpu(_program(LOOP_SRC), threshold=1)
        hot.run()
        assert hot.uop_stats.trace_compiles == 1

    def test_cross_run_stabilization_under_small_quanta(self):
        """A quantum smaller than threshold x lap-length cuts every
        chain run before in-run stabilization; accumulated cross-run
        heat must still reach the threshold and fuse."""
        cpu = _cpu(_program(LOOP_SRC), threshold=3)
        while not cpu.halted:
            cpu.run_quantum(7)                    # ~1 lap per dispatch
        assert cpu.uop_stats.trace_compiles == 1

    def test_trace_requires_chain_tier(self):
        cpu = _cpu(_program(LOOP_SRC), chain=False, trace=True)
        cpu.run()
        assert cpu._uop_engine.trace_enabled is False
        assert cpu.uop_stats.trace_compiles == 0

    def test_env_knobs(self, monkeypatch):
        prog = _program(LOOP_SRC)
        monkeypatch.setenv("FPVM_TRACEJIT", "0")
        assert CPU(prog, uops=True).trace_enabled is False
        monkeypatch.setenv("FPVM_TRACEJIT", "1")
        assert CPU(prog, uops=True).trace_enabled is True
        assert CPU(prog, uops=True, trace=False).trace_enabled is False
        monkeypatch.setenv("FPVM_TRACE_THRESHOLD", "17")
        assert tracejit.stabilize_threshold_default() == 17
        monkeypatch.setenv("FPVM_TRACE_THRESHOLD", "junk")
        assert tracejit.stabilize_threshold_default() == 3


class TestParity:
    def test_traced_run_identical_to_stepwise(self):
        traced = _cpu(_program(LOOP_SRC))
        traced.run()
        assert traced.uop_stats.trace_steps > 0   # the tier actually ran
        seed = _cpu(_program(LOOP_SRC), uops_on=False, chain=False,
                    trace=False)
        seed.run()
        assert _fingerprint(traced) == _fingerprint(seed)

    @pytest.mark.parametrize("quantum", [1, 3, 7, 64])
    def test_quantum_driven_parity(self, quantum):
        traced = _cpu(_program(LOOP_SRC))
        while not traced.halted:
            traced.run_quantum(quantum)
        seed = _cpu(_program(LOOP_SRC), uops_on=False, chain=False,
                    trace=False)
        seed.run()
        assert _fingerprint(traced) == _fingerprint(seed)

    @pytest.mark.parametrize("budget", [*range(1, 14), 29, 64, 257])
    def test_single_quantum_trajectory(self, budget):
        """Exact step-parity at every budget, including budgets that
        land mid-lap (partial-trace retirement at the quantum edge)."""
        traced = _cpu(_program(LOOP_SRC), threshold=1)
        taken = traced.run_quantum(budget)
        assert taken == budget
        seed = _cpu(_program(LOOP_SRC), uops_on=False, chain=False,
                    trace=False)
        for _ in range(budget):
            seed.step()
        assert _fingerprint(traced) == _fingerprint(seed)


class TestSideExits:
    def test_budget_edge(self):
        """A 7-step quantum fits one 5-step lap: every trace dispatch
        ends on the budget edge, never a clean exit, and the partial
        remainder retires through the tiers below."""
        cpu = _cpu(_program(LOOP_SRC), threshold=1)
        while not cpu.halted:
            cpu.run_quantum(7)
        st = cpu.uop_stats.as_dict()
        assert st["trace_exits"].get("budget", 0) > 0
        seed = _cpu(_program(LOOP_SRC), uops_on=False, chain=False,
                    trace=False)
        seed.run()
        assert _fingerprint(cpu) == _fingerprint(seed)

    def test_mxcsr_entry_guard(self):
        """Unmasking an exception bit mid-run flips the FP fast-path
        check: the compiled trace must refuse to enter (exit ``mxcsr``)
        and the lap must retire through the SLOW protocol instead."""
        schedule = [(320, _unmask)]
        traced = _cpu(_program(LOOP_SRC, n=400))
        _drive(traced, schedule)
        st = traced.uop_stats.as_dict()
        assert st["trace_compiles"] >= 1
        assert st["trace_exits"].get("mxcsr", 0) >= 1
        assert st["slow_fallbacks"] > 0           # the laps still retired

        seed = _cpu(_program(LOOP_SRC, n=400), uops_on=False, chain=False,
                    trace=False)
        _drive(seed, schedule)
        assert _fingerprint(traced) == _fingerprint(seed)

    def test_slow_mid_trace(self):
        """``cvtsi2sd`` rides in the trace as a bound closure.  When it
        returns SLOW the trace must exit at that exact step — the lap's
        retired prefix settled, the faulting step NOT retired — and the
        engine re-executes it through the seed path."""
        schedule = [(100, _unmask)]
        traced = _cpu(_program(CVT_SRC, n=400))
        _drive(traced, schedule)
        st = traced.uop_stats.as_dict()
        assert st["trace_compiles"] >= 1
        assert st["trace_exits"].get("slow", 0) >= 1
        assert st["trace_exits"].get("mxcsr", 0) == 0   # no entry guard here
        assert st["slow_fallbacks"] > 0

        seed = _cpu(_program(CVT_SRC, n=400), uops_on=False, chain=False,
                    trace=False)
        _drive(seed, schedule)
        assert _fingerprint(traced) == _fingerprint(seed)


class _Trampoline:
    def __init__(self):
        self.calls = 0

    def __call__(self, cpu, addr):
        self.calls += 1


class TestPatchInvalidation:
    def test_patch_epoch_bump_drops_trace(self):
        """A patch landing inside the fused loop must kill the trace
        before the next dispatch: the patch epoch bump flushes the
        shared cache, traces included."""
        prog = _program(LOOP_SRC, n=400)
        tramp = _Trampoline()
        body_addr = prog.symbols["top"]

        def patch(cpu):
            prog.patch_call(body_addr, tramp)

        traced = _cpu(prog)
        _drive(traced, [(320, patch)])
        assert traced.uop_stats.trace_compiles >= 1
        assert tramp.calls > 0, "stale trace ran through the patch site"
        engine = traced._uop_engine
        assert body_addr not in engine._traces
        assert engine.cache.dropped_traces >= 1

        # parity under the same patch schedule (the magic-call hook has
        # host-visible cost, so the seed twin carries the same patch).
        seed_prog = _program(LOOP_SRC, n=400)
        seed_tramp = _Trampoline()

        def seed_patch(cpu):
            seed_prog.patch_call(seed_prog.symbols["top"], seed_tramp)

        seed = _cpu(seed_prog, uops_on=False, chain=False, trace=False)
        _drive(seed, [(320, seed_patch)])
        assert seed_tramp.calls == tramp.calls
        assert _fingerprint(traced) == _fingerprint(seed)

    def test_cross_thread_patch_invalidates_executing_trace(self):
        """Thread B fuses and is executing the worker-loop trace; a
        patch lands from outside (as thread A's promotion path would).
        B's very next dispatch must drop the trace and honor the patch
        — the shared cache's epoch mirror is the only wall between a
        cross-thread patch and a stale compiled trace."""
        proc = Process(_program(THREADED_SRC), uops=True, chain=True,
                       trace=True)
        proc.kernel = LinuxKernel()
        prog = proc.main.program
        tid_a = proc.spawn(prog.symbols["worker"], 0)
        tid_b = proc.spawn(prog.symbols["worker"], 1)
        thread_a, thread_b = proc.threads[tid_a], proc.threads[tid_b]

        # B stabilizes and runs the fused loop mid-way through its work.
        thread_b.run_quantum(64)
        st_b = thread_b.uop_stats
        assert st_b.trace_compiles >= 1
        assert prog.symbols["wtop"] in thread_b._engine()._traces

        # the patch lands between B's dispatches (thread A's turn).
        tramp = _Trampoline()
        prog.patch_call(prog.symbols["wtop"], tramp)
        thread_a.run_quantum(10)

        thread_b.run_quantum(60)
        assert tramp.calls > 0, (
            "thread B executed a stale fused trace through thread A's "
            "patch site")
        assert prog.symbols["wtop"] not in thread_b._engine()._traces
        assert proc.sb_cache.dropped_traces >= 1


class TestDemotionCycle:
    def test_demotion_and_restabilization(self):
        """Sustained bad exits tear the trace down; once conditions
        clear, the loop re-stabilizes against a doubled threshold and
        recompiles — and the whole ride stays bit-identical to seed."""
        schedule = [(320, _unmask), (640, _remask)]
        traced = _cpu(_program(LOOP_SRC, n=4000), threshold=3)
        _drive(traced, schedule)
        st = traced.uop_stats.as_dict()
        assert st["trace_compiles"] >= 2          # original + recompile
        assert st["trace_demotions"] >= 1
        assert st["trace_recompiles"] >= 1
        engine = traced._uop_engine
        assert engine._trace_backoff.get(
            traced.program.symbols["top"], 0) >= 1

        seed = _cpu(_program(LOOP_SRC, n=4000), uops_on=False, chain=False,
                    trace=False)
        _drive(seed, schedule)
        assert _fingerprint(traced) == _fingerprint(seed)

    def test_uncompilable_cycle_backs_off_permanently(self):
        """A cycle whose shape the code generator rejects must not be
        re-proposed every lap: the root is backed off to the cap."""
        engine_cls_src = CVT_SRC  # any loop; we force the reject below
        prog = _program(engine_cls_src, n=200)
        cpu = _cpu(prog, threshold=1)

        def reject(cpu_arg, blocks):
            return None

        orig = tracejit.compile_trace
        tracejit.compile_trace = reject
        try:
            cpu.run()
        finally:
            tracejit.compile_trace = orig
        assert cpu.uop_stats.trace_compiles == 0
        engine = cpu._uop_engine
        assert engine._trace_backoff.get(
            prog.symbols["top"]) == tracejit.BACKOFF_CAP


class TestCodeCacheLRU:
    """The bounded source->code LRU behind ``_compile_source``: cap
    enforcement via ``FPVM_TRACE_CACHE_CAP``, hit/miss/eviction
    counters, and their surfacing through ``UopStats``."""

    @pytest.fixture(autouse=True)
    def _isolated_cache(self):
        saved = dict(tracejit._CODE_CACHE)
        tracejit._CODE_CACHE.clear()
        yield
        tracejit._CODE_CACHE.clear()
        tracejit._CODE_CACHE.update(saved)

    @staticmethod
    def _stats_delta():
        return (tracejit.CODE_CACHE_HITS, tracejit.CODE_CACHE_MISSES,
                tracejit.CODE_CACHE_EVICTIONS)

    def test_identical_source_hits(self):
        src = "x = 1\n"
        h0, m0, _ = self._stats_delta()
        c1 = tracejit._compile_source(src, 0x1000)
        c2 = tracejit._compile_source(src, 0x1000)
        h1, m1, _ = self._stats_delta()
        assert c1 is c2
        assert (h1 - h0, m1 - m0) == (1, 1)

    def test_cap_evicts_lru_first(self, monkeypatch):
        monkeypatch.setenv("FPVM_TRACE_CACHE_CAP", "2")
        assert tracejit.code_cache_cap() == 2
        e0 = tracejit.CODE_CACHE_EVICTIONS
        tracejit._compile_source("a = 1\n", 0)
        tracejit._compile_source("b = 1\n", 0)
        # touch 'a' so 'b' becomes least-recently-used
        tracejit._compile_source("a = 1\n", 0)
        tracejit._compile_source("c = 1\n", 0)
        assert tracejit.CODE_CACHE_EVICTIONS - e0 == 1
        assert "a = 1\n" in tracejit._CODE_CACHE
        assert "b = 1\n" not in tracejit._CODE_CACHE
        assert len(tracejit._CODE_CACHE) == 2

    def test_cap_floor_and_bad_values(self, monkeypatch):
        monkeypatch.setenv("FPVM_TRACE_CACHE_CAP", "0")
        assert tracejit.code_cache_cap() == 1
        monkeypatch.setenv("FPVM_TRACE_CACHE_CAP", "nonsense")
        assert tracejit.code_cache_cap() == 256

    def test_stats_shape(self):
        stats = tracejit.code_cache_stats()
        assert set(stats) == {"size", "cap", "hits", "misses", "evictions"}

    def test_uop_stats_surface_code_cache_counters(self):
        """A second CPU compiling the same trace source must record the
        reuse in its own UopStats (the per-worker fleet telemetry)."""
        prog = _program(LOOP_SRC, n=200)
        first = _cpu(prog, threshold=1)
        first.run()
        assert first.uop_stats.trace_compiles > 0
        assert first.uop_stats.trace_code_hits == 0
        second = _cpu(prog, threshold=1)
        second.run()
        assert second.uop_stats.trace_code_hits > 0
        assert "trace_code_hits" in second.uop_stats.as_dict()
        assert "trace_code_evictions" in second.uop_stats.as_dict()

    def test_eviction_pressure_surfaces_in_uop_stats(self, monkeypatch):
        """With a cap of 1, compiling two distinct traces back-to-back
        must record an eviction against the engine that triggered it."""
        monkeypatch.setenv("FPVM_TRACE_CACHE_CAP", "1")
        prog_a = _program(LOOP_SRC, n=200)
        prog_b = _program(CVT_SRC, n=200)
        cpu_a = _cpu(prog_a, threshold=1)
        cpu_a.run()
        cpu_b = _cpu(prog_b, threshold=1)
        cpu_b.run()
        assert cpu_b.uop_stats.trace_code_evictions > 0
        assert len(tracejit._CODE_CACHE) == 1
