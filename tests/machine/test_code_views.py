"""Shadow code views: the split FETCH/DATA views of guest text, the
memory binding that keeps patches invisible to guest loads, per-site
cache invalidation, and the suppress-patch consumption fix."""

import pytest

from repro.conformance.generators import fuzz_program
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.decoder import decode_at
from repro.machine.program import (
    TEXT_BASE,
    PatchKind,
    ViewKind,
    shadow_view_enabled,
)
from repro.workloads import build_program


class _Tramp:
    def __init__(self):
        self.calls = 0

    def __call__(self, cpu, addr):
        self.calls += 1


class TestCodeView:
    def test_views_disagree_only_at_patched_sites(self):
        prog = fuzz_program(9)
        addr = prog.instructions[0].addr
        assert prog.fetch_view.kind is ViewKind.FETCH
        assert prog.data_view.kind is ViewKind.DATA
        assert prog.fetch_view.text_bytes() == prog.text
        prog.patch_int3(addr)
        fetch = prog.fetch_view.text_bytes()
        data = prog.data_view.text_bytes()
        assert data == prog.text
        off = addr - TEXT_BASE
        assert fetch[off] == 0xCC
        assert fetch[:off] == prog.text[:off]
        assert fetch[off + 1:] == prog.text[off + 1:]

    def test_raw_bytes_identical_across_views(self):
        """Patches are pre-hook metadata, not byte splices: decode
        reads pristine raw bytes through either view."""
        prog = fuzz_program(9)
        addr = prog.instructions[0].addr
        prog.patch_call(addr, _Tramp())
        assert (prog.fetch_view.raw_bytes_at(addr)
                == prog.data_view.raw_bytes_at(addr))
        assert prog.fetch_view.patch_at(addr).kind is PatchKind.MAGIC_CALL
        assert prog.data_view.patch_at(addr) is None
        for view in (prog.fetch_view, prog.data_view):
            assert decode_at(view, addr).raw == prog.by_addr[addr].raw

    def test_generation_tracking(self):
        prog = fuzz_program(9)
        a0 = prog.instructions[0].addr
        a1 = prog.instructions[1].addr
        assert prog.fetch_view.generation_at(a0) == 0
        prog.patch_int3(a0)
        prog.unpatch(a0)
        prog.patch_int3(a0)
        assert prog.fetch_view.generation_at(a0) == 3
        assert prog.fetch_view.generation_at(a1) == 0
        assert prog.data_view.generation_at(a0) == 0
        assert prog.patch_seq == 3
        assert prog.patch_epoch == prog.patch_seq  # compat property

    def test_copy_gets_independent_patch_state(self):
        prog = fuzz_program(9)
        prog.patch_int3(prog.instructions[0].addr)
        clone = prog.copy()
        assert clone.patch_seq == prog.patch_seq
        assert clone.patch_listeners == []
        clone.clear_patches()
        assert prog.patches                     # parent untouched
        assert clone.patch_seq == prog.patch_seq + 1
        assert clone.fetch_view.patches is clone.patches

    def test_env_knob(self, monkeypatch):
        for value, expect in (("0", False), ("false", False),
                              ("off", False), ("no", False),
                              ("1", True), ("", True), ("yes", True)):
            monkeypatch.setenv("FPVM_SHADOW_VIEW", value)
            assert shadow_view_enabled() is expect
        monkeypatch.delenv("FPVM_SHADOW_VIEW")
        assert shadow_view_enabled() is True


class TestShadowViewMemory:
    def test_guest_memory_pristine_despite_patch(self):
        prog = fuzz_program(9)
        prog.patch_int3(prog.instructions[0].addr)
        cpu = CPU(prog)
        assert (bytes(cpu.mem.read_bytes(TEXT_BASE, len(prog.text)))
                == bytes(prog.text))

    def test_patch_after_load_stays_invisible(self):
        prog = fuzz_program(9)
        cpu = CPU(prog)
        addr = prog.instructions[0].addr
        prog.patch_int3(addr)
        assert cpu.mem.read_bytes(addr, 1)[0] == prog.text[addr - TEXT_BASE]

    def test_escape_hatch_exposes_markers(self, monkeypatch):
        monkeypatch.setenv("FPVM_SHADOW_VIEW", "0")
        prog = fuzz_program(9)
        a0 = prog.instructions[0].addr
        a1 = prog.instructions[1].addr
        prog.patch_int3(a0)
        cpu = CPU(prog)
        assert cpu.mem.read_bytes(a0, 1)[0] == 0xCC
        # eager push: patches applied after load land in memory too
        prog.patch_call(a1, _Tramp())
        assert cpu.mem.read_bytes(a1, 1)[0] == 0xE8
        # ... and unpatching restores the original byte
        prog.unpatch(a0)
        assert cpu.mem.read_bytes(a0, 1)[0] == prog.text[a0 - TEXT_BASE]


_STRAIGHT_SRC = """
.text
main:
  mov rax, 1
  mov rbx, 2
  mov rcx, 3
  hlt
"""


class TestSuppressPatchConsumption:
    """The satellite-1 regression: ``_suppress_patch_at`` must be
    consumed by the very next dispatch, whatever RIP it names."""

    def test_lingering_suppress_does_not_mask_later_patch(self):
        prog = assemble(_STRAIGHT_SRC)
        cpu = CPU(prog, uops=False)
        cpu.kernel = LinuxKernel()
        instrs = prog.instructions
        site = instrs[2].addr
        tramp = _Tramp()
        prog.patch_call(site, tramp)
        # A stale suppression for `site` left over while RIP is still
        # at main: the first dispatch (at a different address) must
        # clear it, so the patch fires when execution reaches `site`.
        cpu._suppress_patch_at = site
        cpu.step()
        assert cpu._suppress_patch_at is None
        cpu.step()
        cpu.step()
        assert tramp.calls == 1

    def test_legitimate_suppress_skips_exactly_once(self):
        prog = assemble(_STRAIGHT_SRC)
        cpu = CPU(prog, uops=False)
        cpu.kernel = LinuxKernel()
        site = prog.instructions[0].addr
        tramp = _Tramp()
        prog.patch_call(site, tramp)
        cpu.resume_at(site, suppress_patch=True)
        cpu.step()                    # executes `site` with no pre-hook
        assert tramp.calls == 0
        assert cpu._suppress_patch_at is None


_COLD_REGION_SRC = """
.data
k: .double 1.5
n: .quad 40
.text
main:
  mov rcx, [rip + n]
  movsd xmm0, [rip + k]
  movsd xmm1, [rip + k]
top:
  mulsd xmm0, xmm1
  addsd xmm0, xmm1
  dec rcx
  jne top
  hlt
cold:
  mov rax, 7
  hlt
"""


class TestPerSiteInvalidation:
    def _warm_cpu(self):
        prog = build_program("lorenz", 30)
        cpu = CPU(prog, uops=True)
        cpu.kernel = LinuxKernel()
        cpu.run()
        return prog, cpu, cpu._sb_cache

    def test_noop_unpatch_and_clear_do_not_invalidate(self):
        """Satellite 2: no-op patch operations are not patch events and
        must leave every cached artifact alone."""
        prog, cpu, cache = self._warm_cpu()
        blocks = cache.cached_blocks
        assert blocks > 0
        seq0, inv0 = prog.patch_seq, cache.invalidations
        prog.unpatch(prog.entry)          # nothing patched there
        prog.clear_patches()              # no patches at all
        assert prog.patch_seq == seq0
        assert cache.sync(prog) is False
        assert cache.cached_blocks == blocks
        assert cache.invalidations == inv0
        assert cache.invalidated_blocks == 0

    def test_unrelated_blocks_survive_patch(self):
        prog, cpu, cache = self._warm_cpu()
        view = cache.views[cpu._sb_view_key]
        nblocks = len(view)
        assert nblocks >= 2
        target = next(b.entry for b in view.values() if b.end > b.entry)
        prog.patch_call(target, _Tramp())
        assert cache.sync(prog) is True
        assert target not in view
        assert cache.invalidations == 1
        assert cache.invalidated_blocks >= 1
        assert cache.survived_blocks > 0
        assert len(view) >= nblocks - cache.invalidated_blocks

    def test_patch_outside_cached_ranges_drops_nothing(self):
        prog = assemble(_COLD_REGION_SRC)
        cpu = CPU(prog, uops=True)
        cpu.kernel = LinuxKernel()
        cpu.run()
        cache = cpu._sb_cache
        view = cache.views[cpu._sb_view_key]
        assert view
        site = prog.symbols["cold"]
        covered = [(b.entry, b.end) for b in view.values()]
        assert not any(lo <= site < hi for lo, hi in covered)
        nblocks = len(view)
        prog.patch_call(site, _Tramp())
        # a sync runs, but nothing covers the site: no invalidation.
        cache.sync(prog)
        assert cache.invalidations == 0
        assert cache.invalidated_blocks == 0
        assert len(view) == nblocks
        assert cache.epoch == prog.patch_seq
