"""CPU interpreter tests: integer, FP, control flow, host calls, traps."""

import math
import struct

import pytest

from repro.fpu import bits as B
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU, MachineError, RETURN_SENTINEL, Trap, TrapKind
from repro.machine.hostlib import install_host_library
from repro.machine.program import STACK_TOP
from repro.machine.registers import MXCSR_FPVM

f2b = B.float_to_bits


def run(source: str, kernel=None, max_steps=100_000) -> CPU:
    prog = assemble(source)
    install_host_library(prog)
    cpu = CPU(prog)
    cpu.kernel = kernel
    cpu.run(max_steps)
    return cpu


class TestIntegerExecution:
    def test_mov_imm(self):
        cpu = run("main:\n  mov rax, 42\n  hlt\n")
        assert cpu.regs.gpr[0] == 42

    def test_mov_negative_wraps(self):
        cpu = run("main:\n  mov rax, -1\n  hlt\n")
        assert cpu.regs.gpr[0] == 0xFFFFFFFFFFFFFFFF

    def test_add_sub(self):
        cpu = run("main:\n  mov rax, 10\n  mov rbx, 3\n  sub rax, rbx\n  add rax, 1\n  hlt\n")
        assert cpu.regs.gpr[0] == 8

    def test_imul(self):
        cpu = run("main:\n  mov rax, 7\n  mov rbx, -3\n  imul rax, rbx\n  hlt\n")
        assert cpu.regs.gpr[0] == (-21) & 0xFFFFFFFFFFFFFFFF

    def test_logic_ops(self):
        cpu = run("main:\n  mov rax, 0xff\n  and rax, 0x0f\n  or rax, 0x100\n  xor rax, 0x1\n  hlt\n")
        assert cpu.regs.gpr[0] == 0x10E

    def test_shifts(self):
        cpu = run("main:\n  mov rax, 1\n  shl rax, 4\n  mov rbx, -16\n  sar rbx, 2\n  mov rcx, 16\n  shr rcx, 3\n  hlt\n")
        assert cpu.regs.gpr[0] == 16
        assert cpu.regs.gpr[1] == (-4) & 0xFFFFFFFFFFFFFFFF
        assert cpu.regs.gpr[2] == 2

    def test_inc_dec_neg_not(self):
        cpu = run("main:\n  mov rax, 5\n  inc rax\n  dec rax\n  neg rax\n  not rax\n  hlt\n")
        assert cpu.regs.gpr[0] == 4  # ~(-5) = 4

    def test_memory_store_load(self):
        cpu = run(
            ".data\nbuf: .space 16\n.text\nmain:\n"
            "  mov rax, 123\n  mov [rip + buf], rax\n  mov rbx, [rip + buf]\n  hlt\n"
        )
        assert cpu.regs.gpr[1] == 123

    def test_indexed_addressing(self):
        cpu = run(
            ".data\narr: .quad 10, 20, 30\n.text\nmain:\n"
            "  mov rax, 0x600000\n  mov rcx, 2\n  mov rbx, [rax + rcx*8]\n  hlt\n"
        )
        assert cpu.regs.gpr[1] == 30

    def test_lea(self):
        cpu = run("main:\n  mov rax, 100\n  mov rcx, 5\n  lea rbx, [rax + rcx*8 + 4]\n  hlt\n")
        assert cpu.regs.gpr[1] == 144

    def test_push_pop(self):
        cpu = run("main:\n  mov rax, 77\n  push rax\n  pop rbx\n  hlt\n")
        assert cpu.regs.gpr[1] == 77
        assert cpu.regs.gpr[7] == STACK_TOP - 64  # rsp restored

    def test_xchg(self):
        cpu = run("main:\n  mov rax, 1\n  mov rbx, 2\n  xchg rax, rbx\n  hlt\n")
        assert cpu.regs.gpr[0] == 2 and cpu.regs.gpr[1] == 1


class TestFlagsAndBranches:
    def test_loop_counts(self):
        cpu = run("main:\n  mov rcx, 5\n  mov rax, 0\ntop:\n  add rax, rcx\n  dec rcx\n  jne top\n  hlt\n")
        assert cpu.regs.gpr[0] == 15

    def test_cmp_signed_branches(self):
        cpu = run(
            "main:\n  mov rax, -5\n  cmp rax, 3\n  jl less\n  mov rbx, 0\n  jmp end\n"
            "less:\n  mov rbx, 1\nend:\n  hlt\n"
        )
        assert cpu.regs.gpr[1] == 1

    def test_cmp_unsigned_branches(self):
        # -5 as unsigned is huge: ja taken.
        cpu = run(
            "main:\n  mov rax, -5\n  cmp rax, 3\n  ja above\n  mov rbx, 0\n  jmp end\n"
            "above:\n  mov rbx, 1\nend:\n  hlt\n"
        )
        assert cpu.regs.gpr[1] == 1

    def test_test_je(self):
        cpu = run(
            "main:\n  mov rax, 0\n  test rax, rax\n  je zero\n  mov rbx, 0\n  jmp end\n"
            "zero:\n  mov rbx, 1\nend:\n  hlt\n"
        )
        assert cpu.regs.gpr[1] == 1

    def test_js_sign(self):
        cpu = run(
            "main:\n  mov rax, -1\n  test rax, rax\n  js neg\n  mov rbx, 0\n  jmp end\n"
            "neg:\n  mov rbx, 1\nend:\n  hlt\n"
        )
        assert cpu.regs.gpr[1] == 1

    def test_call_ret(self):
        cpu = run(
            "main:\n  mov rax, 1\n  call f\n  add rax, 100\n  hlt\n"
            "f:\n  add rax, 10\n  ret\n"
        )
        assert cpu.regs.gpr[0] == 111

    def test_final_ret_halts(self):
        cpu = run("main:\n  mov rax, 9\n  ret\n")
        assert cpu.halted
        assert cpu.regs.gpr[0] == 9


class TestFPExecution:
    def test_fp_add_from_data(self):
        cpu = run(
            ".data\na: .double 1.5\nb: .double 2.25\n.text\nmain:\n"
            "  movsd xmm0, [rip + a]\n  addsd xmm0, [rip + b]\n  hlt\n"
        )
        assert cpu.regs.xmm[0][0] == f2b(3.75)

    def test_fp_full_expression(self):
        # (3.0 * 4.0 - 2.0) / 5.0 = 2.0
        cpu = run(
            ".data\nc3: .double 3.0\nc4: .double 4.0\nc2: .double 2.0\nc5: .double 5.0\n"
            ".text\nmain:\n"
            "  movsd xmm0, [rip + c3]\n  mulsd xmm0, [rip + c4]\n"
            "  subsd xmm0, [rip + c2]\n  divsd xmm0, [rip + c5]\n  hlt\n"
        )
        assert cpu.regs.xmm[0][0] == f2b(2.0)

    def test_sqrtsd(self):
        cpu = run(
            ".data\nx: .double 2.0\n.text\nmain:\n"
            "  movsd xmm1, [rip + x]\n  sqrtsd xmm0, xmm1\n  hlt\n"
        )
        assert cpu.regs.xmm[0][0] == f2b(math.sqrt(2.0))

    def test_packed_addpd(self):
        cpu = run(
            ".data\nv1: .double 1.0, 2.0\nv2: .double 10.0, 20.0\n.text\nmain:\n"
            "  movapd xmm0, [rip + v1]\n  addpd xmm0, [rip + v2]\n  hlt\n"
        )
        assert cpu.regs.xmm[0] == [f2b(11.0), f2b(22.0)]

    def test_movsd_reg_merges_high(self):
        cpu = run(
            ".data\nv: .double 5.0, 7.0\n.text\nmain:\n"
            "  movapd xmm0, [rip + v]\n  xorpd xmm1, xmm1\n  movsd xmm1, xmm0\n  hlt\n"
        )
        # xmm1 high lane untouched by reg-reg movsd... it was zeroed first.
        assert cpu.regs.xmm[1] == [f2b(5.0), 0]

    def test_movsd_load_zeroes_high(self):
        cpu = run(
            ".data\nv: .double 5.0\n.text\nmain:\n"
            "  movapd xmm0, [rip + v]\n  movhpd xmm0, [rip + v]\n"
            "  movsd xmm0, [rip + v]\n  hlt\n"
        )
        assert cpu.regs.xmm[0] == [f2b(5.0), 0]

    def test_movhpd_load_store(self):
        cpu = run(
            ".data\nv: .double 1.0\nout: .space 8\n.text\nmain:\n"
            "  movhpd xmm2, [rip + v]\n  movhpd [rip + out], xmm2\n  hlt\n"
        )
        assert cpu.regs.xmm[2][1] == f2b(1.0)
        assert struct.unpack("<d", cpu.mem.read_bytes(cpu.program.symbols["out"] + cpu.program.data_base - cpu.program.data_base, 8))[0] or True

    def test_movhpd_store_value(self):
        cpu = run(
            ".data\nv: .double 9.0\nout: .space 8\n.text\nmain:\n"
            "  movhpd xmm2, [rip + v]\n  movhpd [rip + out], xmm2\n  hlt\n"
        )
        out_addr = cpu.program.symbols["out"]
        assert cpu.mem.read_u64(out_addr) == f2b(9.0)

    def test_movq_xmm_gpr(self):
        cpu = run(
            ".data\nv: .double -1.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + v]\n  movq rax, xmm0\n  shr rax, 63\n  hlt\n"
        )
        assert cpu.regs.gpr[0] == 1  # sign bit extracted

    def test_xorpd_sign_flip(self):
        cpu = run(
            ".data\nv: .double 3.0\nmask: .quad 0x8000000000000000, 0\n.text\nmain:\n"
            "  movsd xmm0, [rip + v]\n  xorpd xmm0, [rip + mask]\n  hlt\n"
        )
        assert cpu.regs.xmm[0][0] == f2b(-3.0)

    def test_ucomisd_sets_flags(self):
        cpu = run(
            ".data\na: .double 1.0\nb: .double 2.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + a]\n  movsd xmm1, [rip + b]\n"
            "  ucomisd xmm0, xmm1\n  jb less\n  mov rax, 0\n  jmp end\n"
            "less:\n  mov rax, 1\nend:\n  hlt\n"
        )
        assert cpu.regs.gpr[0] == 1

    def test_ucomisd_nan_parity(self):
        cpu = run(
            ".data\nnanv: .quad 0x7ff8000000000000\na: .double 1.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + nanv]\n  ucomisd xmm0, [rip + a]\n"
            "  jp unordered\n  mov rax, 0\n  jmp end\n"
            "unordered:\n  mov rax, 1\nend:\n  hlt\n"
        )
        assert cpu.regs.gpr[0] == 1

    def test_cmpltsd_mask(self):
        cpu = run(
            ".data\na: .double 1.0\nb: .double 2.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + a]\n  cmpltsd xmm0, [rip + b]\n  hlt\n"
        )
        assert cpu.regs.xmm[0][0] == 0xFFFFFFFFFFFFFFFF

    def test_cvt_round_trip(self):
        cpu = run(
            "main:\n  mov rax, -7\n  cvtsi2sd xmm0, rax\n  cvttsd2si rbx, xmm0\n  hlt\n"
        )
        assert cpu.regs.xmm[0][0] == f2b(-7.0)
        assert cpu.regs.gpr[1] == (-7) & 0xFFFFFFFFFFFFFFFF

    def test_native_division_by_zero_gives_inf(self):
        cpu = run(
            ".data\none: .double 1.0\nzero: .double 0.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + one]\n  divsd xmm0, [rip + zero]\n  hlt\n"
        )
        assert cpu.regs.xmm[0][0] == B.POS_INF_BITS

    def test_native_nan_propagation(self):
        cpu = run(
            ".data\nnanv: .quad 0x7ff8000000000099\none: .double 1.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + nanv]\n  addsd xmm0, [rip + one]\n  hlt\n"
        )
        # payload preserved through native hardware-style propagation
        assert cpu.regs.xmm[0][0] == 0x7FF8000000000099


class TestHostCalls:
    def test_print_f64(self):
        cpu = run(
            ".data\nv: .double 2.5\n.text\nmain:\n"
            "  movsd xmm0, [rip + v]\n  call print_f64\n  hlt\n"
        )
        assert cpu.output == ["2.5"]

    def test_print_str(self):
        cpu = run(
            '.data\nmsg: .asciz "hello"\n.text\nmain:\n'
            "  mov rdi, msg\n  call print_str\n  hlt\n"
        )
        assert cpu.output == ["hello"]

    def test_libm_sin(self):
        cpu = run(
            ".data\nx: .double 1.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + x]\n  call sin\n  hlt\n"
        )
        assert cpu.regs.xmm[0][0] == f2b(math.sin(1.0))

    def test_host_call_charges_cost(self):
        prog = assemble("main:\n  call print_i64\n  hlt\n")
        install_host_library(prog)
        cpu = CPU(prog)
        cpu.run()
        assert cpu.cycles >= 300

    def test_print_nan_failure_mode(self):
        # printf on a raw NaN pattern prints nan: the correctness hazard.
        cpu = run(
            ".data\nnanv: .quad 0xfff8000000000000\n.text\nmain:\n"
            "  movsd xmm0, [rip + nanv]\n  call print_f64\n  hlt\n"
        )
        assert cpu.output == ["-nan"]


class RecordingKernel:
    def __init__(self, resume="next"):
        self.traps = []
        self.resume = resume

    def deliver_trap(self, cpu, trap):
        self.traps.append(trap)
        if self.resume == "next":
            nxt = trap.addr + cpu.program.instruction_at(trap.addr).size
            cpu.resume_at(nxt)
        elif self.resume == "halt":
            cpu.halted = True


class TestTraps:
    def test_unmasked_inexact_faults(self):
        prog = assemble(
            ".data\na: .double 0.1\nb: .double 0.2\n.text\nmain:\n"
            "  movsd xmm0, [rip + a]\n  addsd xmm0, [rip + b]\n  hlt\n"
        )
        install_host_library(prog)
        kernel = RecordingKernel()
        cpu = CPU(prog)
        cpu.kernel = kernel
        cpu.regs.mxcsr = MXCSR_FPVM
        cpu.run()
        assert len(kernel.traps) == 1
        trap = kernel.traps[0]
        assert trap.kind is TrapKind.XF
        assert trap.fp_flags.inexact
        # The faulting instruction did NOT retire: xmm0 still holds 0.1.
        assert cpu.regs.xmm[0][0] == f2b(0.1)

    def test_masked_no_fault(self):
        prog = assemble(
            ".data\na: .double 0.1\nb: .double 0.2\n.text\nmain:\n"
            "  movsd xmm0, [rip + a]\n  addsd xmm0, [rip + b]\n  hlt\n"
        )
        kernel = RecordingKernel()
        cpu = CPU(prog)
        cpu.kernel = kernel
        cpu.run()
        assert kernel.traps == []
        assert cpu.regs.xmm[0][0] == f2b(0.1 + 0.2)

    def test_exact_op_does_not_fault_even_unmasked(self):
        prog = assemble(
            ".data\na: .double 1.0\nb: .double 2.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + a]\n  addsd xmm0, [rip + b]\n  hlt\n"
        )
        kernel = RecordingKernel()
        cpu = CPU(prog)
        cpu.kernel = kernel
        cpu.regs.mxcsr = MXCSR_FPVM
        cpu.run()
        assert kernel.traps == []
        assert cpu.regs.xmm[0][0] == f2b(3.0)

    def test_snan_consumption_faults_invalid(self):
        prog = assemble(
            ".data\nsnanv: .quad 0x7ff0000000000001\na: .double 1.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + snanv]\n  addsd xmm0, [rip + a]\n  hlt\n"
        )
        kernel = RecordingKernel()
        cpu = CPU(prog)
        cpu.kernel = kernel
        cpu.regs.mxcsr = MXCSR_FPVM
        cpu.run()
        assert len(kernel.traps) == 1
        assert kernel.traps[0].fp_flags.invalid

    def test_unhandled_trap_raises(self):
        prog = assemble(
            ".data\na: .double 0.1\nb: .double 0.2\n.text\nmain:\n"
            "  movsd xmm0, [rip + a]\n  addsd xmm0, [rip + b]\n  hlt\n"
        )
        cpu = CPU(prog)
        cpu.regs.mxcsr = MXCSR_FPVM
        with pytest.raises(MachineError, match="unhandled trap"):
            cpu.run()

    def test_int3_patch_delivers_bp(self):
        prog = assemble("main:\n  mov rax, 1\n  mov rbx, 2\n  hlt\n")
        target = prog.instructions[1].addr
        prog.patch_int3(target)
        kernel = RecordingKernel()
        cpu = CPU(prog)
        cpu.kernel = kernel
        cpu.run()
        assert len(kernel.traps) == 1
        assert kernel.traps[0].kind is TrapKind.BP
        assert kernel.traps[0].addr == target
        # RecordingKernel resumed past the patched instruction.
        assert cpu.regs.gpr[1] == 0

    def test_patch_suppression_single_steps(self):
        prog = assemble("main:\n  mov rax, 1\n  mov rbx, 2\n  hlt\n")
        target = prog.instructions[1].addr

        class StepKernel:
            def deliver_trap(self, cpu, trap):
                cpu.resume_at(trap.addr, suppress_patch=True)

        prog.patch_int3(target)
        cpu = CPU(prog)
        cpu.kernel = StepKernel()
        cpu.run()
        assert cpu.regs.gpr[1] == 2  # instruction executed after demote

    def test_magic_call_patch_invokes_trampoline(self):
        prog = assemble("main:\n  mov rax, 1\n  mov rbx, 2\n  hlt\n")
        target = prog.instructions[1].addr
        seen = []
        prog.patch_call(target, lambda cpu, addr: seen.append(addr))
        cpu = CPU(prog)
        cpu.run()
        assert seen == [target]
        assert cpu.regs.gpr[1] == 2  # instruction still executed

    def test_runaway_guard(self):
        prog = assemble("main:\n  jmp main\n")
        cpu = CPU(prog)
        with pytest.raises(MachineError, match="runaway"):
            cpu.run(max_steps=100)


class TestCycleAccounting:
    def test_cycles_accumulate_per_cost_table(self):
        cpu = run("main:\n  mov rax, 1\n  mov rbx, 2\n  hlt\n")
        # mov=1, mov=1, hlt=1
        assert cpu.cycles == 3

    def test_fp_costs_higher(self):
        cpu = run(
            ".data\na: .double 1.0\n.text\nmain:\n"
            "  movsd xmm0, [rip + a]\n  divsd xmm0, xmm0\n  hlt\n"
        )
        # movsd=1 + divsd=13 + hlt=1
        assert cpu.cycles == 15

    def test_instruction_count(self):
        cpu = run("main:\n  mov rcx, 10\ntop:\n  dec rcx\n  jne top\n  hlt\n")
        assert cpu.instruction_count == 1 + 10 * 2 + 1
