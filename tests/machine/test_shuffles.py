"""SSE2 shuffle/duplicate moves, and their role as sequence
terminators (part of §4.2's deliberately-ignored opcode set)."""

import pytest

from repro.core.vm import FPVM, FPVMConfig
from repro.fpu import bits as B
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library

f2b = B.float_to_bits


def run(src: str) -> CPU:
    cpu = CPU(assemble(src))
    cpu.kernel = LinuxKernel()
    cpu.run()
    return cpu


PRELUDE = ".data\nv: .double 1.0, 2.0\nw: .double 3.0, 4.0\n.text\nmain:\n"


class TestShuffleSemantics:
    def test_movddup(self):
        cpu = run(PRELUDE + "  movddup xmm0, [rip + w]\n  hlt\n")
        assert cpu.regs.xmm[0] == [f2b(3.0), f2b(3.0)]

    def test_movddup_reg(self):
        cpu = run(PRELUDE + "  movapd xmm1, [rip + v]\n  movddup xmm0, xmm1\n  hlt\n")
        assert cpu.regs.xmm[0] == [f2b(1.0), f2b(1.0)]

    def test_unpcklpd(self):
        cpu = run(PRELUDE +
                  "  movapd xmm0, [rip + v]\n  movapd xmm1, [rip + w]\n"
                  "  unpcklpd xmm0, xmm1\n  hlt\n")
        assert cpu.regs.xmm[0] == [f2b(1.0), f2b(3.0)]

    def test_unpckhpd(self):
        cpu = run(PRELUDE +
                  "  movapd xmm0, [rip + v]\n  movapd xmm1, [rip + w]\n"
                  "  unpckhpd xmm0, xmm1\n  hlt\n")
        assert cpu.regs.xmm[0] == [f2b(2.0), f2b(4.0)]

    @pytest.mark.parametrize("ctrl,expect", [
        (0, (1.0, 3.0)), (1, (2.0, 3.0)), (2, (1.0, 4.0)), (3, (2.0, 4.0)),
    ])
    def test_shufpd_all_controls(self, ctrl, expect):
        cpu = run(PRELUDE +
                  "  movapd xmm0, [rip + v]\n  movapd xmm1, [rip + w]\n"
                  f"  shufpd xmm0, xmm1, {ctrl}\n  hlt\n")
        assert cpu.regs.xmm[0] == [f2b(expect[0]), f2b(expect[1])]

    def test_swap_lanes_idiom(self):
        # shufpd xmm0, xmm0, 1 swaps the two lanes.
        cpu = run(PRELUDE + "  movapd xmm0, [rip + v]\n  shufpd xmm0, xmm0, 1\n  hlt\n")
        assert cpu.regs.xmm[0] == [f2b(2.0), f2b(1.0)]


class TestShufflesTerminateSequences:
    SRC = (
        ".data\na: .double 0.1\nb: .double 0.7\npair: .double 0.3, 0.9\n"
        "n: .quad 20\n.text\nmain:\n"
        "  mov rcx, [rip + n]\n  movsd xmm0, [rip + a]\n"
        "top:\n"
        "  addsd xmm0, [rip + b]\n"
        "  mulsd xmm0, [rip + a]\n"
        "  movddup xmm5, [rip + pair]   ; unsupported: terminator\n"
        "  subsd xmm0, [rip + pair]\n"
        "  dec rcx\n  jne top\n"
        "  call print_f64\n  hlt\n"
    )

    def _run_fpvm(self):
        prog = assemble(self.SRC)
        install_host_library(prog)
        cpu = CPU(prog)
        kernel = LinuxKernel()
        cpu.kernel = kernel
        vm = FPVM(FPVMConfig.seq_short()).attach(cpu, kernel)
        cpu.run()
        return cpu, vm

    def test_movddup_is_a_terminator(self):
        _, vm = self._run_fpvm()
        terms = {r.terminator for r in vm.trace_stats.traces.values()}
        assert "movddup" in terms

    def test_bit_for_bit_with_shuffles(self):
        prog = assemble(self.SRC)
        install_host_library(prog)
        native = CPU(prog)
        native.kernel = LinuxKernel()
        native.run()
        cpu, _ = self._run_fpvm()
        assert cpu.output == native.output
