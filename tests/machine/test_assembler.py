"""Assembler, encoding and decoder tests."""

import pytest

from repro.machine.assembler import AssemblerError, assemble
from repro.machine.decoder import decode_instruction
from repro.machine.encoding import encode_instruction, encoded_length
from repro.machine.isa import Imm, Instruction, Label, Mem, Reg, Xmm
from repro.machine.program import DATA_BASE, TEXT_BASE


class TestAssembleBasics:
    def test_single_instruction(self):
        prog = assemble("main:\n  mov rax, 5\n  hlt\n")
        assert len(prog.instructions) == 2
        instr = prog.instructions[0]
        assert instr.mnemonic == "mov"
        assert instr.operands == (Reg("rax"), Imm(5))

    def test_addresses_contiguous(self):
        prog = assemble("main:\n  mov rax, 5\n  mov rbx, rax\n  hlt\n")
        a, b, c = prog.instructions
        assert a.addr == TEXT_BASE
        assert b.addr == a.addr + a.size
        assert c.addr == b.addr + b.size

    def test_entry_is_main(self):
        prog = assemble("start:\n  nop\nmain:\n  hlt\n")
        assert prog.entry == prog.symbols["main"]
        assert prog.entry > TEXT_BASE

    def test_label_on_same_line(self):
        prog = assemble("main: mov rax, 1\n  hlt\n")
        assert prog.symbols["main"] == TEXT_BASE

    def test_comments_stripped(self):
        prog = assemble("main:\n  mov rax, 1 ; a comment\n  hlt # another\n")
        assert len(prog.instructions) == 2

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("main:\n  frob rax, 1\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\n  nop\na:\n  nop\n")

    def test_wrong_arity_rejected(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("main:\n  mov rax\n")

    def test_undefined_data_symbol_rejected(self):
        with pytest.raises(AssemblerError, match="undefined"):
            assemble("main:\n  mov rax, nosuch\n")


class TestOperandParsing:
    def test_xmm_registers(self):
        prog = assemble("main:\n  addsd xmm0, xmm13\n  hlt\n")
        assert prog.instructions[0].operands == (Xmm("xmm0"), Xmm("xmm13"))

    def test_negative_and_hex_immediates(self):
        prog = assemble("main:\n  mov rax, -17\n  mov rbx, 0x40\n  hlt\n")
        assert prog.instructions[0].operands[1] == Imm(-17)
        assert prog.instructions[1].operands[1] == Imm(0x40)

    def test_memory_base_only(self):
        prog = assemble("main:\n  mov rax, [rbx]\n  hlt\n")
        mem = prog.instructions[0].operands[1]
        assert mem == Mem(base="rbx")

    def test_memory_base_disp(self):
        prog = assemble("main:\n  mov rax, [rbx + 16]\n  hlt\n")
        assert prog.instructions[0].operands[1] == Mem(base="rbx", disp=16)

    def test_memory_negative_disp(self):
        prog = assemble("main:\n  mov rax, [rbp - 8]\n  hlt\n")
        assert prog.instructions[0].operands[1] == Mem(base="rbp", disp=-8)

    def test_memory_index_scale(self):
        prog = assemble("main:\n  movsd xmm0, [rax + rcx*8 + 32]\n  hlt\n")
        mem = prog.instructions[0].operands[1]
        assert mem == Mem(base="rax", index="rcx", scale=8, disp=32)

    def test_rip_relative(self):
        prog = assemble(".data\nx: .double 2.5\n.text\nmain:\n  movsd xmm0, [rip + x]\n  hlt\n")
        mem = prog.instructions[0].operands[1]
        assert mem.disp == DATA_BASE
        assert mem.rip_label == "x"

    def test_rip_relative_with_offset(self):
        prog = assemble(".data\nx: .double 1.0, 2.0\n.text\nmain:\n  movsd xmm0, [rip + x + 8]\n  hlt\n")
        assert prog.instructions[0].operands[1].disp == DATA_BASE + 8

    def test_branch_to_local_label(self):
        prog = assemble("main:\n  jmp end\n  nop\nend:\n  hlt\n")
        label = prog.instructions[0].operands[0]
        assert isinstance(label, Label)
        assert label.addr == prog.symbols["end"]

    def test_call_external_symbol_unresolved(self):
        prog = assemble("main:\n  call print_f64\n  hlt\n")
        label = prog.instructions[0].operands[0]
        assert isinstance(label, Label)
        assert label.addr is None  # dynamic (PLT-style) binding


class TestDataSection:
    def test_double_literals(self):
        prog = assemble(".data\nv: .double 1.5, -2.5\n.text\nmain:\n  hlt\n")
        import struct

        assert struct.unpack("<2d", prog.data) == (1.5, -2.5)

    def test_quad_literals(self):
        prog = assemble(".data\nq: .quad 7, -1\n.text\nmain:\n  hlt\n")
        import struct

        assert struct.unpack("<2q", prog.data) == (7, -1)

    def test_space(self):
        prog = assemble(".data\nbuf: .space 64\n.text\nmain:\n  hlt\n")
        assert len(prog.data) == 64

    def test_asciz(self):
        prog = assemble('.data\nmsg: .asciz "hi"\n.text\nmain:\n  hlt\n')
        assert prog.data == b"hi\x00"

    def test_symbol_addresses_sequential(self):
        prog = assemble(".data\na: .double 1.0\nb: .double 2.0\n.text\nmain:\n  hlt\n")
        assert prog.symbols["b"] == prog.symbols["a"] + 8


class TestEncodeDecodeRoundTrip:
    CASES = [
        "mov rax, 5",
        "mov rax, [rbx + rcx*8 + 16]",
        "addsd xmm1, xmm2",
        "movsd xmm0, [rbp - 24]",
        "movhpd xmm11, [rsp + 48]",
        "cmpltsd xmm3, xmm4",
        "push r15",
        "inc rcx",
        "ret",
        "int3",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip(self, text):
        prog = assemble(f"main:\n  {text}\n  hlt\n")
        original = prog.instructions[0]
        raw = encode_instruction(original)
        assert raw == original.raw
        decoded = decode_instruction(raw, addr=original.addr)
        assert decoded.mnemonic == original.mnemonic
        assert len(decoded.operands) == len(original.operands)
        for dec_op, orig_op in zip(decoded.operands, original.operands):
            assert type(dec_op) is type(orig_op)

    def test_encoded_length_agrees(self):
        prog = assemble("main:\n  movsd xmm0, [rax + rcx*8]\n  addsd xmm0, xmm1\n  hlt\n")
        blob = prog.text
        sizes = [i.size for i in prog.instructions]
        offset = 0
        for expected in sizes:
            assert encoded_length(blob, offset) == expected
            offset += expected

    def test_decoded_mem_semantics_preserved(self):
        prog = assemble("main:\n  mov rax, [rbx + rcx*4 + 100]\n  hlt\n")
        decoded = decode_instruction(prog.instructions[0].raw)
        mem = decoded.operands[1]
        assert (mem.base, mem.index, mem.scale, mem.disp) == ("rbx", "rcx", 4, 100)

    def test_decoded_label_address(self):
        prog = assemble("main:\n  jmp target\ntarget:\n  hlt\n")
        decoded = decode_instruction(prog.instructions[0].raw)
        assert decoded.operands[0].addr == prog.symbols["target"]


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        prog = assemble("main:\n  mov rax, 1\n  mov rbx, 2\n  hlt\n")
        assert len(prog.basic_blocks()) == 1

    def test_branch_splits_blocks(self):
        prog = assemble(
            "main:\n  mov rcx, 3\ntop:\n  dec rcx\n  jne top\n  hlt\n"
        )
        blocks = prog.basic_blocks()
        # main-prefix, loop body, exit
        assert len(blocks) == 3
        assert blocks[1][0].addr == prog.symbols["top"]
