"""Copy-on-write clone semantics (``Memory.clone_pages``).

The LazyFP-flavored isolation property: once memories share pages
copy-on-write, no store by any sharer may ever become visible to
another — a leak here is exactly the stale-register leak LazyFP
describes, transposed to guest memory.  Asserted via whole-address-
space digests, plus accounting checks for the ``cow_faults`` counter
the fleet telemetry exports.
"""

import pytest

from repro.machine.memory import (
    Memory,
    MemoryFault,
    PAGE_SIZE,
    PROT_READ,
    PROT_WRITE,
)


def _template() -> Memory:
    mem = Memory()
    mem.write_bytes(0x1000, b"\xaa" * PAGE_SIZE)
    mem.write_bytes(0x2000, b"\xbb" * PAGE_SIZE)
    mem.write_u64(0x3000, 0x1234_5678_9ABC_DEF0)
    return mem


class TestCowSharing:
    def test_pages_shared_until_first_write(self):
        parent = _template()
        child = Memory()
        child.clone_pages(parent)
        assert child.cow_page_count() == parent.cow_page_count() == 3
        # reads materialize nothing
        assert child.read_bytes(0x1000, 16) == b"\xaa" * 16
        assert child.read_u64(0x3000) == 0x1234_5678_9ABC_DEF0
        assert child.cow_page_count() == 3
        assert child.cow_faults == 0
        # first write to a page copies exactly that page
        child.write_u64(0x1000, 7)
        assert child.cow_faults == 1
        assert child.cow_page_count() == 2

    def test_child_store_invisible_to_parent_and_siblings(self):
        parent = _template()
        parent_digest = parent.digest()
        a, b = Memory(), Memory()
        a.clone_pages(parent)
        b.clone_pages(parent)
        before = a.digest()
        assert before == b.digest() == parent.digest() == parent_digest

        a.write_u64(0x1000, 0xDEAD_BEEF)
        a.write_u64(0x3008, 42)
        assert a.digest() != before
        # the stores never leak to the parent or the sibling
        assert parent.digest() == parent_digest
        assert b.digest() == before
        assert b.read_u64(0x1000) != 0xDEAD_BEEF
        assert parent.read_bytes(0x1000, 8) == b"\xaa" * 8

    def test_parent_store_invisible_to_children(self):
        parent = _template()
        child = Memory()
        child.clone_pages(parent)
        before = child.digest()
        parent.write_u64(0x2000, 99)          # parent COW-faults too
        assert parent.cow_faults == 1
        assert child.digest() == before
        assert child.read_bytes(0x2000, 4) == b"\xbb" * 4

    def test_grandchild_chains_share_one_frozen_pool(self):
        parent = _template()
        child = Memory()
        child.clone_pages(parent)
        grandchild = Memory()
        grandchild.clone_pages(child)
        g_before = grandchild.digest()
        child.write_u64(0x1000, 1)
        parent.write_u64(0x1000, 2)
        assert grandchild.digest() == g_before
        assert grandchild.read_bytes(0x1000, 8) == b"\xaa" * 8

    def test_eager_clone_still_available(self):
        parent = _template()
        child = Memory()
        child.clone_pages(parent, cow=False)
        assert child.cow_page_count() == 0
        child.write_u64(0x1000, 7)
        assert child.cow_faults == 0
        assert parent.read_bytes(0x1000, 8) == b"\xaa" * 8


class TestCowEdges:
    def test_protection_preserved_and_enforced(self):
        parent = Memory()
        parent.write_bytes(0x1000, b"\xcc" * 8)
        parent.protect(0x1000, PROT_READ)
        child = Memory()
        child.clone_pages(parent)
        assert child.read_bytes(0x1000, 8) == b"\xcc" * 8
        with pytest.raises(MemoryFault):
            child.write_u64(0x1000, 0)
        assert child.cow_faults == 0

    def test_protect_materializes_per_sharer(self):
        parent = _template()
        child = Memory()
        child.clone_pages(parent)
        child.protect(0x1000, PROT_READ)
        # prot divergence is private to the sharer that asked for it
        parent.write_u64(0x1000, 5)
        with pytest.raises(MemoryFault):
            child.write_u64(0x1000, 5)

    def test_shared_pages_visible_to_page_scans(self):
        parent = _template()
        child = Memory()
        child.clone_pages(parent)
        assert child.is_mapped(0x1000)
        assert child.mapped_page_count() == 3
        # the GC root scan must still see logically-writable pages
        assert 0x1000 in child.writable_pages()
        assert child.page_bytes(0x1000) == b"\xaa" * PAGE_SIZE

    def test_automap_does_not_shadow_shared_pages(self):
        parent = _template()
        child = Memory()
        child.clone_pages(parent)
        # a read of a shared page must see the parent image, not a
        # fresh auto-mapped zero page
        assert child.read_bytes(0x2000, 2) == b"\xbb\xbb"

    def test_map_page_goes_private(self):
        parent = _template()
        child = Memory()
        child.clone_pages(parent)
        child.map_page(0x1000, PROT_READ | PROT_WRITE)
        child.write_u64(0x1000, 3)
        assert parent.read_bytes(0x1000, 8) == b"\xaa" * 8


class TestForkProcessIsolation:
    def test_forked_guest_stores_never_leak(self):
        """End-to-end: fork a real guest process, run the child, and
        prove the parent's memory digest never moves (and vice versa)."""
        from repro.machine.process import Process, fork_process
        from repro.workloads import build_program

        parent = Process(build_program("lorenz", 20))
        child = fork_process(parent)
        parent_digest = parent.mem.digest()
        assert child.mem.digest() == parent_digest

        child.run()
        assert parent.mem.digest() == parent_digest
        assert child.mem.cow_faults > 0

        # and the parent running afterwards does not disturb the child
        child_digest = child.mem.digest()
        parent.run()
        assert child.mem.digest() == child_digest
        assert parent.main.output == child.main.output
