"""The micro-op pipeline: bit-exact fast FP helpers, on/off execution
differentials, the FPVM_UOPS escape hatch, and superblock invalidation
on patch-state epoch changes."""

import random
import struct

import pytest

from repro.kernel.kernel import LinuxKernel
from repro.machine import hostfp, uops
from repro.machine.cpu import CPU, MachineError
from repro.machine.program import PatchKind
from repro.conformance.generators import fuzz_program
from repro.workloads import build_program


def _interesting_bits(rng: random.Random, n: int) -> list[int]:
    """Random binary64 patterns biased toward the edge cases."""
    specials = [
        0x0000_0000_0000_0000,  # +0
        0x8000_0000_0000_0000,  # -0
        0x7FF0_0000_0000_0000,  # +inf
        0xFFF0_0000_0000_0000,  # -inf
        0x7FF8_0000_0000_0000,  # qNaN
        0x7FF0_0000_0000_0001,  # sNaN
        0xFFF8_DEAD_BEEF_0123,  # NaN with payload
        0x0000_0000_0000_0001,  # min subnormal
        0x000F_FFFF_FFFF_FFFF,  # max subnormal
        0x7FEF_FFFF_FFFF_FFFF,  # max normal
        0x3FF0_0000_0000_0000,  # 1.0
        0xBFF0_0000_0000_0000,  # -1.0
        0x4000_0000_0000_0000,  # 2.0
        0x43E0_0000_0000_0000,  # 2^63
        0xC3E0_0000_0000_0000,  # -2^63
    ]
    out = list(specials)
    while len(out) < n:
        out.append(rng.getrandbits(64))
    return out


class TestFastScalarBitExactness:
    """The struct-based fast helpers must agree bit-for-bit with
    hostfp.native_fp — the function the seed interpreter's native FP
    path uses — on every input class."""

    def test_binary_ops(self):
        rng = random.Random(0xF9)
        vals = _interesting_bits(rng, 400)
        for op in ("add", "sub", "mul", "div", "min", "max"):
            fast = uops.FAST_SCALAR[op]
            for i in range(0, len(vals) - 1, 2):
                a, b = vals[i], vals[i + 1]
                assert fast(a, b) == hostfp.native_fp(op, a, b), (
                    f"{op}({a:#x}, {b:#x})"
                )

    def test_binary_ops_cross_pairs(self):
        rng = random.Random(0x51)
        vals = _interesting_bits(rng, 24)
        for op in ("add", "sub", "mul", "div", "min", "max"):
            fast = uops.FAST_SCALAR[op]
            for a in vals:
                for b in vals:
                    assert fast(a, b) == hostfp.native_fp(op, a, b)

    def test_sqrt(self):
        rng = random.Random(0xB2)
        for a in _interesting_bits(rng, 300):
            assert uops.FAST_SCALAR["sqrt"](a) == hostfp.native_fp("sqrt", a)

    def test_cmp_predicates_match_native(self):
        rng = random.Random(0xC3)
        vals = _interesting_bits(rng, 20)
        for mn, pred in uops.CMP_PREDS.items():
            fast = uops._CMP_FAST[pred]
            for a in vals:
                for b in vals:
                    fa = struct.unpack("<d", struct.pack("<Q", a))[0]
                    fb = struct.unpack("<d", struct.pack("<Q", b))[0]
                    want = hostfp.native_fp(f"cmp_{pred}", a, b)
                    got = 0xFFFF_FFFF_FFFF_FFFF if fast(fa, fb) else 0
                    assert got == want, f"{mn}/{pred}({a:#x}, {b:#x})"


class TestUopsOnOffDifferential:
    """Full-machine equality between the superblock engine and the seed
    single-step interpreter."""

    @pytest.mark.parametrize("seed", [1, 2, 7, 19, 42])
    def test_fuzz_programs_native(self, seed):
        results = {}
        for flag in (False, True):
            cpu = CPU(fuzz_program(seed), uops=flag)
            cpu.kernel = LinuxKernel()
            cpu.run()
            results[flag] = (
                cpu.cycles, cpu.work_cycles, cpu.instruction_count,
                tuple(cpu.output), dict(cpu.retired_by_class),
                cpu.fp_trap_count, cpu.bp_trap_count,
                cpu.regs.gpr, [list(x) for x in cpu.regs.xmm],
            )
        assert results[False] == results[True]

    def test_workload_native(self):
        prog = build_program("lorenz", 40)
        results = {}
        for flag in (False, True):
            cpu = CPU(prog.copy(), uops=flag)
            cpu.kernel = LinuxKernel()
            cpu.run()
            results[flag] = (cpu.cycles, cpu.instruction_count, tuple(cpu.output))
        assert results[False] == results[True]

    def test_runaway_limit_matches_interpreter(self):
        prog = build_program("lorenz", 40)
        for limit in (1, 7, 100):
            messages = {}
            for flag in (False, True):
                cpu = CPU(prog.copy(), uops=flag)
                cpu.kernel = LinuxKernel()
                with pytest.raises(MachineError) as exc:
                    cpu.run(max_steps=limit)
                messages[flag] = (str(exc.value), cpu.cycles,
                                  cpu.instruction_count, cpu.regs.rip)
            assert messages[False] == messages[True]

    def test_uop_stats_populated(self):
        cpu = CPU(build_program("lorenz", 20), uops=True)
        cpu.kernel = LinuxKernel()
        cpu.run()
        stats = cpu.uop_stats
        assert stats is not None
        assert stats.uops_retired > 0
        assert stats.blocks_built > 0
        assert 0.0 < stats.uop_hit_rate <= 1.0


class TestEscapeHatch:
    def test_env_knob(self, monkeypatch):
        for value, expect in (("0", False), ("false", False), ("off", False),
                              ("no", False), ("1", True), ("", True), ("yes", True)):
            monkeypatch.setenv("FPVM_UOPS", value)
            assert uops.uops_enabled_default() is expect
        monkeypatch.delenv("FPVM_UOPS")
        assert uops.uops_enabled_default() is True

    def test_cpu_honours_env_default(self, monkeypatch):
        prog = fuzz_program(3)
        monkeypatch.setenv("FPVM_UOPS", "0")
        assert CPU(prog).uops_enabled is False
        monkeypatch.setenv("FPVM_UOPS", "1")
        assert CPU(prog).uops_enabled is True
        # Explicit kwarg wins over the environment.
        assert CPU(prog, uops=False).uops_enabled is False


class _CountingTrampoline:
    def __init__(self):
        self.call_count = 0

    def __call__(self, cpu, addr):
        self.call_count += 1


class TestSuperblockInvalidation:
    def test_patch_bumps_epoch(self):
        prog = fuzz_program(11)
        addr = prog.instructions[0].addr
        e0 = prog.patch_epoch
        prog.patch_int3(addr)
        assert prog.patch_epoch == e0 + 1
        prog.unpatch(addr)
        assert prog.patch_epoch == e0 + 2
        prog.unpatch(addr)  # no-op: nothing there
        assert prog.patch_epoch == e0 + 2
        prog.patch_call(addr, _CountingTrampoline())
        prog.clear_patches()
        assert prog.patch_epoch == e0 + 4
        prog.clear_patches()  # no-op when already empty
        assert prog.patch_epoch == e0 + 4

    def test_copy_carries_epoch(self):
        prog = fuzz_program(11)
        prog.patch_int3(prog.instructions[0].addr)
        assert prog.copy().patch_epoch == prog.patch_epoch

    def test_stale_superblock_regression(self):
        """A patch applied between runs of the *same* CPU must fire even
        though the addresses around it were already compiled into cached
        superblocks — the epoch bump flushes the block cache."""
        prog = build_program("lorenz", 30)
        cpu = CPU(prog, uops=True)
        cpu.kernel = LinuxKernel()
        cpu.run()
        assert cpu.uop_stats.blocks_built > 0

        # Patch an instruction in the *body* of the cached entry block.
        # (Block entries are patch-checked by the engine loop itself, so
        # only a body address truly exercises the epoch flush.)
        engine = cpu._uop_engine
        entry_block = engine._blocks.get(prog.entry)
        assert entry_block is not None and entry_block.n_body >= 2
        first = prog.by_addr[prog.entry]
        target = first.addr + first.size  # second instruction
        tramp = _CountingTrampoline()
        prog.patch_call(target, tramp)
        assert prog.patches[target].kind is PatchKind.MAGIC_CALL

        cpu.halted = False
        cpu.resume_at(prog.entry)
        try:
            # The finished stack frame is gone, so the re-run cannot
            # terminate cleanly; a few steps past the patch site suffice.
            cpu.run(max_steps=50)
        except MachineError:
            pass
        assert tramp.call_count > 0, (
            "magic pre-hook never fired: a stale superblock executed "
            "through the patch site"
        )
