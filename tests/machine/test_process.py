"""Process/thread substrate tests, and FPVM per-thread virtualization
(§2.1: thread startup interception, per-thread contexts)."""

import pytest

from repro.core.vm import FPVM, FPVMConfig
from repro.fpu import bits as B
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.hostlib import install_host_library
from repro.machine.process import Process, fork_process

f2b = B.float_to_bits

#: main spawns a worker that sums doubles into its own accumulator
#: slot; main sums into another; main joins then prints both.
THREADED_SRC = """
.data
step: .double 0.1
acc: .double 0.0, 0.0
n: .quad 40
.text
worker:
  ; rdi = accumulator index
  mov rcx, [rip + n]
  mov rbx, acc
  xorpd xmm0, xmm0
wtop:
  addsd xmm0, [rip + step]
  dec rcx
  jne wtop
  movsd [rbx + rdi*8], xmm0
  ret

main:
  mov rdi, worker
  mov rsi, 1
  call thread_create
  mov r12, rax          ; worker tid
  mov rdi, 0
  call worker_inline
  mov rdi, r12
  call thread_join
  movsd xmm0, [rip + acc]
  call print_f64
  movsd xmm0, [rip + acc + 8]
  call print_f64
  hlt

worker_inline:
  mov rcx, [rip + n]
  mov rbx, acc
  xorpd xmm0, xmm0
itop:
  addsd xmm0, [rip + step]
  dec rcx
  jne itop
  movsd [rbx + rdi*8], xmm0
  ret
"""


def build_process():
    prog = assemble(THREADED_SRC)
    install_host_library(prog)
    proc = Process(prog)
    proc.kernel = LinuxKernel()
    return proc


EXPECTED = None


def expected_output():
    global EXPECTED
    if EXPECTED is None:
        proc = build_process()
        proc.run()
        EXPECTED = list(proc.main.output)
    return EXPECTED


class TestProcessSubstrate:
    def test_two_threads_compute(self):
        out = expected_output()
        assert len(out) == 2
        assert out[0] == out[1]  # same loop, same result
        assert float(out[0]) == pytest.approx(4.0, abs=1e-9)

    def test_thread_ids(self):
        proc = build_process()
        proc.run()
        assert [t.tid for t in proc.threads] == [0, 1]
        assert all(t.halted for t in proc.threads)

    def test_shared_memory(self):
        proc = build_process()
        proc.run()
        acc = proc.program.symbols["acc"]
        assert proc.mem.read_u64(acc) != 0
        assert proc.mem.read_u64(acc + 8) != 0

    def test_join_blocks_until_done(self):
        # The main thread's second print depends on the worker's store;
        # with the join in place the outputs are deterministic.
        assert expected_output() == expected_output()

    def test_total_cycles_aggregates(self):
        proc = build_process()
        proc.run()
        assert proc.total_cycles > proc.main.cycles
        assert proc.total_cycles == sum(t.cycles for t in proc.threads)

    def test_join_unknown_thread_fails(self):
        prog = assemble("main:\n  mov rdi, 99\n  call thread_join\n  hlt\n")
        install_host_library(prog)
        proc = Process(prog)
        proc.kernel = LinuxKernel()
        with pytest.raises(RuntimeError, match="unknown thread"):
            proc.run()

    def test_fork_copies_memory(self):
        proc = build_process()
        proc.run()
        child = fork_process(proc)
        acc = proc.program.symbols["acc"]
        assert child.mem.read_u64(acc) == proc.mem.read_u64(acc)
        child.mem.write_u64(acc, 0)
        assert proc.mem.read_u64(acc) != 0  # isolated after fork


class TestFPVMMultithreaded:
    @pytest.mark.parametrize("config", [
        FPVMConfig.none(), FPVMConfig.seq_short(),
    ], ids=["NONE", "SEQ_SHORT"])
    def test_bit_for_bit_across_threads(self, config):
        proc = build_process()
        kernel = LinuxKernel()
        vm = FPVM(config).attach_process(proc, kernel)
        proc.run()
        assert proc.main.output == expected_output()
        assert vm.telemetry.traps > 0

    def test_spawned_thread_gets_context(self):
        proc = build_process()
        kernel = LinuxKernel()
        vm = FPVM(FPVMConfig.seq_short()).attach_process(proc, kernel)
        proc.run()
        from repro.machine.registers import MXCSR_FPVM

        worker = proc.threads[1]
        assert worker.regs.mxcsr == MXCSR_FPVM
        assert kernel.fpvm_module.is_registered(worker)

    def test_both_threads_trap(self):
        proc = build_process()
        kernel = LinuxKernel()
        FPVM(FPVMConfig.seq_short()).attach_process(proc, kernel)
        proc.run()
        assert proc.threads[0].fp_trap_count > 0
        assert proc.threads[1].fp_trap_count > 0

    def test_gc_sees_other_threads_registers(self):
        """A boxed value live only in a descheduled thread's register
        must survive GC triggered from another thread."""
        proc = build_process()
        kernel = LinuxKernel()
        vm = FPVM(FPVMConfig.seq_short(gc_threshold=8)).attach_process(proc, kernel)
        proc.run(quantum=4)  # fine interleaving to stress cross-thread GC
        assert proc.main.output == expected_output()
        assert vm.telemetry.gc_runs > 0

    def test_detach_revokes_all_threads(self):
        proc = build_process()
        kernel = LinuxKernel()
        vm = FPVM(FPVMConfig.seq_short()).attach_process(proc, kernel)
        proc.run()
        vm.detach()
        for t in proc.threads:
            assert not kernel.fpvm_module.is_registered(t)

    def test_signal_path_multithreaded(self):
        proc = build_process()
        kernel = LinuxKernel()
        FPVM(FPVMConfig.none()).attach_process(proc, kernel)
        proc.run()
        assert proc.main.output == expected_output()

    def test_forked_child_revirtualizes(self):
        """§2.1: FPVM's constructors run on every fork so subprocesses
        stay virtualized — the child re-attaches and still traps."""
        proc = build_process()
        child = fork_process(proc)
        kernel = LinuxKernel()
        vm = FPVM(FPVMConfig.seq_short()).attach_process(child, kernel)
        child.run()
        assert vm.telemetry.traps > 0
        assert child.main.output == expected_output()
