"""Cross-quantum superblock chaining: link mechanics, quantum budget
parity, invalidation edges, root demotion, and the shared per-process
block cache under patching."""

import pytest

from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine import uops
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU, MachineError
from repro.machine.hostlib import install_host_library
from repro.machine.process import Process
from repro.machine.program import PatchKind

#: FP loop whose body compiles to one superblock with a ``jne`` tail —
#: the chain dispatcher's best case (a self-link followed every
#: iteration).
LOOP_SRC = """
.data
k: .double 1.0001
n: .quad 150
.text
main:
  mov rcx, [rip + n]
  movsd xmm0, [rip + k]
  movsd xmm1, [rip + k]
top:
  mulsd xmm0, xmm1
  addsd xmm0, xmm1
  subsd xmm0, xmm1
  dec rcx
  jne top
  call print_f64
  hlt
"""

#: call/ret ping-pong around a host call: every chain is structurally
#: short (call -> f, ret -> back, then the unchainable host-call tail),
#: the demotion case.
CALLRET_SRC = """
.data
k: .double 1.25
n: .quad 40
.text
f:
  mulsd xmm0, xmm1
  ret

main:
  mov rcx, [rip + n]
  movsd xmm0, [rip + k]
  movsd xmm1, [rip + k]
cloop:
  call f
  call print_f64
  dec rcx
  jne cloop
  hlt
"""


def _program(src: str):
    program = assemble(src)
    install_host_library(program)
    return program


def _cpu(program, uops_on=True, chain=None, config=None):
    # trace=False: this file asserts *chained-tier* internals (link
    # counters, chain lengths, break reasons); the trace JIT sitting
    # above it would absorb the loops these numbers count.  The traced
    # tier has its own suite in test_tracejit.py.
    cpu = CPU(program, uops=uops_on, chain=chain, trace=False)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    if config is not None:
        FPVM(config).attach(cpu, kernel)
        cpu.uops_enabled = uops_on
    return cpu


def _fingerprint(cpu):
    regs = cpu.regs
    return {
        "rip": regs.rip,
        "gpr": tuple(regs.gpr),
        "xmm": tuple(tuple(lanes) for lanes in regs.xmm),
        "flags": regs.flags.pack(),
        "mxcsr": regs.mxcsr,
        "cycles": cpu.cycles,
        "instructions": cpu.instruction_count,
        "fp_traps": cpu.fp_trap_count,
        "output": tuple(cpu.output),
        "halted": cpu.halted,
    }


class TestChainMechanics:
    def test_loop_chains_and_stats(self):
        cpu = _cpu(_program(LOOP_SRC), chain=True)
        cpu.run()
        st = cpu.uop_stats.as_dict()
        assert st["links_created"] >= 1
        assert st["links_followed"] > 100        # ~one link per iteration
        assert st["chain_runs"] >= 1
        assert max(st["chain_lengths"]) > 100    # the self-loop trace
        assert st["chain_breaks"]                # every chain ends somewhere

    def test_chained_identical_to_stepwise_and_unchained(self):
        results = {}
        for label, (uops_on, chain) in {
            "stepwise": (False, False),
            "unchained": (True, False),
            "chained": (True, True),
        }.items():
            cpu = _cpu(_program(LOOP_SRC), uops_on=uops_on, chain=chain)
            cpu.run()
            results[label] = _fingerprint(cpu)
        assert results["chained"] == results["stepwise"]
        assert results["unchained"] == results["stepwise"]

    def test_chain_flag_defaults_to_env(self, monkeypatch):
        prog = _program(LOOP_SRC)
        monkeypatch.setenv("FPVM_CHAIN", "0")
        assert CPU(prog, uops=True).chain_enabled is False
        monkeypatch.setenv("FPVM_CHAIN", "1")
        assert CPU(prog, uops=True).chain_enabled is True
        assert CPU(prog, uops=True, chain=False).chain_enabled is False


class TestTailChainGrades:
    def test_grades_by_mnemonic(self):
        prog = _program(CALLRET_SRC)
        grades = {}
        for instr in prog.instructions:
            uop = uops.lower(instr)
            if uop.opclass is uops.OpClass.CONTROL:
                grades.setdefault(instr.mnemonic, set()).add(
                    (uops._tail_chain_grade(uop, prog),
                     str(instr.operands[0]) if instr.operands else ""))
        assert all(g == 1 for g, _ in grades["jne"])
        assert all(g == 2 for g, _ in grades["ret"])
        call_grades = {target: g for g, target in grades["call"]}
        assert call_grades["f"] == 1             # static guest target
        assert call_grades["print_f64"] == 0     # host function: never

    def test_ret_halt_guard(self):
        """A grade-2 (ret) tail that halts the core must not start a
        chain: the sentinel leaves RIP pointing *at* the ret, so a chain
        entered there would re-execute it against a dead stack."""
        cpu = _cpu(_program(".text\nmain:\n  mov rax, 1\n  ret\n"),
                   chain=True)
        cpu.run()
        st = cpu.uop_stats.as_dict()
        assert cpu.halted
        assert cpu.instruction_count == 2
        assert st["links_followed"] == 0
        assert st["chain_runs"] == 0


class TestQuantumBudgetParity:
    """run_quantum(n) under chaining must equal exactly n seed steps —
    including budgets that land mid-body after a followed link."""

    @pytest.mark.parametrize("budget", [*range(1, 14), 29, 64, 257])
    def test_single_quantum_trajectory(self, budget):
        chained = _cpu(_program(LOOP_SRC), chain=True)
        taken = chained.run_quantum(budget)
        assert taken == budget                    # loop far from halting

        seed = _cpu(_program(LOOP_SRC), uops_on=False)
        for _ in range(budget):
            seed.step()
        assert _fingerprint(chained) == _fingerprint(seed)

    @pytest.mark.parametrize("quantum", [1, 3, 7, 64])
    def test_run_to_halt_in_quanta(self, quantum):
        chained = _cpu(_program(LOOP_SRC), chain=True)
        total = 0
        while not chained.halted:
            total += chained.run_quantum(quantum)
            assert total < 10_000
        seed = _cpu(_program(LOOP_SRC), uops_on=False)
        seed.run()
        assert _fingerprint(chained) == _fingerprint(seed)

    def test_partial_block_dispatch_at_budget_edge(self):
        """With a 4-uop loop body and quantum 7, every other dispatch
        ends mid-block; the chaining tier retires the fitting prefix
        through the pipeline instead of seed-stepping the edge."""
        chained = _cpu(_program(LOOP_SRC), chain=True)
        while not chained.halted:
            chained.run_quantum(7)
        st = chained.uop_stats.as_dict()
        assert st["partial_block_runs"] > 0
        assert st["chain_breaks"].get("budget", 0) > 0

        seed = _cpu(_program(LOOP_SRC), uops_on=False)
        seed.run()
        assert _fingerprint(chained) == _fingerprint(seed)


class _Trampoline:
    def __init__(self):
        self.calls = 0

    def __call__(self, cpu, addr):
        self.calls += 1


class TestChainInvalidation:
    def test_patch_at_link_target_breaks_chain(self):
        """A patched address must never be entered from inside a chain:
        the dispatcher re-checks the patch table on every link miss."""
        prog = _program(LOOP_SRC)
        tramp = _Trampoline()
        prog.patch_call(prog.symbols["top"], tramp)
        assert prog.patches[prog.symbols["top"]].kind is PatchKind.MAGIC_CALL

        chained = _cpu(prog, chain=True)
        chained.run()
        assert tramp.calls == 150                 # every loop iteration

        st = chained.uop_stats.as_dict()
        assert st["links_followed"] == 0          # edge leads into a patch
        assert st["chain_runs"] == 0

        # identical to the stepwise seed under the *same* patch (the
        # magic-call hook has host-visible cycle cost, so both sides
        # must carry it).
        plain_prog = _program(LOOP_SRC)
        plain_tramp = _Trampoline()
        plain_prog.patch_call(plain_prog.symbols["top"], plain_tramp)
        plain = _cpu(plain_prog, uops_on=False)
        plain.run()
        assert plain_tramp.calls == tramp.calls
        assert _fingerprint(chained) == _fingerprint(plain)

    def test_patch_epoch_bump_drops_links(self):
        """Patching after a chained run must unlink every cached edge;
        re-running the same CPU must see the patch."""
        prog = _program(LOOP_SRC)
        cpu = _cpu(prog, chain=True)
        cpu.run()
        assert cpu.uop_stats.links_created > 0

        engine = cpu._uop_engine
        loop_entry = prog.symbols["top"]
        body_addr = prog.by_addr[loop_entry].addr + prog.by_addr[loop_entry].size
        tramp = _Trampoline()
        prog.patch_call(body_addr, tramp)

        cpu.halted = False
        cpu.resume_at(prog.entry)
        try:
            cpu.run(max_steps=80)
        except MachineError:
            pass
        assert tramp.calls > 0, "stale chained superblock ran through a patch"
        assert engine.cache.unlinks > 0
        assert engine.cache.invalidations > 0

    def test_slow_inside_chained_block(self):
        """Under seq_short virtualization, FP micro-ops in a linked
        block go SLOW at unpromoted sites; the chain must flush its
        accounting, fall back to step(), and stay bit-identical."""
        chained = _cpu(_program(LOOP_SRC), chain=True,
                       config=FPVMConfig.seq_short(uops=True))
        chained.run()
        st = chained.uop_stats.as_dict()
        assert chained.fp_trap_count > 0

        stepwise = _cpu(_program(LOOP_SRC), uops_on=False,
                        config=FPVMConfig.seq_short(uops=False))
        stepwise.run()
        assert _fingerprint(chained) == _fingerprint(stepwise)
        # the chain either hit SLOW mid-trace or never formed across the
        # trap sites; both must be visible in telemetry, not silent.
        assert st["slow_fallbacks"] > 0

    def test_step_limit_reached_inside_chain(self):
        cpu = _cpu(_program(".text\nmain:\n  nop\nspin:\n  jmp spin\n"),
                   chain=True)
        with pytest.raises(MachineError):
            cpu.run(max_steps=500)

    def test_infinite_chain_respects_quantum_budget(self):
        cpu = _cpu(_program(".text\nmain:\n  nop\nspin:\n  jmp spin\n"),
                   chain=True)
        assert cpu.run_quantum(50) == 50
        assert not cpu.halted


class TestRootDemotion:
    def test_short_chains_demote_their_root(self):
        cpu = _cpu(_program(CALLRET_SRC), chain=True)
        cpu.run()
        st = cpu.uop_stats.as_dict()
        assert st["chain_demotions"] >= 1
        engine = cpu._uop_engine
        assert any(not b.chain_root for b in engine._blocks.values()
                   if b.chainable)
        # demotion is a host-side throttle only: results stay identical.
        seed = _cpu(_program(CALLRET_SRC), uops_on=False)
        seed.run()
        assert _fingerprint(cpu) == _fingerprint(seed)

    def test_budget_cuts_do_not_demote(self):
        """A quantum edge ends the trace, not the program's structure —
        chains cut by the budget must never blacklist their root."""
        cpu = _cpu(_program(LOOP_SRC), chain=True)
        while not cpu.halted:
            cpu.run_quantum(5)                    # < one body + tail
        st = cpu.uop_stats.as_dict()
        assert st["chain_breaks"].get("budget", 0) > 0
        assert st["chain_demotions"] == 0


THREADED_SRC = """
.data
k: .double 1.125
vals: .double 1.0, 2.0
n: .quad 60
.text
worker:
  ; rdi = slot index
  mov rcx, [rip + n]
  mov rbx, vals
  movsd xmm0, [rbx + rdi*8]
  movsd xmm1, [rip + k]
wtop:
  mulsd xmm0, xmm1
  subsd xmm0, xmm1
  dec rcx
  jne wtop
  movsd [rbx + rdi*8], xmm0
  ret

main:
  hlt
"""


class TestSharedCacheAcrossThreads:
    def test_threads_share_one_cache(self):
        proc = Process(_program(THREADED_SRC), uops=True, chain=True)
        proc.kernel = LinuxKernel()
        prog = proc.main.program
        proc.spawn(prog.symbols["worker"], 0)
        proc.spawn(prog.symbols["worker"], 1)
        for t in proc.threads:
            assert t._engine().cache is proc.sb_cache

    def test_patch_by_one_thread_invalidates_anothers_links(self):
        """The PR 3 gap chaining would have widened: thread B caches and
        links the worker loop, then the patch lands (as a promotion by
        thread A would).  B's very next dispatch must drop its links and
        honor the patch — without ever re-entering the engine loop
        between chained blocks."""
        proc = Process(_program(THREADED_SRC), uops=True, chain=True)
        proc.kernel = LinuxKernel()
        prog = proc.main.program
        tid_a = proc.spawn(prog.symbols["worker"], 0)
        tid_b = proc.spawn(prog.symbols["worker"], 1)
        thread_a, thread_b = proc.threads[tid_a], proc.threads[tid_b]

        # B runs a few quanta: the loop block is cached and self-linked.
        thread_b.run_quantum(40)
        assert thread_b.uop_stats.links_followed > 0

        # A (host-side stand-in for its promotion path) patches an
        # address inside the block B linked.
        wtop = prog.symbols["wtop"]
        body_addr = prog.by_addr[wtop].addr + prog.by_addr[wtop].size
        tramp = _Trampoline()
        prog.patch_call(body_addr, tramp)
        thread_a.run_quantum(10)

        before = proc.sb_cache.unlinks
        thread_b.run_quantum(40)
        assert tramp.calls > 0, (
            "thread B executed a stale chained block through thread A's "
            "patch site")
        assert proc.sb_cache.unlinks >= before
        assert proc.sb_cache.invalidations > 0
