"""JSON export/compare tests."""

import pytest

from repro.core.vm import FPVMConfig
from repro.harness import export
from repro.harness.configs import named_configs
from repro.harness.runner import run_comparison, run_fpvm, run_native


@pytest.fixture(scope="module")
def result():
    return run_fpvm("lorenz", FPVMConfig.seq_short(), "SEQ_SHORT", scale=40)


class TestSerialization:
    def test_result_round_trip(self, result, tmp_path):
        data = export.result_to_dict(result)
        path = tmp_path / "run.json"
        export.save_json(data, path)
        loaded = export.load_json(path)
        assert loaded == data

    def test_result_fields(self, result):
        data = export.result_to_dict(result)
        assert data["workload"] == "lorenz"
        assert data["config"] == "SEQ_SHORT"
        assert data["cycles"] == result.cycles
        assert data["ledger"]["altmath"] > 0
        assert data["traces"]  # stats were collected
        assert data["traces"][0]["count"] >= data["traces"][-1]["count"] or True
        lengths = [t["length"] for t in data["traces"]]
        assert all(isinstance(x, int) for x in lengths)

    def test_native_dict(self):
        native = run_native("lorenz", scale=20)
        data = export.native_to_dict(native)
        assert data["cycles"] == native.cycles
        assert data["output"] == native.output

    def test_comparison_dict(self):
        comp = run_comparison("fbench", named_configs(), scale=3)
        data = export.comparison_to_dict(comp)
        assert set(data["runs"]) == {"NONE", "SEQ", "SHORT", "SEQ_SHORT"}
        for name, slow in data["slowdowns"].items():
            assert slow == pytest.approx(comp.slowdown(name))
            assert data["lower_bound_slowdowns"][name] < slow

    def test_schema_check(self, tmp_path, result):
        data = export.result_to_dict(result)
        data["schema"] = 99
        path = tmp_path / "bad.json"
        export.save_json(data, path)
        with pytest.raises(ValueError, match="schema"):
            export.load_json(path)


class TestCompareRuns:
    def test_identical_runs_no_deltas(self, result):
        a = export.result_to_dict(result)
        b = export.result_to_dict(result)
        assert export.compare_runs(a, b) == []

    def test_detects_regression(self, result):
        a = export.result_to_dict(result)
        b = dict(a)
        b["cycles"] = int(a["cycles"] * 1.5)
        deltas = export.compare_runs(a, b)
        metrics = {d.metric for d in deltas}
        assert "cycles" in metrics
        cycle_delta = next(d for d in deltas if d.metric == "cycles")
        assert cycle_delta.ratio == pytest.approx(1.5)

    def test_detects_ledger_shift(self, result):
        a = export.result_to_dict(result)
        b = export.result_to_dict(result)
        b["ledger"] = dict(a["ledger"])
        b["ledger"]["gc"] = a["ledger"]["gc"] * 3 + 100
        deltas = export.compare_runs(a, b)
        assert any(d.metric == "ledger.gc" for d in deltas)

    def test_mismatched_runs_rejected(self, result):
        a = export.result_to_dict(result)
        b = dict(a)
        b["config"] = "NONE"
        with pytest.raises(ValueError, match="different"):
            export.compare_runs(a, b)

    def test_threshold_respected(self, result):
        a = export.result_to_dict(result)
        b = dict(a)
        b["cycles"] = int(a["cycles"] * 1.01)
        assert export.compare_runs(a, b, threshold=0.05) == []
        assert export.compare_runs(a, b, threshold=0.001)


class TestRealRunsAreReproducible:
    def test_same_workload_same_archive(self):
        r1 = run_fpvm("ffbench", FPVMConfig.seq_short(), "SEQ_SHORT", scale=8)
        r2 = run_fpvm("ffbench", FPVMConfig.seq_short(), "SEQ_SHORT", scale=8)
        a, b = export.result_to_dict(r1), export.result_to_dict(r2)
        assert export.compare_runs(a, b) == []
        assert a["output"] == b["output"]
