"""Unit tests for the figure generators against a synthetic Suite —
exercising the aggregation logic without full workload runs."""

import pytest

from repro.harness import figures
from repro.harness.runner import Comparison, FPVMResult, NativeResult
from repro.core.sequences import TraceStatistics


def make_result(workload, config, cycles, ledger, emulated, traps,
                stats=None) -> FPVMResult:
    full_ledger = {c: 0 for c in
                   ("hw", "kernel", "decache", "decode", "bind", "emul",
                    "altmath", "gc", "corr", "fcall", "ret")}
    full_ledger.update(ledger)
    return FPVMResult(
        workload=workload,
        config_name=config,
        cycles=cycles,
        output=["1.0"],
        ledger=full_ledger,
        emulated_instructions=emulated,
        traps=traps,
        avg_sequence_length=emulated / max(traps, 1),
        gc_runs=0,
        trace_stats=stats,
        telemetry=None,
        program=None,
    )


def make_stats(spec) -> TraceStatistics:
    """spec: list of (addrs, count, terminator, reason)."""
    stats = TraceStatistics()
    for addrs, count, term, reason in spec:
        for _ in range(count):
            stats.record(tuple(addrs), term, reason)
    return stats


class SyntheticSuite:
    """Duck-typed stand-in for figures.Suite."""

    def __init__(self, comparisons):
        self._comparisons = comparisons

    def comparison(self, workload):
        return self._comparisons[workload]


@pytest.fixture
def suite():
    stats = make_stats([
        ((0x100, 0x108, 0x110), 50, "inc", "unsupported"),   # len 3, hot
        ((0x200,), 10, "mulsd", "no_boxed_source"),          # len 1
        ((0x300, 0x308), 5, "movhpd", "unsupported"),        # len 2
    ])
    comp = Comparison(
        "lorenz",
        NativeResult("lorenz", cycles=1000, instructions=900, output=["1.0"]),
    )
    comp.runs["NONE"] = make_result(
        "lorenz", "NONE", 600_000,
        {"hw": 38_000, "kernel": 392_000, "ret": 180_000, "altmath": 20_000},
        emulated=100, traps=100)
    comp.runs["SEQ"] = make_result(
        "lorenz", "SEQ", 150_000,
        {"hw": 10_000, "kernel": 98_000, "ret": 45_000, "altmath": 20_000},
        emulated=170, traps=65, stats=stats)
    comp.runs["SHORT"] = make_result(
        "lorenz", "SHORT", 120_000,
        {"hw": 38_000, "kernel": 28_000, "ret": 10_000, "altmath": 20_000},
        emulated=100, traps=100)
    comp.runs["SEQ_SHORT"] = make_result(
        "lorenz", "SEQ_SHORT", 50_000,
        {"hw": 10_000, "kernel": 7_000, "ret": 2_500, "altmath": 20_000},
        emulated=170, traps=65, stats=stats)
    return SyntheticSuite({"lorenz": comp})


WORKLOADS = ("lorenz",)


class TestFigureMath:
    def test_figure1_amortizes_by_emulated(self, suite):
        data = figures.figure1(suite, WORKLOADS)
        assert data["lorenz"]["kernel"] == pytest.approx(3920.0)
        assert data["lorenz"]["hw"] == pytest.approx(380.0)

    def test_figure4_slowdowns(self, suite):
        data = figures.figure4(suite, WORKLOADS)
        assert data["lorenz"]["NONE"] == pytest.approx(600.0)
        assert data["lorenz"]["SEQ_SHORT"] == pytest.approx(50.0)

    def test_figure5_lower_bound(self, suite):
        data = figures.figure5(suite, WORKLOADS)
        # lower bound = native (1000) + altmath (20000) = 21000
        assert data["lorenz"]["SEQ_SHORT"] == pytest.approx(50_000 / 21_000)

    def test_figure6_speedups(self, suite):
        rows = figures.figure6(suite, WORKLOADS)["lorenz"]
        by = {r.config: r for r in rows}
        none_total = sum(by["NONE"].amortized.values())
        opt_total = sum(by["SEQ_SHORT"].amortized.values())
        assert by["SEQ_SHORT"].speedup_vs_none == pytest.approx(none_total / opt_total)
        assert by["NONE"].speedup_vs_none == pytest.approx(1.0)

    def test_figure8_cdf(self, suite):
        cdf = figures.figure8(suite, WORKLOADS)["lorenz"]
        # Contributions: 150, 10, 10 emulated instructions.
        assert cdf[0] == pytest.approx(100 * 150 / 170)
        assert cdf[-1] == pytest.approx(100.0)

    def test_figure9_length_cdf(self, suite):
        series = dict(figures.figure9(suite, WORKLOADS)["lorenz"])
        # 65 sequences: 10 of len 1, 5 of len 2, 50 of len 3.
        assert series[1] == pytest.approx(100 * 10 / 65)
        assert series[2] == pytest.approx(100 * 15 / 65)
        assert series[3] == pytest.approx(100.0)

    def test_figure10_sizing(self, suite):
        sizing = figures.figure10(suite, WORKLOADS)["lorenz"]
        stats_avg = 170 / 65
        assert sizing.average_length == pytest.approx(stats_avg)
        assert sizing.cache_entries == int(sizing.convergence_rank * stats_avg)

    def test_figure7_trace_requires_program(self, suite):
        # figure7 formats against the program; the synthetic suite has
        # none, so only check the ranked selection logic via stats.
        stats = suite.comparison("lorenz").runs["SEQ_SHORT"].trace_stats
        ranked = stats.by_popularity()
        assert ranked[0].addrs == (0x100, 0x108, 0x110)
        assert ranked[0].emulated_instructions == 150


class TestTraceStatisticsUnit:
    def test_weighted_by_rank_monotone_denominators(self):
        stats = make_stats([
            ((1, 2, 3, 4), 10, "x", "unsupported"),  # len 4
            ((5,), 30, "y", "unsupported"),          # len 1
        ])
        weighted = stats.weighted_length_by_rank()
        # top-1: 40/10 = 4.0; all: (40+30)/(10+30) = 1.75
        assert weighted[0] == pytest.approx(4.0)
        assert weighted[1] == pytest.approx(1.75)

    def test_empty_stats(self):
        stats = TraceStatistics()
        assert stats.rank_popularity_cdf() == []
        assert stats.length_cdf() == []
        assert stats.average_sequence_length() == 0.0

    def test_record_accumulates(self):
        stats = TraceStatistics()
        stats.record((1, 2), "a", "unsupported")
        stats.record((1, 2), "a", "unsupported")
        assert stats.traces[(1, 2)].count == 2
        assert stats.total_emulated() == 4
