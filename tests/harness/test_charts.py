"""ASCII chart renderer tests."""

import pytest

from repro.harness import charts
from repro.harness.figures import BreakdownRow
from repro.machine.costs import LEDGER_CATEGORIES


def sample_breakdown():
    return {
        "lorenz": {"hw": 380, "kernel": 3920, "ret": 1800, "altmath": 233,
                   "emul": 120, "bind": 30, "decache": 25},
        "fbench": {"hw": 380, "kernel": 3920, "ret": 1800, "altmath": 390,
                   "emul": 120, "bind": 30, "decache": 25, "fcall": 52},
    }


class TestStackedBar:
    def test_proportionality(self):
        bar = charts.stacked_bar({"kernel": 75, "ret": 25}, scale=1.0, width=100)
        assert bar.count("K") == 75
        assert bar.count("r") == 25

    def test_small_nonzero_slices_visible(self):
        bar = charts.stacked_bar({"kernel": 1000, "corr": 0.4}, scale=0.01, width=40)
        assert "c" in bar  # rounded up to one cell

    def test_zero_slices_absent(self):
        bar = charts.stacked_bar({"kernel": 10, "gc": 0.0}, scale=1.0, width=40)
        assert "g" not in bar

    def test_width_capped(self):
        bar = charts.stacked_bar({"kernel": 1000}, scale=1.0, width=20)
        assert len(bar) == 20

    def test_category_order_matches_figures(self):
        bar = charts.stacked_bar(
            {"ret": 5, "hw": 5, "kernel": 5}, scale=1.0, width=60
        )
        assert bar.index("#") < bar.index("K") < bar.index("r")


class TestBreakdownChart:
    def test_renders_all_workloads(self):
        text = charts.breakdown_chart(sample_breakdown(), "Figure 1")
        assert "Lorenz" in text and "fbench" in text
        assert "legend:" in text

    def test_totals_annotated(self):
        text = charts.breakdown_chart(sample_breakdown(), "t")
        assert "6508" in text or "6507" in text  # lorenz total

    def test_shared_scale(self):
        text = charts.breakdown_chart(sample_breakdown(), "t", width=60)
        bars = [l.split("|")[1] for l in text.splitlines() if "|" in l]
        longest = max(len(b.split("  ")[0]) for b in bars)
        assert longest <= 60 + len("  6717")


class TestConfigChart:
    def test_speedups_annotated(self):
        rows = {
            "lorenz": [
                BreakdownRow("NONE", {"kernel": 3920, "ret": 1800}, 1.0),
                BreakdownRow("SEQ_SHORT", {"kernel": 26, "altmath": 86}, 31.2),
            ]
        }
        text = charts.breakdown_by_config_chart(rows, "Figure 6")
        assert "(31.2x)" in text
        assert "NONE" in text and "SEQ_SHORT" in text


class TestSlowdownChart:
    DATA = {
        "lorenz": {"NONE": 919.4, "SEQ": 134.1, "SHORT": 166.5, "SEQ_SHORT": 80.1},
        "fbench": {"NONE": 141.8, "SEQ": 91.3, "SHORT": 29.7, "SEQ_SHORT": 27.5},
    }

    def test_renders(self):
        text = charts.slowdown_chart(self.DATA, "Figure 4")
        assert "919.4x" in text
        assert "log scale" in text

    def test_log_scale_orders_bars(self):
        text = charts.slowdown_chart(self.DATA, "t", width=50)
        def bar_len(cfg):
            for line in text.splitlines():
                if cfg in line and "|" in line:
                    return line.split("|")[1].count("=")
            raise AssertionError(cfg)
        assert bar_len("NONE") > bar_len("SEQ_SHORT")

    def test_linear_scale(self):
        text = charts.slowdown_chart(self.DATA, "t", log=False)
        assert "linear scale" in text


class TestLegendCoversEveryCategory:
    def test_fill_map_total(self):
        assert set(charts.CATEGORY_FILL) == set(LEDGER_CATEGORIES)
        assert len(set(charts.CATEGORY_FILL.values())) == len(LEDGER_CATEGORIES)
