"""Harness tests: runner, comparisons, figure generators, reports.

Uses small scales so the whole module stays fast; the benchmarks run
the full-size versions.
"""

import pytest

from repro.harness import figures, report
from repro.harness.configs import CONFIG_ORDER, named_configs
from repro.harness.runner import run_comparison, run_fpvm, run_native
from repro.core.vm import FPVMConfig

SMALL_SCALES = {
    "lorenz": 60,
    "three_body": 16,
    "double_pendulum": 20,
    "fbench": 4,
    "ffbench": 8,
    "enzo": 12,
}


@pytest.fixture(scope="module")
def suite():
    return figures.Suite("boxed_ieee", scale_overrides=SMALL_SCALES)


class TestRunner:
    def test_native_result(self):
        r = run_native("lorenz", scale=30)
        assert r.cycles > 0 and r.instructions > 0 and r.output

    def test_fpvm_result_fields(self):
        r = run_fpvm("lorenz", FPVMConfig.seq_short(), "SEQ_SHORT", scale=30)
        assert r.traps > 0
        assert r.emulated_instructions > 0
        assert r.ledger["altmath"] > 0
        assert r.config_name == "SEQ_SHORT"

    def test_config_label_inferred(self):
        r = run_fpvm("lorenz", FPVMConfig.seq(), scale=30)
        assert r.config_name == "SEQ"

    def test_comparison_all_configs(self):
        comp = run_comparison("lorenz", named_configs(), scale=30)
        assert set(comp.runs) == set(CONFIG_ORDER)
        for c in CONFIG_ORDER:
            assert comp.slowdown(c) > 1.0

    def test_comparison_outputs_bit_for_bit(self):
        comp = run_comparison("enzo", named_configs(), scale=12)
        for c in CONFIG_ORDER:
            assert comp.runs[c].output == comp.native.output

    def test_lower_bound_below_total(self):
        comp = run_comparison("lorenz", named_configs(), scale=30)
        for c in CONFIG_ORDER:
            assert 1.0 < comp.slowdown_from_lower_bound(c) < comp.slowdown(c)


class TestFigureShapes:
    """The qualitative claims each figure makes must hold."""

    def test_fig1_kernel_dominates_baseline(self, suite):
        data = figures.figure1(suite)
        for w, am in data.items():
            assert am["kernel"] + am["ret"] + am["hw"] > 0.5 * sum(am.values()), w

    def test_fig4_each_technique_helps(self, suite):
        data = figures.figure4(suite)
        for w, cfgs in data.items():
            assert cfgs["SEQ"] < cfgs["NONE"], w
            assert cfgs["SHORT"] < cfgs["NONE"], w
            assert cfgs["SEQ_SHORT"] <= 1.2 * min(cfgs["SEQ"], cfgs["SHORT"]), w

    def test_fig4_order_of_magnitude_reduction(self, suite):
        """Paper: average 7.2x reduction NONE -> SEQ_SHORT."""
        data = figures.figure4(suite)
        reductions = [cfgs["NONE"] / cfgs["SEQ_SHORT"] for cfgs in data.values()]
        assert sum(reductions) / len(reductions) > 4

    def test_fig5_approaches_lower_bound(self, suite):
        data = figures.figure5(suite)
        for w, cfgs in data.items():
            assert cfgs["SEQ_SHORT"] < 6, (w, cfgs)
            assert cfgs["SEQ_SHORT"] < cfgs["NONE"] / 3

    def test_fig6_altmath_grows_with_optimizations(self, suite):
        data = figures.figure6(suite)
        for w, rows in data.items():
            by_cfg = {r.config: r for r in rows}
            frac_none = by_cfg["NONE"].amortized["altmath"] / sum(
                by_cfg["NONE"].amortized.values()
            )
            frac_opt = by_cfg["SEQ_SHORT"].amortized["altmath"] / sum(
                by_cfg["SEQ_SHORT"].amortized.values()
            )
            assert frac_opt > 3 * frac_none, w

    def test_fig6_speedups_annotated(self, suite):
        data = figures.figure6(suite)
        for rows in data.values():
            by_cfg = {r.config: r for r in rows}
            assert by_cfg["NONE"].speedup_vs_none == pytest.approx(1.0)
            assert by_cfg["SEQ_SHORT"].speedup_vs_none > 3

    def test_fig7_trace_dump(self, suite):
        text = figures.figure7(suite, "lorenz", rank=2)
        assert "trace rank 3" in text
        assert "terminator" in text

    def test_fig8_cdfs_reach_100(self, suite):
        for w, series in figures.figure8(suite).items():
            assert series[-1] == pytest.approx(100.0), w

    def test_fig9_lengths(self, suite):
        for w, series in figures.figure9(suite).items():
            assert series, w
            lengths = [l for l, _ in series]
            assert min(lengths) >= 1

    def test_fig10_cache_sizing_small(self, suite):
        """§6.3: trace caches stay tiny (paper: <2000 entries, <2MB)."""
        for w, sizing in figures.figure10(suite).items():
            assert sizing.cache_entries < 2000, w
            assert sizing.cache_bytes < 2 * 1024 * 1024

    def test_trap_microbenchmark_matches_paper_constants(self):
        t = figures.trap_microbenchmark()
        assert t.hw_trap == pytest.approx(380, rel=0.05)
        assert t.signal_delivery == pytest.approx(3920, rel=0.1)
        assert t.sigreturn == pytest.approx(1800, rel=0.05)
        assert 6 < t.delegation_reduction < 20  # paper: ~8x
        assert 5 < t.total_reduction < 12       # paper: 5980 -> ~760

    def test_fig3_magic_traps_cheaper(self):
        costs = figures.figure3()
        assert costs.reduction > 10  # paper: 14-120x

    def test_profiler_vs_static(self):
        rows = figures.profiler_vs_static(("three_body", "enzo"))
        for r in rows:
            assert r.profiler_subset
            assert r.profiler_sites <= r.static_sites


class TestReports:
    def test_render_breakdown(self, suite):
        text = report.render_breakdown(figures.figure1(suite), "Figure 1")
        assert "Lorenz" in text and "altmath" in text and "kernel" in text

    def test_render_slowdown(self, suite):
        text = report.render_slowdown(figures.figure4(suite), "Figure 4")
        assert "NONE" in text and "SEQ_SHORT" in text and "x" in text

    def test_render_breakdown_by_config(self, suite):
        text = report.render_breakdown_by_config(figures.figure6(suite), "Figure 6")
        assert "speedup" in text

    def test_render_cdf(self, suite):
        text = report.render_cdf(figures.figure8(suite), "Figure 8", "rank")
        assert "%" in text

    def test_render_length_cdf(self, suite):
        text = report.render_length_cdf(figures.figure9(suite), "Figure 9")
        assert "<=" in text

    def test_render_cache_sizing(self, suite):
        text = report.render_cache_sizing(figures.figure10(suite), "Figure 10")
        assert "entries" in text

    def test_render_trap_costs(self):
        text = report.render_trap_costs(figures.trap_microbenchmark(), "Trap costs")
        assert "sigreturn" in text and "reduction" in text

    def test_render_magic(self):
        text = report.render_magic_costs(figures.figure3(), "Figure 3")
        assert "magic" in text

    def test_render_patch_sites(self):
        text = report.render_patch_sites(
            figures.profiler_vs_static(("three_body",)), "patch sites"
        )
        assert "yes" in text


class TestMPFRSuite:
    def test_mpfr_figures_run(self):
        tiny = {k: max(v // 2, 4) for k, v in SMALL_SCALES.items()}
        tiny["ffbench"] = 8
        suite = figures.Suite("mpfr", scale_overrides=tiny)
        data = figures.figure5(suite, workloads=("lorenz", "fbench"))
        for w, cfgs in data.items():
            assert cfgs["SEQ_SHORT"] < cfgs["NONE"]

    def test_mpfr_closer_to_lower_bound_than_boxed(self):
        """§6.4: as intrinsic altmath cost grows, FPVM's slowdown
        approaches the lower bound."""
        scales = {"lorenz": 60}
        boxed = figures.Suite("boxed_ieee", scale_overrides=scales)
        mpfr = figures.Suite("mpfr", scale_overrides=scales)
        b = figures.figure5(boxed, workloads=("lorenz",))["lorenz"]["SEQ_SHORT"]
        m = figures.figure5(mpfr, workloads=("lorenz",))["lorenz"]["SEQ_SHORT"]
        assert m < b
