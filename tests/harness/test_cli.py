"""CLI tests (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "lorenz"])
        assert args.config == "seq_short"
        assert args.altmath == "boxed_ieee"
        assert args.scale is None

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "spec2017"])

    def test_run_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "lorenz", "--config", "warp"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lorenz" in out and "boxed_ieee" in out

    def test_run_small(self, capsys):
        assert main(["run", "lorenz", "--scale", "30"]) == 0
        out = capsys.readouterr().out
        assert "bit-for-bit:        True" in out
        assert "slowdown:" in out
        assert "altmath" in out

    def test_run_with_config_and_altmath(self, capsys):
        assert main(["run", "fbench", "--scale", "2",
                     "--config", "none", "--altmath", "posit"]) == 0
        out = capsys.readouterr().out
        assert "NONE, posit" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "lorenz", "--scale", "30", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "rank 1:" in out
        assert "avg length" in out

    def test_characterize_verbose(self, capsys):
        assert main(["characterize", "lorenz", "--scale", "20",
                     "--top", "1", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "terminator" in out

    def test_figures_writes_files(self, tmp_path, capsys):
        # The figure suite at full scale is a benchmark; here only check
        # the plumbing with the cheap microbench by monkeypatching scale
        # would be invasive — run the real thing is too slow for a unit
        # test, so only verify the parser wiring.
        args = build_parser().parse_args(
            ["figures", "--skip-mpfr", "--out", str(tmp_path)]
        )
        assert args.skip_mpfr and args.out == str(tmp_path)
