"""NaN-boxing and allocator/GC tests (§2.2, §2.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import nanbox
from repro.core.alloc import BoxAllocator
from repro.fpu import bits as B
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU


class TestBoxing:
    def test_round_trip(self):
        bits = nanbox.box_bits(0x1234)
        ptr, negated = nanbox.unbox(bits)
        assert ptr == 0x1234
        assert not negated

    def test_boxed_is_signaling_nan(self):
        bits = nanbox.box_bits(0x10000000)
        assert B.is_snan(bits)

    def test_negation_convention(self):
        bits = nanbox.box_bits(0x42) ^ B.F64_SIGN_MASK  # native xorpd flip
        assert nanbox.is_boxed(bits)
        ptr, negated = nanbox.unbox(bits)
        assert ptr == 0x42
        assert negated

    def test_pointer_width_enforced(self):
        with pytest.raises(ValueError):
            nanbox.box_bits(1 << nanbox.NANBOX_PTR_BITS)

    def test_unbox_rejects_non_boxes(self):
        with pytest.raises(ValueError):
            nanbox.unbox(B.float_to_bits(1.0))

    def test_canonical_nan_not_boxed(self):
        assert not nanbox.is_boxed(B.CANONICAL_QNAN)

    def test_application_snan_not_boxed(self):
        # Wrong magic signature.
        assert not nanbox.is_boxed(B.make_snan(1))

    @given(st.floats(allow_nan=False, width=64))
    @settings(max_examples=100, deadline=None)
    def test_ordinary_doubles_never_boxed(self, x):
        assert not nanbox.is_boxed(B.float_to_bits(x))

    def test_classify_ours_vs_theirs(self):
        alloc = BoxAllocator()
        ptr = alloc.alloc(object())
        ours = nanbox.box_bits(ptr)
        assert nanbox.classify_nan(ours, alloc) == "ours"
        assert nanbox.classify_nan(B.CANONICAL_QNAN, alloc) == "theirs"
        # Right signature, but a pointer the allocator never handed out.
        fake = nanbox.box_bits(ptr + 0x9999)
        assert nanbox.classify_nan(fake, alloc) == "theirs"
        assert nanbox.classify_nan(B.float_to_bits(1.0), alloc) == "not_nan"


class TestAllocator:
    def test_alloc_load(self):
        alloc = BoxAllocator()
        ptr = alloc.alloc(3.5)
        assert alloc.load(ptr) == 3.5
        assert alloc.owns(ptr)

    def test_distinct_pointers(self):
        alloc = BoxAllocator()
        ptrs = [alloc.alloc(i) for i in range(100)]
        assert len(set(ptrs)) == 100

    def test_pointers_fit_in_box(self):
        alloc = BoxAllocator()
        for _ in range(1000):
            ptr = alloc.alloc(0)
            nanbox.box_bits(ptr)  # must not raise

    def test_needs_gc_threshold(self):
        alloc = BoxAllocator(gc_threshold=10)
        for _ in range(9):
            alloc.alloc(0)
        assert not alloc.needs_gc()
        alloc.alloc(0)
        assert alloc.needs_gc()

    def test_free_list_reuse(self):
        alloc = BoxAllocator()
        cpu = _bare_cpu()
        ptr = alloc.alloc(1.0)  # unreferenced anywhere
        alloc.collect(cpu, reg_roots=[])
        ptr2 = alloc.alloc(2.0)
        assert ptr2 == ptr  # recycled


def _bare_cpu() -> CPU:
    return CPU(assemble("main:\n  hlt\n"))


class TestGC:
    def test_register_root_survives(self):
        alloc = BoxAllocator()
        cpu = _bare_cpu()
        ptr = alloc.alloc("live")
        cpu.regs.write_xmm_lane(3, 0, nanbox.box_bits(ptr))
        collected, _ = alloc.collect(cpu)
        assert collected == 0
        assert alloc.owns(ptr)

    def test_gpr_root_survives(self):
        alloc = BoxAllocator()
        cpu = _bare_cpu()
        ptr = alloc.alloc("live")
        cpu.regs.write_gpr(5, nanbox.box_bits(ptr))
        alloc.collect(cpu)
        assert alloc.owns(ptr)

    def test_memory_root_survives(self):
        alloc = BoxAllocator()
        cpu = _bare_cpu()
        ptr = alloc.alloc("live")
        cpu.mem.write_u64(0x600100, nanbox.box_bits(ptr))
        collected, pages = alloc.collect(cpu)
        assert alloc.owns(ptr)
        assert pages >= 1

    def test_unreferenced_collected(self):
        alloc = BoxAllocator()
        cpu = _bare_cpu()
        ptrs = [alloc.alloc(i) for i in range(50)]
        keep = ptrs[7]
        cpu.regs.write_xmm_lane(0, 0, nanbox.box_bits(keep))
        collected, _ = alloc.collect(cpu)
        assert collected == 49
        assert alloc.owns(keep)
        assert alloc.live_count == 1

    def test_negated_box_still_marked(self):
        # A sign-flipped box (native xorpd) must still be treated live.
        alloc = BoxAllocator()
        cpu = _bare_cpu()
        ptr = alloc.alloc("live")
        cpu.mem.write_u64(0x600108, nanbox.box_bits(ptr) | B.F64_SIGN_MASK)
        alloc.collect(cpu)
        assert alloc.owns(ptr)

    def test_readonly_pages_not_scanned(self):
        # Text pages are read+exec: a box pattern there must NOT keep an
        # object alive (and in exchange the GC never scans them).
        alloc = BoxAllocator()
        cpu = _bare_cpu()
        ptr = alloc.alloc("dead")
        from repro.machine.memory import PROT_READ

        cpu.mem.map_page(0x900000)
        cpu.mem.write_u64(0x900000, nanbox.box_bits(ptr))
        cpu.mem.protect(0x900000, PROT_READ)
        collected, _ = alloc.collect(cpu, reg_roots=[])
        assert collected == 1

    def test_gc_counter_reset(self):
        alloc = BoxAllocator(gc_threshold=5)
        cpu = _bare_cpu()
        for _ in range(5):
            alloc.alloc(0)
        assert alloc.needs_gc()
        alloc.collect(cpu, reg_roots=[])
        assert not alloc.needs_gc()

    @given(st.sets(st.integers(min_value=0, max_value=199), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_property_live_never_collected(self, live_indices):
        """No referenced box is ever freed; every unreferenced box is."""
        alloc = BoxAllocator()
        cpu = _bare_cpu()
        ptrs = [alloc.alloc(i) for i in range(200)]
        addr = 0x600000
        for i in sorted(live_indices):
            cpu.mem.write_u64(addr, nanbox.box_bits(ptrs[i]))
            addr += 8
        collected, _ = alloc.collect(cpu, reg_roots=[])
        assert collected == 200 - len(live_indices)
        for i, ptr in enumerate(ptrs):
            assert alloc.owns(ptr) == (i in live_indices)
