"""Sequence emulation and trace statistics tests (§4, §6.3)."""

import pytest

from repro.core.decode_cache import DecodeCache
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.decoder import decode_instruction
from repro.machine.hostlib import install_host_library


def run_fpvm(source: str, config: FPVMConfig):
    prog = assemble(source)
    install_host_library(prog)
    cpu = CPU(prog)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(config).attach(cpu, kernel)
    cpu.run()
    return cpu, vm


# A loop with a long run of emulatable FP instructions, a movhpd
# terminator mid-stream, and more FP work after it.
MOVHPD_SRC = """
.data
a: .double 0.1
b: .double 0.7
pair: .double 0.3, 0.9
n: .quad 30
.text
main:
  mov rcx, [rip + n]
  movsd xmm0, [rip + a]
  movsd xmm1, [rip + b]
top:
  addsd xmm0, [rip + b]
  mulsd xmm0, [rip + a]
  movsd xmm2, xmm0
  subsd xmm2, [rip + b]
  movhpd xmm1, [rip + pair]   ; unsupported partial move: terminator
  mulsd xmm2, [rip + b]
  dec rcx
  jne top
  call print_f64
  hlt
"""


class TestSequenceTermination:
    def test_movhpd_terminates_sequences(self):
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        stats = vm.trace_stats
        reasons = {r.reason for r in stats.traces.values()}
        assert "unsupported" in reasons
        terms = {r.terminator for r in stats.traces.values()}
        assert "movhpd" in terms

    def test_control_flow_bounds_traces(self):
        """Sequences never cross basic-block boundaries."""
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        prog_branches = {"jne", "jmp", "call", "ret", "je"}
        for rec in vm.trace_stats.traces.values():
            # no emulated address is a control-flow instruction
            for addr in rec.addrs:
                assert vm.program.by_addr[addr].mnemonic not in prog_branches

    def test_trace_resumes_and_refaults(self):
        """After a movhpd terminator the next mulsd faults again and
        starts a new trace there (the W-refaults case of §4.2)."""
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        starts = {r.addrs[0] for r in vm.trace_stats.traces.values() if r.addrs}
        assert len(starts) >= 2

    def test_single_mode_has_length_one(self):
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.short(collect_trace_stats=True))
        for rec in vm.trace_stats.traces.values():
            assert rec.length == 1


class TestTraceStatistics:
    def test_popularity_ranking(self):
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        ranked = vm.trace_stats.by_popularity()
        contribs = [r.emulated_instructions for r in ranked]
        assert contribs == sorted(contribs, reverse=True)

    def test_rank_popularity_cdf_monotone_to_100(self):
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        cdf = vm.trace_stats.rank_popularity_cdf()
        assert all(a <= b + 1e-9 for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == pytest.approx(100.0)

    def test_length_cdf(self):
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        cdf = vm.trace_stats.length_cdf()
        assert cdf[-1][1] == pytest.approx(100.0)
        lengths = [l for l, _ in cdf]
        assert lengths == sorted(lengths)

    def test_weighted_length_converges_to_average(self):
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        stats = vm.trace_stats
        weighted = stats.weighted_length_by_rank()
        assert weighted[-1] == pytest.approx(stats.average_sequence_length())

    def test_average_matches_telemetry(self):
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        assert vm.trace_stats.average_sequence_length() == pytest.approx(
            vm.telemetry.avg_sequence_length
        )

    def test_format_trace_marks_terminator(self):
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        rec = next(
            r for r in vm.trace_stats.by_popularity() if r.terminator == "movhpd"
        )
        text = vm.trace_stats.format_trace(rec, vm.program)
        assert "movhpd" in text
        assert "terminator" in text


class TestTraceCacheBehaviour:
    def test_repeat_encounters_hit_cache(self):
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        # 30 loop iterations; distinct instructions decoded once each.
        assert vm.telemetry.decode_misses < 12
        assert vm.decode_cache.hit_rate > 0.8

    def test_terminator_inserted_into_cache(self):
        """§4.2: the sequence-terminating instruction goes into the
        decode cache too."""
        _, vm = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        movhpd_addr = next(
            i.addr for i in vm.program.instructions if i.mnemonic == "movhpd"
        )
        assert movhpd_addr in vm.decode_cache

    def test_tiny_cache_still_correct(self):
        cpu_small, _ = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short(decode_cache_capacity=2))
        cpu_big, _ = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        assert cpu_small.output == cpu_big.output

    def test_tiny_cache_costs_more_decode(self):
        _, vm_small = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short(decode_cache_capacity=2))
        _, vm_big = run_fpvm(MOVHPD_SRC, FPVMConfig.seq_short())
        assert vm_small.ledger.by_category["decode"] > vm_big.ledger.by_category["decode"]


class TestDecodeCacheUnit:
    def test_lru_eviction(self):
        cache = DecodeCache(capacity=2)
        prog = assemble("main:\n  mov rax, 1\n  mov rbx, 2\n  mov rcx, 3\n  hlt\n")
        i0, i1, i2 = prog.instructions[:3]
        cache.decode_miss(i0.addr, i0.raw)
        cache.decode_miss(i1.addr, i1.raw)
        assert cache.lookup(i0.addr) is not None  # refresh i0
        cache.decode_miss(i2.addr, i2.raw)        # evicts i1 (LRU)
        assert i1.addr not in cache
        assert i0.addr in cache and i2.addr in cache

    def test_hit_and_miss_counts(self):
        cache = DecodeCache()
        prog = assemble("main:\n  addsd xmm0, xmm1\n  hlt\n")
        instr = prog.instructions[0]
        assert cache.lookup(instr.addr) is None
        cache.decode_miss(instr.addr, instr.raw)
        assert cache.lookup(instr.addr) is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_decoded_equals_original_semantics(self):
        prog = assemble("main:\n  addsd xmm0, xmm1\n  hlt\n")
        instr = prog.instructions[0]
        decoded = decode_instruction(instr.raw, addr=instr.addr)
        assert decoded.mnemonic == instr.mnemonic
        assert decoded.size == instr.size

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DecodeCache(0)


class TestNoBoxedSourceRule:
    def test_unboxed_fp_op_stops_sequence(self):
        """An exact FP op (no trap, no boxed sources) following the
        faulting one terminates the sequence with no_boxed_source."""
        src = """
.data
a: .double 0.1
b: .double 0.2
c: .double 1.0
d: .double 2.0
.text
main:
  movsd xmm0, [rip + a]
  movsd xmm1, [rip + c]
  addsd xmm0, [rip + b]    ; faults (inexact): sequence starts
  movsd xmm2, xmm0         ; move: emulated
  addsd xmm1, [rip + d]    ; exact, no boxed source: rule (2) stop
  call print_f64
  hlt
"""
        cpu, vm = run_fpvm(src, FPVMConfig.seq_short())
        reasons = {r.reason for r in vm.trace_stats.traces.values()}
        assert "no_boxed_source" in reasons
        # xmm1 was computed natively (3.0 exactly).
        from repro.fpu import bits as B

        assert cpu.regs.xmm[1][0] == B.float_to_bits(3.0)
