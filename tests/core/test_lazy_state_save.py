"""Regression tests for §3.1 clobber-masked handler state save.

``lazy_state_save`` must remain a *behavioural* mode — saving only the
trapped instruction's declared clobber set — not degrade back into a
cost-only knob that merely charges a cheaper entry fee.  The
``fp_scribble_mask`` seam models handler host code trashing XMM
registers: lanes inside the save set must come back, lanes outside it
must observably stay trashed under the lazy discipline (that asymmetry
is exactly what a save-everything degradation would erase)."""

import pytest

from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library

DEADBEEF = 0xDEAD_BEEF_DEAD_BEEF

SRC = """
.data
a: .double 1.5
b: .double 2.25
.text
main:
  movsd xmm0, [rip + a]
  movsd xmm1, [rip + b]
  addsd xmm0, xmm1
  call print_f64
  hlt
"""

#: xmm15 (both lanes, never an operand) plus xmm0's high lane (inside
#: addsd's clobber set, never written by scalar emulation).
SCRIBBLE = (1 << 31) | (1 << 30) | (1 << 1)


def _run(lazy: bool, scribble: int = 0):
    prog = assemble(SRC)
    install_host_library(prog)
    cpu = CPU(prog)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(FPVMConfig(trap_all_fp=True, lazy_state_save=lazy))
    vm.attach(cpu, kernel)
    vm.fp_scribble_mask = scribble
    cpu.run()
    return cpu, vm


def test_lazy_save_is_masked_not_cost_only():
    ref_cpu, _ = _run(lazy=True)
    lazy_cpu, lazy_vm = _run(lazy=True, scribble=SCRIBBLE)
    eager_cpu, eager_vm = _run(lazy=False, scribble=SCRIBBLE)

    # The guest-visible result survives the trashing in both modes.
    assert lazy_cpu.output == ref_cpu.output
    assert eager_cpu.output == ref_cpu.output

    # Clobber-set lanes are protected: xmm0's high lane was scribbled
    # inside addsd's save set, so the exit stub put it back.
    assert lazy_cpu.regs.xmm[0] == ref_cpu.regs.xmm[0]
    assert lazy_cpu.regs.xmm[1] == ref_cpu.regs.xmm[1]

    # The degradation canary: xmm15 is outside every clobber set, so a
    # genuinely masked save leaves the trashing visible.  If lazy mode
    # quietly saved all 32 lanes again, these would be restored and
    # this assertion is the one that fails.
    assert lazy_cpu.regs.xmm[15] == [DEADBEEF, DEADBEEF]

    # Eager mode saves everything, so the same trashing is invisible.
    assert eager_cpu.regs.xmm[15] == ref_cpu.regs.xmm[15]

    # And the ledger must show the asymmetry: the one arithmetic trap
    # (addsd — plain movsd data movement never traps) saves its 4
    # operand lanes lazily vs. the full 32-lane bank eagerly.
    assert lazy_vm.telemetry.traps == eager_vm.telemetry.traps == 1
    lazy_saved = lazy_vm.ledger.counters["fp_handler_lanes_saved"]
    eager_saved = eager_vm.ledger.counters["fp_handler_lanes_saved"]
    assert lazy_saved == 4
    assert eager_saved == 32
    assert lazy_vm.ledger.counters["fp_handler_lanes_restored"] <= lazy_saved


def test_handler_entry_cost_still_differs():
    """The cost side of the knob rides along with the behavioural side:
    a lazy trap charges the cheap entry stub."""
    _, lazy_vm = _run(lazy=True)
    _, eager_vm = _run(lazy=False)
    assert lazy_vm.costs.handler_entry_lazy < eager_vm.costs.handler_entry
    assert (lazy_vm.ledger.by_category["emul"]
            < eager_vm.ledger.by_category["emul"])


LIBM_SRC = """
.data
x: .double 0.5
.text
main:
  movsd xmm0, [rip + x]
  call sin
  call print_f64
  hlt
"""


def test_wrapper_guard_is_masked_too():
    """Foreign-function wrappers declare per-signature clobber masks:
    a unary libm call saves its argument/result lanes lazily instead of
    the whole bank, with identical guest output."""
    outs, saved = {}, {}
    for lazy in (True, False):
        prog = assemble(LIBM_SRC)
        install_host_library(prog)
        cpu = CPU(prog)
        kernel = LinuxKernel()
        cpu.kernel = kernel
        vm = FPVM(FPVMConfig(lazy_state_save=lazy))
        vm.attach(cpu, kernel)
        cpu.run()
        outs[lazy] = cpu.output
        saved[lazy] = vm.ledger.counters.get("fp_wrapper_lanes_saved", 0)
    assert outs[True] == outs[False]
    assert 0 < saved[True] < saved[False]
