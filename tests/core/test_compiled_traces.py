"""The compiled-trace tier of the sequence emulator: promotion at the
heat threshold, bit-identical replay, the disable knobs, and eviction
when the program's patch state changes."""

from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library


# A tight loop whose emulated trace is identical every iteration, so
# the heat counter reaches any small threshold quickly.
LOOP_SRC = """
.data
a: .double 0.1
b: .double 0.7
n: .quad 40
.text
main:
  mov rcx, [rip + n]
  movsd xmm0, [rip + a]
top:
  addsd xmm0, [rip + b]
  mulsd xmm0, [rip + a]
  subsd xmm0, [rip + b]
  dec rcx
  jne top
  call print_f64
  hlt
"""


def run_fpvm(source: str, config: FPVMConfig):
    prog = assemble(source)
    install_host_library(prog)
    cpu = CPU(prog)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(config).attach(cpu, kernel)
    cpu.run()
    return cpu, vm


def _summary(cpu, vm):
    t = vm.telemetry
    return (
        cpu.cycles, cpu.instruction_count, tuple(cpu.output),
        cpu.fp_trap_count, cpu.bp_trap_count,
        t.sequences, t.emulated_instructions, t.traps,
        t.decode_hits, t.decode_misses,
        vm.ledger.snapshot(),
    )


class TestPromotion:
    def test_hot_trace_promoted_and_replayed(self):
        cpu, vm = run_fpvm(LOOP_SRC, FPVMConfig.seq_short(trace_compile_threshold=2))
        t = vm.telemetry
        assert t.compiled_traces >= 1
        assert t.compiled_trace_hits > 0
        assert vm.sequencer.compiled
        trace = next(iter(vm.sequencer.compiled.values()))
        assert trace.hits > 0
        assert len(trace.steps) >= 2

    def test_threshold_zero_disables_tier(self):
        _, vm = run_fpvm(LOOP_SRC, FPVMConfig.seq_short(trace_compile_threshold=0))
        assert vm.telemetry.compiled_traces == 0
        assert vm.telemetry.compiled_trace_hits == 0
        assert not vm.sequencer.compiled

    def test_uops_off_disables_promotion(self):
        _, vm = run_fpvm(
            LOOP_SRC,
            FPVMConfig.seq_short(uops=False, trace_compile_threshold=2),
        )
        assert vm.uops_enabled is False
        assert vm.telemetry.compiled_traces == 0


class TestReplayEquivalence:
    def test_compiled_tier_bit_identical(self):
        """Everything the simulation model observes — cycles, ledger,
        trap counts, decode-cache traffic, sequence records — must be
        unchanged by which tier ran the traces."""
        base_cpu, base_vm = run_fpvm(
            LOOP_SRC, FPVMConfig.seq_short(trace_compile_threshold=0))
        fast_cpu, fast_vm = run_fpvm(
            LOOP_SRC, FPVMConfig.seq_short(trace_compile_threshold=2))
        assert fast_vm.telemetry.compiled_trace_hits > 0  # the tier ran
        assert _summary(base_cpu, base_vm) == _summary(fast_cpu, fast_vm)


class TestEviction:
    def test_patch_mid_trace_evicts_compiled_trace(self):
        """Regression: an int3 planted inside an already-compiled trace
        must fire on the next run.  A stale compiled trace would emulate
        straight through the patch site (replay skips patch lookups by
        design), so the epoch flush is the only thing standing between
        us and a silently skipped correctness hook."""
        cpu, vm = run_fpvm(LOOP_SRC, FPVMConfig.seq_short(trace_compile_threshold=2))
        assert vm.sequencer.compiled
        trace = next(iter(vm.sequencer.compiled.values()))
        mid_addr = trace.steps[1][0]  # strictly inside the trace body

        assert cpu.bp_trap_count == 0
        vm.program.patch_int3(mid_addr)

        cpu.halted = False
        cpu.resume_at(vm.program.entry)
        cpu.run()

        assert cpu.bp_trap_count > 0, (
            "int3 never fired: a stale compiled trace ran through the "
            "patch site"
        )
        # The sequencer saw the new epoch and dropped the old tier.  The
        # patched address may legitimately re-appear as a trace *entry*
        # (the CPU delivers the int3 before the FP trap there) but never
        # again strictly inside a trace body.
        assert vm.sequencer._epoch == vm.program.patch_epoch
        assert mid_addr not in {
            a for t in vm.sequencer.compiled.values() for a, _ in t.steps[1:]
        }
