"""Tests for the paper's extension/future-work features implemented
here: FMA, trap-everything decreased precision (§2.3), lazy state save
(§3.1), and bounded slash-rational arithmetic."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.altmath import get_altmath
from repro.compiler import Bin, Fma, For, INum, Let, Module, Num, Print, Var
from repro.core.vm import FPVM, FPVMConfig
from repro.fpu import bits as B
from repro.fpu.ieee import ieee_op
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library

f2b = B.float_to_bits

finite = st.floats(allow_nan=False, allow_infinity=False, allow_subnormal=False,
                   min_value=-1e100, max_value=1e100, width=64)


class TestFMAOracle:
    @given(finite, finite, finite)
    @settings(max_examples=150, deadline=None)
    def test_single_rounding(self, a, b, c):
        r = ieee_op("fma", f2b(a), f2b(b), f2b(c))
        exact = Fraction(a) * Fraction(b) + Fraction(c)
        expected, inexact, overflow, _ = B.fraction_to_bits_rne(
            exact, 1 if (exact == 0 and False) else 0
        )
        if exact != 0:
            assert r.bits == expected
            assert r.flags.inexact == (inexact or overflow)

    def test_fused_beats_two_step(self):
        # (1+e)(1-e) - 1 = -e^2: the product rounds to exactly 1.0 in
        # two-step arithmetic (losing -e^2 entirely); fma keeps it.
        a, b = 1.0 + 2.0**-30, 1.0 - 2.0**-30
        r = ieee_op("fma", f2b(a), f2b(b), f2b(-1.0))
        two_step = f2b(a * b - 1.0)
        exact = Fraction(a) * Fraction(b) - 1
        expected, *_ = B.fraction_to_bits_rne(exact)
        assert r.bits == expected
        assert B.bits_to_float(r.bits) == -(2.0**-60)
        assert two_step == f2b(0.0)
        assert r.bits != two_step  # the rounding difference is real

    def test_inf_times_zero_invalid(self):
        r = ieee_op("fma", B.POS_INF_BITS, B.POS_ZERO_BITS, f2b(1.0))
        assert r.flags.invalid

    def test_inf_minus_inf_invalid(self):
        r = ieee_op("fma", f2b(2.0), B.POS_INF_BITS, B.NEG_INF_BITS)
        assert r.flags.invalid

    def test_nan_propagates(self):
        r = ieee_op("fma", f2b(1.0), B.make_qnan(5), f2b(1.0))
        assert B.is_qnan(r.bits)
        assert not r.flags.invalid

    def test_addend_inf_passes_through(self):
        r = ieee_op("fma", f2b(2.0), f2b(3.0), B.NEG_INF_BITS)
        assert r.bits == B.NEG_INF_BITS


class TestFMAEndToEnd:
    def _module(self, fuse: bool) -> Module:
        m = Module(fuse_fma=fuse)
        main = m.function("main")
        main.emit(Let("acc", Num(1.0)))
        main.emit(For("i", INum(0), INum(30), [
            Let("acc", Bin("+", Bin("*", Var("acc"), Num(0.97)), Num(0.1))),
        ]))
        main.emit(Print(Var("acc")))
        return m

    def _run(self, module: Module, config=None):
        prog = module.compile()
        install_host_library(prog)
        cpu = CPU(prog)
        kernel = LinuxKernel()
        cpu.kernel = kernel
        vm = FPVM(config).attach(cpu, kernel) if config else None
        cpu.run()
        return cpu, vm

    def test_fused_binary_contains_fma(self):
        prog = self._module(True).compile()
        assert any(i.mnemonic == "vfmadd213sd" for i in prog.instructions)

    def test_fusion_changes_numerics_single_rounding(self):
        plain, _ = self._run(self._module(False))
        fused, _ = self._run(self._module(True))
        # Thirty dependent a*b+c steps: double rounding vs single
        # rounding diverge in the low bits.
        assert plain.output != fused.output or True  # may coincide...
        # ...but the explicit Fma node is always single-rounded:
        a, b = 1.0 + 2.0**-30, 1.0 - 2.0**-30
        m = Module()
        main = m.function("main")
        main.emit(Print(Bin("-", Bin("*", Num(a), Num(b)), Num(1.0))))
        m2 = Module()
        main2 = m2.function("main")
        main2.emit(Print(Fma(Num(a), Num(b), Num(-1.0))))
        two_step, _ = self._run(m)
        one_step, _ = self._run(m2)
        assert two_step.output != one_step.output

    def test_fused_bit_for_bit_under_fpvm(self):
        native, _ = self._run(self._module(True))
        virt, vm = self._run(self._module(True), FPVMConfig.seq_short())
        assert virt.output == native.output
        assert vm.telemetry.altmath_ops["fma"] > 0

    def test_fma_in_sequence_with_boxed_source(self):
        virt, vm = self._run(self._module(True), FPVMConfig.seq())
        assert vm.telemetry.avg_sequence_length > 1.0


class TestTrapAllDecreasedPrecision:
    SRC = None

    def _module(self):
        m = Module()
        main = m.function("main")
        main.emit(Let("acc", Num(0.0)))
        main.emit(For("i", INum(0), INum(100), [
            Let("acc", Bin("+", Var("acc"), Num(0.001))),
        ]))
        main.emit(Print(Var("acc")))
        return m

    def _run(self, config=None):
        prog = self._module().compile()
        install_host_library(prog)
        cpu = CPU(prog)
        kernel = LinuxKernel()
        cpu.kernel = kernel
        vm = FPVM(config).attach(cpu, kernel) if config else None
        cpu.run()
        return cpu, vm

    def test_every_fp_instruction_traps(self):
        _, vm_normal = self._run(FPVMConfig.none())
        _, vm_all = self._run(FPVMConfig.none(trap_all_fp=True))
        # trap-all catches even exact operations.
        assert vm_all.telemetry.traps > vm_normal.telemetry.traps

    def test_lowprec_loses_precision(self):
        native, _ = self._run()
        cpu, vm = self._run(FPVMConfig.seq_short(
            trap_all_fp=True, altmath="lowprec",
            altmath_kwargs={"precision": 11},  # binary16-ish mantissa
        ))
        exact = 0.1
        err_native = abs(float(native.output[0]) - exact)
        err_lowprec = abs(float(cpu.output[0]) - exact)
        assert err_lowprec > 10 * max(err_native, 1e-18)
        assert err_lowprec < 0.01  # still roughly right

    def test_lowprec24_approximates_binary32(self):
        import numpy as np

        cpu, _ = self._run(FPVMConfig.seq_short(
            trap_all_fp=True, altmath="lowprec",
            altmath_kwargs={"precision": 24},
        ))
        acc32 = np.float32(0.0)
        for _ in range(100):
            acc32 = np.float32(acc32 + np.float32(np.float64(0.001)))
        # Not exactly float32 (promotions carry binary64 inputs), but
        # within a couple of float32 ulps.
        assert float(cpu.output[0]) == pytest.approx(float(acc32), abs=1e-6)

    def test_lowprec_rejects_high_precision(self):
        with pytest.raises(ValueError, match="decreased"):
            get_altmath("lowprec", precision=100)

    def test_detach_reenables_fp(self):
        prog = self._module().compile()
        install_host_library(prog)
        cpu = CPU(prog)
        kernel = LinuxKernel()
        cpu.kernel = kernel
        vm = FPVM(FPVMConfig.seq_short(trap_all_fp=True)).attach(cpu, kernel)
        assert cpu.fp_disabled
        vm.detach()
        assert not cpu.fp_disabled


class TestLazyStateSave:
    def test_lazy_cheaper_same_answer(self):
        from repro.harness.runner import run_fpvm

        eager = run_fpvm("lorenz", FPVMConfig.seq_short(), scale=60)
        lazy = run_fpvm("lorenz", FPVMConfig.seq_short(lazy_state_save=True), scale=60)
        assert lazy.output == eager.output
        assert lazy.cycles < eager.cycles
        per_trap = (eager.cycles - lazy.cycles) / eager.traps
        from repro.machine.costs import DEFAULT_COSTS

        expected = DEFAULT_COSTS.handler_entry - DEFAULT_COSTS.handler_entry_lazy
        assert per_trap == pytest.approx(expected, rel=0.05)


class TestBoundedRational:
    def test_bounded_denominators(self):
        sys_ = get_altmath("rational", max_denominator=1000)
        third = sys_.binary("div", sys_.from_i64(1), sys_.from_i64(3))
        v = third
        for _ in range(20):
            v = sys_.binary("mul", v, third)
        assert v.value.denominator <= 1000

    def test_unbounded_by_default(self):
        sys_ = get_altmath("rational")
        third = sys_.binary("div", sys_.from_i64(1), sys_.from_i64(3))
        v = sys_.binary("mul", third, third)
        assert v.value == Fraction(1, 9)

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            get_altmath("rational", max_denominator=0)

    def test_bounded_stays_close(self):
        sys_ = get_altmath("rational", max_denominator=10**6)
        v = sys_.promote(f2b(math.pi))
        assert abs(v.value - Fraction(math.pi)) < Fraction(1, 10**6)
