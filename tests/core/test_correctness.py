"""Correctness instrumentation tests (§2.6, §5): static analysis vs
profiler, int3 vs magic traps, magic page rendezvous, wrappers."""

import pytest

from repro.core.analysis import find_memory_escapes
from repro.core.correctness import (
    MAGIC_COOKIE,
    MagicTrampoline,
    map_magic_page,
    register_demotion_handler,
)
from repro.core.profiler import MemoryEscapeProfiler, profile_patch_sites
from repro.core.vm import FPVM, FPVMConfig
from repro.core.wrappers import install_wrappers
from repro.fpu import bits as B
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library
from repro.machine.program import MAGIC_PAGE_ADDR

f2b = B.float_to_bits

#: A program whose FP result escapes to the integer world: it stores a
#: (possibly boxed) double and reads the sign bit via an integer load —
#: the paper's canonical memory-escape (e.g. what printf does inside).
ESCAPE_SRC = """
.data
a: .double 0.1
b: .double 0.2
one: .double 1.0
slot: .space 8
.text
main:
  movsd xmm0, [rip + a]
  mulsd xmm0, [rip + b]     ; 0.02, inexact: traps, result boxed
  subsd xmm0, [rip + one]   ; boxed - 1.0 = -0.98: negative boxed value
  movsd [rip + slot], xmm0  ; FP store: box escapes to memory
  mov rax, [rip + slot]     ; integer load of the escaped value
  shr rax, 63               ; extract the sign bit
  mov rdi, rax
  call print_i64
  hlt
"""


def build(source: str):
    prog = assemble(source)
    install_host_library(prog)
    return prog


def run_fpvm(source: str, config: FPVMConfig):
    prog = build(source)
    cpu = CPU(prog)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(config).attach(cpu, kernel)
    cpu.run()
    return cpu, vm


class TestProfiler:
    def test_finds_the_escape_site(self):
        prog = build(ESCAPE_SRC)
        sites = profile_patch_sites(prog)
        load_addr = next(
            i.addr for i in prog.instructions
            if i.mnemonic == "mov" and str(i.operands[0]) == "rax"
        )
        assert load_addr in sites

    def test_no_false_positives_on_clean_code(self):
        prog = build(
            ".data\nx: .quad 7\n.text\nmain:\n  mov rax, [rip + x]\n  hlt\n"
        )
        assert profile_patch_sites(prog) == set()

    def test_int_store_unmarks(self):
        src = """
.data
a: .double 1.5
slot: .space 8
.text
main:
  movsd xmm0, [rip + a]
  movsd [rip + slot], xmm0
  mov rbx, 42
  mov [rip + slot], rbx   ; integer store clears the mark
  mov rax, [rip + slot]   ; integer load of integer data: fine
  hlt
"""
        assert profile_patch_sites(build(src)) == set()

    def test_profile_result_counters(self):
        result = MemoryEscapeProfiler(build(ESCAPE_SRC)).run()
        assert result.fp_stores >= 1
        assert result.int_loads_of_floats >= 1

    def test_profiler_does_not_mutate_input_program(self):
        prog = build(ESCAPE_SRC)
        prog.patch_int3(prog.instructions[0].addr)
        MemoryEscapeProfiler(prog).run()
        assert prog.instructions[0].addr in prog.patches  # untouched


class TestStaticAnalysis:
    def test_finds_the_escape_site(self):
        prog = build(ESCAPE_SRC)
        result = find_memory_escapes(prog)
        load_addr = next(
            i.addr for i in prog.instructions
            if i.mnemonic == "mov" and str(i.operands[0]) == "rax"
        )
        assert load_addr in result.patch_sites

    def test_conservative_superset_of_profiler(self):
        """§5.1: the profiler identifies fewer instructions."""
        prog = build(ESCAPE_SRC)
        static = find_memory_escapes(prog).patch_sites
        dynamic = profile_patch_sites(prog)
        assert dynamic <= static

    def test_indirect_store_taints_everything(self):
        src = """
.data
a: .double 1.0
arr: .space 64
x: .quad 5
.text
main:
  mov rbx, arr
  movsd xmm0, [rip + a]
  movsd [rbx], xmm0        ; indirect FP store: summary bucket tainted
  mov rax, [rip + x]       ; even this direct int load is now suspect
  hlt
"""
        prog = build(src)
        result = find_memory_escapes(prog)
        assert result.indirect_tainted
        load_addr = next(
            i.addr for i in prog.instructions
            if i.mnemonic == "mov" and str(i.operands[0]) == "rax"
        )
        assert load_addr in result.patch_sites
        # The profiler, observing the actual run, knows x never held FP.
        assert load_addr not in profile_patch_sites(prog)

    def test_clean_program_no_sites(self):
        prog = build("main:\n  mov rax, 5\n  add rax, 2\n  hlt\n")
        assert find_memory_escapes(prog).patch_sites == set()


class TestEndToEndCorrectness:
    def expected_output(self):
        prog = build(ESCAPE_SRC)
        cpu = CPU(prog)
        cpu.kernel = LinuxKernel()
        cpu.run()
        return cpu.output

    @pytest.mark.parametrize("magic", [True, False], ids=["magic", "int3"])
    def test_sign_bit_correct_with_patches(self, magic):
        native = self.expected_output()
        cpu, vm = run_fpvm(ESCAPE_SRC, FPVMConfig.seq_short(magic_traps=magic))
        assert cpu.output == native == ["1"]  # 0.1*0.2 - 1.0 is negative
        assert vm.telemetry.corr_events >= 1

    def test_sign_bit_wrong_without_patches(self):
        """Disabling correctness instrumentation demonstrates the
        failure: the integer load sees the boxed sNaN's sign bit (0),
        not the value's."""
        cpu, _ = run_fpvm(
            ESCAPE_SRC, FPVMConfig.seq_short(patch_site_source="none")
        )
        assert cpu.output == ["0"]  # wrong: boxed pattern is positive

    def test_magic_cheaper_than_int3(self):
        _, vm_magic = run_fpvm(ESCAPE_SRC, FPVMConfig.seq_short(magic_traps=True))
        _, vm_int3 = run_fpvm(ESCAPE_SRC, FPVMConfig.seq_short(magic_traps=False))
        corr_magic = vm_magic.ledger.by_category["corr"]
        corr_int3 = (
            vm_int3.ledger.by_category["corr"]
            + vm_int3.ledger.by_category["hw"]
            + vm_int3.ledger.by_category["kernel"]
            + vm_int3.ledger.by_category["ret"]
            - vm_magic.ledger.by_category["hw"]
            - vm_magic.ledger.by_category["kernel"]
            - vm_magic.ledger.by_category["ret"]
        )
        # Paper: 14-120x cheaper per trap; here one trap each.
        assert corr_int3 > 5 * corr_magic

    def test_precomputed_patch_sites_used(self):
        prog = build(ESCAPE_SRC)
        sites = profile_patch_sites(prog)
        cpu, vm = run_fpvm(
            ESCAPE_SRC, FPVMConfig.seq_short(patch_sites=frozenset(sites))
        )
        assert cpu.output == ["1"]


class TestMagicPage:
    def test_cookie_and_rendezvous(self):
        prog = build("main:\n  hlt\n")
        cpu = CPU(prog)
        calls = []
        hid = register_demotion_handler(lambda c, a: calls.append(a))
        map_magic_page(cpu, hid)
        cookie = cpu.mem.read_u64(MAGIC_PAGE_ADDR)
        assert cookie == MAGIC_COOKIE
        tramp = MagicTrampoline()
        tramp(cpu, 0x1234)
        tramp(cpu, 0x5678)
        assert calls == [0x1234, 0x5678]
        assert tramp.rendezvous_count == 1  # pointer cached after first

    def test_magic_page_readonly(self):
        prog = build("main:\n  hlt\n")
        cpu = CPU(prog)
        hid = register_demotion_handler(lambda c, a: None)
        map_magic_page(cpu, hid)
        from repro.machine.memory import MemoryFault

        with pytest.raises(MemoryFault):
            cpu.mem.write_u64(MAGIC_PAGE_ADDR, 0)

    def test_unmapped_magic_page_fails_loudly(self):
        prog = build("main:\n  hlt\n")
        cpu = CPU(prog)
        cpu.mem.map_page(MAGIC_PAGE_ADDR)  # mapped but no cookie
        tramp = MagicTrampoline()
        with pytest.raises(RuntimeError, match="cookie"):
            tramp(cpu, 0)


class TestWrappers:
    def test_magic_wrap_rebinds_symbols(self):
        prog = build("main:\n  call print_f64\n  hlt\n")
        cpu = CPU(prog)
        kernel = LinuxKernel()
        cpu.kernel = kernel
        vm = FPVM(FPVMConfig.none(wrap_foreign=False))
        vm.cpu, vm.kernel, vm.program = cpu, kernel, prog
        vm.ledger.bind_cpu(cpu)
        report = install_wrappers(vm, prog, magic=True)
        assert "print_f64" in report.demote_wrapped
        assert "sin" in report.libm_wrapped
        assert prog.symbols["print_f64"] == prog.symbols["print_f64$fpvm"]

    def test_wrappers_skip_pure_int_functions(self):
        prog = build("main:\n  hlt\n")
        cpu = CPU(prog)
        kernel = LinuxKernel()
        vm = FPVM(FPVMConfig.none(wrap_foreign=False))
        vm.cpu, vm.kernel, vm.program = cpu, kernel, prog
        vm.ledger.bind_cpu(cpu)
        report = install_wrappers(vm, prog, magic=True)
        assert "print_i64" not in report.demote_wrapped
        assert "print_str" not in report.demote_wrapped

    def test_double_install_is_idempotent(self):
        prog = build("main:\n  hlt\n")
        cpu = CPU(prog)
        kernel = LinuxKernel()
        vm = FPVM(FPVMConfig.none(wrap_foreign=False))
        vm.cpu, vm.kernel, vm.program = cpu, kernel, prog
        vm.ledger.bind_cpu(cpu)
        install_wrappers(vm, prog, magic=True)
        n = len(prog.host_functions)
        install_wrappers(vm, prog, magic=True)
        # wrappers are not re-wrapped
        assert sum(1 for h in prog.host_functions.values()
                   if h.name.endswith("$fpvm$fpvm")) == 0
