"""End-to-end FPVM tests: attach, trap-and-emulate, sequence emulation,
short-circuiting, GC under load, and the bit-for-bit guarantee."""

import pytest

from repro.core.vm import FPVM, FPVMConfig
from repro.fpu import bits as B
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library

f2b = B.float_to_bits

LOOP_SRC = """
.data
a: .double 0.1
b: .double 0.2
n: .quad 25
.text
main:
  mov rcx, [rip + n]
  movsd xmm0, [rip + a]
top:
  addsd xmm0, [rip + b]
  mulsd xmm0, [rip + a]
  subsd xmm0, [rip + b]
  dec rcx
  jne top
  call print_f64
  hlt
"""


def run_native(source: str) -> CPU:
    prog = assemble(source)
    install_host_library(prog)
    cpu = CPU(prog)
    cpu.kernel = LinuxKernel()
    cpu.run()
    return cpu


def run_fpvm(source: str, config: FPVMConfig):
    prog = assemble(source)
    install_host_library(prog)
    cpu = CPU(prog)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(config).attach(cpu, kernel)
    cpu.run()
    return cpu, vm


ALL_CONFIGS = [
    ("NONE", FPVMConfig.none()),
    ("SEQ", FPVMConfig.seq()),
    ("SHORT", FPVMConfig.short()),
    ("SEQ_SHORT", FPVMConfig.seq_short()),
]


@pytest.mark.parametrize("name,config", ALL_CONFIGS)
class TestBitForBit:
    def test_output_identical_to_native(self, name, config):
        """§6: Boxed IEEE must give bit-for-bit equal results."""
        native = run_native(LOOP_SRC)
        cpu, _ = run_fpvm(LOOP_SRC, config)
        assert cpu.output == native.output

    def test_register_state_demotes_to_native(self, name, config):
        native = run_native(LOOP_SRC)
        cpu, vm = run_fpvm(LOOP_SRC, config)
        got = vm.emulator.demote_bits(cpu.regs.xmm[0][0])
        assert got == native.regs.xmm[0][0]


class TestTrapBehaviour:
    def test_every_config_traps(self):
        for _, config in ALL_CONFIGS:
            _, vm = run_fpvm(LOOP_SRC, config)
            assert vm.telemetry.traps > 0

    def test_sequence_emulation_reduces_traps(self):
        _, vm_none = run_fpvm(LOOP_SRC, FPVMConfig.none())
        _, vm_seq = run_fpvm(LOOP_SRC, FPVMConfig.seq())
        assert vm_seq.telemetry.traps < vm_none.telemetry.traps
        assert vm_seq.telemetry.avg_sequence_length > 1.5

    def test_emulated_instruction_counts_match(self):
        # SEQ emulates the same FP work, just batched differently.
        _, vm_none = run_fpvm(LOOP_SRC, FPVMConfig.none())
        _, vm_seq = run_fpvm(LOOP_SRC, FPVMConfig.seq())
        assert vm_seq.telemetry.emulated_instructions >= vm_none.telemetry.emulated_instructions

    def test_short_circuit_uses_device(self):
        _, vm = run_fpvm(LOOP_SRC, FPVMConfig.short())
        assert vm.telemetry.short_circuit_traps == vm.telemetry.traps
        assert vm.kernel.signal_counts.get(8, 0) == 0  # no SIGFPE

    def test_signal_path_used_without_short(self):
        _, vm = run_fpvm(LOOP_SRC, FPVMConfig.none())
        assert vm.telemetry.short_circuit_traps == 0
        assert vm.kernel.signal_counts[8] == vm.telemetry.traps

    def test_short_circuit_cheaper(self):
        cpu_none, _ = run_fpvm(LOOP_SRC, FPVMConfig.none())
        cpu_short, _ = run_fpvm(LOOP_SRC, FPVMConfig.short())
        assert cpu_short.cycles < cpu_none.cycles / 2

    def test_seq_short_cheapest(self):
        cycles = {}
        for name, config in ALL_CONFIGS:
            cpu, _ = run_fpvm(LOOP_SRC, config)
            cycles[name] = cpu.cycles
        assert cycles["SEQ_SHORT"] == min(cycles.values())
        assert cycles["NONE"] == max(cycles.values())


class TestLedger:
    def test_categories_populated(self):
        _, vm = run_fpvm(LOOP_SRC, FPVMConfig.none())
        led = vm.ledger.by_category
        for cat in ("hw", "kernel", "ret", "decache", "bind", "emul", "altmath"):
            assert led[cat] > 0, cat

    def test_decode_misses_only_first_encounter(self):
        _, vm = run_fpvm(LOOP_SRC, FPVMConfig.seq())
        assert vm.telemetry.decode_misses <= 8  # distinct FP instrs
        assert vm.telemetry.decode_hits > vm.telemetry.decode_misses

    def test_amortized_breakdown_sums_to_total(self):
        _, vm = run_fpvm(LOOP_SRC, FPVMConfig.seq_short())
        n = vm.telemetry.emulated_instructions
        am = vm.ledger.amortized(n)
        assert sum(am.values()) == pytest.approx(vm.ledger.total() / n)

    def test_kernel_category_drops_with_short(self):
        _, vm_none = run_fpvm(LOOP_SRC, FPVMConfig.none())
        _, vm_short = run_fpvm(LOOP_SRC, FPVMConfig.short())
        n1 = vm_none.telemetry.emulated_instructions
        n2 = vm_short.telemetry.emulated_instructions
        k1 = vm_none.ledger.by_category["kernel"] / n1
        k2 = vm_short.ledger.by_category["kernel"] / n2
        assert k1 / k2 > 8  # the 8x delegation reduction

    def test_cpu_cycles_include_ledger(self):
        cpu, vm = run_fpvm(LOOP_SRC, FPVMConfig.none())
        assert cpu.cycles >= vm.ledger.total()


GC_SRC = """
.data
a: .double 0.3
n: .quad 3000
.text
main:
  mov rcx, [rip + n]
  movsd xmm0, [rip + a]
top:
  addsd xmm0, [rip + a]
  dec rcx
  jne top
  call print_f64
  hlt
"""


class TestGCUnderLoad:
    def test_gc_triggers_and_bounds_heap(self):
        _, vm = run_fpvm(GC_SRC, FPVMConfig.seq_short(gc_threshold=512))
        assert vm.telemetry.gc_runs >= 1
        assert vm.telemetry.gc_objects_collected > 0
        # The loop keeps one live value; heap must stay bounded.
        assert vm.allocator.live_count < 2048

    def test_gc_cycles_charged(self):
        _, vm = run_fpvm(GC_SRC, FPVMConfig.seq_short(gc_threshold=512))
        assert vm.ledger.by_category["gc"] > 0

    def test_result_correct_despite_gc(self):
        native = run_native(GC_SRC)
        cpu, _ = run_fpvm(GC_SRC, FPVMConfig.seq_short(gc_threshold=256))
        assert cpu.output == native.output


NEGATION_SRC = """
.data
a: .double 0.1
signmask: .quad 0x8000000000000000, 0
.text
main:
  movsd xmm0, [rip + a]
  addsd xmm0, [rip + a]   ; traps? no - exact. force inexact:
  mulsd xmm0, [rip + a]   ; boxed now
  xorpd xmm0, [rip + signmask]  ; native sign flip of a boxed value
  addsd xmm0, [rip + a]   ; consumes negated box
  call print_f64
  hlt
"""


class TestNegationConvention:
    def test_native_xorpd_on_boxed_composes(self):
        native = run_native(NEGATION_SRC)
        cpu, _ = run_fpvm(NEGATION_SRC, FPVMConfig.none())
        assert cpu.output == native.output

    def test_seq_emulated_xorpd_composes(self):
        native = run_native(NEGATION_SRC)
        cpu, _ = run_fpvm(NEGATION_SRC, FPVMConfig.seq_short())
        assert cpu.output == native.output


LIBM_SRC = """
.data
x: .double 0.5
.text
main:
  movsd xmm0, [rip + x]
  mulsd xmm0, [rip + x]   ; 0.25, boxed (inexact? no! exact) ... still traps on nothing
  addsd xmm0, [rip + x]   ; 0.75 exact, no trap
  call sin
  call print_f64
  hlt
"""


class TestForeignFunctions:
    def test_libm_wrapper_boxes_result(self):
        cpu, vm = run_fpvm(LIBM_SRC, FPVMConfig.seq_short())
        native = run_native(LIBM_SRC)
        assert cpu.output == native.output
        assert vm.ledger.counters["libm_calls"] >= 1

    def test_print_wrapper_demotes(self):
        src = """
.data
a: .double 0.1
b: .double 0.2
.text
main:
  movsd xmm0, [rip + a]
  addsd xmm0, [rip + b]   ; traps; result boxed
  call print_f64
  hlt
"""
        cpu, vm = run_fpvm(src, FPVMConfig.none())
        assert cpu.output == [repr(0.1 + 0.2)]
        assert vm.telemetry.fcall_events >= 1
        assert vm.telemetry.demotions >= 1

    def test_without_wrappers_prints_nan(self):
        """The paper's footnote-5 failure mode, demonstrated."""
        src = """
.data
a: .double 0.1
b: .double 0.2
.text
main:
  movsd xmm0, [rip + a]
  addsd xmm0, [rip + b]
  call print_f64
  hlt
"""
        cpu, _ = run_fpvm(src, FPVMConfig.none(wrap_foreign=False))
        assert cpu.output in (["nan"], ["-nan"])


class TestAttachDetach:
    def test_detach_restores_masking(self):
        prog = assemble(LOOP_SRC)
        install_host_library(prog)
        cpu = CPU(prog)
        kernel = LinuxKernel()
        cpu.kernel = kernel
        vm = FPVM(FPVMConfig.short()).attach(cpu, kernel)
        assert kernel.fpvm_module.is_registered(cpu)
        vm.detach()
        assert not kernel.fpvm_module.is_registered(cpu)
        from repro.machine.registers import MXCSR_DEFAULT

        assert cpu.regs.mxcsr == MXCSR_DEFAULT

    def test_bad_patch_site_source_rejected(self):
        prog = assemble(LOOP_SRC)
        install_host_library(prog)
        cpu = CPU(prog)
        kernel = LinuxKernel()
        cpu.kernel = kernel
        with pytest.raises(ValueError):
            FPVM(FPVMConfig.none(patch_site_source="bogus")).attach(cpu, kernel)


class TestAltmathSwap:
    """§6.4: 'Switching to MPFR is straightforward — FPVM is simply
    reconfigured in seconds.'"""

    def test_mpfr_run_works(self):
        cpu, vm = run_fpvm(LOOP_SRC, FPVMConfig.seq_short(altmath="mpfr"))
        assert vm.telemetry.traps > 0
        assert len(cpu.output) == 1

    def test_mpfr_closer_to_exact_than_double(self):
        # sum of 0.1 500 times: MPFR-virtualized beats native binary64.
        src = """
.data
tenth: .double 0.1
n: .quad 500
.text
main:
  mov rcx, [rip + n]
  xorpd xmm0, xmm0
top:
  addsd xmm0, [rip + tenth]
  dec rcx
  jne top
  call print_f64
  hlt
"""
        native = run_native(src)
        cpu, _ = run_fpvm(src, FPVMConfig.seq_short(altmath="mpfr"))
        exact = 500 * 0.1
        native_err = abs(float(native.output[0]) - 50.0000000000000004)
        # Reference: the exactly-computed sum of 500 binary64 0.1's.
        from fractions import Fraction

        true_sum = float(500 * Fraction(0.1))
        fpvm_err = abs(float(cpu.output[0]) - true_sum)
        native_err = abs(float(native.output[0]) - true_sum)
        assert fpvm_err <= native_err
        assert fpvm_err == 0.0  # 200 bits is exact here after demotion

    def test_interval_and_rational_and_posit_run(self):
        for system in ("interval", "rational", "posit"):
            cpu, vm = run_fpvm(LOOP_SRC, FPVMConfig.seq_short(altmath=system))
            assert vm.telemetry.traps > 0
            assert len(cpu.output) == 1
