"""Differential fuzzing: random compiled FP programs must produce
bit-for-bit identical output natively and under FPVM (Boxed IEEE), for
every configuration — the strongest form of the paper's §6 validation.

Programs are generated from a seeded grammar over the mini-C AST:
arithmetic chains, array traffic, branches, loops, libm calls, fused
multiply-adds and negations, exercising promotion, boxing, sequence
termination, wrappers, GC and correctness patches together.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    Bin, Call, Cast, FCmp, Fma, For, IBin, INum, IVar, If, Let, Load,
    Max, Min, Module, Neg, Num, Print, Sqrt, Store, Var,
)
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library

_CONSTS = [0.1, 0.2, 0.3, 0.5, 1.0, 1.5, 2.0, -0.7, 3.14159, 1e10, 1e-10, -2.5]
_LIBM = ["sin", "cos", "atan", "exp", "fabs"]


def _gen_expr(rng: random.Random, depth: int, vars_: list[str]):
    """A random double expression of bounded depth."""
    if depth <= 0 or rng.random() < 0.3:
        choice = rng.random()
        if choice < 0.45 and vars_:
            return Var(rng.choice(vars_))
        if choice < 0.8:
            return Num(rng.choice(_CONSTS))
        return Load("arr", INum(rng.randrange(8)))
    kind = rng.random()
    if kind < 0.55:
        op = rng.choice(["+", "-", "*", "*", "/"])
        return Bin(op, _gen_expr(rng, depth - 1, vars_), _gen_expr(rng, depth - 1, vars_))
    if kind < 0.65:
        return Neg(_gen_expr(rng, depth - 1, vars_))
    if kind < 0.72:
        # sqrt of a square keeps the domain safe
        inner = _gen_expr(rng, depth - 1, vars_)
        return Sqrt(Bin("*", inner, inner))
    if kind < 0.80:
        return Fma(_gen_expr(rng, depth - 1, vars_),
                   _gen_expr(rng, depth - 1, vars_),
                   _gen_expr(rng, depth - 1, vars_))
    if kind < 0.88:
        return Min(_gen_expr(rng, depth - 1, vars_), _gen_expr(rng, depth - 1, vars_))
    if kind < 0.94:
        return Call(rng.choice(_LIBM), [_gen_expr(rng, depth - 1, vars_)])
    return Cast(INum(rng.randrange(-100, 100)))


def _gen_program(seed: int) -> Module:
    rng = random.Random(seed)
    m = Module(fuse_fma=rng.random() < 0.5)
    m.data_array("arr", 8)
    main = m.function("main")
    vars_: list[str] = []
    # seed the array
    main.emit(For("i", INum(0), INum(8), [
        Store("arr", IVar("i"),
              Bin("*", Cast(IVar("i")), Num(rng.choice(_CONSTS)))),
    ]))
    n_stmts = rng.randrange(4, 10)
    for s in range(n_stmts):
        name = f"v{s % 4}"
        kind = rng.random()
        if kind < 0.55 or not vars_:
            main.emit(Let(name, _gen_expr(rng, 3, vars_)))
            if name not in vars_:
                vars_.append(name)
        elif kind < 0.7:
            main.emit(If(
                FCmp(rng.choice(["<", ">", "<=", ">="]),
                     _gen_expr(rng, 2, vars_), _gen_expr(rng, 2, vars_)),
                [Let(name, _gen_expr(rng, 2, vars_))],
                [Let(name, _gen_expr(rng, 2, vars_))],
            ))
            if name not in vars_:
                vars_.append(name)
        elif kind < 0.85:
            main.emit(For("k", INum(0), INum(rng.randrange(2, 6)), [
                Let(name, _gen_expr(rng, 2, vars_)),
                Store("arr", IBin("&", IVar("k"), INum(7)),
                      Var(name)),
            ]))
            if name not in vars_:
                vars_.append(name)
        else:
            main.emit(Store("arr", INum(rng.randrange(8)),
                            _gen_expr(rng, 2, vars_)))
    for v in vars_:
        main.emit(Print(Var(v)))
    main.emit(Print(Load("arr", INum(rng.randrange(8)))))
    return m


def _run(module: Module, config: FPVMConfig | None):
    prog = module.compile()
    install_host_library(prog)
    cpu = CPU(prog)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    if config is not None:
        FPVM(config).attach(cpu, kernel)
    cpu.run(max_steps=2_000_000)
    return cpu.output


@pytest.mark.parametrize("seed", range(12))
def test_random_programs_bit_for_bit_seq_short(seed):
    module = _gen_program(seed)
    native = _run(module, None)
    virt = _run(_gen_program(seed), FPVMConfig.seq_short())
    assert virt == native, f"seed {seed} diverged"


@pytest.mark.parametrize("seed", [100, 101, 102, 103])
@pytest.mark.parametrize("config_name", ["NONE", "SEQ", "SHORT"])
def test_random_programs_bit_for_bit_all_configs(seed, config_name):
    config = {
        "NONE": FPVMConfig.none(),
        "SEQ": FPVMConfig.seq(),
        "SHORT": FPVMConfig.short(),
    }[config_name]
    native = _run(_gen_program(seed), None)
    virt = _run(_gen_program(seed), config)
    assert virt == native, f"seed {seed} diverged under {config_name}"


@pytest.mark.parametrize("seed", [200, 201])
def test_random_programs_int3_and_static_analysis(seed):
    """The slower, baseline-flavoured instrumentation paths must also
    preserve semantics."""
    native = _run(_gen_program(seed), None)
    virt = _run(
        _gen_program(seed),
        FPVMConfig.seq_short(magic_traps=False, patch_site_source="static"),
    )
    assert virt == native


@pytest.mark.parametrize("seed", [300, 301])
def test_random_programs_tiny_gc_threshold(seed):
    """Aggressive GC must never change results."""
    native = _run(_gen_program(seed), None)
    virt = _run(_gen_program(seed), FPVMConfig.seq_short(gc_threshold=32))
    assert virt == native
