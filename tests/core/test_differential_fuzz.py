"""Differential fuzzing: random compiled FP programs must produce
bit-for-bit identical output natively and under FPVM (Boxed IEEE), for
every configuration — the strongest form of the paper's §6 validation.

The program grammar lives in :mod:`repro.conformance.generators` and is
shared with the conformance matrix sweep (``python -m repro
conformance``), so both exercise the same program population.
"""

import pytest

from repro.conformance.generators import gen_program
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library


def _run(module, config: FPVMConfig | None):
    prog = module.compile()
    install_host_library(prog)
    cpu = CPU(prog)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    if config is not None:
        FPVM(config).attach(cpu, kernel)
    cpu.run(max_steps=2_000_000)
    return cpu.output


@pytest.mark.parametrize("seed", range(12))
def test_random_programs_bit_for_bit_seq_short(seed):
    native = _run(gen_program(seed), None)
    virt = _run(gen_program(seed), FPVMConfig.seq_short())
    assert virt == native, f"seed {seed} diverged"


@pytest.mark.parametrize("seed", [100, 101, 102, 103])
@pytest.mark.parametrize("config_name", ["NONE", "SEQ", "SHORT"])
def test_random_programs_bit_for_bit_all_configs(seed, config_name):
    config = {
        "NONE": FPVMConfig.none(),
        "SEQ": FPVMConfig.seq(),
        "SHORT": FPVMConfig.short(),
    }[config_name]
    native = _run(gen_program(seed), None)
    virt = _run(gen_program(seed), config)
    assert virt == native, f"seed {seed} diverged under {config_name}"


@pytest.mark.parametrize("seed", [200, 201])
def test_random_programs_int3_and_static_analysis(seed):
    """The slower, baseline-flavoured instrumentation paths must also
    preserve semantics."""
    native = _run(gen_program(seed), None)
    virt = _run(
        gen_program(seed),
        FPVMConfig.seq_short(magic_traps=False, patch_site_source="static"),
    )
    assert virt == native


@pytest.mark.parametrize("seed", [300, 301])
def test_random_programs_tiny_gc_threshold(seed):
    """Aggressive GC must never change results."""
    native = _run(gen_program(seed), None)
    virt = _run(gen_program(seed), FPVMConfig.seq_short(gc_threshold=32))
    assert virt == native


def test_generator_is_deterministic():
    """Seed-identical modules compile to identical images — the
    property every differential comparison in the repo leans on."""
    a = gen_program(42).compile()
    b = gen_program(42).compile()
    assert a.data == b.data
    assert [(addr, i.mnemonic) for addr, i in a.by_addr.items()] == \
           [(addr, i.mnemonic) for addr, i in b.by_addr.items()]
