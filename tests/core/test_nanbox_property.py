"""Property tests for NaN-boxing (§2.2), over the whole 48-bit pointer
space and the whole binary64 bit space via hypothesis."""

import math
import struct

from hypothesis import given
from hypothesis import strategies as st

from repro.core import nanbox
from repro.fpu import bits as B

pointers = st.integers(min_value=0, max_value=nanbox.NANBOX_PTR_MASK)
bits64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


@given(pointers, st.booleans())
def test_box_unbox_round_trip(ptr, negated):
    bits = nanbox.box_bits(ptr, negated)
    assert nanbox.is_boxed(bits)
    out_ptr, out_neg = nanbox.unbox(bits)
    assert out_ptr == ptr
    assert out_neg == negated


@given(pointers)
def test_boxed_pattern_is_signaling_nan(ptr):
    """Boxing must yield a *signaling* NaN: exponent all ones, quiet
    bit clear, mantissa nonzero — so any arithmetic use traps."""
    bits = nanbox.box_bits(ptr)
    assert bits & B.F64_EXP_MASK == B.F64_EXP_MASK
    assert not bits & B.F64_QNAN_BIT
    assert bits & B.F64_FRAC_MASK  # nonzero mantissa => NaN, not inf
    assert B.is_snan(bits)
    assert math.isnan(struct.unpack("<d", struct.pack("<Q", bits))[0])


@given(pointers)
def test_sign_flip_is_pending_negation(ptr):
    """The xorpd porosity convention: a native sign flip on a boxed
    pattern must still be recognised, as the same box negated."""
    bits = nanbox.box_bits(ptr)
    flipped = bits ^ B.F64_SIGN_MASK
    assert nanbox.is_boxed(flipped)
    out_ptr, negated = nanbox.unbox(flipped)
    assert out_ptr == ptr
    assert negated
    # and flipping back clears the negation.
    assert nanbox.unbox(flipped ^ B.F64_SIGN_MASK) == (ptr, False)


@given(bits64)
def test_non_nan_bits_never_classify_as_boxed(bits):
    """No finite or infinite double can carry the box signature."""
    if not B.is_nan(bits):
        assert not nanbox.is_boxed(bits)


@given(st.floats(allow_nan=False))
def test_ordinary_doubles_pass_through(value):
    bits = struct.unpack("<Q", struct.pack("<d", value))[0]
    assert not nanbox.is_boxed(bits)


@given(bits64)
def test_classify_nan_taxonomy_is_total(bits):
    """Every 64-bit pattern lands in exactly one taxonomy bucket, with
    an allocator that owns nothing ("ours" requires ownership)."""

    class NoAllocator:
        def owns(self, ptr):
            return False

    kind = nanbox.classify_nan(bits, NoAllocator())
    if not B.is_nan(bits):
        assert kind == "not_nan"
    else:
        assert kind == "theirs"  # never "ours" without a live allocation


@given(pointers)
def test_quiet_counterpart_is_not_boxed(ptr):
    """Quieting a boxed sNaN (what hardware does when one escapes into
    an untrapped operation) must drop it out of the boxed class, so a
    hardware-quieted NaN is 'theirs', never a dangling pointer."""
    assert not nanbox.is_boxed(nanbox.box_bits(ptr) | B.F64_QNAN_BIT)
