"""Typed fault taxonomy for the FPVM trap pipeline.

The paper's semantics-preservation claim (§6) is only as strong as the
runtime's ability to *notice* when the machinery underneath it
misbehaves.  Every defect the conformance fault-injection layer
(:mod:`repro.conformance.faults`) can provoke — lost or duplicated
signal deliveries, a corrupted magic page, a poisoned decode cache,
box-heap exhaustion, device protocol misuse — maps to one subclass of
:class:`FPVMFaultError` here, so a hardened component fails loudly with
a machine-classifiable error instead of silently producing wrong
numbers.

The hierarchy derives from :class:`RuntimeError` so pre-existing
callers that caught broad runtime failures keep working.
"""

from __future__ import annotations


class FPVMFaultError(RuntimeError):
    """Base class for every fault the FPVM runtime detects in its own
    machinery (as opposed to faults in the *guest* program)."""

    #: short machine-readable fault class, stable across messages.
    fault = "generic"


class TrapStormError(FPVMFaultError):
    """The kernel observed repeated trap deliveries at one address with
    no forward progress — the livelock signature of a lost or
    mishandled delivery (the faulting instruction re-executes and
    re-faults forever)."""

    fault = "trap_storm"


class MagicPageCorruptionError(FPVMFaultError):
    """The magic-trap trampoline's rendezvous found a bad cookie or a
    dangling handler id: the magic page is unmapped, stale, or has been
    overwritten (§5.2's well-known-address protocol is broken)."""

    fault = "magic_page"


class DecodeCacheCorruptionError(FPVMFaultError):
    """A decode-cache entry disagrees with the address it is filed
    under — emulating it would execute the wrong instruction."""

    fault = "decode_cache"


class BoxHeapExhaustedError(FPVMFaultError):
    """The box allocator hit its capacity (or the 48-bit pointer
    space) and an emergency collection could not free a slot."""

    fault = "box_heap"


class DeviceProtocolError(FPVMFaultError):
    """Misuse of the /dev/fpvm_dev protocol: bad ioctl, operation on a
    closed fd, or a short-circuit delivery for an unregistered thread."""

    fault = "device"


class DeadlockError(FPVMFaultError):
    """The process scheduler found live threads but none runnable —
    every surviving thread is parked in ``thread_join`` waiting on a
    thread that can never finish (a join cycle, or a join on a thread
    itself blocked forever)."""

    fault = "deadlock"


class StepLimitError(FPVMFaultError):
    """The process exceeded its global scheduler step budget — the
    multi-threaded analogue of a runaway single CPU hitting
    ``max_steps``, promoted to a typed error so harnesses can
    distinguish 'guest never terminates' from machinery faults."""

    fault = "step_limit"


class FleetError(FPVMFaultError):
    """Base class for faults in the multiprocess fleet harness
    (:mod:`repro.fleet`) — the machinery that fans guest processes out
    across host workers, as opposed to faults inside any one guest."""

    fault = "fleet"


class FleetWorkerError(FleetError):
    """A host worker process died (non-zero exit, signal, or a broken
    pipe) while it held in-flight guest jobs.  The scheduler retries
    each such job exactly once on a fresh worker; a second crash for
    the same job surfaces this error to the caller, carrying the job
    ids so nothing is silently dropped or double-counted."""

    fault = "fleet_worker"

    def __init__(self, message: str, job_ids: tuple = ()):  # noqa: D107
        super().__init__(message)
        self.job_ids = tuple(job_ids)


class FleetQuotaError(FleetError):
    """A tenant's job was refused at admission: the tenant is already
    at its ``max_guests`` concurrency/volume cap or has exhausted its
    ``max_cycles`` simulated-cycle budget.  Typed so front-ends can
    distinguish back-pressure from machinery failure."""

    fault = "fleet_quota"

    def __init__(self, message: str, tenant: str = "", job_id: int = -1):  # noqa: D107
        super().__init__(message)
        self.tenant = tenant
        self.job_id = job_id
