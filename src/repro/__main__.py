"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Show workloads, arithmetic systems and configurations.
run WORKLOAD [--config NAME] [--altmath NAME] [--scale N]
    Run a workload natively and under FPVM; print outputs, slowdown
    and the amortized cost breakdown.
characterize WORKLOAD [--scale N]
    The §6.3 sequence-emulation profile: top traces, average length,
    trace-cache sizing.
figures [--skip-mpfr] [--out DIR]
    Regenerate every paper figure (same as benchmarks/run_all_figures).
conformance [--full] [--matrix-only | --faults-only] [--scenario NAME]
    Differential conformance sweep (NONE/SEQ/SHORT/SEQ_SHORT × altmath
    × patch source × magic traps) plus fault-injection scenarios.
flow WORKLOAD [--config NAME] [--tier NAME] [--scale N]
    Exception-flow observability: run one workload with NaN-provenance
    recording on and print the per-RIP trap heatmap plus the NaN-flow
    graph (birth sites, propagation edges, kill sites).
fleet WORKLOAD [--guests N] [--workers N] [--scale N] [--verify]
    Run a multiprocess guest fleet with shared program pages, COW
    memory and warm caches; report guests/sec and p50/p99 latency.
    ``--verify`` re-runs the batch cold+serial and asserts bit-identical
    per-guest ledgers.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.vm import FPVMConfig
from repro.harness import conformance_cli
from repro.harness import figures as F
from repro.harness import report
from repro.harness.configs import CONFIG_ORDER, named_configs
from repro.harness.runner import (
    run_fpvm,
    run_fpvm_process,
    run_native,
    run_native_process,
)
from repro.workloads import WORKLOAD_NAMES, get_workload

_CONFIG_FACTORY = {
    "none": FPVMConfig.none,
    "seq": FPVMConfig.seq,
    "short": FPVMConfig.short,
    "seq_short": FPVMConfig.seq_short,
}

_ALTMATH_NAMES = ("boxed_ieee", "mpfr", "posit", "interval", "rational", "lowprec")


def _cmd_list(args) -> int:
    print("workloads:")
    for name in WORKLOAD_NAMES:
        w = get_workload(name)
        print(f"  {name:<16} {w.description}")
    print("\narithmetic systems:", ", ".join(_ALTMATH_NAMES))
    print("configurations:    ", ", ".join(c.lower() for c in CONFIG_ORDER))
    return 0


def _cmd_run(args) -> int:
    factory = _CONFIG_FACTORY[args.config]
    config = factory(altmath=args.altmath)
    if get_workload(args.workload).requires_process:
        native = run_native_process(args.workload, scale=args.scale)
        result = run_fpvm_process(args.workload, config, args.config.upper(),
                                  scale=args.scale)
    else:
        native = run_native(args.workload, scale=args.scale)
        result = run_fpvm(args.workload, config, args.config.upper(),
                          scale=args.scale)

    print(f"== {args.workload} ({args.config.upper()}, {args.altmath}) ==")
    print(f"native output:      {native.output}")
    print(f"virtualized output: {result.output}")
    if args.altmath == "boxed_ieee":
        print(f"bit-for-bit:        {result.output == native.output}")
    print()
    print(f"native cycles:      {native.cycles:>14,}")
    print(f"virtualized cycles: {result.cycles:>14,}")
    print(f"slowdown:           {result.cycles / native.cycles:>13.1f}x")
    lower = native.cycles + result.altmath_cycles
    print(f"vs lower bound:     {result.cycles / lower:>13.2f}x")
    print(f"traps:              {result.traps:>14,}")
    print(f"avg sequence len:   {result.avg_sequence_length:>14.1f}")
    print()
    print("amortized cycles per emulated instruction:")
    for cat, val in result.amortized().items():
        if val:
            print(f"  {cat:<8} {val:>8.1f}")
    return 0


def _cmd_characterize(args) -> int:
    runner = (run_fpvm_process if get_workload(args.workload).requires_process
              else run_fpvm)
    result = runner(args.workload, FPVMConfig.seq_short(), "SEQ_SHORT",
                    scale=args.scale)
    stats = result.trace_stats
    print(f"== {args.workload}: sequence emulation profile ==")
    print(f"traps: {result.traps}   emulated instructions: "
          f"{result.emulated_instructions}   avg length: "
          f"{result.avg_sequence_length:.1f}")
    print(f"distinct traces: {len(stats.traces)}")
    print()
    for rank, rec in enumerate(stats.by_popularity()[: args.top], start=1):
        share = 100.0 * rec.emulated_instructions / max(stats.total_emulated(), 1)
        print(f"rank {rank}: len {rec.length}, {rec.count} hits, {share:.1f}% "
              f"of emulated instructions, terminator {rec.terminator} "
              f"({rec.reason})")
        if args.verbose:
            print(stats.format_trace(rec, result.program))
            print()
    return 0


def _cmd_fleet(args) -> int:
    from repro.fleet import run_guest
    from repro.harness.runner import run_fleet

    scale = args.scale or get_workload(args.workload).fleet_default_scale
    rep = run_fleet(args.workload, args.guests, workers=args.workers,
                    scale=scale, quantum=args.quantum)
    title = (f"Fleet: {args.guests} x {args.workload} (scale {scale}, "
             f"{args.workers} workers)")
    print(report.render_fleet(rep.fleet, title))
    for err in rep.failed:
        print(f"  FAILED: {err}")
    if not args.verify:
        return 1 if rep.failed else 0
    print()
    print("verify: re-running the batch cold + serial ...")
    from repro.fleet import make_batch

    jobs = make_batch(args.workload, args.guests, scale=scale,
                      quantum=args.quantum)
    cold = {j.job_id: run_guest(j, None).fingerprint() for j in jobs}
    mismatched = [jid for jid, fp in rep.fingerprints().items()
                  if cold.get(jid) != fp]
    if mismatched:
        print(f"verify: MISMATCH for jobs {mismatched}")
        return 1
    print(f"verify: all {len(cold)} per-guest ledgers bit-identical "
          "(output, cycles, instructions, traps)")
    return 1 if rep.failed else 0


#: host execution tiers the flow seam is independent of: the recorder
#: sits behind the trap/emulate funnel all four share, so the graphs
#: must come out identical whichever tier executed the guest.
_FLOW_TIERS = {
    "interp": dict(uops=False, chain=False, trace=False),
    "uops": dict(uops=True, chain=False, trace=False),
    "chained": dict(uops=True, chain=True, trace=False),
    "traced": dict(uops=True, chain=True, trace=True),
}


def _cmd_flow(args) -> int:
    w = get_workload(args.workload)
    tier = _FLOW_TIERS[args.tier]
    cfg = _CONFIG_FACTORY[args.config](flow=True, uops=tier["uops"])
    runner = run_fpvm_process if w.requires_process else run_fpvm
    result = runner(args.workload, cfg, scale=args.scale,
                    chain=tier["chain"], trace=tier["trace"])
    label = f"{args.workload} ({args.config}, {args.tier} tier)"
    print(report.render_trap_heatmap(result.flow, result.program,
                                     title=f"Trap heatmap: {label}"))
    print()
    print(report.render_flow_graph(result.flow, result.program,
                                   title=f"NaN-flow graph: {label}"))
    return 0


def _cmd_figures(args) -> int:
    import pathlib

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    def publish(name: str, text: str) -> None:
        (out / f"{name}.txt").write_text(text + "\n")
        print(text)
        print()

    publish("trap_microbench", report.render_trap_microbench(
        F.trap_microbenchmark(), F.trap_class_microbenchmark()))
    publish("trap_heatmap", report.render_trap_flow(F.trap_heatmap()))
    publish("fig03", report.render_magic_costs(
        F.figure3(), "Figure 3: magic traps vs int3 correctness traps"))
    boxed = F.Suite("boxed_ieee")
    publish("fig01", report.render_breakdown(
        F.figure1(boxed), "Figure 1: baseline cost breakdown (Boxed IEEE, NONE)"))
    publish("fig04", report.render_slowdown(
        F.figure4(boxed), "Figure 4: application slowdown (Boxed IEEE)"))
    publish("fig05", report.render_slowdown(
        F.figure5(boxed), "Figure 5: slowdown from lower bound (Boxed IEEE)",
        "vs native+altmath"))
    publish("fig06", report.render_breakdown_by_config(
        F.figure6(boxed), "Figure 6: cost breakdown with accelerations"))
    publish("fig07", "Figure 7: example instruction trace\n\n" + F.figure7(boxed))
    publish("fig08", report.render_cdf(
        F.figure8(boxed), "Figure 8: sequence rank popularity CDF", "rank"))
    publish("fig09", report.render_length_cdf(
        F.figure9(boxed), "Figure 9: sequence length CDF"))
    publish("fig10", report.render_cache_sizing(
        F.figure10(boxed), "Figure 10: trace cache sizing"))
    publish("profiler_vs_static", report.render_patch_sites(
        F.profiler_vs_static(), "Patch sites: static analysis vs profiler"))
    if not args.skip_mpfr:
        mpfr = F.Suite("mpfr", scale_overrides={
            "lorenz": 150, "three_body": 16, "double_pendulum": 24,
            "fbench": 6, "ffbench": 16, "enzo": 16,
        })
        publish("fig11", report.render_slowdown(
            F.figure4(mpfr), "Figure 11: application slowdown (MPFR)"))
        publish("fig12", report.render_slowdown(
            F.figure5(mpfr), "Figure 12: slowdown from lower bound (MPFR)",
            "vs native+altmath"))
        publish("fig13", report.render_breakdown_by_config(
            F.figure6(mpfr), "Figure 13: cost breakdown (MPFR)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FPVM reproduction: run, characterize, regenerate figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show workloads/systems/configs")

    p_run = sub.add_parser("run", help="run a workload native + virtualized")
    p_run.add_argument("workload", choices=WORKLOAD_NAMES)
    p_run.add_argument("--config", choices=sorted(_CONFIG_FACTORY),
                       default="seq_short")
    p_run.add_argument("--altmath", choices=_ALTMATH_NAMES, default="boxed_ieee")
    p_run.add_argument("--scale", type=int, default=None)

    p_char = sub.add_parser("characterize", help="§6.3 trace profile")
    p_char.add_argument("workload", choices=WORKLOAD_NAMES)
    p_char.add_argument("--scale", type=int, default=None)
    p_char.add_argument("--top", type=int, default=5)
    p_char.add_argument("--verbose", action="store_true")

    p_fig = sub.add_parser("figures", help="regenerate every paper figure")
    p_fig.add_argument("--skip-mpfr", action="store_true")
    p_fig.add_argument("--out", default="benchmarks/results")

    p_flow = sub.add_parser(
        "flow", help="trap heatmap + NaN-flow graph for one workload")
    p_flow.add_argument("--workload", choices=WORKLOAD_NAMES, required=True)
    p_flow.add_argument("--config", choices=sorted(_CONFIG_FACTORY),
                        default="none",
                        help="none traps everything: richest heatmap")
    p_flow.add_argument("--tier", choices=sorted(_FLOW_TIERS), default="traced")
    p_flow.add_argument("--scale", type=int, default=None)

    p_fleet = sub.add_parser(
        "fleet", help="run a multiprocess guest fleet (COW + warm caches)")
    p_fleet.add_argument("workload", choices=WORKLOAD_NAMES)
    p_fleet.add_argument("--guests", type=int, default=16)
    p_fleet.add_argument("--workers", type=int, default=2,
                         help="worker processes (0 = in-process serial)")
    p_fleet.add_argument("--scale", type=int, default=None,
                         help="per-guest scale (default: workload fleet_scale)")
    p_fleet.add_argument("--quantum", type=int, default=64)
    p_fleet.add_argument("--verify", action="store_true",
                         help="assert bit-identity vs cold serial execution")

    conformance_cli.add_subparser(sub)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "characterize": _cmd_characterize,
        "figures": _cmd_figures,
        "flow": _cmd_flow,
        "fleet": _cmd_fleet,
        "conformance": conformance_cli.cmd_conformance,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
