"""The simulated shared libraries (libc/libm stand-ins).

These functions are *host* implementations: they read raw register bit
patterns and reinterpret them the way real libc does.  That is exactly
why foreign-function correctness instrumentation exists (§2.6, §5.3) —
``print_f64`` on a NaN-boxed value happily prints ``nan`` (the paper's
footnote 5) unless FPVM's wrappers demote the argument first.

Calling convention (SysV-flavoured): double args in xmm0..xmm7 lane 0,
integer/pointer args in rdi, rsi, rdx, rcx, r8, r9; double return in
xmm0 lane 0, integer return in rax.
"""

from __future__ import annotations

import math

from repro.fpu import bits as B
from repro.machine.isa import GPR_IDS
from repro.machine.program import HostFunction, Program

RDI = GPR_IDS["rdi"]
RAX = GPR_IDS["rax"]


def _xmm_arg(cpu, i: int) -> int:
    return cpu.regs.xmm[i][0]


def _set_xmm0(cpu, bits: int) -> None:
    cpu.regs.write_xmm128(0, bits, 0)


def _fmt(bits: int) -> str:
    """printf("%.17g")-style formatting by *bit reinterpretation* —
    boxed NaNs come out as nan/-nan, the paper's failure mode."""
    if B.is_nan(bits):
        return "-nan" if B.is_negative(bits) else "nan"
    value = B.bits_to_float(bits)
    if math.isinf(value):
        return "-inf" if value < 0 else "inf"
    return repr(value)


def _print_f64(cpu) -> None:
    cpu.output.append(_fmt(_xmm_arg(cpu, 0)))


def _print_f64_pair(cpu) -> None:
    cpu.output.append(f"{_fmt(_xmm_arg(cpu, 0))} {_fmt(_xmm_arg(cpu, 1))}")


def _print_i64(cpu) -> None:
    v = cpu.regs.gpr[RDI]
    if v >= 1 << 63:
        v -= 1 << 64
    cpu.output.append(str(v))


def _print_str(cpu) -> None:
    cpu.output.append(cpu.mem.read_cstring(cpu.regs.gpr[RDI]))


def _sign_f64(cpu) -> None:
    """Returns the raw sign bit of xmm0 in rax — deliberate bit-level
    inspection of an FP value (what printf does internally)."""
    cpu.regs.write_gpr(RAX, B.sign_bit(_xmm_arg(cpu, 0)))


def _unary(fn):
    def impl(cpu) -> None:
        x = B.bits_to_float(_xmm_arg(cpu, 0))
        try:
            r = fn(x)
        except (ValueError, OverflowError):
            r = math.nan
        _set_xmm0(cpu, B.float_to_bits(r))

    return impl


def _binary(fn):
    def impl(cpu) -> None:
        x = B.bits_to_float(_xmm_arg(cpu, 0))
        y = B.bits_to_float(_xmm_arg(cpu, 1))
        try:
            r = fn(x, y)
        except (ValueError, OverflowError, ZeroDivisionError):
            r = math.nan
        _set_xmm0(cpu, B.float_to_bits(r))

    return impl


def _fabs(x: float) -> float:
    return abs(x)


#: name -> (implementation, cost cycles, #fp args, returns fp)
_LIBRARY: dict[str, tuple] = {
    # --- the stdio family (foreign-function correctness targets) ---------
    "print_f64": (_print_f64, 400, 1, False),
    "print_f64_pair": (_print_f64_pair, 550, 2, False),
    "print_i64": (_print_i64, 300, 0, False),
    "print_str": (_print_str, 250, 0, False),
    "sign_f64": (_sign_f64, 20, 1, False),
    # --- libm (forward-wrapped straight into altmath under FPVM) ---------
    "sin": (_unary(math.sin), 40, 1, True),
    "cos": (_unary(math.cos), 40, 1, True),
    "tan": (_unary(math.tan), 60, 1, True),
    "asin": (_unary(math.asin), 55, 1, True),
    "acos": (_unary(math.acos), 55, 1, True),
    "atan": (_unary(math.atan), 45, 1, True),
    "exp": (_unary(math.exp), 35, 1, True),
    "log": (_unary(lambda x: math.log(x) if x > 0 else (-math.inf if x == 0 else math.nan)), 35, 1, True),
    "fabs": (_unary(_fabs), 10, 1, True),
    "atan2": (_binary(math.atan2), 60, 2, True),
    "pow": (_binary(lambda x, y: math.pow(x, y)), 80, 2, True),
    "fmod": (_binary(lambda x, y: math.fmod(x, y) if y != 0 else math.nan), 45, 2, True),
}

#: Functions whose wrapper forwards into the alternative arithmetic
#: system (the hand-written libm forward wrappers of §5.3).
LIBM_FUNCTIONS = frozenset(
    ("sin", "cos", "tan", "asin", "acos", "atan", "exp", "log",
     "fabs", "atan2", "pow", "fmod")
)


def install_host_library(program: Program) -> dict[str, int]:
    """Register every library function on ``program``; returns the
    symbol table additions (name -> address)."""
    added = {}
    for name, (fn, cost, fp_args, fp_ret) in _LIBRARY.items():
        host = HostFunction(name=name, fn=fn, cost=cost, fp_args=fp_args, fp_ret=fp_ret)
        added[name] = program.register_host_function(host)
    return added


def library_names() -> frozenset[str]:
    return frozenset(_LIBRARY)
