"""Program image: instructions, symbols, data, and patching.

A :class:`Program` is what the assembler emits and what the CPU, FPVM,
the static analysis and the profiler all consume.  It plays the role of
the ELF binary in the real system:

- the text section is a concrete byte stream (FPVM decodes the bytes);
- the symbol table is *rewritable*, which is how magic wrapping (§5.3)
  redirects ``printf`` to ``printf$fpvm`` the way the paper uses Lief;
- instructions can be patched with pre-hooks — an ``int3`` breakpoint
  or a magic-trap ``call`` — which is how the e9patch-based correctness
  instrumentation is modelled (§2.6, §5.2).
"""

from __future__ import annotations

import copy as _copy
import os
from dataclasses import dataclass, field
from enum import Enum

from repro.machine.encoding import encode_instruction
from repro.machine.isa import Instruction, Label, OpClass

TEXT_BASE = 0x400000
DATA_BASE = 0x600000
HEAP_BASE = 0x1000_0000
STACK_TOP = 0x7FFF_0000
MAGIC_PAGE_ADDR = 0x7FFE_0000
#: Host ("shared library") functions live at fake high addresses; a
#: call that lands in this range dispatches to a registered Python
#: callable instead of simulated code.
HOST_FUNC_BASE = 0x7000_0000


class PatchKind(Enum):
    """Pre-hooks attachable in front of an instruction (e9patch model)."""

    INT3 = "int3"
    MAGIC_CALL = "magic_call"


@dataclass
class Patch:
    kind: PatchKind
    #: for MAGIC_CALL: the trampoline callable invoked in user space.
    trampoline: object | None = None


@dataclass
class HostFunction:
    """A simulated shared-library function.

    ``fn(cpu)`` implements the body against raw machine state — it sees
    *bit patterns*, not virtualized values, exactly like real libc
    (which is why foreign-function correctness instrumentation exists).
    ``cost`` is the cycle charge of one call.
    """

    name: str
    fn: object
    cost: int = 30
    #: number of double arguments consumed from xmm0.. (metadata the
    #: wrapper generator uses to know what to demote).
    fp_args: int = 0
    #: True if the function returns a double in xmm0.
    fp_ret: bool = False


class ViewKind(Enum):
    """The two shadow views of guest text (virtual-breakpoint model)."""

    #: what the front end executes: pristine encodings plus the patch
    #: pre-hooks, with patch marker bytes in the guest-visible image.
    FETCH = "fetch"
    #: what guest loads from text addresses return: the original bytes,
    #: bit-identical no matter how much instrumentation is live.
    DATA = "data"


#: guest-visible first byte at a patched site in the FETCH image
#: (``int3`` / ``call rel32`` opcodes, the e9patch splice).
_PATCH_MARKERS = {PatchKind.INT3: 0xCC, PatchKind.MAGIC_CALL: 0xE8}

_NO_PATCHES: dict[int, Patch] = {}

_FALSEY = ("0", "false", "off", "no")


def shadow_view_enabled(env: str | None = None) -> bool:
    """Whether guest text memory is backed by the DATA view (default).

    ``FPVM_SHADOW_VIEW=0`` is the escape hatch: text pages are backed
    by the FETCH view instead, making patches guest-detectable — useful
    for debugging the instrumentation itself and for conformance tests
    that prove the shadow view is load-bearing.
    """
    if env is None:
        env = os.environ.get("FPVM_SHADOW_VIEW", "1")
    return env.strip().lower() not in _FALSEY


class CodeView:
    """One face of the guest text: FETCH (patched) or DATA (pristine).

    Both views decode to the same instruction stream — patches are
    pre-hook metadata, not byte splices, so ``raw_bytes_at`` always
    returns a decodable encoding.  They differ in two places:

    - ``patch_at``/``patches``: the FETCH view exposes the live patch
      table (the front end must deliver pre-hooks); the DATA view
      reports no patches ever.
    - ``text_bytes``/``bytes_at``: the guest-visible byte image.  The
      FETCH image shows the marker byte a binary patcher would have
      spliced at each patched site; the DATA image is the pristine
      ``Program.text``.

    The hot fetch path reads ``view.patches`` and ``view.by_addr``
    directly — both are the program's own dicts (or a shared immutable
    empty dict for DATA patches), so views add no per-step overhead.
    """

    __slots__ = ("program", "kind", "patches", "by_addr")

    def __init__(self, program: "Program", kind: ViewKind) -> None:
        self.program = program
        self.kind = kind
        self.patches = program.patches if kind is ViewKind.FETCH else _NO_PATCHES
        self.by_addr = program.by_addr

    def instruction_at(self, addr: int) -> Instruction:
        return self.program.instruction_at(addr)

    def raw_bytes_at(self, addr: int) -> bytes:
        """Decodable encoding of the instruction at ``addr`` (decoder
        feed on a decode-cache miss) — identical in both views."""
        return self.program.instruction_at(addr).raw

    def patch_at(self, addr: int) -> Patch | None:
        return self.patches.get(addr)

    def generation_at(self, addr: int) -> int:
        """How many patch-state changes have touched ``addr`` as seen
        through this view (always 0 for DATA)."""
        if self.kind is ViewKind.DATA:
            return 0
        return self.program.patch_gen.get(addr, 0)

    def text_bytes(self) -> bytes:
        """The guest-visible byte image of the text section."""
        prog = self.program
        if self.kind is ViewKind.DATA or not self.patches:
            return prog.text
        image = bytearray(prog.text)
        base = prog.text_base
        for addr, patch in self.patches.items():
            off = addr - base
            if 0 <= off < len(image):
                image[off] = _PATCH_MARKERS[patch.kind]
        return bytes(image)

    def bytes_at(self, addr: int, size: int) -> bytes:
        """``size`` guest-visible bytes starting at ``addr``."""
        off = addr - self.program.text_base
        if off < 0:
            raise ValueError(f"{addr:#x} below text base")
        return self.text_bytes()[off : off + size]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CodeView {self.kind.value} of {len(self.by_addr)} instrs>"


class Program:
    """An assembled binary."""

    def __init__(self) -> None:
        self.instructions: list[Instruction] = []
        self.by_addr: dict[int, Instruction] = {}
        self.text: bytes = b""
        self.text_base: int = TEXT_BASE
        self.data: bytes = b""
        self.data_base: int = DATA_BASE
        #: symbol name -> address (labels + data symbols + host funcs).
        self.symbols: dict[str, int] = {}
        self.entry: int = TEXT_BASE
        self.host_functions: dict[int, HostFunction] = {}
        self._next_host_addr = HOST_FUNC_BASE
        self.patches: dict[int, Patch] = {}
        #: per-address patch generation: addr -> number of patch-state
        #: changes that have touched that site.  Caches compare
        #: generations per site instead of flushing wholesale.
        self.patch_gen: dict[int, int] = {}
        #: append-only log of patched addresses, one entry per
        #: patch-state change.  ``patch_seq`` (== len(patch_events)) is
        #: the global cursor; consumers remember the last sequence they
        #: processed and invalidate only the sites in the suffix.
        self.patch_events: list[int] = []
        self.patch_seq: int = 0
        #: callbacks invoked with the patched address on every
        #: patch-state change (e.g. a Memory with a FETCH-bound text
        #: image keeping guest-visible bytes in sync).
        self.patch_listeners: list = []
        #: source line info for diagnostics: addr -> line number.
        self.lines: dict[int, int] = {}
        self.fetch_view = CodeView(self, ViewKind.FETCH)
        self.data_view = CodeView(self, ViewKind.DATA)

    # ------------------------------------------------------------ build
    def add_instruction(self, instr: Instruction) -> None:
        self.instructions.append(instr)
        self.by_addr[instr.addr] = instr

    def finalize_text(self) -> None:
        blob = bytearray()
        base = self.text_base
        for instr in self.instructions:
            expected = base + len(blob)
            if instr.addr != expected:
                raise ValueError(
                    f"instruction at {instr.addr:#x} not contiguous "
                    f"(expected {expected:#x})"
                )
            raw = encode_instruction(instr)
            instr.raw = raw
            instr.size = len(raw)
            blob += raw
        self.text = bytes(blob)

    def register_host_function(self, host: HostFunction) -> int:
        """Give a host function an address and a symbol table entry."""
        addr = self._next_host_addr
        self._next_host_addr += 16
        self.host_functions[addr] = host
        self.symbols[host.name] = addr
        return addr

    # --------------------------------------------------------- queries
    def instruction_at(self, addr: int) -> Instruction:
        try:
            return self.by_addr[addr]
        except KeyError:
            raise KeyError(f"no instruction at {addr:#x}") from None

    def raw_bytes_at(self, addr: int) -> bytes:
        """The encoded bytes of the instruction at ``addr`` (what the
        Capstone-analog decoder consumes on a cache miss)."""
        return self.instruction_at(addr).raw

    def next_addr(self, addr: int) -> int:
        return addr + self.instruction_at(addr).size

    def resolve(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r}") from None

    def is_host_addr(self, addr: int) -> bool:
        return addr in self.host_functions

    # -------------------------------------------------------- patching
    @property
    def patch_epoch(self) -> int:
        """Compat alias for :attr:`patch_seq`.

        Historic callers keyed caches on a single global epoch; the
        sequence number preserves their arithmetic (one bump per
        effective patch-state change) while ``patch_events`` carries
        the per-site information that makes targeted invalidation
        possible.
        """
        return self.patch_seq

    def _note_patch_change(self, addr: int) -> None:
        self.patch_gen[addr] = self.patch_gen.get(addr, 0) + 1
        self.patch_events.append(addr)
        self.patch_seq += 1
        for listener in self.patch_listeners:
            listener(addr)

    def patch_int3(self, addr: int) -> None:
        """Insert an ``int3``-style breakpoint in front of ``addr``."""
        self.instruction_at(addr)  # validate
        self.patches[addr] = Patch(PatchKind.INT3)
        self._note_patch_change(addr)

    def patch_call(self, addr: int, trampoline) -> None:
        """Insert a magic-trap ``call <trampoline>`` in front of ``addr``."""
        self.instruction_at(addr)
        self.patches[addr] = Patch(PatchKind.MAGIC_CALL, trampoline)
        self._note_patch_change(addr)

    def unpatch(self, addr: int) -> None:
        """Remove the pre-hook at ``addr`` (no-op if none)."""
        if self.patches.pop(addr, None) is not None:
            self._note_patch_change(addr)

    def clear_patches(self) -> None:
        for addr in list(self.patches):
            del self.patches[addr]
            self._note_patch_change(addr)

    def rebind_symbol(self, name: str, new_addr: int) -> None:
        """Point an existing symbol somewhere else (the Lief move)."""
        if name not in self.symbols:
            raise KeyError(f"cannot rebind undefined symbol {name!r}")
        self.symbols[name] = new_addr

    # ------------------------------------------------------------- CFG
    def basic_blocks(self) -> list[list[Instruction]]:
        """Partition the text into basic blocks (leaders at branch
        targets and after control transfers)."""
        if not self.instructions:
            return []
        leaders = {self.instructions[0].addr}
        for instr in self.instructions:
            if instr.opclass is OpClass.CONTROL:
                for op in instr.operands:
                    if isinstance(op, Label) and op.addr is not None:
                        leaders.add(op.addr)
                nxt = instr.addr + instr.size
                if nxt in self.by_addr:
                    leaders.add(nxt)
        blocks: list[list[Instruction]] = []
        current: list[Instruction] = []
        for instr in self.instructions:
            if instr.addr in leaders and current:
                blocks.append(current)
                current = []
            current.append(instr)
        if current:
            blocks.append(current)
        return blocks

    def copy(self) -> "Program":
        """A deep-enough copy: fresh patches and symbol table so a run
        can instrument freely without contaminating the original."""
        clone = Program.__new__(Program)
        clone.instructions = self.instructions
        clone.by_addr = self.by_addr
        clone.text = self.text
        clone.text_base = self.text_base
        clone.data = self.data
        clone.data_base = self.data_base
        clone.symbols = dict(self.symbols)
        clone.entry = self.entry
        clone.host_functions = dict(self.host_functions)
        clone._next_host_addr = self._next_host_addr
        clone.patches = {a: _copy.copy(p) for a, p in self.patches.items()}
        clone.patch_gen = dict(self.patch_gen)
        clone.patch_events = list(self.patch_events)
        clone.patch_seq = self.patch_seq
        clone.patch_listeners = []
        clone.lines = self.lines
        clone.fetch_view = CodeView(clone, ViewKind.FETCH)
        clone.data_view = CodeView(clone, ViewKind.DATA)
        return clone
