"""Program image: instructions, symbols, data, and patching.

A :class:`Program` is what the assembler emits and what the CPU, FPVM,
the static analysis and the profiler all consume.  It plays the role of
the ELF binary in the real system:

- the text section is a concrete byte stream (FPVM decodes the bytes);
- the symbol table is *rewritable*, which is how magic wrapping (§5.3)
  redirects ``printf`` to ``printf$fpvm`` the way the paper uses Lief;
- instructions can be patched with pre-hooks — an ``int3`` breakpoint
  or a magic-trap ``call`` — which is how the e9patch-based correctness
  instrumentation is modelled (§2.6, §5.2).
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field
from enum import Enum

from repro.machine.encoding import encode_instruction
from repro.machine.isa import Instruction, Label, OpClass

TEXT_BASE = 0x400000
DATA_BASE = 0x600000
HEAP_BASE = 0x1000_0000
STACK_TOP = 0x7FFF_0000
MAGIC_PAGE_ADDR = 0x7FFE_0000
#: Host ("shared library") functions live at fake high addresses; a
#: call that lands in this range dispatches to a registered Python
#: callable instead of simulated code.
HOST_FUNC_BASE = 0x7000_0000


class PatchKind(Enum):
    """Pre-hooks attachable in front of an instruction (e9patch model)."""

    INT3 = "int3"
    MAGIC_CALL = "magic_call"


@dataclass
class Patch:
    kind: PatchKind
    #: for MAGIC_CALL: the trampoline callable invoked in user space.
    trampoline: object | None = None


@dataclass
class HostFunction:
    """A simulated shared-library function.

    ``fn(cpu)`` implements the body against raw machine state — it sees
    *bit patterns*, not virtualized values, exactly like real libc
    (which is why foreign-function correctness instrumentation exists).
    ``cost`` is the cycle charge of one call.
    """

    name: str
    fn: object
    cost: int = 30
    #: number of double arguments consumed from xmm0.. (metadata the
    #: wrapper generator uses to know what to demote).
    fp_args: int = 0
    #: True if the function returns a double in xmm0.
    fp_ret: bool = False


class Program:
    """An assembled binary."""

    def __init__(self) -> None:
        self.instructions: list[Instruction] = []
        self.by_addr: dict[int, Instruction] = {}
        self.text: bytes = b""
        self.text_base: int = TEXT_BASE
        self.data: bytes = b""
        self.data_base: int = DATA_BASE
        #: symbol name -> address (labels + data symbols + host funcs).
        self.symbols: dict[str, int] = {}
        self.entry: int = TEXT_BASE
        self.host_functions: dict[int, HostFunction] = {}
        self._next_host_addr = HOST_FUNC_BASE
        self.patches: dict[int, Patch] = {}
        #: bumped on every patch-state change; superblock and
        #: compiled-trace caches key on it so a patch added anywhere
        #: invalidates every cached block wholesale (stale blocks would
        #: otherwise execute through a patch site without its pre-hook).
        self.patch_epoch: int = 0
        #: source line info for diagnostics: addr -> line number.
        self.lines: dict[int, int] = {}

    # ------------------------------------------------------------ build
    def add_instruction(self, instr: Instruction) -> None:
        self.instructions.append(instr)
        self.by_addr[instr.addr] = instr

    def finalize_text(self) -> None:
        blob = bytearray()
        base = self.text_base
        for instr in self.instructions:
            expected = base + len(blob)
            if instr.addr != expected:
                raise ValueError(
                    f"instruction at {instr.addr:#x} not contiguous "
                    f"(expected {expected:#x})"
                )
            raw = encode_instruction(instr)
            instr.raw = raw
            instr.size = len(raw)
            blob += raw
        self.text = bytes(blob)

    def register_host_function(self, host: HostFunction) -> int:
        """Give a host function an address and a symbol table entry."""
        addr = self._next_host_addr
        self._next_host_addr += 16
        self.host_functions[addr] = host
        self.symbols[host.name] = addr
        return addr

    # --------------------------------------------------------- queries
    def instruction_at(self, addr: int) -> Instruction:
        try:
            return self.by_addr[addr]
        except KeyError:
            raise KeyError(f"no instruction at {addr:#x}") from None

    def raw_bytes_at(self, addr: int) -> bytes:
        """The encoded bytes of the instruction at ``addr`` (what the
        Capstone-analog decoder consumes on a cache miss)."""
        return self.instruction_at(addr).raw

    def next_addr(self, addr: int) -> int:
        return addr + self.instruction_at(addr).size

    def resolve(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r}") from None

    def is_host_addr(self, addr: int) -> bool:
        return addr in self.host_functions

    # -------------------------------------------------------- patching
    def patch_int3(self, addr: int) -> None:
        """Insert an ``int3``-style breakpoint in front of ``addr``."""
        self.instruction_at(addr)  # validate
        self.patches[addr] = Patch(PatchKind.INT3)
        self.patch_epoch += 1

    def patch_call(self, addr: int, trampoline) -> None:
        """Insert a magic-trap ``call <trampoline>`` in front of ``addr``."""
        self.instruction_at(addr)
        self.patches[addr] = Patch(PatchKind.MAGIC_CALL, trampoline)
        self.patch_epoch += 1

    def unpatch(self, addr: int) -> None:
        """Remove the pre-hook at ``addr`` (no-op if none)."""
        if self.patches.pop(addr, None) is not None:
            self.patch_epoch += 1

    def clear_patches(self) -> None:
        if self.patches:
            self.patches.clear()
            self.patch_epoch += 1

    def rebind_symbol(self, name: str, new_addr: int) -> None:
        """Point an existing symbol somewhere else (the Lief move)."""
        if name not in self.symbols:
            raise KeyError(f"cannot rebind undefined symbol {name!r}")
        self.symbols[name] = new_addr

    # ------------------------------------------------------------- CFG
    def basic_blocks(self) -> list[list[Instruction]]:
        """Partition the text into basic blocks (leaders at branch
        targets and after control transfers)."""
        if not self.instructions:
            return []
        leaders = {self.instructions[0].addr}
        for instr in self.instructions:
            if instr.opclass is OpClass.CONTROL:
                for op in instr.operands:
                    if isinstance(op, Label) and op.addr is not None:
                        leaders.add(op.addr)
                nxt = instr.addr + instr.size
                if nxt in self.by_addr:
                    leaders.add(nxt)
        blocks: list[list[Instruction]] = []
        current: list[Instruction] = []
        for instr in self.instructions:
            if instr.addr in leaders and current:
                blocks.append(current)
                current = []
            current.append(instr)
        if current:
            blocks.append(current)
        return blocks

    def copy(self) -> "Program":
        """A deep-enough copy: fresh patches and symbol table so a run
        can instrument freely without contaminating the original."""
        clone = Program.__new__(Program)
        clone.instructions = self.instructions
        clone.by_addr = self.by_addr
        clone.text = self.text
        clone.text_base = self.text_base
        clone.data = self.data
        clone.data_base = self.data_base
        clone.symbols = dict(self.symbols)
        clone.entry = self.entry
        clone.host_functions = dict(self.host_functions)
        clone._next_host_addr = self._next_host_addr
        clone.patches = {a: _copy.copy(p) for a, p in self.patches.items()}
        clone.patch_epoch = self.patch_epoch
        clone.lines = self.lines
        return clone
