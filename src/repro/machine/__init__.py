"""x64-subset machine simulator.

A small but faithful model of the parts of x64 that FPVM cares about:

- 16 64-bit GPRs + 16 128-bit XMM registers + RFLAGS + MXCSR;
- SSE2 scalar/packed double arithmetic with *precise* IEEE-754
  exception semantics (via :mod:`repro.fpu.ieee`) and fault-style #XF
  traps controlled by MXCSR mask bits;
- the FP/integer porosity that makes x64 "not entirely virtualizable":
  movq between XMM and GPRs, bitwise ops on XMM (xorpd/andpd), and
  integer loads of memory that FP stores wrote;
- byte-addressable paged memory, a SysV-flavoured call ABI, host
  "shared library" functions (the un-analyzable libc/libm stand-ins),
  int3 breakpoints and instruction patching;
- a deterministic cycle cost model (:mod:`repro.machine.costs`)
  calibrated to the paper's measured constants.
"""

from repro.machine.isa import (
    Instruction,
    Imm,
    Label,
    Mem,
    Reg,
    Xmm,
    OPCODES,
    OpClass,
)
from repro.machine.assembler import assemble, AssemblerError
from repro.machine.program import Program
from repro.machine.cpu import CPU, Trap, TrapKind, MachineError
from repro.machine.memory import Memory, PAGE_SIZE
from repro.machine.decoder import decode_instruction
from repro.machine.encoding import encode_instruction

__all__ = [
    "Instruction",
    "Imm",
    "Label",
    "Mem",
    "Reg",
    "Xmm",
    "OPCODES",
    "OpClass",
    "assemble",
    "AssemblerError",
    "Program",
    "CPU",
    "Trap",
    "TrapKind",
    "MachineError",
    "Memory",
    "PAGE_SIZE",
    "decode_instruction",
    "encode_instruction",
]
