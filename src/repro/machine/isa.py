"""ISA definition: registers, operands, instructions, opcode metadata.

The opcode table is the single source of truth consumed by the
assembler, the encoder/decoder, the CPU interpreter, and FPVM's own
emulator (which supports a *subset* — the support gap is what
terminates emulated instruction sequences, §4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

GPR_NAMES = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)
XMM_NAMES = tuple(f"xmm{i}" for i in range(16))

GPR_IDS = {name: i for i, name in enumerate(GPR_NAMES)}
XMM_IDS = {name: i for i, name in enumerate(XMM_NAMES)}

RSP = GPR_IDS["rsp"]
RBP = GPR_IDS["rbp"]


@dataclass(frozen=True)
class Reg:
    """A 64-bit general purpose register operand."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in GPR_IDS:
            raise ValueError(f"unknown GPR {self.name!r}")

    @property
    def id(self) -> int:
        return GPR_IDS[self.name]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Xmm:
    """A 128-bit SSE register operand."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in XMM_IDS:
            raise ValueError(f"unknown XMM register {self.name!r}")

    @property
    def id(self) -> int:
        return XMM_IDS[self.name]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """A 64-bit immediate (stored as a signed Python int)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``[base + index*scale + disp]`` or rip-relative.

    ``rip_label`` holds the symbol for ``[rip + sym]`` addressing before
    relocation; after assembly ``disp`` carries the absolute address and
    ``rip_label`` is retained for display only.
    """

    base: str | None = None
    index: str | None = None
    scale: int = 1
    disp: int = 0
    rip_label: str | None = None
    size: int = 8

    def __post_init__(self) -> None:
        if self.base is not None and self.base not in GPR_IDS:
            raise ValueError(f"bad base register {self.base!r}")
        if self.index is not None and self.index not in GPR_IDS:
            raise ValueError(f"bad index register {self.index!r}")
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"bad scale {self.scale}")
        if self.size not in (1, 2, 4, 8, 16):
            raise ValueError(f"bad access size {self.size}")

    def __str__(self) -> str:
        if self.rip_label is not None:
            return f"[rip + {self.rip_label}]"
        parts = []
        if self.base:
            parts.append(self.base)
        if self.index:
            parts.append(f"{self.index}*{self.scale}" if self.scale != 1 else self.index)
        if self.disp or not parts:
            parts.append(f"{self.disp:#x}")
        return "[" + " + ".join(parts) + "]"


@dataclass(frozen=True)
class Label:
    """A code label operand (branch/call target).  After assembly the
    target address is resolved into ``addr``."""

    name: str
    addr: int | None = None

    def __str__(self) -> str:
        return self.name


Operand = Reg | Xmm | Imm | Mem | Label


class OpClass(enum.Enum):
    """Coarse instruction classes used by FPVM and the analyses."""

    FP_ARITH = "fp_arith"      # SSE2 arithmetic: can raise #XF
    FP_BITWISE = "fp_bitwise"  # xorpd/andpd/orpd: no FP exceptions
    FP_MOV = "fp_mov"          # XMM moves (never raise #XF)
    FP_CVT = "fp_cvt"          # conversions (can raise #XF)
    INT_MOV = "int_mov"        # GPR/memory moves, lea, push/pop
    INT_ALU = "int_alu"        # add/sub/imul/logic/shifts/cmp/test
    CONTROL = "control"        # jumps, call, ret
    SYS = "sys"                # int3, nop, hlt


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata for one mnemonic."""

    mnemonic: str
    opclass: OpClass
    #: mnemonic for :func:`repro.fpu.ieee.ieee_op`, if FP arithmetic.
    ieee: str | None = None
    #: number of 64-bit lanes an FP op processes (1=scalar, 2=packed).
    lanes: int = 1
    #: operand count accepted by the assembler.
    arity: int = 2
    #: native execution cost in cycles (see machine.costs for the story).
    cost: int = 1
    #: True if the op writes its first operand (dst, src convention).
    writes_dst: bool = True


def _op(mn, cls, ieee=None, lanes=1, arity=2, cost=1, writes_dst=True):
    return OpcodeInfo(mn, cls, ieee, lanes, arity, cost, writes_dst)


_FP_COST = {"add": 4, "sub": 4, "mul": 5, "div": 13, "sqrt": 20, "min": 4, "max": 4}

OPCODES: dict[str, OpcodeInfo] = {}


def _register(info: OpcodeInfo) -> None:
    OPCODES[info.mnemonic] = info


# --- SSE2 scalar double arithmetic -----------------------------------------
for _name, _ieee in [
    ("addsd", "add"), ("subsd", "sub"), ("mulsd", "mul"), ("divsd", "div"),
    ("minsd", "min"), ("maxsd", "max"),
]:
    _register(_op(_name, OpClass.FP_ARITH, ieee=_ieee, cost=_FP_COST[_ieee]))
_register(_op("sqrtsd", OpClass.FP_ARITH, ieee="sqrt", cost=_FP_COST["sqrt"]))
# FMA3 (VEX): dst = src2 * dst + src3, fused with a single rounding.
_register(_op("vfmadd213sd", OpClass.FP_ARITH, ieee="fma", arity=3, cost=5))
_register(_op("ucomisd", OpClass.FP_ARITH, ieee="ucomi", cost=3, writes_dst=False))
_register(_op("comisd", OpClass.FP_ARITH, ieee="comi", cost=3, writes_dst=False))
for _pred in ("eq", "lt", "le", "unord", "neq", "nlt", "nle", "ord"):
    _register(_op(f"cmp{_pred}sd", OpClass.FP_ARITH, ieee=f"cmp_{_pred}", cost=4))

# --- SSE2 packed double arithmetic ------------------------------------------
for _name, _ieee in [
    ("addpd", "add"), ("subpd", "sub"), ("mulpd", "mul"), ("divpd", "div"),
    ("minpd", "min"), ("maxpd", "max"),
]:
    _register(_op(_name, OpClass.FP_ARITH, ieee=_ieee, lanes=2, cost=_FP_COST[_ieee]))
_register(_op("sqrtpd", OpClass.FP_ARITH, ieee="sqrt", lanes=2, cost=_FP_COST["sqrt"]))

# --- conversions -------------------------------------------------------------
_register(_op("cvtsi2sd", OpClass.FP_CVT, ieee="cvtsi2sd", cost=5))
_register(_op("cvttsd2si", OpClass.FP_CVT, ieee="cvttsd2si", cost=5))
_register(_op("cvtsd2si", OpClass.FP_CVT, ieee="cvtsd2si", cost=5))

# --- FP bitwise (sign tricks; raise no FP exceptions) ------------------------
for _name in ("xorpd", "andpd", "orpd", "andnpd"):
    _register(_op(_name, OpClass.FP_BITWISE, cost=1))

# --- XMM moves ---------------------------------------------------------------
for _name in ("movsd", "movapd", "movupd", "movhpd", "movlpd", "movq",
              "movddup"):
    _register(_op(_name, OpClass.FP_MOV, cost=1))
# Shuffles/unpacks: 2-operand lane rearrangers (shufpd takes an imm8
# control as a third operand).  Deliberately outside the emulator's
# default supported set — part of the "123 ignored" opcodes of §4.2.
_register(_op("unpcklpd", OpClass.FP_MOV, cost=1))
_register(_op("unpckhpd", OpClass.FP_MOV, cost=1))
_register(_op("shufpd", OpClass.FP_MOV, arity=3, cost=1))

# --- GPR moves ---------------------------------------------------------------
_register(_op("mov", OpClass.INT_MOV, cost=1))
_register(_op("lea", OpClass.INT_MOV, cost=1))
_register(_op("push", OpClass.INT_MOV, arity=1, cost=2, writes_dst=False))
_register(_op("pop", OpClass.INT_MOV, arity=1, cost=2))
_register(_op("xchg", OpClass.INT_MOV, cost=2))

# --- integer ALU -------------------------------------------------------------
for _name in ("add", "sub", "and", "or", "xor"):
    _register(_op(_name, OpClass.INT_ALU, cost=1))
_register(_op("imul", OpClass.INT_ALU, cost=3))
for _name in ("shl", "shr", "sar"):
    _register(_op(_name, OpClass.INT_ALU, cost=1))
_register(_op("cmp", OpClass.INT_ALU, cost=1, writes_dst=False))
_register(_op("test", OpClass.INT_ALU, cost=1, writes_dst=False))
for _name in ("inc", "dec", "neg", "not"):
    _register(_op(_name, OpClass.INT_ALU, arity=1, cost=1))

# --- control flow ------------------------------------------------------------
_register(_op("jmp", OpClass.CONTROL, arity=1, cost=1, writes_dst=False))
for _name in ("je", "jne", "jl", "jle", "jg", "jge", "jb", "jbe",
              "ja", "jae", "js", "jns", "jp", "jnp"):
    _register(_op(_name, OpClass.CONTROL, arity=1, cost=1, writes_dst=False))
_register(_op("call", OpClass.CONTROL, arity=1, cost=4, writes_dst=False))
_register(_op("ret", OpClass.CONTROL, arity=0, cost=4, writes_dst=False))

# --- system ------------------------------------------------------------------
_register(_op("int3", OpClass.SYS, arity=0, cost=1, writes_dst=False))
_register(_op("nop", OpClass.SYS, arity=0, cost=1, writes_dst=False))
_register(_op("hlt", OpClass.SYS, arity=0, cost=1, writes_dst=False))

#: Stable numbering for the binary encoding.
OPCODE_IDS: dict[str, int] = {mn: i for i, mn in enumerate(sorted(OPCODES))}
OPCODE_BY_ID: dict[int, str] = {i: mn for mn, i in OPCODE_IDS.items()}

#: Condition code -> RFLAGS predicate, used by the CPU and the emulator.
CONDITION_CODES = {
    "je": lambda f: f.zf,
    "jne": lambda f: not f.zf,
    "jl": lambda f: f.sf != f.of,
    "jle": lambda f: f.zf or (f.sf != f.of),
    "jg": lambda f: (not f.zf) and (f.sf == f.of),
    "jge": lambda f: f.sf == f.of,
    "jb": lambda f: f.cf,
    "jbe": lambda f: f.cf or f.zf,
    "ja": lambda f: (not f.cf) and (not f.zf),
    "jae": lambda f: not f.cf,
    "js": lambda f: f.sf,
    "jns": lambda f: not f.sf,
    "jp": lambda f: f.pf,
    "jnp": lambda f: not f.pf,
}


#: OpClasses that touch FP state at all (reads included) — the lazy-FP
#: #NM trigger set: any retirement in one of these classes by a
#: non-owner thread forces an ownership switch.
FP_TOUCH_CLASSES = frozenset(
    (OpClass.FP_ARITH, OpClass.FP_BITWISE, OpClass.FP_MOV, OpClass.FP_CVT)
)


def xmm_write_mask(instr: "Instruction") -> int:
    """The XMM *lane* mask this instruction architecturally writes
    (bit ``2*xid + lane``), mirroring the interpreter's commit paths
    exactly.  Static per instruction — the micro-op lowering bakes it
    into per-superblock summaries and the interpreter caches it on the
    instruction, so both tiers charge identical dirty sets."""
    info = OPCODES[instr.mnemonic]
    cls = info.opclass
    ops = instr.operands
    if cls in (OpClass.FP_ARITH, OpClass.FP_CVT):
        mn = instr.mnemonic
        if mn in ("ucomisd", "comisd"):       # flags only
            return 0
        if mn in ("cvttsd2si", "cvtsd2si"):   # GPR destination
            return 0
        xid = ops[0].id
        if info.lanes == 2:
            return 0b11 << (2 * xid)
        return 0b01 << (2 * xid)              # scalar: low lane only
    if cls is OpClass.FP_BITWISE:
        return 0b11 << (2 * ops[0].id)
    if cls is OpClass.FP_MOV:
        mn = instr.mnemonic
        dst = ops[0]
        if not isinstance(dst, Xmm):          # store to memory / GPR
            return 0
        base = 2 * dst.id
        if mn == "movsd":
            # reg-reg merges into the low lane; a load zeroes the high.
            if isinstance(ops[1], Xmm):
                return 0b01 << base
            return 0b11 << base
        if mn == "movhpd":
            return 0b10 << base
        if mn in ("movlpd", "unpcklpd"):
            # unpcklpd writes dst.hi = src.lo, dst.lo keeps dst.lo.
            if mn == "unpcklpd":
                return 0b10 << base
            return 0b01 << base
        # shufpd/movapd/movupd/movq/movddup/unpckhpd write both lanes.
        return 0b11 << base
    return 0


@dataclass
class Instruction:
    """One decoded instruction.

    ``addr`` and ``size`` are filled in by the assembler; ``raw`` holds
    the encoded bytes (what Capstone-analog decoding operates on).
    """

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    addr: int = 0
    size: int = 0
    raw: bytes = b""

    def __post_init__(self) -> None:
        if self.mnemonic not in OPCODES:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")
        self.operands = tuple(self.operands)

    @property
    def info(self) -> OpcodeInfo:
        return OPCODES[self.mnemonic]

    @property
    def opclass(self) -> OpClass:
        return self.info.opclass

    def is_fp_trap_capable(self) -> bool:
        """Could this instruction raise #XF?"""
        return self.opclass in (OpClass.FP_ARITH, OpClass.FP_CVT)

    def xmm_writes(self) -> int:
        """Cached :func:`xmm_write_mask` — the interpreter's per-step
        dirty marking reads this once per instruction object."""
        mask = getattr(self, "_xmm_wmask", None)
        if mask is None:
            mask = self._xmm_wmask = xmm_write_mask(self)
        return mask

    def xmm_operands(self) -> int:
        """Cached lane mask over every XMM *operand* (reads and writes,
        both lanes) — the handler's declared clobber set under lazy
        state save: emulating this instruction touches exactly these
        registers host-side."""
        mask = getattr(self, "_xmm_omask", None)
        if mask is None:
            mask = 0
            for op in self.operands:
                if isinstance(op, Xmm):
                    mask |= 0b11 << (2 * op.id)
            self._xmm_omask = mask
        return mask

    def memory_operand(self) -> Mem | None:
        for op in self.operands:
            if isinstance(op, Mem):
                return op
        return None

    def __str__(self) -> str:
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} " + ", ".join(str(o) for o in self.operands)
