"""Fused trace JIT: stable superblock chains compiled to one closure.

The chain dispatcher (see :mod:`repro.machine.uops`) already strings
superblocks together through per-edge link caches, but still pays a
link lookup, a per-block closure loop, per-uop ``SLOW`` checks, and a
per-uop RIP store at every step of every lap of a hot loop.  This
module is the tier above it: when a chain keeps retiring the *same*
cyclic block sequence (``trace_stabilize_threshold`` consecutive
laps), the whole cycle is specialized into a single ``compile()``\\ d
Python closure:

- operand accessors are constant-folded into the generated source
  (register indices, effective-address arithmetic, immediates);
- per-block dispatch, link lookup, and retire accounting are hoisted
  out of the loop entirely — one ``settle()`` call per trace *exit*
  charges ``iterations x per-iteration totals`` plus the retired
  prefix of the final partial lap;
- guard checks exist only at side-exit points: the budget edge (the
  loop condition itself), the MXCSR/fp-disabled entry guard, branch
  mispredictions, ``ret``'s halt sentinel, and the ``SLOW`` protocol
  of any micro-op that fell back to its bound closure.

The FP fast-path guard (``cpu.fp_disabled`` / MXCSR field) is hoisted
to one check per trace *entry*: nothing inside a trace can change it,
because chainable tails cannot run host code and the fast FP helpers
never write MXCSR status.  Likewise ``patch_epoch`` cannot move inside
a trace, so epoch invalidation is handled where it always was — the
engine loop syncs the :class:`~repro.machine.uops.SuperblockCache`,
and a flush drops every compiled trace with the blocks.

Step parity is exact.  Each generated step is one seed ``cpu.step()``
equivalent; a trace call retires ``iters * n_steps + pos`` steps and
``settle()`` charges cycles / instruction counts / per-class retire
counters identically to the chained dispatcher.  Micro-ops the code
generator does not specialize call their already-bound block closures
(same objects the superblock body would have called), so semantics
can never diverge by construction — only the dispatch around them
changes.  If a closure raises mid-trace (memory fault), the generated
``except`` hook reports the completed laps and the retired prefix so
the accounting settles *before* the exception becomes observable, and
RIP is placed on the faulting instruction exactly like single-stepping
would have.

``CODEGEN_HOOK`` is a test seam: the conformance suite injects a
bit-flipped constant into one generated closure and requires the
differential replay oracle to localize the divergence to the exact
step (see ``tests/conformance/test_replay.py``).
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict

from repro.machine.isa import (
    FP_TOUCH_CLASSES,
    GPR_IDS,
    Imm,
    Label,
    Mem,
    OpClass,
    Reg,
    Xmm,
)
from repro.machine.memory import PAGE_SHIFT, PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.machine.uops import (
    _FALSEY,
    _FP_FAST_FIELD,
    _FP_FAST_VALUE,
    _fadd,
    _fdiv,
    _fmul,
    _fsqrt,
    _fsub,
    _load8_factory,
    _PACK_D,
    _PACK_Q,
    _PARITY,
    _raw_load8_factory,
    _raw_store8_factory,
    _SQRT,
    _store8_factory,
    _UNPACK_D,
    _UNPACK_Q,
    FAST_SCALAR,
    SLOW,
    U64,
    lower,
)

#: Longest block cycle the recorder will consider for fusion.
MAX_TRACE_BLOCKS = 16

#: Demotion window: a trace is re-evaluated once it has run this often.
DEMOTE_MIN_RUNS = 8

#: Re-stabilization backoff is capped at ``threshold << BACKOFF_CAP``.
BACKOFF_CAP = 8

#: Per-thread compiled-trace cap (matches the block cache's spirit of
#: wholesale bounds rather than LRU bookkeeping).
MAX_TRACES = 512

#: Exit codes returned by a generated trace closure.
EXIT_DONE = 0     #: loop-exit branch retired; trace left cleanly
EXIT_SLOW = 1     #: a fallback closure returned SLOW (no side effects)
EXIT_SIDE = 2     #: branch misprediction mid-lap (side exit)
EXIT_HALT = 3     #: ret popped the return sentinel and halted the CPU
EXIT_BUDGET = 4   #: not enough budget left for another full lap
EXIT_MXCSR = 5    #: FP fast-path entry guard failed (attach / #XF mode)

EXIT_NAMES = ("exit", "slow", "side", "halt", "budget", "mxcsr")

#: Test seam: ``hook(entry, source, namespace) -> source | None`` runs
#: just before ``compile()``; it may rewrite the generated source or
#: rebind namespace constants (fault injection for the replay oracle).
CODEGEN_HOOK = None

_SBIT = 1 << 63


def trace_enabled_default() -> bool:
    """The ``FPVM_TRACEJIT`` escape hatch: set to ``0`` to keep chained
    dispatch but never fuse chains into compiled traces."""
    return os.environ.get("FPVM_TRACEJIT", "1").strip().lower() not in _FALSEY


def stabilize_threshold_default() -> int:
    """``FPVM_TRACE_THRESHOLD``: consecutive identical laps of a block
    cycle before it is fused (default 3)."""
    try:
        return max(1, int(os.environ.get("FPVM_TRACE_THRESHOLD", "3")))
    except ValueError:
        return 3


# ------------------------------------------------------------ ChainTrace
class ChainTrace:
    """One compiled trace: a closed cycle of superblocks fused into a
    single generated closure, plus the accounting tables to settle any
    number of laps in O(1).

    The closure protocol is ``fn(avail) -> (iters, pos, code)``:
    ``iters`` complete laps ran, then ``pos`` steps of the next lap
    retired before exit ``code`` (:data:`EXIT_NAMES`).  The closure
    never retires more than ``avail`` steps.  On an exception the
    closure stores ``(iters, pos)`` into its ``_x`` cell before
    re-raising; :meth:`run` settles from the cell so counters are
    exact before the exception is observable."""

    __slots__ = ("entry", "block_entries", "ranges", "n_steps", "iter_cost",
                 "iter_instrs", "iter_classes", "flat", "fn", "cpu",
                 "source", "runs", "bad_exits", "_x",
                 "prefix_fp", "prefix_touch", "iter_fp_mask", "iter_fp_touch")

    def __init__(self, cpu, entry, block_entries, flat, fn, source, xcell,
                 ranges=()):
        self.cpu = cpu
        self.entry = entry
        self.block_entries = block_entries
        #: ``(start, end)`` address ranges of the fused superblocks
        #: (end exclusive, tails included); per-site invalidation drops
        #: the trace iff a patched site falls inside one of them.
        self.ranges = ranges
        #: per-step (opclass | None, cost, addr); ``None`` marks a tail
        #: closure that performs its own retire accounting.
        self.flat = flat
        self.n_steps = len(flat)
        cost = 0
        instrs = 0
        classes: dict = {}
        for cls, c, _ in flat:
            if cls is not None:
                cost += c
                instrs += 1
                classes[cls] = classes.get(cls, 0) + 1
        self.iter_cost = cost
        self.iter_instrs = instrs
        self.iter_classes = classes
        # Lazy-FP per-step summaries, mirroring Superblock.prefix_fp:
        # ``prefix_fp[pos]``/``prefix_touch[pos]`` cover the first
        # ``pos`` steps of a lap, so settle() charges the dirty set of
        # any partial lap with one index.  Tail steps (cls None) are
        # chainable control — they cannot write XMM state.
        by_addr = cpu.program.by_addr
        pf = [0]
        pt = [False]
        for cls, _c, addr in flat:
            mask = 0
            touch = False
            if cls is not None and cls in FP_TOUCH_CLASSES:
                touch = True
                instr = by_addr.get(addr)
                if instr is not None:
                    mask = instr.xmm_writes()
            pf.append(pf[-1] | mask)
            pt.append(pt[-1] or touch)
        self.prefix_fp = pf
        self.prefix_touch = pt
        self.iter_fp_mask = pf[-1]
        self.iter_fp_touch = pt[-1]
        self.fn = fn
        self.source = source
        self.runs = 0
        self.bad_exits = 0
        self._x = xcell

    def run(self, avail: int):
        """Execute up to ``avail`` steps; returns ``(iters, pos, code)``.
        Settles accounting and places RIP on the faulting instruction if
        the generated code raises."""
        try:
            return self.fn(avail)
        except BaseException:
            iters, pos = self._x
            self.settle(iters, pos)
            if pos < self.n_steps:
                self.cpu.regs.rip = self.flat[pos][2]
            raise

    def settle(self, iters: int, pos: int) -> int:
        """Charge retire accounting for ``iters`` laps plus ``pos``
        steps of a final partial lap; returns total steps retired.
        Tail closures marked ``None`` in :attr:`flat` already accounted
        themselves when they ran."""
        cpu = self.cpu
        cycles = self.iter_cost * iters
        instrs = self.iter_instrs * iters
        rbc = cpu.retired_by_class
        if iters:
            for cls, cnt in self.iter_classes.items():
                rbc[cls] += cnt * iters
        if pos:
            for cls, cost, _ in self.flat[:pos]:
                if cls is not None:
                    cycles += cost
                    instrs += 1
                    rbc[cls] += 1
        if cycles:
            cpu.cycles += cycles
            cpu.work_cycles += cycles
        if instrs:
            cpu.instruction_count += instrs
        if (self.iter_fp_touch and iters) or self.prefix_touch[pos]:
            cpu.fp_quantum_touched = True
            cpu.regs.fp_dirty |= (
                (self.iter_fp_mask if iters else 0) | self.prefix_fp[pos])
        return iters * self.n_steps + pos


# --------------------------------------------------------- codegen state
class _Gen:
    """Accumulates generated source lines, the exec namespace, and the
    per-step accounting table while a trace is being specialized."""

    def __init__(self, cpu):
        self.cpu = cpu
        self.ns = {"_cpu": cpu}
        self.pre: list[str] = []    # helper hoists (namespace -> local)
        self.body: list[str] = []   # loop-body lines
        self.flat: list = []        # (opclass | None, cost, addr)
        self.lanes: set[int] = set()
        self.fp_guard = False
        self.mem_guard = False      # observed memory ops -> entry guard
        self.has_closures = False   # any bound step closure on the path
        self._bound: dict[str, str] = {}
        self._mem: dict[str, str] = {}

    def bind(self, name: str, obj) -> str:
        """Expose ``obj`` to the generated code as local ``name``
        (hoisted from the namespace once, in the preamble)."""
        if name not in self._bound:
            self.ns["_G" + name] = obj
            self.pre.append(f"{name} = _G{name}")
            self._bound[name] = name
        return name

    def bind_mem(self, kind: str) -> str:
        """Bind one of the fast memory closures on first use.  Observed
        kinds flip :attr:`mem_guard` so the trace refuses to run while
        memory observers are attached (inline accesses skip the
        per-access observer check — see the entry guard)."""
        name = self._mem.get(kind)
        if name is None:
            mem = self.cpu.mem
            factory = {
                "ld": lambda: _load8_factory(mem, True),
                "ldi": lambda: _load8_factory(mem, False),
                "st": lambda: _store8_factory(mem, True),
                "sti": lambda: _store8_factory(mem, False),
                "rld": lambda: _raw_load8_factory(mem),
                "rst": lambda: _raw_store8_factory(mem),
            }[kind]
            name = self.bind(kind, factory())
            self._mem[kind] = name
        if kind in ("ld", "ldi", "st", "sti"):
            self.mem_guard = True
            self.bind("mm", self.cpu.mem)
        return name


def _ea_expr(m: Mem) -> str:
    """Constant-folded effective-address expression over ``g`` (the
    hoisted GPR list) — the generated twin of ``_ea_factory``."""
    parts = []
    if m.base is not None:
        parts.append(f"g[{GPR_IDS[m.base]}]")
    if m.index is not None:
        iid = GPR_IDS[m.index]
        parts.append(f"g[{iid}] * {m.scale}" if m.scale != 1
                     else f"g[{iid}]")
    if not parts:
        return str(m.disp & U64)
    expr = " + ".join(parts)
    if m.disp:
        expr += f" + {m.disp}" if m.disp > 0 else f" - {-m.disp}"
    return f"(({expr}) & {U64})"


_PAGE_MASK = PAGE_SIZE - 1
_PAGE_LAST = PAGE_SIZE - 8

# Struct objects (not just their bound pack/unpack methods) so the
# generated code can unpack_from / pack_into page bytearrays with zero
# intermediate allocations.
_S_D = struct.Struct("<d")
_S_Q = struct.Struct("<Q")


def _page_head(g: _Gen, addr_expr: str) -> list[str]:
    pgs = g.bind("pgs", g.cpu.mem._pages.get)
    return [f"_ea = {addr_expr}",
            f"_pg = {pgs}(_ea >> {PAGE_SHIFT})",
            f"_o = _ea & {_PAGE_MASK}"]


def _load_bits(g: _Gen, addr_expr: str, kind: str, target: str) -> list[str]:
    """Inline single-page 8-byte integer load into ``target`` — the
    generated twin of the fast memory closures' happy path.  Everything
    off it (unmapped / short / unreadable page) calls the bound
    closure, so semantics are exactly the Memory methods'.  Observed
    kinds are covered by the entry guard: a trace never runs while
    memory observers are attached, and nothing inside a trace can
    attach one (chainable tails cannot reach host code or syscalls)."""
    fb = g.bind_mem(kind)
    uqf = g.bind("uqf", _S_Q.unpack_from)
    return _page_head(g, addr_expr) + [
        f"if _pg is not None and _o <= {_PAGE_LAST} and _pg.prot & {PROT_READ}:",
        f"    {target} = {uqf}(_pg.data, _o)[0]",
        "else:",
        f"    {target} = {fb}(_ea)",
    ]


def _store_bits(g: _Gen, addr_expr: str, kind: str, val_expr: str) -> list[str]:
    """Inline single-page 8-byte integer store of ``val_expr`` (must be
    a simple side-effect-free expression)."""
    fb = g.bind_mem(kind)
    pqf = g.bind("pqf", _S_Q.pack_into)
    return _page_head(g, addr_expr) + [
        f"if _pg is not None and _o <= {_PAGE_LAST} and _pg.prot & {PROT_WRITE}:",
        f"    {pqf}(_pg.data, _o, {val_expr} & {U64})",
        "else:",
        f"    {fb}(_ea, {val_expr})",
    ]


def _load_float(g: _Gen, addr_expr: str, target: str) -> list[str]:
    """Inline 8-byte FP load straight into a float lane local.  The
    struct round-trip is a memcpy, so NaN payloads and signed zeros are
    bit-exact in either representation."""
    fb = g.bind_mem("ld")
    udf = g.bind("udf", _S_D.unpack_from)
    ud = g.bind("ud", _UNPACK_D)
    pq = g.bind("pq", _PACK_Q)
    return _page_head(g, addr_expr) + [
        f"if _pg is not None and _o <= {_PAGE_LAST} and _pg.prot & {PROT_READ}:",
        f"    {target} = {udf}(_pg.data, _o)[0]",
        "else:",
        f"    {target} = {ud}({pq}({fb}(_ea)))[0]",
    ]


def _store_float(g: _Gen, addr_expr: str, val_expr: str) -> list[str]:
    """Inline 8-byte FP store of a float lane local."""
    fb = g.bind_mem("st")
    pdf = g.bind("pdf", _S_D.pack_into)
    uq = g.bind("uq", _UNPACK_Q)
    pd = g.bind("pd", _PACK_D)
    return _page_head(g, addr_expr) + [
        f"if _pg is not None and _o <= {_PAGE_LAST} and _pg.prot & {PROT_WRITE}:",
        f"    {pdf}(_pg.data, _o, {val_expr})",
        "else:",
        f"    {fb}(_ea, {uq}({pd}({val_expr}))[0])",
    ]


def _operand(g: _Gen, op, s: int, lines: list[str], tmp: str = "_v"):
    """Generated twin of ``_reader_u64`` for integer contexts: returns
    a *simple* expression holding the operand's u64 value, appending
    inline load lines to ``lines`` for memory operands.  None for
    shapes the generator leaves to bound closures."""
    if isinstance(op, Reg):
        return f"g[{op.id}]"
    if isinstance(op, Imm):
        return str(op.value & U64)
    if isinstance(op, Mem):
        if op.size != 8:
            return None
        lines.append(f"p = {s}")
        lines.extend(_load_bits(g, _ea_expr(op), "ldi", tmp))
        return tmp
    return None


def _fp_operand(g: _Gen, op, s: int, lines: list[str]):
    """FP source operand as a float expression (lane local or inline
    memory load into ``_vf``)."""
    if isinstance(op, Xmm):
        g.lanes.add(op.id)
        return f"x{op.id}f"
    if isinstance(op, Mem) and op.size == 8:
        lines.append(f"p = {s}")
        lines.extend(_load_float(g, _ea_expr(op), "_vf"))
        return "_vf"
    return None


# -------------------------------------------------------- body emitters
#: pristine fast-scalar functions that may be opened up inline.  A
#: monkeypatched ``FAST_SCALAR`` entry (the replay oracle's corruption
#: seam) falls back to the call form so the patch keeps biting.
_INLINE_FP = {"add": (_fadd, "+"), "sub": (_fsub, "-"),
              "mul": (_fmul, "*"), "div": (_fdiv, "/")}


def _bind_fp_structs(g: _Gen):
    return (g.bind("ud", _UNPACK_D), g.bind("pq", _PACK_Q),
            g.bind("pd", _PACK_D), g.bind("uq", _UNPACK_Q))


def _fp_call(g: _Gen, target: str, fname: str, *args: str) -> str:
    """A fast-scalar call in float-lane representation: convert the
    float operands to their exact bit patterns, call the (possibly
    monkeypatched) bits-level helper, convert the result back."""
    ud, pq, pd, uq = _bind_fp_structs(g)
    bits = ", ".join(f"{uq}({pd}({a}))[0]" for a in args)
    return f"{target} = {ud}({pq}({fname}({bits})))[0]"


def _emit_fp(g: _Gen, u, s: int):
    ops = u.instr.operands
    if u.emu_kind == "bin" and u.lanes == 1 and isinstance(ops[0], Xmm):
        fast = FAST_SCALAR.get(u.ieee)
        if fast is None:
            return None
        lines: list[str] = []
        e = _fp_operand(g, ops[1], s, lines)
        if e is None:
            return None
        fname = g.bind(f"f_{u.ieee}", fast)
        d = ops[0].id
        g.lanes.add(d)
        g.fp_guard = True
        inline = _INLINE_FP.get(u.ieee)
        if inline is not None and fast is inline[0]:
            opch = inline[1]
            guard = f"x{d}f != x{d}f or {e} != {e}"
            if u.ieee == "div":
                guard += f" or {e} == 0.0"
            lines += [f"if {guard}:",
                      "    " + _fp_call(g, f"x{d}f", fname, f"x{d}f", e),
                      "else:",
                      f"    x{d}f = x{d}f {opch} {e}"]
        else:
            lines.append(_fp_call(g, f"x{d}f", fname, f"x{d}f", e))
        return lines
    if u.mnemonic == "sqrtsd" and isinstance(ops[0], Xmm):
        fast = FAST_SCALAR["sqrt"]
        lines = []
        e = _fp_operand(g, ops[1], s, lines)
        if e is None:
            return None
        fname = g.bind("f_sqrt", fast)
        d = ops[0].id
        g.lanes.add(d)
        g.fp_guard = True
        if fast is _fsqrt:
            sq = g.bind("sq", _SQRT)
            # ``_fa >= 0.0`` is False for NaN, so NaN payloads and
            # negative inputs both take the exact fallback.
            lines += [f"_fa = {e}",
                      "if _fa >= 0.0:",
                      f"    x{d}f = {sq}(_fa)",
                      "else:",
                      "    " + _fp_call(g, f"x{d}f", fname, "_fa")]
        else:
            lines.append(_fp_call(g, f"x{d}f", fname, e))
        return lines
    return None


def _emit_fp_mov(g: _Gen, u, s: int):
    if u.mnemonic != "movsd":
        return None
    dst, src = u.instr.operands
    if isinstance(dst, Xmm) and isinstance(src, Xmm):
        g.lanes.add(dst.id)
        g.lanes.add(src.id)
        return [f"x{dst.id}f = x{src.id}f"]
    if isinstance(dst, Xmm) and isinstance(src, Mem) and src.size == 8:
        d = dst.id
        g.lanes.add(d)
        # a faulting load leaves the destination lane untouched, so the
        # inline form may target the lane local directly.
        lines = [f"p = {s}"]
        lines += _load_float(g, _ea_expr(src), f"x{d}f")
        lines.append(f"x{d}[1] = 0")
        return lines
    if (isinstance(src, Xmm) and isinstance(dst, Mem) and dst.size == 8):
        g.lanes.add(src.id)
        return [f"p = {s}"] + _store_float(g, _ea_expr(dst), f"x{src.id}f")
    return None


def _emit_int_mov(g: _Gen, u, s: int):
    mn = u.mnemonic
    ops = u.instr.operands
    if mn == "mov":
        dst, src = ops
        if isinstance(dst, Reg):
            if isinstance(src, Mem):
                if src.size != 8:
                    return None
                return ([f"p = {s}"]
                        + _load_bits(g, _ea_expr(src), "ldi",
                                     f"g[{dst.id}]"))
            lines: list[str] = []
            expr = _operand(g, src, s, lines)
            if expr is None:
                return None
            lines.append(f"g[{dst.id}] = {expr}")
            return lines
        if isinstance(dst, Mem) and dst.size == 8:
            lines = []
            expr = _operand(g, src, s, lines)
            if expr is None or isinstance(src, Mem):
                return None
            return ([f"p = {s}"]
                    + _store_bits(g, _ea_expr(dst), "sti", expr))
        return None
    if mn == "lea":
        dst, src = ops
        if not isinstance(dst, Reg) or not isinstance(src, Mem):
            return None
        return [f"g[{dst.id}] = {_ea_expr(src)}"]
    if mn == "push":
        lines = []
        expr = _operand(g, ops[0], s, lines, tmp="_t")
        if expr is None:
            return None
        # value read (and any load fault) happens before RSP moves,
        # exactly like the seed handler.
        out = [f"p = {s}"] + lines
        if expr != "_t":
            out.append(f"_t = {expr}")
        out += [f"_sp = (g[7] - 8) & {U64}", "g[7] = _sp"]
        out += _store_bits(g, "_sp", "rst", "_t")
        return out
    if mn == "pop":
        dst = ops[0]
        if not isinstance(dst, Reg):
            return None
        lines = [f"p = {s}", "_sp = g[7]"]
        lines += _load_bits(g, "_sp", "rld", "_t")
        lines += [f"g[7] = (_sp + 8) & {U64}", f"g[{dst.id}] = _t"]
        return lines
    return None


def _emit_int_alu(g: _Gen, u, s: int):
    mn = u.mnemonic
    ops = u.instr.operands
    dst = ops[0]
    if not isinstance(dst, Reg):
        return None
    d = dst.id
    pt = g.bind("pt", _PARITY)

    if mn in ("add", "sub", "cmp"):
        lines: list[str] = []
        expr = _operand(g, ops[1], s, lines, tmp="_b")
        if expr is None:
            return None
        lines.append(f"_a = g[{d}]")
        if expr != "_b":
            lines.append(f"_b = {expr}")
        if mn == "add":
            lines += [f"_u = _a + _b", f"_t = _u & {U64}",
                      f"fl.cf = _u > {U64}",
                      f"fl.of = bool((~(_a ^ _b) & (_a ^ _t)) & {_SBIT})"]
        else:
            lines += [f"_t = (_a - _b) & {U64}",
                      "fl.cf = _a < _b",
                      f"fl.of = bool(((_a ^ _b) & (_a ^ _t)) & {_SBIT})"]
        lines += ["fl.zf = _t == 0", f"fl.sf = _t >= {_SBIT}",
                  "fl.pf = pt[_t & 255]"]
        if mn != "cmp":
            lines.append(f"g[{d}] = _t")
        return lines

    if mn in ("and", "or", "xor", "test"):
        lines = []
        expr = _operand(g, ops[1], s, lines)
        if expr is None:
            return None
        opch = {"and": "&", "test": "&", "or": "|", "xor": "^"}[mn]
        lines += [f"_t = g[{d}] {opch} {expr}",
                  "fl.cf = False", "fl.of = False",
                  "fl.zf = _t == 0", f"fl.sf = _t >= {_SBIT}",
                  "fl.pf = pt[_t & 255]"]
        if mn != "test":
            lines.append(f"g[{d}] = _t")
        return lines

    if mn in ("inc", "dec"):
        delta = "+ 1" if mn == "inc" else "- 1"
        # OF fires exactly on the signed-overflow result value; CF is
        # untouched (seed ``run_incdec``).
        of_val = _SBIT if mn == "inc" else _SBIT - 1
        return [f"_t = (g[{d}] {delta}) & {U64}",
                f"fl.of = _t == {of_val}",
                "fl.zf = _t == 0", f"fl.sf = _t >= {_SBIT}",
                "fl.pf = pt[_t & 255]",
                f"g[{d}] = _t"]
    return None


def _emit_body(g: _Gen, u, s: int):
    cls = u.opclass
    try:
        if cls in (OpClass.FP_ARITH, OpClass.FP_CVT):
            return _emit_fp(g, u, s)
        if cls is OpClass.FP_MOV:
            return _emit_fp_mov(g, u, s)
        if cls is OpClass.INT_MOV:
            return _emit_int_mov(g, u, s)
        if cls is OpClass.INT_ALU:
            return _emit_int_alu(g, u, s)
    except (KeyError, AttributeError, TypeError):
        return None
    return None


# -------------------------------------------------------- tail emitters
#: jcc mnemonic -> generated predicate over the hoisted ``fl`` flags
#: (must mirror ``isa.CONDITION_CODES`` exactly).
_COND_EXPR = {
    "je": "fl.zf", "jne": "not fl.zf",
    "jl": "fl.sf != fl.of", "jle": "fl.zf or fl.sf != fl.of",
    "jg": "not fl.zf and fl.sf == fl.of", "jge": "fl.sf == fl.of",
    "jb": "fl.cf", "jbe": "fl.cf or fl.zf",
    "ja": "not fl.cf and not fl.zf", "jae": "not fl.cf",
    "js": "fl.sf", "jns": "not fl.sf",
    "jp": "fl.pf", "jnp": "not fl.pf",
}


def _emit_tail(g: _Gen, blk, u, expected: int, last: bool, j: int) -> bool:
    """Emit block ``j``'s control tail.  ``expected`` is the recorded
    next block entry (the root, for the last block).  Returns False to
    abort the whole compile (recording anomaly)."""
    s = len(g.flat)
    mn = u.mnemonic
    ops = u.instr.operands
    static = None
    if ops and isinstance(ops[0], Label) and ops[0].addr not in (None, -1):
        static = ops[0].addr

    if mn == "jmp" and static is not None:
        if static != expected:
            return False
        # the branch is unconditional and lands on the trace path:
        # nothing to execute, the step is pure accounting.
        g.flat.append((u.opclass, u.cost, u.addr))
        return True

    cond = _COND_EXPR.get(mn)
    if cond is not None and static is not None:
        if expected == static:
            test, exit_rip = f"if not ({cond}):", u.end
        elif expected == u.end:
            test, exit_rip = f"if {cond}:", static
        else:
            return False
        g.body.append(test)
        g.body.append(f"    r.rip = {exit_rip}")
        g.body.append("    @SYNC")
        if last:
            g.body.append("    return (i + 1, 0, 0)")
        else:
            g.body.append(f"    return (i, {s + 1}, 2)")
        g.flat.append((u.opclass, u.cost, u.addr))
        return True

    if mn == "call":
        # only statically-known guest calls are chainable; they always
        # land on their target, so no post-tail guard is needed.
        if static is None or static != expected:
            return False
        tname = g.bind(f"t{j}", blk.tail)
        g.body.append(f"p = {s}")
        g.body.append(f"{tname}()")
        g.flat.append((None, 0, u.addr))
        return True

    # ret / indirect or name-resolved jmp / jcc: run the bound tail
    # closure and guard the landing address (plus ret's halt check).
    # Control tails never touch XMM state, so no lane sync is needed
    # around the call itself — only on the exit paths.
    tname = g.bind(f"t{j}", blk.tail)
    g.body.append(f"p = {s}")
    g.body.append(f"{tname}()")
    if blk.chain_check:
        g.body.append("if c.halted:")
        g.body.append("    @SYNC")
        g.body.append(f"    return (i, {s + 1}, 3)")
    g.body.append(f"if r.rip != {expected}:")
    g.body.append("    @SYNC")
    if last:
        g.body.append("    return (i + 1, 0, 0)")
    else:
        g.body.append(f"    return (i, {s + 1}, 2)")
    g.flat.append((None, 0, u.addr))
    return True


# ------------------------------------------------------------ compiler
def _relower(cpu, blocks):
    """Walk each block's address range back into micro-ops (superblocks
    store bound closures only).  Returns ``[(block, body_uops, tail_uop)]``
    or None if any block's shape cannot be re-derived."""
    by_addr = cpu.program.by_addr
    out = []
    for b in blocks:
        if b.tail is None or not b.chainable:
            return None
        body = []
        addr = b.entry
        for _ in range(b.n_body):
            ins = by_addr.get(addr)
            if ins is None:
                return None
            u = lower(ins)
            body.append(u)
            addr += u.size
        if addr != b.tail_addr:
            return None
        tins = by_addr.get(addr)
        if tins is None:
            return None
        out.append((b, body, lower(tins)))
    return out


#: source text -> code object.  Trace codegen is deterministic over the
#: program layout, so repeated runs of the same workload (benchmark
#: reps, differential tiers, fleet guests sharing a worker's program
#: template) regenerate byte-identical source; caching the
#: ``compile()`` makes recompiles near-free.  The exec namespace is
#: always fresh, so cached code never aliases state.
#:
#: The cache is a true LRU bounded by ``FPVM_TRACE_CACHE_CAP``: a
#: long-lived fleet worker cycling through many distinct programs must
#: not grow compiled-closure memory without limit.  Hits, misses, and
#: evictions are module-level counters; the uop engine snapshots them
#: around each compile so they surface through ``UopStats`` (and from
#: there the per-worker fleet telemetry).
_CODE_CACHE: "OrderedDict[str, object]" = OrderedDict()

CODE_CACHE_HITS = 0
CODE_CACHE_MISSES = 0
CODE_CACHE_EVICTIONS = 0


def code_cache_cap() -> int:
    """``FPVM_TRACE_CACHE_CAP``: max distinct compiled trace sources
    kept (default 256, minimum 1)."""
    try:
        return max(1, int(os.environ.get("FPVM_TRACE_CACHE_CAP", "256")))
    except ValueError:
        return 256


def code_cache_stats() -> dict:
    return {
        "size": len(_CODE_CACHE),
        "cap": code_cache_cap(),
        "hits": CODE_CACHE_HITS,
        "misses": CODE_CACHE_MISSES,
        "evictions": CODE_CACHE_EVICTIONS,
    }


def _compile_source(source: str, entry: int):
    global CODE_CACHE_HITS, CODE_CACHE_MISSES, CODE_CACHE_EVICTIONS
    code = _CODE_CACHE.get(source)
    if code is not None:
        _CODE_CACHE.move_to_end(source)
        CODE_CACHE_HITS += 1
        return code
    CODE_CACHE_MISSES += 1
    cap = code_cache_cap()
    while len(_CODE_CACHE) >= cap:
        _CODE_CACHE.popitem(last=False)
        CODE_CACHE_EVICTIONS += 1
    code = compile(source, f"<trace@{entry:#x}>", "exec")
    _CODE_CACHE[source] = code
    return code


def _expand_markers(body: list[str], g: _Gen) -> list[str]:
    """Rewrite ``@SYNC`` / ``@RELOAD`` markers into lane write-back /
    re-fetch lines, now that the full lane set is known."""
    if not g.lanes:
        return [ln for ln in body if ln.strip() not in ("@SYNC", "@RELOAD")]
    ud, pq, pd, uq = _bind_fp_structs(g)
    lanes = sorted(g.lanes)
    out = []
    for ln in body:
        stripped = ln.strip()
        indent = ln[: len(ln) - len(stripped)]
        if stripped == "@SYNC":
            out += [f"{indent}x{n}[0] = {uq}({pd}(x{n}f))[0]" for n in lanes]
        elif stripped == "@RELOAD":
            out += [f"{indent}x{n}f = {ud}({pq}(x{n}[0]))[0]" for n in lanes]
        else:
            out.append(ln)
    return out


def compile_trace(cpu, blocks) -> ChainTrace | None:
    """Fuse a closed cycle of superblocks (``blocks[0]`` is the root;
    the last tail leads back to it) into a :class:`ChainTrace`.
    Returns None when the cycle's shape cannot be specialized."""
    lowered = _relower(cpu, blocks)
    if lowered is None:
        return None
    g = _Gen(cpu)
    nblocks = len(blocks)
    entry = blocks[0].entry

    for j, (blk, body_uops, tail_uop) in enumerate(lowered):
        expected = blocks[(j + 1) % nblocks].entry
        last = j == nblocks - 1
        for k, u in enumerate(body_uops):
            s = len(g.flat)
            lines = _emit_body(g, u, s)
            if lines is None:
                # whole-step bound closure: it reads and writes the
                # register file directly, so float lanes sync before
                # the call and reload after it.  ``_cl`` tells the
                # exception hook the file is already authoritative.
                fname = g.bind(f"f{j}_{k}", blk.body[k])
                g.has_closures = True
                g.body.append("@SYNC")
                g.body.append("_cl = 1")
                g.body.append(f"p = {s}")
                if u.fp_trap_capable:
                    sl = g.bind("SLOW", SLOW)
                    g.body.append(f"if {fname}() is {sl}:")
                    g.body.append(f"    r.rip = {u.addr}")
                    g.body.append(f"    return (i, {s}, 1)")
                else:
                    g.body.append(f"{fname}()")
                g.body.append("@RELOAD")
                g.body.append("_cl = 0")
            else:
                g.body.extend(lines)
            g.flat.append((u.opclass, u.cost, u.addr))
        if not _emit_tail(g, blk, tail_uop, expected, last, j):
            return None

    n_steps = len(g.flat)
    if n_steps == 0:
        return None
    xcell = [0, 0]
    g.ns["_x"] = xcell
    # resolve every late binding before the preamble is materialized
    body = _expand_markers(g.body, g)
    lanes = sorted(g.lanes)
    if lanes:
        ud, pq, pd, uq = _bind_fp_structs(g)
    mm = g.bind("mm", cpu.mem) if g.mem_guard else None

    lines = ["def _trace_fn(avail):"]
    lines += ["    c = _cpu", "    r = c.regs", "    g = r.gpr",
              "    x = r.xmm", "    fl = r.flags"]
    for lane in lanes:
        lines.append(f"    x{lane} = x[{lane}]")
    for pl in g.pre:
        lines.append("    " + pl)
    if g.fp_guard:
        lines.append(f"    if c.fp_disabled or "
                     f"(r.mxcsr & {_FP_FAST_FIELD}) != {_FP_FAST_VALUE}:")
        lines.append("        return (0, 0, 5)")
    if g.mem_guard:
        # nothing inside a trace can attach a memory observer (tails
        # cannot reach host code or syscalls), so one entry check
        # replaces the factories' per-access observer test.
        lines.append(f"    if {mm}.observers:")
        lines.append("        return (0, 0, 5)")
    for lane in lanes:
        lines.append(f"    x{lane}f = {ud}({pq}(x{lane}[0]))[0]")
    lines += ["    i = 0", "    p = 0", "    left = avail"]
    if g.has_closures:
        lines.append("    _cl = 0")
    lines.append("    try:")
    lines.append(f"        while left >= {n_steps}:")
    for bl in body:
        lines.append("            " + bl)
    lines += ["            i += 1", f"            left -= {n_steps}",
              "            p = 0",
              f"        r.rip = {entry}"]
    for n in lanes:
        lines.append(f"        x{n}[0] = {uq}({pd}(x{n}f))[0]")
    lines += ["        return (i, 0, 4)",
              "    except BaseException:",
              "        _x[0] = i", "        _x[1] = p"]
    if lanes:
        indent = "        "
        if g.has_closures:
            lines.append("        if _cl == 0:")
            indent += "    "
        for n in lanes:
            lines.append(f"{indent}x{n}[0] = {uq}({pd}(x{n}f))[0]")
    lines.append("        raise")
    source = "\n".join(lines) + "\n"

    hook = CODEGEN_HOOK
    if hook is not None:
        patched = hook(entry, source, g.ns)
        if patched:
            source = patched

    code = _compile_source(source, entry)
    exec(code, g.ns)
    return ChainTrace(cpu, entry, tuple(b.entry for b in blocks),
                      tuple(g.flat), g.ns["_trace_fn"], source, xcell,
                      ranges=tuple((b.entry, b.end) for b in blocks))
