"""Fast native-value FP evaluation for unvirtualized runs.

When no FP exceptions are unmasked (the native configuration) the CPU
does not need exception flags — only bit-exact binary64 results.  numpy
provides exactly hardware IEEE semantics (including NaN payload
propagation, signed zeros, subnormals and infinities) without Python's
ZeroDivisionError behaviour, so the native fast path routes through it.
"""

from __future__ import annotations

import numpy as np

from repro.fpu import bits as B
from repro.fpu.ieee import (
    UCOMI_EQUAL,
    UCOMI_GREATER,
    UCOMI_LESS,
    UCOMI_UNORDERED,
)

def _err():
    # np.errstate objects are not re-entrant; build one per evaluation.
    return np.errstate(all="ignore")


def _f(bits: int) -> np.float64:
    return np.uint64(bits).view(np.float64)


def _b(value: np.float64) -> int:
    return int(np.float64(value).view(np.uint64))


def native_fp(op: str, a: int, b: int | None = None, c: int | None = None) -> int:
    """Evaluate one scalar op on bit patterns, hardware semantics."""
    with _err():
        if op == "add":
            return _b(_f(a) + _f(b))
        if op == "sub":
            return _b(_f(a) - _f(b))
        if op == "mul":
            return _b(_f(a) * _f(b))
        if op == "div":
            return _b(_f(a) / _f(b))
        if op == "sqrt":
            if B.is_nan(a):
                return B.quiet(a)
            return _b(np.sqrt(_f(a)))
        if op == "min":
            # SSE minsd: src2 on NaN or equality.
            fa, fb = _f(a), _f(b)
            if np.isnan(fa) or np.isnan(fb) or fa == fb:
                return b
            return a if fa < fb else b
        if op == "max":
            fa, fb = _f(a), _f(b)
            if np.isnan(fa) or np.isnan(fb) or fa == fb:
                return b
            return a if fa > fb else b
        if op in ("ucomi", "comi"):
            fa, fb = _f(a), _f(b)
            if np.isnan(fa) or np.isnan(fb):
                return UCOMI_UNORDERED
            if fa == fb:
                return UCOMI_EQUAL
            return UCOMI_LESS if fa < fb else UCOMI_GREATER
        if op.startswith("cmp_"):
            return _native_cmp(op[4:], _f(a), _f(b))
        if op == "cvtsi2sd":
            v = a - (1 << 64) if a & (1 << 63) else a
            return _b(np.float64(v))
        if op == "cvttsd2si":
            fa = _f(a)
            if np.isnan(fa) or np.isinf(fa) or not (-(2.0**63) <= fa < 2.0**63):
                return 0x8000_0000_0000_0000
            return int(np.trunc(fa)) & 0xFFFF_FFFF_FFFF_FFFF
        if op == "cvtsd2si":
            fa = _f(a)
            if np.isnan(fa) or np.isinf(fa) or not (-(2.0**63) <= fa < 2.0**63):
                return 0x8000_0000_0000_0000
            # Round half to even, like the hardware's default MXCSR.
            return int(np.rint(fa)) & 0xFFFF_FFFF_FFFF_FFFF
        if op == "fma":
            return _native_fma(a, b, c)
    raise KeyError(f"unknown native FP op {op!r}")


def _native_fma(a: int, b: int, c: int) -> int:
    """Single-rounding a*b+c via exact rationals (numpy lacks fma)."""
    from fractions import Fraction

    fa, fb, fc = _f(a), _f(b), _f(c)
    if np.isnan(fa) or np.isnan(fb) or np.isnan(fc) or \
            np.isinf(fa) or np.isinf(fb) or np.isinf(fc):
        with _err():
            return _b(fa * fb + fc)  # special-value algebra matches
    exact = Fraction(float(fa)) * Fraction(float(fb)) + Fraction(float(fc))
    bits_, *_ = B.fraction_to_bits_rne(exact)
    return bits_


_ALL_ONES = 0xFFFF_FFFF_FFFF_FFFF


def _native_cmp(pred: str, fa: np.float64, fb: np.float64) -> int:
    unordered = bool(np.isnan(fa) or np.isnan(fb))
    if pred == "eq":
        r = (not unordered) and fa == fb
    elif pred == "lt":
        r = (not unordered) and fa < fb
    elif pred == "le":
        r = (not unordered) and fa <= fb
    elif pred == "unord":
        r = unordered
    elif pred == "neq":
        r = unordered or fa != fb
    elif pred == "nlt":
        r = unordered or not (fa < fb)
    elif pred == "nle":
        r = unordered or not (fa <= fb)
    elif pred == "ord":
        r = not unordered
    else:
        raise KeyError(pred)
    return _ALL_ONES if r else 0
