"""Pre-decoded micro-op IR, superblocks, and the block execution engine.

The seed interpreter re-resolves operands and re-dispatches through
instance methods on every simulated step.  This module lowers each
:class:`~repro.machine.isa.Instruction` once into a :class:`MicroOp`
(static metadata shared by every consumer: CPU, decode cache, emulator,
sequence engine) and binds, per CPU, opclass-specialized execute
closures whose operand accessors were resolved at bind time.  Straight-
line runs of micro-ops are strung into cached :class:`Superblock`\\ s
keyed by entry address; the block cache tracks the program's
``patch_events`` log and invalidates *per site* — only blocks, chain
links, and compiled traces whose address range covers a changed patch
site are dropped (any patch added, removed or cleared at that address),
so patched instructions can never execute through a stale block while
unrelated warm blocks survive patch churn.

Semantics are bit-for-bit the seed interpreter's:

- fast FP closures run only under the exact conditions of the seed's
  native path (all six MXCSR exception masks set, round-to-nearest,
  FP hardware enabled); anything else returns the :data:`SLOW`
  sentinel *without side effects* and the engine falls back to
  ``cpu.step()``, which performs the full fault-style #XF protocol;
- block execution retires micro-ops with batched accounting that is
  flushed (``try/finally``) before any fallback, trap delivery, or
  exception propagation, so every observer of ``cycles`` /
  ``instruction_count`` sees the same values it would under
  single-stepping;
- the fast scalar FP helpers are bit-exact against
  :func:`repro.machine.hostfp.native_fp` (NaN-operand and
  divide-by-zero cases defer to it outright).

Cross-quantum chaining (this PR's throughput lever): after a
superblock's chainable control tail runs, the engine follows the edge
through a per-block link cache — keyed on the *runtime* post-tail RIP,
so indirect and name-resolved targets chain too — and keeps retiring
blocks, a trace of blocks per dispatch, instead of returning to the
engine loop at every control tail.  Chainable tails are those that
cannot run host code (``jmp``/``jcc`` in any form, ``ret`` with a
post-tail halt re-check, and ``call``\\ s statically known to target
guest text), so the engine-loop re-checks the chain skips are
redundant by construction; host-function calls, patch sites, SLOW
fallbacks, and budget edges break the chain back to the engine loop.
Retire accounting inside a chain is batched into per-block run counts
and settled when the chain ends (or eagerly before anything that can
observe the counters).  At a quantum's budget edge the chaining tier
retires a block body's fitting *prefix* through the pipeline — every
closure is one seed step and leaves RIP correct, so the next quantum
resumes mid-block via a suffix block — rather than degrading to the
seed single-step path.  Chain dispatch has a fixed entry cost that
only amortizes over long traces or repeated blocks, so roots that
repeatedly produce short chains (without the quantum budget being the
cutter) are *demoted* — LuaJIT-style trace-root blacklisting via
``Superblock.chain_root`` — and the engine loop stops starting chains
there while still letting chains pass through them.  Block caches live
in one per-process :class:`SuperblockCache` shared by every thread;
when ``patch_seq`` moves the cache drops exactly the blocks, links and
traces covering the changed sites — cross-thread and cross-guest — and
everything else stays warm.
"""

from __future__ import annotations

import itertools
import math
import os
import struct
from collections import Counter

from repro.fpu import bits as B
from repro.machine import hostfp
from repro.machine.isa import (
    CONDITION_CODES,
    FP_TOUCH_CLASSES,
    GPR_IDS,
    Imm,
    Instruction,
    Label,
    Mem,
    OpClass,
    OPCODES,
    xmm_write_mask,
    Reg,
    Xmm,
)
from repro.machine.memory import PAGE_SHIFT, PAGE_SIZE, PROT_READ, PROT_WRITE

U64 = 0xFFFF_FFFF_FFFF_FFFF

#: Returned by an execute closure that could not take the fast path.
#: The contract: a SLOW return performed *no* side effects — the engine
#: flushes the retired prefix and re-executes the instruction through
#: ``cpu.step()`` (full seed semantics, including #XF delivery).
SLOW = object()

#: Superblocks stop growing here; the follow-on block chains naturally.
MAX_BLOCK = 128

#: The seed's native-FP fast path requires every MXCSR exception mask
#: set (bits 7-12), no unmasked status possible, and RC == nearest
#: (bits 13-14 clear).  One masked compare checks all of it.
_FP_FAST_FIELD = 0x7F80
_FP_FAST_VALUE = 0x1F80

_RETURN_SENTINEL = 0xDEAD_0000

_PARITY = tuple(bin(i).count("1") % 2 == 0 for i in range(256))

#: trace exit code -> stat name (mirrors ``tracejit.EXIT_NAMES``;
#: duplicated here because :mod:`repro.machine.tracejit` imports this
#: module and is itself only imported lazily from engine methods).
_TRACE_EXIT_NAMES = ("exit", "slow", "side", "halt", "budget", "mxcsr")

#: longest block cycle the chain recorder tracks (mirror of
#: ``tracejit.MAX_TRACE_BLOCKS`` for the hot path).
_MAX_TRACE_BLOCKS = 16

# ------------------------------------------------------------------ config
_FALSEY = ("0", "false", "off", "no")


def uops_enabled_default() -> bool:
    """The ``FPVM_UOPS`` escape hatch: set to ``0`` to force the seed
    single-step interpreter everywhere (differential debugging)."""
    return os.environ.get("FPVM_UOPS", "1").strip().lower() not in _FALSEY


def chain_enabled_default() -> bool:
    """The ``FPVM_CHAIN`` escape hatch: set to ``0`` to keep the uop
    pipeline but return to the engine loop at every control tail
    (isolates chaining bugs from superblock bugs)."""
    return os.environ.get("FPVM_CHAIN", "1").strip().lower() not in _FALSEY


# ------------------------------------------------------- emulator metadata
#: cmpXXsd mnemonic -> predicate (shared with the emulator).
CMP_PREDS = {
    "cmpeqsd": "eq", "cmpltsd": "lt", "cmplesd": "le", "cmpneqsd": "neq",
    "cmpnltsd": "nlt", "cmpnlesd": "nle", "cmpordsd": "ord",
    "cmpunordsd": "unord",
}

#: predicate -> (result_if_unordered, fn(c) for ordered c in {-1,0,1}).
CMP_TABLES = {
    "eq": (False, lambda c: c == 0),
    "lt": (False, lambda c: c < 0),
    "le": (False, lambda c: c <= 0),
    "neq": (True, lambda c: c != 0),
    "nlt": (True, lambda c: not (c < 0)),
    "nle": (True, lambda c: not (c <= 0)),
    "ord": (False, lambda c: True),
    "unord": (True, lambda c: False),
}


def _emu_kind(mn: str, opclass: OpClass) -> tuple[str | None, object]:
    """Pre-resolve the emulator's dispatch decision for one mnemonic."""
    if opclass in (OpClass.FP_ARITH, OpClass.FP_CVT):
        if mn == "cvtsi2sd":
            return "cvtsi2sd", None
        if mn in ("cvttsd2si", "cvtsd2si"):
            return "cvt2si", mn == "cvttsd2si"
        if mn in ("ucomisd", "comisd"):
            return "ucomi", None
        if mn in CMP_PREDS:
            return "cmp", CMP_PREDS[mn]
        if mn == "vfmadd213sd":
            return "fma", None
        if mn in ("sqrtsd", "sqrtpd"):
            return "sqrt", 2 if mn == "sqrtpd" else 1
        return "bin", None
    if mn == "xorpd":
        return "xorpd", None
    if opclass is OpClass.FP_MOV:
        return "fpmov", None
    if opclass in (OpClass.INT_MOV, OpClass.INT_ALU):
        return "intmov", None
    return None, None


# ----------------------------------------------------------------- MicroOp
class MicroOp:
    """One lowered instruction: all static metadata pre-resolved.

    A MicroOp is CPU-independent (shared across ``Program.copy()``
    images); per-CPU execute closures are bound by the engine via
    :func:`bind_exec` / :func:`bind_control`.
    """

    __slots__ = (
        "instr", "addr", "size", "end", "mnemonic", "opclass", "cost",
        "lanes", "ieee", "fp_trap_capable", "emu_kind", "emu_arg",
        "xmm_writes", "fp_touch",
    )

    def __init__(self, instr: Instruction) -> None:
        info = OPCODES[instr.mnemonic]
        self.instr = instr
        self.addr = instr.addr
        self.size = instr.size
        self.end = instr.addr + instr.size
        self.mnemonic = instr.mnemonic
        self.opclass = info.opclass
        self.cost = info.cost
        self.lanes = info.lanes
        self.ieee = info.ieee
        self.fp_trap_capable = info.opclass in (OpClass.FP_ARITH, OpClass.FP_CVT)
        self.emu_kind, self.emu_arg = _emu_kind(instr.mnemonic, info.opclass)
        #: lazy-FP lowering-time summary: the XMM lane mask this uop
        #: architecturally writes, and whether it touches FP state at
        #: all (reads included — the #NM trigger set).  Static and
        #: CPU-independent, so per-superblock unions are computed once.
        self.xmm_writes = xmm_write_mask(instr)
        self.fp_touch = info.opclass in FP_TOUCH_CLASSES

    @property
    def info(self):
        return self.instr.info

    @property
    def operands(self):
        return self.instr.operands

    def is_fp_trap_capable(self) -> bool:
        return self.fp_trap_capable

    def __str__(self) -> str:
        return str(self.instr)

    def __repr__(self) -> str:
        return f"<uop {self.instr} @ {self.addr:#x}>"


def lower(instr: Instruction) -> MicroOp:
    """Lower ``instr``, caching the result on the instruction itself so
    every consumer (CPU engine, decode cache, sequence engine) shares
    one MicroOp per instruction."""
    uop = getattr(instr, "_uop", None)
    if uop is None:
        uop = MicroOp(instr)
        instr._uop = uop
    return uop


def lower_program(program) -> int:
    """Lower every instruction of a program eagerly (load-time pass);
    returns the number of micro-ops."""
    n = 0
    for instr in program.instructions:
        lower(instr)
        n += 1
    return n


# ----------------------------------------------------- fast scalar FP core
_PACK_Q = struct.Struct("<Q").pack
_UNPACK_D = struct.Struct("<d").unpack
_PACK_D = struct.Struct("<d").pack
_UNPACK_Q = struct.Struct("<Q").unpack
_SQRT = math.sqrt
_NATIVE = hostfp.native_fp
_QUIET = B.quiet


def _tf(bits: int) -> float:
    return _UNPACK_D(_PACK_Q(bits))[0]


def _tb(value: float) -> int:
    return _UNPACK_Q(_PACK_D(value))[0]


def _fadd(a: int, b: int) -> int:
    fa = _UNPACK_D(_PACK_Q(a))[0]
    fb = _UNPACK_D(_PACK_Q(b))[0]
    if fa != fa or fb != fb:  # NaN payload flow: defer to the oracle
        return _NATIVE("add", a, b)
    return _UNPACK_Q(_PACK_D(fa + fb))[0]


def _fsub(a: int, b: int) -> int:
    fa = _UNPACK_D(_PACK_Q(a))[0]
    fb = _UNPACK_D(_PACK_Q(b))[0]
    if fa != fa or fb != fb:
        return _NATIVE("sub", a, b)
    return _UNPACK_Q(_PACK_D(fa - fb))[0]


def _fmul(a: int, b: int) -> int:
    fa = _UNPACK_D(_PACK_Q(a))[0]
    fb = _UNPACK_D(_PACK_Q(b))[0]
    if fa != fa or fb != fb:
        return _NATIVE("mul", a, b)
    return _UNPACK_Q(_PACK_D(fa * fb))[0]


def _fdiv(a: int, b: int) -> int:
    fa = _UNPACK_D(_PACK_Q(a))[0]
    fb = _UNPACK_D(_PACK_Q(b))[0]
    if fa != fa or fb != fb or fb == 0.0:
        return _NATIVE("div", a, b)
    return _UNPACK_Q(_PACK_D(fa / fb))[0]


def _fmin(a: int, b: int) -> int:
    # SSE minsd: src2 on NaN or equality (seed-identical).
    fa = _UNPACK_D(_PACK_Q(a))[0]
    fb = _UNPACK_D(_PACK_Q(b))[0]
    if fa != fa or fb != fb or fa == fb:
        return b
    return a if fa < fb else b


def _fmax(a: int, b: int) -> int:
    fa = _UNPACK_D(_PACK_Q(a))[0]
    fb = _UNPACK_D(_PACK_Q(b))[0]
    if fa != fa or fb != fb or fa == fb:
        return b
    return a if fa > fb else b


def _fsqrt(a: int, _b: int | None = None) -> int:
    fa = _UNPACK_D(_PACK_Q(a))[0]
    if fa != fa:
        return _QUIET(a)
    if fa >= 0.0:  # includes -0.0 (sqrt(-0.0) == -0.0)
        return _UNPACK_Q(_PACK_D(_SQRT(fa)))[0]
    return _NATIVE("sqrt", a)


#: ieee base -> bit-exact scalar fast function (binary ops; sqrt unary).
FAST_SCALAR = {
    "add": _fadd, "sub": _fsub, "mul": _fmul, "div": _fdiv,
    "min": _fmin, "max": _fmax, "sqrt": _fsqrt,
}

#: cmpXXsd predicate as a direct float comparison with IEEE unordered
#: behaviour built in (NaN compares false to everything).
_CMP_FAST = {
    "eq": lambda fa, fb: fa == fb,
    "lt": lambda fa, fb: fa < fb,
    "le": lambda fa, fb: fa <= fb,
    "unord": lambda fa, fb: fa != fa or fb != fb,
    "neq": lambda fa, fb: not (fa == fb),
    "nlt": lambda fa, fb: not (fa < fb),
    "nle": lambda fa, fb: not (fa <= fb),
    "ord": lambda fa, fb: fa == fa and fb == fb,
}


# ---------------------------------------------------- fast memory closures
# Inlined single-page 8-byte access for bound closures.  Anything off
# the happy path (attached observers, unmapped page — auto-map and
# faults included — page-straddling access, permission violations)
# falls back to the Memory methods, so semantics are exactly theirs.
_PAGE_SIZE = PAGE_SIZE
_PAGE_SHIFT = PAGE_SHIFT
_PAGE_MASK = PAGE_SIZE - 1
_FROM_LE = int.from_bytes


def _load8_factory(mem, fp: bool):
    """Fast ``observed_load(ea, 8, fp)``."""
    pages = mem._pages

    def load8(addr):
        if mem.observers:
            return mem.observed_load(addr, 8, fp)
        page = pages.get(addr >> _PAGE_SHIFT)
        off = addr & _PAGE_MASK
        if page is None or off > _PAGE_SIZE - 8 or not (page.prot & PROT_READ):
            return mem.observed_load(addr, 8, fp)
        return _FROM_LE(page.data[off:off + 8], "little")
    return load8


def _store8_factory(mem, fp: bool):
    """Fast ``observed_store(ea, v, 8, fp)``."""
    pages = mem._pages

    def store8(addr, value):
        if mem.observers:
            return mem.observed_store(addr, value, 8, fp)
        page = pages.get(addr >> _PAGE_SHIFT)
        off = addr & _PAGE_MASK
        if page is None or off > _PAGE_SIZE - 8 or not (page.prot & PROT_WRITE):
            return mem.observed_store(addr, value, 8, fp)
        page.data[off:off + 8] = _PACK_Q(value & U64)
    return store8


def _raw_load8_factory(mem):
    """Fast ``read_u64`` (stack pops / returns — never observed)."""
    pages = mem._pages

    def load8(addr):
        page = pages.get(addr >> _PAGE_SHIFT)
        off = addr & _PAGE_MASK
        if page is None or off > _PAGE_SIZE - 8 or not (page.prot & PROT_READ):
            return mem.read_u64(addr)
        return _FROM_LE(page.data[off:off + 8], "little")
    return load8


def _raw_store8_factory(mem):
    """Fast ``write_u64`` (stack pushes — never observed)."""
    pages = mem._pages

    def store8(addr, value):
        page = pages.get(addr >> _PAGE_SHIFT)
        off = addr & _PAGE_MASK
        if page is None or off > _PAGE_SIZE - 8 or not (page.prot & PROT_WRITE):
            return mem.write_u64(addr, value)
        page.data[off:off + 8] = _PACK_Q(value & U64)
    return store8


# ------------------------------------------------------- operand accessors
def _ea_factory(regs, m: Mem):
    """Zero-arg effective-address closure; register operands are read
    through ``regs`` at call time (restore() replaces the inner lists)."""
    disp = m.disp
    bid = GPR_IDS[m.base] if m.base is not None else None
    iid = GPR_IDS[m.index] if m.index is not None else None
    scale = m.scale
    if bid is None and iid is None:
        ea = disp & U64
        return lambda: ea
    if iid is None:
        return lambda: (regs.gpr[bid] + disp) & U64
    if bid is None:
        return lambda: (regs.gpr[iid] * scale + disp) & U64
    return lambda: (regs.gpr[bid] + regs.gpr[iid] * scale + disp) & U64


def _reader_u64(cpu, op, fp: bool):
    """Seed ``read_u64_operand`` semantics: Mem is always an 8-byte
    observed load regardless of the operand's declared size."""
    regs = cpu.regs
    if isinstance(op, Reg):
        rid = op.id
        return lambda: regs.gpr[rid]
    if isinstance(op, Xmm):
        xid = op.id
        return lambda: regs.xmm[xid][0]
    if isinstance(op, Imm):
        v = op.value & U64
        return lambda: v
    if isinstance(op, Mem):
        ea = _ea_factory(regs, op)
        load8 = _load8_factory(cpu.mem, fp)
        return lambda: load8(ea())
    return None


def _reader_sized(cpu, op, fp: bool):
    """Seed ``read_sized_operand``: Mem honours its declared size."""
    if isinstance(op, Mem) and op.size != 8:
        ea = _ea_factory(cpu.regs, op)
        mem = cpu.mem
        size = op.size
        return lambda: mem.observed_load(ea(), size, fp)
    return _reader_u64(cpu, op, fp)


def _writer_u64(cpu, op, fp: bool):
    """Seed ``write_u64_operand``: Mem stores honour the operand size."""
    regs = cpu.regs
    if isinstance(op, Reg):
        rid = op.id

        def wr(v):
            regs.gpr[rid] = v & U64
        return wr
    if isinstance(op, Xmm):
        xid = op.id

        def wx(v):
            regs.xmm[xid][0] = v & U64
        return wx
    if isinstance(op, Mem):
        ea = _ea_factory(regs, op)
        if op.size == 8:
            store8 = _store8_factory(cpu.mem, fp)
            return lambda v: store8(ea(), v)
        mem = cpu.mem
        size = op.size
        return lambda v: mem.observed_store(ea(), v, size, fp)
    return None


def _reader_128(cpu, op):
    """Seed ``read_xmm_or_mem128``."""
    regs = cpu.regs
    if isinstance(op, Xmm):
        xid = op.id

        def rx():
            lanes = regs.xmm[xid]
            return lanes[0], lanes[1]
        return rx
    if isinstance(op, Mem):
        ea = _ea_factory(regs, op)
        load8 = _load8_factory(cpu.mem, True)

        def rm():
            a = ea()
            return load8(a), load8(a + 8)
        return rm
    return None


# -------------------------------------------------------- closure binding
def bind_exec(uop: MicroOp, cpu):
    """Bind a body-execute closure for this CPU, or None if the micro-op
    cannot run inside a superblock body (control/sys/odd shapes).

    Closure contract: executes the instruction exactly like the seed
    handler (same reads, same write order, RIP set at the end) and
    returns None on retire; FP-trappable closures return :data:`SLOW`
    (no side effects) whenever the seed would leave its native path.
    Retire accounting (cost/count/class) is the engine's job.
    """
    cls = uop.opclass
    try:
        if cls in (OpClass.FP_ARITH, OpClass.FP_CVT):
            return _bind_fp(uop, cpu)
        if cls is OpClass.FP_BITWISE:
            return _bind_fp_bitwise(uop, cpu)
        if cls is OpClass.FP_MOV:
            return _bind_fp_mov(uop, cpu)
        if cls is OpClass.INT_MOV:
            return _bind_int_mov(uop, cpu)
        if cls is OpClass.INT_ALU:
            return _bind_int_alu(uop, cpu)
    except (KeyError, AttributeError, TypeError):
        return None  # malformed operands: let cpu.step() raise its way
    return None


def _bind_fp(uop: MicroOp, cpu):
    regs = cpu.regs
    mn = uop.mnemonic
    ops = uop.instr.operands
    end = uop.end

    if mn == "cvtsi2sd":
        rd = _reader_u64(cpu, ops[1], False)
        xid = ops[0].id
        if rd is None or not isinstance(ops[0], Xmm):
            return None

        def run_cvtsi2sd():
            if cpu.fp_disabled or (regs.mxcsr & _FP_FAST_FIELD) != _FP_FAST_VALUE:
                return SLOW
            a = rd()
            v = a - (1 << 64) if a & (1 << 63) else a
            regs.xmm[xid][0] = _UNPACK_Q(_PACK_D(float(v)))[0]
            regs.rip = end
        return run_cvtsi2sd

    if mn in ("cvttsd2si", "cvtsd2si"):
        rd = _reader_u64(cpu, ops[1], True)
        wr = _writer_u64(cpu, ops[0], False)
        trunc = mn == "cvttsd2si"
        if rd is None or wr is None:
            return None

        def run_cvt2si():
            if cpu.fp_disabled or (regs.mxcsr & _FP_FAST_FIELD) != _FP_FAST_VALUE:
                return SLOW
            fa = _UNPACK_D(_PACK_Q(rd()))[0]
            if fa != fa or not (-(2.0 ** 63) <= fa < 2.0 ** 63):
                out = 0x8000_0000_0000_0000
            elif trunc:
                out = int(fa) & U64
            else:
                out = round(fa) & U64  # banker's rounding == hardware RNE
            wr(out)
            regs.rip = end
        return run_cvt2si

    if mn in ("ucomisd", "comisd"):
        if not isinstance(ops[0], Xmm):
            return None
        xid = ops[0].id
        rd_b = _reader_u64(cpu, ops[1], True)
        if rd_b is None:
            return None

        def run_ucomi():
            if cpu.fp_disabled or (regs.mxcsr & _FP_FAST_FIELD) != _FP_FAST_VALUE:
                return SLOW
            fa = _UNPACK_D(_PACK_Q(regs.xmm[xid][0]))[0]
            fb = _UNPACK_D(_PACK_Q(rd_b()))[0]
            f = regs.flags
            if fa != fa or fb != fb:
                f.zf = f.pf = f.cf = True
            elif fa == fb:
                f.zf, f.pf, f.cf = True, False, False
            elif fa < fb:
                f.zf, f.pf, f.cf = False, False, True
            else:
                f.zf = f.pf = f.cf = False
            f.sf = False
            f.of = False
            regs.rip = end
        return run_ucomi

    if mn in CMP_PREDS:
        if not isinstance(ops[0], Xmm):
            return None
        xid = ops[0].id
        rd_b = _reader_u64(cpu, ops[1], True)
        pred = _CMP_FAST[CMP_PREDS[mn]]
        if rd_b is None:
            return None

        def run_cmp():
            if cpu.fp_disabled or (regs.mxcsr & _FP_FAST_FIELD) != _FP_FAST_VALUE:
                return SLOW
            lanes = regs.xmm[xid]
            fa = _UNPACK_D(_PACK_Q(lanes[0]))[0]
            fb = _UNPACK_D(_PACK_Q(rd_b()))[0]
            lanes[0] = U64 if pred(fa, fb) else 0
            regs.rip = end
        return run_cmp

    if mn == "vfmadd213sd":
        if not (isinstance(ops[0], Xmm) and isinstance(ops[1], Xmm)):
            return None
        d_id, m_id = ops[0].id, ops[1].id
        rd_c = _reader_u64(cpu, ops[2], True)
        if rd_c is None:
            return None

        def run_fma():
            if cpu.fp_disabled or (regs.mxcsr & _FP_FAST_FIELD) != _FP_FAST_VALUE:
                return SLOW
            lanes = regs.xmm[d_id]
            lanes[0] = _NATIVE("fma", regs.xmm[m_id][0], lanes[0], rd_c())
            regs.rip = end
        return run_fma

    if mn == "sqrtsd":
        if not isinstance(ops[0], Xmm):
            return None
        xid = ops[0].id
        rd = _reader_u64(cpu, ops[1], True)
        if rd is None:
            return None

        def run_sqrtsd():
            if cpu.fp_disabled or (regs.mxcsr & _FP_FAST_FIELD) != _FP_FAST_VALUE:
                return SLOW
            regs.xmm[xid][0] = _fsqrt(rd())
            regs.rip = end
        return run_sqrtsd

    if mn == "sqrtpd":
        if not isinstance(ops[0], Xmm):
            return None
        xid = ops[0].id
        rd = _reader_128(cpu, ops[1])
        if rd is None:
            return None

        def run_sqrtpd():
            if cpu.fp_disabled or (regs.mxcsr & _FP_FAST_FIELD) != _FP_FAST_VALUE:
                return SLOW
            slo, shi = rd()
            lanes = regs.xmm[xid]
            lanes[0] = _fsqrt(slo)
            lanes[1] = _fsqrt(shi)
            regs.rip = end
        return run_sqrtpd

    # Binary arithmetic families.
    fast = FAST_SCALAR.get(uop.ieee)
    if fast is None or not isinstance(ops[0], Xmm):
        return None
    xid = ops[0].id
    if uop.lanes == 2:
        rd = _reader_128(cpu, ops[1])
        if rd is None:
            return None

        def run_packed():
            if cpu.fp_disabled or (regs.mxcsr & _FP_FAST_FIELD) != _FP_FAST_VALUE:
                return SLOW
            slo, shi = rd()
            lanes = regs.xmm[xid]
            lanes[0] = fast(lanes[0], slo)
            lanes[1] = fast(lanes[1], shi)
            regs.rip = end
        return run_packed

    rd = _reader_u64(cpu, ops[1], True)
    if rd is None:
        return None

    def run_scalar():
        if cpu.fp_disabled or (regs.mxcsr & _FP_FAST_FIELD) != _FP_FAST_VALUE:
            return SLOW
        lanes = regs.xmm[xid]
        lanes[0] = fast(lanes[0], rd())
        regs.rip = end
    return run_scalar


def _bind_fp_bitwise(uop: MicroOp, cpu):
    regs = cpu.regs
    mn = uop.mnemonic
    ops = uop.instr.operands
    end = uop.end
    if not isinstance(ops[0], Xmm):
        return None
    xid = ops[0].id
    rd = _reader_128(cpu, ops[1])
    if rd is None:
        return None

    if mn == "xorpd":
        def run_xorpd():
            slo, shi = rd()
            lanes = regs.xmm[xid]
            lanes[0] ^= slo
            lanes[1] ^= shi
            regs.rip = end
        return run_xorpd
    if mn == "andpd":
        def run_andpd():
            slo, shi = rd()
            lanes = regs.xmm[xid]
            lanes[0] &= slo
            lanes[1] &= shi
            regs.rip = end
        return run_andpd
    if mn == "orpd":
        def run_orpd():
            slo, shi = rd()
            lanes = regs.xmm[xid]
            lanes[0] |= slo
            lanes[1] |= shi
            regs.rip = end
        return run_orpd

    def run_andnpd():
        slo, shi = rd()
        lanes = regs.xmm[xid]
        lanes[0] = (~lanes[0] & U64) & slo
        lanes[1] = (~lanes[1] & U64) & shi
        regs.rip = end
    return run_andnpd


def _bind_fp_mov(uop: MicroOp, cpu):
    regs = cpu.regs
    mem = cpu.mem
    mn = uop.mnemonic
    ops = uop.instr.operands
    end = uop.end

    if mn == "shufpd":
        dst, src, imm = ops
        if not isinstance(dst, Xmm) or not isinstance(imm, Imm):
            return None
        did = dst.id
        rd = _reader_128(cpu, src)
        ctrl = imm.value
        if rd is None:
            return None

        def run_shufpd():
            lanes = regs.xmm[did]
            dlo, dhi = lanes[0], lanes[1]
            slo, shi = rd()
            lanes[0] = dhi if ctrl & 1 else dlo
            lanes[1] = shi if ctrl & 2 else slo
            regs.rip = end
        return run_shufpd

    dst, src = ops
    if mn == "movsd":
        if isinstance(dst, Xmm) and isinstance(src, Xmm):
            did, sid = dst.id, src.id

            def run_movsd_rr():
                regs.xmm[did][0] = regs.xmm[sid][0]
                regs.rip = end
            return run_movsd_rr
        if isinstance(dst, Xmm):
            did = dst.id
            rd = _reader_u64(cpu, src, True)
            if rd is None:
                return None

            def run_movsd_load():
                lanes = regs.xmm[did]
                lanes[0] = rd()
                lanes[1] = 0
                regs.rip = end
            return run_movsd_load
        if isinstance(src, Xmm):
            sid = src.id
            wr = _writer_u64(cpu, dst, True)
            if wr is None:
                return None

            def run_movsd_store():
                wr(regs.xmm[sid][0])
                regs.rip = end
            return run_movsd_store
        return None

    if mn in ("movapd", "movupd"):
        if isinstance(dst, Xmm):
            did = dst.id
            rd = _reader_128(cpu, src)
            if rd is None:
                return None

            def run_movapd_load():
                lo, hi = rd()
                lanes = regs.xmm[did]
                lanes[0] = lo
                lanes[1] = hi
                regs.rip = end
            return run_movapd_load
        if isinstance(src, Xmm) and isinstance(dst, Mem):
            sid = src.id
            ea = _ea_factory(regs, dst)
            store8 = _store8_factory(mem, True)

            def run_movapd_store():
                lanes = regs.xmm[sid]
                a = ea()
                store8(a, lanes[0])
                store8(a + 8, lanes[1])
                regs.rip = end
            return run_movapd_store
        return None

    if mn in ("movhpd", "movlpd"):
        lane = 1 if mn == "movhpd" else 0
        if isinstance(dst, Xmm):
            did = dst.id
            rd = _reader_u64(cpu, src, True)
            if rd is None:
                return None

            def run_movxpd_load():
                regs.xmm[did][lane] = rd()
                regs.rip = end
            return run_movxpd_load
        if isinstance(src, Xmm):
            sid = src.id
            wr = _writer_u64(cpu, dst, True)
            if wr is None:
                return None

            def run_movxpd_store():
                wr(regs.xmm[sid][lane])
                regs.rip = end
            return run_movxpd_store
        return None

    if mn == "movq":
        if isinstance(dst, Xmm):
            did = dst.id
            rd = _reader_u64(cpu, src, isinstance(src, Mem))
            if rd is None:
                return None

            def run_movq_load():
                lanes = regs.xmm[did]
                lanes[0] = rd()
                lanes[1] = 0
                regs.rip = end
            return run_movq_load
        if isinstance(src, Xmm):
            sid = src.id
            wr = _writer_u64(cpu, dst, isinstance(dst, Mem))
            if wr is None:
                return None

            def run_movq_store():
                wr(regs.xmm[sid][0])
                regs.rip = end
            return run_movq_store
        return None

    if mn == "movddup":
        if not isinstance(dst, Xmm):
            return None
        did = dst.id
        rd = _reader_u64(cpu, src, True)
        if rd is None:
            return None

        def run_movddup():
            lo = rd()
            lanes = regs.xmm[did]
            lanes[0] = lo
            lanes[1] = lo
            regs.rip = end
        return run_movddup

    if mn == "unpcklpd":
        if not isinstance(dst, Xmm):
            return None
        did = dst.id
        rd = _reader_128(cpu, src)
        if rd is None:
            return None

        def run_unpcklpd():
            slo, _ = rd()
            regs.xmm[did][1] = slo
            regs.rip = end
        return run_unpcklpd

    if mn == "unpckhpd":
        if not isinstance(dst, Xmm):
            return None
        did = dst.id
        rd = _reader_128(cpu, src)
        if rd is None:
            return None

        def run_unpckhpd():
            _, shi = rd()
            lanes = regs.xmm[did]
            lanes[0] = lanes[1]
            lanes[1] = shi
            regs.rip = end
        return run_unpckhpd

    return None


def _bind_int_mov(uop: MicroOp, cpu):
    regs = cpu.regs
    mem = cpu.mem
    mn = uop.mnemonic
    ops = uop.instr.operands
    end = uop.end

    if mn == "mov":
        dst, src = ops
        rd = _reader_sized(cpu, src, False)
        if rd is None:
            return None
        if isinstance(dst, Mem) and dst.size != 8:
            ea = _ea_factory(regs, dst)
            size = dst.size

            def run_mov_sized():
                mem.observed_store(ea(), rd(), size, False)
                regs.rip = end
            return run_mov_sized
        wr = _writer_u64(cpu, dst, False)
        if wr is None:
            return None

        def run_mov():
            wr(rd())
            regs.rip = end
        return run_mov

    if mn == "lea":
        dst, src = ops
        if not isinstance(dst, Reg) or not isinstance(src, Mem):
            return None
        rid = dst.id
        ea = _ea_factory(regs, src)

        def run_lea():
            regs.gpr[rid] = ea()
            regs.rip = end
        return run_lea

    if mn == "push":
        rd = _reader_u64(cpu, ops[0], False)
        if rd is None:
            return None
        store8 = _raw_store8_factory(mem)

        def run_push():
            v = rd()
            rsp = (regs.gpr[7] - 8) & U64
            regs.gpr[7] = rsp
            store8(rsp, v)
            regs.rip = end
        return run_push

    if mn == "pop":
        wr = _writer_u64(cpu, ops[0], False)
        if wr is None:
            return None
        load8 = _raw_load8_factory(mem)

        def run_pop():
            rsp = regs.gpr[7]
            v = load8(rsp)
            regs.gpr[7] = (rsp + 8) & U64
            wr(v)
            regs.rip = end
        return run_pop

    if mn == "xchg":
        a, b = ops
        rd_a = _reader_u64(cpu, a, False)
        rd_b = _reader_u64(cpu, b, False)
        wr_a = _writer_u64(cpu, a, False)
        wr_b = _writer_u64(cpu, b, False)
        if None in (rd_a, rd_b, wr_a, wr_b):
            return None

        def run_xchg():
            va = rd_a()
            vb = rd_b()
            wr_a(vb)
            wr_b(va)
            regs.rip = end
        return run_xchg

    return None


def _s64(v: int) -> int:
    v &= U64
    return v - (1 << 64) if v >= (1 << 63) else v


def _bind_int_alu(uop: MicroOp, cpu):
    regs = cpu.regs
    mn = uop.mnemonic
    ops = uop.instr.operands
    end = uop.end
    parity = _PARITY

    rd0 = _reader_u64(cpu, ops[0], False)
    if rd0 is None:
        return None
    writes = mn not in ("cmp", "test")
    wr0 = _writer_u64(cpu, ops[0], False) if writes else None
    if writes and wr0 is None:
        return None

    if mn in ("add", "sub", "cmp"):
        rd1 = _reader_u64(cpu, ops[1], False)
        if rd1 is None:
            return None
        adding = mn == "add"

        def run_addsub():
            a = rd0()
            b = rd1()
            f = regs.flags
            if adding:
                r = (a + b) & U64
                f.cf = (a + b) > U64
                f.of = (_s64(a) + _s64(b)) != _s64(r)
            else:
                r = (a - b) & U64
                f.cf = a < b
                f.of = (_s64(a) - _s64(b)) != _s64(r)
            f.zf = r == 0
            f.sf = bool(r >> 63)
            f.pf = parity[r & 0xFF]
            if wr0 is not None:
                wr0(r)
            regs.rip = end
        return run_addsub

    if mn in ("and", "or", "xor", "test"):
        rd1 = _reader_u64(cpu, ops[1], False)
        if rd1 is None:
            return None
        kind = "and" if mn in ("and", "test") else mn

        def run_logic():
            a = rd0()
            b = rd1()
            r = a & b if kind == "and" else (a | b if kind == "or" else a ^ b)
            f = regs.flags
            f.cf = f.of = False
            f.zf = r == 0
            f.sf = bool(r >> 63)
            f.pf = parity[r & 0xFF]
            if wr0 is not None:
                wr0(r)
            regs.rip = end
        return run_logic

    if mn == "imul":
        rd1 = _reader_u64(cpu, ops[1], False)
        if rd1 is None:
            return None

        def run_imul():
            a = _s64(rd0())
            b = _s64(rd1())
            full = a * b
            r = full & U64
            f = regs.flags
            f.cf = f.of = _s64(r) != full
            f.zf = r == 0
            f.sf = bool(r >> 63)
            f.pf = parity[r & 0xFF]
            wr0(r)
            regs.rip = end
        return run_imul

    if mn in ("shl", "shr", "sar"):
        rd1 = _reader_u64(cpu, ops[1], False)
        if rd1 is None:
            return None

        def run_shift():
            a = rd0()
            count = rd1() & 63
            if count:
                f = regs.flags
                if mn == "shl":
                    f.cf = bool((a >> (64 - count)) & 1)
                    r = (a << count) & U64
                elif mn == "shr":
                    f.cf = bool((a >> (count - 1)) & 1)
                    r = a >> count
                else:
                    f.cf = bool((a >> (count - 1)) & 1)
                    r = (_s64(a) >> count) & U64
                f.zf = r == 0
                f.sf = bool(r >> 63)
                f.pf = parity[r & 0xFF]
                wr0(r)
            regs.rip = end
        return run_shift

    if mn in ("inc", "dec"):
        delta = 1 if mn == "inc" else -1

        def run_incdec():
            a = rd0()
            r = (a + delta) & U64
            f = regs.flags
            f.of = _s64(a) + delta != _s64(r)
            f.zf = r == 0
            f.sf = bool(r >> 63)
            f.pf = parity[r & 0xFF]
            wr0(r)
            regs.rip = end
        return run_incdec

    if mn == "neg":
        def run_neg():
            a = rd0()
            r = (-a) & U64
            f = regs.flags
            f.cf = a != 0
            f.of = a == (1 << 63)
            f.zf = r == 0
            f.sf = bool(r >> 63)
            f.pf = parity[r & 0xFF]
            wr0(r)
            regs.rip = end
        return run_neg

    if mn == "not":
        def run_not():
            wr0((~rd0()) & U64)
            regs.rip = end
        return run_not

    return None


def bind_control(uop: MicroOp, cpu):
    """Bind a tail closure for a control-flow micro-op.  Tail closures
    perform their own retire accounting (cost/count/class), mirroring
    the seed's handler-then-retire order exactly — in particular a host
    function body runs *before* the call instruction retires."""
    regs = cpu.regs
    mn = uop.mnemonic
    ops = uop.instr.operands
    next_rip = uop.end
    cost = uop.cost
    rbc = cpu.retired_by_class
    ctrl = OpClass.CONTROL
    prog = cpu.program
    mem = cpu.mem

    def _target(op):
        if isinstance(op, Label):
            if op.addr is not None and op.addr != -1:
                t = op.addr
                return lambda: t
            name = op.name
            return lambda: prog.resolve(name)
        if isinstance(op, Reg):
            rid = op.id
            return lambda: regs.gpr[rid]
        return None

    if mn == "jmp":
        tgt = _target(ops[0])
        if tgt is None:
            return None

        def run_jmp():
            regs.rip = tgt()
            cpu.cycles += cost
            cpu.work_cycles += cost
            cpu.instruction_count += 1
            rbc[ctrl] += 1
        return run_jmp

    if mn == "call":
        tgt = _target(ops[0])
        if tgt is None:
            return None
        hosts = prog.host_functions
        store8 = _raw_store8_factory(mem)

        def run_call():
            target = tgt()
            host = hosts.get(target)
            if host is not None:
                cpu.cycles += host.cost
                cpu.work_cycles += host.cost
                regs.rip = next_rip
                host.fn(cpu)
            else:
                rsp = (regs.gpr[7] - 8) & U64
                regs.gpr[7] = rsp
                store8(rsp, next_rip)
                regs.rip = target
            cpu.cycles += cost
            cpu.work_cycles += cost
            cpu.instruction_count += 1
            rbc[ctrl] += 1
        return run_call

    if mn == "ret":
        load8 = _raw_load8_factory(mem)

        def run_ret():
            rsp = regs.gpr[7]
            addr = load8(rsp)
            regs.gpr[7] = (rsp + 8) & U64
            if addr == _RETURN_SENTINEL:
                cpu.halted = True
            else:
                regs.rip = addr
            cpu.cycles += cost
            cpu.work_cycles += cost
            cpu.instruction_count += 1
            rbc[ctrl] += 1
        return run_ret

    cond = CONDITION_CODES.get(mn)
    if cond is None:
        return None
    tgt = _target(ops[0])
    if tgt is None:
        return None

    def run_jcc():
        regs.rip = tgt() if cond(regs.flags) else next_rip
        cpu.cycles += cost
        cpu.work_cycles += cost
        cpu.instruction_count += 1
        rbc[ctrl] += 1
    return run_jcc


def _tail_chain_grade(uop: MicroOp, prog) -> int:
    """How the chain dispatcher may follow this control tail:
    0 = not chainable, 1 = chain freely, 2 = chain after re-checking
    ``cpu.halted`` (ret's return sentinel).

    Chain links key on the *runtime* post-tail RIP, so indirectness is
    not a problem — a register-target or name-resolved ``jmp``/``jcc``
    produces some address and the dispatcher looks it up live (a
    rebound symbol simply links to the new target's block; decoded text
    never changes without a patch-epoch bump).  What disqualifies a
    tail is the ability to run *host* code — host-function calls can
    patch, block, rebind, and move the epoch — so only ``call``\\ s
    whose target is statically known to be guest text chain (an
    indirect or name-resolved call may resolve to a host function).
    ``ret`` can halt, which grade 2 re-checks after the tail runs."""
    mn = uop.mnemonic
    if mn == "jmp" or mn in CONDITION_CODES:
        return 1
    if mn == "ret":
        return 2
    if mn == "call":
        ops = uop.instr.operands
        op = ops[0] if ops else None
        if (isinstance(op, Label) and op.addr is not None
                and op.addr != -1 and op.addr not in prog.host_functions):
            return 1
    return 0


#: A chain shorter than this many blocks (root included) did not cover
#: the chain dispatcher's fixed entry cost.  Budget-cut chains are not
#: counted — the quantum ended the trace, not the program's structure.
CHAIN_SHORT_LEN = 6

#: Consecutive short chains from one root before it is demoted
#: (``chain_root = False``) and entry falls back to the engine loop.
CHAIN_DEMOTE_AFTER = 4


# -------------------------------------------------------------- superblock
class Superblock:
    """A straight-line run of bound micro-ops plus an optional control
    tail, with prefix cost sums for batched retire accounting.

    ``chainable`` marks tails the chain dispatcher may follow without
    re-entering the engine loop (see :func:`_tail_chain_grade`): any
    ``jmp``/``jcc``, ``ret`` (with ``chain_check`` set — the dispatcher
    re-checks ``cpu.halted`` after it), or a ``call`` statically known
    to target guest text.  Such tails cannot patch, block, or run host
    code, so no engine-loop re-check is needed between the tail and the
    next block.  ``links`` is the per-edge link cache: post-tail RIP ->
    next Superblock, populated lazily by the chain dispatcher and
    scrubbed per site with the block cache (edges keyed at a patched
    address or targeting a dropped block go; the rest survive).

    ``chain_root`` gates *starting* a chain here (continuing through
    the block mid-chain only needs ``chainable``).  A chain entry has
    fixed dispatch cost that only pays off over enough linked blocks;
    roots whose chains come up structurally short
    (< :data:`CHAIN_SHORT_LEN` blocks, not counting budget cuts)
    :data:`CHAIN_DEMOTE_AFTER` times in a row are demoted — the
    trace-root blacklisting of trace JITs — and fall back to plain
    engine-loop dispatch until the block cache is rebuilt."""

    __slots__ = ("entry", "end", "body", "classes", "class_counts",
                 "prefix_cost", "n_body", "tail", "tail_addr", "chainable",
                 "chain_check", "links", "chain_root", "chain_shorts",
                 "prefix_fp", "prefix_touch", "fp_writes", "fp_touch")

    def __init__(self, entry, body, classes, prefix_cost, tail, tail_addr,
                 chain_grade=0, end=None, uops=()):
        self.entry = entry
        #: exclusive end of the address range this block executes
        #: through (tail included).  Per-site invalidation drops a
        #: block iff a patched address falls in ``[entry, end)``.
        self.end = entry if end is None else end
        self.body = body
        self.classes = classes
        self.class_counts = dict(Counter(classes))
        self.prefix_cost = prefix_cost
        self.n_body = len(body)
        #: lazy-FP lowering-time summaries: ``prefix_fp[i]`` is the XMM
        #: lane union the first ``i`` body uops write and
        #: ``prefix_touch[i]`` whether any of them touch FP state, so a
        #: (possibly partial) body run of ``i`` uops charges its dirty
        #: set with one index each — dirty tracking per block dispatch,
        #: not per instruction.
        pf = [0]
        pt = [False]
        for uop in uops:
            pf.append(pf[-1] | uop.xmm_writes)
            pt.append(pt[-1] or uop.fp_touch)
        self.prefix_fp = pf
        self.prefix_touch = pt
        self.fp_writes = pf[-1]
        self.fp_touch = pt[-1]
        self.tail = tail
        self.tail_addr = tail_addr
        self.chainable = chain_grade > 0
        self.chain_check = chain_grade == 2
        self.links: dict[int, "Superblock"] = {}
        self.chain_root = True
        self.chain_shorts = 0


#: process-wide allocator for SuperblockCache view keys (see
#: :meth:`SuperblockCache._key`).
_VIEW_KEYS = itertools.count(1)


class SuperblockCache:
    """The per-process superblock cache: one object shared by every
    thread CPU of a :class:`~repro.machine.process.Process` (a
    standalone CPU owns a private one).

    Superblock bodies are closures bound over one CPU's registers and
    memory accessors, so the blocks themselves cannot be shared across
    threads; what *is* shared is the invalidation state.  ``epoch`` is
    the cache's cursor into ``Program.patch_events`` (numerically equal
    to the last ``patch_seq`` processed, which keeps the historic name
    honest): when the program's sequence moves, :meth:`sync` walks only
    the *new* suffix of patched addresses and drops exactly the cached
    artifacts whose address range covers a changed site — superblocks
    via ``[entry, end)``, chain links keyed at the site or targeting a
    dropped block, fused traces via their recorded block ranges, and
    the sequence emulator's compiled traces by step membership.  Every
    thread's (and, for a fleet worker's warm cache, every guest's)
    unrelated blocks survive, turning a patch from a fleet-wide cache
    flush into a local event.  The per-site walk is still cross-thread
    sound: a patch made by thread A drops thread B's covering blocks
    and links in the same sync, exactly like the old wholesale flush.
    """

    __slots__ = ("views", "epoch", "capacity", "cached_blocks",
                 "invalidations", "evictions", "unlinks",
                 "invalidated_blocks", "survived_blocks",
                 "trace_views", "seq_traces", "cached_traces",
                 "dropped_traces")

    def __init__(self, capacity: int = 4096) -> None:
        #: id(cpu) -> {entry: Superblock} — cleared in place, never
        #: rebound, because engines hold direct references.
        self.views: dict[int, dict[int, Superblock]] = {}
        self.epoch: int | None = None
        self.capacity = capacity
        self.cached_blocks = 0
        #: syncs that actually dropped cached state (per-site now, so
        #: a patch with no covering artifact does not count).
        self.invalidations = 0
        #: capacity evictions (wholesale, unlike the per-site sync).
        self.evictions = 0
        #: chain-graph edges destroyed by invalidation/eviction.
        self.unlinks = 0
        #: superblocks dropped because their range covered a patched
        #: site (cumulative across syncs).
        self.invalidated_blocks = 0
        #: superblocks that survived a per-site sync (summed per sync —
        #: under the old epoch scheme this was identically zero).
        self.survived_blocks = 0
        #: id(cpu) -> {entry: ChainTrace} — the fused trace-JIT tier's
        #: compiled closures; per-CPU like blocks (bound closures), but
        #: evicted by the same epoch policy, in place.
        self.trace_views: dict[int, dict] = {}
        #: entry -> CompiledTrace — the sequence emulator's compiled
        #: FP-trap traces (address lists, shareable across threads);
        #: unified here so one patch-epoch bump kills every compiled
        #: artifact of both tiers at once.
        self.seq_traces: dict = {}
        self.cached_traces = 0
        #: compiled traces (both tiers) killed by flushes/evictions.
        self.dropped_traces = 0

    @staticmethod
    def _key(cpu) -> int:
        """A stable per-CPU view key.  ``id(cpu)`` is unsafe for caches
        that outlive their CPUs (a fleet worker hosts many sequential
        guests and CPython reuses object addresses); a monotonically
        assigned token can never collide with a dead guest's view."""
        key = getattr(cpu, "_sb_view_key", None)
        if key is None:
            key = cpu._sb_view_key = next(_VIEW_KEYS)
        return key

    def view(self, cpu) -> dict[int, Superblock]:
        """The per-thread entry->Superblock map for ``cpu``."""
        return self.views.setdefault(self._key(cpu), {})

    def trace_view(self, cpu) -> dict:
        """The per-thread entry->ChainTrace map for ``cpu``."""
        return self.trace_views.setdefault(self._key(cpu), {})

    def release(self, cpu) -> None:
        """Drop every view owned by ``cpu`` (blocks, chain links, and
        compiled traces).  Fleet workers call this after each guest
        retires so a long-lived warm cache never accumulates the views
        of dead guests; the shared ``seq_traces`` and the process-wide
        epoch mirror stay warm for the next guest."""
        key = getattr(cpu, "_sb_view_key", None)
        if key is None:
            return
        view = self.views.pop(key, None)
        if view:
            for blk in view.values():
                self.unlinks += len(blk.links)
            self.cached_blocks -= len(view)
        tview = self.trace_views.pop(key, None)
        if tview:
            self.dropped_traces += len(tview)
            self.cached_traces -= len(tview)

    def _drop_all(self) -> None:
        for view in self.views.values():
            for blk in view.values():
                self.unlinks += len(blk.links)
            view.clear()
        self.cached_blocks = 0
        dropped = len(self.seq_traces)
        for tview in self.trace_views.values():
            dropped += len(tview)
            tview.clear()
        self.seq_traces.clear()
        self.dropped_traces += dropped
        self.cached_traces = 0

    def sync(self, program) -> bool:
        """Advance the cursor over ``program.patch_events`` and drop
        exactly the cached artifacts covering a changed site.  Returns
        True when cached state was actually invalidated."""
        seq = program.patch_seq
        if seq == self.epoch:
            return False
        if self.epoch is None or seq < self.epoch:
            # first observation (or a program with a shorter history,
            # e.g. a fresh fork): adopt the cursor — nothing cached was
            # built under an unseen patch state.
            self.epoch = seq
            return False
        sites = set(program.patch_events[self.epoch:seq])
        self.epoch = seq
        return self._invalidate_sites(sites)

    def _invalidate_sites(self, sites: set) -> bool:
        """Per-site invalidation across every thread/guest view."""
        dropped_any = False
        for view in self.views.values():
            dead: set[int] = set()
            for blk in list(view.values()):
                if any(blk.entry <= a < blk.end for a in sites):
                    dead.add(id(blk))
                    del view[blk.entry]
                    self.unlinks += len(blk.links)
                    self.cached_blocks -= 1
                    self.invalidated_blocks += 1
                    dropped_any = True
            for blk in view.values():
                if blk.links:
                    bad = [rip for rip, nxt in blk.links.items()
                           if rip in sites or id(nxt) in dead]
                    for rip in bad:
                        del blk.links[rip]
                        self.unlinks += 1
                        dropped_any = True
            self.survived_blocks += len(view)
        for tview in self.trace_views.values():
            for entry, trace in list(tview.items()):
                if any(lo <= a < hi for a in sites for lo, hi in trace.ranges):
                    del tview[entry]
                    self.cached_traces -= 1
                    self.dropped_traces += 1
                    dropped_any = True
        # Sequence-emulator traces: a site strictly inside the step
        # list would be emulated through without its pre-hook; a site
        # at the entry already had its hook delivered before the trap.
        for entry, trace in list(self.seq_traces.items()):
            if entry in sites or any(a in sites for a, _ in trace.steps[1:]):
                del self.seq_traces[entry]
                self.dropped_traces += 1
                dropped_any = True
        if dropped_any:
            self.invalidations += 1
        return dropped_any

    def evict_all(self) -> None:
        """Drop everything to bound the cache (counts as an eviction,
        not an invalidation)."""
        self.evictions += 1
        self._drop_all()

    def as_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "cached_blocks": self.cached_blocks,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "unlinks": self.unlinks,
            "invalidated_blocks": self.invalidated_blocks,
            "survived_blocks": self.survived_blocks,
            "cached_traces": self.cached_traces,
            "dropped_traces": self.dropped_traces,
        }


def shared_cache(cpu) -> SuperblockCache:
    """The CPU's process-shared :class:`SuperblockCache`, created on
    first use — one object per process (threads share it), one per
    standalone CPU.  Both the superblock engine and the sequence
    emulator go through here, so their compiled artifacts live under
    one eviction policy."""
    cache = getattr(cpu, "_sb_cache", None)
    if cache is None:
        cache = SuperblockCache()
        cpu._sb_cache = cache
    return cache


class UopStats:
    """Host-side execution counters for the throughput layer."""

    __slots__ = ("blocks_built", "block_runs", "partial_block_runs",
                 "uops_retired", "slow_fallbacks", "single_steps",
                 "quantum_dispatches", "quantum_exits",
                 "links_created", "links_followed", "chain_runs",
                 "chain_breaks", "chain_lengths", "chain_demotions",
                 "trace_compiles", "trace_recompiles", "trace_runs",
                 "trace_iters", "trace_steps", "trace_exits",
                 "trace_lengths", "trace_demotions",
                 "trace_code_hits", "trace_code_evictions",
                 "invalidated_blocks", "survived_blocks")

    def __init__(self) -> None:
        self.blocks_built = 0
        self.block_runs = 0
        #: bodies whose fitting *prefix* was retired through the
        #: pipeline at a quantum budget edge (chaining tier only).
        self.partial_block_runs = 0
        self.uops_retired = 0
        self.slow_fallbacks = 0
        self.single_steps = 0
        #: scheduler quanta dispatched through run_quantum().
        self.quantum_dispatches = 0
        #: why each quantum ended: budget / halted / blocked.
        self.quantum_exits: Counter = Counter()
        #: chain edges installed in a block's link cache.
        self.links_created = 0
        #: chain edges actually followed (committed to execute).
        self.links_followed = 0
        #: dispatches that followed at least one chain edge.
        self.chain_runs = 0
        #: why chains ended: patch / budget / slow / empty / notail /
        #: halt / unchainable.
        self.chain_breaks: Counter = Counter()
        #: histogram: blocks retired per chaining dispatch (>= 2).
        self.chain_lengths: Counter = Counter()
        #: roots blacklisted after consecutive structurally short
        #: chains (see :data:`CHAIN_SHORT_LEN`).
        self.chain_demotions = 0
        #: stable chains fused into compiled trace closures.
        self.trace_compiles = 0
        #: compiles of an entry that had been compiled before
        #: (post-demotion re-stabilization or post-flush rebuild).
        self.trace_recompiles = 0
        #: compiled-trace dispatches (one closure call each).
        self.trace_runs = 0
        #: complete trace laps retired.
        self.trace_iters = 0
        #: total steps retired through compiled traces.
        self.trace_steps = 0
        #: why trace dispatches ended, by exit name (see
        #: ``tracejit.EXIT_NAMES``): exit / slow / side / halt /
        #: budget / mxcsr.
        self.trace_exits: Counter = Counter()
        #: histogram: superblocks per compiled trace.
        self.trace_lengths: Counter = Counter()
        #: traces torn down after sustained early side exits.
        self.trace_demotions = 0
        #: compiles served from the shared source->code cache (the
        #: warm-start path a fleet worker's later guests ride).
        self.trace_code_hits = 0
        #: LRU evictions this engine's compiles forced out of the
        #: bounded code cache (FPVM_TRACE_CACHE_CAP).
        self.trace_code_evictions = 0
        #: snapshot of the shared cache's per-site invalidation
        #: counters as of this engine's last observed sync (process-
        #: wide totals: blocks dropped for covering a patched site /
        #: blocks that survived those syncs).
        self.invalidated_blocks = 0
        self.survived_blocks = 0

    @property
    def uop_hit_rate(self) -> float:
        """Fraction of executed instructions retired through micro-op
        closures (vs. single-step fallbacks)."""
        total = self.uops_retired + self.single_steps + self.slow_fallbacks
        return self.uops_retired / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "blocks_built": self.blocks_built,
            "block_runs": self.block_runs,
            "partial_block_runs": self.partial_block_runs,
            "uops_retired": self.uops_retired,
            "slow_fallbacks": self.slow_fallbacks,
            "single_steps": self.single_steps,
            "uop_hit_rate": self.uop_hit_rate,
            "quantum_dispatches": self.quantum_dispatches,
            "quantum_exits": dict(self.quantum_exits),
            "links_created": self.links_created,
            "links_followed": self.links_followed,
            "chain_runs": self.chain_runs,
            "chain_breaks": dict(self.chain_breaks),
            "chain_lengths": dict(self.chain_lengths),
            "chain_demotions": self.chain_demotions,
            "trace_compiles": self.trace_compiles,
            "trace_recompiles": self.trace_recompiles,
            "trace_runs": self.trace_runs,
            "trace_iters": self.trace_iters,
            "trace_steps": self.trace_steps,
            "trace_exits": dict(self.trace_exits),
            "trace_lengths": dict(self.trace_lengths),
            "trace_demotions": self.trace_demotions,
            "trace_code_hits": self.trace_code_hits,
            "trace_code_evictions": self.trace_code_evictions,
            "invalidated_blocks": self.invalidated_blocks,
            "survived_blocks": self.survived_blocks,
        }


class UopEngine:
    """Per-CPU fetch/dispatch/execute engine running cached superblocks
    with single-step fallback at traps, patch sites, and anything a
    closure cannot execute (the :data:`SLOW` protocol).

    Block storage lives in the CPU's :class:`SuperblockCache` (shared
    by every thread of a process); the engine holds that cache's
    per-thread view and, when chaining is enabled, follows direct
    control edges between cached blocks instead of returning to its
    loop at every tail."""

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        cache = shared_cache(cpu)
        self.cache = cache
        #: this CPU's entry -> Superblock view of the shared cache.
        #: The cache clears it *in place*, so this reference never
        #: goes stale across invalidations.
        self._blocks = cache.view(cpu)
        self.chain_enabled = getattr(cpu, "chain_enabled", True)
        #: the fused trace-JIT tier rides on chaining: the chain
        #: dispatcher is both the region recorder and the fallback.
        self.trace_enabled = (self.chain_enabled
                              and bool(getattr(cpu, "trace_enabled", False)))
        #: entry -> ChainTrace (same in-place-clear contract as blocks).
        self._traces = cache.trace_view(cpu)
        #: entry -> [cycle signature, accumulated laps] for cycles that
        #: have not reached the stabilization threshold inside a single
        #: chain run (quantum-cut chains stabilize across runs).
        self._trace_heat: dict[int, list] = {}
        #: entry -> exponential re-stabilization backoff after demotion.
        self._trace_backoff: dict[int, int] = {}
        #: entries ever compiled (recompile telemetry).
        self._trace_compiled_once: set[int] = set()
        self.stats = UopStats()

    def _new_block(self, entry: int) -> Superblock:
        cache = self.cache
        if cache.cached_blocks >= cache.capacity:
            cache.evict_all()
        block = self._build(entry)
        self._blocks[entry] = block
        cache.cached_blocks += 1
        self.stats.blocks_built += 1
        return block

    # ---------------------------------------------------- trace-JIT tier
    def _trace_need(self, entry: int) -> int:
        """Consecutive identical laps required before ``entry``'s cycle
        is fused — the configured threshold, doubled per demotion."""
        from repro.machine import tracejit
        base = max(1, getattr(self.cpu, "trace_stabilize_threshold",
                              None) or tracejit.stabilize_threshold_default())
        return base << min(self._trace_backoff.get(entry, 0),
                           tracejit.BACKOFF_CAP)

    def _compile_trace(self, blocks) -> None:
        """Fuse a recorded block cycle; on unsupported shapes the root
        is backed off so the recorder stops re-proposing it."""
        from repro.machine import tracejit
        entry = blocks[0].entry
        traces = self._traces
        if entry in traces or len(traces) >= tracejit.MAX_TRACES:
            return
        hits0 = tracejit.CODE_CACHE_HITS
        evict0 = tracejit.CODE_CACHE_EVICTIONS
        tr = tracejit.compile_trace(self.cpu, blocks)
        self.stats.trace_code_hits += tracejit.CODE_CACHE_HITS - hits0
        self.stats.trace_code_evictions += tracejit.CODE_CACHE_EVICTIONS - evict0
        self._trace_heat.pop(entry, None)
        if tr is None:
            self._trace_backoff[entry] = tracejit.BACKOFF_CAP
            return
        traces[entry] = tr
        self.cache.cached_traces += 1
        stats = self.stats
        stats.trace_compiles += 1
        if entry in self._trace_compiled_once:
            stats.trace_recompiles += 1
        else:
            self._trace_compiled_once.add(entry)
        stats.trace_lengths[len(blocks)] += 1

    def _trace_note_cycle(self, cyc, reps: int) -> None:
        """Cross-run stabilization: accumulate completed laps of a
        detected cycle whose chain run ended before the threshold
        (quantum budgets cut chains long before a loop finishes)."""
        entry = cyc[0].entry
        if entry in self._traces:
            return
        sig = tuple(b.entry for b in cyc)
        heat = self._trace_heat
        h = heat.get(entry)
        if h is not None and h[0] == sig:
            h[1] += reps
            total = h[1]
        else:
            heat[entry] = [sig, reps]
            total = reps
        if total >= self._trace_need(entry):
            self._compile_trace(cyc)

    def _trace_dispatch(self, tr, avail: int) -> tuple[int, int]:
        """Run a compiled trace for at most ``avail`` steps; returns
        ``(steps retired, exit code)`` and applies the demotion policy
        (sustained mispredictions tear the trace down; the next
        stabilization pays a doubled threshold)."""
        stats = self.stats
        stats.trace_runs += 1
        iters, pos, code = tr.run(avail)
        steps = tr.settle(iters, pos)
        stats.trace_iters += iters
        stats.trace_steps += steps
        stats.uops_retired += steps
        stats.trace_exits[_TRACE_EXIT_NAMES[code]] += 1
        tr.runs += 1
        if code == 1 or code == 2 or code == 5:
            tr.bad_exits += 1
            from repro.machine import tracejit
            if (tr.runs >= tracejit.DEMOTE_MIN_RUNS
                    and tr.bad_exits * 2 >= tr.runs):
                self._traces.pop(tr.entry, None)
                self.cache.cached_traces -= 1
                self._trace_heat.pop(tr.entry, None)
                self._trace_backoff[tr.entry] = min(
                    self._trace_backoff.get(tr.entry, 0) + 1,
                    tracejit.BACKOFF_CAP)
                stats.trace_demotions += 1
        return steps, code

    # --------------------------------------------------------- main loop
    def run(self, limit: int) -> None:
        from repro.machine.cpu import MachineError

        cpu = self.cpu
        regs = cpu.regs
        prog = cpu.program
        patches = cpu._fetch_view.patches
        cache = self.cache
        blocks = self._blocks
        traces = self._traces
        stats = self.stats
        step = cpu.step
        chain_on = self.chain_enabled
        steps = 0

        while not cpu.halted:
            if prog.patch_seq != cache.epoch:
                cache.sync(prog)
                stats.invalidated_blocks = cache.invalidated_blocks
                stats.survived_blocks = cache.survived_blocks

            rip = regs.rip
            if cpu._suppress_patch_at is not None or rip in patches:
                step()
                steps += 1
                stats.single_steps += 1
                if steps >= limit:
                    raise MachineError(f"run exceeded {limit} steps (runaway?)")
                continue

            if traces:
                tr = traces.get(rip)
                if tr is not None:
                    done, code = self._trace_dispatch(tr, limit - steps)
                    steps += done
                    if steps >= limit:
                        raise MachineError(
                            f"run exceeded {limit} steps (runaway?)")
                    if code == 1:
                        # SLOW side exit: the faulting uop re-executes
                        # through the seed path (full #XF protocol).
                        stats.slow_fallbacks += 1
                        step()
                        steps += 1
                        if steps >= limit:
                            raise MachineError(
                                f"run exceeded {limit} steps (runaway?)")
                        continue
                    if code != 5 and not (code == 4 and done == 0):
                        continue
                    # entry guard failed / zero-progress budget edge:
                    # fall through to block dispatch at the same RIP.

            block = blocks.get(rip)
            if block is None:
                block = self._new_block(rip)

            n = block.n_body
            if n and (limit - steps) >= n:
                retired = self._run_body(cpu, block)
                steps += retired
                stats.uops_retired += retired
                if retired < n:
                    stats.slow_fallbacks += 1
                    step()
                    steps += 1
                    if steps >= limit:
                        raise MachineError(f"run exceeded {limit} steps (runaway?)")
                    continue
                stats.block_runs += 1
                if steps >= limit:
                    raise MachineError(f"run exceeded {limit} steps (runaway?)")
                tail = block.tail
                if tail is not None:
                    tail()
                    steps += 1
                    stats.uops_retired += 1
                    if steps >= limit:
                        raise MachineError(f"run exceeded {limit} steps (runaway?)")
                    if (chain_on and block.chainable and block.chain_root
                            and not (block.chain_check and cpu.halted)):
                        steps = self._chain_run(block, steps, limit)
                continue
            if n == 0 and block.tail is not None:
                block.tail()
                steps += 1
                stats.uops_retired += 1
                stats.block_runs += 1
                if steps >= limit:
                    raise MachineError(f"run exceeded {limit} steps (runaway?)")
                if (chain_on and block.chainable and block.chain_root
                        and not (block.chain_check and cpu.halted)):
                    steps = self._chain_run(block, steps, limit)
                continue

            # No runnable block (sys/unmapped/odd shape) or not enough
            # step budget left for the whole body: seed single-step.
            step()
            steps += 1
            stats.single_steps += 1
            if steps >= limit:
                raise MachineError(f"run exceeded {limit} steps (runaway?)")

    # ----------------------------------------------------- quantum entry
    def run_quantum(self, budget: int) -> int:
        """Dispatch superblocks for one scheduler quantum of at most
        ``budget`` steps; returns the number of steps taken.

        A "step" is exactly one seed ``cpu.step()`` equivalent — each
        body micro-op, each control tail, and each single-step fallback
        counts one, so a batched quantum consumes the process's global
        step budget precisely like ``budget × step()`` would.  The
        quantum ends when the budget is spent or the core halts or
        blocks (``thread_join``); a trap or SLOW sentinel inside the
        quantum falls back to ``step()`` and the quantum continues.
        Never exceeds ``budget``: a block body only runs when it fits
        in the remaining budget, and the tail / SLOW-fallback step is
        skipped once the budget is exhausted.
        """
        cpu = self.cpu
        regs = cpu.regs
        prog = cpu.program
        patches = cpu._fetch_view.patches
        cache = self.cache
        blocks = self._blocks
        traces = self._traces
        stats = self.stats
        step = cpu.step
        chain_on = self.chain_enabled
        retired = 0
        exit_reason = "budget"
        stats.quantum_dispatches += 1

        while retired < budget:
            if cpu.halted:
                exit_reason = "halted"
                break
            if cpu.blocked:
                exit_reason = "blocked"
                break
            if prog.patch_seq != cache.epoch:
                cache.sync(prog)
                stats.invalidated_blocks = cache.invalidated_blocks
                stats.survived_blocks = cache.survived_blocks

            rip = regs.rip
            if cpu._suppress_patch_at is not None or rip in patches:
                step()
                retired += 1
                stats.single_steps += 1
                continue

            if traces:
                tr = traces.get(rip)
                if tr is not None:
                    done, code = self._trace_dispatch(tr, budget - retired)
                    retired += done
                    if code == 1:
                        stats.slow_fallbacks += 1
                        if retired < budget:
                            step()
                            retired += 1
                        continue
                    if code != 5 and not (code == 4 and done == 0):
                        continue
                    # entry guard failed / lap doesn't fit the rest of
                    # the quantum: fall through to block dispatch (the
                    # partial-prefix path mirrors partial-block
                    # retirement at the budget edge).

            block = blocks.get(rip)
            if block is None:
                block = self._new_block(rip)

            n = block.n_body
            if n and (budget - retired) >= n:
                done = self._run_body(cpu, block)
                retired += done
                stats.uops_retired += done
                if done < n:
                    stats.slow_fallbacks += 1
                    if retired < budget:
                        step()
                        retired += 1
                    continue
                stats.block_runs += 1
                tail = block.tail
                if tail is not None and retired < budget:
                    tail()
                    retired += 1
                    stats.uops_retired += 1
                    if (chain_on and block.chainable and block.chain_root
                            and not (block.chain_check and cpu.halted)):
                        retired = self._chain_quantum(block, retired, budget)
                continue
            if n == 0 and block.tail is not None:
                block.tail()
                retired += 1
                stats.uops_retired += 1
                stats.block_runs += 1
                if (chain_on and block.chainable and block.chain_root
                        and not (block.chain_check and cpu.halted)):
                    retired = self._chain_quantum(block, retired, budget)
                continue

            if chain_on and n:
                # Body doesn't fit the remaining budget: retire the
                # fitting prefix through the pipeline instead of seed
                # single-stepping the quantum edge (chaining tier).
                avail = budget - retired
                done = self._run_body_partial(cpu, block, avail)
                retired += done
                stats.uops_retired += done
                stats.partial_block_runs += 1
                if done < avail:
                    stats.slow_fallbacks += 1
                    if retired < budget:
                        step()
                        retired += 1
                continue

            # No runnable block (sys/unmapped/odd shape) or the body
            # does not fit in the remaining budget: seed single-step.
            step()
            retired += 1
            stats.single_steps += 1

        stats.quantum_exits[exit_reason] += 1
        return retired

    # ---------------------------------------------------------- chaining
    # Both dispatchers are entered right after ``block``'s *chainable*
    # tail executed, so on entry the CPU is neither halted nor blocked,
    # ``_suppress_patch_at`` is None, and ``patch_seq`` has not moved
    # since the engine loop's checkpoint — chainable tails cannot run
    # host code, so they cannot change any of that (ret can halt, which
    # ``chain_check`` re-checks right after the tail).  The chain keeps
    # those invariants by breaking back to the engine loop after
    # anything that could violate them: a SLOW fallback (the
    # ``cpu.step()`` may deliver a trap whose handler patches), a
    # non-chainable tail (host calls can block or patch), a ret that
    # halted, a patched link target, or an exhausted budget.
    #
    # Retire accounting inside a chain is *batched*: body flushes are
    # deferred into per-block run counts and settled in one pass when
    # the chain ends — or eagerly, before anything that can observe the
    # counters runs (the SLOW fallback's cpu.step(), or an exception
    # propagating out through the ``finally``).  Nothing inside a chain
    # reads the counters between those points: body closures and
    # chainable tails touch only architectural state (tails do bump the
    # counters themselves, which is order-independent integer addition).

    def _chain_flush(self, full_runs, cur, i,
                     links_followed, block_runs, uops_local) -> None:
        """Settle a chain's deferred retire accounting: per-block run
        counts (``full_runs``, cleared in place), plus the in-flight
        body ``cur`` of which ``i`` micro-ops retired.  A plain method
        taking explicit state so the dispatchers' hot-loop variables
        stay function-locals (a nested closure would turn them into
        cell variables, taxing every access in the block loop)."""
        cpu = self.cpu
        rbc = cpu.retired_by_class
        cycles = 0
        instrs = 0
        fp_mask = 0
        fp_touched = False
        for blk, count in full_runs.values():
            cycles += blk.prefix_cost[blk.n_body] * count
            instrs += blk.n_body * count
            fp_mask |= blk.fp_writes
            fp_touched = fp_touched or blk.fp_touch
            for cls, cnt in blk.class_counts.items():
                rbc[cls] += cnt * count
        full_runs.clear()
        if cur is not None and i:
            cycles += cur.prefix_cost[i]
            instrs += i
            fp_mask |= cur.prefix_fp[i]
            fp_touched = fp_touched or cur.prefix_touch[i]
            for cls in cur.classes[:i]:
                rbc[cls] += 1
        if fp_touched:
            cpu.fp_quantum_touched = True
            cpu.regs.fp_dirty |= fp_mask
        if cycles:
            cpu.cycles += cycles
            cpu.work_cycles += cycles
        if instrs:
            cpu.instruction_count += instrs
        stats = self.stats
        stats.links_followed += links_followed
        stats.block_runs += block_runs
        stats.uops_retired += uops_local

    def _chain_run(self, block: Superblock, steps: int, limit: int) -> int:
        """Chain dispatch for :meth:`run`: raises MachineError at the
        step limit exactly like the engine loop's checkpoints.  Returns
        the updated step count; the engine loop re-checks halt, epoch,
        and patch state on return."""
        from repro.machine.cpu import MachineError

        cpu = self.cpu
        regs = cpu.regs
        patches = cpu._fetch_view.patches
        blocks = self._blocks
        stats = self.stats
        breaks = stats.chain_breaks
        root = block
        budget_cut = False
        links_followed = 0
        block_runs = 0
        uops_local = 0
        full_runs: dict[int, list] = {}  # id(blk) -> [blk, run count]
        cur: Superblock | None = None    # body in flight (partial flush)
        i = 0                            # retired uops of cur's body
        length = 1
        # trace recording: the chain dispatcher doubles as the region
        # selector — it watches the followed path for a block cycle and
        # counts identical laps (see the trace-JIT tier).
        trace_on = self.trace_enabled
        traces = self._traces
        rec = trace_on
        cyc = None                       # detected cycle (block list)
        ncyc = ci = reps = need = 0
        if trace_on:
            path = [block]
            seen = {block.entry: 0}

        try:
            while True:
                rip = regs.rip
                nxt = block.links.get(rip)
                if nxt is None:
                    if rip in patches:
                        breaks["patch"] += 1
                        return steps
                    nxt = blocks.get(rip)
                    if nxt is None:
                        nxt = self._new_block(rip)
                    block.links[rip] = nxt
                    stats.links_created += 1
                if trace_on:
                    e = nxt.entry
                    if e in traces:
                        # compiled trace head: break so the engine loop
                        # enters the trace at this exact RIP.
                        breaks["trace"] += 1
                        return steps
                    if rec:
                        if cyc is None:
                            j = seen.get(e)
                            if j is None:
                                if len(path) < _MAX_TRACE_BLOCKS:
                                    seen[e] = len(path)
                                    path.append(nxt)
                                else:
                                    rec = False
                            else:
                                cyc = path[j:]
                                ncyc = len(cyc)
                                ci = 0
                                reps = 1
                                need = self._trace_need(e)
                                if reps >= need:
                                    self._compile_trace(cyc)
                                    if e in traces:
                                        breaks["stabilized"] += 1
                                        return steps
                                    rec = False
                        else:
                            ci += 1
                            if ci == ncyc:
                                ci = 0
                            if e != cyc[ci].entry:
                                rec = False
                                cyc = None
                            elif ci == 0:
                                reps += 1
                                if reps >= need:
                                    self._compile_trace(cyc)
                                    if e in traces:
                                        breaks["stabilized"] += 1
                                        return steps
                                    rec = False
                n = nxt.n_body
                tail = nxt.tail
                if n == 0 and tail is None:
                    breaks["empty"] += 1
                    return steps
                if limit - steps < n:
                    budget_cut = True
                    breaks["budget"] += 1
                    return steps
                links_followed += 1
                length += 1
                if n:
                    cur = nxt
                    i = 0
                    for fn in nxt.body:
                        if fn() is SLOW:
                            break
                        i += 1
                    steps += i
                    uops_local += i
                    if i < n:
                        stats.slow_fallbacks += 1
                        breaks["slow"] += 1
                        self._chain_flush(full_runs, cur, i, links_followed,
                                          block_runs, uops_local)
                        cur = None
                        i = 0
                        links_followed = block_runs = uops_local = 0
                        cpu.step()
                        steps += 1
                        if steps >= limit:
                            raise MachineError(
                                f"run exceeded {limit} steps (runaway?)")
                        return steps
                    cur = None
                    e = full_runs.get(id(nxt))
                    if e is None:
                        full_runs[id(nxt)] = [nxt, 1]
                    else:
                        e[1] += 1
                    block_runs += 1
                    if steps >= limit:
                        raise MachineError(
                            f"run exceeded {limit} steps (runaway?)")
                if tail is None:
                    breaks["notail"] += 1
                    return steps
                tail()
                steps += 1
                uops_local += 1
                if n == 0:
                    block_runs += 1
                if nxt.chain_check and cpu.halted:
                    breaks["halt"] += 1
                    return steps
                if steps >= limit:
                    raise MachineError(
                        f"run exceeded {limit} steps (runaway?)")
                if not nxt.chainable:
                    breaks["unchainable"] += 1
                    return steps
                block = nxt
        finally:
            self._chain_flush(full_runs, cur, i, links_followed,
                              block_runs, uops_local)
            if trace_on and cyc is not None and reps:
                self._trace_note_cycle(cyc, reps)
            if length > 1:
                stats.chain_runs += 1
                stats.chain_lengths[length] += 1
            if length >= CHAIN_SHORT_LEN:
                root.chain_shorts = 0
            elif not budget_cut:
                root.chain_shorts += 1
                if root.chain_shorts >= CHAIN_DEMOTE_AFTER:
                    root.chain_root = False
                    stats.chain_demotions += 1

    def _chain_quantum(self, block: Superblock, retired: int,
                       budget: int) -> int:
        """Chain dispatch for :meth:`run_quantum`: never exceeds
        ``budget``.  At the budget edge a linked body's fitting *prefix*
        is retired through the pipeline (each body closure is exactly
        one seed step, and every closure leaves RIP architecturally
        correct, so stopping mid-block is stopping between steps); the
        next quantum resumes at the mid-block RIP through a fresh
        suffix block."""
        cpu = self.cpu
        regs = cpu.regs
        patches = cpu._fetch_view.patches
        blocks = self._blocks
        stats = self.stats
        breaks = stats.chain_breaks
        root = block
        budget_cut = False
        links_followed = 0
        block_runs = 0
        uops_local = 0
        full_runs: dict[int, list] = {}
        cur: Superblock | None = None
        i = 0
        length = 1
        trace_on = self.trace_enabled
        traces = self._traces
        rec = trace_on
        cyc = None
        ncyc = ci = reps = need = 0
        if trace_on:
            path = [block]
            seen = {block.entry: 0}

        try:
            while retired < budget:
                rip = regs.rip
                nxt = block.links.get(rip)
                if nxt is None:
                    if rip in patches:
                        breaks["patch"] += 1
                        return retired
                    nxt = blocks.get(rip)
                    if nxt is None:
                        nxt = self._new_block(rip)
                    block.links[rip] = nxt
                    stats.links_created += 1
                if trace_on:
                    e = nxt.entry
                    if e in traces:
                        breaks["trace"] += 1
                        return retired
                    if rec:
                        if cyc is None:
                            j = seen.get(e)
                            if j is None:
                                if len(path) < _MAX_TRACE_BLOCKS:
                                    seen[e] = len(path)
                                    path.append(nxt)
                                else:
                                    rec = False
                            else:
                                cyc = path[j:]
                                ncyc = len(cyc)
                                ci = 0
                                reps = 1
                                need = self._trace_need(e)
                                if reps >= need:
                                    self._compile_trace(cyc)
                                    if e in traces:
                                        breaks["stabilized"] += 1
                                        return retired
                                    rec = False
                        else:
                            ci += 1
                            if ci == ncyc:
                                ci = 0
                            if e != cyc[ci].entry:
                                rec = False
                                cyc = None
                            elif ci == 0:
                                reps += 1
                                if reps >= need:
                                    self._compile_trace(cyc)
                                    if e in traces:
                                        breaks["stabilized"] += 1
                                        return retired
                                    rec = False
                n = nxt.n_body
                tail = nxt.tail
                if n == 0 and tail is None:
                    breaks["empty"] += 1
                    return retired
                avail = budget - retired
                if avail < n:
                    # partial dispatch: retire the fitting prefix
                    # through the pipeline, then end on the budget.
                    budget_cut = True
                    links_followed += 1
                    length += 1
                    cur = nxt
                    i = 0
                    for fn in nxt.body[:avail]:
                        if fn() is SLOW:
                            break
                        i += 1
                    retired += i
                    uops_local += i
                    stats.partial_block_runs += 1
                    if i < avail:
                        stats.slow_fallbacks += 1
                        breaks["slow"] += 1
                        self._chain_flush(full_runs, cur, i, links_followed,
                                          block_runs, uops_local)
                        cur = None
                        i = 0
                        links_followed = block_runs = uops_local = 0
                        if retired < budget:
                            cpu.step()
                            retired += 1
                        return retired
                    breaks["budget"] += 1
                    return retired
                links_followed += 1
                length += 1
                if n:
                    cur = nxt
                    i = 0
                    for fn in nxt.body:
                        if fn() is SLOW:
                            break
                        i += 1
                    retired += i
                    uops_local += i
                    if i < n:
                        stats.slow_fallbacks += 1
                        breaks["slow"] += 1
                        self._chain_flush(full_runs, cur, i, links_followed,
                                          block_runs, uops_local)
                        cur = None
                        i = 0
                        links_followed = block_runs = uops_local = 0
                        if retired < budget:
                            cpu.step()
                            retired += 1
                        return retired
                    cur = None
                    e = full_runs.get(id(nxt))
                    if e is None:
                        full_runs[id(nxt)] = [nxt, 1]
                    else:
                        e[1] += 1
                    block_runs += 1
                if tail is None:
                    breaks["notail"] += 1
                    return retired
                if retired >= budget:
                    budget_cut = True
                    breaks["budget"] += 1
                    return retired
                tail()
                retired += 1
                uops_local += 1
                if n == 0:
                    block_runs += 1
                if nxt.chain_check and cpu.halted:
                    breaks["halt"] += 1
                    return retired
                if not nxt.chainable:
                    breaks["unchainable"] += 1
                    return retired
                block = nxt
            budget_cut = True
            breaks["budget"] += 1
            return retired
        finally:
            self._chain_flush(full_runs, cur, i, links_followed,
                              block_runs, uops_local)
            if trace_on and cyc is not None and reps:
                self._trace_note_cycle(cyc, reps)
            if length > 1:
                stats.chain_runs += 1
                stats.chain_lengths[length] += 1
            if length >= CHAIN_SHORT_LEN:
                root.chain_shorts = 0
            elif not budget_cut:
                root.chain_shorts += 1
                if root.chain_shorts >= CHAIN_DEMOTE_AFTER:
                    root.chain_root = False
                    stats.chain_demotions += 1

    # ------------------------------------------------------- body runner
    @staticmethod
    def _run_body(cpu, block: Superblock) -> int:
        """Execute the block body, flushing the retired prefix's
        accounting even if a closure raises (memory fault etc.), so
        counters are exact before any trap/exception is observable."""
        body = block.body
        i = 0
        try:
            for fn in body:
                if fn() is SLOW:
                    break
                i += 1
        finally:
            if i:
                cost = block.prefix_cost[i]
                cpu.cycles += cost
                cpu.work_cycles += cost
                cpu.instruction_count += i
                if block.prefix_touch[i]:
                    cpu.fp_quantum_touched = True
                    cpu.regs.fp_dirty |= block.prefix_fp[i]
                rbc = cpu.retired_by_class
                if i == block.n_body:
                    for cls, cnt in block.class_counts.items():
                        rbc[cls] += cnt
                else:
                    for cls in block.classes[:i]:
                        rbc[cls] += 1
        return i

    @staticmethod
    def _run_body_partial(cpu, block: Superblock, k: int) -> int:
        """Execute the first ``k`` body micro-ops — the prefix that
        fits the remaining quantum budget.  Every closure is exactly
        one seed step and leaves RIP architecturally correct, so
        stopping after ``k`` of them is stopping between steps; the
        next dispatch resumes at the mid-block RIP."""
        body = block.body
        i = 0
        try:
            for fn in body[:k]:
                if fn() is SLOW:
                    break
                i += 1
        finally:
            if i:
                cost = block.prefix_cost[i]
                cpu.cycles += cost
                cpu.work_cycles += cost
                cpu.instruction_count += i
                if block.prefix_touch[i]:
                    cpu.fp_quantum_touched = True
                    cpu.regs.fp_dirty |= block.prefix_fp[i]
                rbc = cpu.retired_by_class
                for cls in block.classes[:i]:
                    rbc[cls] += 1
        return i

    # ---------------------------------------------------------- builder
    def _build(self, entry: int) -> Superblock:
        cpu = self.cpu
        prog = cpu.program
        view = cpu._fetch_view
        by_addr = view.by_addr
        patches = view.patches
        body = []
        classes = []
        uops = []
        prefix = [0]
        tail = None
        tail_addr = None
        chain_grade = 0
        addr = entry
        end = entry
        while len(body) < MAX_BLOCK:
            if addr in patches:
                break
            instr = by_addr.get(addr)
            if instr is None:
                break
            uop = lower(instr)
            cls = uop.opclass
            if cls is OpClass.CONTROL:
                tail = bind_control(uop, cpu)
                if tail is not None:
                    tail_addr = addr
                    chain_grade = _tail_chain_grade(uop, prog)
                    end = addr + uop.size
                break
            if cls is OpClass.SYS:
                break
            fn = bind_exec(uop, cpu)
            if fn is None:
                break
            body.append(fn)
            classes.append(cls)
            uops.append(uop)
            prefix.append(prefix[-1] + uop.cost)
            addr += uop.size
            end = addr
        return Superblock(entry, body, classes, prefix, tail, tail_addr,
                          chain_grade, end=end, uops=uops)
