"""Instruction decoder (the Capstone stand-in).

FPVM invokes this on a decode-cache miss; the work here is what the
``decode`` cost category accounts for.  The decoder is intentionally a
separate, from-bytes implementation rather than a lookup into the
assembler's output: FPVM only ever sees the byte stream of the faulting
instruction, exactly as in the real system.
"""

from __future__ import annotations

import struct

from repro.machine.encoding import (
    EncodingError,
    TAG_IMM,
    TAG_LABEL,
    TAG_MEM,
    TAG_REG,
    TAG_XMM,
)
from repro.machine.isa import (
    GPR_NAMES,
    OPCODE_BY_ID,
    XMM_NAMES,
    Imm,
    Instruction,
    Label,
    Mem,
    Reg,
    Xmm,
)

_I64 = struct.Struct("<q")


def decode_instruction(raw: bytes, addr: int = 0) -> Instruction:
    """Decode one instruction from ``raw`` (which must start at the
    instruction's first byte).  ``addr`` is recorded on the result."""
    if len(raw) < 2:
        raise EncodingError("truncated instruction header")
    opcode_id = raw[0]
    mnemonic = OPCODE_BY_ID.get(opcode_id)
    if mnemonic is None:
        raise EncodingError(f"unknown opcode id {opcode_id}")
    count = raw[1]
    pos = 2
    operands = []
    for _ in range(count):
        if pos >= len(raw):
            raise EncodingError("truncated operand list")
        tag = raw[pos]
        pos += 1
        if tag == TAG_REG:
            operands.append(Reg(GPR_NAMES[raw[pos]]))
            pos += 1
        elif tag == TAG_XMM:
            operands.append(Xmm(XMM_NAMES[raw[pos]]))
            pos += 1
        elif tag == TAG_IMM:
            operands.append(Imm(_I64.unpack_from(raw, pos)[0]))
            pos += 8
        elif tag == TAG_MEM:
            flags = raw[pos]
            base = GPR_NAMES[raw[pos + 1]] if flags & 1 else None
            index = GPR_NAMES[raw[pos + 2]] if flags & 2 else None
            scale = raw[pos + 3]
            size = raw[pos + 4]
            disp = _I64.unpack_from(raw, pos + 5)[0]
            rip_label = "<rip>" if flags & 4 else None
            operands.append(
                Mem(base=base, index=index, scale=scale, disp=disp,
                    rip_label=rip_label, size=size)
            )
            pos += 13
        elif tag == TAG_LABEL:
            target = _I64.unpack_from(raw, pos)[0]
            operands.append(Label(f"loc_{target:x}", addr=target))
            pos += 8
        else:
            raise EncodingError(f"bad operand tag {tag}")
    instr = Instruction(mnemonic, tuple(operands), addr=addr, size=pos,
                        raw=bytes(raw[:pos]))
    return instr


def decode_at(view, addr: int) -> Instruction:
    """Decode the instruction at ``addr`` through a
    :class:`~repro.machine.program.CodeView`.

    This is the only sanctioned fetch path: the front end decodes the
    FETCH view's instruction stream, never the raw text bytes living
    in guest memory — those back the DATA view and may legitimately be
    read by the guest itself (self-checksumming, JIT-style workloads)
    without ever observing instrumentation.
    """
    return decode_instruction(view.raw_bytes_at(addr), addr=addr)


__all__ = ["decode_instruction", "decode_at"]
