"""Processes and threads (§2.1).

FPVM "intercepts the startup of new threads using pthread or clone()
so that FPVM can create an execution context for each thread", and its
constructors re-run on fork so subprocesses stay virtualized.  This
module provides the substrate: a :class:`Process` owns the address
space and a set of :class:`~repro.machine.cpu.CPU` thread contexts
scheduled round-robin on one simulated core, plus pthread-flavoured
host functions (``thread_create`` / ``thread_join``) that binaries can
call.

Interception hooks: ``Process.on_thread_spawn`` callbacks fire for
every new thread — that is where FPVM attaches per-thread state (mxcsr
unmasking, device registration).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import DeadlockError, StepLimitError
from repro.machine.cpu import CPU, RETURN_SENTINEL
from repro.machine.isa import GPR_IDS
from repro.machine.program import HostFunction, Program, STACK_TOP

#: each thread gets a 64 KiB stack carved below the previous one.
THREAD_STACK_STRIDE = 0x1_0000

_FALSEY = ("0", "false", "off", "no")


def lazy_fp_enabled_default() -> bool:
    """The FPVM_LAZY_FP escape hatch (default on): schedule FP state
    with the hardware lazy-FPU discipline — a per-process FP owner,
    zero save/restore for quanta that touch no FP, and a modeled
    #NM-style switch (dirty lanes only) at the first FP touch by a
    non-owner thread.  Off = eager full-bank spill at every context
    switch (the xsave-everything baseline the paper's §3.1 wants to
    avoid)."""
    return os.environ.get("FPVM_LAZY_FP", "1").strip().lower() not in _FALSEY

RDI = GPR_IDS["rdi"]
RSI = GPR_IDS["rsi"]
RAX = GPR_IDS["rax"]


class Process:
    """One simulated process: shared memory, N thread contexts."""

    def __init__(
        self,
        program: Program,
        costs=None,
        max_instructions: int = 100_000_000,
        uops: bool | None = None,
        chain: bool | None = None,
        trace: bool | None = None,
        image=None,
        sb_cache=None,
        lazy_fp: bool | None = None,
    ):
        from repro.machine.costs import DEFAULT_COSTS
        from repro.core.telemetry import SchedulerStats
        from repro.machine.uops import SuperblockCache

        self.program = program
        self.costs = costs or DEFAULT_COSTS
        self.max_instructions = max_instructions
        if image is not None:
            # fleet path: the main thread's memory is a copy-on-write
            # clone of a pre-loaded template image (see CPU.from_image)
            # instead of a fresh load of the same bytes.
            main = CPU.from_image(program, image, self.costs,
                                  max_instructions, uops=uops, chain=chain,
                                  trace=trace)
        else:
            main = CPU(program, self.costs, max_instructions, uops=uops,
                       chain=chain, trace=trace)
        main.tid = 0
        main.process = self
        #: the process-wide superblock cache: one object — one cursor
        #: into ``Program.patch_events`` — shared by every thread CPU,
        #: so a patch made by any thread invalidates every thread's
        #: blocks/links/traces *covering that site* in one sync while
        #: unrelated warm state survives.  Installed on each CPU
        #: before its engine exists (engines capture it at creation).
        #: A fleet worker passes its warm per-program cache in instead,
        #: sharing invalidation state and bounds across its guests.
        self.sb_cache = sb_cache if sb_cache is not None else SuperblockCache()
        main._sb_cache = self.sb_cache
        self.threads: list[CPU] = [main]
        self.mem = main.mem
        self._joins: dict[int, int] = {}  # waiting tid -> awaited tid
        self._next_stack = STACK_TOP - THREAD_STACK_STRIDE
        #: fired as fn(process, new_thread_cpu) on every spawn.
        self.on_thread_spawn: list = []
        #: (waiting_tid, awaited_tid) in the order joins were satisfied
        #: — the scheduler-order observable the conformance axis checks.
        self.join_log: list[tuple[int, int]] = []
        #: batched-quantum telemetry, accumulated across run() calls.
        self.sched = SchedulerStats()
        #: lazy-FP discipline (§3.1, FPVM_LAZY_FP): per-process FP
        #: ownership; None = no thread has touched FP state yet.
        self.lazy_fp = lazy_fp_enabled_default() if lazy_fp is None else lazy_fp
        self.fp_owner: CPU | None = None
        #: fault-injection seam for the LazyFP leak oracle: when armed,
        #: a non-owner thread's quantum starts with the previous
        #: owner's XMM bank visible — the stale physical registers a
        #: *skipped* ownership switch would leak — and the switch
        #: bookkeeping itself is skipped.
        self.fp_skip_switch = False
        #: last thread a quantum was dispatched to (eager-spill and
        #: save-elision accounting both key on actual context switches).
        self._fp_prev_dispatch: CPU | None = None
        self._install_thread_api()

    @property
    def main(self) -> CPU:
        return self.threads[0]

    @property
    def kernel(self):
        return self.main.kernel

    @kernel.setter
    def kernel(self, kernel) -> None:
        for t in self.threads:
            t.kernel = kernel

    # -------------------------------------------------------------- spawn
    def spawn(self, entry: int, arg: int = 0) -> int:
        """clone()-alike: a new thread context sharing the address
        space, starting at ``entry`` with ``arg`` in rdi.

        The thread core is built through :meth:`CPU._init_core` — the
        same path ``CPU.__init__`` uses — so every per-core field
        (including the uop pipeline's) exists on spawned threads; only
        memory, stdout, kernel and FP mode are then rebound to the
        process-shared state.
        """
        thread = CPU.__new__(CPU)
        thread._init_core(
            self.program,
            self.costs,
            self.max_instructions,
            uops=self.main.uops_enabled,
            chain=self.main.chain_enabled,
            trace=self.main.trace_enabled,
        )
        thread.trace_stabilize_threshold = self.main.trace_stabilize_threshold
        thread.mem = self.mem                      # shared address space
        thread.output = self.main.output           # shared stdout
        thread.kernel = self.main.kernel
        thread.fp_disabled = self.main.fp_disabled
        thread._sb_cache = self.sb_cache           # shared block cache
        thread.process = self

        rsp = self._next_stack - 64
        self._next_stack -= THREAD_STACK_STRIDE
        thread.regs.write_gpr(GPR_IDS["rsp"], rsp)
        self.mem.write_u64(rsp, RETURN_SENTINEL)
        thread.regs.rip = entry
        thread.regs.write_gpr(RDI, arg)
        thread.tid = len(self.threads)
        self.threads.append(thread)
        for hook in self.on_thread_spawn:
            hook(self, thread)
        return thread.tid

    # ---------------------------------------------------------------- run
    def alive(self) -> list[CPU]:
        out = []
        for t in self.threads:
            if t.halted:
                continue
            awaited = self._joins.get(t.tid)
            if awaited is not None:
                if self.threads[awaited].halted:
                    del self._joins[t.tid]  # join satisfied
                    t.blocked = False
                    self.join_log.append((t.tid, awaited))
                else:
                    continue                # still blocked
            out.append(t)
        return out

    def run(self, quantum: int = 64, max_steps: int | None = None) -> None:
        """Round-robin scheduling until every thread halts.

        Each scheduler quantum is one batched :meth:`CPU.run_quantum`
        dispatch: with the uop pipeline enabled the whole quantum runs
        as superblock dispatches inside the engine; with it disabled
        (``FPVM_UOPS=0`` / ``CPU(uops=False)``) the dispatch degrades
        to the seed's single-step loop.  Either way the step accounting
        is identical to ``quantum × thread.step()``, so batched and
        step-wise scheduling are bit-identical in every observable.
        """
        limit = max_steps if max_steps is not None else self.max_instructions
        sched = self.sched
        sched.quantum = quantum
        lazy = self.lazy_fp
        steps = 0
        while True:
            runnable = self.alive()
            if not runnable:
                if all(t.halted for t in self.threads):
                    return
                raise DeadlockError("deadlock: all live threads blocked in join")
            for thread in runnable:
                switched_in = thread is not self._fp_prev_dispatch
                if lazy:
                    if (self.fp_skip_switch and self.fp_owner is not None
                            and thread is not self.fp_owner):
                        # Armed leak seam: the skipped switch leaves the
                        # previous owner's state in the physical bank.
                        thread.regs.xmm = [
                            lanes[:] for lanes in self.fp_owner.regs.xmm]
                elif switched_in:
                    self._fp_eager_switch(thread)
                self._fp_prev_dispatch = thread
                retired = thread.run_quantum(min(quantum, limit - steps))
                sched.record(thread.tid, retired)
                if lazy:
                    touched = thread.fp_quantum_touched
                    thread.fp_quantum_touched = False
                    if touched and thread is not self.fp_owner:
                        if self.fp_skip_switch:
                            # Armed seam: ownership bookkeeping happens
                            # but the state swap silently doesn't — the
                            # LazyFP bug class the leak oracle must catch.
                            self.fp_owner = thread
                        else:
                            self._fp_nm_switch(thread)
                    elif switched_in:
                        sched.fp_saves_elided += 1
                steps += retired
                if steps >= limit:
                    raise StepLimitError(f"process exceeded {limit} steps")

    # ------------------------------------------------------ lazy FP (§3.1)
    def _fp_nm_switch(self, thread: CPU) -> None:
        """Modeled #NM-style ownership switch: the incoming thread's
        first FP touch this quantum found the unit owned by another
        thread.  Spill only the outgoing owner's *dirty* lanes, reload
        only the lanes ever spilled for the incoming one, and charge
        the per-lane costs — the whole point of the lazy discipline.

        Thread register banks are private in this simulation, so the
        spill/reload below is the modeled *host-side* work (the part
        eager mode pays on every context switch); the live bank stays
        authoritative throughout — which also keeps GC pointer updates
        into parked threads' registers intact."""
        costs = self.costs
        sched = self.sched
        prev = self.fp_owner
        lanes_saved = 0
        if prev is not None:
            dirty = prev.regs.fp_dirty
            lanes_saved = dirty.bit_count()
            if lanes_saved:
                save = prev._fp_save
                if save is None:
                    save = prev._fp_save = {}
                regs_xmm = prev.regs.xmm
                m = dirty
                while m:
                    bit = m & -m
                    idx = bit.bit_length() - 1
                    save[idx] = regs_xmm[idx >> 1][idx & 1]
                    m ^= bit
                prev.regs.fp_live |= dirty
                prev.regs.fp_dirty = 0
        live = thread.regs.fp_live
        lanes_restored = live.bit_count()
        if lanes_restored and thread._fp_save:
            # reload traffic for previously spilled lanes (the values
            # already match the live bank — private banks never drift).
            _ = list(thread._fp_save.values())
        cost = (costs.fp_nm_switch
                + lanes_saved * costs.fp_lane_save
                + lanes_restored * costs.fp_lane_restore)
        thread.cycles += cost
        thread.work_cycles += cost
        sched.fp_switches += 1
        sched.fp_lanes_saved += lanes_saved
        sched.fp_lanes_restored += lanes_restored
        self.fp_owner = thread

    def _fp_eager_switch(self, thread: CPU) -> None:
        """Eager baseline (FPVM_LAZY_FP=0): every context switch spills
        the outgoing thread's whole XMM bank and reloads the incoming
        one's, FP user or not — the host-side copy work lazy mode
        elides."""
        prev = self._fp_prev_dispatch
        if prev is not None:
            prev._fp_save = [lanes[:] for lanes in prev.regs.xmm]
        save = thread._fp_save
        _ = [row[:] for row in (save if save is not None else thread.regs.xmm)]
        cost = self.costs.fp_full_switch
        thread.cycles += cost
        thread.work_cycles += cost
        self.sched.fp_eager_switches += 1

    @property
    def total_cycles(self) -> int:
        """Aggregate CPU time across threads (one simulated core)."""
        return sum(t.cycles for t in self.threads)

    # ----------------------------------------------------------- host API
    def _install_thread_api(self) -> None:
        """The host functions dispatch through ``cpu.process`` (set per
        thread), not a closure over this Process — so a *copied*
        program run elsewhere (e.g. the §5.1 profiling pass) spawns
        into its own process, never into this one."""
        program = self.program
        if "thread_create" in program.symbols:
            return  # already installed (e.g. program reuse)
        for spec in THREAD_API:
            program.register_host_function(
                HostFunction(spec.name, spec.fn, cost=spec.cost)
            )


def _owning_process(cpu) -> "Process":
    if cpu.process is None:
        raise RuntimeError(
            "thread API used by a CPU that is not part of a Process"
        )
    return cpu.process


def _thread_create(cpu) -> None:
    proc = _owning_process(cpu)
    entry = cpu.regs.gpr[RDI]
    arg = cpu.regs.gpr[RSI]
    tid = proc.spawn(entry, arg)
    cpu.regs.write_gpr(RAX, tid)


def _thread_join(cpu) -> None:
    proc = _owning_process(cpu)
    tid = cpu.regs.gpr[RDI]
    if not 0 <= tid < len(proc.threads):
        raise RuntimeError(f"join of unknown thread {tid}")
    if not proc.threads[tid].halted:
        proc._joins[cpu.tid] = tid
        cpu.blocked = True
    cpu.regs.write_gpr(RAX, 0)


@dataclass(frozen=True)
class ThreadHostFn:
    """Spec for one pthread-flavoured host function — single source of
    truth for registration (:meth:`Process._install_thread_api`) and the
    generated ISA reference (:mod:`repro.machine.isadoc`)."""

    name: str
    fn: object
    cost: int
    signature: str
    description: str


THREAD_API: tuple[ThreadHostFn, ...] = (
    ThreadHostFn(
        "thread_create",
        _thread_create,
        450,
        "rdi=entry, rsi=arg → rax=tid",
        "pthread_create-alike: spawns a thread CPU sharing the address "
        "space, starting at `entry` with `arg` in rdi on a fresh 64 KiB "
        "stack; fires `Process.on_thread_spawn` hooks (where FPVM "
        "attaches per-thread state).",
    ),
    ThreadHostFn(
        "thread_join",
        _thread_join,
        120,
        "rdi=tid → rax=0",
        "pthread_join-alike: blocks the calling thread until thread "
        "`tid` halts (no-op if it already has); the scheduler parks the "
        "caller and wakes it when the join is satisfied.",
    ),
)


def fork_process(parent: Process) -> Process:
    """fork(): a new process with a copy-on-write-free deep copy of the
    parent's memory image and a single thread cloned from the caller.
    FPVM's constructors re-run via the returned process's spawn hooks
    (the caller re-attaches, as the real LD_PRELOAD constructor does).
    """
    # The child gets its *own* SuperblockCache: it executes a copied
    # Program whose patch state diverges from the parent's.
    child = Process(
        parent.program.copy(),
        parent.costs,
        parent.max_instructions,
        uops=parent.main.uops_enabled,
        chain=parent.main.chain_enabled,
        trace=parent.main.trace_enabled,
        lazy_fp=parent.lazy_fp,
    )
    child.mem.clone_pages(parent.mem)
    # Post-fork threads must not collide with stacks carved pre-fork.
    child._next_stack = parent._next_stack
    child.main.regs.restore(parent.main.regs.snapshot())
    # FP ownership travels with the forking thread: if the caller owned
    # the unit, its clone owns it in the child (dirty/live lane metadata
    # already came across inside the register snapshot).
    if parent.fp_owner is parent.main:
        child.fp_owner = child.main
    return child
