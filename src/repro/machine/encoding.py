"""Binary encoding of the simulated ISA.

FPVM pays a real decode cost on a decode-cache miss (the paper uses
Capstone; we use :mod:`repro.machine.decoder` over these bytes).  The
encoding is deliberately byte-oriented and variable-length so that
instructions occupy distinct, realistic address ranges.

Layout per instruction::

    +0  opcode id        (1 byte)
    +1  operand count    (1 byte)
    ... operands, each:  tag byte + payload

    tag 0: GPR      -> reg id (1)
    tag 1: XMM      -> reg id (1)
    tag 2: imm64    -> value  (8, little endian, two's complement)
    tag 3: memory   -> flags(1) base(1) index(1) scale(1) size(1) disp(8)
                       flags: bit0 base present, bit1 index present,
                              bit2 rip-relative
    tag 4: label    -> absolute target address (8)
"""

from __future__ import annotations

import struct

from repro.machine.isa import (
    GPR_NAMES,
    OPCODE_BY_ID,
    OPCODE_IDS,
    Imm,
    Instruction,
    Label,
    Mem,
    Reg,
    Xmm,
)

_I64 = struct.Struct("<q")

TAG_REG = 0
TAG_XMM = 1
TAG_IMM = 2
TAG_MEM = 3
TAG_LABEL = 4


class EncodingError(Exception):
    """Malformed instruction or byte stream."""


def encode_instruction(instr: Instruction) -> bytes:
    out = bytearray()
    try:
        out.append(OPCODE_IDS[instr.mnemonic])
    except KeyError:
        raise EncodingError(f"unknown mnemonic {instr.mnemonic!r}") from None
    out.append(len(instr.operands))
    for op in instr.operands:
        if isinstance(op, Reg):
            out.append(TAG_REG)
            out.append(op.id)
        elif isinstance(op, Xmm):
            out.append(TAG_XMM)
            out.append(op.id)
        elif isinstance(op, Imm):
            out.append(TAG_IMM)
            out += _I64.pack(_wrap_s64(op.value))
        elif isinstance(op, Mem):
            out.append(TAG_MEM)
            flags = 0
            if op.base is not None:
                flags |= 1
            if op.index is not None:
                flags |= 2
            if op.rip_label is not None:
                flags |= 4
            out.append(flags)
            out.append(GPR_NAMES.index(op.base) if op.base else 0)
            out.append(GPR_NAMES.index(op.index) if op.index else 0)
            out.append(op.scale)
            out.append(op.size)
            out += _I64.pack(_wrap_s64(op.disp))
        elif isinstance(op, Label):
            # addr None marks an *external* symbol, bound dynamically at
            # call time through the symbol table (the PLT model) — that
            # is what makes LD_PRELOAD-style interposition possible.
            out.append(TAG_LABEL)
            out += _I64.pack(-1 if op.addr is None else _wrap_s64(op.addr))
        else:
            raise EncodingError(f"unencodable operand {op!r}")
    return bytes(out)


def _wrap_s64(value: int) -> int:
    value &= 0xFFFF_FFFF_FFFF_FFFF
    return value - (1 << 64) if value >= (1 << 63) else value


def encoded_length(raw: bytes, offset: int = 0) -> int:
    """Length in bytes of the instruction starting at ``offset``."""
    pos = offset + 2
    if offset + 2 > len(raw):
        raise EncodingError("truncated instruction header")
    count = raw[offset + 1]
    for _ in range(count):
        if pos >= len(raw):
            raise EncodingError("truncated operand list")
        tag = raw[pos]
        pos += 1
        if tag in (TAG_REG, TAG_XMM):
            pos += 1
        elif tag in (TAG_IMM, TAG_LABEL):
            pos += 8
        elif tag == TAG_MEM:
            pos += 13
        else:
            raise EncodingError(f"bad operand tag {tag}")
    return pos - offset


__all__ = [
    "encode_instruction",
    "encoded_length",
    "EncodingError",
    "TAG_REG",
    "TAG_XMM",
    "TAG_IMM",
    "TAG_MEM",
    "TAG_LABEL",
    "OPCODE_BY_ID",
]
