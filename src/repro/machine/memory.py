"""Sparse paged byte-addressable memory.

Pages are allocated lazily on first touch.  Page permissions exist so
the conservative GC can enumerate *writable* pages exactly the way
FPVM's collector scans `/proc/self/maps` (§2.5), and so the magic page
(§5.2) can be mapped read-only at a well-known address.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

PAGE_SIZE = 4096
PAGE_SHIFT = 12

PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4

_U64 = struct.Struct("<Q")


class MemoryFault(Exception):
    """Access to unmapped memory or a permission violation."""


@dataclass
class _Page:
    data: bytearray
    prot: int


class Memory:
    """Lazily-populated sparse memory.

    ``auto_map`` controls whether first-touch allocates a fresh RW page
    (convenient for stacks and BSS) or faults.  The simulator keeps
    auto-mapping on; analyses that want strictness can disable it.
    """

    def __init__(self, auto_map: bool = True) -> None:
        self._pages: dict[int, _Page] = {}
        self.auto_map = auto_map
        #: observers for the PIN-like profiler: fn(addr, size, kind)
        #: with kind in {"fp_store", "int_store", "fp_load", "int_load"}.
        self.observers: list = []

    # ------------------------------------------------------------- pages
    def map_page(self, addr: int, prot: int = PROT_READ | PROT_WRITE) -> None:
        """Map the page containing ``addr`` (idempotent; updates prot)."""
        pno = addr >> PAGE_SHIFT
        page = self._pages.get(pno)
        if page is None:
            self._pages[pno] = _Page(bytearray(PAGE_SIZE), prot)
        else:
            page.prot = prot

    def protect(self, addr: int, prot: int) -> None:
        pno = addr >> PAGE_SHIFT
        if pno not in self._pages:
            raise MemoryFault(f"mprotect of unmapped page {pno:#x}")
        self._pages[pno].prot = prot

    def is_mapped(self, addr: int) -> bool:
        return (addr >> PAGE_SHIFT) in self._pages

    def writable_pages(self) -> list[int]:
        """Base addresses of all writable pages (the GC root scan set)."""
        return sorted(
            pno << PAGE_SHIFT
            for pno, page in self._pages.items()
            if page.prot & PROT_WRITE
        )

    def page_bytes(self, page_addr: int) -> bytes:
        page = self._pages.get(page_addr >> PAGE_SHIFT)
        if page is None:
            raise MemoryFault(f"unmapped page {page_addr:#x}")
        return bytes(page.data)

    def mapped_page_count(self) -> int:
        return len(self._pages)

    def clone_pages(self, source: "Memory") -> None:
        """Replace this memory's contents with a deep copy of ``source``'s
        pages (fork semantics: same addresses, same protections, fully
        independent byte storage).

        Mutates ``self._pages`` in place rather than rebinding it —
        the uop pipeline's memory closures capture the page dict by
        reference, so a rebind would silently detach them.
        """
        self._pages.clear()
        for pno, page in source._pages.items():
            self._pages[pno] = _Page(bytearray(page.data), page.prot)
        self.auto_map = source.auto_map

    # ------------------------------------------------------------ access
    def _page_for(self, addr: int, write: bool) -> _Page:
        pno = addr >> PAGE_SHIFT
        page = self._pages.get(pno)
        if page is None:
            if not self.auto_map:
                raise MemoryFault(f"access to unmapped address {addr:#x}")
            page = _Page(bytearray(PAGE_SIZE), PROT_READ | PROT_WRITE)
            self._pages[pno] = page
        if write and not (page.prot & PROT_WRITE):
            raise MemoryFault(f"write to read-only address {addr:#x}")
        if not write and not (page.prot & PROT_READ):
            raise MemoryFault(f"read of unreadable address {addr:#x}")
        return page

    def read_bytes(self, addr: int, size: int) -> bytes:
        out = bytearray()
        while size > 0:
            page = self._page_for(addr, write=False)
            off = addr & (PAGE_SIZE - 1)
            chunk = min(size, PAGE_SIZE - off)
            out += page.data[off : off + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        offset = 0
        size = len(data)
        while offset < size:
            page = self._page_for(addr + offset, write=True)
            off = (addr + offset) & (PAGE_SIZE - 1)
            chunk = min(size - offset, PAGE_SIZE - off)
            page.data[off : off + chunk] = data[offset : offset + chunk]
            offset += chunk

    def read_u64(self, addr: int) -> int:
        return _U64.unpack(self.read_bytes(addr, 8))[0]

    def write_u64(self, addr: int, value: int) -> None:
        self.write_bytes(addr, _U64.pack(value & 0xFFFF_FFFF_FFFF_FFFF))

    def read_uint(self, addr: int, size: int) -> int:
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_uint(self, addr: int, value: int, size: int) -> None:
        self.write_bytes(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def read_cstring(self, addr: int, limit: int = 4096) -> str:
        out = bytearray()
        for i in range(limit):
            b = self.read_bytes(addr + i, 1)[0]
            if b == 0:
                break
            out.append(b)
        return out.decode("utf-8", errors="replace")

    # -------------------------------------------------- observed access
    def observed_load(self, addr: int, size: int, fp: bool) -> int:
        value = self.read_uint(addr, size)
        if self.observers:
            kind = "fp_load" if fp else "int_load"
            for obs in self.observers:
                obs(addr, size, kind, value)
        return value

    def observed_store(self, addr: int, value: int, size: int, fp: bool) -> None:
        self.write_uint(addr, value, size)
        if self.observers:
            kind = "fp_store" if fp else "int_store"
            for obs in self.observers:
                obs(addr, size, kind, value)
