"""Sparse paged byte-addressable memory.

Pages are allocated lazily on first touch.  Page permissions exist so
the conservative GC can enumerate *writable* pages exactly the way
FPVM's collector scans `/proc/self/maps` (§2.5), and so the magic page
(§5.2) can be mapped read-only at a well-known address.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

PAGE_SIZE = 4096
PAGE_SHIFT = 12

PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4

_U64 = struct.Struct("<Q")


class MemoryFault(Exception):
    """Access to unmapped memory or a permission violation."""


@dataclass
class _Page:
    data: bytearray
    prot: int


class Memory:
    """Lazily-populated sparse memory.

    ``auto_map`` controls whether first-touch allocates a fresh RW page
    (convenient for stacks and BSS) or faults.  The simulator keeps
    auto-mapping on; analyses that want strictness can disable it.

    Cloned memories (:meth:`clone_pages`) share pages copy-on-write:
    shared frozen pages live in ``_cow`` (never in ``_pages``), so the
    uop pipeline's inlined fast paths — which index ``_pages``
    directly — miss on them and fall back to these methods, where the
    first write materializes a private copy.  ``cow_faults`` counts
    those materializations.
    """

    def __init__(self, auto_map: bool = True) -> None:
        self._pages: dict[int, _Page] = {}
        #: pno -> frozen page shared with clone relatives.  Entries are
        #: immutable by contract: every sharer copies before writing.
        self._cow: dict[int, _Page] = {}
        #: pages privately materialized by a write to a shared page.
        self.cow_faults = 0
        self.auto_map = auto_map
        #: the CodeView backing the guest text image (set by the CPU at
        #: image load).  DATA-backed text never changes after load, so
        #: the binding costs nothing on the access paths.
        self._code_view = None
        #: observers for the PIN-like profiler: fn(addr, size, kind)
        #: with kind in {"fp_store", "int_store", "fp_load", "int_load"}.
        self.observers: list = []

    # ------------------------------------------------------------- pages
    def _materialize(self, pno: int) -> _Page:
        """Replace the shared ``_cow`` page ``pno`` with a private deep
        copy in ``_pages`` (the copy-on-write fault path).  The frozen
        original stays behind for the other sharers."""
        shared = self._cow.pop(pno)
        page = _Page(bytearray(shared.data), shared.prot)
        self._pages[pno] = page
        return page

    def map_page(self, addr: int, prot: int = PROT_READ | PROT_WRITE) -> None:
        """Map the page containing ``addr`` (idempotent; updates prot)."""
        pno = addr >> PAGE_SHIFT
        page = self._pages.get(pno)
        if page is None:
            if pno in self._cow:
                page = self._materialize(pno)
                page.prot = prot
            else:
                self._pages[pno] = _Page(bytearray(PAGE_SIZE), prot)
        else:
            page.prot = prot

    def protect(self, addr: int, prot: int) -> None:
        pno = addr >> PAGE_SHIFT
        if pno in self._pages:
            self._pages[pno].prot = prot
        elif pno in self._cow:
            # protection is per-sharer state; a shared frozen page must
            # go private before its prot can diverge.
            self._materialize(pno).prot = prot
        else:
            raise MemoryFault(f"mprotect of unmapped page {pno:#x}")

    def is_mapped(self, addr: int) -> bool:
        pno = addr >> PAGE_SHIFT
        return pno in self._pages or pno in self._cow

    def writable_pages(self) -> list[int]:
        """Base addresses of all writable pages (the GC root scan set).
        Shared COW pages count: they are logically writable, the write
        just materializes first."""
        out = [
            pno << PAGE_SHIFT
            for pno, page in self._pages.items()
            if page.prot & PROT_WRITE
        ]
        out += [
            pno << PAGE_SHIFT
            for pno, page in self._cow.items()
            if page.prot & PROT_WRITE
        ]
        return sorted(out)

    def page_bytes(self, page_addr: int) -> bytes:
        pno = page_addr >> PAGE_SHIFT
        page = self._pages.get(pno) or self._cow.get(pno)
        if page is None:
            raise MemoryFault(f"unmapped page {page_addr:#x}")
        return bytes(page.data)

    def mapped_page_count(self) -> int:
        return len(self._pages) + len(self._cow)

    def cow_page_count(self) -> int:
        """Pages still shared with clone relatives (not yet written)."""
        return len(self._cow)

    def clone_pages(self, source: "Memory", cow: bool = True) -> None:
        """Replace this memory's contents with a copy of ``source``'s
        pages (fork semantics: same addresses, same protections, and —
        from the guest's point of view — fully independent storage).

        With ``cow=True`` (the default) the copy is lazy: every page of
        ``source`` is demoted to a frozen shared page referenced by both
        memories, and either side's first *write* to a page materializes
        a private copy (``cow_faults`` counts them).  Isolation is
        symmetric — a store by the child is never visible to the parent
        or to sibling clones, and vice versa — because nobody ever
        writes a frozen page.  ``cow=False`` forces the old eager deep
        copy.

        Mutates ``self._pages`` in place rather than rebinding it —
        the uop pipeline's memory closures capture the page dict by
        reference, so a rebind would silently detach them.
        """
        self._pages.clear()
        self._cow.clear()
        if cow:
            # Demote the source's private pages to the frozen pool so
            # the source itself also faults before writing them (its
            # fast-path closures miss on ``_pages`` and fall back here).
            for pno, page in list(source._pages.items()):
                source._cow[pno] = page
            source._pages.clear()
            self._cow.update(source._cow)
        else:
            for pno, page in source._pages.items():
                self._pages[pno] = _Page(bytearray(page.data), page.prot)
            for pno, page in source._cow.items():
                self._pages[pno] = _Page(bytearray(page.data), page.prot)
        self.auto_map = source.auto_map

    # -------------------------------------------------------- code view
    def bind_code_view(self, view) -> None:
        """Declare ``view`` as the backing store of the guest text image.

        With the default DATA view this is pure bookkeeping: pristine
        text never changes, so guest loads from ``TEXT_BASE`` keep
        returning original bytes no matter what gets patched, and COW
        ``clone_pages``/``digest()`` stay bit-identical across fleet
        guests with different live instrumentation.

        With a FETCH view (the ``FPVM_SHADOW_VIEW=0`` escape hatch) the
        memory registers a patch listener and eagerly re-syncs the
        affected byte on every patch-state change, so patches become
        guest-detectable — the behavior the shadow view exists to
        prevent, kept around so conformance tests can prove the split
        is load-bearing.
        """
        self._code_view = view
        if view.patches is view.program.patches and view.patches is not None:
            # FETCH-bound: keep the guest-visible image in sync.  The
            # DATA view exposes a detached empty patch table, so this
            # branch identifies FETCH without importing program.py.
            view.program.patch_listeners.append(self._sync_patch_site)

    def _sync_patch_site(self, addr: int) -> None:
        """Re-copy the (possibly marked) first byte of the instruction
        at ``addr`` from the bound FETCH view into the text page."""
        byte = self._code_view.bytes_at(addr, 1)
        if not byte:
            return
        pno = addr >> PAGE_SHIFT
        page = self._pages.get(pno)
        if page is None:
            if pno not in self._cow:
                return
            # host-side instrumentation write, not a guest COW fault —
            # materialize without touching ``cow_faults``.
            page = self._materialize(pno)
        page.data[addr & (PAGE_SIZE - 1)] = byte[0]

    def digest(self) -> str:
        """SHA-256 over every mapped page's (address, prot, contents) —
        the whole-address-space fingerprint the COW isolation tests
        compare.  Reads through shared pages without materializing."""
        import hashlib

        h = hashlib.sha256()
        pages = {**self._cow, **self._pages}
        for pno in sorted(pages):
            page = pages[pno]
            h.update(struct.pack("<QI", pno, page.prot))
            h.update(page.data)
        return h.hexdigest()

    # ------------------------------------------------------------ access
    def _page_for(self, addr: int, write: bool) -> _Page:
        pno = addr >> PAGE_SHIFT
        page = self._pages.get(pno)
        if page is None:
            page = self._cow.get(pno)
            if page is not None:
                # reads are served from the shared frozen page; the
                # first write takes a COW fault and goes private.
                if write:
                    if not (page.prot & PROT_WRITE):
                        raise MemoryFault(f"write to read-only address {addr:#x}")
                    page = self._materialize(pno)
                    self.cow_faults += 1
            else:
                if not self.auto_map:
                    raise MemoryFault(f"access to unmapped address {addr:#x}")
                page = _Page(bytearray(PAGE_SIZE), PROT_READ | PROT_WRITE)
                self._pages[pno] = page
        if write and not (page.prot & PROT_WRITE):
            raise MemoryFault(f"write to read-only address {addr:#x}")
        if not write and not (page.prot & PROT_READ):
            raise MemoryFault(f"read of unreadable address {addr:#x}")
        return page

    def read_bytes(self, addr: int, size: int) -> bytes:
        out = bytearray()
        while size > 0:
            page = self._page_for(addr, write=False)
            off = addr & (PAGE_SIZE - 1)
            chunk = min(size, PAGE_SIZE - off)
            out += page.data[off : off + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        offset = 0
        size = len(data)
        while offset < size:
            page = self._page_for(addr + offset, write=True)
            off = (addr + offset) & (PAGE_SIZE - 1)
            chunk = min(size - offset, PAGE_SIZE - off)
            page.data[off : off + chunk] = data[offset : offset + chunk]
            offset += chunk

    def read_u64(self, addr: int) -> int:
        return _U64.unpack(self.read_bytes(addr, 8))[0]

    def write_u64(self, addr: int, value: int) -> None:
        self.write_bytes(addr, _U64.pack(value & 0xFFFF_FFFF_FFFF_FFFF))

    def read_uint(self, addr: int, size: int) -> int:
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_uint(self, addr: int, value: int, size: int) -> None:
        self.write_bytes(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def read_cstring(self, addr: int, limit: int = 4096) -> str:
        out = bytearray()
        for i in range(limit):
            b = self.read_bytes(addr + i, 1)[0]
            if b == 0:
                break
            out.append(b)
        return out.decode("utf-8", errors="replace")

    # -------------------------------------------------- observed access
    def observed_load(self, addr: int, size: int, fp: bool) -> int:
        value = self.read_uint(addr, size)
        if self.observers:
            kind = "fp_load" if fp else "int_load"
            for obs in self.observers:
                obs(addr, size, kind, value)
        return value

    def observed_store(self, addr: int, value: int, size: int, fp: bool) -> None:
        self.write_uint(addr, value, size)
        if self.observers:
            kind = "fp_store" if fp else "int_store"
            for obs in self.observers:
                obs(addr, size, kind, value)
