"""Generate the ISA reference (docs/ISA.md) from the opcode table.

The table in :mod:`repro.machine.isa` is the single source of truth;
this renderer keeps the documentation honest by deriving it, including
each mnemonic's FPVM-emulator support status (the §4.2 supported /
ignored split).
"""

from __future__ import annotations

from repro.machine.isa import OPCODES, OpClass

_CLASS_TITLES = {
    OpClass.FP_ARITH: "Floating point arithmetic (raise #XF)",
    OpClass.FP_CVT: "Conversions (raise #XF)",
    OpClass.FP_BITWISE: "FP bitwise (no FP exceptions)",
    OpClass.FP_MOV: "XMM moves",
    OpClass.INT_MOV: "Integer moves / stack",
    OpClass.INT_ALU: "Integer ALU",
    OpClass.CONTROL: "Control flow",
    OpClass.SYS: "System",
}

_CLASS_ORDER = [
    OpClass.FP_ARITH, OpClass.FP_CVT, OpClass.FP_BITWISE, OpClass.FP_MOV,
    OpClass.INT_MOV, OpClass.INT_ALU, OpClass.CONTROL, OpClass.SYS,
]


def render_isa_reference() -> str:
    from repro.core.emulator import DEFAULT_SUPPORTED

    lines = [
        "# ISA reference",
        "",
        "Generated from `repro.machine.isa.OPCODES` by",
        "`repro.machine.isadoc` — regenerate with",
        "`python -c \"from repro.machine.isadoc import write_isa_reference;"
        " write_isa_reference()\"`.",
        "",
        "The **emulated** column is FPVM's §4.2 support split: supported",
        "mnemonics can appear inside emulated instruction sequences;",
        "unsupported ones terminate sequences and run natively.",
        "",
    ]
    for opclass in _CLASS_ORDER:
        members = sorted(
            (info for info in OPCODES.values() if info.opclass is opclass),
            key=lambda i: i.mnemonic,
        )
        if not members:
            continue
        lines.append(f"## {_CLASS_TITLES[opclass]}")
        lines.append("")
        lines.append("| mnemonic | operands | lanes | native cycles | emulated |")
        lines.append("|---|---|---|---|---|")
        for info in members:
            emulated = "yes" if info.mnemonic in DEFAULT_SUPPORTED else "no"
            lines.append(
                f"| `{info.mnemonic}` | {info.arity} | {info.lanes} "
                f"| {info.cost} | {emulated} |"
            )
        lines.append("")
    lines += _render_thread_api()
    supported = sum(1 for m in OPCODES if m in DEFAULT_SUPPORTED)
    lines.append(
        f"Totals: {len(OPCODES)} mnemonics, {supported} emulator-supported, "
        f"{len(OPCODES) - supported} sequence terminators."
    )
    return "\n".join(lines) + "\n"


def _render_thread_api() -> list[str]:
    """The pthread-flavoured host functions, derived from the same
    ``THREAD_API`` table :class:`repro.machine.process.Process`
    registers them from."""
    from repro.machine.process import THREAD_API

    lines = [
        "## Thread host functions (Process-scheduled programs only)",
        "",
        "Installed by `repro.machine.process.Process` (generated from",
        "its `THREAD_API` table); `call`-able like any host function.",
        "Programs using them must run under a `Process`, not a bare CPU.",
        "",
        "| function | signature | host cycles | behaviour |",
        "|---|---|---|---|",
    ]
    for spec in THREAD_API:
        lines.append(
            f"| `{spec.name}` | `{spec.signature}` | {spec.cost} "
            f"| {spec.description} |"
        )
    lines.append("")
    return lines


def write_isa_reference(path: str = "docs/ISA.md") -> str:
    import pathlib

    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    text = render_isa_reference()
    out.write_text(text)
    return str(out)
