"""Two-pass text assembler for the simulated ISA.

Syntax (Intel-flavoured, matching how the paper prints traces)::

    .data
    x:      .double 1.5, 2.5
    buf:    .space 800
    msg:    .asciz "result: "
    .text
    main:
        movsd  xmm0, [rip + x]
        mov    rcx, 100
    top:
        addsd  xmm0, [rip + x]
        dec    rcx
        jne    top
        call   print_f64
        hlt

Memory operands: ``[rax]``, ``[rax + 8]``, ``[rax + rcx*8]``,
``[rax + rcx*8 + 16]``, ``[rip + symbol]``, with an optional ``qword``
size prefix (the default).  ``; comment`` and ``# comment`` to EOL.
"""

from __future__ import annotations

import re
import struct

from repro.machine.isa import (
    GPR_IDS,
    OPCODES,
    XMM_IDS,
    Imm,
    Instruction,
    Label,
    Mem,
    Reg,
    Xmm,
)
from repro.machine.program import DATA_BASE, TEXT_BASE, Program


class AssemblerError(Exception):
    """Syntax or semantic error, annotated with the source line."""

    def __init__(self, message: str, line_no: int | None = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_MEM_RE = re.compile(r"^\[(.*)\]$")
_SIZE_PREFIXES = {"byte": 1, "word": 2, "dword": 4, "qword": 8, "xmmword": 16}


def assemble(source: str, text_base: int = TEXT_BASE, data_base: int = DATA_BASE) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    program = Program()
    program.text_base = text_base
    program.data_base = data_base

    # ---------------------------------------------------------- parse
    section = "text"
    data = bytearray()
    # (mnemonic, raw_operand_strings, line_no) in order, with a running
    # address assigned in the same pass using encoded sizes.
    pending: list[tuple[str, list[str], int, int]] = []  # +addr
    addr = text_base
    symbols: dict[str, int] = {}

    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line == ".data":
            section = "data"
            continue
        if line == ".text":
            section = "text"
            continue

        m = _LABEL_RE.match(line)
        if m:
            name, rest = m.group(1), m.group(2).strip()
            target = data_base + len(data) if section == "data" else addr
            if name in symbols:
                raise AssemblerError(f"duplicate label {name!r}", line_no)
            symbols[name] = target
            if not rest:
                continue
            line = rest

        if section == "data":
            _assemble_data(line, data, line_no)
            continue

        mnemonic, operand_strs = _split_instruction(line, line_no)
        size = _instruction_size(mnemonic, operand_strs, line_no)
        pending.append((mnemonic, operand_strs, line_no, addr))
        addr += size

    # ------------------------------------------------------- resolve
    program.symbols.update(symbols)
    for mnemonic, operand_strs, line_no, iaddr in pending:
        operands = [
            _parse_operand(s, symbols, mnemonic, line_no) for s in operand_strs
        ]
        info = OPCODES[mnemonic]
        if len(operands) != info.arity:
            raise AssemblerError(
                f"{mnemonic} expects {info.arity} operands, got {len(operands)}",
                line_no,
            )
        instr = Instruction(mnemonic, tuple(operands), addr=iaddr)
        program.add_instruction(instr)
        program.lines[iaddr] = line_no

    program.data = bytes(data)
    program.finalize_text()
    if "main" in symbols:
        program.entry = symbols["main"]
    elif program.instructions:
        program.entry = program.instructions[0].addr
    return program


def _strip_comment(line: str) -> str:
    out = []
    in_str = False
    for ch in line:
        if ch == '"':
            in_str = not in_str
        if not in_str and ch in ";#":
            break
        out.append(ch)
    return "".join(out)


def _assemble_data(line: str, data: bytearray, line_no: int) -> None:
    parts = line.split(None, 1)
    directive = parts[0]
    arg = parts[1] if len(parts) > 1 else ""
    if directive == ".double":
        for tok in _split_args(arg):
            try:
                data.extend(struct.pack("<d", float(tok)))
            except ValueError:
                raise AssemblerError(f"bad double literal {tok!r}", line_no) from None
    elif directive == ".quad":
        for tok in _split_args(arg):
            value = _parse_int(tok, line_no) & 0xFFFF_FFFF_FFFF_FFFF
            data.extend(struct.pack("<Q", value))
    elif directive == ".space":
        n = _parse_int(arg.strip(), line_no)
        data.extend(b"\x00" * n)
    elif directive == ".asciz":
        m = re.match(r'^\s*"(.*)"\s*$', arg)
        if not m:
            raise AssemblerError(".asciz needs a quoted string", line_no)
        data.extend(m.group(1).encode("utf-8").decode("unicode_escape").encode("latin-1"))
        data.append(0)
    elif directive == ".align":
        n = _parse_int(arg.strip(), line_no)
        while len(data) % n:
            data.append(0)
    else:
        raise AssemblerError(f"unknown data directive {directive!r}", line_no)


def _split_instruction(line: str, line_no: int) -> tuple[str, list[str]]:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    if mnemonic not in OPCODES:
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no)
    operand_strs = _split_args(parts[1]) if len(parts) > 1 else []
    return mnemonic, operand_strs


def _split_args(arg: str) -> list[str]:
    """Split on commas not inside brackets."""
    out, depth, cur = [], 0, []
    for ch in arg:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return out


def _instruction_size(mnemonic: str, operand_strs: list[str], line_no: int) -> int:
    """Encoded size is computable without symbol resolution because
    operand kinds are syntactically evident."""
    size = 2
    for s in operand_strs:
        kind = _operand_kind(s, mnemonic)
        if kind in ("reg", "xmm"):
            size += 2
        elif kind in ("imm", "label"):
            size += 9
        elif kind == "mem":
            size += 14
        else:  # pragma: no cover - _operand_kind is total
            raise AssemblerError(f"bad operand {s!r}", line_no)
    return size


def _operand_kind(s: str, mnemonic: str) -> str:
    tok = s.strip().lower()
    for prefix in _SIZE_PREFIXES:
        if tok.startswith(prefix + " "):
            tok = tok[len(prefix) :].strip()
    if tok in GPR_IDS:
        return "reg"
    if tok in XMM_IDS:
        return "xmm"
    if tok.startswith("["):
        return "mem"
    if re.match(r"^-?(0x[0-9a-f]+|\d+)$", tok):
        return "imm"
    return "label"


def _parse_int(tok: str, line_no: int) -> int:
    try:
        return int(tok, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal {tok!r}", line_no) from None


def _parse_operand(s: str, symbols: dict[str, int], mnemonic: str, line_no: int):
    tok = s.strip()
    size = 8
    lowered = tok.lower()
    for prefix, psize in _SIZE_PREFIXES.items():
        if lowered.startswith(prefix + " "):
            size = psize
            tok = tok[len(prefix) :].strip()
            lowered = tok.lower()
            break

    if lowered in GPR_IDS:
        return Reg(lowered)
    if lowered in XMM_IDS:
        return Xmm(lowered)

    m = _MEM_RE.match(tok)
    if m:
        return _parse_mem(m.group(1), symbols, size, line_no)

    if re.match(r"^-?(0x[0-9a-fA-F]+|\d+)$", tok):
        return Imm(_parse_int(tok, line_no))

    # A bare symbol: a branch/call target, or an address-of immediate
    # for data symbols used with mov/lea.
    if tok in symbols:
        if OPCODES[mnemonic].opclass.value == "control":
            return Label(tok, addr=symbols[tok])
        return Imm(symbols[tok])
    if OPCODES[mnemonic].opclass.value == "control":
        # Host functions are bound at load time by the runner; emit an
        # unresolved label that Program linking fixes up.
        return Label(tok, addr=None)
    raise AssemblerError(f"undefined symbol {tok!r}", line_no)


def _parse_mem(inner: str, symbols: dict[str, int], size: int, line_no: int) -> Mem:
    inner = inner.strip()
    # rip-relative: [rip + symbol] or [rip + symbol + disp]
    m = re.match(r"^rip\s*\+\s*([A-Za-z_.$][\w.$]*)\s*(?:\+\s*(-?\w+))?$", inner)
    if m:
        sym = m.group(1)
        if sym not in symbols:
            raise AssemblerError(f"undefined data symbol {sym!r}", line_no)
        disp = symbols[sym]
        if m.group(2):
            disp += _parse_int(m.group(2), line_no)
        return Mem(disp=disp, rip_label=sym, size=size)

    base = None
    index = None
    scale = 1
    disp = 0
    for term in _split_terms(inner):
        neg = term.startswith("-")
        body = term[1:].strip() if neg else term
        sm = re.match(r"^([a-z0-9]+)\s*\*\s*([1248])$", body)
        if sm and sm.group(1) in GPR_IDS:
            if index is not None:
                raise AssemblerError("two index terms in memory operand", line_no)
            index, scale = sm.group(1), int(sm.group(2))
        elif body in GPR_IDS:
            if base is None:
                base = body
            elif index is None:
                index = body
            else:
                raise AssemblerError("too many registers in memory operand", line_no)
        elif re.match(r"^(0x[0-9a-fA-F]+|\d+)$", body):
            disp += -_parse_int(body, line_no) if neg else _parse_int(body, line_no)
        elif body in symbols:
            disp += symbols[body]
        else:
            raise AssemblerError(f"bad memory term {term!r}", line_no)
    return Mem(base=base, index=index, scale=scale, disp=disp, size=size)


def _split_terms(inner: str) -> list[str]:
    """Split ``a + b - c`` into signed terms."""
    out = []
    cur = []
    for ch in inner:
        if ch == "+":
            if cur:
                out.append("".join(cur).strip())
            cur = []
        elif ch == "-":
            if cur:
                out.append("".join(cur).strip())
            cur = ["-"]
        else:
            cur.append(ch)
    if cur:
        out.append("".join(cur).strip())
    return [t.lower() for t in out if t]
