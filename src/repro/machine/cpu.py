"""The CPU interpreter.

Executes a :class:`~repro.machine.program.Program` with precise,
fault-style SSE floating point exceptions: when an FP instruction
raises a condition whose MXCSR mask bit is clear, the instruction does
*not* retire — the CPU delivers a #XF trap to the attached kernel and
leaves RIP at the faulting instruction, exactly the x64 behaviour FPVM
is built on (§2.3).

Breakpoint (#BP) traps come from patched ``int3`` pre-hooks (the
e9patch model of correctness instrumentation, §2.6) and magic-trap
pre-hooks invoke their trampoline entirely in user space (§5.2).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.fpu.ieee import FPFlags, FPResult, ieee_op
from repro.machine import hostfp
from repro.machine.costs import DEFAULT_COSTS, CostModel
from repro.machine.isa import (
    CONDITION_CODES,
    Imm,
    Instruction,
    Label,
    Mem,
    OpClass,
    Reg,
    Xmm,
)
from repro.machine.memory import PROT_EXEC, PROT_READ, PROT_WRITE, Memory, PAGE_SIZE
from repro.machine.program import PatchKind, Program, STACK_TOP, shadow_view_enabled
from repro.machine.registers import Flags, RegisterFile, rounding_mode, unmasked_status
from repro.machine.uops import chain_enabled_default, uops_enabled_default
from repro.machine.tracejit import trace_enabled_default

U64 = 0xFFFF_FFFF_FFFF_FFFF
#: Return address sentinel: a ``ret`` to this address halts the machine.
RETURN_SENTINEL = 0xDEAD_0000


class MachineError(Exception):
    """Simulator-level fault (bad jump, unhandled trap, runaway run)."""


class TrapKind(enum.Enum):
    XF = "#XF"  # SIMD floating point exception
    BP = "#BP"  # breakpoint (int3)


@dataclass
class Trap:
    kind: TrapKind
    addr: int                      # faulting instruction address
    instruction: Instruction | None
    fp_flags: FPFlags | None = None


def s64(v: int) -> int:
    v &= U64
    return v - (1 << 64) if v >= (1 << 63) else v


class CPU:
    """One simulated hardware thread."""

    def __init__(
        self,
        program: Program,
        costs: CostModel = DEFAULT_COSTS,
        max_instructions: int = 100_000_000,
        uops: bool | None = None,
        chain: bool | None = None,
        trace: bool | None = None,
    ):
        self._init_core(program, costs, max_instructions, uops=uops,
                        chain=chain, trace=trace)
        self.mem = Memory()
        self._load_image()

    def _init_core(
        self,
        program: Program,
        costs: CostModel = DEFAULT_COSTS,
        max_instructions: int = 100_000_000,
        uops: bool | None = None,
        chain: bool | None = None,
        trace: bool | None = None,
    ) -> None:
        """Initialise every per-core field *except* memory and the loaded
        image.  ``__init__`` and :meth:`repro.machine.process.Process.spawn`
        both route through here, so a field added for one construction
        path cannot silently be missing from the other (spawned thread
        CPUs share the process memory instead of loading a fresh image).
        """
        self.program = program
        self.costs = costs
        self.max_instructions = max_instructions
        #: thread id within a Process (0 for a standalone CPU).
        self.tid = 0
        #: owning Process, if any (thread-API host functions dispatch
        #: through this so profiling copies never spawn into the
        #: original process).
        self.process = None
        self.regs = RegisterFile()
        self.cycles = 0
        #: cycles the *guest* earned (retired instructions + host-library
        #: bodies).  Everything else in ``cycles`` is delivery/handler
        #: machinery, which the FPVM ledger accounts for category by
        #: category — so an attached run must satisfy
        #: ``cycles == work_cycles + ledger.total()`` exactly.
        self.work_cycles = 0
        self.instruction_count = 0
        self.retired_by_class: Counter = Counter()
        self.fp_trap_count = 0
        self.bp_trap_count = 0
        self.output: list[str] = []
        #: the attached kernel (None = bare metal; unmasked FP faults
        #: then raise MachineError).  Must expose deliver_trap(cpu, trap).
        self.kernel = None
        self.halted = False
        #: blocked in a synchronization call (thread_join); the process
        #: scheduler skips blocked threads until the condition clears.
        self.blocked = False
        #: model of "disabling the floating point hardware altogether"
        #: (§2.3): every FP-arith instruction faults unconditionally.
        self.fp_disabled = False
        #: lazy-FP (§3.1): set when any FP-class instruction retires in
        #: the current scheduler quantum.  The interpreter sets it per
        #: step in the FP handlers; the uop engine batch-sets it per
        #: superblock dispatch from the block's lowering-time summary.
        #: Consumed (and cleared) by Process.run at each quantum edge.
        self.fp_quantum_touched = False
        #: the thread's FP save area (host-side spill target): a dict
        #: of lane index -> value under the lazy discipline, a full
        #: bank copy under the eager one.  None until first spilled.
        self._fp_save = None
        #: one-shot patch suppression so a handler can single-step the
        #: patched instruction after demoting (paper §2.6).  Consumed by
        #: the next fetch dispatch regardless of RIP — a lingering flag
        #: could silently skip a later pre-hook at that address.
        self._suppress_patch_at: int | None = None
        #: the FETCH code view: patched instruction stream.  The front
        #: end fetches exclusively through this — never through raw
        #: text bytes, which belong to the DATA view backing memory.
        self._fetch_view = program.fetch_view
        #: run() through the pre-decoded micro-op pipeline (uops.py)
        #: instead of the single-step interpreter loop.  Defaults to the
        #: FPVM_UOPS environment knob; semantics are identical either
        #: way — the engine falls back to step() wherever it must.
        self.uops_enabled = uops_enabled_default() if uops is None else uops
        #: follow direct control edges between cached superblocks
        #: (cross-quantum chaining) instead of returning to the engine
        #: loop at every tail.  FPVM_CHAIN environment knob; only
        #: meaningful with ``uops_enabled``.
        self.chain_enabled = chain_enabled_default() if chain is None else chain
        #: fuse stable superblock chains into compiled trace closures
        #: (the trace-JIT tier, tracejit.py).  FPVM_TRACEJIT knob; only
        #: meaningful with ``chain_enabled``.
        self.trace_enabled = trace_enabled_default() if trace is None else trace
        #: consecutive identical laps of a block cycle before fusing it
        #: (tests tune this; None = FPVM_TRACE_THRESHOLD / default 3).
        self.trace_stabilize_threshold: int | None = None
        #: the SuperblockCache holding this core's blocks.  A Process
        #: installs its shared per-process cache here (one patch-epoch
        #: mirror for all threads) before the engine is created; left
        #: None, the engine creates a private one on first use.
        self._sb_cache = None
        self._uop_engine = None
        self._dispatch = self._build_dispatch()

    # --------------------------------------------------------------- setup
    def _load_image(self) -> None:
        prog = self.program
        # Text: read+exec, NOT writable => excluded from the GC page scan.
        # The image is backed by the DATA view (pristine bytes) so guest
        # loads from TEXT_BASE never observe instrumentation; the
        # FPVM_SHADOW_VIEW=0 escape hatch backs it by the FETCH view
        # instead, making patches guest-detectable.
        view = prog.data_view if shadow_view_enabled() else prog.fetch_view
        text = view.text_bytes()
        addr = prog.text_base
        end = prog.text_base + len(text)
        while addr < end:
            self.mem.map_page(addr, PROT_READ | PROT_EXEC)
            addr += PAGE_SIZE
        if text:
            # finalize needs writability while loading the image
            for pg in range(prog.text_base, end, PAGE_SIZE):
                self.mem.protect(pg, PROT_READ | PROT_WRITE)
            self.mem.write_bytes(prog.text_base, text)
            for pg in range(prog.text_base, end, PAGE_SIZE):
                self.mem.protect(pg, PROT_READ | PROT_EXEC)
        self.mem.bind_code_view(view)
        if prog.data:
            self.mem.write_bytes(prog.data_base, prog.data)
        self.regs.rip = prog.entry
        rsp = STACK_TOP - 64
        self.regs.write_gpr(7, rsp)  # rsp
        self.mem.write_u64(rsp, RETURN_SENTINEL)

    @classmethod
    def from_image(
        cls,
        program: Program,
        image: Memory,
        costs: CostModel = DEFAULT_COSTS,
        max_instructions: int = 100_000_000,
        uops: bool | None = None,
        chain: bool | None = None,
        trace: bool | None = None,
    ) -> "CPU":
        """A CPU whose memory is a copy-on-write clone of ``image`` — a
        pristine loaded address space built once per program (a fleet
        worker's template) — instead of re-running :meth:`_load_image`.
        Pages stay shared with the template until this guest's first
        write to each (``mem.cow_faults`` counts the copies), so N
        guests of one program share one set of read-only program pages.

        ``image`` must be the post-load, pre-run memory of a CPU built
        on the *same* ``program`` object; registers are re-derived from
        the program (entry RIP, reset stack) exactly as the loader sets
        them, so execution is bit-identical to a freshly loaded CPU.
        """
        cpu = cls.__new__(cls)
        cpu._init_core(program, costs, max_instructions, uops=uops,
                       chain=chain, trace=trace)
        cpu.mem = Memory()
        cpu.mem.clone_pages(image)
        cpu.mem.bind_code_view(
            program.data_view if shadow_view_enabled() else program.fetch_view
        )
        cpu.regs.rip = program.entry
        cpu.regs.write_gpr(7, STACK_TOP - 64)  # sentinel already in image
        return cpu

    # ------------------------------------------------------------- running
    def _engine(self):
        """The lazily-created micro-op engine for this core."""
        if self._uop_engine is None:
            from repro.machine.uops import UopEngine

            self._uop_engine = UopEngine(self)
        return self._uop_engine

    def run(self, max_steps: int | None = None) -> None:
        limit = max_steps if max_steps is not None else self.max_instructions
        if self.uops_enabled:
            self._engine().run(limit)
            return
        steps = 0
        while not self.halted:
            self.step()
            steps += 1
            if steps >= limit:
                raise MachineError(f"run exceeded {limit} steps (runaway?)")

    def run_quantum(self, budget: int) -> int:
        """Execute up to ``budget`` scheduler steps and return how many
        were taken.  One "step" here has exactly the semantics of one
        :meth:`step` call — a trap-delivering non-retiring step still
        counts — so a batched scheduler quantum is step-for-step
        identical to the seed ``quantum × step()`` loop.

        With uops enabled the quantum dispatches whole superblocks
        through :meth:`UopEngine.run_quantum`; otherwise it is the seed
        single-step loop.  Returns early (possibly 0) on halt or block.
        """
        if budget <= 0 or self.halted or self.blocked:
            return 0
        if self.uops_enabled:
            return self._engine().run_quantum(budget)
        steps = 0
        while steps < budget and not (self.halted or self.blocked):
            self.step()
            steps += 1
        return steps

    @property
    def uop_stats(self):
        """Host-side micro-op engine counters (None when the pipeline
        has not run on this CPU)."""
        return self._uop_engine.stats if self._uop_engine is not None else None

    def step(self) -> None:
        """One instruction through the explicit pipeline stages:
        fetch (patch pre-hooks + decode), dispatch, execute, retire."""
        if self.halted:
            return
        instr = self._fetch_stage()
        if instr is None:
            return  # int3 pre-hook delivered a #BP; nothing fetched
        handler = self._dispatch[instr.mnemonic]   # dispatch stage
        if handler(instr) is not False:            # execute stage
            self._retire(instr)

    def _fetch_stage(self) -> Instruction | None:
        """Run patch pre-hooks at RIP and decode the instruction there.

        Returns None when an ``int3`` pre-hook fired (the #BP trap was
        delivered; the instruction does not execute this step).  Magic
        pre-hooks run their trampoline in user space and fall through —
        the patched instruction executes natively in this same step.

        Fetch goes exclusively through the FETCH code view; the raw
        text bytes in memory belong to the DATA view and are never
        decoded.  The one-shot suppress flag set by
        :meth:`resume_at` is consumed by this dispatch *regardless* of
        RIP — a re-delivered trap that resumes somewhere else must not
        leave a live skip for a later pre-hook at the original address.
        """
        rip = self.regs.rip
        view = self._fetch_view
        suppress = self._suppress_patch_at
        if suppress is not None:
            self._suppress_patch_at = None
        patch = view.patches.get(rip)
        if patch is not None and suppress != rip:
            if patch.kind is PatchKind.INT3:
                self.bp_trap_count += 1
                self._deliver(Trap(TrapKind.BP, rip, view.by_addr.get(rip)))
                return None
            self.cycles += self.costs.magic_call + self.costs.magic_save_restore
            patch.trampoline(self, rip)

        instr = view.by_addr.get(rip)
        if instr is None:
            raise MachineError(f"execution fell into unmapped code at {rip:#x}")
        return instr

    def _retire(self, instr: Instruction) -> None:
        self.cycles += instr.info.cost
        self.work_cycles += instr.info.cost
        self.instruction_count += 1
        self.retired_by_class[instr.opclass] += 1

    def _deliver(self, trap: Trap) -> None:
        if self.kernel is None:
            raise MachineError(f"unhandled trap {trap.kind.value} at {trap.addr:#x}")
        self.kernel.deliver_trap(self, trap)

    def resume_at(self, addr: int, suppress_patch: bool = False) -> None:
        """Used by trap handlers: continue execution at ``addr``; with
        ``suppress_patch`` the pre-hook at that address is skipped once
        (single-step-over semantics)."""
        self.regs.rip = addr
        self._suppress_patch_at = addr if suppress_patch else None

    # ------------------------------------------------------ operand access
    def effective_address(self, mem: Mem) -> int:
        ea = mem.disp
        if mem.base is not None:
            ea += self.regs.gpr[_gpr_id(mem.base)]
        if mem.index is not None:
            ea += self.regs.gpr[_gpr_id(mem.index)] * mem.scale
        return ea & U64

    def read_u64_operand(self, op, fp: bool) -> int:
        """Read a 64-bit value from a GPR, XMM lane 0, imm or memory."""
        if isinstance(op, Reg):
            return self.regs.gpr[op.id]
        if isinstance(op, Xmm):
            return self.regs.xmm[op.id][0]
        if isinstance(op, Imm):
            return op.value & U64
        if isinstance(op, Mem):
            return self.mem.observed_load(self.effective_address(op), 8, fp)
        raise MachineError(f"cannot read operand {op!r}")

    def read_sized_operand(self, op, fp: bool) -> int:
        if isinstance(op, Mem) and op.size != 8:
            return self.mem.observed_load(self.effective_address(op), op.size, fp)
        return self.read_u64_operand(op, fp)

    def write_u64_operand(self, op, value: int, fp: bool) -> None:
        if isinstance(op, Reg):
            self.regs.write_gpr(op.id, value)
        elif isinstance(op, Xmm):
            self.regs.write_xmm_lane(op.id, 0, value)
        elif isinstance(op, Mem):
            self.mem.observed_store(self.effective_address(op), value, op.size, fp)
        else:
            raise MachineError(f"cannot write operand {op!r}")

    def read_xmm_or_mem128(self, op) -> tuple[int, int]:
        if isinstance(op, Xmm):
            return self.regs.read_xmm128(op.id)
        if isinstance(op, Mem):
            ea = self.effective_address(op)
            lo = self.mem.observed_load(ea, 8, True)
            hi = self.mem.observed_load(ea + 8, 8, True)
            return lo, hi
        raise MachineError(f"cannot read 128-bit operand {op!r}")

    def push(self, value: int) -> None:
        rsp = (self.regs.gpr[7] - 8) & U64
        self.regs.write_gpr(7, rsp)
        self.mem.write_u64(rsp, value)

    def pop(self) -> int:
        rsp = self.regs.gpr[7]
        value = self.mem.read_u64(rsp)
        self.regs.write_gpr(7, (rsp + 8) & U64)
        return value

    # ------------------------------------------------------------ dispatch
    def _build_dispatch(self):
        d = {}
        from repro.machine.isa import OPCODES

        for mn, info in OPCODES.items():
            if info.opclass in (OpClass.FP_ARITH, OpClass.FP_CVT):
                d[mn] = self._exec_fp
            elif info.opclass is OpClass.FP_BITWISE:
                d[mn] = self._exec_fp_bitwise
            elif info.opclass is OpClass.FP_MOV:
                d[mn] = self._exec_fp_mov
            elif info.opclass is OpClass.INT_MOV:
                d[mn] = self._exec_int_mov
            elif info.opclass is OpClass.INT_ALU:
                d[mn] = self._exec_int_alu
            elif info.opclass is OpClass.CONTROL:
                d[mn] = self._exec_control
            else:
                d[mn] = self._exec_sys
        return d

    # ------------------------------------------------- FP arith (trappable)
    def _exec_fp(self, instr: Instruction):
        """Returns False if the instruction faulted (did not retire)."""
        regs = self.regs
        # Lazy-FP: coarse per-step marking, FP opclasses only.  Marked
        # before the trap branches — a trapped instruction is emulated
        # into the same destination lanes by the handler this step.
        self.fp_quantum_touched = True
        regs.fp_dirty |= instr.xmm_writes()
        if self.fp_disabled:
            # FP hardware off: fault before any evaluation (#NM-style).
            self.fp_trap_count += 1
            self._deliver(Trap(TrapKind.XF, instr.addr, instr, FPFlags()))
            return False
        unmasked = unmasked_status(regs.mxcsr | 0x3F)  # which masks are clear
        if unmasked:
            results = self._evaluate_fp_exact(instr)
            flags = FPFlags()
            for r in results:
                flags = flags | r.flags
            if flags.as_mxcsr_status() & unmasked:
                self.fp_trap_count += 1
                self._deliver(Trap(TrapKind.XF, instr.addr, instr, flags))
                return False
            self._commit_fp(instr, [r.bits for r in results])
            regs.mxcsr |= flags.as_mxcsr_status()
            regs.rip = instr.addr + instr.size
            return True
        # Native: values only, no flag bookkeeping.  The numpy fast
        # path implements round-to-nearest only; a nondefault MXCSR.RC
        # routes through the exact oracle.
        if rounding_mode(regs.mxcsr) == "ne":
            values = self._evaluate_fp_native(instr)
        else:
            values = [r.bits for r in self._evaluate_fp_exact(instr)]
        self._commit_fp(instr, values)
        regs.rip = instr.addr + instr.size
        return True

    def _fp_sources(self, instr: Instruction) -> list[int]:
        """Per-lane (a, b) source bit patterns for the IEEE oracle,
        flattened as [lane0_a, lane0_b, lane1_a, lane1_b, ...]."""
        mn = instr.mnemonic
        info = instr.info
        ops = instr.operands
        if mn == "vfmadd213sd":
            return [
                self.regs.xmm[ops[1].id][0],              # src2 (multiplier)
                self.regs.xmm[ops[0].id][0],              # dst  (multiplicand)
                self.read_u64_operand(ops[2], fp=True),   # src3 (addend)
            ]
        if mn == "cvtsi2sd":
            return [self.read_u64_operand(ops[1], fp=False)]
        if mn in ("cvttsd2si", "cvtsd2si"):
            return [self.read_u64_operand(ops[1], fp=True)]
        if mn in ("sqrtsd",):
            return [self.read_u64_operand(ops[1], fp=True)]
        if mn == "sqrtpd":
            lo, hi = self.read_xmm_or_mem128(ops[1])
            return [lo, hi]
        if info.lanes == 2:
            dlo, dhi = self.regs.read_xmm128(ops[0].id)
            slo, shi = self.read_xmm_or_mem128(ops[1])
            return [dlo, slo, dhi, shi]
        # Scalar binary: dst lane0 op src64.
        a = self.regs.xmm[ops[0].id][0]
        b = self.read_u64_operand(ops[1], fp=True)
        return [a, b]

    def _evaluate_fp_exact(self, instr: Instruction) -> list[FPResult]:
        ieee = instr.info.ieee
        src = self._fp_sources(instr)
        mode = rounding_mode(self.regs.mxcsr)
        if instr.mnemonic == "vfmadd213sd":
            return [ieee_op("fma", src[0], src[1], src[2], mode=mode)]
        if instr.mnemonic in ("sqrtsd", "cvtsi2sd", "cvttsd2si", "cvtsd2si"):
            return [ieee_op(ieee, src[0], mode=mode)]
        if instr.mnemonic == "sqrtpd":
            return [ieee_op(ieee, src[0], mode=mode), ieee_op(ieee, src[1], mode=mode)]
        if instr.info.lanes == 2:
            return [ieee_op(ieee, src[0], src[1], mode=mode),
                    ieee_op(ieee, src[2], src[3], mode=mode)]
        return [ieee_op(ieee, src[0], src[1], mode=mode)]

    def _evaluate_fp_native(self, instr: Instruction) -> list[int]:
        ieee = instr.info.ieee
        src = self._fp_sources(instr)
        if instr.mnemonic == "vfmadd213sd":
            return [hostfp.native_fp("fma", src[0], src[1], src[2])]
        if instr.mnemonic in ("sqrtsd", "cvtsi2sd", "cvttsd2si", "cvtsd2si"):
            return [hostfp.native_fp(ieee, src[0])]
        if instr.mnemonic == "sqrtpd":
            return [hostfp.native_fp(ieee, src[0]), hostfp.native_fp(ieee, src[1])]
        if instr.info.lanes == 2:
            return [
                hostfp.native_fp(ieee, src[0], src[1]),
                hostfp.native_fp(ieee, src[2], src[3]),
            ]
        return [hostfp.native_fp(ieee, src[0], src[1])]

    def _commit_fp(self, instr: Instruction, values: list[int]) -> None:
        mn = instr.mnemonic
        ops = instr.operands
        regs = self.regs
        if mn in ("ucomisd", "comisd"):
            packed = values[0]
            f = regs.flags
            f.zf = bool(packed & 1)
            f.pf = bool(packed & 2)
            f.cf = bool(packed & 4)
            f.sf = False
            f.of = False
            return
        if mn in ("cvttsd2si", "cvtsd2si"):
            self.write_u64_operand(ops[0], values[0], fp=False)
            return
        if instr.info.lanes == 2:
            regs.write_xmm128(ops[0].id, values[0], values[1])
            return
        # Scalar result -> low lane, high lane preserved.
        regs.write_xmm_lane(ops[0].id, 0, values[0])

    # --------------------------------------------------------- FP bitwise
    def _exec_fp_bitwise(self, instr: Instruction):
        self.fp_quantum_touched = True
        self.regs.fp_dirty |= instr.xmm_writes()
        mn = instr.mnemonic
        ops = instr.operands
        dlo, dhi = self.regs.read_xmm128(ops[0].id)
        slo, shi = self.read_xmm_or_mem128(ops[1])
        if mn == "xorpd":
            lo, hi = dlo ^ slo, dhi ^ shi
        elif mn == "andpd":
            lo, hi = dlo & slo, dhi & shi
        elif mn == "orpd":
            lo, hi = dlo | slo, dhi | shi
        else:  # andnpd: dst = ~dst & src
            lo, hi = (~dlo & U64) & slo, (~dhi & U64) & shi
        self.regs.write_xmm128(ops[0].id, lo, hi)
        self.regs.rip = instr.addr + instr.size
        return True

    # ------------------------------------------------------------ FP moves
    def _exec_fp_mov(self, instr: Instruction):
        self.fp_quantum_touched = True
        self.regs.fp_dirty |= instr.xmm_writes()
        mn = instr.mnemonic
        regs = self.regs
        if mn == "shufpd":
            dst, src, imm = instr.operands
            dlo, dhi = regs.read_xmm128(dst.id)
            slo, shi = self.read_xmm_or_mem128(src)
            ctrl = imm.value
            regs.write_xmm128(
                dst.id,
                dhi if ctrl & 1 else dlo,
                shi if ctrl & 2 else slo,
            )
            regs.rip = instr.addr + instr.size
            return True
        dst, src = instr.operands
        if mn == "movsd":
            if isinstance(dst, Xmm) and isinstance(src, Xmm):
                regs.write_xmm_lane(dst.id, 0, regs.xmm[src.id][0])
            elif isinstance(dst, Xmm):
                regs.write_xmm128(dst.id, self.read_u64_operand(src, fp=True), 0)
            else:
                self.write_u64_operand(dst, regs.xmm[src.id][0], fp=True)
        elif mn in ("movapd", "movupd"):
            if isinstance(dst, Xmm):
                lo, hi = self.read_xmm_or_mem128(src)
                regs.write_xmm128(dst.id, lo, hi)
            else:
                lo, hi = regs.read_xmm128(src.id)
                ea = self.effective_address(dst)
                self.mem.observed_store(ea, lo, 8, True)
                self.mem.observed_store(ea + 8, hi, 8, True)
        elif mn == "movhpd":
            if isinstance(dst, Xmm):
                regs.write_xmm_lane(dst.id, 1, self.read_u64_operand(src, fp=True))
            else:
                self.write_u64_operand(dst, regs.xmm[src.id][1], fp=True)
        elif mn == "movlpd":
            if isinstance(dst, Xmm):
                regs.write_xmm_lane(dst.id, 0, self.read_u64_operand(src, fp=True))
            else:
                self.write_u64_operand(dst, regs.xmm[src.id][0], fp=True)
        elif mn == "movq":
            if isinstance(dst, Xmm):
                value = self.read_u64_operand(src, fp=isinstance(src, Mem))
                regs.write_xmm128(dst.id, value, 0)
            elif isinstance(src, Xmm):
                # The porous path: FP bits flow into the integer world.
                self.write_u64_operand(dst, regs.xmm[src.id][0],
                                       fp=isinstance(dst, Mem))
            else:
                raise MachineError("movq needs an XMM operand")
        elif mn == "movddup":
            lo = self.read_u64_operand(src, fp=True)
            regs.write_xmm128(dst.id, lo, lo)
        elif mn == "unpcklpd":
            slo, _ = self.read_xmm_or_mem128(src)
            regs.write_xmm_lane(dst.id, 1, slo)   # dst.hi = src.lo
        elif mn == "unpckhpd":
            dlo, dhi = regs.read_xmm128(dst.id)
            _, shi = self.read_xmm_or_mem128(src)
            regs.write_xmm128(dst.id, dhi, shi)   # dst = {dst.hi, src.hi}
        else:  # pragma: no cover
            raise MachineError(f"unimplemented FP move {mn}")
        regs.rip = instr.addr + instr.size
        return True

    # ------------------------------------------------------------ int moves
    def _exec_int_mov(self, instr: Instruction):
        mn = instr.mnemonic
        ops = instr.operands
        regs = self.regs
        if mn == "mov":
            dst, src = ops
            value = self.read_sized_operand(src, fp=False)
            if isinstance(dst, Mem) and dst.size != 8:
                self.mem.observed_store(self.effective_address(dst), value, dst.size, False)
            else:
                self.write_u64_operand(dst, value, fp=False)
        elif mn == "lea":
            dst, src = ops
            regs.write_gpr(dst.id, self.effective_address(src))
        elif mn == "push":
            self.push(self.read_u64_operand(ops[0], fp=False))
        elif mn == "pop":
            self.write_u64_operand(ops[0], self.pop(), fp=False)
        elif mn == "xchg":
            a, b = ops
            va = self.read_u64_operand(a, fp=False)
            vb = self.read_u64_operand(b, fp=False)
            self.write_u64_operand(a, vb, fp=False)
            self.write_u64_operand(b, va, fp=False)
        regs.rip = instr.addr + instr.size
        return True

    # -------------------------------------------------------------- int ALU
    def _exec_int_alu(self, instr: Instruction):
        mn = instr.mnemonic
        ops = instr.operands
        f = self.regs.flags
        if mn in ("add", "sub", "cmp"):
            a = self.read_u64_operand(ops[0], fp=False)
            b = self.read_u64_operand(ops[1], fp=False)
            if mn == "add":
                r = (a + b) & U64
                f.cf = (a + b) > U64
                f.of = (s64(a) + s64(b)) != s64(r)
            else:
                r = (a - b) & U64
                f.cf = a < b
                f.of = (s64(a) - s64(b)) != s64(r)
            _set_zsp(f, r)
            if mn != "cmp":
                self.write_u64_operand(ops[0], r, fp=False)
        elif mn in ("and", "or", "xor", "test"):
            a = self.read_u64_operand(ops[0], fp=False)
            b = self.read_u64_operand(ops[1], fp=False)
            r = a & b if mn in ("and", "test") else (a | b if mn == "or" else a ^ b)
            f.cf = f.of = False
            _set_zsp(f, r)
            if mn != "test":
                self.write_u64_operand(ops[0], r, fp=False)
        elif mn == "imul":
            a = s64(self.read_u64_operand(ops[0], fp=False))
            b = s64(self.read_u64_operand(ops[1], fp=False))
            full = a * b
            r = full & U64
            f.cf = f.of = s64(r) != full
            _set_zsp(f, r)
            self.write_u64_operand(ops[0], r, fp=False)
        elif mn in ("shl", "shr", "sar"):
            a = self.read_u64_operand(ops[0], fp=False)
            count = self.read_u64_operand(ops[1], fp=False) & 63
            if count:
                if mn == "shl":
                    f.cf = bool((a >> (64 - count)) & 1)
                    r = (a << count) & U64
                elif mn == "shr":
                    f.cf = bool((a >> (count - 1)) & 1)
                    r = a >> count
                else:
                    f.cf = bool((a >> (count - 1)) & 1)
                    r = (s64(a) >> count) & U64
                _set_zsp(f, r)
                self.write_u64_operand(ops[0], r, fp=False)
        elif mn == "inc":
            a = self.read_u64_operand(ops[0], fp=False)
            r = (a + 1) & U64
            f.of = s64(a) + 1 != s64(r)
            _set_zsp(f, r)
            self.write_u64_operand(ops[0], r, fp=False)
        elif mn == "dec":
            a = self.read_u64_operand(ops[0], fp=False)
            r = (a - 1) & U64
            f.of = s64(a) - 1 != s64(r)
            _set_zsp(f, r)
            self.write_u64_operand(ops[0], r, fp=False)
        elif mn == "neg":
            a = self.read_u64_operand(ops[0], fp=False)
            r = (-a) & U64
            f.cf = a != 0
            f.of = a == (1 << 63)
            _set_zsp(f, r)
            self.write_u64_operand(ops[0], r, fp=False)
        elif mn == "not":
            a = self.read_u64_operand(ops[0], fp=False)
            self.write_u64_operand(ops[0], (~a) & U64, fp=False)
        self.regs.rip = instr.addr + instr.size
        return True

    # --------------------------------------------------------- control flow
    def _exec_control(self, instr: Instruction):
        mn = instr.mnemonic
        next_rip = instr.addr + instr.size
        if mn == "jmp":
            self.regs.rip = self._branch_target(instr.operands[0])
        elif mn == "call":
            target = self._branch_target(instr.operands[0])
            host = self.program.host_functions.get(target)
            if host is not None:
                self.cycles += host.cost
                self.work_cycles += host.cost
                self.regs.rip = next_rip
                host.fn(self)
            else:
                self.push(next_rip)
                self.regs.rip = target
        elif mn == "ret":
            addr = self.pop()
            if addr == RETURN_SENTINEL:
                self.halted = True
            else:
                self.regs.rip = addr
        else:  # conditional jumps
            taken = CONDITION_CODES[mn](self.regs.flags)
            self.regs.rip = self._branch_target(instr.operands[0]) if taken else next_rip
        return True

    def _branch_target(self, op) -> int:
        if isinstance(op, Label):
            if op.addr is not None and op.addr != -1:
                return op.addr
            # External symbol: dynamic (PLT-style) binding via the
            # rewritable symbol table -- the interposition point.
            return self.program.resolve(op.name)
        if isinstance(op, Reg):
            return self.regs.gpr[op.id]
        raise MachineError(f"bad branch target {op!r}")

    # --------------------------------------------------------------- system
    def _exec_sys(self, instr: Instruction):
        mn = instr.mnemonic
        if mn == "hlt":
            self.halted = True
            return True
        if mn == "int3":
            self.bp_trap_count += 1
            self._deliver(Trap(TrapKind.BP, instr.addr, instr))
            return False
        # nop
        self.regs.rip = instr.addr + instr.size
        return True


def _set_zsp(f: Flags, r: int) -> None:
    f.zf = r == 0
    f.sf = bool(r >> 63)
    f.pf = _PARITY[r & 0xFF]


def _gpr_id(name: str) -> int:
    from repro.machine.isa import GPR_IDS

    return GPR_IDS[name]


_PARITY = [bin(i).count("1") % 2 == 0 for i in range(256)]
