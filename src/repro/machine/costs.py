"""The cycle cost model.

All performance results in this reproduction are *cycle-accounting*
results, mirroring how the paper reports them.  The constants below are
the paper's measured values on its testbed (Dell R6515, EPYC 7443P,
Linux 5.15 — §2.3, §3, §5.2, Figures 1/2/3):

- hardware #XF dispatch to the kernel: ~380 cycles,
- kernel -> user SIGFPE delivery via POSIX signals: ~3800 cycles,
- sigreturn back to the faulting context: ~1800 cycles,
- trap short-circuit delivery: ~350 cycles including the iretq
  (split here as 280 delivery + a cheap user-side return of 100,
  reproducing the paper's "5980 -> about 760 cycles" for hw+kern+ret),
- magic trap call/return: ~50 cycles (double-indirect call + ret),
  ~100 including the trampoline's register save/restore.

Per-opcode native costs live in :mod:`repro.machine.isa` (roughly:
moves/ALU 1 cycle, FP add 4, mul 5, div 13, sqrt 20 — ballpark
throughput numbers for a Zen-class core; only their *smallness*
relative to trap costs matters for the paper's shapes).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Every tunable cycle constant, in one place.

    The defaults reproduce the paper's testbed.  Benchmarks that study
    sensitivity (e.g. "what if signals were cheap?") construct variants
    via :func:`dataclasses.replace`.
    """

    # --- trap machinery (§2.3, Figure 2) ---------------------------------
    hw_trap: int = 380              # hardware #XF/#BP -> kernel entry
    signal_deliver: int = 3800      # kernel -> user POSIX signal frame
    sigreturn: int = 1800           # sigreturn syscall back to user code
    short_deliver: int = 280        # kernel module bespoke delivery
    short_return: int = 100         # exit stub + iretq-style return
    kernel_internal: int = 120      # math_error()/module bookkeeping

    # --- per-class #XF hardware surcharge (Wittmann et al. note) ---------
    # Not every #XF costs the same before the kernel even sees it:
    # denormal operands take a microcode assist on top of the fault,
    # gradual-underflow results pay a smaller one, and overflow /
    # divide-by-zero re-steer the pipeline earlier than a completed op.
    # Invalid and inexact — the classes every boxed-operand trap raises
    # — pay only the base ``hw_trap``, so invalid/inexact-dominated
    # workloads are unaffected by these knobs.
    hw_trap_denormal_extra: int = 260
    hw_trap_underflow_extra: int = 180
    hw_trap_overflow_extra: int = 90
    hw_trap_divzero_extra: int = 50

    # --- magic traps / wraps (§5.2, Figure 3) ----------------------------
    magic_call: int = 50            # patched call -> trampoline -> callback
    magic_save_restore: int = 50    # trampoline red-zone shift + reg save

    # --- FPVM software costs (§2.4, Figure 1 categories) ------------------
    decode_cache_hit: int = 25      # decache
    decode_miss: int = 800          # Capstone-analog decode (decode)
    bind_per_operand: int = 15      # operand binding (bind)
    emul_dispatch: int = 40         # emulator dispatch, excl. altmath (emul)
    handler_entry: int = 80         # ucontext fixup in the SIGFPE handler
    #: §3.1 future-work variant: lazily save/restore FP state in the
    #: entry/exit stubs instead of eagerly spilling everything (xsave
    #: "can currently occupy a whole page").
    handler_entry_lazy: int = 25

    # --- lazy FP state management across quanta (§3.1) --------------------
    #: eager discipline: full XMM bank spill + reload at every context
    #: switch between distinct threads (the xsave-everything baseline).
    fp_full_switch: int = 420
    #: lazy discipline: modeled #NM-style trap raised at the first FP
    #: touch by a non-owner thread (dispatch + ownership bookkeeping).
    fp_nm_switch: int = 180
    #: per 64-bit XMM lane actually spilled from the outgoing owner
    #: (only lanes dirtied since it acquired ownership).
    fp_lane_save: int = 6
    #: per 64-bit XMM lane reloaded for the incoming owner (only lanes
    #: it has ever had saved).
    fp_lane_restore: int = 6

    # --- garbage collection (§2.5) ----------------------------------------
    gc_per_page: int = 60           # conservative scan of one writable page
    gc_per_object: int = 12         # mark/sweep bookkeeping per object
    gc_threshold: int = 4096        # allocations between collections

    # --- correctness instrumentation (§2.6, §5) ---------------------------
    corr_handler: int = 150         # demotion check + single-step setup
    fcall_wrapper: int = 90         # wrapper stub save/demote/restore
    host_call: int = 30             # plain host ("libc") call overhead

    def xf_trap_cost(self, fp_flags) -> int:
        """Hardware #XF dispatch cost for one delivered trap: the base
        ``hw_trap`` plus the trap-class surcharge.  The priority order
        must stay in sync with
        :func:`repro.observability.flow.classify_flags`."""
        if fp_flags is None or fp_flags.invalid:
            return self.hw_trap
        if fp_flags.zero_divide:
            return self.hw_trap + self.hw_trap_divzero_extra
        if fp_flags.denormal:
            return self.hw_trap + self.hw_trap_denormal_extra
        if fp_flags.overflow:
            return self.hw_trap + self.hw_trap_overflow_extra
        if fp_flags.underflow:
            return self.hw_trap + self.hw_trap_underflow_extra
        return self.hw_trap


DEFAULT_COSTS = CostModel()


#: Categories of the paper's per-instruction cost breakdown
#: (Figures 1, 6, 13), in the order the figures stack them.
LEDGER_CATEGORIES = (
    "hw",        # hardware trap dispatch
    "kernel",    # kernel -> user delivery (signals or short-circuit)
    "decache",   # decode cache lookups
    "decode",    # decode-cache misses (Capstone)
    "bind",      # operand binding
    "emul",      # emulator work excluding the arithmetic itself
    "altmath",   # the alternative arithmetic system (the lower bound)
    "gc",        # garbage collection
    "corr",      # memory-escape correctness handling
    "fcall",     # foreign-function wrapper handling
    "ret",       # return-to-user (sigreturn / exit stub)
)
