"""Register file: GPRs, XMMs, RFLAGS, MXCSR."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.isa import GPR_NAMES, XMM_NAMES

U64 = 0xFFFF_FFFF_FFFF_FFFF


@dataclass
class Flags:
    """The RFLAGS bits the simulated ISA exposes."""

    zf: bool = False
    sf: bool = False
    cf: bool = False
    of: bool = False
    pf: bool = False

    def copy(self) -> "Flags":
        return Flags(self.zf, self.sf, self.cf, self.of, self.pf)

    def pack(self) -> int:
        return (
            (1 if self.cf else 0)
            | (4 if self.pf else 0)
            | (64 if self.zf else 0)
            | (128 if self.sf else 0)
            | (2048 if self.of else 0)
        )

    @classmethod
    def unpack(cls, value: int) -> "Flags":
        return cls(
            zf=bool(value & 64),
            sf=bool(value & 128),
            cf=bool(value & 1),
            of=bool(value & 2048),
            pf=bool(value & 4),
        )


# MXCSR layout (subset): status flags in bits 0-5, mask bits in 7-12.
MXCSR_IE = 1 << 0   # invalid
MXCSR_DE = 1 << 1   # denormal operand
MXCSR_ZE = 1 << 2   # divide by zero
MXCSR_OE = 1 << 3   # overflow
MXCSR_UE = 1 << 4   # underflow
MXCSR_PE = 1 << 5   # precision (inexact)
MXCSR_STATUS_MASK = 0x3F

MXCSR_IM = 1 << 7   # invalid masked
MXCSR_DM = 1 << 8
MXCSR_ZM = 1 << 9
MXCSR_OM = 1 << 10
MXCSR_UM = 1 << 11
MXCSR_PM = 1 << 12
MXCSR_MASK_ALL = MXCSR_IM | MXCSR_DM | MXCSR_ZM | MXCSR_OM | MXCSR_UM | MXCSR_PM

# Rounding control (RC) field, bits 13-14: 00 nearest, 01 down (toward
# -inf), 10 up (toward +inf), 11 toward zero.
MXCSR_RC_SHIFT = 13
MXCSR_RC_MASK = 0b11 << MXCSR_RC_SHIFT
RC_NEAREST, RC_DOWN, RC_UP, RC_ZERO = 0, 1, 2, 3
_RC_MODE_NAMES = {RC_NEAREST: "ne", RC_DOWN: "dn", RC_UP: "up", RC_ZERO: "zr"}


def rounding_mode(mxcsr: int) -> str:
    """The :mod:`repro.fpu.bits` mode string selected by MXCSR.RC."""
    return _RC_MODE_NAMES[(mxcsr & MXCSR_RC_MASK) >> MXCSR_RC_SHIFT]


def with_rounding(mxcsr: int, rc: int) -> int:
    return (mxcsr & ~MXCSR_RC_MASK) | (rc << MXCSR_RC_SHIFT)

#: Power-on MXCSR: all exceptions masked (the native configuration).
MXCSR_DEFAULT = MXCSR_MASK_ALL

#: FPVM's MXCSR: unmask Invalid, Denormal, Overflow, Underflow and
#: Precision so each of those conditions faults (§2.3).  Divide-by-zero
#: stays masked in the paper's configuration only insofar as it is not
#: listed; we unmask it too since 0/0 raises Invalid anyway and x/0
#: produces an infinity FPVM wants to see.
MXCSR_FPVM = 0


def unmasked_status(mxcsr: int) -> int:
    """Status bits (0-5) whose corresponding mask bit (7-12) is clear."""
    status = mxcsr & MXCSR_STATUS_MASK
    masks = (mxcsr >> 7) & MXCSR_STATUS_MASK
    return status & ~masks


@dataclass
class RegisterFile:
    """All architectural registers.

    XMM registers are stored as pairs of 64-bit lanes (lane 0 is the
    scalar-double lane).  GPRs are unsigned 64-bit ints.
    """

    gpr: list[int] = field(default_factory=lambda: [0] * len(GPR_NAMES))
    xmm: list[list[int]] = field(
        default_factory=lambda: [[0, 0] for _ in range(len(XMM_NAMES))]
    )
    rip: int = 0
    flags: Flags = field(default_factory=Flags)
    mxcsr: int = MXCSR_DEFAULT
    #: lazy-FP metadata: 32-bit masks over the 16 XMM registers' 64-bit
    #: lanes (bit ``2*xid + lane``).  ``fp_dirty`` marks lanes written
    #: since this thread last acquired FP ownership; ``fp_live`` is the
    #: monotone union of lanes ever spilled for it (what an ownership
    #: switch must reload).  Scheduler-maintained — the fast execute
    #: paths batch-OR per-superblock summaries instead of updating this
    #: per write.
    fp_dirty: int = 0
    fp_live: int = 0

    def read_gpr(self, rid: int) -> int:
        return self.gpr[rid]

    def write_gpr(self, rid: int, value: int) -> None:
        self.gpr[rid] = value & U64

    def read_xmm_lane(self, xid: int, lane: int) -> int:
        return self.xmm[xid][lane]

    def write_xmm_lane(self, xid: int, lane: int, value: int) -> None:
        self.xmm[xid][lane] = value & U64

    def read_xmm128(self, xid: int) -> tuple[int, int]:
        lanes = self.xmm[xid]
        return (lanes[0], lanes[1])

    def write_xmm128(self, xid: int, lo: int, hi: int) -> None:
        self.xmm[xid][0] = lo & U64
        self.xmm[xid][1] = hi & U64

    def snapshot(self) -> dict:
        """A ucontext-style snapshot (used by signal frames and the
        short-circuit entry stub)."""
        return {
            "gpr": list(self.gpr),
            "xmm": [list(lanes) for lanes in self.xmm],
            "rip": self.rip,
            "flags": self.flags.copy(),
            "mxcsr": self.mxcsr,
            "fp_dirty": self.fp_dirty,
            "fp_live": self.fp_live,
        }

    def restore(self, snap: dict) -> None:
        self.gpr = list(snap["gpr"])
        self.xmm = [list(lanes) for lanes in snap["xmm"]]
        self.rip = snap["rip"]
        self.flags = snap["flags"].copy()
        self.mxcsr = snap["mxcsr"]
        # Hand-built ucontext dicts (signal-frame tests) may predate the
        # lazy-FP metadata; missing keys restore to the pristine masks.
        self.fp_dirty = snap.get("fp_dirty", 0)
        self.fp_live = snap.get("fp_live", 0)
