"""IEEE-754 binary64 substrate: bit manipulation, an exact operation
oracle that reports exception flags, and an arbitrary-precision binary
float (the MPFR stand-in).

Everything in this package is host-independent: values are carried as
64-bit integer bit patterns so that NaN payloads (which FPVM's NaN-boxing
relies on) are never laundered through Python ``float`` objects.
"""

from repro.fpu.bits import (
    F64_SIGN_MASK,
    F64_EXP_MASK,
    F64_FRAC_MASK,
    F64_QNAN_BIT,
    CANONICAL_QNAN,
    POS_INF_BITS,
    NEG_INF_BITS,
    float_to_bits,
    bits_to_float,
    is_nan,
    is_snan,
    is_qnan,
    is_inf,
    is_zero,
    is_subnormal,
    is_finite,
    quiet,
)
from repro.fpu.ieee import FPFlags, FPResult, ieee_op
from repro.fpu.softfloat import BigFloat, BigFloatContext

__all__ = [
    "F64_SIGN_MASK",
    "F64_EXP_MASK",
    "F64_FRAC_MASK",
    "F64_QNAN_BIT",
    "CANONICAL_QNAN",
    "POS_INF_BITS",
    "NEG_INF_BITS",
    "float_to_bits",
    "bits_to_float",
    "is_nan",
    "is_snan",
    "is_qnan",
    "is_inf",
    "is_zero",
    "is_subnormal",
    "is_finite",
    "quiet",
    "FPFlags",
    "FPResult",
    "ieee_op",
    "BigFloat",
    "BigFloatContext",
]
