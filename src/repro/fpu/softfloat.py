"""Arbitrary-precision binary floating point with correct rounding.

This is the repo's MPFR stand-in (the paper evaluates FPVM with MPFR at
200 bits of precision, §6.4).  A :class:`BigFloat` is a software float

    value = (-1)^sign * mantissa * 2^exp

with ``mantissa`` normalized to exactly ``precision`` bits (top bit
set), rounded to nearest with ties to even — the same rounding contract
MPFR provides.  Special values (NaN, +/-Inf, +/-0) are carried
explicitly.

Only what the FPVM emulator needs is implemented: add, sub, mul, div,
sqrt, neg, abs, comparisons, and conversions to/from binary64 bit
patterns.  Transcendentals (sin/cos/atan/...) are provided to ~2 ulp by
computing through argument-reduced Taylor/Newton schemes at extended
working precision; they back the libm forward wrappers (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.fpu import bits as B

_KIND_FINITE = 0
_KIND_ZERO = 1
_KIND_INF = 2
_KIND_NAN = 3


@dataclass(frozen=True)
class BigFloatContext:
    """Rounding context: precision in bits (>= 2).

    MPFR's default rounding (RNDN, nearest/even) is the only mode
    implemented; the paper uses it exclusively.
    """

    precision: int = 200

    def __post_init__(self) -> None:
        if self.precision < 2:
            raise ValueError("precision must be >= 2 bits")


DEFAULT_CONTEXT = BigFloatContext(200)


class BigFloat:
    """An immutable arbitrary-precision binary float."""

    __slots__ = ("_kind", "_sign", "_mant", "_exp", "_prec")

    def __init__(self, kind: int, sign: int, mant: int, exp: int, prec: int):
        self._kind = kind
        self._sign = sign
        self._mant = mant
        self._exp = exp
        self._prec = prec

    # ---------------------------------------------------------- factories
    @classmethod
    def nan(cls, ctx: BigFloatContext = DEFAULT_CONTEXT) -> "BigFloat":
        return cls(_KIND_NAN, 0, 0, 0, ctx.precision)

    @classmethod
    def inf(cls, sign: int = 0, ctx: BigFloatContext = DEFAULT_CONTEXT) -> "BigFloat":
        return cls(_KIND_INF, sign, 0, 0, ctx.precision)

    @classmethod
    def zero(cls, sign: int = 0, ctx: BigFloatContext = DEFAULT_CONTEXT) -> "BigFloat":
        return cls(_KIND_ZERO, sign, 0, 0, ctx.precision)

    @classmethod
    def from_int(cls, value: int, ctx: BigFloatContext = DEFAULT_CONTEXT) -> "BigFloat":
        if value == 0:
            return cls.zero(0, ctx)
        sign = 1 if value < 0 else 0
        return _round_mant(sign, abs(value), 0, ctx)

    @classmethod
    def from_fraction(
        cls, value: Fraction, ctx: BigFloatContext = DEFAULT_CONTEXT
    ) -> "BigFloat":
        if value == 0:
            return cls.zero(0, ctx)
        sign = 1 if value < 0 else 0
        return _round_ratio(sign, abs(value.numerator), value.denominator, ctx)

    @classmethod
    def from_float64_bits(
        cls, bits: int, ctx: BigFloatContext = DEFAULT_CONTEXT
    ) -> "BigFloat":
        if B.is_nan(bits):
            return cls.nan(ctx)
        if B.is_inf(bits):
            return cls.inf(B.sign_bit(bits), ctx)
        if B.is_zero(bits):
            return cls.zero(B.sign_bit(bits), ctx)
        frac = B.bits_to_fraction(bits)
        sign = 1 if frac < 0 else 0
        return _round_ratio(sign, abs(frac.numerator), frac.denominator, ctx)

    @classmethod
    def from_float(cls, x: float, ctx: BigFloatContext = DEFAULT_CONTEXT) -> "BigFloat":
        return cls.from_float64_bits(B.float_to_bits(x), ctx)

    # ---------------------------------------------------------- inspectors
    @property
    def precision(self) -> int:
        return self._prec

    def is_nan(self) -> bool:
        return self._kind == _KIND_NAN

    def is_inf(self) -> bool:
        return self._kind == _KIND_INF

    def is_zero(self) -> bool:
        return self._kind == _KIND_ZERO

    def is_finite(self) -> bool:
        return self._kind in (_KIND_FINITE, _KIND_ZERO)

    def is_negative(self) -> bool:
        return self._sign == 1

    def to_fraction(self) -> Fraction:
        if self._kind == _KIND_ZERO:
            return Fraction(0)
        if self._kind != _KIND_FINITE:
            raise ValueError("non-finite BigFloat has no rational value")
        mag = (
            Fraction(self._mant * (1 << self._exp))
            if self._exp >= 0
            else Fraction(self._mant, 1 << -self._exp)
        )
        return -mag if self._sign else mag

    def to_float64_bits(self) -> int:
        """Round to binary64 (nearest-even), preserving signed zero."""
        if self._kind == _KIND_NAN:
            return B.CANONICAL_QNAN
        if self._kind == _KIND_INF:
            return B.NEG_INF_BITS if self._sign else B.POS_INF_BITS
        if self._kind == _KIND_ZERO:
            return B.NEG_ZERO_BITS if self._sign else B.POS_ZERO_BITS
        rb, _, _, _ = B.fraction_to_bits_rne(self.to_fraction(), self._sign)
        return rb

    def to_float(self) -> float:
        return B.bits_to_float(self.to_float64_bits())

    # ---------------------------------------------------------- arithmetic
    def add(self, other: "BigFloat", ctx: BigFloatContext | None = None) -> "BigFloat":
        ctx = ctx or BigFloatContext(self._prec)
        if self.is_nan() or other.is_nan():
            return BigFloat.nan(ctx)
        if self.is_inf() or other.is_inf():
            if self.is_inf() and other.is_inf():
                if self._sign != other._sign:
                    return BigFloat.nan(ctx)
                return BigFloat.inf(self._sign, ctx)
            return BigFloat.inf(self._sign if self.is_inf() else other._sign, ctx)
        if self.is_zero() and other.is_zero():
            # RNDN: -0 + -0 = -0; mixed signs give +0.
            return BigFloat.zero(self._sign & other._sign, ctx)
        if self.is_zero():
            return _round_existing(other, ctx)
        if other.is_zero():
            return _round_existing(self, ctx)
        exact = self.to_fraction() + other.to_fraction()
        if exact == 0:
            return BigFloat.zero(0, ctx)
        return BigFloat.from_fraction(exact, ctx)

    def sub(self, other: "BigFloat", ctx: BigFloatContext | None = None) -> "BigFloat":
        return self.add(other.neg(), ctx)

    def mul(self, other: "BigFloat", ctx: BigFloatContext | None = None) -> "BigFloat":
        ctx = ctx or BigFloatContext(self._prec)
        if self.is_nan() or other.is_nan():
            return BigFloat.nan(ctx)
        sign = self._sign ^ other._sign
        if self.is_inf() or other.is_inf():
            if self.is_zero() or other.is_zero():
                return BigFloat.nan(ctx)
            return BigFloat.inf(sign, ctx)
        if self.is_zero() or other.is_zero():
            return BigFloat.zero(sign, ctx)
        # Exact product of mantissas; a single rounding at the end.
        mant = self._mant * other._mant
        exp = self._exp + other._exp
        return _round_mant(sign, mant, exp, ctx)

    def div(self, other: "BigFloat", ctx: BigFloatContext | None = None) -> "BigFloat":
        ctx = ctx or BigFloatContext(self._prec)
        if self.is_nan() or other.is_nan():
            return BigFloat.nan(ctx)
        sign = self._sign ^ other._sign
        if self.is_inf():
            if other.is_inf():
                return BigFloat.nan(ctx)
            return BigFloat.inf(sign, ctx)
        if other.is_inf():
            return BigFloat.zero(sign, ctx)
        if other.is_zero():
            if self.is_zero():
                return BigFloat.nan(ctx)
            return BigFloat.inf(sign, ctx)
        if self.is_zero():
            return BigFloat.zero(sign, ctx)
        num = self._mant
        den = other._mant
        exp = self._exp - other._exp
        return _round_ratio_scaled(sign, num, den, exp, ctx)

    def sqrt(self, ctx: BigFloatContext | None = None) -> "BigFloat":
        ctx = ctx or BigFloatContext(self._prec)
        if self.is_nan():
            return BigFloat.nan(ctx)
        if self.is_zero():
            return BigFloat.zero(self._sign, ctx)
        if self._sign:
            return BigFloat.nan(ctx)
        if self.is_inf():
            return BigFloat.inf(0, ctx)
        # Compute floor(sqrt(m * 2^e)) at precision + guard bits using
        # integer isqrt, then round-to-nearest-even via the remainder.
        p = ctx.precision
        mant, exp = self._mant, self._exp
        # Scale so that the integer sqrt has >= p+2 significant bits and
        # the exponent is even (so it halves exactly).
        target_bits = 2 * (p + 2)
        shift = max(target_bits - mant.bit_length(), 0)
        if (exp - shift) % 2 != 0:
            shift += 1
        mant <<= shift
        exp -= shift
        root = _isqrt(mant)
        rem = mant - root * root
        # True sqrt lies in [root, root+1) * 2^(exp/2); the sticky flag
        # carries the sub-ulp remainder into nearest-even rounding.
        return _round_mant(0, root, exp // 2, ctx, sticky=rem != 0)

    def neg(self) -> "BigFloat":
        if self._kind == _KIND_NAN:
            return self
        return BigFloat(self._kind, self._sign ^ 1, self._mant, self._exp, self._prec)

    def abs(self) -> "BigFloat":
        if self._kind == _KIND_NAN:
            return self
        return BigFloat(self._kind, 0, self._mant, self._exp, self._prec)

    def fma(
        self, y: "BigFloat", z: "BigFloat", ctx: BigFloatContext | None = None
    ) -> "BigFloat":
        """self*y + z with a single rounding (used by the altmath layer)."""
        ctx = ctx or BigFloatContext(self._prec)
        if self.is_nan() or y.is_nan() or z.is_nan():
            return BigFloat.nan(ctx)
        if not (self.is_finite() and y.is_finite() and z.is_finite()):
            # Fall back to two-step for the (rare) non-finite cases; the
            # special-value outcomes are identical.
            return self.mul(y, ctx).add(z, ctx)
        exact = self.to_fraction() * y.to_fraction() + z.to_fraction()
        if exact == 0:
            return BigFloat.zero(0, ctx)
        return BigFloat.from_fraction(exact, ctx)

    # ---------------------------------------------------------- comparison
    def cmp(self, other: "BigFloat") -> int | None:
        """-1/0/+1, or None if unordered (either side NaN)."""
        if self.is_nan() or other.is_nan():
            return None
        a = self._cmp_key()
        b = other._cmp_key()
        return -1 if a < b else (0 if a == b else 1)

    def _cmp_key(self):
        if self._kind == _KIND_ZERO:
            return Fraction(0)
        if self._kind == _KIND_INF:
            return Fraction((-1) ** self._sign * (1 << 40000))  # beyond any finite
        return self.to_fraction()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BigFloat):
            return NotImplemented
        return self.cmp(other) == 0

    def __hash__(self) -> int:
        if self._kind == _KIND_NAN:
            return hash("bigfloat-nan")
        if self._kind == _KIND_INF:
            return hash(("bigfloat-inf", self._sign))
        return hash(self.to_fraction())

    def __repr__(self) -> str:
        if self._kind == _KIND_NAN:
            return "BigFloat(nan)"
        if self._kind == _KIND_INF:
            return f"BigFloat({'-' if self._sign else '+'}inf)"
        if self._kind == _KIND_ZERO:
            return f"BigFloat({'-' if self._sign else '+'}0, prec={self._prec})"
        return f"BigFloat({self.to_float()!r}~, prec={self._prec})"

    # ---------------------------------------------------- transcendentals
    def sin(self, ctx: BigFloatContext | None = None) -> "BigFloat":
        return _transcendental(self, "sin", ctx)

    def cos(self, ctx: BigFloatContext | None = None) -> "BigFloat":
        return _transcendental(self, "cos", ctx)

    def tan(self, ctx: BigFloatContext | None = None) -> "BigFloat":
        return _transcendental(self, "tan", ctx)

    def atan(self, ctx: BigFloatContext | None = None) -> "BigFloat":
        return _transcendental(self, "atan", ctx)

    def asin(self, ctx: BigFloatContext | None = None) -> "BigFloat":
        return _transcendental(self, "asin", ctx)

    def acos(self, ctx: BigFloatContext | None = None) -> "BigFloat":
        return _transcendental(self, "acos", ctx)

    def exp(self, ctx: BigFloatContext | None = None) -> "BigFloat":
        return _transcendental(self, "exp", ctx)

    def log(self, ctx: BigFloatContext | None = None) -> "BigFloat":
        return _transcendental(self, "log", ctx)


def _isqrt(n: int) -> int:
    import math

    return math.isqrt(n)


def _round_existing(x: BigFloat, ctx: BigFloatContext) -> BigFloat:
    """Re-round a finite/zero BigFloat into a (possibly different) context."""
    if x._kind != _KIND_FINITE:
        return BigFloat(x._kind, x._sign, 0, 0, ctx.precision)
    return _round_mant(x._sign, x._mant, x._exp, ctx)


def _round_mant(
    sign: int, mant: int, exp: int, ctx: BigFloatContext, sticky: bool = False
) -> BigFloat:
    """Normalize ``mant * 2^exp`` to ctx.precision bits, nearest-even.

    ``sticky`` records that low-order truncated information exists below
    ``mant`` (used by sqrt's truncated integer root).
    """
    if mant == 0:
        return BigFloat.zero(sign, ctx)
    p = ctx.precision
    nbits = mant.bit_length()
    if nbits <= p:
        # Any sticky information sits strictly below the ulp, so RNDN
        # truncates (callers that need exact ties carry >= 1 guard bit).
        shift = p - nbits
        return BigFloat(_KIND_FINITE, sign, mant << shift, exp - shift, p)
    drop = nbits - p
    kept = mant >> drop
    rem = mant & ((1 << drop) - 1)
    half = 1 << (drop - 1)
    round_up = rem > half or (rem == half and (sticky or (kept & 1)))
    if round_up:
        kept += 1
        if kept.bit_length() > p:
            kept >>= 1
            drop += 1
    return BigFloat(_KIND_FINITE, sign, kept, exp + drop, p)


def _round_ratio(sign: int, num: int, den: int, ctx: BigFloatContext) -> BigFloat:
    return _round_ratio_scaled(sign, num, den, 0, ctx)


def _round_ratio_scaled(
    sign: int, num: int, den: int, exp: int, ctx: BigFloatContext
) -> BigFloat:
    """Round ``(num/den) * 2^exp`` to precision bits, nearest-even."""
    if num == 0:
        return BigFloat.zero(sign, ctx)
    p = ctx.precision
    # Scale num so the integer quotient has exactly p or p+1 bits.
    shift = p + 1 - (num.bit_length() - den.bit_length())
    if shift > 0:
        num <<= shift
        exp -= shift
    elif shift < 0:
        den <<= -shift
        exp -= shift  # equivalent scaling on the other side
    q, r = divmod(num, den)
    # q now has p or p+1 (occasionally p+2) bits; feed through _round_mant
    # with the sticky remainder.
    return _round_mant(sign, q, exp, ctx, sticky=r != 0)


# --------------------------------------------------------------------------
# Transcendentals: computed at extended working precision via Fraction
# Taylor series with argument reduction; results are faithfully rounded
# (error < 1 ulp at the target precision thanks to 32 guard bits).
# --------------------------------------------------------------------------

_PI_CACHE: dict[int, Fraction] = {}


def _pi(prec: int) -> Fraction:
    """pi to ``prec`` bits via the Machin-like formula (cached)."""
    cached = _PI_CACHE.get(prec)
    if cached is not None:
        return cached
    # pi = 16*atan(1/5) - 4*atan(1/239)
    work = prec + 16
    pi = 16 * _atan_frac(Fraction(1, 5), work) - 4 * _atan_frac(Fraction(1, 239), work)
    _PI_CACHE[prec] = pi
    return pi


def _atan_frac(x: Fraction, prec: int) -> Fraction:
    """atan for |x| <= 1 via argument halving + Taylor series.

    atan(x) = 2*atan(x / (1 + sqrt(1 + x^2))) shrinks the argument below
    1/4 in a few steps, after which the alternating series converges
    geometrically.
    """
    halvings = 0
    while abs(x) > Fraction(1, 4):
        x = x / (1 + _sqrt_frac(1 + x * x, prec + 8))
        halvings += 1
    tol = Fraction(1, 1 << (prec + halvings + 2))
    term = x
    x2 = x * x
    total = Fraction(0)
    n = 0
    while abs(term) > tol:
        total += term / (2 * n + 1) * ((-1) ** n)
        term = term * x2
        n += 1
    return total * (1 << halvings)


def _sin_frac(x: Fraction, prec: int) -> Fraction:
    tol = Fraction(1, 1 << prec)
    term = x
    total = Fraction(0)
    n = 1
    sign = 1
    while abs(term) > tol:
        total += sign * term
        term = term * x * x / ((n + 1) * (n + 2))
        n += 2
        sign = -sign
    return total


def _cos_frac(x: Fraction, prec: int) -> Fraction:
    tol = Fraction(1, 1 << prec)
    term = Fraction(1)
    total = Fraction(0)
    n = 0
    sign = 1
    while abs(term) > tol:
        total += sign * term
        term = term * x * x / ((n + 1) * (n + 2))
        n += 2
        sign = -sign
    return total


def _exp_frac(x: Fraction, prec: int) -> Fraction:
    # Reduce |x| < 1 by squaring: exp(x) = exp(x/2^k)^(2^k).
    k = 0
    while abs(x) > 1:
        x /= 2
        k += 1
    tol = Fraction(1, 1 << (prec + k + 4))
    term = Fraction(1)
    total = Fraction(0)
    n = 0
    while abs(term) > tol:
        total += term
        n += 1
        term = term * x / n
    for _ in range(k):
        total = total * total
    return total


def _log_frac(x: Fraction, prec: int) -> Fraction:
    """Natural log for x > 0 via atanh series after range reduction."""
    if x <= 0:
        raise ValueError("log of non-positive")
    # Reduce to [2/3, 4/3) by pulling out powers of two: x = m * 2^e.
    e = 0
    while x >= Fraction(4, 3):
        x /= 2
        e += 1
    while x < Fraction(2, 3):
        x *= 2
        e -= 1
    # log(x) = 2*atanh((x-1)/(x+1))
    z = (x - 1) / (x + 1)
    tol = Fraction(1, 1 << (prec + 4))
    term = z
    total = Fraction(0)
    n = 0
    z2 = z * z
    while abs(term) > tol:
        total += term / (2 * n + 1)
        term = term * z2
        n += 1
    result = 2 * total
    if e:
        ln2 = 2 * _atanh_third(prec + 8)
        result += e * ln2
    return result


def _atanh_third(prec: int) -> Fraction:
    """atanh(1/3), so ln 2 = 2*atanh(1/3)."""
    z = Fraction(1, 3)
    tol = Fraction(1, 1 << prec)
    term = z
    total = Fraction(0)
    n = 0
    z2 = z * z
    while abs(term) > tol:
        total += term / (2 * n + 1)
        term = term * z2
        n += 1
    return total


def _transcendental(
    x: BigFloat, name: str, ctx: BigFloatContext | None
) -> BigFloat:
    ctx = ctx or BigFloatContext(x.precision)
    if x.is_nan():
        return BigFloat.nan(ctx)
    work = ctx.precision + 32
    if x.is_inf():
        if name == "exp":
            return BigFloat.zero(0, ctx) if x.is_negative() else BigFloat.inf(0, ctx)
        if name == "atan":
            half_pi = _pi(work) / 2
            return BigFloat.from_fraction(-half_pi if x.is_negative() else half_pi, ctx)
        if name == "log" and not x.is_negative():
            return BigFloat.inf(0, ctx)
        return BigFloat.nan(ctx)
    v = x.to_fraction() if not x.is_zero() else Fraction(0)
    if name == "sin":
        return BigFloat.from_fraction(_sin_frac(_reduce_angle(v, work), work), ctx)
    if name == "cos":
        return BigFloat.from_fraction(_cos_frac(_reduce_angle(v, work), work), ctx)
    if name == "tan":
        r = _reduce_angle(v, work)
        c = _cos_frac(r, work)
        if c == 0:
            return BigFloat.inf(0, ctx)
        return BigFloat.from_fraction(_sin_frac(r, work) / c, ctx)
    if name == "atan":
        return BigFloat.from_fraction(_atan_any(v, work), ctx)
    if name == "asin":
        if abs(v) > 1:
            return BigFloat.nan(ctx)
        return BigFloat.from_fraction(_asin_frac(v, work), ctx)
    if name == "acos":
        if abs(v) > 1:
            return BigFloat.nan(ctx)
        return BigFloat.from_fraction(_pi(work) / 2 - _asin_frac(v, work), ctx)
    if name == "exp":
        return BigFloat.from_fraction(_exp_frac(v, work), ctx)
    if name == "log":
        if v < 0:
            return BigFloat.nan(ctx)
        if v == 0:
            return BigFloat.inf(1, ctx)
        return BigFloat.from_fraction(_log_frac(v, work), ctx)
    raise KeyError(name)


def _reduce_angle(x: Fraction, prec: int) -> Fraction:
    """Reduce to [-pi, pi] for the sin/cos series."""
    pi = _pi(prec)
    two_pi = 2 * pi
    if -pi <= x <= pi:
        return x
    k = round(x / two_pi)
    return x - k * two_pi


def _atan_any(x: Fraction, prec: int) -> Fraction:
    if abs(x) <= 1:
        return _atan_frac(x, prec)
    # atan(x) = sign(x)*pi/2 - atan(1/x)
    half_pi = _pi(prec) / 2
    inner = _atan_frac(1 / x, prec)
    return (half_pi - inner) if x > 0 else (-half_pi - inner)


def _asin_frac(x: Fraction, prec: int) -> Fraction:
    if abs(x) == 1:
        half_pi = _pi(prec) / 2
        return half_pi if x > 0 else -half_pi
    # asin(x) = atan(x / sqrt(1-x^2)); sqrt via Newton on Fractions.
    denom = _sqrt_frac(1 - x * x, prec)
    return _atan_any(x / denom, prec)


def _sqrt_frac(x: Fraction, prec: int) -> Fraction:
    """sqrt of a nonnegative rational to ~2^-prec via integer isqrt."""
    if x == 0:
        return Fraction(0)
    import math

    scale = 1 << (2 * prec)
    n = (x.numerator * scale) // x.denominator
    return Fraction(math.isqrt(n), 1 << prec)
