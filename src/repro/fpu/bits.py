"""Bit-level manipulation of IEEE-754 binary64 values.

FPVM lives and dies by NaN payloads: boxed pointers are encoded in the
mantissa of signaling NaNs.  Python ``float`` cannot round-trip NaN
payloads reliably (and collapses -0.0 vs 0.0 distinctions in places), so
the whole simulator carries 64-bit *bit patterns* (Python ints in
``[0, 2**64)``) and only converts at arithmetic boundaries.
"""

from __future__ import annotations

import math
import struct
from fractions import Fraction

F64_SIGN_MASK = 0x8000_0000_0000_0000
F64_EXP_MASK = 0x7FF0_0000_0000_0000
F64_FRAC_MASK = 0x000F_FFFF_FFFF_FFFF
#: The quiet bit: top bit of the 52-bit fraction. Set => quiet NaN.
F64_QNAN_BIT = 0x0008_0000_0000_0000

F64_EXP_SHIFT = 52
F64_EXP_BIAS = 1023
F64_MAX_EXP = 0x7FF

#: x64 hardware's canonical "real NaN" (what 0.0/0.0 produces): negative
#: quiet NaN with zero payload.
CANONICAL_QNAN = 0xFFF8_0000_0000_0000
POS_INF_BITS = 0x7FF0_0000_0000_0000
NEG_INF_BITS = 0xFFF0_0000_0000_0000
POS_ZERO_BITS = 0x0000_0000_0000_0000
NEG_ZERO_BITS = 0x8000_0000_0000_0000

#: Largest finite binary64 as an exact rational, used for overflow checks.
MAX_FINITE = Fraction((2**53 - 1) * 2**971)
#: Smallest positive normal / subnormal magnitudes.
MIN_NORMAL = Fraction(1, 2**1022)
MIN_SUBNORMAL = Fraction(1, 2**1074)

_PACK_D = struct.Struct("<d").pack
_UNPACK_D = struct.Struct("<d").unpack
_PACK_Q = struct.Struct("<Q").pack
_UNPACK_Q = struct.Struct("<Q").unpack


def float_to_bits(x: float) -> int:
    """Return the binary64 bit pattern of ``x`` as an unsigned int."""
    return _UNPACK_Q(_PACK_D(x))[0]


def bits_to_float(bits: int) -> float:
    """Return the Python float whose binary64 pattern is ``bits``.

    NaN payloads are *not* preserved by the returned object on all
    platforms; only call this when the value is known not to be a NaN
    whose payload matters, or when handing a value to host math.
    """
    return _UNPACK_D(_PACK_Q(bits & 0xFFFF_FFFF_FFFF_FFFF))[0]


def is_nan(bits: int) -> bool:
    """True if the pattern encodes any NaN (exp all ones, nonzero frac)."""
    return (bits & F64_EXP_MASK) == F64_EXP_MASK and (bits & F64_FRAC_MASK) != 0


def is_qnan(bits: int) -> bool:
    """True for quiet NaNs (quiet bit set)."""
    return is_nan(bits) and (bits & F64_QNAN_BIT) != 0


def is_snan(bits: int) -> bool:
    """True for signaling NaNs (NaN with quiet bit clear)."""
    return is_nan(bits) and (bits & F64_QNAN_BIT) == 0


def is_inf(bits: int) -> bool:
    """True for +/- infinity."""
    return (bits & ~F64_SIGN_MASK) == POS_INF_BITS


def is_zero(bits: int) -> bool:
    """True for +/- zero."""
    return (bits & ~F64_SIGN_MASK) == 0


def is_subnormal(bits: int) -> bool:
    """True for nonzero values with a zero biased exponent."""
    return (bits & F64_EXP_MASK) == 0 and (bits & F64_FRAC_MASK) != 0


def is_finite(bits: int) -> bool:
    """True unless the pattern is an infinity or NaN."""
    return (bits & F64_EXP_MASK) != F64_EXP_MASK


def is_negative(bits: int) -> bool:
    """True if the sign bit is set (including -0.0 and negative NaNs)."""
    return (bits & F64_SIGN_MASK) != 0


def sign_bit(bits: int) -> int:
    """The sign bit as 0 or 1."""
    return (bits >> 63) & 1


def quiet(bits: int) -> int:
    """Return ``bits`` with the quiet bit set (sNaN -> qNaN, x64 style)."""
    return bits | F64_QNAN_BIT


def exponent_field(bits: int) -> int:
    """The raw 11-bit biased exponent field."""
    return (bits & F64_EXP_MASK) >> F64_EXP_SHIFT


def fraction_field(bits: int) -> int:
    """The raw 52-bit fraction field."""
    return bits & F64_FRAC_MASK


def bits_to_fraction(bits: int) -> Fraction:
    """Exact rational value of a finite binary64 pattern.

    Raises ValueError on NaN/Inf; +/-0 both map to Fraction(0).
    """
    if not is_finite(bits):
        raise ValueError(f"non-finite bit pattern {bits:#x}")
    e = exponent_field(bits)
    f = fraction_field(bits)
    sign = -1 if bits & F64_SIGN_MASK else 1
    if e == 0:
        # Subnormal: f * 2^(1-1023-52)
        return Fraction(sign * f, 2**1074)
    mant = f | (1 << 52)
    exp = e - F64_EXP_BIAS - 52
    if exp >= 0:
        return Fraction(sign * mant * (1 << exp))
    return Fraction(sign * mant, 1 << -exp)


def fraction_to_bits(
    value: Fraction, sign_hint: int = 0, mode: str = "ne"
) -> tuple[int, bool, bool, bool]:
    """Round an exact rational to binary64 under a rounding mode.

    ``mode``: "ne" (nearest-even, the default), "dn" (toward -inf),
    "up" (toward +inf), "zr" (toward zero) — the four MXCSR RC modes.
    Returns ``(bits, inexact, overflow, underflow)`` like
    :func:`fraction_to_bits_rne`.
    """
    if mode == "ne":
        return fraction_to_bits_rne(value, sign_hint)
    if value == 0:
        return (F64_SIGN_MASK if sign_hint else 0), False, False, False
    negative = value < 0
    mag = -value if negative else value
    # Effective magnitude rounding: "zr" truncates; "dn"/"up" truncate
    # or bump depending on the sign.
    if mode == "zr":
        round_away = False
    elif mode == "dn":
        round_away = negative
    elif mode == "up":
        round_away = not negative
    else:
        raise ValueError(f"unknown rounding mode {mode!r}")

    e = _ilog2(mag)
    if e < -1022:
        q, r = _floor_to_quantum(mag, -1074)
        inexact = r
        if inexact and round_away:
            q += 1
        if q >= (1 << 52):
            bits = 1 << F64_EXP_SHIFT  # smallest normal
            result = bits | (F64_SIGN_MASK if negative else 0)
            return result, inexact, False, inexact
        result = q | (F64_SIGN_MASK if negative else 0)
        return result, inexact, False, inexact
    q, r = _floor_to_quantum(mag, e - 52)
    inexact = r
    if inexact and round_away:
        q += 1
    if q >= (1 << 53):
        q >>= 1
        e += 1
    if e > 1023:
        # Directed overflow: away-from-zero gives Inf, toward-zero the
        # largest finite (the x64 behaviour for RZ/RD/RU).
        if round_away or mode == "ne":
            result = POS_INF_BITS | (F64_SIGN_MASK if negative else 0)
        else:
            result = float_to_bits(1.7976931348623157e308)
            result |= F64_SIGN_MASK if negative else 0
        return result, True, True, False
    biased = e + F64_EXP_BIAS
    bits = (biased << F64_EXP_SHIFT) | (q & F64_FRAC_MASK)
    result = bits | (F64_SIGN_MASK if negative else 0)
    return result, inexact, False, False


def _floor_to_quantum(mag: Fraction, qexp: int) -> tuple[int, bool]:
    """floor(mag / 2^qexp) and whether anything was cut off."""
    n, d = mag.numerator, mag.denominator
    if qexp >= 0:
        d = d << qexp
    else:
        n = n << -qexp
    q, r = divmod(n, d)
    return q, r != 0


def fraction_to_bits_rne(value: Fraction, sign_hint: int = 0) -> tuple[int, bool, bool, bool]:
    """Round an exact rational to binary64 (round-to-nearest-even).

    Returns ``(bits, inexact, overflow, underflow)``.  ``underflow``
    follows the after-rounding tininess convention used by SSE: the flag
    is raised when the result is tiny (subnormal or zero from a nonzero
    value) *and* inexact.  ``sign_hint`` supplies the sign for an exact
    zero result (e.g. rounding of a negative tiny value to -0.0 is
    handled naturally; the hint covers value == 0 inputs).
    """
    if value == 0:
        return (F64_SIGN_MASK if sign_hint else 0), False, False, False

    negative = value < 0
    mag = -value if negative else value

    # Find e such that 2^e <= mag < 2^(e+1).
    e = _ilog2(mag)
    # Normal range: e in [-1022, 1023] before rounding adjustments.
    if e < -1022:
        # Subnormal candidate: quantum is 2^-1074.
        q, inexact = _round_to_quantum(mag, -1074)
        if q >= (1 << 52):
            # Rounded all the way up to the smallest normal.
            bits = 1 << F64_EXP_SHIFT
            underflow = inexact  # tiny before rounding, inexact
            result = bits | (F64_SIGN_MASK if negative else 0)
            return result, inexact, False, underflow
        bits = q  # biased exponent 0
        underflow = inexact
        result = bits | (F64_SIGN_MASK if negative else 0)
        return result, inexact, False, underflow

    # Normal: 53 significant bits, quantum 2^(e-52).
    q, inexact = _round_to_quantum(mag, e - 52)
    if q >= (1 << 53):
        q >>= 1
        e += 1
    if e > 1023:
        # Overflow to infinity (round-to-nearest always overflows to inf).
        result = POS_INF_BITS | (F64_SIGN_MASK if negative else 0)
        return result, True, True, False
    biased = e + F64_EXP_BIAS
    bits = (biased << F64_EXP_SHIFT) | (q & F64_FRAC_MASK)
    result = bits | (F64_SIGN_MASK if negative else 0)
    return result, inexact, False, False


def _ilog2(x: Fraction) -> int:
    """floor(log2(x)) for positive rationals, exactly."""
    n, d = x.numerator, x.denominator
    e = n.bit_length() - d.bit_length()
    # The bit-length estimate is off by at most one; fix up by comparing
    # n/d against 2^e and 2^(e+1) exactly.
    if e >= 0:
        if n < (d << e):
            e -= 1
    else:
        if (n << -e) < d:
            e -= 1
    # Now check the upper side.
    if e + 1 >= 0:
        if n >= (d << (e + 1)):
            e += 1
    else:
        if (n << -(e + 1)) >= d:
            e += 1
    return e


def _round_to_quantum(mag: Fraction, qexp: int) -> tuple[int, bool]:
    """Round ``mag`` to an integer multiple of 2^qexp, nearest-even.

    Returns ``(multiple, inexact)``.
    """
    # mag / 2^qexp = n / d as an exact rational.
    n, d = mag.numerator, mag.denominator
    if qexp >= 0:
        d = d << qexp
    else:
        n = n << -qexp
    q, r = divmod(n, d)
    if r == 0:
        return q, False
    # Round half to even.
    twice = 2 * r
    if twice > d or (twice == d and (q & 1)):
        q += 1
    return q, True


def ulp_bits(bits: int) -> Fraction:
    """The ULP (unit in the last place) of a finite value, as a rational."""
    if not is_finite(bits):
        raise ValueError("ulp of non-finite")
    e = exponent_field(bits)
    if e == 0:
        return MIN_SUBNORMAL
    # Normal: ulp = 2^(e - bias - 52).
    p = e - F64_EXP_BIAS - 52
    return Fraction(2**p) if p >= 0 else Fraction(1, 2**-p)


def make_qnan(payload: int, negative: bool = False) -> int:
    """Build a quiet NaN with the given 51-bit payload."""
    if payload >> 51:
        raise ValueError("payload exceeds 51 bits")
    bits = F64_EXP_MASK | F64_QNAN_BIT | payload
    return bits | (F64_SIGN_MASK if negative else 0)


def make_snan(payload: int, negative: bool = False) -> int:
    """Build a signaling NaN with the given nonzero 51-bit payload."""
    if payload >> 51:
        raise ValueError("payload exceeds 51 bits")
    if payload == 0:
        raise ValueError("sNaN payload must be nonzero (all-zero frac is Inf)")
    bits = F64_EXP_MASK | payload
    return bits | (F64_SIGN_MASK if negative else 0)


def total_order_key(bits: int) -> int:
    """A key that orders bit patterns like the IEEE totalOrder predicate
    for finite values (used by tests and by min/max tie-breaking)."""
    if bits & F64_SIGN_MASK:
        return -(bits & ~F64_SIGN_MASK)
    return bits


def float64_nextafter(bits: int, toward_bits: int) -> int:
    """nextafter on bit patterns (finite inputs)."""
    x = bits_to_float(bits)
    y = bits_to_float(toward_bits)
    return float_to_bits(math.nextafter(x, y))
