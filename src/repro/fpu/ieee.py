"""Exact IEEE-754 binary64 operation oracle.

The simulated CPU needs to know, for every SSE2 floating point
instruction, both the binary64 result *and* which exception flags the
operation raises (Invalid, Denormal-operand, Overflow, Underflow,
Inexact).  Unmasked flags become #XF traps — the event stream that
drives the whole FPVM trap-and-emulate machinery.

Flags are computed from first principles: finite operands are converted
to exact rationals, the exact mathematical result is formed, and the
rounding step reports inexact/overflow/underflow precisely.  A TwoSum
fast path avoids rational arithmetic for the (dominant) add/sub case.

Operations are keyed by short mnemonic ("add", "sub", "mul", "div",
"sqrt", "min", "max", "ucomi", "cmp_*", "cvtsi2sd", "cvttsd2si").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.fpu import bits as B


@dataclass(frozen=True)
class FPFlags:
    """The five SSE exception flags an operation raised.

    Mirrors MXCSR's IE/DE/ZE/OE/UE/PE status bits.  ``invalid`` covers
    IE; ``zero_divide`` covers ZE; ``denormal`` is the DE operand flag;
    ``overflow``/``underflow``/``inexact`` are OE/UE/PE.
    """

    invalid: bool = False
    denormal: bool = False
    zero_divide: bool = False
    overflow: bool = False
    underflow: bool = False
    inexact: bool = False

    def any(self) -> bool:
        return (
            self.invalid
            or self.denormal
            or self.zero_divide
            or self.overflow
            or self.underflow
            or self.inexact
        )

    def __or__(self, other: "FPFlags") -> "FPFlags":
        return FPFlags(
            self.invalid or other.invalid,
            self.denormal or other.denormal,
            self.zero_divide or other.zero_divide,
            self.overflow or other.overflow,
            self.underflow or other.underflow,
            self.inexact or other.inexact,
        )

    def as_mxcsr_status(self) -> int:
        """Encode as the low 6 MXCSR status bits (IE DE ZE OE UE PE)."""
        return (
            (1 if self.invalid else 0)
            | (2 if self.denormal else 0)
            | (4 if self.zero_divide else 0)
            | (8 if self.overflow else 0)
            | (16 if self.underflow else 0)
            | (32 if self.inexact else 0)
        )


NO_FLAGS = FPFlags()


@dataclass(frozen=True)
class FPResult:
    """Result bit pattern + flags of one scalar binary64 operation.

    For compare operations ``bits`` holds the flag triple packed as the
    x64 ucomisd convention (ZF, PF, CF in bits 0..2); for cvttsd2si it
    holds the two's-complement 64-bit integer result.
    """

    bits: int
    flags: FPFlags


def _operand_flags(*ops: int) -> FPFlags:
    """Denormal-operand and signaling-NaN invalid flags for operands."""
    denormal = any(B.is_subnormal(o) for o in ops)
    return FPFlags(denormal=denormal)


def _nan_result(*ops: int) -> int:
    """x64 NaN propagation for SSE scalar ops: the *first* NaN source
    operand, quieted.  (For ``addsd xmm1, xmm2`` the 'first' operand is
    the destination; callers pass operands in instruction order.)"""
    for o in ops:
        if B.is_nan(o):
            return B.quiet(o)
    return B.CANONICAL_QNAN


def _invalid_from_snan(*ops: int) -> bool:
    return any(B.is_snan(o) for o in ops)


def ieee_add(a: int, b: int, mode: str = "ne") -> FPResult:
    return _addsub(a, b, negate_b=False, mode=mode)


def ieee_sub(a: int, b: int, mode: str = "ne") -> FPResult:
    return _addsub(a, b, negate_b=True, mode=mode)


def _addsub(a: int, b: int, negate_b: bool, mode: str = "ne") -> FPResult:
    opflags = _operand_flags(a, b)
    if B.is_nan(a) or B.is_nan(b):
        inv = _invalid_from_snan(a, b)
        return FPResult(_nan_result(a, b), opflags | FPFlags(invalid=inv))

    beff = b ^ (B.F64_SIGN_MASK if negate_b else 0)
    a_inf, b_inf = B.is_inf(a), B.is_inf(beff)
    if a_inf or b_inf:
        if a_inf and b_inf and (a ^ beff) & B.F64_SIGN_MASK:
            # Inf - Inf: invalid, canonical NaN.
            return FPResult(B.CANONICAL_QNAN, opflags | FPFlags(invalid=True))
        return FPResult(a if a_inf else beff, opflags)

    # Finite + finite.  Fast path: TwoSum in host binary64 detects
    # exactness without rationals; it is valid whenever the host sum is
    # finite and normal (no double-rounding hazards at this precision).
    fa, fb = B.bits_to_float(a), B.bits_to_float(beff)
    s = fa + fb
    # A zero sum is only handled here when it is exact (fa == -fb); tiny
    # sums that *round* to zero must flag underflow and take the slow
    # path.  The host-float fast path only implements round-to-nearest.
    if mode == "ne" and math.isfinite(s) and (
        (s == 0.0 and fa == -fb) or abs(s) >= 2.2250738585072014e-308
    ):
        bv = s - fa
        err = (fa - (s - bv)) + (fb - bv)
        inexact = err != 0.0
        rb = B.float_to_bits(s)
        if s == 0.0 and fa == -fb and not inexact:
            # Exact cancellation: x64 RN gives +0 unless both inputs -0.
            if (a & B.F64_SIGN_MASK) and (beff & B.F64_SIGN_MASK):
                rb = B.NEG_ZERO_BITS
            else:
                rb = B.POS_ZERO_BITS
        return FPResult(rb, opflags | FPFlags(inexact=inexact))

    # Slow path: exact rationals (covers overflow and subnormal results).
    ra = B.bits_to_fraction(a)
    rbv = B.bits_to_fraction(beff)
    exact = ra + rbv
    if exact == 0:
        both_neg = (a & B.F64_SIGN_MASK) and (beff & B.F64_SIGN_MASK)
        # RN/RZ/RU give +0 on exact cancellation; RD gives -0.
        sign_hint = 1 if (both_neg or mode == "dn") else 0
        # exact cancellation of equal magnitudes keeps +0 except in RD
        if not both_neg and mode != "dn":
            sign_hint = 0
    else:
        sign_hint = 0
    return _round(exact, opflags, sign_hint, mode)


def ieee_mul(a: int, b: int, mode: str = "ne") -> FPResult:
    opflags = _operand_flags(a, b)
    if B.is_nan(a) or B.is_nan(b):
        inv = _invalid_from_snan(a, b)
        return FPResult(_nan_result(a, b), opflags | FPFlags(invalid=inv))
    sign = (a ^ b) & B.F64_SIGN_MASK
    if B.is_inf(a) or B.is_inf(b):
        if B.is_zero(a) or B.is_zero(b):
            return FPResult(B.CANONICAL_QNAN, opflags | FPFlags(invalid=True))
        return FPResult(B.POS_INF_BITS | sign, opflags)
    if B.is_zero(a) or B.is_zero(b):
        return FPResult(sign, opflags)  # signed zero
    exact = B.bits_to_fraction(a) * B.bits_to_fraction(b)
    return _round(exact, opflags, 1 if sign else 0, mode)


def ieee_div(a: int, b: int, mode: str = "ne") -> FPResult:
    opflags = _operand_flags(a, b)
    if B.is_nan(a) or B.is_nan(b):
        inv = _invalid_from_snan(a, b)
        return FPResult(_nan_result(a, b), opflags | FPFlags(invalid=inv))
    sign = (a ^ b) & B.F64_SIGN_MASK
    if B.is_inf(a):
        if B.is_inf(b):
            return FPResult(B.CANONICAL_QNAN, opflags | FPFlags(invalid=True))
        return FPResult(B.POS_INF_BITS | sign, opflags)
    if B.is_inf(b):
        return FPResult(sign, opflags)
    if B.is_zero(b):
        if B.is_zero(a):
            return FPResult(B.CANONICAL_QNAN, opflags | FPFlags(invalid=True))
        return FPResult(B.POS_INF_BITS | sign, opflags | FPFlags(zero_divide=True))
    if B.is_zero(a):
        return FPResult(sign, opflags)
    exact = B.bits_to_fraction(a) / B.bits_to_fraction(b)
    return _round(exact, opflags, 1 if sign else 0, mode)


def ieee_sqrt(a: int, mode: str = "ne") -> FPResult:
    opflags = _operand_flags(a)
    if B.is_nan(a):
        return FPResult(B.quiet(a), opflags | FPFlags(invalid=B.is_snan(a)))
    if B.is_zero(a):
        return FPResult(a, opflags)  # sqrt(+/-0) = +/-0
    if a & B.F64_SIGN_MASK:
        return FPResult(B.CANONICAL_QNAN, opflags | FPFlags(invalid=True))
    if B.is_inf(a):
        return FPResult(B.POS_INF_BITS, opflags)
    # Correctly-rounded sqrt: host sqrt gives the candidate; exactness is
    # decided by whether candidate^2 equals the operand as rationals.
    # (Host sqrt is correctly rounded on every IEEE platform.)
    cand = math.sqrt(B.bits_to_float(a))
    cb = B.float_to_bits(cand)
    sq = B.bits_to_fraction(cb) ** 2
    target = B.bits_to_fraction(a)
    exact = sq == target
    if not exact and mode != "ne":
        # Host sqrt rounds to nearest; nudge to the directed neighbour.
        if mode in ("dn", "zr") and sq > target:
            cb = B.float_to_bits(math.nextafter(cand, 0.0))
        elif mode == "up" and sq < target:
            cb = B.float_to_bits(math.nextafter(cand, math.inf))
    return FPResult(cb, opflags | FPFlags(inexact=not exact))


def ieee_min(a: int, b: int) -> FPResult:
    """SSE minsd semantics: if either source is NaN (or operands are
    equal), the *second* operand is returned; sNaN raises invalid."""
    opflags = _operand_flags(a, b)
    if B.is_nan(a) or B.is_nan(b):
        # minsd returns the second source whenever either operand is NaN.
        return FPResult(b, opflags | FPFlags(invalid=_invalid_from_snan(a, b)))
    fa, fb = B.bits_to_float(a), B.bits_to_float(b)
    if fa == fb:
        return FPResult(b, opflags)  # minsd returns src2 on equality
    return FPResult(a if fa < fb else b, opflags)


def ieee_max(a: int, b: int) -> FPResult:
    opflags = _operand_flags(a, b)
    if B.is_nan(a) or B.is_nan(b):
        return FPResult(b, opflags | FPFlags(invalid=_invalid_from_snan(a, b)))
    fa, fb = B.bits_to_float(a), B.bits_to_float(b)
    if fa == fb:
        return FPResult(b, opflags)
    return FPResult(a if fa > fb else b, opflags)


#: ucomisd packs (ZF, PF, CF) into bits (0, 1, 2) of the result.
UCOMI_UNORDERED = 0b111
UCOMI_LESS = 0b100
UCOMI_GREATER = 0b000
UCOMI_EQUAL = 0b001


def ieee_ucomi(a: int, b: int) -> FPResult:
    """ucomisd/comisd: sets ZF/PF/CF.  ucomisd signals invalid only on
    sNaN; comisd also on qNaN (callers pass ``signal_qnan=True`` via
    ieee_comi)."""
    return _comi(a, b, signal_qnan=False)


def ieee_comi(a: int, b: int) -> FPResult:
    return _comi(a, b, signal_qnan=True)


def _comi(a: int, b: int, signal_qnan: bool) -> FPResult:
    opflags = _operand_flags(a, b)
    if B.is_nan(a) or B.is_nan(b):
        inv = _invalid_from_snan(a, b) or signal_qnan
        return FPResult(UCOMI_UNORDERED, opflags | FPFlags(invalid=inv))
    fa, fb = B.bits_to_float(a), B.bits_to_float(b)
    if fa == fb:
        return FPResult(UCOMI_EQUAL, opflags)
    return FPResult(UCOMI_LESS if fa < fb else UCOMI_GREATER, opflags)


#: cmpsd predicates -> (ordered_result_fn, signals_on_qnan, nan_result)
_CMP_PREDICATES = {
    "eq": (lambda c: c == 0, False, False),
    "lt": (lambda c: c < 0, True, False),
    "le": (lambda c: c <= 0, True, False),
    "unord": (None, False, True),
    "neq": (lambda c: c != 0, False, True),
    "nlt": (lambda c: not (c < 0), True, True),
    "nle": (lambda c: not (c <= 0), True, True),
    "ord": (None, False, False),
}

ALL_ONES = 0xFFFF_FFFF_FFFF_FFFF


def ieee_cmp(pred: str, a: int, b: int) -> FPResult:
    """cmpsd/cmpltsd family: result is an all-ones / all-zeros mask."""
    fn, signal_qnan, nan_result = _CMP_PREDICATES[pred]
    opflags = _operand_flags(a, b)
    if B.is_nan(a) or B.is_nan(b):
        inv = _invalid_from_snan(a, b) or (signal_qnan and (B.is_qnan(a) or B.is_qnan(b)))
        return FPResult(ALL_ONES if nan_result else 0, opflags | FPFlags(invalid=inv))
    if pred == "unord":
        return FPResult(0, opflags)
    if pred == "ord":
        return FPResult(ALL_ONES, opflags)
    fa, fb = B.bits_to_float(a), B.bits_to_float(b)
    c = -1 if fa < fb else (0 if fa == fb else 1)
    return FPResult(ALL_ONES if fn(c) else 0, opflags)


def ieee_cvtsi2sd(value: int) -> FPResult:
    """Signed 64-bit integer -> binary64 (round-to-nearest-even)."""
    if value & (1 << 63):
        value -= 1 << 64
    return _round(Fraction(value), NO_FLAGS, 1 if value < 0 else 0)


def ieee_cvttsd2si(a: int) -> FPResult:
    """binary64 -> signed 64-bit integer, truncation.  Out-of-range and
    NaN produce the x64 'integer indefinite' value with invalid set."""
    opflags = _operand_flags(a)
    indefinite = 0x8000_0000_0000_0000
    if B.is_nan(a) or B.is_inf(a):
        return FPResult(indefinite, opflags | FPFlags(invalid=True))
    f = B.bits_to_float(a)
    t = math.trunc(f)
    if not (-(2**63) <= t <= 2**63 - 1):
        return FPResult(indefinite, opflags | FPFlags(invalid=True))
    inexact = t != f
    return FPResult(t & ALL_ONES, opflags | FPFlags(inexact=inexact))


def ieee_cvtsd2si(a: int) -> FPResult:
    """binary64 -> signed 64-bit integer, round-to-nearest-even."""
    opflags = _operand_flags(a)
    indefinite = 0x8000_0000_0000_0000
    if B.is_nan(a) or B.is_inf(a):
        return FPResult(indefinite, opflags | FPFlags(invalid=True))
    exact = B.bits_to_fraction(a)
    q, inexact = B._round_to_quantum(abs(exact), 0)
    t = -q if exact < 0 else q
    if not (-(2**63) <= t <= 2**63 - 1):
        return FPResult(indefinite, opflags | FPFlags(invalid=True))
    return FPResult(t & ALL_ONES, opflags | FPFlags(inexact=inexact))


def _round(exact: Fraction, opflags: FPFlags, sign_hint: int,
           mode: str = "ne") -> FPResult:
    rb, inexact, overflow, underflow = B.fraction_to_bits(exact, sign_hint, mode)
    return FPResult(
        rb,
        opflags
        | FPFlags(overflow=overflow, underflow=underflow, inexact=inexact or overflow),
    )


def ieee_fma(a: int, b: int, c: int, mode: str = "ne") -> FPResult:
    """Fused multiply-add: a*b + c with one rounding (FMA3 semantics)."""
    opflags = _operand_flags(a, b, c)
    if B.is_nan(a) or B.is_nan(b) or B.is_nan(c):
        inv = _invalid_from_snan(a, b, c)
        return FPResult(_nan_result(a, b, c), opflags | FPFlags(invalid=inv))
    # Infinity algebra mirrors mul-then-add.
    if B.is_inf(a) or B.is_inf(b):
        if B.is_zero(a) or B.is_zero(b):
            return FPResult(B.CANONICAL_QNAN, opflags | FPFlags(invalid=True))
        psign = (a ^ b) & B.F64_SIGN_MASK
        if B.is_inf(c) and (c ^ psign) & B.F64_SIGN_MASK:
            return FPResult(B.CANONICAL_QNAN, opflags | FPFlags(invalid=True))
        return FPResult(B.POS_INF_BITS | psign, opflags)
    if B.is_inf(c):
        return FPResult(c, opflags)
    exact = B.bits_to_fraction(a) * B.bits_to_fraction(b) + B.bits_to_fraction(c)
    if exact == 0:
        # Signed-zero rule: -0 only when product and addend are both
        # negative zeros; exact cancellation gives +0 under RN (and -0
        # under RD, as for add).
        psign = (a ^ b) & B.F64_SIGN_MASK
        prod_zero = B.is_zero(a) or B.is_zero(b)
        if prod_zero:
            neg = bool(psign) and bool(c & B.F64_SIGN_MASK)
        else:
            neg = mode == "dn"
        return _round(exact, opflags, 1 if neg else 0, mode)
    return _round(exact, opflags, 0, mode)


_BINARY_OPS = {
    "add": ieee_add,
    "sub": ieee_sub,
    "mul": ieee_mul,
    "div": ieee_div,
    "min": ieee_min,
    "max": ieee_max,
    "ucomi": ieee_ucomi,
    "comi": ieee_comi,
}

_UNARY_OPS = {
    "sqrt": ieee_sqrt,
    "cvtsi2sd": ieee_cvtsi2sd,
    "cvttsd2si": ieee_cvttsd2si,
    "cvtsd2si": ieee_cvtsd2si,
}


#: ops whose result depends on MXCSR.RC.
_MODE_SENSITIVE = frozenset({"add", "sub", "mul", "div", "sqrt", "fma"})


def ieee_op(op: str, *operands: int, mode: str = "ne") -> FPResult:
    """Dispatch by mnemonic.  ``cmp_<pred>`` selects a compare
    predicate; ``mode`` is the MXCSR rounding mode for the ops it
    affects (compares, min/max and the conversions with architectural
    rounding behaviour ignore it)."""
    if op in _BINARY_OPS:
        if op in _MODE_SENSITIVE:
            return _BINARY_OPS[op](*operands, mode=mode)
        return _BINARY_OPS[op](*operands)
    if op in _UNARY_OPS:
        if op in _MODE_SENSITIVE:
            return _UNARY_OPS[op](*operands, mode=mode)
        return _UNARY_OPS[op](*operands)
    if op == "fma":
        return ieee_fma(*operands, mode=mode)
    if op.startswith("cmp_"):
        return ieee_cmp(op[4:], *operands)
    raise KeyError(f"unknown IEEE op {op!r}")
