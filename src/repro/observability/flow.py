"""Exception-flow recorder: NaN-box provenance and trap heatmaps.

The FlowFPX observation (PAPERS.md): an FP virtualization layer only
becomes a *debugging instrument* once every boxed value carries its
provenance — where it was born, which trap class created it, which
instructions propagated it, and where it left boxed space.  This
module is that layer.

One :class:`FlowRecorder` hangs off an attached FPVM (``vm.flow``)
when the ``FPVM_FLOW`` knob (or the ``flow`` config field) enables it.
The recorder is fed from a single seam — the emulator's
resolve/produce/demote value-flow helpers plus the VM's trap
entry/exit — so the interpreter, uop, chained, and traced execution
tiers all produce the *same* flow graph for the same guest: every tier
funnels FP trap handling through ``Emulator.emulate``, and the
recorder never reads tier state.

Recorded structure
------------------
- **Trap heatmap** — per-RIP counters of delivered #XF traps split by
  trap class (``invalid``/``divzero``/``denormal``/``overflow``/
  ``underflow``/``inexact``, plus ``disabled`` for trap-everything
  mode's maskless deliveries).
- **Births** — a box's *birth site* is ``(rip, trap_class)``: the
  instruction that produced it and the class of the trap being
  serviced (``fcall`` for boxes born in libm wrappers, outside any
  trap).
- **Edges** — ``src_site -> dst_site`` propagation: the new box's
  value was computed from boxes born at ``src_site``.
- **Kills** — ``(birth_site, reason)`` where a box's value left boxed
  space: ``consumed`` (compare/convert read it without producing a
  box), ``clamped`` (the op produced a real NaN, collapsed to the
  canonical quiet NaN), ``demoted`` (demoted in place at a patch site,
  wrapper, or move), ``collected`` (the GC swept it — the overwritten/
  unreachable endpoint).

Everything is keyed by small tuples and counted, never timestamped, so
the structures are deterministic and directly comparable across tiers
(:meth:`FlowRecorder.fingerprint`).
"""

from __future__ import annotations

import os
from collections import Counter, defaultdict

#: every #XF class a delivered trap can carry, in classification
#: priority order (an op can raise several flags at once; the class is
#: the highest-priority flag, mirroring how the x64 #XF priority is
#: usually read).  ``disabled`` marks trap-everything deliveries
#: (``trap_all_fp``: the FP unit is off, no MXCSR flags raised).
TRAP_CLASSES = ("invalid", "divzero", "denormal", "overflow",
                "underflow", "inexact")

#: kill reasons, for reference/rendering.
KILL_REASONS = ("consumed", "clamped", "demoted", "collected")

_FALSEY = {"", "0", "off", "false", "no"}


def flow_enabled_default() -> bool:
    """The ``FPVM_FLOW`` environment knob (default *off*: provenance
    is an observability feature, not part of the virtualization)."""
    return os.environ.get("FPVM_FLOW", "0").strip().lower() not in _FALSEY


def classify_flags(flags) -> str:
    """Map one delivered trap's :class:`~repro.fpu.ieee.FPFlags` to its
    trap class.  Priority must stay in sync with
    :meth:`repro.machine.costs.CostModel.xf_trap_cost`."""
    if flags is None or not flags.any():
        return "disabled"
    if flags.invalid:
        return "invalid"
    if flags.zero_divide:
        return "divzero"
    if flags.denormal:
        return "denormal"
    if flags.overflow:
        return "overflow"
    if flags.underflow:
        return "underflow"
    return "inexact"


class FlowRecorder:
    """Provenance state for one attached FPVM.

    The hooks are written to cost nothing when the recorder is absent:
    every call site guards on ``vm.flow is not None``, and the hooks
    themselves only touch plain dict/Counter state — no allocation
    beyond the records, no hashing of anything but small tuples.
    """

    def __init__(self) -> None:
        #: rip -> Counter(trap class -> deliveries).
        self.traps_by_rip: dict[int, Counter] = defaultdict(Counter)
        self.traps_by_class: Counter = Counter()
        #: birth site (rip, class) -> boxes born there.
        self.births: Counter = Counter()
        #: (src_site, dst_site) -> propagation count.
        self.edges: Counter = Counter()
        #: (birth_site, reason) -> kill count.
        self.kills: Counter = Counter()
        #: live box ptr -> (generation, birth site).  Generations make
        #: free-list pointer reuse unambiguous.
        self.live: dict[int, tuple[int, tuple]] = {}
        self.generation = 0
        self._trap_class: str | None = None
        self._op_rip = 0
        self._srcs: list[tuple] = []

    # ------------------------------------------------------ trap window
    def begin_trap(self, rip: int, trap_class: str) -> None:
        """One #XF delivery: heatmap bump + the birth class for every
        box produced while servicing it (the whole emulated sequence)."""
        self.traps_by_rip[rip][trap_class] += 1
        self.traps_by_class[trap_class] += 1
        self._trap_class = trap_class

    def end_trap(self) -> None:
        self._trap_class = None

    # -------------------------------------------------------- op window
    def begin_op(self, rip: int) -> None:
        self._op_rip = rip
        self._srcs.clear()

    def note_source(self, ptr: int) -> None:
        """An owned box was unboxed as an operand of the current op."""
        rec = self.live.get(ptr)
        if rec is not None:
            self._srcs.append(rec[1])

    def note_birth(self, ptr: int) -> None:
        """The current op boxed its result at ``ptr``: a birth, with
        propagation edges from every source drained since the last
        produce (per-lane pairing falls out of the emulator's
        resolve/resolve/produce order)."""
        site = (self._op_rip, self._trap_class or "fcall")
        self.generation += 1
        self.live[ptr] = (self.generation, site)
        self.births[site] += 1
        for src in self._srcs:
            self.edges[(src, site)] += 1
        self._srcs.clear()

    def note_clamp(self) -> None:
        """The current op produced a *real* NaN, clamped to the
        canonical quiet NaN instead of boxed: its sources die here."""
        for src in self._srcs:
            self.kills[(src, "clamped")] += 1
        self._srcs.clear()

    def end_op(self) -> None:
        """Sources never drained by a produce/clamp were consumed — the
        value exited boxed space (compare flags, integer convert)."""
        for src in self._srcs:
            self.kills[(src, "consumed")] += 1
        self._srcs.clear()

    # ------------------------------------------------------- kill sites
    def record_demote(self, ptr: int) -> None:
        """A boxed pattern was collapsed to plain binary64 in place
        (patch-site demotion, demoting wrapper, masked xorpd)."""
        rec = self.live.get(ptr)
        if rec is not None:
            self.kills[(rec[1], "demoted")] += 1

    def on_free(self, dead_ptrs) -> None:
        """GC sweep callback: every swept box was overwritten or
        dropped by the guest and is now unreachable."""
        for ptr in dead_ptrs:
            rec = self.live.pop(ptr, None)
            if rec is not None:
                self.kills[(rec[1], "collected")] += 1

    # -------------------------------------------------------- summaries
    def fingerprint(self) -> tuple:
        """Canonical, order-independent digest of the whole flow graph;
        equal across execution tiers for the same guest + config."""
        return (
            tuple(sorted((rip, tuple(sorted(c.items())))
                         for rip, c in self.traps_by_rip.items())),
            tuple(sorted(self.births.items())),
            tuple(sorted(self.edges.items())),
            tuple(sorted(self.kills.items())),
        )

    def kills_by_reason(self) -> dict[str, int]:
        out: Counter = Counter()
        for (_site, reason), n in self.kills.items():
            out[reason] += n
        return dict(out)

    def birth_classes(self) -> dict[str, int]:
        out: Counter = Counter()
        for (_rip, cls), n in self.births.items():
            out[cls] += n
        return dict(out)

    def as_dict(self) -> dict:
        """JSON-safe summary for :class:`~repro.harness.runner.HostPerf`."""
        return {
            "births": sum(self.births.values()),
            "birth_sites": len(self.births),
            "edges": sum(self.edges.values()),
            "distinct_edges": len(self.edges),
            "kills_by_reason": self.kills_by_reason(),
            "traps_by_class": dict(self.traps_by_class),
            "birth_classes": self.birth_classes(),
            "live_boxes": len(self.live),
        }
