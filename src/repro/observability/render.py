"""Paper-style text renderers for the exception-flow layer: per-RIP
trap heatmaps and NaN-flow graphs (birth -> propagation -> kill).

Same conventions as :mod:`repro.harness.report`: plain fixed-width
tables, deterministic ordering, no timestamps — so the output can sit
under the golden-figure diff tests.
"""

from __future__ import annotations

from repro.observability.flow import KILL_REASONS, TRAP_CLASSES

#: column order for heatmap tables (the six MXCSR classes; the
#: ``disabled`` trap-everything class is appended only when present).
_HEAT_COLS = TRAP_CLASSES


def _mnemonic(program, rip: int) -> str:
    if program is None:
        return ""
    instr = program.by_addr.get(rip)
    return instr.mnemonic if instr is not None else "?"


def render_trap_heatmap(recorder, program=None, title: str = "Trap heatmap",
                        top: int = 12) -> str:
    """Per-RIP trap-class table, hottest sites first (ties by address)."""
    lines = [title, ""]
    header = f"  {'rip':>8} {'insn':<10}" + "".join(
        f"{c[:6]:>8}" for c in _HEAT_COLS) + f"{'total':>8}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    rows = sorted(recorder.traps_by_rip.items(),
                  key=lambda kv: (-sum(kv[1].values()), kv[0]))
    shown = rows[:top]
    for rip, counts in shown:
        total = sum(counts.values())
        cells = "".join(f"{counts.get(c, 0):>8}" for c in _HEAT_COLS)
        lines.append(f"  {rip:>#8x} {_mnemonic(program, rip):<10}"
                     f"{cells}{total:>8}")
    if len(rows) > len(shown):
        rest = sum(sum(c.values()) for _rip, c in rows[len(shown):])
        lines.append(f"  ... {len(rows) - len(shown)} more sites, "
                     f"{rest} traps")
    lines.append("")
    totals = "".join(f"{recorder.traps_by_class.get(c, 0):>8}"
                     for c in _HEAT_COLS)
    total = sum(recorder.traps_by_class.values())
    lines.append(f"  {'total':>8} {'':<10}{totals}{total:>8}")
    disabled = recorder.traps_by_class.get("disabled", 0)
    if disabled:
        lines.append(f"  (+ {disabled} trap-everything deliveries with "
                     "no MXCSR flags)")
    return "\n".join(lines)


def _site(program, site: tuple) -> str:
    rip, cls = site
    return f"{rip:#x}/{_mnemonic(program, rip)}({cls})"


def render_flow_graph(recorder, program=None, title: str = "NaN-flow graph",
                      top: int = 10) -> str:
    """Birth sites, propagation edges and kill sites as sorted lists."""
    lines = [title, ""]

    lines.append(f"  births ({sum(recorder.births.values())} boxes, "
                 f"{len(recorder.births)} sites):")
    births = sorted(recorder.births.items(), key=lambda kv: (-kv[1], kv[0]))
    for site, n in births[:top]:
        lines.append(f"    {_site(program, site):<34} x{n}")
    if len(births) > top:
        lines.append(f"    ... {len(births) - top} more sites")

    lines.append(f"  propagation edges ({sum(recorder.edges.values())} "
                 f"flows, {len(recorder.edges)} distinct):")
    edges = sorted(recorder.edges.items(), key=lambda kv: (-kv[1], kv[0]))
    for (src, dst), n in edges[:top]:
        lines.append(f"    {_site(program, src):<34} -> "
                     f"{_site(program, dst):<34} x{n}")
    if len(edges) > top:
        lines.append(f"    ... {len(edges) - top} more edges")

    by_reason = recorder.kills_by_reason()
    lines.append("  kills ("
                 + ", ".join(f"{r}: {by_reason.get(r, 0)}"
                             for r in KILL_REASONS) + "):")
    kills = sorted(recorder.kills.items(), key=lambda kv: (-kv[1], kv[0]))
    for (site, reason), n in kills[:top]:
        lines.append(f"    {_site(program, site):<34} {reason:<10} x{n}")
    if len(kills) > top:
        lines.append(f"    ... {len(kills) - top} more kill sites")
    lines.append(f"  live at exit: {len(recorder.live)} boxes")
    return "\n".join(lines)
