"""Exception-flow observability (the FlowFPX-style layer): NaN-box
provenance records, per-RIP trap heatmaps, and NaN-flow graphs over
the FPVM trap/emulation machinery.  See :mod:`repro.observability.flow`.
"""

from repro.observability.flow import (
    KILL_REASONS,
    TRAP_CLASSES,
    FlowRecorder,
    classify_flags,
    flow_enabled_default,
)
from repro.observability.render import render_flow_graph, render_trap_heatmap

__all__ = [
    "KILL_REASONS",
    "TRAP_CLASSES",
    "FlowRecorder",
    "classify_flags",
    "flow_enabled_default",
    "render_flow_graph",
    "render_trap_heatmap",
]
