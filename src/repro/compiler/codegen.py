"""Code generation: AST -> assembly text -> Program.

Design (deliberately close to what -O1 compilers emit for scalar FP
code, because the workloads' instruction mix is what the paper's
sequence analysis measures):

- double expressions evaluate on a virtual register stack xmm0..xmm12,
  depth-indexed; binary ops combine xmm(d), xmm(d+1) into xmm(d);
- integer expressions use the scratch GPRs rax, rcx, rdx, rsi, r8, r9
  the same way;
- all named variables (double and int) live in rbp-relative stack
  slots; arrays are static data symbols addressed via rbx;
- function calls spill the live xmm depth to a frame scratch area
  (every FP register is caller-save in the SysV ABI);
- ``unroll=N`` on :meth:`Function.loop` duplicates loop bodies, the
  §6.3 knob that lengthens emulatable instruction sequences.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from repro.compiler import ast as A
from repro.machine.assembler import assemble
from repro.machine.program import Program

MAX_FP_DEPTH = 12
_INT_REGS = ("rax", "rcx", "rdx", "rsi", "r8", "r9")

#: libm functions the compiler may call without declaration.
LIBM = frozenset(
    {"sin", "cos", "tan", "asin", "acos", "atan", "atan2", "exp", "log",
     "fabs", "pow", "fmod"}
)
_VOID_HOST = frozenset({"print_f64", "print_f64_pair", "print_i64", "print_str"})


class CompileError(Exception):
    pass


@dataclass
class Function:
    name: str
    params: tuple = ()       # double parameter names (xmm0..)
    iparams: tuple = ()      # integer parameter names (rdi, rsi... reserved)
    body: list = field(default_factory=list)

    def emit(self, stmt) -> None:
        self.body.append(stmt)


class Module:
    """A compilation unit: functions + static data.

    ``fuse_fma=True`` turns ``Bin('+', Bin('*', a, b), c)`` (and the
    commuted form) into fused multiply-adds, like compiling with
    ``-mfma``: fewer instructions, single rounding — which changes both
    numerics and the trap/sequence profile (a studied ablation).
    """

    def __init__(self, fuse_fma: bool = False) -> None:
        self.functions: dict[str, Function] = {}
        self._data_lines: list[str] = []
        self._label_counter = 0
        self.fuse_fma = fuse_fma

    # ----------------------------------------------------------- builders
    def function(self, name: str, params: tuple = ()) -> Function:
        if name in self.functions:
            raise CompileError(f"duplicate function {name!r}")
        fn = Function(name, tuple(params))
        self.functions[name] = fn
        return fn

    def data_double(self, name: str, values) -> None:
        vals = ", ".join(repr(float(v)) for v in values)
        self._data_lines.append(f"{name}: .double {vals}")

    def data_array(self, name: str, count: int) -> None:
        self._data_lines.append(f"{name}: .space {8 * count}")

    def data_quad(self, name: str, values) -> None:
        vals = ", ".join(str(int(v)) for v in values)
        self._data_lines.append(f"{name}: .quad {vals}")

    # -------------------------------------------------------------- emit
    def compile(self) -> Program:
        return assemble(self.emit_asm())

    def emit_asm(self) -> str:
        if "main" not in self.functions:
            raise CompileError("module has no main()")
        # Compile text first: constants are interned into the data
        # section as function bodies reference them.
        text: list[str] = []
        for fn in self.functions.values():
            text.extend(_FunctionCompiler(self, fn).compile())
        lines: list[str] = []
        if self._data_lines:
            lines.append(".data")
            lines.extend(self._data_lines)
        lines.append(".text")
        lines.extend(text)
        return "\n".join(lines) + "\n"

    def fresh_label(self, stem: str) -> str:
        self._label_counter += 1
        return f".L{stem}_{self._label_counter}"


class _FunctionCompiler:
    def __init__(self, module: Module, fn: Function):
        self.module = module
        self.fn = fn
        self.lines: list[str] = []
        self.slots: dict[str, int] = {}   # var name -> rbp offset (positive)
        self._next_slot = 8
        #: peephole state: the variable slot whose value is known to be
        #: live in xmm0 (elides the store-then-immediately-reload chatter
        #: a real register allocator would avoid).
        self._xmm0_slot: int | None = None

    # ------------------------------------------------------------- frame
    def _slot(self, name: str) -> int:
        off = self.slots.get(name)
        if off is None:
            off = self._next_slot
            self.slots[name] = off
            self._next_slot += 8
        return off

    def _var_ref(self, name: str) -> str:
        if name not in self.slots:
            raise CompileError(f"undefined variable {name!r} in {self.fn.name}")
        return f"[rbp - {self.slots[name]}]"

    # ------------------------------------------------------------ emit
    def compile(self) -> list[str]:
        body_lines: list[str] = []
        self.lines = body_lines
        for name in self.fn.params:
            self._slot(name)
        # Two passes would be cleaner for frame sizing; instead reserve a
        # generous spill region after visiting (offsets are emitted
        # symbolically via rbp so late sizing is safe).
        for i, name in enumerate(self.fn.params):
            if i >= 8:
                raise CompileError("more than 8 double params unsupported")
            body_lines.append(f"  movsd {self._var_ref(name)}, xmm{i}")
        for stmt in self.fn.body:
            self._stmt(stmt)
        if not self.fn.body or not isinstance(self.fn.body[-1], A.Return):
            self._emit_epilogue()

        if self._next_slot > _VAR_BUDGET:
            raise CompileError(
                f"{self.fn.name} declares too many locals "
                f"({self._next_slot // 8} > {_VAR_BUDGET // 8})"
            )
        # Frame: the fixed variable band plus the xmm spill band.
        frame = _VAR_BUDGET + 8 * (MAX_FP_DEPTH + 2)
        frame = (frame + 15) & ~15
        out = [f"{self.fn.name}:"]
        out.append("  push rbp")
        out.append("  mov rbp, rsp")
        out.append(f"  sub rsp, {frame}")
        out.extend(body_lines)
        return out

    def _emit_epilogue(self) -> None:
        self.lines.append("  mov rsp, rbp")
        self.lines.append("  pop rbp")
        self.lines.append("  ret")

    def _asm(self, line: str) -> None:
        self.lines.append(f"  {line}")
        # Peephole bookkeeping: anything that can change xmm0 (or jump
        # somewhere that might) kills the cached slot mapping.
        parts = line.split(None, 2)
        mn = parts[0]
        if mn == "call" or mn.startswith("j") or mn == "ret":
            self._xmm0_slot = None
        elif len(parts) > 1 and parts[1].rstrip(",") == "xmm0":
            self._xmm0_slot = None

    def _label(self, name: str) -> None:
        self.lines.append(f"{name}:")
        self._xmm0_slot = None  # control-flow join: nothing is known

    # ------------------------------------------------------- statements
    def _stmt(self, stmt) -> None:
        if isinstance(stmt, A.Let):
            self._slot(stmt.name)
            self._expr(stmt.expr, 0)
            self._asm(f"movsd {self._var_ref(stmt.name)}, xmm0")
            self._xmm0_slot = self.slots[stmt.name]
        elif isinstance(stmt, A.ILet):
            self._slot(stmt.name)
            self._iexpr(stmt.expr, 0)
            self._asm(f"mov {self._var_ref(stmt.name)}, rax")
            if self._xmm0_slot == self.slots[stmt.name]:
                self._xmm0_slot = None
        elif isinstance(stmt, A.Store):
            self._expr(stmt.expr, 0)
            self._iexpr(stmt.index, 0)
            self._asm(f"mov rbx, {stmt.array}")
            self._asm("movsd [rbx + rax*8], xmm0")
        elif isinstance(stmt, A.For):
            self._for(stmt)
        elif isinstance(stmt, A.While):
            self._while(stmt)
        elif isinstance(stmt, A.If):
            self._if(stmt)
        elif isinstance(stmt, A.Print):
            self._expr(stmt.expr, 0)
            self._asm("call print_f64")
        elif isinstance(stmt, A.PrintPair):
            self._expr(stmt.left, 0)
            self._expr(stmt.right, 1)
            self._asm("call print_f64_pair")
        elif isinstance(stmt, A.PrintI):
            self._iexpr(stmt.expr, 0)
            self._asm("mov rdi, rax")
            self._asm("call print_i64")
        elif isinstance(stmt, A.CallStmt):
            self._call(stmt.call, 0, want_result=False)
        elif isinstance(stmt, A.Return):
            if stmt.expr is not None:
                self._expr(stmt.expr, 0)
            self._emit_epilogue()
        else:
            raise CompileError(f"unknown statement {stmt!r}")

    def _for(self, stmt: A.For) -> None:
        self._slot(stmt.var)
        self._iexpr(stmt.start, 0)
        self._asm(f"mov {self._var_ref(stmt.var)}, rax")
        check = self.module.fresh_label("for_check")
        top = self.module.fresh_label("for_body")
        self._asm(f"jmp {check}")
        self._label(top)
        for s in stmt.body:
            self._stmt(s)
        self._asm(f"mov rax, {self._var_ref(stmt.var)}")
        self._asm("inc rax")
        self._asm(f"mov {self._var_ref(stmt.var)}, rax")
        self._label(check)
        self._iexpr(stmt.end, 1)  # end -> rcx
        self._asm(f"mov rax, {self._var_ref(stmt.var)}")
        self._asm("cmp rax, rcx")
        self._asm(f"jl {top}")

    def _while(self, stmt: A.While) -> None:
        check = self.module.fresh_label("while_check")
        end = self.module.fresh_label("while_end")
        self._label(check)
        self._branch_if_false(stmt.cond, end)
        for s in stmt.body:
            self._stmt(s)
        self._asm(f"jmp {check}")
        self._label(end)

    def _if(self, stmt: A.If) -> None:
        orelse = self.module.fresh_label("else")
        end = self.module.fresh_label("endif")
        self._branch_if_false(stmt.cond, orelse if stmt.orelse else end)
        for s in stmt.then:
            self._stmt(s)
        if stmt.orelse:
            self._asm(f"jmp {end}")
            self._label(orelse)
            for s in stmt.orelse:
                self._stmt(s)
        self._label(end)

    # ------------------------------------------------------- conditions
    _FBRANCH_FALSE = {"<": "jae", "<=": "ja", ">": "jbe", ">=": "jb",
                      "==": "jne", "!=": "je"}
    _IBRANCH_FALSE = {"<": "jge", "<=": "jg", ">": "jle", ">=": "jl",
                      "==": "jne", "!=": "je"}

    def _branch_if_false(self, cond, target: str) -> None:
        if isinstance(cond, A.FCmp):
            self._expr(cond.left, 0)
            self._expr(cond.right, 1)
            self._asm("ucomisd xmm0, xmm1")
            self._asm(f"{self._FBRANCH_FALSE[cond.op]} {target}")
        elif isinstance(cond, A.ICmp):
            self._iexpr(cond.left, 0)
            self._iexpr(cond.right, 1)
            self._asm("cmp rax, rcx")
            self._asm(f"{self._IBRANCH_FALSE[cond.op]} {target}")
        else:
            raise CompileError(f"bad condition {cond!r}")

    # ------------------------------------------------- double expressions
    def _expr(self, expr, depth: int) -> None:
        """Evaluate into xmm{depth}."""
        if depth > MAX_FP_DEPTH:
            raise CompileError("expression too deep: spilling unsupported")
        reg = f"xmm{depth}"
        if isinstance(expr, A.Num):
            label = self._constant(expr.value)
            self._asm(f"movsd {reg}, [rip + {label}]")
        elif isinstance(expr, A.Var):
            if (
                depth == 0
                and self._xmm0_slot is not None
                and self.slots.get(expr.name) == self._xmm0_slot
            ):
                return  # value already live in xmm0 (peephole)
            self._asm(f"movsd {reg}, {self._var_ref(expr.name)}")
        elif isinstance(expr, A.Bin):
            fused = self._try_fuse_fma(expr, depth)
            if not fused:
                self._expr(expr.left, depth)
                self._expr(expr.right, depth + 1)
                op = {"+": "addsd", "-": "subsd", "*": "mulsd", "/": "divsd"}[expr.op]
                self._asm(f"{op} {reg}, xmm{depth + 1}")
        elif isinstance(expr, A.Fma):
            self._emit_fma(expr.a, expr.b, expr.c, depth)
        elif isinstance(expr, A.Neg):
            self._expr(expr.expr, depth)
            self._asm(f"xorpd {reg}, [rip + {self._signmask()}]")
        elif isinstance(expr, A.Sqrt):
            self._expr(expr.expr, depth)
            self._asm(f"sqrtsd {reg}, {reg}")
        elif isinstance(expr, A.Min):
            self._expr(expr.left, depth)
            self._expr(expr.right, depth + 1)
            self._asm(f"minsd {reg}, xmm{depth + 1}")
        elif isinstance(expr, A.Max):
            self._expr(expr.left, depth)
            self._expr(expr.right, depth + 1)
            self._asm(f"maxsd {reg}, xmm{depth + 1}")
        elif isinstance(expr, A.Load):
            self._iexpr(expr.index, 0)
            self._asm(f"mov rbx, {expr.array}")
            self._asm(f"movsd {reg}, [rbx + rax*8]")
        elif isinstance(expr, A.Cast):
            self._iexpr(expr.expr, 0)
            self._asm(f"cvtsi2sd {reg}, rax")
        elif isinstance(expr, A.Call):
            self._call(expr, depth, want_result=True)
        else:
            raise CompileError(f"unknown expression {expr!r}")

    def _try_fuse_fma(self, expr: "A.Bin", depth: int) -> bool:
        if not self.module.fuse_fma or expr.op != "+":
            return False
        if isinstance(expr.left, A.Bin) and expr.left.op == "*":
            self._emit_fma(expr.left.left, expr.left.right, expr.right, depth)
            return True
        if isinstance(expr.right, A.Bin) and expr.right.op == "*":
            self._emit_fma(expr.right.left, expr.right.right, expr.left, depth)
            return True
        return False

    def _emit_fma(self, a, b, c, depth: int) -> None:
        """vfmadd213sd dst, src2, src3: dst = src2*dst + src3."""
        if depth + 2 > MAX_FP_DEPTH:
            raise CompileError("expression too deep: spilling unsupported")
        self._expr(a, depth)          # multiplicand in dst
        self._expr(b, depth + 1)      # multiplier in src2
        self._expr(c, depth + 2)      # addend
        self._asm(f"vfmadd213sd xmm{depth}, xmm{depth + 1}, xmm{depth + 2}")

    def _call(self, call: A.Call, depth: int, want_result: bool) -> None:
        known = call.name in LIBM or call.name in _VOID_HOST or call.name in self.module.functions
        if not known:
            raise CompileError(f"call to unknown function {call.name!r}")
        # Evaluate args above the live depth, then spill live regs.
        for i, arg in enumerate(call.args):
            self._expr(arg, depth + i)
        # Spill xmm0..depth-1 (live temporaries) to the frame scratch.
        for i in range(depth):
            self._asm(f"movsd [rbp - {self._spill_slot(i)}], xmm{i}")
        # Move evaluated args (sitting at xmm{depth}..) down to xmm0..
        for i in range(len(call.args)):
            src = depth + i
            if src != i:
                # Save via scratch slot to avoid clobbering when src < i
                # is impossible here (src = depth+i >= i), direct move ok.
                self._asm(f"movsd xmm{i}, xmm{src}")
        self._asm(f"call {call.name}")
        if want_result and depth != 0:
            self._asm(f"movsd xmm{depth}, xmm0")
        for i in range(depth):
            self._asm(f"movsd xmm{i}, [rbp - {self._spill_slot(i)}]")

    def _spill_slot(self, i: int) -> int:
        # Named variables occupy [rbp-8, rbp-_VAR_BUDGET]; the xmm spill
        # band sits just below that fixed budget, so spill offsets never
        # alias variables declared later in the body.
        return _VAR_BUDGET + 8 * (i + 1)

    # ------------------------------------------------ integer expressions
    def _iexpr(self, expr, depth: int) -> None:
        if depth >= len(_INT_REGS):
            raise CompileError("integer expression too deep")
        reg = _INT_REGS[depth]
        if isinstance(expr, A.INum):
            self._asm(f"mov {reg}, {expr.value}")
        elif isinstance(expr, A.IVar):
            self._asm(f"mov {reg}, {self._var_ref(expr.name)}")
        elif isinstance(expr, A.IBin):
            self._iexpr(expr.left, depth)
            if expr.op in ("<<", ">>") and isinstance(expr.right, A.INum):
                op = "shl" if expr.op == "<<" else "sar"
                self._asm(f"{op} {reg}, {expr.right.value}")
                return
            self._iexpr(expr.right, depth + 1)
            rhs = _INT_REGS[depth + 1]
            op = {"+": "add", "-": "sub", "*": "imul", "&": "and"}.get(expr.op)
            if op is None:
                raise CompileError(f"bad integer op {expr.op!r}")
            self._asm(f"{op} {reg}, {rhs}")
        elif isinstance(expr, A.ITrunc):
            self._expr(expr.expr, MAX_FP_DEPTH)
            self._asm(f"cvttsd2si {reg}, xmm{MAX_FP_DEPTH}")
        elif isinstance(expr, A.IBits):
            if depth + 1 >= len(_INT_REGS):
                raise CompileError("integer expression too deep")
            self._iexpr(expr.index, depth + 1)
            self._asm(f"mov rbx, {expr.array}")
            self._asm(f"mov {reg}, [rbx + {_INT_REGS[depth + 1]}*8]")
        else:
            raise CompileError(f"unknown integer expression {expr!r}")

    # ---------------------------------------------------------- constants
    def _constant(self, value: float) -> str:
        return self.module._intern_double(value)

    def _signmask(self) -> str:
        return self.module._intern_signmask()


#: fixed per-function variable budget (bytes) keeping the spill band
#: clear of named slots.  64 variables is plenty for the workloads.
_VAR_BUDGET = 8 * 64


def _intern_double(self: Module, value: float) -> str:
    key = struct.pack("<d", value)
    cache = getattr(self, "_const_cache", None)
    if cache is None:
        cache = {}
        self._const_cache = cache
    label = cache.get(key)
    if label is None:
        label = f".Lc{len(cache)}"
        cache[key] = label
        self._data_lines.append(f"{label}: .double {value!r}")
    return label


def _intern_signmask(self: Module) -> str:
    if not getattr(self, "_signmask_emitted", False):
        self._data_lines.append(".Lsignmask: .quad 0x8000000000000000, 0")
        self._signmask_emitted = True
    return ".Lsignmask"


Module._intern_double = _intern_double
Module._intern_signmask = _intern_signmask
