"""AST node definitions for the mini-C compiler.

Two expression families: double-typed (``Expr``) and integer-typed
(``IExpr``), mirroring the FP/GPR split of the target ISA.  Conditions
are a third family so codegen can emit fused compare-and-branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ------------------------------------------------------------ double exprs
@dataclass(frozen=True)
class Num:
    value: float


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Bin:
    op: str  # '+', '-', '*', '/'
    left: object
    right: object


@dataclass(frozen=True)
class Neg:
    expr: object


@dataclass(frozen=True)
class Fma:
    """a*b + c with a single rounding (compiles to vfmadd213sd)."""

    a: object
    b: object
    c: object


@dataclass(frozen=True)
class Sqrt:
    expr: object  # inline sqrtsd, not a libm call


@dataclass(frozen=True)
class Min:
    left: object
    right: object


@dataclass(frozen=True)
class Max:
    left: object
    right: object


@dataclass(frozen=True)
class Call:
    """Call a libm or user function returning a double."""

    name: str
    args: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True)
class Load:
    """arr[index] — a double load from a named array."""

    array: str
    index: object  # IExpr


@dataclass(frozen=True)
class Cast:
    """int -> double (cvtsi2sd)."""

    expr: object  # IExpr


# ----------------------------------------------------------- integer exprs
@dataclass(frozen=True)
class INum:
    value: int


@dataclass(frozen=True)
class IVar:
    name: str


@dataclass(frozen=True)
class IBin:
    op: str  # '+', '-', '*', '<<', '>>', '&'
    left: object
    right: object


@dataclass(frozen=True)
class ITrunc:
    """double -> int, truncating (cvttsd2si)."""

    expr: object  # Expr


@dataclass(frozen=True)
class IBits:
    """arr[index] read as a raw 64-bit integer — the bit-reinterpreting
    memory escape (``*(long*)&x``) that correctness instrumentation
    exists for (§2.6)."""

    array: str
    index: object  # IExpr


# -------------------------------------------------------------- conditions
@dataclass(frozen=True)
class FCmp:
    op: str  # '<', '<=', '>', '>=', '==', '!='
    left: object
    right: object


@dataclass(frozen=True)
class ICmp:
    op: str
    left: object
    right: object


# -------------------------------------------------------------- statements
@dataclass(frozen=True)
class Let:
    """double variable assignment (declares on first use)."""

    name: str
    expr: object


@dataclass(frozen=True)
class ILet:
    name: str
    expr: object


@dataclass(frozen=True)
class Store:
    array: str
    index: object  # IExpr
    expr: object   # Expr


@dataclass(frozen=True)
class For:
    """for (var = start; var < end; var++) body"""

    var: str
    start: object  # IExpr
    end: object    # IExpr
    body: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "body", tuple(self.body))


@dataclass(frozen=True)
class While:
    cond: object
    body: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "body", tuple(self.body))


@dataclass(frozen=True)
class If:
    cond: object
    then: tuple = ()
    orelse: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "then", tuple(self.then))
        object.__setattr__(self, "orelse", tuple(self.orelse))


@dataclass(frozen=True)
class Print:
    expr: object


@dataclass(frozen=True)
class PrintPair:
    left: object
    right: object


@dataclass(frozen=True)
class PrintI:
    expr: object


@dataclass(frozen=True)
class CallStmt:
    """Expression statement: call for side effects, result discarded."""

    call: Call


@dataclass(frozen=True)
class Return:
    expr: object | None = None
