"""A mini-C compiler targeting the simulated ISA.

The paper's workloads are compiled C/Fortran; their instruction mix —
runs of scalar SSE2 arithmetic threaded with moves, loads of constants,
loop counters, libm calls — is exactly what sequence emulation's
effectiveness depends on (§6.3 notes compiler optimizations such as
unrolling change the sequence-length distribution).  Writing the
workloads against this compiler gives them the same character, and
gives the benchmarks an unrolling knob to ablate.
"""

from repro.compiler.ast import (
    Bin,
    Call,
    Cast,
    FCmp,
    Fma,
    For,
    ICmp,
    If,
    ILet,
    INum,
    ITrunc,
    IBits,
    IVar,
    IBin,
    Let,
    Load,
    Max,
    Min,
    Neg,
    Num,
    Print,
    PrintI,
    PrintPair,
    Return,
    Sqrt,
    Store,
    CallStmt,
    Var,
    While,
)
from repro.compiler.codegen import CompileError, Function, Module

__all__ = [
    "Bin", "Call", "Cast", "FCmp", "For", "ICmp", "If", "ILet", "INum",
    "Fma", "ITrunc", "IBits", "IVar", "IBin", "Let", "Load", "Max", "Min", "Neg", "Num",
    "Print", "PrintI", "PrintPair", "Return", "Sqrt", "Store", "CallStmt",
    "Var", "While", "CompileError", "Function", "Module",
]
