"""Fleet workers: one OS process hosting many sequential guests.

The scaling trick is amortization.  A worker builds each distinct
program **once** — compiled, host-library-installed, and eagerly
micro-op-lowered — and keeps, per program:

- a pristine post-load memory **image**; every guest's address space
  is a copy-on-write clone of it (``Memory.clone_pages``), so program
  text, data, and the untouched stack page are shared read-only until
  a guest's first write materializes a private page (``cow_faults``);
- a warm :class:`~repro.machine.uops.SuperblockCache` shared by its
  guests — superblock bodies are per-CPU bound closures and cannot be
  reused, but the patch-epoch mirror, capacity bounds, and the
  sequence-emulator trace pool are; dead guests' views are released
  after each run so a long-lived worker stays bounded;
- the module-global trace-JIT source->code cache: trace codegen is
  deterministic over program layout, so the first guest compiles and
  every later guest's compiles are code-cache hits (the warm-start
  the ``trace_code_hits`` counter measures).

Semantics are untouched by all of this: a guest built from a template
retires the same instructions, cycles, traps, and output as a cold
guest — the bench and the fleet pytest suite assert it bit-for-bit.
"""

from __future__ import annotations

import os
import time

from repro.fleet.jobs import GuestJob, GuestResult
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.machine.process import Process
from repro.machine.uops import SuperblockCache, lower_program
from repro.workloads import build_program, get_workload

#: merged per-guest engine counters worth shipping across the process
#: boundary (the fleet per-worker cache-reuse section reads these).
_UOP_KEYS = ("blocks_built", "block_runs", "uops_retired",
             "links_followed", "trace_compiles", "trace_runs",
             "trace_code_hits", "trace_code_evictions")


class WorkloadTemplate:
    """One program's shared, read-only substrate inside a worker."""

    def __init__(self, job: GuestJob):
        kwargs = dict(job.build_kwargs)
        self.program = build_program(job.workload, job.scale, **kwargs)
        #: eager lowering: every guest shares one MicroOp per
        #: instruction (cached on the instruction objects themselves).
        self.uop_count = lower_program(self.program)
        self.requires_process = get_workload(job.workload).requires_process
        #: pristine loaded image; guests clone it copy-on-write.  The
        #: loader CPU is discarded — only its memory survives.
        self.image = CPU(self.program).mem
        #: warm per-program cache shared by this worker's guests.
        self.sb_cache = SuperblockCache()
        self.guests_run = 0


#: template_key -> WorkloadTemplate, per worker process.
_TEMPLATES: dict[tuple, WorkloadTemplate] = {}


def get_template(job: GuestJob) -> WorkloadTemplate:
    key = job.template_key
    template = _TEMPLATES.get(key)
    if template is None:
        template = _TEMPLATES[key] = WorkloadTemplate(job)
    return template


def _merge_uop_stats(cpus) -> dict:
    out = {k: 0 for k in _UOP_KEYS}
    for cpu in cpus:
        stats = cpu.uop_stats
        if stats is None:
            continue
        d = stats.as_dict()
        for k in _UOP_KEYS:
            out[k] += d.get(k, 0)
    return out


def run_guest(job: GuestJob, template: WorkloadTemplate | None = None) -> GuestResult:
    """Execute one guest to completion and return its full ledger.

    With a ``template`` the guest rides the warm path (shared program,
    COW image, warm caches); without one it runs cold — a fresh program
    build and load, exactly like ``run_native`` / ``run_native_process``.
    Both paths must produce identical fingerprints; the cold path is
    the serial oracle the fleet benchmarks compare against.
    """
    result = GuestResult(job_id=job.job_id, tenant=job.tenant,
                         workload=job.workload)
    if template is None:
        program = build_program(job.workload, job.scale,
                                **dict(job.build_kwargs))
        requires_process = get_workload(job.workload).requires_process
        image = sb_cache = None
    else:
        program = template.program
        requires_process = template.requires_process
        image = template.image
        sb_cache = template.sb_cache

    kernel = LinuxKernel()
    cpus: list = []
    try:
        if requires_process:
            proc = Process(program, max_instructions=job.max_instructions,
                           uops=job.uops, chain=job.chain, trace=job.trace,
                           image=image, sb_cache=sb_cache)
            proc.kernel = kernel
            cpus = proc.threads  # live list: spawns during run() land here
            t0 = time.perf_counter()
            proc.run(quantum=job.quantum)
            result.seconds = time.perf_counter() - t0
            result.output = tuple(proc.main.output)
            result.cycles = proc.total_cycles
            result.instructions = sum(t.instruction_count for t in cpus)
            result.threads = tuple(
                (t.tid, t.cycles, t.instruction_count,
                 t.fp_trap_count, t.bp_trap_count)
                for t in cpus
            )
            result.fp_switches = proc.sched.fp_switches
            result.fp_saves_elided = proc.sched.fp_saves_elided
            mem = proc.mem
        else:
            if image is not None:
                cpu = CPU.from_image(program, image,
                                     max_instructions=job.max_instructions,
                                     uops=job.uops, chain=job.chain,
                                     trace=job.trace)
                cpu._sb_cache = sb_cache
            else:
                cpu = CPU(program, max_instructions=job.max_instructions,
                          uops=job.uops, chain=job.chain, trace=job.trace)
            cpu.kernel = kernel
            cpus = [cpu]
            t0 = time.perf_counter()
            cpu.run()
            result.seconds = time.perf_counter() - t0
            result.output = tuple(cpu.output)
            result.cycles = cpu.cycles
            result.instructions = cpu.instruction_count
            mem = cpu.mem
        result.fp_traps = sum(t.fp_trap_count for t in cpus)
        result.bp_traps = sum(t.bp_trap_count for t in cpus)
        result.cow_faults = mem.cow_faults
        result.uop = _merge_uop_stats(cpus)
    except Exception as exc:  # deterministic guest failure: no retry
        result.error = f"{type(exc).__name__}: {exc}"
    finally:
        if template is not None:
            template.guests_run += 1
            for cpu in cpus:
                template.sb_cache.release(cpu)
    return result


def worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker process entry point: pull ``(job, attempt)`` messages off
    the private task queue until the ``None`` sentinel.  Guest
    exceptions come back as error results (deterministic, not retried);
    only a *process death* is a crash, which the scheduler detects via
    ``exitcode`` and retries on a fresh worker."""
    while True:
        msg = task_queue.get()
        if msg is None:
            return
        job, attempt = msg
        if job.fault == "crash_once" and attempt == 0:
            # the crash-injection seam: die hard, mid-"run", without
            # reporting — exactly what a segfaulting worker looks like.
            os._exit(17)
        result = run_guest(job, get_template(job))
        result.worker = worker_id
        result_queue.put(result)
