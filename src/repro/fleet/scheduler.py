"""Fleet scheduler: admission, quotas, dispatch, retry, aggregation.

The front-end of the fleet.  Jobs are admitted from a submission list
against per-tenant quotas, dispatched one at a time to a pool of
worker processes (each worker owns a private task queue; results come
back on one shared queue), and aggregated into a fleet-level
:class:`~repro.harness.runner.HostPerf` with p50/p99 guest latency and
guests/sec.

Failure model
-------------
*Guest* failures are deterministic: the guest raises, the worker
catches, and the error travels back as a typed result — retrying a
deterministic failure would just fail again, so it is not retried.
*Worker* failures are host-side crashes: the worker process dies with
jobs in flight.  Those jobs are requeued on a fresh worker (the dead
worker's private queue is abandoned, so a stale dispatch can never be
consumed twice) at most ``retries`` times each; a job whose workers
keep dying surfaces as a typed
:class:`~repro.errors.FleetWorkerError`.  Because only *accepted
results* are aggregated — a crashed attempt reports nothing — no cycle
is ever double-counted across retries, which the crash-injection suite
asserts against serial totals.

Quotas
------
``TenantQuota.max_guests`` caps how many jobs a tenant may land in one
batch; excess jobs are rejected at admission with a typed
:class:`~repro.errors.FleetQuotaError` record.  ``max_cycles`` is a
simulated-cycle budget: a tenant with a cycle budget has its jobs
dispatched *in submission order, one at a time* (admission control
needs the previous job's exact ledger before it can admit the next),
and the first job that would start beyond an exhausted budget — plus
everything behind it — is rejected.  Deterministic by construction:
the rejection set never depends on worker timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.telemetry import aggregate_fleet_stats
from repro.errors import FleetQuotaError, FleetWorkerError
from repro.fleet.jobs import GuestJob, GuestResult
from repro.fleet.worker import get_template, run_guest, worker_main

#: how long the dispatch loop blocks on the result queue before
#: re-checking worker liveness.
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant."""

    #: max jobs accepted per batch (None = unlimited).
    max_guests: int | None = None
    #: simulated-cycle budget across the tenant's accepted jobs
    #: (None = unlimited).  Enforced exactly, not sampled — see the
    #: module docstring for the serialization this implies.
    max_cycles: int | None = None


@dataclass
class FleetReport:
    """Everything one batch produced."""

    #: accepted per-guest ledgers, ordered by job_id.
    results: list = field(default_factory=list)
    #: (job, FleetQuotaError) admission rejections, in submission order.
    rejected: list = field(default_factory=list)
    #: FleetWorkerError per job whose workers kept crashing.
    failed: list = field(default_factory=list)
    workers: int = 0
    wall_seconds: float = 0.0
    retries: int = 0
    crashes: int = 0
    #: aggregate_fleet_stats() output.
    fleet: dict = field(default_factory=dict)
    #: fleet-level HostPerf (filled by harness.runner.run_fleet).
    host: object = None

    def fingerprints(self) -> dict:
        return {r.job_id: r.fingerprint() for r in self.results}


class _Worker:
    """One live worker process + its private task queue.

    Queues are ``SimpleQueue``s on purpose: unlike ``mp.Queue`` they
    have no background feeder thread, so a ``put`` is a synchronous
    locked pipe write that either lands or raises in the caller — no
    silently-dropped dispatch on a feeder error, and no
    fork-while-feeder-holds-a-lock hazard when a *replacement* worker
    is forked mid-batch after a crash."""

    __slots__ = ("proc", "task_queue", "worker_id", "inflight")

    def __init__(self, ctx, worker_id: int, result_queue):
        self.worker_id = worker_id
        self.task_queue = ctx.SimpleQueue()
        #: (job, attempt) currently dispatched, or None when idle.
        self.inflight = None
        self.proc = ctx.Process(
            target=worker_main,
            args=(worker_id, self.task_queue, result_queue),
            daemon=True,
        )
        self.proc.start()


class FleetScheduler:
    """Admit, dispatch, retry, aggregate.

    ``workers=0`` runs every admitted job in-process (no
    multiprocessing, no retry machinery) through the same warm-template
    path — the mode unit tests and single-core hosts use.
    """

    def __init__(
        self,
        workers: int = 2,
        quotas: dict[str, TenantQuota] | None = None,
        retries: int = 1,
        start_method: str | None = None,
    ):
        self.workers = workers
        self.quotas = dict(quotas or {})
        self.retries = retries
        self.start_method = start_method

    # ---------------------------------------------------------- admission
    def _admit(self, jobs) -> tuple[list, list, set]:
        """Split submissions into (admitted, rejected) on the quotas
        that are checkable up front; returns the set of tenants whose
        cycle budgets force serialized dispatch."""
        admitted: list[GuestJob] = []
        rejected: list = []
        counts: dict[str, int] = {}
        serialized: set[str] = set()
        for job in jobs:
            quota = self.quotas.get(job.tenant)
            if quota is not None and quota.max_cycles is not None:
                serialized.add(job.tenant)
            n = counts.get(job.tenant, 0)
            if (quota is not None and quota.max_guests is not None
                    and n >= quota.max_guests):
                rejected.append((job, FleetQuotaError(
                    f"tenant {job.tenant!r} at max_guests="
                    f"{quota.max_guests}: job {job.job_id} rejected",
                    tenant=job.tenant, job_id=job.job_id)))
                continue
            counts[job.tenant] = n + 1
            admitted.append(job)
        return admitted, rejected, serialized

    def _budget_left(self, tenant: str, spent: dict[str, int]) -> bool:
        quota = self.quotas.get(tenant)
        if quota is None or quota.max_cycles is None:
            return True
        return spent.get(tenant, 0) < quota.max_cycles

    def _reject_over_budget(self, job: GuestJob) -> tuple:
        quota = self.quotas[job.tenant]
        return (job, FleetQuotaError(
            f"tenant {job.tenant!r} exhausted max_cycles="
            f"{quota.max_cycles}: job {job.job_id} rejected",
            tenant=job.tenant, job_id=job.job_id))

    # ----------------------------------------------------------- execution
    def run(self, jobs) -> FleetReport:
        t0 = time.perf_counter()
        admitted, rejected, serialized = self._admit(jobs)
        report = FleetReport(rejected=rejected,
                             workers=max(self.workers, 0))
        if self.workers <= 0:
            self._run_inline(admitted, report)
        else:
            self._run_pool(admitted, serialized, report)
        report.results.sort(key=lambda r: r.job_id)
        report.wall_seconds = time.perf_counter() - t0
        report.fleet = aggregate_fleet_stats(
            [r.row() for r in report.results],
            report.wall_seconds,
            workers=report.workers,
            retries=report.retries,
            crashes=report.crashes,
            rejected=len(report.rejected),
            failed=len(report.failed),
        )
        return report

    def _run_inline(self, admitted, report: FleetReport) -> None:
        """workers=0: sequential in-process execution, warm templates,
        exact cycle-budget admission for free (everything is already
        serial)."""
        spent: dict[str, int] = {}
        for job in admitted:
            if not self._budget_left(job.tenant, spent):
                report.rejected.append(self._reject_over_budget(job))
                continue
            result = run_guest(job, get_template(job))
            spent[job.tenant] = spent.get(job.tenant, 0) + result.cycles
            report.results.append(result)

    def _run_pool(self, admitted, serialized, report: FleetReport) -> None:
        import multiprocessing as mp

        method = self.start_method
        if method is None:
            method = ("fork" if "fork" in mp.get_all_start_methods()
                      else "spawn")
        ctx = mp.get_context(method)
        # SimpleQueue: the sole parent reader polls the raw reader end
        # with a timeout; worker writes are synchronous under the
        # queue's write lock (no feeder threads anywhere).
        result_queue = ctx.SimpleQueue()
        n = min(self.workers, max(len(admitted), 1))
        next_worker_id = 0
        pool: list[_Worker] = []
        for _ in range(n):
            pool.append(_Worker(ctx, next_worker_id, result_queue))
            next_worker_id += 1

        pending = list(admitted)          # dispatch in submission order
        attempts: dict[int, int] = {}     # job_id -> attempts consumed
        jobs_by_id = {j.job_id: j for j in admitted}
        inflight_tenants: dict[str, int] = {}
        spent: dict[str, int] = {}

        def dispatchable(worker: _Worker) -> GuestJob | None:
            """First pending job this worker may take: serialized
            tenants run one job at a time and are budget-checked at
            dispatch; everyone else is greedy."""
            for i, job in enumerate(pending):
                if job.tenant in serialized:
                    if inflight_tenants.get(job.tenant, 0):
                        continue
                    if not self._budget_left(job.tenant, spent):
                        report.rejected.append(self._reject_over_budget(job))
                        pending.pop(i)
                        return dispatchable(worker)
                return pending.pop(i)
            return None

        def accept(result: GuestResult) -> None:
            result.attempts = attempts.get(result.job_id, 0)
            job = jobs_by_id[result.job_id]
            spent[job.tenant] = spent.get(job.tenant, 0) + result.cycles
            inflight_tenants[job.tenant] = max(
                0, inflight_tenants.get(job.tenant, 0) - 1)
            report.results.append(result)
            for w in pool:
                if w.inflight is not None and w.inflight[0].job_id == result.job_id:
                    w.inflight = None

        try:
            # run until every admitted job has resolved: a job leaves
            # `pending` only by dispatch or dispatch-time rejection, and
            # leaves flight only via an accepted result or a crash
            # (which either requeues it or records a failure).
            while pending or any(w.inflight is not None for w in pool):
                # keep every idle worker busy
                for w in pool:
                    if w.inflight is None and w.proc.is_alive():
                        job = dispatchable(w)
                        if job is None:
                            continue
                        attempt = attempts.get(job.job_id, 0)
                        attempts[job.job_id] = attempt + 1
                        w.inflight = (job, attempt)
                        inflight_tenants[job.tenant] = (
                            inflight_tenants.get(job.tenant, 0) + 1)
                        w.task_queue.put((job, attempt))
                if not pending and all(w.inflight is None for w in pool):
                    break
                # drain results
                if result_queue._reader.poll(_POLL_SECONDS):
                    accept(result_queue.get())
                    continue
                # no result: check for dead workers holding jobs
                for i, w in enumerate(pool):
                    if w.proc.is_alive():
                        continue
                    # drain-first: a result may have landed between the
                    # poll and the death check
                    while result_queue._reader.poll(0):
                        accept(result_queue.get())
                    held = w.inflight
                    if held is None and not pending:
                        continue
                    replacement = _Worker(ctx, next_worker_id, result_queue)
                    next_worker_id += 1
                    pool[i] = replacement
                    if held is None:
                        continue
                    job, attempt = held
                    report.crashes += 1
                    inflight_tenants[job.tenant] = max(
                        0, inflight_tenants.get(job.tenant, 0) - 1)
                    if attempt + 1 > self.retries:
                        report.failed.append(FleetWorkerError(
                            f"worker {w.worker_id} died (exit "
                            f"{w.proc.exitcode}) running job {job.job_id}; "
                            f"retry budget ({self.retries}) exhausted",
                            job_ids=(job.job_id,)))
                    else:
                        report.retries += 1
                        pending.insert(0, job)  # retry at the front
        finally:
            for w in pool:
                if w.proc.is_alive():
                    w.task_queue.put(None)
            deadline = time.monotonic() + 5.0
            for w in pool:
                w.proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if w.proc.is_alive():
                    w.proc.terminate()
                    w.proc.join(timeout=1.0)
            result_queue.close()
