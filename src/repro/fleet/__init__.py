"""Fleet-scale serving: multiprocess guest fleets.

Public surface:

- :class:`~repro.fleet.jobs.GuestJob` / :func:`~repro.fleet.jobs.make_batch`
  describe work; :class:`~repro.fleet.jobs.GuestResult` is the per-guest
  ledger that comes back.
- :class:`~repro.fleet.scheduler.FleetScheduler` runs a batch across
  worker processes (or in-process with ``workers=0``) under
  :class:`~repro.fleet.scheduler.TenantQuota` admission control and
  returns a :class:`~repro.fleet.scheduler.FleetReport`.
- :func:`~repro.fleet.worker.run_guest` executes a single guest — with a
  warm :class:`~repro.fleet.worker.WorkloadTemplate` (shared program,
  COW image, warm caches) or cold as the serial oracle.
"""

from repro.fleet.jobs import GuestJob, GuestResult, make_batch
from repro.fleet.scheduler import FleetReport, FleetScheduler, TenantQuota
from repro.fleet.worker import WorkloadTemplate, get_template, run_guest

__all__ = [
    "FleetReport",
    "FleetScheduler",
    "GuestJob",
    "GuestResult",
    "TenantQuota",
    "WorkloadTemplate",
    "get_template",
    "make_batch",
    "run_guest",
]
