"""Fleet job and result records.

A :class:`GuestJob` is one guest process to execute — everything a
worker needs to build (or look up) the program template and run the
guest deterministically.  A :class:`GuestResult` is the per-guest
ledger the scheduler aggregates: simulated cycles, instruction counts,
trap counts, per-thread breakdowns, guest latency, and the COW /
warm-cache counters.  Both must stay picklable (they cross the
worker-process boundary).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GuestJob:
    """One guest process to run somewhere in the fleet."""

    job_id: int
    workload: str
    tenant: str = "default"
    scale: int | None = None
    quantum: int = 64
    max_instructions: int = 100_000_000
    uops: bool = True
    chain: bool = True
    trace: bool = True
    #: extra ``build_program`` kwargs as sorted (key, value) pairs —
    #: tuple-of-tuples so the job stays hashable and picklable.
    build_kwargs: tuple = ()
    #: test seam for the crash-injection suite: ``"crash_once"`` makes
    #: the worker process die (os._exit) on the job's *first* attempt
    #: only, so the retry path is exercised deterministically.
    fault: str | None = None

    @property
    def template_key(self) -> tuple:
        """Everything the program template depends on: jobs with equal
        keys share one built+lowered program, one pristine memory
        image, and one warm SuperblockCache inside a worker."""
        return (self.workload, self.scale, self.uops, self.chain,
                self.trace, self.build_kwargs)


@dataclass
class GuestResult:
    """One guest's complete ledger, exactly as serial execution would
    produce it (the bit-identity contract) plus fleet-side metadata."""

    job_id: int
    tenant: str
    workload: str
    #: host worker that produced the accepted result (-1 = in-process).
    worker: int = -1
    #: dispatch attempts consumed (1 = no retry; filled by scheduler).
    attempts: int = 1
    #: guest latency: host wall-clock seconds inside the worker.
    seconds: float = 0.0
    output: tuple = ()
    cycles: int = 0
    instructions: int = 0
    fp_traps: int = 0
    bp_traps: int = 0
    #: per-thread (tid, cycles, instructions, fp_traps, bp_traps) for
    #: Process guests; None for single-CPU guests.
    threads: tuple | None = None
    #: pages privately materialized by this guest's writes (0 when the
    #: guest ran cold, without a template).
    cow_faults: int = 0
    #: lazy-FP scheduler telemetry (§3.1): modeled #NM ownership
    #: switches and dispatches whose XMM spill was elided (0 for
    #: single-CPU guests — no scheduler, no switches).
    fp_switches: int = 0
    fp_saves_elided: int = 0
    #: merged UopStats.as_dict() subset across the guest's thread CPUs.
    uop: dict = field(default_factory=dict)
    #: set when the guest itself raised (deterministic guest failure —
    #: never retried, unlike worker crashes).
    error: str | None = None

    def fingerprint(self) -> tuple:
        """The bit-identity observable: everything the guest computed.
        Two executions of the same job must compare equal here whether
        they ran serially, cold, warm, or on any worker."""
        return (self.output, self.cycles, self.instructions,
                self.fp_traps, self.bp_traps, self.threads, self.error)

    def row(self) -> dict:
        """The aggregation row ``telemetry.aggregate_fleet_stats``
        consumes."""
        return {
            "seconds": self.seconds,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "fp_traps": self.fp_traps,
            "bp_traps": self.bp_traps,
            "cow_faults": self.cow_faults,
            "fp_switches": self.fp_switches,
            "fp_saves_elided": self.fp_saves_elided,
            "worker": self.worker,
            "uop": self.uop,
        }


def make_batch(
    workload: str,
    guests: int,
    scale: int | None = None,
    tenant: str = "default",
    start_id: int = 0,
    **kw,
) -> list[GuestJob]:
    """A homogeneous batch of ``guests`` jobs for one workload."""
    return [
        GuestJob(job_id=start_id + i, workload=workload, tenant=tenant,
                 scale=scale, **kw)
        for i in range(guests)
    ]
