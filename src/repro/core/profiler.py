"""The PIN-like memory-escape profiler (§5.1).

Instruments every memory operation of a *native* profiling run with
shadow memory:

- an FP-typed store marks its 8-byte block "contains a float";
- an integer store (or stack release) unmarks the block;
- an integer load from a marked block records the loading instruction
  as a patch site.

Developers "patch their application for FPVM by simply profiling it
with the same workload" — the harness does exactly that before an
instrumented run.  The profiler finds a subset of the static
analysis's sites because it observes one concrete execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.cpu import CPU
from repro.machine.program import Program


@dataclass
class ProfileResult:
    patch_sites: set[int] = field(default_factory=set)
    fp_stores: int = 0
    int_loads_of_floats: int = 0
    #: addresses of memory blocks that ever held a float (diagnostics).
    ever_marked: set[int] = field(default_factory=set)


class MemoryEscapeProfiler:
    """Owns a profiling CPU run over an uninstrumented program."""

    def __init__(self, program: Program):
        # Never instrument the caller's program object.
        self.program = program.copy()
        self.program.clear_patches()
        self.result = ProfileResult()
        self._marked: set[int] = set()
        self._current_rip = 0
        self._stack_floor = 0

    # ---------------------------------------------------------- observer
    def _observe(self, addr: int, size: int, kind: str, value: int) -> None:
        block = addr & ~7
        if kind == "fp_store":
            self._marked.add(block)
            if size == 16:
                self._marked.add(block + 8)
            self.result.fp_stores += 1
            self.result.ever_marked.add(block)
        elif kind == "int_store":
            self._marked.discard(block)
        elif kind == "int_load":
            if block in self._marked:
                self.result.patch_sites.add(self._current_rip)
                self.result.int_loads_of_floats += 1
        # fp_load: no shadow change.

    def _unwind_stack(self, rsp: int) -> None:
        """Stack unwinding unmarks released slots (§5.1's unmark list)."""
        if rsp > self._stack_floor:
            dead = [b for b in self._marked if self._stack_floor <= b < rsp]
            for b in dead:
                self._marked.discard(b)
        self._stack_floor = rsp

    # --------------------------------------------------------------- run
    def run(self, max_steps: int = 50_000_000) -> ProfileResult:
        """Drive a fresh, isolated process under instrumentation — PIN
        instruments the whole process, spawned threads included, and
        profiling must never have side effects on the process being
        virtualized."""
        from repro.machine.process import Process

        process = Process(self.program)
        process.mem.observers.append(self._observe)
        floors = {0: process.main.regs.gpr[7]}
        steps = 0
        while steps < max_steps:
            runnable = process.alive()
            if not runnable:
                break
            for thread in runnable:
                for _ in range(32):
                    if thread.halted or thread.blocked:
                        break
                    self._current_rip = thread.regs.rip
                    self._stack_floor = floors.setdefault(
                        thread.tid, thread.regs.gpr[7]
                    )
                    thread.step()
                    rsp = thread.regs.gpr[7]
                    if rsp != self._stack_floor:
                        self._unwind_stack(rsp)
                    floors[thread.tid] = self._stack_floor
                    steps += 1
        return self.result


def profile_patch_sites(program: Program, max_steps: int = 50_000_000) -> set[int]:
    """Convenience wrapper: the set of instruction addresses needing
    correctness patches, per one profiled execution."""
    return MemoryEscapeProfiler(program).run(max_steps).patch_sites
