"""Correctness instrumentation: int3 traps and magic traps (§2.6, §5.2).

Before an instruction that reinterprets a floating point value as an
integer executes, any NaN-boxed value it is about to read must be
demoted back to a plain binary64.  Two delivery mechanisms:

- **int3** (the baseline): a breakpoint pre-hook raises #BP, the kernel
  delivers SIGTRAP, FPVM's handler demotes and single-steps over the
  instruction.  Cost: hw + SIGTRAP delivery + sigreturn (~5980 cyc).
- **magic traps** (§5.2): the patch is a ``call`` to a trampoline
  baked into the binary.  The trampoline cannot see FPVM's symbols
  (it's later in the ELF chain), so on first invocation it rendezvouses
  through the **magic page** — a page FPVM maps at a well-known address
  holding a cookie and the demotion handler's address — then caches the
  pointer.  Cost: a double-indirect call + register save (~100 cyc).
"""

from __future__ import annotations

import struct

from repro.core import nanbox
from repro.errors import MagicPageCorruptionError
from repro.machine.isa import GPR_IDS, Mem, OpClass
from repro.machine.memory import PROT_READ, PROT_WRITE
from repro.machine.program import MAGIC_PAGE_ADDR

MAGIC_COOKIE = 0xF9D0_C0DE_B0A7_1E55

#: registry of live demotion handlers, indexed by the id stored on the
#: magic page (the simulation's stand-in for a function pointer).
_HANDLER_REGISTRY: dict[int, object] = {}
_NEXT_HANDLER_ID = 1


def register_demotion_handler(handler) -> int:
    """Give ``handler(cpu, addr)`` an address-like id trampolines can
    resolve through the magic page."""
    global _NEXT_HANDLER_ID
    hid = _NEXT_HANDLER_ID
    _NEXT_HANDLER_ID += 1
    _HANDLER_REGISTRY[hid] = handler
    return hid


def map_magic_page(cpu, handler_id: int) -> None:
    """Map the magic page (read-only, like the VDSO) and populate the
    cookie + handler pointer."""
    cpu.mem.map_page(MAGIC_PAGE_ADDR, PROT_READ | PROT_WRITE)
    cpu.mem.write_bytes(
        MAGIC_PAGE_ADDR, struct.pack("<QQ", MAGIC_COOKIE, handler_id)
    )
    cpu.mem.protect(MAGIC_PAGE_ADDR, PROT_READ)


class MagicTrampoline:
    """The patched-in ``call`` target.

    Mimics the real trampoline's constraints: it starts with *no* link
    to FPVM and must find the handler through the magic page on its
    first invocation, caching the pointer for all later calls.
    """

    def __init__(self) -> None:
        self._handler = None
        self.rendezvous_count = 0
        #: total invocations (for the conformance oracle's invariant
        #: corr_events == sum of trampoline calls under magic traps).
        self.call_count = 0

    def __call__(self, cpu, addr: int) -> None:
        self.call_count += 1
        if self._handler is None:
            self.rendezvous_count += 1
            cookie, handler_id = struct.unpack(
                "<QQ", cpu.mem.read_bytes(MAGIC_PAGE_ADDR, 16)
            )
            if cookie != MAGIC_COOKIE:
                raise MagicPageCorruptionError(
                    f"magic page cookie mismatch at {MAGIC_PAGE_ADDR:#x}: "
                    f"read {cookie:#x}, want {MAGIC_COOKIE:#x}"
                )
            handler = _HANDLER_REGISTRY.get(handler_id)
            if handler is None:
                raise MagicPageCorruptionError(
                    f"magic page names unknown demotion handler {handler_id}"
                )
            self._handler = handler
        self._handler(cpu, addr)


def demote_instruction_inputs(vm, context_or_cpu, addr: int) -> int:
    """The demotion handler body: scan the patched instruction's memory
    and register sources for boxed values and demote them in place.
    Returns the number of demotions performed."""
    program = vm.program
    instr = program.by_addr[addr]
    mem = context_or_cpu.mem if hasattr(context_or_cpu, "mem") else context_or_cpu.memory
    regs = _regs_view(context_or_cpu)
    demoted = 0

    memop = instr.memory_operand()
    if memop is not None and _reads_memory(instr, memop):
        ea = _effective_address(memop, regs)
        count = 2 if memop.size == 16 else 1
        for i in range(count):
            bits = mem.read_u64(ea + 8 * i)
            plain = vm.emulator.demote_bits(bits)
            if plain != bits:
                mem.write_u64(ea + 8 * i, plain)
                demoted += 1

    # movq r64, xmmN: the register-to-register porosity path.
    if instr.mnemonic == "movq" and instr.operands and _xmm_source(instr):
        xid = instr.operands[1].id
        bits = regs.read_xmm(xid, 0)
        plain = vm.emulator.demote_bits(bits)
        if plain != bits:
            regs.write_xmm(xid, plain, 0)
            demoted += 1

    vm.telemetry.corr_events += 1
    return demoted


def _xmm_source(instr) -> bool:
    from repro.machine.isa import Xmm

    return len(instr.operands) == 2 and isinstance(instr.operands[1], Xmm)


def _reads_memory(instr, memop: Mem) -> bool:
    if instr.opclass is OpClass.INT_MOV:
        if instr.mnemonic == "mov":
            return isinstance(instr.operands[1], Mem)
        if instr.mnemonic == "push":
            return isinstance(instr.operands[0], Mem)
        return instr.mnemonic not in ("lea", "pop")
    return True


def _effective_address(memop: Mem, regs) -> int:
    ea = memop.disp
    if memop.base is not None:
        ea += regs.read_gpr(GPR_IDS[memop.base])
    if memop.index is not None:
        ea += regs.read_gpr(GPR_IDS[memop.index]) * memop.scale
    return ea & 0xFFFF_FFFF_FFFF_FFFF


class _CpuRegsView:
    """Adapter giving a raw CPU the SignalContext register interface."""

    def __init__(self, cpu):
        self._cpu = cpu

    def read_gpr(self, rid):
        return self._cpu.regs.gpr[rid]

    def write_gpr(self, rid, value):
        self._cpu.regs.write_gpr(rid, value)

    def read_xmm(self, xid, lane=0):
        return self._cpu.regs.xmm[xid][lane]

    def write_xmm(self, xid, value, lane=0):
        self._cpu.regs.write_xmm_lane(xid, lane, value)


def _regs_view(context_or_cpu):
    if hasattr(context_or_cpu, "read_gpr"):
        return context_or_cpu
    return _CpuRegsView(context_or_cpu)
