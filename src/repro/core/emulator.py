"""The instruction emulator (§2.4).

Emulates one decoded+bound instruction against the alternative
arithmetic system:

- FP arithmetic promotes (or unboxes) sources, computes in altmath,
  and NaN-boxes the result;
- results that are genuine NaNs ("real NaNs") are stored as the
  canonical quiet NaN rather than boxed (§2.3);
- supported moves (the ~40-opcode subset of §4.2) shuttle raw bit
  patterns — boxed values travel as bits;
- everything else is unsupported and terminates emulation sequences.

The default supported-move set deliberately excludes ``movhpd`` /
``movlpd`` (partial vector moves), reproducing the Figure 7 sequence
terminator, and excludes ``andpd``/``orpd`` masks while *supporting*
``xorpd`` (negation) via the sign-bit convention of
:mod:`repro.core.nanbox`.
"""

from __future__ import annotations

from repro.core import nanbox
from repro.core.binding import Binding, bind
from repro.fpu import bits as B
from repro.fpu.ieee import UCOMI_EQUAL, UCOMI_GREATER, UCOMI_LESS, UCOMI_UNORDERED
from repro.machine.isa import Instruction, OpClass
from repro.machine.uops import CMP_PREDS, CMP_TABLES, MicroOp, lower

U64 = 0xFFFF_FFFF_FFFF_FFFF
RSP = 7

#: Instructions the emulator can decode, bind and emulate (§4.2's
#: "about 40 move opcodes" plus the arithmetic core and cmpxx family).
DEFAULT_SUPPORTED = frozenset(
    {
        # scalar arithmetic
        "addsd", "subsd", "mulsd", "divsd", "sqrtsd", "minsd", "maxsd",
        "vfmadd213sd",
        # packed arithmetic
        "addpd", "subpd", "mulpd", "divpd", "sqrtpd", "minpd", "maxpd",
        # compares (the family the baseline FPVM omitted; §4.2)
        "ucomisd", "comisd",
        "cmpeqsd", "cmpltsd", "cmplesd", "cmpneqsd", "cmpnltsd",
        "cmpnlesd", "cmpordsd", "cmpunordsd",
        # conversions
        "cvtsi2sd", "cvttsd2si", "cvtsd2si",
        # FP moves (partial-vector movhpd/movlpd intentionally absent)
        "movsd", "movapd", "movupd", "movq",
        # negation via sign-mask xor composes with the box convention
        "xorpd",
        # integer moves (the §4.2 extension)
        "mov", "lea", "push", "pop",
    }
)

# cmp mnemonic/predicate tables live with the micro-op IR so the CPU's
# fast closures and the emulator share one definition.
_CMP_PREDS = CMP_PREDS
_CMP_TABLES = CMP_TABLES


class Emulator:
    """Stateless per-VM emulator; all state lives in the VM (allocator,
    altmath, ledger, telemetry)."""

    def __init__(self, vm) -> None:
        self.vm = vm
        self.supported_set = set(vm.config.supported_instructions)

    # ----------------------------------------------------------- queries
    def supported(self, instr: Instruction) -> bool:
        return instr.mnemonic in self.supported_set

    def any_source_boxed(self, instr: Instruction, context) -> bool:
        """Termination rule (2) probe: does any FP source operand hold a
        NaN-boxed value owned by our allocator?"""
        alloc = self.vm.allocator
        for bits in self._fp_source_bits(instr, context):
            if nanbox.is_boxed(bits) and alloc.owns(bits & nanbox.NANBOX_PTR_MASK):
                return True
        return False

    def _fp_source_bits(self, instr: Instruction, context):
        mn = instr.mnemonic
        info = instr.info
        if info.opclass not in (OpClass.FP_ARITH, OpClass.FP_CVT):
            return
        binding = bind(instr, context)
        ops = binding.operands
        if mn == "vfmadd213sd":
            yield ops[0].read64(context, 0, fp=True)
            yield ops[1].read64(context, 0, fp=True)
            yield ops[2].read64(context, 0, fp=True)
            return
        if mn == "cvtsi2sd":
            return  # integer source; never boxed
        if mn in ("cvttsd2si", "cvtsd2si", "sqrtsd"):
            yield ops[1].read64(context, 0, fp=True)
            return
        if mn == "sqrtpd":
            yield ops[1].read64(context, 0, fp=True)
            yield ops[1].read64(context, 1, fp=True)
            return
        lanes = info.lanes
        for lane in range(lanes):
            yield ops[0].read64(context, lane, fp=True)
            yield ops[1].read64(context, lane, fp=True)

    # --------------------------------------------------------- emulation
    def emulate(self, instr: Instruction | MicroOp, context) -> bool:
        """Emulate one instruction; returns False if unsupported.
        Charges bind/emul/altmath and advances nothing — the caller
        owns RIP.

        Accepts a raw :class:`Instruction` or a lowered
        :class:`MicroOp`; raw instructions are lowered (cached on the
        instruction) so the dispatch decision is resolved once.
        """
        uop = instr if isinstance(instr, MicroOp) else lower(instr)
        if uop.mnemonic not in self.supported_set:
            return False
        vm = self.vm
        binding = bind(uop, context)
        vm.charge("bind", vm.costs.bind_per_operand * binding.cost_units)
        vm.charge("emul", vm.costs.emul_dispatch)

        flow = vm.flow
        if flow is not None:
            flow.begin_op(uop.addr)
        kind = uop.emu_kind
        if uop.fp_trap_capable:
            self._emulate_fp(kind, uop, binding, context)
        elif kind == "xorpd":
            self._emulate_xorpd(binding, context)
        elif kind == "fpmov":
            self._emulate_fp_move(uop.mnemonic, binding, context)
        else:
            self._emulate_int_move(uop.mnemonic, binding, context)
        if flow is not None:
            flow.end_op()
        vm.telemetry.emulated_instructions += 1
        vm.ledger.count("emulated_instructions")
        return True

    # ------------------------------------------------------- value flow
    def _resolve(self, bits: int):
        """Bits -> alt value (unbox ours, promote everything else)."""
        vm = self.vm
        if nanbox.is_boxed(bits):
            ptr, negated = nanbox.unbox(bits)
            if vm.allocator.owns(ptr):
                if vm.flow is not None:
                    vm.flow.note_source(ptr)
                vm.charge("altmath", vm.altmath.costs.load)
                value = vm.allocator.load(ptr)
                if negated:
                    vm.charge_alt("neg")
                    value = vm.altmath.unary("neg", value)
                return value
        vm.charge("altmath", vm.altmath.costs.promote)
        vm.telemetry.promotions += 1
        return vm.altmath.promote(bits)

    def _produce(self, value, context=None) -> int:
        """Alt value -> bits: canonical NaN for real NaNs, else a fresh
        box (``context`` provides GC roots for emergency collection)."""
        vm = self.vm
        if vm.altmath.is_nan_value(value):
            if vm.flow is not None:
                vm.flow.note_clamp()
            return B.CANONICAL_QNAN
        vm.charge("altmath", vm.altmath.costs.box)
        ptr = vm.alloc_box(value, context)
        vm.telemetry.boxes_allocated += 1
        if vm.flow is not None:
            vm.flow.note_birth(ptr)
        return nanbox.box_bits(ptr)

    def demote_bits(self, bits: int) -> int:
        """Public helper for wrappers/correctness: collapse a boxed
        pattern to plain binary64 (identity on everything else)."""
        vm = self.vm
        if nanbox.is_boxed(bits):
            ptr, negated = nanbox.unbox(bits)
            if vm.allocator.owns(ptr):
                if vm.flow is not None:
                    vm.flow.record_demote(ptr)
                vm.charge("altmath", vm.altmath.costs.demote)
                vm.telemetry.demotions += 1
                out = vm.altmath.demote(vm.allocator.load(ptr))
                if negated:
                    out ^= B.F64_SIGN_MASK
                return out
        return bits

    # ------------------------------------------------------ FP semantics
    def _emulate_fp(self, kind: str, uop, binding: Binding, context):
        """Dispatch on the micro-op's pre-resolved emulation kind (the
        lowering pass already classified the mnemonic)."""
        vm = self.vm
        ops = binding.operands
        if kind == "cvtsi2sd":
            vm.charge_alt_convert()
            value = vm.altmath.from_i64(ops[1].read64(context, 0, fp=False))
            ops[0].write64(context, self._produce(value, context), 0, fp=True)
            return
        if kind == "cvt2si":
            vm.charge_alt_convert()
            value = self._resolve(ops[1].read64(context, 0, fp=True))
            out = vm.altmath.to_i64(value, truncate=uop.emu_arg)
            ops[0].write64(context, out, 0, fp=False)
            return
        if kind == "ucomi":
            a = self._resolve(ops[0].read64(context, 0, fp=True))
            b = self._resolve(ops[1].read64(context, 0, fp=True))
            vm.charge("altmath", vm.altmath.costs.compare)
            c = vm.altmath.compare(a, b)
            packed = (
                UCOMI_UNORDERED if c is None
                else UCOMI_EQUAL if c == 0
                else UCOMI_LESS if c < 0
                else UCOMI_GREATER
            )
            flags = context.flags
            flags.zf = bool(packed & 1)
            flags.pf = bool(packed & 2)
            flags.cf = bool(packed & 4)
            flags.sf = False
            flags.of = False
            return
        if kind == "cmp":
            a = self._resolve(ops[0].read64(context, 0, fp=True))
            b = self._resolve(ops[1].read64(context, 0, fp=True))
            vm.charge("altmath", vm.altmath.costs.compare)
            c = vm.altmath.compare(a, b)
            if_unord, fn = _CMP_TABLES[uop.emu_arg]
            hit = if_unord if c is None else fn(c)
            ops[0].write64(context, U64 if hit else 0, 0, fp=True)
            return
        if kind == "fma":
            # dst = src2 * dst + src3 (the 213 operand order).
            mul2 = self._resolve(ops[1].read64(context, 0, fp=True))
            mul1 = self._resolve(ops[0].read64(context, 0, fp=True))
            addend = self._resolve(ops[2].read64(context, 0, fp=True))
            vm.charge_alt("fma")
            vm.telemetry.altmath_ops["fma"] += 1
            result = vm.altmath.fma(mul2, mul1, addend)
            ops[0].write64(context, self._produce(result, context), 0, fp=True)
            return
        if kind == "sqrt":
            for lane in range(uop.emu_arg):
                vm.charge_alt("sqrt")
                value = self._resolve(ops[1].read64(context, lane, fp=True))
                ops[0].write64(context,
                               self._produce(vm.altmath.unary("sqrt", value), context),
                               lane, fp=True)
            return
        # Binary arithmetic: addsd/addpd families.
        base = uop.ieee
        for lane in range(uop.lanes):
            a = self._resolve(ops[0].read64(context, lane, fp=True))
            b = self._resolve(ops[1].read64(context, lane, fp=True))
            vm.charge_alt(base)
            vm.telemetry.altmath_ops[base] += 1
            result = vm.altmath.binary(base, a, b)
            ops[0].write64(context, self._produce(result, context), lane, fp=True)

    def _emulate_xorpd(self, binding: Binding, context):
        ops = binding.operands
        for lane in range(2):
            a = ops[0].read64(context, lane, fp=True)
            b = ops[1].read64(context, lane, fp=True)
            # Raw xor: correct for plain doubles, and correct for boxed
            # values when the mask only touches the sign bit (the
            # compiler idiom) thanks to the negation convention.
            if nanbox.is_boxed(a) and (b & ~B.F64_SIGN_MASK):
                # A non-sign mask over a boxed value: demote first.
                a = self.demote_bits(a)
            if nanbox.is_boxed(b) and (a & ~B.F64_SIGN_MASK) and not nanbox.is_boxed(a):
                b = self.demote_bits(b)
            ops[0].write64(context, (a ^ b) & U64, lane, fp=True)

    def _emulate_fp_move(self, mn: str, binding: Binding, context):
        ops = binding.operands
        dst, src = ops
        if mn == "movsd":
            if dst.kind == "xmm" and src.kind == "xmm":
                dst.write64(context, src.read64(context, 0, fp=True), 0, fp=True)
            elif dst.kind == "xmm":
                dst.write64(context, src.read64(context, 0, fp=True), 0, fp=True)
                context.write_xmm(dst.index, 0, 1)  # zero high lane
            else:
                dst.write64(context, src.read64(context, 0, fp=True), 0, fp=True)
        elif mn in ("movapd", "movupd"):
            lo = src.read64(context, 0, fp=True)
            hi = src.read64(context, 1, fp=True)
            dst.write64(context, lo, 0, fp=True)
            dst.write64(context, hi, 1, fp=True)
        elif mn == "movq":
            value = src.read64(context, 0, fp=True)
            dst.write64(context, value, 0, fp=True)
            if dst.kind == "xmm":
                context.write_xmm(dst.index, 0, 1)
        elif mn == "movhpd":
            if dst.kind == "xmm":
                dst.write64(context, src.read64(context, 0, fp=True), 1, fp=True)
            else:
                dst.write64(context, src.read64(context, 1, fp=True), 0, fp=True)
        elif mn == "movlpd":
            if dst.kind == "xmm":
                dst.write64(context, src.read64(context, 0, fp=True), 0, fp=True)
            else:
                dst.write64(context, src.read64(context, 0, fp=True), 0, fp=True)
        else:  # pragma: no cover
            raise KeyError(mn)

    def _emulate_int_move(self, mn: str, binding: Binding, context):
        ops = binding.operands
        if mn == "mov":
            ops[0].write64(context, ops[1].read64(context, 0, fp=False), 0, fp=False)
        elif mn == "lea":
            ops[0].write64(context, ops[1].address, 0, fp=False)
        elif mn == "push":
            rsp = (context.read_gpr(RSP) - 8) & U64
            context.write_gpr(RSP, rsp)
            context.memory.write_u64(rsp, ops[0].read64(context, 0, fp=False))
        elif mn == "pop":
            rsp = context.read_gpr(RSP)
            ops[0].write64(context, context.memory.read_u64(rsp), 0, fp=False)
            context.write_gpr(RSP, (rsp + 8) & U64)
        else:  # pragma: no cover
            raise KeyError(mn)
