"""NaN-boxing (§2.2).

A boxed value is a **signaling NaN** whose 52-bit mantissa encodes a
pointer into FPVM's box heap:

- signaling => any arithmetic consumption raises Invalid and traps to
  FPVM (quiet NaNs would flow through silently);
- a 3-bit magic signature distinguishes "our NaNs" from application
  NaNs at a glance;
- the remaining 48 bits carry the pointer;
- the allocator double-checks every candidate pointer ("we extract the
  pointer from the NaN and check to see our allocator remembers it"),
  so a colliding foreign NaN is misclassified only if it both matches
  the signature *and* hits a live allocation — the paper's
  one-in-a-million-at-a-billion-allocations argument.

Sign-bit convention (x64 porosity): compilers negate doubles with
``xorpd`` against a sign mask and that instruction raises no FP
exception, so a boxed NaN can have its sign bit flipped behind FPVM's
back.  We therefore *ignore* the sign bit when recognising boxes and
interpret it as a pending negation when unboxing — making native
``xorpd`` sign flips compose correctly with boxed values.
"""

from __future__ import annotations

from repro.fpu import bits as B

#: bits available for the pointer payload.
NANBOX_PTR_BITS = 48
NANBOX_PTR_MASK = (1 << NANBOX_PTR_BITS) - 1

#: 3-bit signature in mantissa bits 50..48.  Must leave the quiet bit
#: (bit 51) clear and keep the mantissa nonzero => signaling NaN.
NANBOX_MAGIC = 0b101
NANBOX_MAGIC_SHIFT = NANBOX_PTR_BITS
NANBOX_MAGIC_MASK = 0b111 << NANBOX_MAGIC_SHIFT

#: Full pattern for recognition: exponent all ones, quiet bit clear,
#: magic bits set (sign bit deliberately excluded).
_PATTERN_MASK = B.F64_EXP_MASK | B.F64_QNAN_BIT | NANBOX_MAGIC_MASK
_PATTERN = B.F64_EXP_MASK | (NANBOX_MAGIC << NANBOX_MAGIC_SHIFT)


def box_bits(ptr: int, negated: bool = False) -> int:
    """Encode a heap pointer as a boxed sNaN bit pattern."""
    if ptr & ~NANBOX_PTR_MASK:
        raise ValueError(f"pointer {ptr:#x} exceeds {NANBOX_PTR_BITS} bits")
    bits = _PATTERN | ptr
    if negated:
        bits |= B.F64_SIGN_MASK
    return bits


def is_boxed(bits: int) -> bool:
    """Signature check only — callers must confirm with the allocator
    (`allocator.owns(ptr)`) before trusting the pointer."""
    return (bits & _PATTERN_MASK) == _PATTERN


def unbox(bits: int) -> tuple[int, bool]:
    """Return ``(ptr, negated)``.  ``negated`` reflects a sign bit
    flipped by native bitwise code since boxing."""
    if not is_boxed(bits):
        raise ValueError(f"{bits:#x} is not a boxed pattern")
    return bits & NANBOX_PTR_MASK, bool(bits & B.F64_SIGN_MASK)


def classify_nan(bits: int, allocator) -> str:
    """The paper's three-way NaN taxonomy: "ours", "theirs" (the
    application's), or not a NaN at all."""
    if not B.is_nan(bits):
        return "not_nan"
    if is_boxed(bits):
        ptr, _ = unbox(bits)
        if allocator.owns(ptr):
            return "ours"
    return "theirs"
