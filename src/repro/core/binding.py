"""Operand binding (§2.4).

Binding takes a decoded instruction and the trap-time ucontext and
resolves each operand to a concrete accessor: a register slot or a
computed memory address.  The emulator then reads/writes through the
binding without re-deriving addressing.  The ``bind`` ledger category
charges per operand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.isa import GPR_IDS, Imm, Instruction, Label, Mem, Reg, Xmm

U64 = 0xFFFF_FFFF_FFFF_FFFF


@dataclass
class BoundOperand:
    """One resolved operand."""

    kind: str                  # "gpr" | "xmm" | "imm" | "mem"
    index: int = 0             # register id, or 0
    address: int = 0           # effective address for "mem"
    size: int = 8
    immediate: int = 0

    def read64(self, context, lane: int = 0, fp: bool = False) -> int:
        if self.kind == "gpr":
            return context.read_gpr(self.index)
        if self.kind == "xmm":
            return context.read_xmm(self.index, lane)
        if self.kind == "imm":
            return self.immediate & U64
        if self.kind == "mem":
            return context.memory.observed_load(self.address + 8 * lane, self.size, fp)
        raise ValueError(self.kind)

    def write64(self, context, value: int, lane: int = 0, fp: bool = False) -> None:
        if self.kind == "gpr":
            context.write_gpr(self.index, value)
        elif self.kind == "xmm":
            context.write_xmm(self.index, value, lane)
        elif self.kind == "mem":
            context.memory.observed_store(self.address + 8 * lane, value, self.size, fp)
        else:
            raise ValueError(f"cannot write {self.kind} operand")


@dataclass
class Binding:
    """All operands of one instruction, resolved against one ucontext."""

    instruction: Instruction
    operands: list
    #: cycles this binding cost (per-operand), charged by the caller.
    cost_units: int = 0


def effective_address(mem: Mem, context) -> int:
    ea = mem.disp
    if mem.base is not None:
        ea += context.read_gpr(GPR_IDS[mem.base])
    if mem.index is not None:
        ea += context.read_gpr(GPR_IDS[mem.index]) * mem.scale
    return ea & U64


def bind(instr: Instruction, context) -> Binding:
    bound = []
    for op in instr.operands:
        if isinstance(op, Reg):
            bound.append(BoundOperand("gpr", index=op.id))
        elif isinstance(op, Xmm):
            bound.append(BoundOperand("xmm", index=op.id))
        elif isinstance(op, Imm):
            bound.append(BoundOperand("imm", immediate=op.value))
        elif isinstance(op, Mem):
            bound.append(
                BoundOperand("mem", address=effective_address(op, context), size=op.size)
            )
        elif isinstance(op, Label):
            bound.append(BoundOperand("imm", immediate=op.addr or 0))
        else:
            raise TypeError(f"unbindable operand {op!r}")
    return Binding(instr, bound, cost_units=max(len(bound), 1))
