"""The FPVM runtime (§2.1): configuration, attach, trap handlers.

Attachment mirrors the real LD_PRELOAD constructor sequence: install
signal handlers (or open ``/dev/fpvm_dev`` and register the entry stub
when trap short-circuiting is on), unmask the MXCSR exceptions, wrap
foreign functions, find and patch correctness sites, and map the magic
page.  From then on the virtualized program runs natively until the
hardware traps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.altmath import get_altmath
from repro.core import correctness
from repro.core.alloc import BoxAllocator
from repro.core.decode_cache import DecodeCache
from repro.core.emulator import DEFAULT_SUPPORTED, Emulator
from repro.core import nanbox
from repro.core.sequences import SequenceEmulator
from repro.core.telemetry import CycleLedger, Telemetry
from repro.core.wrappers import install_wrappers
from repro.core.analysis import find_memory_escapes
from repro.core.profiler import profile_patch_sites
from repro.errors import BoxHeapExhaustedError
from repro.kernel.fpvm_dev import FPVM_IOCTL_REGISTER_ENTRY, FPVMDevice
from repro.kernel.signals import SIGFPE, SIGTRAP
from repro.machine.costs import DEFAULT_COSTS
from repro.machine.program import PatchKind
from repro.machine.registers import MXCSR_DEFAULT, MXCSR_FPVM
from repro.machine.uops import uops_enabled_default
from repro.observability import FlowRecorder, classify_flags, flow_enabled_default


@dataclass(frozen=True)
class FPVMConfig:
    """One run configuration (the NONE/SEQ/SHORT/SEQ_SHORT axes of §6,
    plus the §5 correctness machinery and ablation knobs)."""

    altmath: str = "boxed_ieee"
    altmath_kwargs: dict = field(default_factory=dict)
    #: §4 instruction sequence emulation (SEQ).
    sequence_emulation: bool = False
    #: §3 trap short-circuiting via the kernel module (SHORT).
    trap_short_circuit: bool = False
    #: §5.2 magic traps (False = baseline int3 + SIGTRAP).
    magic_traps: bool = True
    #: §5.3 foreign-function wrapping (libm + stdio).
    wrap_foreign: bool = True
    magic_wraps: bool = True
    #: §5.1 patch-site discovery: "profiler" | "static" | "none".
    patch_site_source: str = "profiler"
    #: precomputed patch sites (harness caches the profiling run).
    patch_sites: frozenset | None = None
    gc_threshold: int = 4096
    decode_cache_capacity: int = 65536
    collect_trace_stats: bool = True
    supported_instructions: frozenset = DEFAULT_SUPPORTED
    #: §2.3 decreased-precision mode: disable the FP hardware so every
    #: FP instruction traps and is emulated (pair with altmath="lowprec").
    trap_all_fp: bool = False
    #: §3.1 future-work: lazy GPR/FPR save/restore in the entry/exit
    #: stubs (cheaper handler entry at engineering cost in real FPVM).
    lazy_state_save: bool = False
    #: cap on *live* boxes (None = unbounded).  On exhaustion the VM
    #: runs one emergency collection before failing with the typed
    #: :class:`~repro.errors.BoxHeapExhaustedError`.
    box_capacity: int | None = None
    #: micro-op pipeline (host-side throughput; no simulated-semantics
    #: effect).  None = inherit the CPU's setting (the ``FPVM_UOPS``
    #: environment knob); True/False force it for this run.
    uops: bool | None = None
    #: promote a trace into a compiled-trace closure once it has been
    #: emulated this many times (0 disables the compiled tier).
    trace_compile_threshold: int = 8
    #: exception-flow observability: record NaN-box provenance (birth
    #: RIP + trap class + generation), propagation edges, kill sites
    #: and per-RIP trap heatmaps.  None = the ``FPVM_FLOW`` environment
    #: knob (default off); True/False force it for this run.  Purely
    #: observational: architectural state and cycle accounting are
    #: identical either way.
    flow: bool | None = None

    # ------------------------------------------------- §6 preset configs
    @classmethod
    def none(cls, **kw) -> "FPVMConfig":
        return cls(sequence_emulation=False, trap_short_circuit=False, **kw)

    @classmethod
    def seq(cls, **kw) -> "FPVMConfig":
        return cls(sequence_emulation=True, trap_short_circuit=False, **kw)

    @classmethod
    def short(cls, **kw) -> "FPVMConfig":
        return cls(sequence_emulation=False, trap_short_circuit=True, **kw)

    @classmethod
    def seq_short(cls, **kw) -> "FPVMConfig":
        return cls(sequence_emulation=True, trap_short_circuit=True, **kw)

    def with_(self, **kw) -> "FPVMConfig":
        return replace(self, **kw)


class FPVM:
    """One attached FPVM instance (per process/thread)."""

    def __init__(self, config: FPVMConfig | None = None):
        self.config = config or FPVMConfig()
        self.cpu = None
        self.kernel = None
        self.program = None
        self.costs = DEFAULT_COSTS
        self.ledger = CycleLedger()
        self.telemetry = Telemetry()
        self.altmath = get_altmath(self.config.altmath, **self.config.altmath_kwargs)
        self.allocator = BoxAllocator(gc_threshold=self.config.gc_threshold,
                                      capacity=self.config.box_capacity)
        self.decode_cache = DecodeCache(self.config.decode_cache_capacity)
        self.emulator = Emulator(self)
        self.sequencer = SequenceEmulator(self)
        self._device_handle = None
        self._thread_handles = []
        #: addr -> patch generation at attach time (per-site map).
        self.patched_sites: dict[int, int] = {}
        self.process = None
        self.attached = False
        #: test seam: lane mask the handler body "trashes" host-side
        #: (models the handler's own FP code clobbering the bank).  The
        #: entry save must protect every guest lane against exactly
        #: this — eager mode by saving all 32 lanes, lazy mode by
        #: declaring the emulated instruction's operand lanes.
        self.fp_scribble_mask = 0
        self.uops_enabled = (
            self.config.uops if self.config.uops is not None
            else uops_enabled_default()
        )
        #: exception-flow recorder, or None when disabled — every hook
        #: site guards on that, so the disabled path costs nothing.
        flow_on = (self.config.flow if self.config.flow is not None
                   else flow_enabled_default())
        self.flow = FlowRecorder() if flow_on else None
        if self.flow is not None:
            self.allocator.on_free = self.flow.on_free

    # ------------------------------------------------------------ attach
    def attach(self, cpu, kernel) -> "FPVM":
        """The LD_PRELOAD constructor: runs before the program's main."""
        self.cpu = cpu
        self.kernel = kernel
        self.program = cpu.program
        self.costs = cpu.costs
        self.ledger.bind_cpu(cpu)
        kernel.ledger = self.ledger

        # Trap delegation: bespoke device or POSIX signals (§2.1, §3).
        # The SIGFPE handler is installed even when short-circuiting:
        # exactly like the real LD_PRELOAD constructor, it is the
        # fallback path if the device registration is ever revoked
        # (fd closed, module unloaded) — the process degrades to
        # general signal delivery instead of dying.
        kernel.sigaction(SIGFPE, self._on_sigfpe)
        if self.config.trap_short_circuit:
            device = kernel.fpvm_module or FPVMDevice(kernel)
            self._device_handle = device.open(cpu)
            self._device_handle.ioctl(FPVM_IOCTL_REGISTER_ENTRY, self._entry_stub)
        kernel.sigaction(SIGTRAP, self._on_sigtrap)

        # Configure the thread's mxcsr to trap (§2.3).
        cpu.regs.mxcsr = MXCSR_FPVM
        cpu.fp_disabled = self.config.trap_all_fp

        # Micro-op pipeline: the config can force it either way; by
        # default the CPU's own setting (FPVM_UOPS knob) stands.
        if self.config.uops is not None:
            cpu.uops_enabled = self.config.uops
        self.uops_enabled = cpu.uops_enabled

        # Foreign function wrapping (§5.3).
        if self.config.wrap_foreign:
            install_wrappers(self, self.program, magic=self.config.magic_wraps)

        # Magic page + correctness patches (§5.1, §5.2).  Patching goes
        # through the program's per-site generation map: only caches
        # covering these addresses invalidate, and the guest-visible
        # DATA view of text stays bit-identical throughout.
        handler_id = correctness.register_demotion_handler(self._magic_demote)
        correctness.map_magic_page(cpu, handler_id)
        fetch_view = self.program.fetch_view
        self.patched_sites = {}
        for addr in self._discover_patch_sites():
            if self.config.magic_traps:
                self.program.patch_call(addr, correctness.MagicTrampoline())
            else:
                self.program.patch_int3(addr)
            self.patched_sites[addr] = fetch_view.generation_at(addr)
        self.attached = True
        return self

    def attach_process(self, process, kernel) -> "FPVM":
        """Attach to a multi-threaded process (§2.1): virtualize the
        main thread now and intercept every future thread spawn the way
        the real FPVM intercepts pthread/clone()."""
        self.process = process
        process.kernel = kernel
        self.attach(process.main, kernel)
        process.on_thread_spawn.append(self._on_thread_spawn)
        # Threads spawned before attach (unusual) get contexts too.
        for thread in process.threads[1:]:
            self._on_thread_spawn(process, thread)
        return self

    def _on_thread_spawn(self, process, thread) -> None:
        """Create this thread's execution context: unmask its MXCSR and
        register it for short-circuit delivery."""
        thread.regs.mxcsr = MXCSR_FPVM
        thread.fp_disabled = self.config.trap_all_fp
        thread.kernel = self.kernel
        # Same uop-pipeline policy as attach(): a forced config wins
        # over whatever the spawn path inherited.
        if self.config.uops is not None:
            thread.uops_enabled = self.config.uops
        if self.config.trap_short_circuit:
            handle = self.kernel.fpvm_module.open(thread)
            handle.ioctl(FPVM_IOCTL_REGISTER_ENTRY, self._entry_stub)
            self._thread_handles.append(handle)

    def detach(self) -> None:
        """Shutdown: close the device (revoking registration) and
        restore the default FP environment."""
        if self._device_handle is not None:
            self._device_handle.close()
            self._device_handle = None
        for handle in self._thread_handles:
            handle.close()
        self._thread_handles.clear()
        if self.cpu is not None:
            self.cpu.regs.mxcsr = MXCSR_DEFAULT
            self.cpu.fp_disabled = False
        self.attached = False

    def _discover_patch_sites(self):
        """Patch-site discovery runs over the pristine instruction
        stream — the DATA view's semantics — and every discovered site
        is validated against it before patching, so discovery can never
        be perturbed by instrumentation already applied (the profiler
        copies the program, which resets patch state anyway)."""
        cfg = self.config
        data_view = self.program.data_view
        if cfg.patch_sites is not None:
            sites = sorted(cfg.patch_sites)
        elif cfg.patch_site_source == "profiler":
            sites = sorted(profile_patch_sites(self.program))
        elif cfg.patch_site_source == "static":
            sites = sorted(find_memory_escapes(self.program).patch_sites)
        elif cfg.patch_site_source == "none":
            sites = []
        else:
            raise ValueError(f"bad patch_site_source {cfg.patch_site_source!r}")
        for addr in sites:
            data_view.instruction_at(addr)  # validate against pristine text
        return sites

    # ---------------------------------------------------------- handlers
    def _on_sigfpe(self, signum, context, trap) -> None:
        if self._handle_fp(context, trap):
            self.telemetry.signal_traps += 1

    def _entry_stub(self, context, trap) -> None:
        """Landing pad for short-circuited delivery: the entry stub has
        already built the live ucontext (§3.1)."""
        if self._handle_fp(context, trap):
            self.telemetry.short_circuit_traps += 1

    def _handle_fp(self, context, trap) -> bool:
        """Handle one FP trap delivery; returns False if the delivery
        was spurious (sanity-checked and ignored)."""
        # Charge the thread that trapped (matters under multithreading).
        self.ledger.bind_cpu(context.cpu)
        entry_cost = (
            self.costs.handler_entry_lazy
            if self.config.lazy_state_save
            else self.costs.handler_entry
        )
        self.charge("emul", entry_cost)
        # Delivery sanity check: x64 #XF is fault-style, so a genuine
        # delivery always lands with RIP at the faulting instruction.
        # Anything else (e.g. a duplicated signal whose first copy was
        # already handled) is spurious — emulating from a stale trap
        # address would corrupt state, so recover by ignoring it.
        if context.rip != trap.addr:
            self.telemetry.spurious_traps += 1
            return False
        self.telemetry.traps += 1
        if self.flow is not None:
            self.flow.begin_trap(trap.addr, classify_flags(trap.fp_flags))
        saved = self._fp_entry_save(context, trap)
        resume = self.sequencer.handle_fp_trap(context, trap)
        if self.flow is not None:
            self.flow.end_trap()
        self._fp_exit_restore(context, saved)
        context.rip = resume
        self._maybe_gc(context)
        return True

    # ------------------------------------ clobber-masked state save (§3.1)
    def _fp_entry_save(self, context, trap) -> dict[int, int]:
        """Entry-stub XMM save.  Eager mode snapshots all 32 lanes; lazy
        mode saves only the trapped instruction's declared clobber set
        (its XMM operand lanes) — the registers the handler's host-side
        emulation code actually touches.  Returns lane-index -> value."""
        if self.config.lazy_state_save:
            instr = context.cpu.program.by_addr.get(trap.addr)
            mask = instr.xmm_operands() if instr is not None else 0xFFFF_FFFF
        else:
            mask = 0xFFFF_FFFF
        saved: dict[int, int] = {}
        m = mask
        while m:
            bit = m & -m
            idx = bit.bit_length() - 1
            saved[idx] = context.read_xmm(idx >> 1, idx & 1)
            m ^= bit
        self.ledger.count("fp_handler_lanes_saved", len(saved))
        if self.fp_scribble_mask:
            # Armed seam: the handler body trashes these lanes.
            m = self.fp_scribble_mask
            while m:
                bit = m & -m
                idx = bit.bit_length() - 1
                context.raw_write_xmm(idx >> 1, 0xDEAD_BEEF_DEAD_BEEF, idx & 1)
                m ^= bit
        return saved

    def _fp_exit_restore(self, context, saved: dict[int, int]) -> None:
        """Exit-stub restore: put back every saved lane the handler did
        not write as a result.  In a clean run this is value-identical
        to doing nothing; with the scribble seam armed it is what keeps
        handler host code from leaking into guest state."""
        written = context.written_xmm
        restored = 0
        for idx, value in saved.items():
            if not (written >> idx) & 1:
                context.raw_write_xmm(idx >> 1, value, idx & 1)
                restored += 1
        self.ledger.count("fp_handler_lanes_restored", restored)

    def _on_sigtrap(self, signum, context, trap) -> None:
        """Baseline int3 correctness trap: demote then single-step."""
        self.charge("corr", self.costs.corr_handler)
        correctness.demote_instruction_inputs(self, context, trap.addr)
        context.rip = trap.addr
        context.suppress_patch_at = trap.addr

    def _magic_demote(self, cpu, addr: int) -> None:
        """Magic-trap demotion handler (reached via the trampoline and
        magic page; the call overhead was charged by the CPU)."""
        self.ledger.charge("corr", self.costs.magic_call + self.costs.magic_save_restore,
                           cpu_time=False)  # CPU already paid the call
        self.charge("corr", self.costs.corr_handler)
        correctness.demote_instruction_inputs(self, cpu, addr)

    # ------------------------------------------------------------ GC
    def _gc_roots(self, context) -> list[int]:
        """Register roots as seen from a handler: the authoritative
        values live in the (possibly frame-mode) context, plus every
        other thread's live registers (§2.5's per-thread scan)."""
        roots = [context.read_gpr(i) for i in range(16)]
        for xid in range(16):
            roots.append(context.read_xmm(xid, 0))
            roots.append(context.read_xmm(xid, 1))
        if self.process is not None:
            for thread in self.process.threads:
                if thread is context.cpu:
                    continue
                roots.extend(thread.regs.gpr)
                for lanes in thread.regs.xmm:
                    roots.extend(lanes)
        return roots

    def _run_gc(self, roots: list[int] | None) -> int:
        collected, pages = self.allocator.collect(self.cpu, reg_roots=roots)
        cost = pages * self.costs.gc_per_page
        cost += (collected + self.allocator.live_count) * self.costs.gc_per_object
        self.charge("gc", cost)
        self.telemetry.gc_runs += 1
        self.telemetry.gc_objects_collected += collected
        return collected

    def _maybe_gc(self, context) -> None:
        if not self.allocator.needs_gc():
            return
        self._run_gc(self._gc_roots(context))

    def alloc_box(self, value, context=None) -> int:
        """Allocate a box, falling back to one emergency collection if
        the heap is at capacity.  ``context`` supplies the authoritative
        register roots when called from inside a trap handler; from
        wrapper (host-call) code the live CPU registers are correct."""
        try:
            return self.allocator.alloc(value)
        except BoxHeapExhaustedError:
            roots = None
            if context is not None and hasattr(context, "read_gpr"):
                roots = self._gc_roots(context)
            self.telemetry.emergency_gc_runs += 1
            self._run_gc(roots)
            # Still-full heap raises the typed error to the caller: the
            # live set genuinely exceeds the configured capacity.
            return self.allocator.alloc(value)

    # ------------------------------------------------------- accounting
    def charge(self, category: str, cycles: int) -> None:
        self.ledger.charge(category, cycles)

    def charge_alt(self, op: str) -> None:
        self.charge("altmath", self.altmath.costs.op(op))

    def charge_alt_convert(self) -> None:
        self.charge("altmath", self.altmath.costs.convert)

    # ----------------------------------------------- wrapper-facing API
    def resolve_bits_to_alt(self, bits: int):
        """Unbox ours / promote everything else (used by libm wrappers)."""
        if nanbox.is_boxed(bits):
            ptr, negated = nanbox.unbox(bits)
            if self.allocator.owns(ptr):
                if self.flow is not None:
                    self.flow.note_source(ptr)
                self.charge("altmath", self.altmath.costs.load)
                value = self.allocator.load(ptr)
                if negated:
                    self.charge_alt("neg")
                    value = self.altmath.unary("neg", value)
                return value
        self.charge("altmath", self.altmath.costs.promote)
        self.telemetry.promotions += 1
        return self.altmath.promote(bits)

    # ------------------------------------------------------------ stats
    @property
    def trace_stats(self):
        return self.sequencer.stats
