"""Static memory-escape analysis (§2.6): the conservative baseline the
profiler replaces.

The real FPVM performed binary-level Value Set Analysis to find every
integer instruction a floating point value might flow into through
memory — equivalent to alias analysis, with runtime and memory demands
that "tend to explode" (Enzo: days of runtime, terabytes of swap).

This reproduction implements a sound, flow-insensitive abstraction
over the simulated ISA with the same *precision character*:

- FP stores to **direct** addresses (rip-relative / absolute) taint
  that 8-byte location precisely;
- FP stores through **registers** (any base/index addressing) taint a
  single summary bucket covering all indirect memory — the point where
  alias analysis gives up without heavyweight value tracking;
- an integer load is a patch site if it reads a tainted direct
  location, or reads indirectly while the summary bucket is tainted,
  or reads any direct location when the summary is tainted (an
  indirect FP store could have aliased it).

The result is a superset of the profiler's findings (§5.1: "The
profiler will identify fewer instructions ... because it is
dynamically considering the flows in a specific run instead of
statically considering all possible flows").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.isa import Instruction, Mem, OpClass, Reg, Xmm
from repro.machine.program import Program

#: FP-typed store mnemonics (compilers tag double stores; §5.1 fn 4).
FP_STORE_MNEMONICS = frozenset(
    {"movsd", "movapd", "movupd", "movhpd", "movlpd", "movq"}
)


@dataclass
class AnalysisResult:
    """Patch sites plus the taint evidence (for tests/diagnostics)."""

    patch_sites: set[int] = field(default_factory=set)
    tainted_direct: set[int] = field(default_factory=set)
    indirect_tainted: bool = False


def _is_direct(mem: Mem) -> bool:
    return mem.base is None and mem.index is None


def find_memory_escapes(program: Program) -> AnalysisResult:
    """Run the conservative analysis over the whole text section."""
    result = AnalysisResult()

    # Pass 1: collect taint.  Flow-insensitive: order doesn't matter,
    # so one linear scan reaches the fixed point.
    for instr in program.instructions:
        mem = instr.memory_operand()
        if mem is None:
            continue
        if _fp_stores_to_memory(instr):
            if _is_direct(mem):
                base = mem.disp & ~7
                result.tainted_direct.add(base)
                if instr.mnemonic in ("movapd", "movupd"):
                    result.tainted_direct.add(base + 8)
            else:
                result.indirect_tainted = True

    # Pass 2: find integer loads of possibly-FP memory.
    for instr in program.instructions:
        mem = instr.memory_operand()
        if mem is None:
            continue
        if not _int_loads_from_memory(instr):
            continue
        if _is_direct(mem):
            if (mem.disp & ~7) in result.tainted_direct or result.indirect_tainted:
                result.patch_sites.add(instr.addr)
        else:
            if result.indirect_tainted or result.tainted_direct:
                result.patch_sites.add(instr.addr)

    return result


def _fp_stores_to_memory(instr: Instruction) -> bool:
    if instr.mnemonic not in FP_STORE_MNEMONICS:
        return False
    dst = instr.operands[0]
    src = instr.operands[1] if len(instr.operands) > 1 else None
    # movq only counts as FP-typed when the data comes from an XMM reg.
    if instr.mnemonic == "movq":
        return isinstance(dst, Mem) and isinstance(src, Xmm)
    return isinstance(dst, Mem)


def _int_loads_from_memory(instr: Instruction) -> bool:
    """Integer-side reads: mov/ALU reading memory into the GPR world
    (plus movq xmm<-mem is FP-typed, excluded)."""
    if instr.opclass not in (OpClass.INT_MOV, OpClass.INT_ALU):
        return False
    if instr.mnemonic in ("lea",):
        return False  # address computation, no load
    mem = instr.memory_operand()
    if mem is None:
        return False
    if instr.mnemonic == "mov":
        return isinstance(instr.operands[1], Mem)
    if instr.mnemonic == "push":
        return isinstance(instr.operands[0], Mem)
    if instr.mnemonic == "pop":
        return False  # stack read, never app FP data in this model
    # ALU with a memory operand reads it (either position).
    return True
