"""The decode cache (§2.4), which sequence emulation turns into a
software trace cache (§4.2).

Keyed by instruction address.  A hit costs ``decache`` cycles; a miss
invokes the Capstone-analog decoder over the instruction's raw bytes
and costs ``decode`` cycles.  The default capacity is the paper's: 64K
entries (runs in the paper never exceed ~2000 live entries; §6.3).

Entries are stored as lowered :class:`~repro.machine.uops.MicroOp`\\ s
— the same pre-decoded IR the CPU's superblock engine executes — so a
hit hands the emulator an instruction whose operand metadata and
dispatch decision were resolved exactly once.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import DecodeCacheCorruptionError
from repro.machine.decoder import decode_instruction
from repro.machine.uops import MicroOp, lower


class DecodeCache:
    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, MicroOp]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, addr: int) -> MicroOp | None:
        uop = self._entries.get(addr)
        if uop is not None:
            if uop.addr != addr:
                # A hit must describe the instruction *at this address*;
                # anything else means the cache was corrupted (aliased
                # insert, bad eviction bookkeeping, external tampering)
                # and emulating it would run the wrong instruction.
                raise DecodeCacheCorruptionError(
                    f"decode cache entry at {addr:#x} decodes "
                    f"{uop.mnemonic} @ {uop.addr:#x}"
                )
            self.hits += 1
            self._entries.move_to_end(addr)
            return uop
        return None

    def insert(self, addr: int, instr) -> None:
        """Accepts a raw :class:`Instruction` (lowered on the way in) or
        an already-lowered :class:`MicroOp`."""
        if not isinstance(instr, MicroOp):
            instr = lower(instr)
        self._entries[addr] = instr
        self._entries.move_to_end(addr)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)  # evict LRU

    def decode_miss(self, addr: int, raw: bytes) -> MicroOp:
        """Decode from bytes (the expensive path) and fill the cache."""
        self.misses += 1
        uop = lower(decode_instruction(raw, addr=addr))
        self.insert(addr, uop)
        return uop

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, addr: int) -> bool:
        return addr in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
