"""FPVM — the floating point virtual machine (the paper's primary
contribution, plus this paper's three accelerations).

Composition, bottom-up:

- :mod:`repro.core.nanbox` / :mod:`repro.core.alloc` — NaN-boxed value
  representation, the allocator, and the conservative mark-and-sweep GC
  (§2.2, §2.5);
- :mod:`repro.core.decode_cache` / :mod:`repro.core.binding` /
  :mod:`repro.core.emulator` — decode/bind/emulate, the per-trap
  pipeline (§2.4);
- :mod:`repro.core.sequences` — instruction sequence emulation and the
  trace statistics used for §6.3;
- :mod:`repro.core.analysis` / :mod:`repro.core.profiler` — the static
  and profiling-based patch-site finders (§2.6, §5.1);
- :mod:`repro.core.correctness` / :mod:`repro.core.wrappers` — magic
  traps and magic wraps (§5.2, §5.3);
- :mod:`repro.core.vm` — the FPVM runtime tying it together
  (LD_PRELOAD-style attach, signal or /dev registration, telemetry).
"""

from repro.core.telemetry import CycleLedger, Telemetry
from repro.core.nanbox import (
    box_bits,
    is_boxed,
    unbox,
    NANBOX_PTR_BITS,
)
from repro.core.alloc import BoxAllocator
from repro.core.decode_cache import DecodeCache
from repro.core.vm import FPVM, FPVMConfig

__all__ = [
    "CycleLedger",
    "Telemetry",
    "box_bits",
    "is_boxed",
    "unbox",
    "NANBOX_PTR_BITS",
    "BoxAllocator",
    "DecodeCache",
    "FPVM",
    "FPVMConfig",
]
