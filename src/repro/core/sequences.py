"""Instruction sequence emulation (§4) and trace statistics (§6.3).

On each #XF trap, FPVM emulates the faulting instruction and then — if
sequence emulation is enabled — keeps decoding/binding/emulating
successive instructions until:

(1) it meets an instruction it cannot decode/bind/emulate (including
    any control flow, any patched instruction, and the deliberately
    unsupported partial moves like ``movhpd``), or
(2) it meets an FP instruction it *could* emulate whose source
    operands carry no NaN-boxed value — emulating it would be
    unwarranted software execution (§4.1), so FPVM returns to the
    program and lets it run (and possibly immediately fault) natively.

The decode cache doubles as the software trace cache: the terminator
is inserted into the cache too, so re-encounters hit on every
instruction (§4.2).

When statistics collection is on, every distinct trace (sequence of
instruction addresses) is recorded with its hit count and terminator,
powering Figures 7-10.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.machine.isa import Instruction


@dataclass
class TraceRecord:
    addrs: tuple[int, ...]
    count: int = 0
    terminator: str = ""          # mnemonic of the terminating instruction
    reason: str = ""              # "unsupported" | "no_boxed_source" | "single"

    @property
    def length(self) -> int:
        return len(self.addrs)

    @property
    def emulated_instructions(self) -> int:
        return self.count * self.length


class TraceStatistics:
    """The optional detailed profile of §4.2/§6.3."""

    def __init__(self) -> None:
        self.traces: dict[tuple[int, ...], TraceRecord] = {}

    def record(self, addrs: tuple[int, ...], terminator: str, reason: str) -> None:
        rec = self.traces.get(addrs)
        if rec is None:
            rec = TraceRecord(addrs=addrs, terminator=terminator, reason=reason)
            self.traces[addrs] = rec
        rec.count += 1

    # ------------------------------------------------------- aggregates
    def total_sequences(self) -> int:
        return sum(r.count for r in self.traces.values())

    def total_emulated(self) -> int:
        return sum(r.emulated_instructions for r in self.traces.values())

    def by_popularity(self) -> list[TraceRecord]:
        """Traces ranked by emulated-instruction contribution."""
        return sorted(
            self.traces.values(),
            key=lambda r: (-r.emulated_instructions, r.addrs),
        )

    def rank_popularity_cdf(self) -> list[float]:
        """Figure 8: cumulative % of emulated instructions covered by
        the top-k traces, for k = 1..N."""
        total = self.total_emulated()
        if total == 0:
            return []
        out = []
        acc = 0
        for rec in self.by_popularity():
            acc += rec.emulated_instructions
            out.append(100.0 * acc / total)
        return out

    def length_cdf(self) -> list[tuple[int, float]]:
        """Figure 9: CDF over *encountered* sequences of their length."""
        counts = Counter()
        for rec in self.traces.values():
            counts[rec.length] += rec.count
        total = sum(counts.values())
        if total == 0:
            return []
        out = []
        acc = 0
        for length in sorted(counts):
            acc += counts[length]
            out.append((length, 100.0 * acc / total))
        return out

    def weighted_length_by_rank(self) -> list[float]:
        """Figure 10: if only the top-k traces were cached, what would
        the average emulated sequence length be?"""
        out = []
        n_seq = 0
        n_instr = 0
        for rec in self.by_popularity():
            n_seq += rec.count
            n_instr += rec.emulated_instructions
            out.append(n_instr / n_seq)
        return out

    def average_sequence_length(self) -> float:
        seqs = self.total_sequences()
        return self.total_emulated() / seqs if seqs else 0.0

    def format_trace(self, rec: TraceRecord, program) -> str:
        """Figure 7-style dump: the instructions of a trace, with the
        terminator annotated."""
        lines = []
        for addr in rec.addrs:
            lines.append(f"  {program.by_addr[addr]}")
        term_addr = rec.addrs[-1] + program.by_addr[rec.addrs[-1]].size
        term = program.by_addr.get(term_addr)
        if term is not None:
            lines.append(f"* {term}    ; terminator ({rec.reason})")
        return "\n".join(lines)


class SequenceEmulator:
    """Drives the emulate-until-termination loop for one trap."""

    def __init__(self, vm) -> None:
        self.vm = vm
        self.stats = TraceStatistics() if vm.config.collect_trace_stats else None

    def handle_fp_trap(self, context, trap) -> int:
        """Emulate starting at the faulting instruction; returns the
        address execution should resume at."""
        vm = self.vm
        addr = trap.addr
        emulated: list[int] = []
        terminator = ""
        reason = "single"

        while True:
            instr = self._fetch(addr)
            if emulated:
                stop, why = self._should_stop(instr, context)
                if stop:
                    terminator, reason = instr.mnemonic, why
                    break
            ok = vm.emulator.emulate(instr, context)
            if not ok:
                if not emulated:
                    raise RuntimeError(
                        f"faulting instruction {instr} is not emulatable"
                    )
                terminator, reason = instr.mnemonic, "unsupported"
                break
            emulated.append(addr)
            addr += instr.size
            if not vm.config.sequence_emulation:
                nxt = vm.program.by_addr.get(addr)
                terminator = nxt.mnemonic if nxt is not None else ""
                reason = "single"
                break

        vm.telemetry.sequences += 1
        if self.stats is not None:
            self.stats.record(tuple(emulated), terminator, reason)
        return addr

    def _fetch(self, addr: int) -> Instruction:
        """Decode-cache lookup with cost charging; misses also insert
        the sequence-terminating instruction (trace-cache behaviour)."""
        vm = self.vm
        cached = vm.decode_cache.lookup(addr)
        if cached is not None:
            vm.charge("decache", vm.costs.decode_cache_hit)
            vm.telemetry.decode_hits += 1
            return cached
        vm.charge("decache", vm.costs.decode_cache_hit)  # the failed probe
        vm.charge("decode", vm.costs.decode_miss)
        vm.telemetry.decode_misses += 1
        raw = vm.program.raw_bytes_at(addr)
        return vm.decode_cache.decode_miss(addr, raw)

    def _should_stop(self, instr: Instruction, context) -> tuple[bool, str]:
        vm = self.vm
        # Patched instructions carry correctness hooks that emulation
        # would silently skip: always hand them back to the CPU.
        if instr.addr in vm.program.patches:
            return True, "unsupported"
        if not vm.emulator.supported(instr):
            return True, "unsupported"
        if instr.is_fp_trap_capable() and instr.mnemonic != "cvtsi2sd":
            if not vm.emulator.any_source_boxed(instr, context):
                return True, "no_boxed_source"
        return False, ""
