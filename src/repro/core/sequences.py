"""Instruction sequence emulation (§4) and trace statistics (§6.3).

On each #XF trap, FPVM emulates the faulting instruction and then — if
sequence emulation is enabled — keeps decoding/binding/emulating
successive instructions until:

(1) it meets an instruction it cannot decode/bind/emulate (including
    any control flow, any patched instruction, and the deliberately
    unsupported partial moves like ``movhpd``), or
(2) it meets an FP instruction it *could* emulate whose source
    operands carry no NaN-boxed value — emulating it would be
    unwarranted software execution (§4.1), so FPVM returns to the
    program and lets it run (and possibly immediately fault) natively.

The decode cache doubles as the software trace cache: the terminator
is inserted into the cache too, so re-encounters hit on every
instruction (§4.2).

When statistics collection is on, every distinct trace (sequence of
instruction addresses) is recorded with its hit count and terminator,
powering Figures 7-10.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.machine.isa import Instruction
from repro.machine.uops import lower, shared_cache


@dataclass
class TraceRecord:
    addrs: tuple[int, ...]
    count: int = 0
    terminator: str = ""          # mnemonic of the terminating instruction
    reason: str = ""              # "unsupported" | "no_boxed_source" | "single"

    @property
    def length(self) -> int:
        return len(self.addrs)

    @property
    def emulated_instructions(self) -> int:
        return self.count * self.length


class TraceStatistics:
    """The optional detailed profile of §4.2/§6.3."""

    def __init__(self) -> None:
        self.traces: dict[tuple[int, ...], TraceRecord] = {}

    def record(self, addrs: tuple[int, ...], terminator: str, reason: str) -> None:
        rec = self.traces.get(addrs)
        if rec is None:
            rec = TraceRecord(addrs=addrs, terminator=terminator, reason=reason)
            self.traces[addrs] = rec
        rec.count += 1

    # ------------------------------------------------------- aggregates
    def total_sequences(self) -> int:
        return sum(r.count for r in self.traces.values())

    def total_emulated(self) -> int:
        return sum(r.emulated_instructions for r in self.traces.values())

    def by_popularity(self) -> list[TraceRecord]:
        """Traces ranked by emulated-instruction contribution."""
        return sorted(
            self.traces.values(),
            key=lambda r: (-r.emulated_instructions, r.addrs),
        )

    def rank_popularity_cdf(self) -> list[float]:
        """Figure 8: cumulative % of emulated instructions covered by
        the top-k traces, for k = 1..N."""
        total = self.total_emulated()
        if total == 0:
            return []
        out = []
        acc = 0
        for rec in self.by_popularity():
            acc += rec.emulated_instructions
            out.append(100.0 * acc / total)
        return out

    def length_cdf(self) -> list[tuple[int, float]]:
        """Figure 9: CDF over *encountered* sequences of their length."""
        counts = Counter()
        for rec in self.traces.values():
            counts[rec.length] += rec.count
        total = sum(counts.values())
        if total == 0:
            return []
        out = []
        acc = 0
        for length in sorted(counts):
            acc += counts[length]
            out.append((length, 100.0 * acc / total))
        return out

    def weighted_length_by_rank(self) -> list[float]:
        """Figure 10: if only the top-k traces were cached, what would
        the average emulated sequence length be?"""
        out = []
        n_seq = 0
        n_instr = 0
        for rec in self.by_popularity():
            n_seq += rec.count
            n_instr += rec.emulated_instructions
            out.append(n_instr / n_seq)
        return out

    def average_sequence_length(self) -> float:
        seqs = self.total_sequences()
        return self.total_emulated() / seqs if seqs else 0.0

    def format_trace(self, rec: TraceRecord, program) -> str:
        """Figure 7-style dump: the instructions of a trace, with the
        terminator annotated."""
        lines = []
        for addr in rec.addrs:
            lines.append(f"  {program.by_addr[addr]}")
        term_addr = rec.addrs[-1] + program.by_addr[rec.addrs[-1]].size
        term = program.by_addr.get(term_addr)
        if term is not None:
            lines.append(f"* {term}    ; terminator ({rec.reason})")
        return "\n".join(lines)


@dataclass
class CompiledTrace:
    """A hot trace promoted into a pre-resolved closure (§4.2's trace
    cache made literal).

    ``steps`` caches per-address what the interpreted loop re-derives
    on every trap: whether the boxed-source probe applies (static:
    FP-trap-capable and not ``cvtsi2sd``) and the instruction size.
    Execution still fetches each instruction through the decode cache
    (identical charging and hit accounting) and runs the data-dependent
    probes — only the host-side re-decisions (patch lookups, supported
    checks, loop control) are compiled away.  Built only for trace
    shapes whose mid-trace stops are data probes; anything else stays
    interpreted.
    """

    entry: int
    #: (addr, probe_needed) per emulated instruction of the hot trace.
    steps: list[tuple[int, bool]]
    #: address of the recorded terminator (first non-emulated instr).
    end: int
    hits: int = 0


class SequenceEmulator:
    """Drives the emulate-until-termination loop for one trap.

    Hot traces — the same emulated address sequence seen
    ``trace_compile_threshold`` times — are promoted into
    :class:`CompiledTrace` closures keyed by entry address.  The
    compiled tier lives in the attached CPU's shared
    :class:`~repro.machine.uops.SuperblockCache` (``seq_traces``), so
    sequence traces, superblocks, and fused chain traces share one
    eviction policy: per-site invalidation over ``Program.patch_events``
    drops exactly the artifacts covering a changed patch site (a patch
    appearing mid-trace must terminate emulation, and a stale compiled
    trace would silently run through it — so any trace with the site
    strictly inside its step list goes; unrelated traces stay warm).
    The emulator keeps its own event cursor as well — stepwise runs
    never drive the uop engine's cache sync, and stale ``_heat``
    entries must prune with the traces.
    """

    def __init__(self, vm) -> None:
        self.vm = vm
        self.stats = TraceStatistics() if vm.config.collect_trace_stats else None
        self._compiled: dict[int, CompiledTrace] = {}  # pre-attach fallback
        self._heat: Counter = Counter()
        self._epoch: int | None = None
        self._threshold = getattr(vm.config, "trace_compile_threshold", 0)

    def _trace_cache(self) -> dict:
        """The unified per-process trace cache once a CPU is attached;
        the private dict stands in before attach (bare unit tests)."""
        cpu = self.vm.cpu
        if cpu is None:
            return self._compiled
        return shared_cache(cpu).seq_traces

    @property
    def compiled(self) -> dict:
        """Entry address -> :class:`CompiledTrace` (the unified cache)."""
        return self._trace_cache()

    def handle_fp_trap(self, context, trap) -> int:
        """Emulate starting at the faulting instruction; returns the
        address execution should resume at."""
        vm = self.vm
        addr = trap.addr
        compiled = self._trace_cache()
        seq = vm.program.patch_seq
        if seq != self._epoch:
            if self._epoch is None or seq < self._epoch:
                # first observation: adopt the cursor, nothing compiled
                # under an unseen patch state.
                pass
            else:
                sites = set(vm.program.patch_events[self._epoch:seq])
                if sites:
                    for entry in [
                        e for e, t in compiled.items()
                        if e in sites or any(a in sites for a, _ in t.steps[1:])
                    ]:
                        del compiled[entry]
                    for key in [k for k in self._heat
                                if any(a in sites for a in k)]:
                        del self._heat[key]
            self._epoch = seq
        trace = compiled.get(addr)
        if trace is not None:
            return self._run_compiled(trace, context)
        return self._interpret(context, addr, [])

    def _interpret(self, context, addr: int, emulated: list[int]) -> int:
        """The interpreted emulate-until-termination loop.  ``emulated``
        carries the prefix already executed by a compiled trace whose
        recorded terminator turned out not to stop this time."""
        vm = self.vm
        terminator = ""
        reason = "single"

        while True:
            instr = self._fetch(addr)
            if emulated:
                stop, why = self._should_stop(instr, context)
                if stop:
                    terminator, reason = instr.mnemonic, why
                    break
            ok = vm.emulator.emulate(instr, context)
            if not ok:
                if not emulated:
                    raise RuntimeError(
                        f"faulting instruction {instr} is not emulatable"
                    )
                terminator, reason = instr.mnemonic, "unsupported"
                break
            emulated.append(addr)
            addr += instr.size
            if not vm.config.sequence_emulation:
                nxt = vm.program.by_addr.get(addr)
                terminator = nxt.mnemonic if nxt is not None else ""
                reason = "single"
                break

        self._finish(tuple(emulated), terminator, reason)
        return addr

    # ------------------------------------------------- compiled tier
    def _run_compiled(self, trace: CompiledTrace, context) -> int:
        """Replay a hot trace.  Charging, decode-cache traffic, and all
        data-dependent decisions are identical to the interpreted loop;
        divergence (an earlier probe stop, or a recorded terminator that
        no longer stops) is handled exactly as a fresh walk would."""
        vm = self.vm
        emulator = vm.emulator
        vm.telemetry.compiled_trace_hits += 1
        trace.hits += 1
        emulated: list[int] = []
        for addr, probe in trace.steps:
            uop = self._fetch(addr)
            if emulated and probe and not emulator.any_source_boxed(uop, context):
                # Data-dependent early stop, same as interpreted.
                self._finish(tuple(emulated), uop.mnemonic, "no_boxed_source")
                return addr
            emulator.emulate(uop, context)
            emulated.append(addr)
        term = self._fetch(trace.end)
        stop, why = self._should_stop(term, context)
        if stop:
            self._finish(tuple(emulated), term.mnemonic, why)
            return trace.end
        # The recorded terminator doesn't stop under this data (its
        # sources became boxed): continue interpreting past it.
        return self._interpret(context, trace.end, emulated)

    def _finish(self, addrs: tuple[int, ...], terminator: str, reason: str) -> None:
        """Shared sequence epilogue: telemetry, statistics, and the
        heat-based promotion into the compiled tier."""
        vm = self.vm
        vm.telemetry.sequences += 1
        if self.stats is not None:
            self.stats.record(addrs, terminator, reason)
        if (
            self._threshold > 0
            and len(addrs) >= 2
            and vm.config.sequence_emulation
            and getattr(vm, "uops_enabled", True)
            and addrs[0] not in self._trace_cache()
        ):
            heat = self._heat
            heat[addrs] += 1
            if heat[addrs] >= self._threshold:
                self._compile(addrs)

    def _compile(self, addrs: tuple[int, ...]) -> None:
        vm = self.vm
        by_addr = vm.program.by_addr
        steps: list[tuple[int, bool]] = []
        for addr in addrs:
            instr = by_addr.get(addr)
            if instr is None:
                return  # decoded off the static image: stay interpreted
            uop = lower(instr)
            probe = uop.fp_trap_capable and uop.mnemonic != "cvtsi2sd"
            steps.append((addr, probe))
        last = by_addr[addrs[-1]]
        end = addrs[-1] + last.size
        self._trace_cache()[addrs[0]] = CompiledTrace(addrs[0], steps, end)
        vm.telemetry.compiled_traces += 1
        del self._heat[addrs]

    def _fetch(self, addr: int) -> Instruction:
        """Decode-cache lookup with cost charging; misses also insert
        the sequence-terminating instruction (trace-cache behaviour)."""
        vm = self.vm
        cached = vm.decode_cache.lookup(addr)
        if cached is not None:
            vm.charge("decache", vm.costs.decode_cache_hit)
            vm.telemetry.decode_hits += 1
            return cached
        vm.charge("decache", vm.costs.decode_cache_hit)  # the failed probe
        vm.charge("decode", vm.costs.decode_miss)
        vm.telemetry.decode_misses += 1
        raw = vm.program.fetch_view.raw_bytes_at(addr)
        return vm.decode_cache.decode_miss(addr, raw)

    def _should_stop(self, instr: Instruction, context) -> tuple[bool, str]:
        vm = self.vm
        # Patched instructions carry correctness hooks that emulation
        # would silently skip: always hand them back to the CPU.  The
        # FETCH view is the authority on live patches.
        if instr.addr in vm.program.fetch_view.patches:
            return True, "unsupported"
        if not vm.emulator.supported(instr):
            return True, "unsupported"
        if instr.is_fp_trap_capable() and instr.mnemonic != "cvtsi2sd":
            if not vm.emulator.any_source_boxed(instr, context):
                return True, "no_boxed_source"
        return False, ""
