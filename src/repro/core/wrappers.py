"""Foreign-function wrapping (§5.3): forward wrappers and magic wraps.

Shared-library functions (the host library) reinterpret FP bits, so any
call must have NaN-boxed argument registers demoted first.  Two
installation mechanisms with identical runtime behaviour:

- **forward wrapping**: LD_PRELOAD-style interposition — the wrapper
  occupies the symbol's slot earlier in the link order.  Hazard: FPVM's
  own calls to the wrapped function now recurse into the wrapper.
- **magic wrapping**: the wrapper is registered under a distinct name
  (``printf$fpvm``) and the program's *symbol table* is rewritten to
  point at it (the Lief move).  FPVM's namespace stays clean.

libm functions get hand-written *forward-into-altmath* wrappers: the
argument is promoted (or unboxed), computed in the alternative
arithmetic system, and the boxed result placed in xmm0 — so ``sin`` of
a 200-bit value stays 200-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import nanbox
from repro.machine.hostlib import LIBM_FUNCTIONS
from repro.machine.program import HostFunction, Program

RAX = 0


def _wrapper_clobber_mask(host: HostFunction) -> int:
    """Lane mask a generated wrapper may touch: one low lane per double
    argument register (xmm0..xmmN-1) plus both xmm0 lanes when the call
    produces an FP return.  This is the wrapper's *declared* clobber
    set — under lazy state save the guard saves exactly these lanes
    instead of the whole bank."""
    mask = 0
    for i in range(host.fp_args):
        mask |= 0b01 << (2 * i)
    if host.fp_ret:
        mask |= 0b11
    return mask


def _guard_save(vm, cpu, clobber: int) -> dict[int, int]:
    """Entry half of the wrapper's state guard: snapshot the lanes the
    wrapper is allowed to touch (all 32 when lazy save is off)."""
    mask = clobber if vm.config.lazy_state_save else 0xFFFF_FFFF
    saved: dict[int, int] = {}
    regs_xmm = cpu.regs.xmm
    m = mask
    while m:
        bit = m & -m
        idx = bit.bit_length() - 1
        saved[idx] = regs_xmm[idx >> 1][idx & 1]
        m ^= bit
    vm.ledger.count("fp_wrapper_lanes_saved", len(saved))
    return saved


def _guard_restore(vm, cpu, saved: dict[int, int], written: int) -> None:
    """Exit half: put back every saved lane the wrapper did not
    legitimately write (value-identical in a clean run), and push the
    written lanes into the lazy-FP dirty tracking — wrapper writes
    bypass the CPU's FP exec paths, so this is their funnel."""
    restored = 0
    for idx, value in saved.items():
        if not (written >> idx) & 1:
            cpu.regs.write_xmm_lane(idx >> 1, idx & 1, value)
            restored += 1
    vm.ledger.count("fp_wrapper_lanes_restored", restored)
    if written:
        cpu.fp_quantum_touched = True
        cpu.regs.fp_dirty |= written


@dataclass
class WrapReport:
    """What got wrapped and how (diagnostics + tests)."""

    demote_wrapped: list[str]
    libm_wrapped: list[str]
    mechanism: str  # "magic" | "forward"


def install_wrappers(vm, program: Program, magic: bool = True) -> WrapReport:
    """Generate and install wrappers for every host function that
    consumes or produces doubles."""
    demote_wrapped: list[str] = []
    libm_wrapped: list[str] = []
    for addr, host in list(program.host_functions.items()):
        if host.fp_args == 0 and not host.fp_ret:
            continue
        if host.name.endswith("$fpvm"):
            continue  # already a wrapper (re-attach safety)
        if host.name in LIBM_FUNCTIONS:
            impl = _make_libm_forward_wrapper(vm, host)
            libm_wrapped.append(host.name)
        else:
            impl = _make_demoting_wrapper(vm, host)
            demote_wrapped.append(host.name)
        wrapper = HostFunction(
            name=f"{host.name}$fpvm",
            fn=impl,
            cost=0,  # the wrapper charges its own cost categories
            fp_args=host.fp_args,
            fp_ret=host.fp_ret,
        )
        waddr = program.register_host_function(wrapper)
        # Both mechanisms resolve future calls to the wrapper; magic
        # wrapping does it by symbol-table rewrite, forward wrapping by
        # link-order interposition.  The observable effect is the same
        # ("there is no performance difference", §5.3).
        program.rebind_symbol(host.name, waddr)
    return WrapReport(demote_wrapped, libm_wrapped, "magic" if magic else "forward")


def _make_demoting_wrapper(vm, host: HostFunction):
    """Stub that demotes double argument registers, then tail-calls the
    real function (printf and friends)."""

    clobber = _wrapper_clobber_mask(host)

    def wrapper(cpu) -> None:
        vm.charge("fcall", vm.costs.fcall_wrapper)
        vm.telemetry.fcall_events += 1
        vm.ledger.count("fcall_traps")
        saved = _guard_save(vm, cpu, clobber)
        written = 0
        for i in range(host.fp_args):
            bits = cpu.regs.xmm[i][0]
            plain = vm.emulator.demote_bits(bits)
            if plain != bits:
                cpu.regs.write_xmm_lane(i, 0, plain)
                written |= 0b01 << (2 * i)
        cpu.cycles += host.cost
        cpu.work_cycles += host.cost
        host.fn(cpu)
        if host.fp_ret:
            # The real function's FP return lands in xmm0 — a result,
            # not a clobber to undo.
            written |= 0b11
        _guard_restore(vm, cpu, saved, written)
        # Postprocessing never needs to promote: FP return registers
        # are caller-save plain doubles (§5.3 footnote 6).

    return wrapper


def _make_libm_forward_wrapper(vm, host: HostFunction):
    """Hand-written libm wrapper: compute in the alternative arithmetic
    system and box the result (§5.3)."""

    clobber = _wrapper_clobber_mask(host) | 0b11  # result always in xmm0

    def wrapper(cpu) -> None:
        vm.charge("fcall", vm.costs.fcall_wrapper)
        vm.telemetry.fcall_events += 1
        vm.ledger.count("libm_calls")
        saved = _guard_save(vm, cpu, clobber)
        flow = vm.flow
        if flow is not None:
            # wrapper births flow from the call site, outside any trap
            # (birth class "fcall").
            flow.begin_op(getattr(cpu, "rip", 0))
        args = []
        for i in range(host.fp_args):
            bits = cpu.regs.xmm[i][0]
            args.append(vm.resolve_bits_to_alt(bits))
        vm.charge("altmath", vm.altmath.costs.libm_fn(host.name))
        result = vm.altmath.libm(host.name, *args)
        if vm.altmath.is_nan_value(result):
            if flow is not None:
                flow.note_clamp()
            out = 0xFFF8_0000_0000_0000  # canonical NaN
        else:
            vm.charge("altmath", vm.altmath.costs.box)
            ptr = vm.alloc_box(result, cpu)
            vm.telemetry.boxes_allocated += 1
            if flow is not None:
                flow.note_birth(ptr)
            out = nanbox.box_bits(ptr)
        if flow is not None:
            flow.end_op()
        cpu.regs.write_xmm128(0, out, 0)
        _guard_restore(vm, cpu, saved, 0b11)

    return wrapper
