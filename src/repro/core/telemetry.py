"""Cycle ledger and run telemetry.

The ledger accumulates cycles in exactly the categories of the paper's
per-instruction breakdown figures (1, 6, 13): hw, kernel, decache,
decode, bind, emul, altmath, gc, corr, fcall, ret.  Amortization is
over *emulated instructions*, matching the figures' x-axes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.machine.costs import LEDGER_CATEGORIES


class CycleLedger:
    """Categorised cycle accounting; also pushes every charge into the
    CPU's global cycle counter so wall-clock totals stay consistent."""

    def __init__(self, cpu=None) -> None:
        self.by_category: dict[str, int] = {c: 0 for c in LEDGER_CATEGORIES}
        self.counters: Counter = Counter()
        self._cpu = cpu

    def bind_cpu(self, cpu) -> None:
        self._cpu = cpu

    def charge(self, category: str, cycles: int, *, cpu_time: bool = True) -> None:
        """Record ``cycles`` under ``category``.

        ``cpu_time=False`` records accounting-only charges for cycles
        already added to the CPU by someone else (the kernel charges
        the CPU itself and routes the category here).
        """
        if category not in self.by_category:
            raise KeyError(f"unknown ledger category {category!r}")
        self.by_category[category] += cycles
        if cpu_time and self._cpu is not None:
            self._cpu.cycles += cycles

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def total(self) -> int:
        return sum(self.by_category.values())

    def amortized(self, emulated_instructions: int | None = None) -> dict[str, float]:
        """Cycles per emulated instruction, by category (Figure 1/6/13
        bars)."""
        n = emulated_instructions
        if n is None:
            n = self.counters.get("emulated_instructions", 0)
        if n == 0:
            return {c: 0.0 for c in self.by_category}
        return {c: v / n for c, v in self.by_category.items()}

    def snapshot(self) -> dict[str, int]:
        return dict(self.by_category)


class SchedulerStats:
    """Host-side telemetry for the process scheduler's batched quanta.

    One record per :meth:`repro.machine.process.Process.run` lifetime:
    every scheduler dispatch (one ``thread.run_quantum(budget)`` call)
    records which thread ran and how many steps it actually took, so
    quantum efficiency — instructions retired per dispatch, the measure
    of how much work each batched dispatch amortizes — is observable
    globally and per thread.
    """

    __slots__ = ("quantum", "dispatches", "steps", "per_thread",
                 "fp_switches", "fp_saves_elided", "fp_lanes_saved",
                 "fp_lanes_restored", "fp_eager_switches")

    def __init__(self) -> None:
        #: quantum size of the most recent run() driving this record.
        self.quantum = 0
        self.dispatches = 0
        self.steps = 0
        #: tid -> [dispatches, steps]
        self.per_thread: dict[int, list[int]] = {}
        #: lazy-FP discipline (§3.1): modeled #NM ownership switches,
        #: dispatches whose eager-mode XMM spill was elided, and the
        #: dirty / live lane traffic the switches actually moved.
        self.fp_switches = 0
        self.fp_saves_elided = 0
        self.fp_lanes_saved = 0
        self.fp_lanes_restored = 0
        #: full-bank spills performed when lazy FP is disabled.
        self.fp_eager_switches = 0

    def record(self, tid: int, retired: int) -> None:
        self.dispatches += 1
        self.steps += retired
        cell = self.per_thread.get(tid)
        if cell is None:
            self.per_thread[tid] = [1, retired]
        else:
            cell[0] += 1
            cell[1] += retired

    @property
    def quantum_efficiency(self) -> float:
        """Mean instructions retired per scheduler dispatch."""
        return self.steps / self.dispatches if self.dispatches else 0.0

    def as_dict(self) -> dict:
        return {
            "quantum": self.quantum,
            "dispatches": self.dispatches,
            "steps": self.steps,
            "quantum_efficiency": self.quantum_efficiency,
            "fp_switches": self.fp_switches,
            "fp_saves_elided": self.fp_saves_elided,
            "fp_lanes_saved": self.fp_lanes_saved,
            "fp_lanes_restored": self.fp_lanes_restored,
            "fp_eager_switches": self.fp_eager_switches,
            "per_thread": {
                tid: {"dispatches": d, "steps": s}
                for tid, (d, s) in sorted(self.per_thread.items())
            },
        }


def aggregate_chain_stats(stats_dicts, cache_stats: dict | None = None) -> dict:
    """Merge per-thread ``UopStats.as_dict()`` chain telemetry into one
    run-level summary: link/unlink counters, the chain-length histogram,
    and its max/mean.  ``cache_stats`` is the owning
    :class:`~repro.machine.uops.SuperblockCache`'s ``as_dict()`` —
    invalidation and unlink counts live there because one cache serves
    every thread."""
    links_created = links_followed = chain_runs = chain_demotions = 0
    breaks: Counter = Counter()
    lengths: Counter = Counter()
    for stats in stats_dicts:
        if not stats:
            continue
        links_created += stats.get("links_created", 0)
        links_followed += stats.get("links_followed", 0)
        chain_runs += stats.get("chain_runs", 0)
        chain_demotions += stats.get("chain_demotions", 0)
        breaks.update(stats.get("chain_breaks") or {})
        for length, count in (stats.get("chain_lengths") or {}).items():
            lengths[int(length)] += count
    total_blocks = sum(length * n for length, n in lengths.items())
    out = {
        "links_created": links_created,
        "links_followed": links_followed,
        "chain_runs": chain_runs,
        "chain_demotions": chain_demotions,
        "chain_breaks": dict(breaks),
        "chain_lengths": {length: lengths[length] for length in sorted(lengths)},
        "max_chain": max(lengths) if lengths else 0,
        "mean_chain": total_blocks / chain_runs if chain_runs else 0.0,
    }
    if cache_stats is not None:
        out["cache"] = dict(cache_stats)
    return out


def aggregate_trace_stats(stats_dicts, cache_stats: dict | None = None) -> dict:
    """Merge per-thread ``UopStats.as_dict()`` trace-JIT telemetry into
    one run-level summary: compile/recompile/demotion counters, steps
    retired inside fused traces, the side-exit breakdown by reason, and
    the trace-length (blocks per cycle) histogram."""
    compiles = recompiles = runs = iters = steps = demotions = 0
    exits: Counter = Counter()
    lengths: Counter = Counter()
    for stats in stats_dicts:
        if not stats:
            continue
        compiles += stats.get("trace_compiles", 0)
        recompiles += stats.get("trace_recompiles", 0)
        runs += stats.get("trace_runs", 0)
        iters += stats.get("trace_iters", 0)
        steps += stats.get("trace_steps", 0)
        demotions += stats.get("trace_demotions", 0)
        exits.update(stats.get("trace_exits") or {})
        for length, count in (stats.get("trace_lengths") or {}).items():
            lengths[int(length)] += count
    out = {
        "trace_compiles": compiles,
        "trace_recompiles": recompiles,
        "trace_runs": runs,
        "trace_iters": iters,
        "trace_steps": steps,
        "trace_demotions": demotions,
        "trace_exits": dict(exits),
        "trace_lengths": {length: lengths[length] for length in sorted(lengths)},
        "mean_iters_per_run": iters / runs if runs else 0.0,
    }
    if cache_stats is not None:
        out["cached_traces"] = cache_stats.get("cached_traces", 0)
        out["dropped_traces"] = cache_stats.get("dropped_traces", 0)
    return out


def percentile(values, q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) over an
    unsorted sequence — the p50/p99 the fleet front-end reports.
    Returns 0.0 for an empty sequence."""
    vals = sorted(values)
    if not vals:
        return 0.0
    if len(vals) == 1:
        return float(vals[0])
    rank = (q / 100.0) * (len(vals) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(vals) - 1)
    frac = rank - lo
    return float(vals[lo]) + (float(vals[hi]) - float(vals[lo])) * frac


def aggregate_fleet_stats(
    rows,
    wall_seconds: float,
    workers: int,
    retries: int = 0,
    crashes: int = 0,
    rejected: int = 0,
    failed: int = 0,
) -> dict:
    """Merge per-guest result rows into the fleet-level summary.

    ``rows`` is one dict per completed guest with at least ``seconds``
    (guest latency), ``cycles``, ``instructions``, ``fp_traps``,
    ``bp_traps``, ``cow_faults``, ``worker`` (worker id), and
    optionally ``uop`` (the guest's merged ``UopStats.as_dict()``).
    Aggregation is exact — every guest's ledger is summed, never
    sampled — so fleet totals reconcile against serial execution to
    the cycle (the Mhatre & Chandran exactness property).  The
    per-worker section carries the warm-cache reuse rates: superblock
    hit rate (block dispatches served from cache vs built) and trace
    code-cache hit rate (compiles served from the shared source cache).
    """
    latencies = [r["seconds"] for r in rows]
    per_worker: dict = {}
    for r in rows:
        w = per_worker.setdefault(r["worker"], {
            "guests": 0, "cycles": 0, "instructions": 0, "cow_faults": 0,
            "fp_switches": 0, "fp_saves_elided": 0,
            "block_runs": 0, "blocks_built": 0,
            "trace_compiles": 0, "trace_code_hits": 0, "trace_runs": 0,
        })
        w["guests"] += 1
        w["cycles"] += r["cycles"]
        w["instructions"] += r["instructions"]
        w["cow_faults"] += r.get("cow_faults", 0)
        w["fp_switches"] += r.get("fp_switches", 0)
        w["fp_saves_elided"] += r.get("fp_saves_elided", 0)
        uop = r.get("uop") or {}
        for key in ("block_runs", "blocks_built", "trace_compiles",
                    "trace_code_hits", "trace_runs"):
            w[key] += uop.get(key, 0)
    for w in per_worker.values():
        dispatches = w["block_runs"] + w["blocks_built"]
        w["superblock_hit_rate"] = (w["block_runs"] / dispatches
                                    if dispatches else 0.0)
        w["trace_cache_hit_rate"] = (w["trace_code_hits"] / w["trace_compiles"]
                                     if w["trace_compiles"] else 0.0)
    return {
        "guests": len(rows),
        "workers": workers,
        "wall_seconds": wall_seconds,
        "guests_per_sec": len(rows) / wall_seconds if wall_seconds > 0 else 0.0,
        "p50_latency": percentile(latencies, 50),
        "p99_latency": percentile(latencies, 99),
        "max_latency": max(latencies) if latencies else 0.0,
        "cycles": sum(r["cycles"] for r in rows),
        "instructions": sum(r["instructions"] for r in rows),
        "fp_traps": sum(r.get("fp_traps", 0) for r in rows),
        "bp_traps": sum(r.get("bp_traps", 0) for r in rows),
        "cow_faults": sum(r.get("cow_faults", 0) for r in rows),
        "fp_switches": sum(r.get("fp_switches", 0) for r in rows),
        "fp_saves_elided": sum(r.get("fp_saves_elided", 0) for r in rows),
        "retries": retries,
        "crashes": crashes,
        "rejected": rejected,
        "failed": failed,
        "per_worker": {w: per_worker[w] for w in sorted(per_worker)},
    }


@dataclass
class Telemetry:
    """Everything a run reports besides the ledger."""

    traps: int = 0
    signal_traps: int = 0
    short_circuit_traps: int = 0
    #: deliveries rejected by the handler's sanity check (context RIP
    #: disagrees with the trap address — e.g. a duplicated signal).
    spurious_traps: int = 0
    #: collections forced by box-heap exhaustion rather than the
    #: allocation-count threshold.
    emergency_gc_runs: int = 0
    emulated_instructions: int = 0
    sequences: int = 0
    decode_hits: int = 0
    decode_misses: int = 0
    #: traces promoted into compiled closures (§4.2 trace cache made
    #: literal) and the number of trap handlings served from them.
    compiled_traces: int = 0
    compiled_trace_hits: int = 0
    gc_runs: int = 0
    gc_objects_collected: int = 0
    promotions: int = 0
    demotions: int = 0
    boxes_allocated: int = 0
    corr_events: int = 0
    fcall_events: int = 0
    altmath_ops: Counter = field(default_factory=Counter)

    @property
    def avg_sequence_length(self) -> float:
        if self.sequences == 0:
            return 0.0
        return self.emulated_instructions / self.sequences
