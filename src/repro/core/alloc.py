"""FPVM's box allocator and conservative mark-and-sweep GC (§2.5).

Boxes hold alternative-arithmetic values.  They are immutable by
contract ("despite being heap objects, they must operate as if they
were values") — the allocator never exposes mutation, only allocation.

The collector is exactly the paper's: a conservative mark phase that
scans every *writable* page of the process plus the register file for
bit patterns that (a) match the NaN-box signature and (b) decode to a
pointer the allocator remembers; then a sweep frees everything
unmarked.  Boxed values never contain pointers to other boxes, so
there is no transitive marking.
"""

from __future__ import annotations

import numpy as np

from repro.core import nanbox
from repro.errors import BoxHeapExhaustedError
from repro.machine.memory import PAGE_SIZE
from repro.machine.program import HEAP_BASE


class BoxAllocator:
    """Bump allocator with free-list reuse over a 48-bit pointer space.

    ``capacity`` bounds the number of *live* boxes (None = unbounded up
    to the pointer space).  Hitting the bound raises the typed
    :class:`BoxHeapExhaustedError`; the VM catches it once to run an
    emergency collection before giving up.
    """

    def __init__(self, base: int = HEAP_BASE, gc_threshold: int = 4096,
                 capacity: int | None = None):
        self._base = base
        self._next = base
        self._free: list[int] = []
        self._boxes: dict[int, object] = {}
        self.gc_threshold = gc_threshold
        self.capacity = capacity
        self.allocs_since_gc = 0
        self.total_allocations = 0
        #: sweep observer (the exception-flow recorder's ``collected``
        #: kill hook); called with the list of freed pointers.
        self.on_free = None

    # ---------------------------------------------------------- allocate
    def alloc(self, value) -> int:
        """Store ``value`` in a fresh box; returns the box pointer."""
        if self.capacity is not None and len(self._boxes) >= self.capacity:
            raise BoxHeapExhaustedError(
                f"box heap at capacity ({self.capacity} live boxes)"
            )
        if self._free:
            ptr = self._free.pop()
        else:
            ptr = self._next
            self._next += 16
            if (ptr - self._base) >> nanbox.NANBOX_PTR_BITS:
                raise BoxHeapExhaustedError(
                    "box heap exhausted 48-bit pointer space"
                )
        self._boxes[ptr] = value
        self.allocs_since_gc += 1
        self.total_allocations += 1
        return ptr

    def load(self, ptr: int):
        return self._boxes[ptr]

    def owns(self, ptr: int) -> bool:
        """The allocator-remembers-it check from §2.2."""
        return ptr in self._boxes

    @property
    def live_count(self) -> int:
        return len(self._boxes)

    def needs_gc(self) -> bool:
        return self.allocs_since_gc >= self.gc_threshold

    # --------------------------------------------------------------- GC
    def collect(self, cpu, reg_roots=None) -> tuple[int, int]:
        """Conservative mark & sweep.

        ``reg_roots`` overrides the register root set — required when
        collecting from inside a signal handler, where the authoritative
        register values live in the signal *frame*, not the CPU.

        Returns ``(objects_collected, pages_scanned)`` so the caller
        can charge the gc cost category.
        """
        marked: set[int] = set()

        # Roots: every XMM lane and every GPR (a boxed pattern could sit
        # in a GPR via movq) ...
        if reg_roots is None:
            reg_roots = [b for lanes in cpu.regs.xmm for b in lanes]
            reg_roots += cpu.regs.gpr
        for bits in reg_roots:
            self._mark_candidate(bits, marked)

        # ... plus a conservative scan of every writable page.
        pages = cpu.mem.writable_pages()
        for page_addr in pages:
            words = np.frombuffer(cpu.mem.page_bytes(page_addr), dtype="<u8")
            # Vectorised signature filter; the allocator check runs only
            # on survivors (normally a handful per page).
            candidates = words[(words & _MASK) == _PATTERN]
            for bits in candidates:
                self._mark_candidate(int(bits), marked)

        # Sweep.
        dead = [ptr for ptr in self._boxes if ptr not in marked]
        for ptr in dead:
            del self._boxes[ptr]
            self._free.append(ptr)
        if dead and self.on_free is not None:
            self.on_free(dead)
        self.allocs_since_gc = 0
        return len(dead), len(pages)

    def _mark_candidate(self, bits: int, marked: set[int]) -> None:
        if nanbox.is_boxed(bits):
            ptr = bits & nanbox.NANBOX_PTR_MASK
            if ptr in self._boxes:
                marked.add(ptr)


_MASK = np.uint64(nanbox._PATTERN_MASK | 0)  # sign bit excluded by design
_PATTERN = np.uint64(nanbox._PATTERN)
