"""repro — a reproduction of "Virtualization So Light, it Floats!
Accelerating Floating Point Virtualization" (Wanninger, Dhiantravan,
Dinda; HPDC '25).

The package implements FPVM — trap-and-emulate floating point
virtualization — together with the three acceleration techniques the
paper contributes (trap short-circuiting, instruction sequence
emulation, and kernel bypass for correctness instrumentation), on top
of a simulated x64/Linux substrate:

- :mod:`repro.fpu`      — IEEE-754 bit-level substrate + exact exception
  oracle + arbitrary-precision BigFloat (MPFR stand-in).
- :mod:`repro.machine`  — x64-subset CPU/ISA simulator with precise FP
  traps and a cycle cost model.
- :mod:`repro.kernel`   — Linux kernel simulator: signal delivery,
  sigreturn, and the FPVM trap short-circuiting "kernel module".
- :mod:`repro.altmath`  — alternative arithmetic systems (Boxed IEEE,
  MPFR/BigFloat, posit, interval, rational).
- :mod:`repro.core`     — FPVM itself: NaN-boxing, allocator + GC,
  decode/trace cache, emulator, sequence emulation, correctness
  instrumentation (magic traps/wraps), telemetry.
- :mod:`repro.compiler` — a mini-C compiler targeting the simulated ISA.
- :mod:`repro.workloads` — the paper's benchmarks (Lorenz, 3-body,
  double pendulum, fbench, ffbench, mini-Enzo).
- :mod:`repro.harness`  — run configurations (NONE/SEQ/SHORT/SEQ_SHORT)
  and per-figure experiment drivers.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
