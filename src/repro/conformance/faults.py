"""Fault injection for the FPVM trap pipeline.

Each scenario perturbs exactly one link of the chain the paper's
design leans on — signal delivery, the magic page, the decode cache,
the box heap, the kernel-module registration — then runs a real
workload and checks that the VM either **recovers** (completes with
output bit-identical to a clean run) or **fails loudly** with the
matching typed :class:`~repro.errors.FPVMFaultError` subclass.  A
silent wrong answer is the one outcome no scenario tolerates.

Scenarios are registered in :data:`SCENARIOS`; ``run_scenario(name)``
returns a :class:`FaultOutcome`, and ``tests/conformance/
test_faults.py`` pins the expected behaviour of every one.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.conformance import oracle
from repro.core.correctness import MAGIC_COOKIE
from repro.core.vm import FPVM, FPVMConfig
from repro.errors import (
    BoxHeapExhaustedError,
    DeadlockError,
    DecodeCacheCorruptionError,
    DeviceProtocolError,
    FPVMFaultError,
    MagicPageCorruptionError,
    StepLimitError,
    TrapStormError,
)
from repro.kernel.kernel import LinuxKernel
from repro.kernel.signals import SIGFPE, SignalContext
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library
from repro.machine.isa import OpClass
from repro.machine.memory import PROT_READ, PROT_WRITE
from repro.machine.process import Process
from repro.machine.program import MAGIC_PAGE_ADDR
from repro.workloads import build_program

MAX_STEPS = 2_000_000


@dataclass
class FaultOutcome:
    """What one injected fault produced."""

    scenario: str
    description: str
    #: the VM noticed the fault (recovered from it or raised on it).
    detected: bool
    #: the run completed with output bit-identical to a clean run.
    recovered: bool
    #: the FPVMFaultError subclass name, for raise-style detections.
    error: str | None = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.detected

    def __str__(self) -> str:
        verdict = ("recovered" if self.recovered
                   else f"raised {self.error}" if self.error
                   else "UNDETECTED")
        return f"{self.scenario:<28} {verdict:<32} {self.detail}"


# ------------------------------------------------------- faulty kernel
class FaultInjectingKernel(LinuxKernel):
    """A LinuxKernel whose general-purpose signal delivery misbehaves
    on demand: SIGFPE deliveries can be dropped (lost interrupt) or
    duplicated (the classic can't-trust-signal-counts POSIX hazard)."""

    def __init__(self, drop_fpe: int = 0, duplicate_fpe: bool = False):
        super().__init__()
        #: number of SIGFPE deliveries to swallow (-1 = all of them).
        self.drop_fpe = drop_fpe
        self.duplicate_fpe = duplicate_fpe
        self.dropped = 0
        self.duplicated = 0

    def _signal_path(self, cpu, signum: int, trap) -> None:
        if signum == SIGFPE and (self.drop_fpe == -1 or self.dropped < self.drop_fpe):
            # The frame is never built and the handler never runs; the
            # faulting instruction simply re-executes and re-faults.
            self.dropped += 1
            return
        super()._signal_path(cpu, signum, trap)
        if signum == SIGFPE and self.duplicate_fpe:
            # Deliver the *same* trap again: by now the handler has
            # moved RIP past the faulting instruction, so the handler's
            # fault-style sanity check must flag the copy as spurious.
            self.duplicated += 1
            handler = self.sigactions.lookup(signum)
            self._charge(cpu, "kernel",
                         self.costs.kernel_internal + self.costs.signal_deliver)
            context = SignalContext(cpu, live=False)
            handler(signum, context, trap)
            self._charge(cpu, "ret", self.costs.sigreturn)
            context.apply()


# ------------------------------------------------------------- helpers
def _attach(config: FPVMConfig, kernel: LinuxKernel | None = None,
            workload: str = "lorenz", scale: int = 60):
    program = build_program(workload, scale)
    cpu = CPU(program)
    kernel = kernel or LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(config).attach(cpu, kernel)
    return cpu, kernel, vm


def _clean_output(config: FPVMConfig, workload: str = "lorenz",
                  scale: int = 60) -> tuple[str, ...]:
    cpu, _, _ = _attach(config, workload=workload, scale=scale)
    cpu.run(max_steps=MAX_STEPS)
    return tuple(cpu.output)


def _outcome_from_run(name: str, description: str, cpu, clean: tuple[str, ...],
                      detail: str) -> FaultOutcome:
    try:
        cpu.run(max_steps=MAX_STEPS)
    except FPVMFaultError as err:
        return FaultOutcome(name, description, detected=True, recovered=False,
                            error=type(err).__name__, detail=str(err))
    recovered = tuple(cpu.output) == clean
    return FaultOutcome(name, description, detected=recovered,
                        recovered=recovered,
                        detail=detail if recovered else "output diverged silently")


# ----------------------------------------------------------- scenarios
def dropped_delivery_persistent() -> FaultOutcome:
    """Every SIGFPE delivery is lost.  The faulting instruction re-
    executes forever with no retired instructions in between — the
    kernel's livelock detector must raise TrapStormError instead of
    spinning."""
    name, desc = "dropped_delivery_persistent", "all SIGFPE deliveries lost"
    kernel = FaultInjectingKernel(drop_fpe=-1)
    cpu, _, _ = _attach(FPVMConfig.seq(), kernel)
    try:
        cpu.run(max_steps=MAX_STEPS)
    except TrapStormError as err:
        return FaultOutcome(name, desc, detected=True, recovered=False,
                            error="TrapStormError",
                            detail=f"after {kernel.dropped} drops: {err}")
    return FaultOutcome(name, desc, detected=False, recovered=False,
                        detail="livelock not detected")


def dropped_delivery_transient() -> FaultOutcome:
    """A handful of deliveries are lost, then delivery resumes.  #XF is
    fault-style, so the instruction re-faults and the late delivery
    succeeds — the run must self-heal bit-identically."""
    name, desc = "dropped_delivery_transient", "3 SIGFPE deliveries lost"
    clean = _clean_output(FPVMConfig.seq())
    kernel = FaultInjectingKernel(drop_fpe=3)
    cpu, _, _ = _attach(FPVMConfig.seq(), kernel)
    outcome = _outcome_from_run(name, desc, cpu, clean, "")
    if outcome.recovered:
        if kernel.dropped == 0:
            return FaultOutcome(name, desc, detected=False, recovered=True,
                                detail="no deliveries were actually dropped")
        outcome.detail = f"self-healed after {kernel.dropped} lost deliveries"
    return outcome


def duplicated_delivery() -> FaultOutcome:
    """Every SIGFPE is delivered twice.  The second copy arrives with
    the context RIP already advanced; the handler's fault-style sanity
    check must reject it as spurious and the output stay identical."""
    name, desc = "duplicated_delivery", "every SIGFPE delivered twice"
    clean = _clean_output(FPVMConfig.seq())
    kernel = FaultInjectingKernel(duplicate_fpe=True)
    cpu, _, vm = _attach(FPVMConfig.seq(), kernel)
    outcome = _outcome_from_run(name, desc, cpu, clean, "")
    if outcome.recovered:
        if vm.telemetry.spurious_traps == 0:
            return FaultOutcome(name, desc, detected=False, recovered=True,
                                detail="no spurious deliveries flagged")
        outcome.detail = (f"{vm.telemetry.spurious_traps} duplicate "
                          "deliveries flagged spurious and ignored")
    return outcome


def magic_page_corruption() -> FaultOutcome:
    """The magic-page cookie is overwritten after attach.  The first
    trampoline rendezvous must refuse the bogus page rather than jump
    through an attacker-controlled 'handler pointer'."""
    name, desc = "magic_page_corruption", "magic-page cookie overwritten"
    # three_body has a real profiler patch site, so a trampoline fires.
    cpu, _, _ = _attach(FPVMConfig.seq_short(), workload="three_body", scale=8)
    cpu.mem.protect(MAGIC_PAGE_ADDR, PROT_READ | PROT_WRITE)
    cpu.mem.write_bytes(MAGIC_PAGE_ADDR,
                        struct.pack("<Q", MAGIC_COOKIE ^ 0xFFFF))
    cpu.mem.protect(MAGIC_PAGE_ADDR, PROT_READ)
    try:
        cpu.run(max_steps=MAX_STEPS)
    except MagicPageCorruptionError as err:
        return FaultOutcome(name, desc, detected=True, recovered=False,
                            error="MagicPageCorruptionError", detail=str(err))
    return FaultOutcome(name, desc, detected=False, recovered=False,
                        detail="trampoline trusted a corrupt magic page")


def decode_cache_poison() -> FaultOutcome:
    """Decode-cache entries are cross-wired so a lookup returns the
    instruction from a different address.  The cache's integrity check
    must catch the aliased entry before it is emulated."""
    name, desc = "decode_cache_poison", "decode cache entries cross-wired"
    cpu, _, vm = _attach(FPVMConfig.seq())
    fp_addrs = [a for a, i in cpu.program.by_addr.items()
                if i.info.opclass in (OpClass.FP_ARITH, OpClass.FP_CVT)]
    for addr in fp_addrs:
        other = fp_addrs[0] if addr != fp_addrs[0] else fp_addrs[1]
        vm.decode_cache.insert(addr, cpu.program.by_addr[other])
    try:
        cpu.run(max_steps=MAX_STEPS)
    except DecodeCacheCorruptionError as err:
        return FaultOutcome(name, desc, detected=True, recovered=False,
                            error="DecodeCacheCorruptionError", detail=str(err))
    return FaultOutcome(name, desc, detected=False, recovered=False,
                        detail="poisoned entry emulated without complaint")


def decode_cache_thrash() -> FaultOutcome:
    """A 2-entry decode cache (pathological eviction pressure).  Pure
    performance fault: everything re-decodes, nothing may change."""
    name, desc = "decode_cache_thrash", "decode cache capacity forced to 2"
    clean = _clean_output(FPVMConfig.seq_short())
    config = FPVMConfig.seq_short(decode_cache_capacity=2)
    cpu, _, vm = _attach(config)
    outcome = _outcome_from_run(name, desc, cpu, clean, "")
    if outcome.recovered:
        outcome.detail = (f"bit-identical under {vm.telemetry.decode_misses} "
                          f"misses / {vm.telemetry.decode_hits} hits")
    return outcome


def box_heap_pressure() -> FaultOutcome:
    """The box heap is capped with threshold-GC disabled, so only the
    exhaustion path can reclaim.  Emergency collections must keep the
    run alive and bit-identical."""
    name, desc = "box_heap_pressure", "box heap capped at 64 live boxes, GC threshold off"
    clean = _clean_output(FPVMConfig.seq_short())
    config = FPVMConfig.seq_short(box_capacity=64, gc_threshold=10**9)
    cpu, _, vm = _attach(config)
    outcome = _outcome_from_run(name, desc, cpu, clean, "")
    if outcome.recovered:
        if vm.telemetry.emergency_gc_runs == 0:
            outcome.detail = "capacity never reached (cap too high to test)"
            outcome.detected = False
        else:
            outcome.detail = (f"{vm.telemetry.emergency_gc_runs} emergency "
                              "collections, output bit-identical")
    return outcome


def box_heap_exhaustion() -> FaultOutcome:
    """A 2-box heap cannot hold the workload's live values even after
    an emergency collection — the typed exhaustion error must surface
    instead of an arbitrary wrong answer."""
    name, desc = "box_heap_exhaustion", "box heap capped below the live set"
    config = FPVMConfig.seq_short(box_capacity=2, gc_threshold=10**9)
    cpu, _, _ = _attach(config)
    try:
        cpu.run(max_steps=MAX_STEPS)
    except BoxHeapExhaustedError as err:
        return FaultOutcome(name, desc, detected=True, recovered=False,
                            error="BoxHeapExhaustedError", detail=str(err))
    return FaultOutcome(name, desc, detected=False, recovered=False,
                        detail="live set squeezed into 2 boxes (cap untested)")


def device_registration_revoked() -> FaultOutcome:
    """The /dev/fpvm_dev registration is revoked mid-flight (fd closed,
    module unloaded).  Traps must degrade to the always-installed
    SIGFPE fallback path, not die."""
    name, desc = "device_registration_revoked", "short-circuit registration revoked before run"
    clean = _clean_output(FPVMConfig.seq_short())
    cpu, _, vm = _attach(FPVMConfig.seq_short())
    vm._device_handle.close()
    outcome = _outcome_from_run(name, desc, cpu, clean, "")
    if outcome.recovered:
        t = vm.telemetry
        if t.short_circuit_traps or not t.signal_traps:
            return FaultOutcome(name, desc, detected=False, recovered=True,
                                detail="traps did not use the fallback path")
        outcome.detail = (f"all {t.signal_traps} traps rerouted through "
                          "the SIGFPE fallback")
    return outcome


def device_entry_clobbered() -> FaultOutcome:
    """The kernel module's entry-point table is corrupted (registration
    present but pointing nowhere).  The module must refuse delivery
    with the typed protocol error, never jump to a junk stub."""
    name, desc = "device_entry_clobbered", "device entry table corrupted"
    cpu, kernel, _ = _attach(FPVMConfig.seq_short())
    kernel.fpvm_module._entries[id(cpu)] = None
    try:
        cpu.run(max_steps=MAX_STEPS)
    except DeviceProtocolError as err:
        return FaultOutcome(name, desc, detected=True, recovered=False,
                            error=type(err).__name__, detail=str(err))
    return FaultOutcome(name, desc, detected=False, recovered=False,
                        detail="clobbered entry delivered without complaint")


_DEADLOCK_SRC = """
.text
worker:
  mov rdi, 0
  call thread_join      ; join main — which is joining us
  ret
main:
  mov rdi, worker
  mov rsi, 0
  call thread_create
  mov rdi, rax
  call thread_join      ; join the worker — the cycle closes
  hlt
"""

_SPIN_SRC = """
.text
main:
spin:
  jmp spin
"""


def scheduler_deadlock() -> FaultOutcome:
    """A join cycle: main joins the worker while the worker joins main.
    Every live thread is parked, so the scheduler must raise the typed
    DeadlockError instead of spinning or returning quietly."""
    name, desc = "scheduler_deadlock", "main and worker join each other"
    proc = Process(assemble(_DEADLOCK_SRC))
    proc.kernel = LinuxKernel()
    try:
        proc.run(max_steps=MAX_STEPS)
    except DeadlockError as err:
        return FaultOutcome(name, desc, detected=True, recovered=False,
                            error="DeadlockError", detail=str(err))
    return FaultOutcome(name, desc, detected=False, recovered=False,
                        detail="join cycle not detected")


def scheduler_step_limit() -> FaultOutcome:
    """A guest that never terminates (tight jmp loop) against a small
    scheduler step budget — the typed StepLimitError must surface,
    distinguishing guest non-termination from machinery faults."""
    name, desc = "scheduler_step_limit", "infinite loop vs. 1000-step budget"
    proc = Process(assemble(_SPIN_SRC))
    proc.kernel = LinuxKernel()
    try:
        proc.run(max_steps=1000)
    except StepLimitError as err:
        return FaultOutcome(name, desc, detected=True, recovered=False,
                            error="StepLimitError", detail=str(err))
    return FaultOutcome(name, desc, detected=False, recovered=False,
                        detail="runaway process not stopped")


class _CountingTrampoline:
    """A magic-call pre-hook that only counts its firings — the
    observable that tells a stale trace from a live patch site."""

    def __init__(self):
        self.calls = 0

    def __call__(self, cpu, addr):
        self.calls += 1


def _drive_patching(cpu, program, site: int, tramp, k: int,
                    quantum: int = 64) -> None:
    """run_quantum() loop that installs ``patch_call(site)`` at the
    first quantum boundary where at least ``k`` instructions have
    retired.  Quantum boundaries land at identical retirement counts
    in every tier, so twin runs see the patch at the same instant."""
    patched = False
    steps = 0
    while not cpu.halted:
        if not patched and cpu.instruction_count >= k:
            program.patch_call(site, tramp)
            patched = True
        steps += cpu.run_quantum(quantum)
        if steps > MAX_STEPS:
            raise StepLimitError(f"patching twin exceeded {MAX_STEPS} steps")


def stale_trace_patch() -> FaultOutcome:
    """A correctness patch lands *inside* a live compiled trace
    mid-run.  The fault being probed: if per-site invalidation failed
    to kill the stale trace, the compiled closure would keep executing
    straight through the new patch site without ever firing the
    pre-hook — a silent wrong answer.  Detection is twofold: the
    traced twin's pre-hook fire count must match an interpreter twin
    patched at the identical retirement boundary, and the cache must
    report at least one dropped trace."""
    name = "stale_trace_patch"
    desc = "patch planted inside a live compiled trace mid-run"

    # Discovery pass: run the traced tier clean to find an instruction
    # address strictly inside some compiled trace's covered ranges.
    scout = CPU(build_program("lorenz", 60), uops=True, chain=True,
                trace=True)
    scout.trace_stabilize_threshold = 2
    scout.kernel = LinuxKernel()
    scout.run(max_steps=MAX_STEPS)
    total = scout.instruction_count
    site = None
    traces = scout._sb_cache.trace_view(scout)
    for trace in traces.values():
        for lo, hi in trace.ranges:
            for addr in range(lo, hi):
                if addr in scout.program.by_addr and addr != trace.entry:
                    site = addr
                    break
            if site is not None:
                break
        if site is not None:
            break
    if site is None:
        return FaultOutcome(name, desc, detected=False, recovered=False,
                            detail="no compiled trace to plant a patch in")

    k = total // 2
    twins = {}
    for tier, flags in (("traced", True), ("interp", False)):
        program = build_program("lorenz", 60)
        cpu = CPU(program, uops=flags, chain=flags, trace=flags)
        if flags:
            cpu.trace_stabilize_threshold = 2
        cpu.kernel = LinuxKernel()
        tramp = _CountingTrampoline()
        try:
            _drive_patching(cpu, program, site, tramp, k)
        except FPVMFaultError as err:
            return FaultOutcome(name, desc, detected=True, recovered=False,
                                error=type(err).__name__, detail=str(err))
        twins[tier] = (cpu, tramp)

    traced_cpu, traced_tramp = twins["traced"]
    interp_cpu, interp_tramp = twins["interp"]
    cache = traced_cpu._sb_cache
    stats = traced_cpu.uop_stats
    identical = (tuple(traced_cpu.output) == tuple(interp_cpu.output)
                 and traced_cpu.instruction_count == interp_cpu.instruction_count
                 and traced_tramp.calls == interp_tramp.calls)
    exercised = (traced_tramp.calls > 0
                 and stats.trace_compiles > 0
                 and cache.dropped_traces >= 1)
    detail = (f"site={site:#x} hook fired {traced_tramp.calls}x in both "
              f"tiers, {cache.dropped_traces} stale trace(s) dropped")
    if identical and exercised:
        return FaultOutcome(name, desc, detected=True, recovered=True,
                            detail=detail)
    return FaultOutcome(
        name, desc, detected=False, recovered=False,
        detail=("stale trace executed through patch site: "
                f"hook traced={traced_tramp.calls} interp={interp_tramp.calls}"
                f" dropped_traces={cache.dropped_traces}"
                if not identical or not exercised else detail))


def _lazyfp_source(secrets=None, vloops: int = 150, spin: int = 400) -> str:
    """The LazyFP probe program.  A *victim* thread loads a distinct
    secret into every XMM register and keeps dirtying the bank; a
    *probe* thread burns integer-only quanta (so the victim owns the FP
    unit), then stores every XMM register to memory **before writing
    any** — the classic LazyFP read-before-first-write probe.  Main
    joins both and prints the probe's 16 captured values, which for a
    correct ownership switch must all be the fresh-thread init state
    (0.0), never the victim's secrets."""
    if secrets is None:
        secrets = [101.5 + 2.0 * i for i in range(16)]
    lines = [
        ".data",
        f"secrets: .double {', '.join(repr(float(s)) for s in secrets)}",
        f"probe: .double {', '.join('0.0' for _ in range(16))}",
        f"vloops: .quad {vloops}",
        f"spin: .quad {spin}",
        "",
        ".text",
        "victim:",
    ]
    for i in range(16):
        lines.append(f"  movsd xmm{i}, [rip + secrets + {8 * i}]")
    lines += [
        "  mov rcx, [rip + vloops]",
        "vloop:",
        "  addsd xmm0, xmm1",
        "  dec rcx",
        "  jne vloop",
        "  ret",
        "",
        "probe_worker:",
        "  ; integer-only delay: the victim's quanta run meanwhile and",
        "  ; it becomes the FP owner with a fully dirty bank.",
        "  mov rcx, [rip + spin]",
        "ploop:",
        "  dec rcx",
        "  jne ploop",
        "  ; read every register BEFORE writing any",
    ]
    for i in range(16):
        lines.append(f"  movsd [rip + probe + {8 * i}], xmm{i}")
    lines += [
        "  ret",
        "",
        "main:",
        "  mov rdi, victim",
        "  mov rsi, 0",
        "  call thread_create",
        "  mov rdi, probe_worker",
        "  mov rsi, 0",
        "  call thread_create",
        "  mov rdi, 1",
        "  call thread_join",
        "  mov rdi, 2",
        "  call thread_join",
    ]
    for i in range(16):
        lines += [
            f"  movsd xmm0, [rip + probe + {8 * i}]",
            "  call print_f64",
        ]
    lines.append("  hlt")
    return "\n".join(lines) + "\n"


#: tier label -> (uops, chain, trace) flags for the LazyFP sweep.
_LAZYFP_TIERS = {
    "stepwise": (False, False, False),
    "batched": (True, False, False),
    "chained": (True, True, False),
    "traced": (True, True, True),
}


def _lazyfp_run(uops: bool, chain: bool, trace: bool, lazy: bool,
                armed: bool = False) -> Process:
    program = assemble(_lazyfp_source())
    install_host_library(program)
    proc = Process(program, uops=uops, chain=chain,
                   trace=trace, lazy_fp=lazy)
    proc.kernel = LinuxKernel()
    if armed:
        proc.fp_skip_switch = True
    proc.run(max_steps=MAX_STEPS)
    return proc


def lazy_fp_leak() -> FaultOutcome:
    """The LazyFP leak oracle (§3.1).  Fault being probed: a lazy FP
    switch implementation that *skips* the ownership switch would leave
    the previous owner's XMM state readable by the next thread — the
    LazyFP side channel, a silent secret leak.  Detection is
    differential: every lazy-on tier's probe output must be
    bit-identical to the eager reference (all init-state zeros), and
    the armed ``fp_skip_switch`` seam must make the probe observably
    capture the victim's secrets — proving the oracle has the power to
    catch a switch that quietly stopped happening."""
    name = "lazy_fp_leak"
    desc = "skipped FP ownership switch leaks stale XMM to a fresh thread"

    ref = _lazyfp_run(False, False, False, lazy=False)
    expect = tuple(ref.main.output)
    for tier, (uops, chain, trace) in _LAZYFP_TIERS.items():
        proc = _lazyfp_run(uops, chain, trace, lazy=True)
        if tuple(proc.main.output) != expect:
            return FaultOutcome(
                name, desc, detected=False, recovered=False,
                detail=f"lazy/{tier} diverged from eager on a clean run")
        if proc.sched.fp_switches == 0 or proc.sched.fp_saves_elided == 0:
            return FaultOutcome(
                name, desc, detected=False, recovered=False,
                detail=f"lazy/{tier} never exercised the switch machinery")
    armed = _lazyfp_run(True, False, False, lazy=True, armed=True)
    if tuple(armed.main.output) != expect:
        return FaultOutcome(
            name, desc, detected=True, recovered=True,
            detail="all 4 lazy tiers clean vs eager; armed seam "
                   "observably leaked the victim bank")
    return FaultOutcome(
        name, desc, detected=False, recovered=False,
        detail="armed skip-switch seam produced no observable leak")


#: the registry, in documentation order.
SCENARIOS = {
    fn.__name__: fn
    for fn in (
        dropped_delivery_persistent,
        dropped_delivery_transient,
        duplicated_delivery,
        magic_page_corruption,
        decode_cache_poison,
        decode_cache_thrash,
        box_heap_pressure,
        box_heap_exhaustion,
        device_registration_revoked,
        device_entry_clobbered,
        scheduler_deadlock,
        scheduler_step_limit,
        stale_trace_patch,
        lazy_fp_leak,
    )
}


def run_scenario(name: str) -> FaultOutcome:
    return SCENARIOS[name]()


def run_all() -> list[FaultOutcome]:
    return [fn() for fn in SCENARIOS.values()]
