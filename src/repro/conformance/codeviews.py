"""Shadow-code-view conformance: the guest must never observe the host.

FPVM's correctness patching plants pre-hooks in guest text.  With the
split fetch/data views (``machine/program.py``) the patched stream is
only ever seen by the front end; guest *loads* from text addresses go
through memory pages backed by the pristine DATA view.  This module
holds the guest programs and reports that make that guarantee — the
"LazyFP axis": *guest must never observe host instrumentation state* —
checkable end to end:

- :func:`self_checksum_report`: a guest that checksums its own text
  bytes and prints the sum.  The printed checksum (and the text-region
  memory digest) must be bit-identical across patch configurations
  NONE / SEQ / SEQ_SHORT — with real profiler-discovered patches and
  live compiled traces — and must equal the host-computed checksum of
  the pristine text.  Under ``FPVM_SHADOW_VIEW=0`` (text backed by the
  FETCH view) the same guest *must* see the patch markers, proving the
  shadow view is load-bearing rather than vacuously equal.
- :func:`self_reading_report`: a guest that reads its own bytes every
  loop iteration while the uop/chain/trace tiers hold live compiled
  artifacts — all four tiers must agree bit-for-bit with the seed
  interpreter, with the trace tier demonstrably active.
"""

from __future__ import annotations

from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.hostlib import install_host_library
from repro.machine.program import TEXT_BASE

MAX_STEPS = 2_000_000

#: Sums the first ``{words}`` u64 words of its own text section while
#: doing demotion-prone FP work in the same loop, then prints the
#: checksum (integer) and the FP accumulator.  Each lap also spills
#: the FP accumulator and integer-loads the raw bits back into the
#: checksum — the §5.1 memory-escape pattern — so the profiler plants
#: a real correctness patch *inside the checksum loop*: the guest is
#: simultaneously observing its own text bytes and raw FP bit
#: patterns while the pre-hook fires every iteration.
CHECKSUM_SRC = """
.data
acc: .double 1.0
tiny: .double 4.9e-324
spill: .double 0.0
n: .quad {words}
.text
main:
  movsd xmm0, [rip + acc]
  movsd xmm1, [rip + tiny]
  mov rax, 0
  mov rbx, 0x400000
  mov rcx, [rip + n]
top:
  mov rdx, [rbx]
  add rax, rdx
  add rbx, 8
  addsd xmm0, xmm1
  mulsd xmm0, xmm1
  movsd xmm2, [rip + acc]
  addsd xmm0, xmm2
  movsd [rip + spill], xmm0
  mov rdx, [rip + spill]
  add rax, rdx
  dec rcx
  jne top
  mov rdi, rax
  call print_i64
  call print_f64
  hlt
"""

#: Reads one word of its own text each lap of a hot FP loop — the
#: trace tier fuses the loop while the guest keeps observing its own
#: (pristine) bytes.
SELF_READING_SRC = """
.data
k: .double 1.0001
n: .quad {n}
.text
main:
  mov rcx, [rip + n]
  mov rbx, 0x400000
  mov rax, 0
  movsd xmm0, [rip + k]
  movsd xmm1, [rip + k]
top:
  mov rdx, [rbx]
  add rax, rdx
  mulsd xmm0, xmm1
  addsd xmm0, xmm1
  subsd xmm0, xmm1
  dec rcx
  jne top
  mov rdi, rax
  call print_i64
  call print_f64
  hlt
"""


def build_checksum_program(words: int | None = None):
    """Assemble the self-checksumming guest.  Operand encodings are
    fixed-width, so a two-pass assembly (measure, then re-assemble with
    the real word count) converges immediately; by default the guest
    checksums its entire text section."""
    if words is None:
        probe = assemble(CHECKSUM_SRC.format(words=1))
        words = len(probe.text) // 8
    program = assemble(CHECKSUM_SRC.format(words=words))
    install_host_library(program)
    return program, words


def native_reference(words: int) -> tuple[str, ...]:
    """Ground truth: the same guest run bare — no FPVM attached, no
    patches anywhere — through the seed interpreter."""
    program, _ = build_checksum_program(words)
    cpu = CPU(program, uops=False, chain=False, trace=False)
    cpu.kernel = LinuxKernel()
    cpu.run(max_steps=MAX_STEPS)
    return tuple(cpu.output)


def _text_digest(cpu, program) -> str:
    """SHA-256 of the guest-visible text region (read through memory,
    like a guest load would)."""
    import hashlib

    return hashlib.sha256(
        cpu.mem.read_bytes(TEXT_BASE, len(program.text))).hexdigest()


_CONFIGS = {
    "none": FPVMConfig.none,
    "seq": FPVMConfig.seq,
    "seq_short": FPVMConfig.seq_short,
}


def self_checksum_report(trace_threshold: int = 2) -> dict:
    """Run the self-checksumming guest under NONE / SEQ / SEQ_SHORT
    with live patching and a low compiled-trace threshold; returns per-
    config output, patch counts, text digests, and the ground truth."""
    import hashlib

    report: dict = {"configs": {}}
    _, words = build_checksum_program()
    report["words"] = words
    reference = native_reference(words)
    report["reference_output"] = reference
    pristine = None
    for name, preset in _CONFIGS.items():
        program, _ = build_checksum_program(words)
        if pristine is None:
            pristine = hashlib.sha256(
                program.data_view.text_bytes()).hexdigest()
            report["pristine_text_digest"] = pristine
        cpu = CPU(program)
        kernel = LinuxKernel()
        cpu.kernel = kernel
        vm = FPVM(preset(trace_compile_threshold=trace_threshold)).attach(
            cpu, kernel)
        cpu.run(max_steps=MAX_STEPS)
        report["configs"][name] = {
            "output": tuple(cpu.output),
            "checksum": cpu.output[0] if cpu.output else None,
            "patches": len(program.patches),
            "patched_sites": dict(vm.patched_sites),
            "compiled_traces": vm.telemetry.compiled_traces,
            "text_digest": _text_digest(cpu, program),
        }
    outputs = {c["output"] for c in report["configs"].values()}
    digests = {c["text_digest"] for c in report["configs"].values()}
    report["bit_identical"] = (
        outputs == {reference} and digests == {pristine})
    return report


def shadow_view_negative_report(trace_threshold: int = 2) -> dict:
    """Prove the shadow view is load-bearing, not vacuously equal.

    Re-runs the SEQ config with ``FPVM_SHADOW_VIEW=0`` — guest text
    backed by the FETCH view, patch markers eagerly pushed into memory
    — and checks that the self-checksumming guest now *does* observe
    the instrumentation: its checksum and text digest must diverge
    from the pristine ground truth."""
    import hashlib
    import os

    _, words = build_checksum_program()
    reference = native_reference(words)
    program, _ = build_checksum_program(words)
    pristine = hashlib.sha256(program.data_view.text_bytes()).hexdigest()
    prior = os.environ.get("FPVM_SHADOW_VIEW")
    os.environ["FPVM_SHADOW_VIEW"] = "0"
    try:
        cpu = CPU(program)
        kernel = LinuxKernel()
        cpu.kernel = kernel
        FPVM(FPVMConfig.seq(trace_compile_threshold=trace_threshold)).attach(
            cpu, kernel)
        cpu.run(max_steps=MAX_STEPS)
    finally:
        if prior is None:
            del os.environ["FPVM_SHADOW_VIEW"]
        else:
            os.environ["FPVM_SHADOW_VIEW"] = prior
    digest = _text_digest(cpu, program)
    report = {
        "output": tuple(cpu.output),
        "reference_output": reference,
        "patches": len(program.patches),
        "text_digest": digest,
        "pristine_text_digest": pristine,
    }
    report["guest_observed_markers"] = (
        report["patches"] > 0
        and report["output"] != reference
        and digest != pristine
    )
    return report


def self_reading_report(n: int = 400) -> dict:
    """Run the self-reading guest through all four execution tiers;
    returns per-tier output/fingerprint and trace-tier vacuity info."""
    tiers = {
        "interp": (False, False, False),
        "uops": (True, False, False),
        "chained": (True, True, False),
        "traced": (True, True, True),
    }
    report: dict = {"tiers": {}}
    for name, (uops, chain, trace) in tiers.items():
        program = assemble(SELF_READING_SRC.format(n=n))
        install_host_library(program)
        cpu = CPU(program, uops=uops, chain=chain, trace=trace)
        cpu.kernel = LinuxKernel()
        if trace:
            cpu.trace_stabilize_threshold = 2
        cpu.run(max_steps=MAX_STEPS)
        stats = cpu.uop_stats.as_dict() if cpu.uop_stats else {}
        report["tiers"][name] = {
            "output": tuple(cpu.output),
            "instructions": cpu.instruction_count,
            "cycles": cpu.cycles,
            "trace_compiles": stats.get("trace_compiles", 0),
            "trace_steps": stats.get("trace_steps", 0),
        }
    outputs = {t["output"] for t in report["tiers"].values()}
    fingerprints = {(t["instructions"], t["cycles"])
                    for t in report["tiers"].values()}
    report["bit_identical"] = len(outputs) == 1 and len(fingerprints) == 1
    report["traces_live"] = report["tiers"]["traced"]["trace_steps"] > 0
    return report
